package vmkit

import "sync"

// monitor implements per-object recursive locks (monitorenter/monitorexit
// and synchronized methods). Owners are VM threads.
type monitor struct {
	mu    sync.Mutex
	cv    *sync.Cond
	owner *Thread
	depth int
}

// Enter blocks until the calling thread owns the monitor.
func (o *Object) monEnter(t *Thread) {
	m := &o.mon
	m.mu.Lock()
	if m.cv == nil {
		m.cv = sync.NewCond(&m.mu)
	}
	for m.owner != nil && m.owner != t {
		m.cv.Wait()
	}
	m.owner = t
	m.depth++
	m.mu.Unlock()
	if t.VM.Profile.HeavyLocks {
		t.VM.lockStatRecord(o)
	}
}

// monExit releases one level of the monitor. It returns false when the
// calling thread does not own the monitor (IllegalMonitorState).
func (o *Object) monExit(t *Thread) bool {
	m := &o.mon
	m.mu.Lock()
	if m.owner != t || m.depth == 0 {
		m.mu.Unlock()
		return false
	}
	m.depth--
	if m.depth == 0 {
		m.owner = nil
		if m.cv != nil {
			m.cv.Signal()
		}
	}
	m.mu.Unlock()
	if t.VM.Profile.HeavyLocks {
		t.VM.lockStatRecord(o)
	}
	return true
}

// MonitorOwner returns the owning thread for tests (nil when unlocked).
func (o *Object) MonitorOwner() *Thread {
	o.mon.mu.Lock()
	defer o.mon.mu.Unlock()
	return o.mon.owner
}
