package vmkit

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the line-oriented assembly syntax into a ClassDef.
//
// Syntax (one directive or instruction per line; ';' or '#' starts a
// comment; blank lines ignored):
//
//	.class Name [super Super] [implements I1 I2 ...] [interface] [abstract]
//	.field [static] name Desc
//	.method [static] [native] [abstract] [synchronized] name (params)ret [stack N] [locals N]
//	  label:
//	  <mnemonic> [operand]
//	  .catch Type from L1 to L2 using L3
//	.end
//
// Branch operands are labels. SCONST operands are Go-quoted strings.
// Field/method reference operands are "Class.name:Desc" symbols.
func Assemble(src string) (*ClassDef, error) {
	a := &asm{def: &ClassDef{Super: ClassObject}}
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.line(line); err != nil {
			return nil, fmt.Errorf("asm line %d: %w", ln+1, err)
		}
	}
	if a.cur != nil {
		return nil, fmt.Errorf("asm: missing .end for method %s", a.cur.Name)
	}
	if a.def.Name == "" {
		return nil, fmt.Errorf("asm: missing .class directive")
	}
	return a.def, nil
}

// MustAssemble is Assemble that panics on error; for tests and built-in
// class sources that are compiled into the binary.
func MustAssemble(src string) *ClassDef {
	def, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return def
}

// AssembleBytes assembles and encodes in one step.
func AssembleBytes(src string) ([]byte, error) {
	def, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	return EncodeClass(def), nil
}

type asm struct {
	def *ClassDef
	cur *MethodDef // method being assembled, nil between methods

	labels  map[string]int32
	patches []patch // label fixups
	catches []catchPatch
}

type patch struct {
	instr int
	label string
}

type catchPatch struct {
	typ             string
	from, to, using string
}

// stripComment removes a trailing comment. A ';' or '#' starts a comment
// only at the beginning of the line or after whitespace, so the semicolons
// inside type descriptors like "Ljk/lang/Object;" survive. Quoted string
// operands are also protected.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if !inStr {
				inStr = true
			} else if i > 0 && s[i-1] != '\\' {
				inStr = false
			}
		case ';', '#':
			if inStr {
				continue
			}
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

func (a *asm) line(line string) error {
	switch {
	case strings.HasPrefix(line, ".class"):
		return a.classDirective(line)
	case strings.HasPrefix(line, ".field"):
		return a.fieldDirective(line)
	case strings.HasPrefix(line, ".method"):
		return a.methodDirective(line)
	case strings.HasPrefix(line, ".catch"):
		return a.catchDirective(line)
	case line == ".end":
		return a.endMethod()
	case strings.HasSuffix(line, ":") && a.cur != nil:
		name := strings.TrimSuffix(line, ":")
		if name == "" {
			return fmt.Errorf("empty label")
		}
		if _, dup := a.labels[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		a.labels[name] = int32(len(a.cur.Code))
		return nil
	default:
		if a.cur == nil {
			return fmt.Errorf("instruction outside .method: %q", line)
		}
		return a.instruction(line)
	}
}

func (a *asm) classDirective(line string) error {
	if a.def.Name != "" {
		return fmt.Errorf("duplicate .class")
	}
	toks := strings.Fields(line)
	if len(toks) < 2 {
		return fmt.Errorf(".class needs a name")
	}
	a.def.Name = toks[1]
	if !ValidIdent(a.def.Name) {
		return fmt.Errorf("invalid class name %q", a.def.Name)
	}
	if a.def.Name == ClassObject {
		a.def.Super = "" // the root has no superclass
	}
	i := 2
	for i < len(toks) {
		switch toks[i] {
		case "super":
			if i+1 >= len(toks) {
				return fmt.Errorf("super needs a name")
			}
			a.def.Super = toks[i+1]
			i += 2
		case "implements":
			i++
			for i < len(toks) && !isClassKeyword(toks[i]) {
				a.def.Interfaces = append(a.def.Interfaces, toks[i])
				i++
			}
		case "interface":
			a.def.Flags |= FlagInterface | FlagAbstract
			a.def.Super = ClassObject
			i++
		case "abstract":
			a.def.Flags |= FlagAbstract
			i++
		default:
			return fmt.Errorf("unknown .class token %q", toks[i])
		}
	}
	return nil
}

func isClassKeyword(s string) bool {
	switch s {
	case "super", "implements", "interface", "abstract":
		return true
	}
	return false
}

func (a *asm) fieldDirective(line string) error {
	toks := strings.Fields(line)[1:]
	var f FieldDef
	for len(toks) > 0 {
		switch toks[0] {
		case "static":
			f.Static = true
		case "private":
			f.Private = true
		default:
			goto nameDesc
		}
		toks = toks[1:]
	}
nameDesc:
	if len(toks) != 2 {
		return fmt.Errorf(".field wants [static] [private] name desc")
	}
	f.Name, f.Desc = toks[0], toks[1]
	if !ValidIdent(f.Name) {
		return fmt.Errorf("invalid field name %q", f.Name)
	}
	if _, n, err := parseOneDesc(f.Desc); err != nil || n != len(f.Desc) {
		return fmt.Errorf("invalid field descriptor %q", f.Desc)
	}
	a.def.Fields = append(a.def.Fields, f)
	return nil
}

func (a *asm) methodDirective(line string) error {
	if a.cur != nil {
		return fmt.Errorf("nested .method")
	}
	toks := strings.Fields(line)[1:]
	m := MethodDef{MaxStack: 16}
	for len(toks) > 0 {
		switch toks[0] {
		case "static":
			m.Flags |= MStatic
		case "native":
			m.Flags |= MNative
		case "abstract":
			m.Flags |= MAbstract
		case "private":
			m.Flags |= MPrivate
		case "synchronized":
			m.Flags |= MSynchronized
		default:
			goto name
		}
		toks = toks[1:]
	}
name:
	if len(toks) < 2 {
		return fmt.Errorf(".method wants name and descriptor")
	}
	m.Name = toks[0]
	m.Desc = toks[1]
	if !ValidIdent(m.Name) {
		return fmt.Errorf("invalid method name %q", m.Name)
	}
	if _, _, err := ParseMethodDesc(m.Desc); err != nil {
		return err
	}
	toks = toks[2:]
	for len(toks) >= 2 {
		n, err := strconv.Atoi(toks[1])
		if err != nil {
			return fmt.Errorf("bad %s count %q", toks[0], toks[1])
		}
		switch toks[0] {
		case "stack":
			m.MaxStack = int32(n)
		case "locals":
			m.NumLoc = int32(n)
		default:
			return fmt.Errorf("unknown .method token %q", toks[0])
		}
		toks = toks[2:]
	}
	if len(toks) != 0 {
		return fmt.Errorf("trailing .method tokens %v", toks)
	}
	a.cur = &m
	a.labels = map[string]int32{}
	a.patches = nil
	a.catches = nil
	if m.Flags&(MNative|MAbstract) != 0 {
		// Bodyless methods still need .end for symmetry.
	}
	return nil
}

func (a *asm) catchDirective(line string) error {
	if a.cur == nil {
		return fmt.Errorf(".catch outside .method")
	}
	toks := strings.Fields(line)
	// .catch Type from L1 to L2 using L3
	if len(toks) != 8 || toks[2] != "from" || toks[4] != "to" || toks[6] != "using" {
		return fmt.Errorf(".catch wants: .catch Type from L1 to L2 using L3")
	}
	a.catches = append(a.catches, catchPatch{typ: toks[1], from: toks[3], to: toks[5], using: toks[7]})
	return nil
}

func (a *asm) endMethod() error {
	if a.cur == nil {
		return fmt.Errorf(".end without .method")
	}
	for _, p := range a.patches {
		tgt, ok := a.labels[p.label]
		if !ok {
			return fmt.Errorf("undefined label %q", p.label)
		}
		a.cur.Code[p.instr].I = int64(tgt)
	}
	for _, c := range a.catches {
		from, ok1 := a.labels[c.from]
		to, ok2 := a.labels[c.to]
		using, ok3 := a.labels[c.using]
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("undefined label in .catch %s/%s/%s", c.from, c.to, c.using)
		}
		a.cur.Excs = append(a.cur.Excs, ExcEntry{From: from, To: to, Handler: using, Type: c.typ})
	}
	a.def.Methods = append(a.def.Methods, *a.cur)
	a.cur = nil
	return nil
}

func (a *asm) instruction(line string) error {
	mnem := line
	operand := ""
	if sp := strings.IndexAny(line, " \t"); sp >= 0 {
		mnem, operand = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	op, ok := opByName[mnem]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	info := opTable[op]
	in := Instr{Op: op}
	switch {
	case info.branch:
		if operand == "" {
			return fmt.Errorf("%s wants a label", mnem)
		}
		a.patches = append(a.patches, patch{instr: len(a.cur.Code), label: operand})
	case info.hasI:
		n, err := strconv.ParseInt(operand, 0, 64)
		if err != nil {
			return fmt.Errorf("%s wants an integer, got %q", mnem, operand)
		}
		in.I = n
	case info.hasF:
		f, err := strconv.ParseFloat(operand, 64)
		if err != nil {
			return fmt.Errorf("%s wants a float, got %q", mnem, operand)
		}
		in.F = f
	case info.hasS:
		s := operand
		if strings.HasPrefix(s, `"`) {
			var err error
			s, err = strconv.Unquote(s)
			if err != nil {
				return fmt.Errorf("%s: bad string literal %s", mnem, operand)
			}
		}
		in.S = s
	default:
		if operand != "" {
			return fmt.Errorf("%s takes no operand", mnem)
		}
	}
	a.cur.Code = append(a.cur.Code, in)
	return nil
}

// Disassemble renders a ClassDef in (re-assemblable) textual form.
func Disassemble(def *ClassDef) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".class %s", def.Name)
	if def.Flags&FlagInterface != 0 {
		b.WriteString(" interface")
	} else if def.Super != "" && def.Super != ClassObject {
		fmt.Fprintf(&b, " super %s", def.Super)
	}
	if len(def.Interfaces) > 0 {
		b.WriteString(" implements")
		for _, it := range def.Interfaces {
			b.WriteByte(' ')
			b.WriteString(it)
		}
	}
	if def.Flags&FlagAbstract != 0 && def.Flags&FlagInterface == 0 {
		b.WriteString(" abstract")
	}
	b.WriteByte('\n')
	for _, f := range def.Fields {
		mods := ""
		if f.Static {
			mods += "static "
		}
		if f.Private {
			mods += "private "
		}
		fmt.Fprintf(&b, ".field %s%s %s\n", mods, f.Name, f.Desc)
	}
	for i := range def.Methods {
		m := &def.Methods[i]
		b.WriteString(".method ")
		if m.Flags&MStatic != 0 {
			b.WriteString("static ")
		}
		if m.Flags&MNative != 0 {
			b.WriteString("native ")
		}
		if m.Flags&MAbstract != 0 {
			b.WriteString("abstract ")
		}
		if m.Flags&MPrivate != 0 {
			b.WriteString("private ")
		}
		if m.Flags&MSynchronized != 0 {
			b.WriteString("synchronized ")
		}
		fmt.Fprintf(&b, "%s %s stack %d locals %d\n", m.Name, m.Desc, m.MaxStack, m.NumLoc)
		// Labels for every branch target and handler boundary.
		targets := map[int32]string{}
		want := func(pc int32) string {
			if name, ok := targets[pc]; ok {
				return name
			}
			name := fmt.Sprintf("L%d", pc)
			targets[pc] = name
			return name
		}
		for _, in := range m.Code {
			if in.Op.IsBranch() {
				want(int32(in.I))
			}
		}
		for _, e := range m.Excs {
			want(e.From)
			want(e.To)
			want(e.Handler)
		}
		for pc, in := range m.Code {
			if name, ok := targets[int32(pc)]; ok {
				fmt.Fprintf(&b, "%s:\n", name)
			}
			if in.Op.IsBranch() {
				fmt.Fprintf(&b, "  %s %s\n", in.Op.Name(), want(int32(in.I)))
				continue
			}
			info := opTable[in.Op]
			switch {
			case info.hasS:
				fmt.Fprintf(&b, "  %s %q\n", in.Op.Name(), in.S)
			case info.hasF:
				fmt.Fprintf(&b, "  %s %v\n", in.Op.Name(), in.F)
			case info.hasI:
				fmt.Fprintf(&b, "  %s %d\n", in.Op.Name(), in.I)
			default:
				fmt.Fprintf(&b, "  %s\n", in.Op.Name())
			}
		}
		if name, ok := targets[int32(len(m.Code))]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		for _, e := range m.Excs {
			fmt.Fprintf(&b, "  .catch %s from %s to %s using %s\n",
				e.Type, want(e.From), want(e.To), want(e.Handler))
		}
		b.WriteString(".end\n")
	}
	return b.String()
}
