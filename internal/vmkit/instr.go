package vmkit

import (
	"fmt"
	"strings"
)

// Opcode enumerates the VM instruction set. The set is deliberately small
// and orthogonal; it is sufficient to express the J-Kernel stubs, the
// servlet workloads, and the paper's example programs.
type Opcode uint8

const (
	OpNop Opcode = iota

	// Constants. ICONST uses I, DCONST uses F, SCONST uses S (a string
	// literal materialized as an interned jk/lang/String per namespace),
	// NULLCONST pushes null.
	OpIConst
	OpDConst
	OpSConst
	OpNullConst

	// Locals. I is the slot index.
	OpLoad
	OpStore

	// Operand stack.
	OpPop
	OpDup
	OpDupX1 // duplicate top and insert below the next value: a b -> b a b
	OpSwap

	// Integer arithmetic/logic (operate on two KInt operands; NEG on one).
	OpIAdd
	OpISub
	OpIMul
	OpIDiv
	OpIRem
	OpINeg
	OpIShl
	OpIShr
	OpIUshr
	OpIAnd
	OpIOr
	OpIXor

	// Float arithmetic.
	OpDAdd
	OpDSub
	OpDMul
	OpDDiv
	OpDNeg

	// Conversions and comparison.
	OpI2D
	OpD2I
	OpDCmp // pushes -1/0/1

	// Control flow. I is the (resolved) target instruction index; the
	// assembler resolves labels.
	OpJmp
	OpIfEQ // pops b, a; branches when a == b
	OpIfNE
	OpIfLT
	OpIfLE
	OpIfGT
	OpIfGE
	OpIfZ  // pops a; branches when a == 0
	OpIfNZ // pops a; branches when a != 0
	OpIfNull
	OpIfNonNull
	OpIfACmpEQ // reference identity
	OpIfACmpNE

	// Object model. S is a class name for NEW/CAST/INSTOF; a
	// "Class.name:Desc" field reference for the field ops; a
	// "Class.name:(..)R" method reference for the invokes.
	OpNew
	OpGetF
	OpPutF
	OpGetS
	OpPutS
	OpInvokeV // virtual dispatch on the receiver's runtime class
	OpInvokeI // interface dispatch
	OpInvokeS // static
	OpCast
	OpInstOf

	// Arrays. S is the array descriptor for NEWARR ("[B", "[I", "[D",
	// "[L...;"). Element load/store are typed by the array at run time and
	// by the descriptor during verification.
	OpNewArr
	OpALoad
	OpAStore
	OpALen

	// Exceptions and monitors.
	OpThrow
	OpMonEnter
	OpMonExit

	// Returns.
	OpRet  // void
	OpRetV // returns the top of stack

	opMax // sentinel; not a real opcode
)

// Instr is one decoded instruction. Operand use depends on Op; unused
// operands are zero.
type Instr struct {
	Op Opcode
	I  int64
	F  float64
	S  string
}

// opInfo describes static properties of each opcode used by the assembler,
// codec, and verifier.
type opInfo struct {
	name   string
	hasI   bool // carries an integer operand (imm, slot, or branch target)
	hasF   bool
	hasS   bool
	branch bool // I is a code index patched from a label
}

var opTable = [opMax]opInfo{
	OpNop:       {name: "nop"},
	OpIConst:    {name: "iconst", hasI: true},
	OpDConst:    {name: "dconst", hasF: true},
	OpSConst:    {name: "sconst", hasS: true},
	OpNullConst: {name: "aconst_null"},
	OpLoad:      {name: "load", hasI: true},
	OpStore:     {name: "store", hasI: true},
	OpPop:       {name: "pop"},
	OpDup:       {name: "dup"},
	OpDupX1:     {name: "dup_x1"},
	OpSwap:      {name: "swap"},
	OpIAdd:      {name: "iadd"},
	OpISub:      {name: "isub"},
	OpIMul:      {name: "imul"},
	OpIDiv:      {name: "idiv"},
	OpIRem:      {name: "irem"},
	OpINeg:      {name: "ineg"},
	OpIShl:      {name: "ishl"},
	OpIShr:      {name: "ishr"},
	OpIUshr:     {name: "iushr"},
	OpIAnd:      {name: "iand"},
	OpIOr:       {name: "ior"},
	OpIXor:      {name: "ixor"},
	OpDAdd:      {name: "dadd"},
	OpDSub:      {name: "dsub"},
	OpDMul:      {name: "dmul"},
	OpDDiv:      {name: "ddiv"},
	OpDNeg:      {name: "dneg"},
	OpI2D:       {name: "i2d"},
	OpD2I:       {name: "d2i"},
	OpDCmp:      {name: "dcmp"},
	OpJmp:       {name: "jmp", hasI: true, branch: true},
	OpIfEQ:      {name: "if_eq", hasI: true, branch: true},
	OpIfNE:      {name: "if_ne", hasI: true, branch: true},
	OpIfLT:      {name: "if_lt", hasI: true, branch: true},
	OpIfLE:      {name: "if_le", hasI: true, branch: true},
	OpIfGT:      {name: "if_gt", hasI: true, branch: true},
	OpIfGE:      {name: "if_ge", hasI: true, branch: true},
	OpIfZ:       {name: "ifz", hasI: true, branch: true},
	OpIfNZ:      {name: "ifnz", hasI: true, branch: true},
	OpIfNull:    {name: "ifnull", hasI: true, branch: true},
	OpIfNonNull: {name: "ifnonnull", hasI: true, branch: true},
	OpIfACmpEQ:  {name: "if_acmpeq", hasI: true, branch: true},
	OpIfACmpNE:  {name: "if_acmpne", hasI: true, branch: true},
	OpNew:       {name: "new", hasS: true},
	OpGetF:      {name: "getfield", hasS: true},
	OpPutF:      {name: "putfield", hasS: true},
	OpGetS:      {name: "getstatic", hasS: true},
	OpPutS:      {name: "putstatic", hasS: true},
	OpInvokeV:   {name: "invokevirtual", hasS: true},
	OpInvokeI:   {name: "invokeinterface", hasS: true},
	OpInvokeS:   {name: "invokestatic", hasS: true},
	OpCast:      {name: "cast", hasS: true},
	OpInstOf:    {name: "instanceof", hasS: true},
	OpNewArr:    {name: "newarr", hasS: true},
	OpALoad:     {name: "aload"},
	OpAStore:    {name: "astore"},
	OpALen:      {name: "arraylength"},
	OpThrow:     {name: "throw"},
	OpMonEnter:  {name: "monitorenter"},
	OpMonExit:   {name: "monitorexit"},
	OpRet:       {name: "ret"},
	OpRetV:      {name: "retv"},
}

// opByName maps mnemonic to opcode for the assembler.
var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, int(opMax))
	for op := Opcode(0); op < opMax; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()

// Name returns the assembler mnemonic for op.
func (op Opcode) Name() string {
	if op < opMax {
		return opTable[op].name
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// IsBranch reports whether the opcode's I operand is a code index.
func (op Opcode) IsBranch() bool { return op < opMax && opTable[op].branch }

// String renders the instruction in assembler syntax (branch targets as raw
// indices).
func (in Instr) String() string {
	info := opTable[in.Op]
	switch {
	case info.hasS:
		return fmt.Sprintf("%s %q", info.name, in.S)
	case info.hasF:
		return fmt.Sprintf("%s %g", info.name, in.F)
	case info.hasI:
		return fmt.Sprintf("%s %d", info.name, in.I)
	default:
		return info.name
	}
}

// FieldRef is a parsed "Class.name:Desc" symbolic field reference.
type FieldRef struct {
	Class, Name, Desc string
}

// MethodRef is a parsed "Class.name:(params)ret" symbolic method reference.
type MethodRef struct {
	Class, Name, Desc string
}

// ParseFieldRef parses "Class.name:Desc".
func ParseFieldRef(s string) (FieldRef, error) {
	dot := strings.LastIndexByte(s, '.')
	if dot <= 0 {
		return FieldRef{}, fmt.Errorf("vmkit: bad field ref %q", s)
	}
	colon := indexByteFrom(s, ':', dot)
	if colon < 0 || colon == len(s)-1 {
		return FieldRef{}, fmt.Errorf("vmkit: bad field ref %q", s)
	}
	fr := FieldRef{Class: s[:dot], Name: s[dot+1 : colon], Desc: s[colon+1:]}
	if fr.Name == "" || !ValidIdent(fr.Class) {
		return FieldRef{}, fmt.Errorf("vmkit: bad field ref %q", s)
	}
	if _, n, err := parseOneDesc(fr.Desc); err != nil || n != len(fr.Desc) {
		return FieldRef{}, fmt.Errorf("vmkit: bad field descriptor in %q", s)
	}
	return fr, nil
}

// ParseMethodRef parses "Class.name:(params)ret". The class/name split is
// the last '.' before the descriptor's '(' (class names may be dotted).
func ParseMethodRef(s string) (MethodRef, error) {
	end := strings.IndexByte(s, '(')
	if end < 0 {
		end = len(s)
	}
	dot := strings.LastIndexByte(s[:end], '.')
	if dot <= 0 {
		return MethodRef{}, fmt.Errorf("vmkit: bad method ref %q", s)
	}
	colon := indexByteFrom(s, ':', dot)
	if colon < 0 {
		return MethodRef{}, fmt.Errorf("vmkit: bad method ref %q", s)
	}
	mr := MethodRef{Class: s[:dot], Name: s[dot+1 : colon], Desc: s[colon+1:]}
	if mr.Name == "" || !ValidIdent(mr.Class) {
		return MethodRef{}, fmt.Errorf("vmkit: bad method ref %q", s)
	}
	if _, _, err := ParseMethodDesc(mr.Desc); err != nil {
		return MethodRef{}, err
	}
	return mr, nil
}

// indexByteFrom finds b in s at or after from.
func indexByteFrom(s string, b byte, from int) int {
	if i := strings.IndexByte(s[from:], b); i >= 0 {
		return from + i
	}
	return -1
}
