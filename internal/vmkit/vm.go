package vmkit

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Profile selects a VM cost structure. The paper measured two commercial
// JVMs whose overheads decomposed differently (Table 1): MS-VM had
// expensive interface dispatch and cheap locks, Sun-VM the reverse. The two
// profiles reproduce those shapes on one interpreter.
type Profile struct {
	Name string
	// LinearIfaceDispatch makes invokeinterface scan the receiver class's
	// flattened method list on every call instead of using the vtable map.
	LinearIfaceDispatch bool
	// HeavyLocks adds ownership bookkeeping and contention statistics to
	// every monitor operation.
	HeavyLocks bool
	// HeavyThreadLookup routes current-thread lookups through a second
	// indirection table.
	HeavyThreadLookup bool
}

// ProfileA models the MS-VM cost shape: slow interface dispatch, cheap
// locks.
var ProfileA = Profile{Name: "vm-A", LinearIfaceDispatch: true}

// ProfileB models the Sun-VM cost shape: fast interface dispatch, heavy
// locks.
var ProfileB = Profile{Name: "vm-B", HeavyLocks: true, HeavyThreadLookup: true}

// ChargeKind classifies resource charges reported to the accounting hook.
type ChargeKind uint8

const (
	// ChargeAlloc is heap allocation, in approximate bytes.
	ChargeAlloc ChargeKind = iota
	// ChargeSteps is interpreter work, in executed instructions.
	ChargeSteps
	// ChargeCopy is LRMI argument copying, in bytes.
	ChargeCopy
	// ChargeClass is class metadata, in approximate bytes.
	ChargeClass
)

// VM is one virtual machine instance: bootstrap classes, native methods,
// threads, and a cost profile. The J-Kernel's Kernel wraps exactly one VM,
// mirroring "multiple protection domains within a single JVM".
type VM struct {
	Profile Profile

	// Charge, when set, receives resource charges (owner is a domain id,
	// 0 = system). Set by the accounting layer before classes load.
	Charge func(owner int64, kind ChargeKind, amount int64)

	// CapOps is set by the J-Kernel layer to back the jk/kernel/Capability
	// natives with its gate table.
	CapOps CapabilityOps

	// Stdout receives output from the per-domain System.println native when
	// the namespace has no domain-specific writer bound.
	Stdout io.Writer

	nativesMu sync.RWMutex
	natives   map[string]NativeFunc

	boot *Namespace

	threadsMu sync.RWMutex
	threads   map[int64]*Thread
	// threadsAux is the second indirection used by HeavyThreadLookup.
	threadsAux map[int64]int64
	nextThread atomic.Int64

	lockStatsMu sync.Mutex
	lockStats   map[*Object]int64
	// lockProxy stands in for non-monitor lock pairs (segment switches)
	// under the HeavyLocks profile.
	lockProxy Object

	// ifaceRegMu serializes ProfileA's interface dispatch, which performs
	// an uncached search of the receiver's method list under a VM-global
	// lock on every invokeinterface — the cost structure Table 1 measured
	// on MS-VM, where interface calls went through a shared, synchronized
	// interface-method table instead of per-class itables.
	ifaceRegMu sync.Mutex
	ifaceSink  string
}

// ifaceDispatchSlow resolves an interface method the ProfileA way.
func (vm *VM) ifaceDispatchSlow(recv *Class, name, desc string) *Method {
	key := recv.Name + "|" + name + ":" + desc
	vm.ifaceRegMu.Lock()
	defer vm.ifaceRegMu.Unlock()
	vm.ifaceSink = key // the key build is part of the measured cost
	var found *Method
	for _, cand := range recv.methods {
		if cand.Name == name && cand.Desc == desc {
			found = cand
		}
	}
	return found
}

// New creates a VM with the given profile and defines the bootstrap
// classes.
func New(p Profile) (*VM, error) {
	vm := &VM{
		Profile:    p,
		natives:    make(map[string]NativeFunc),
		threads:    make(map[int64]*Thread),
		threadsAux: make(map[int64]int64),
		lockStats:  make(map[*Object]int64),
		Stdout:     io.Discard,
	}
	registerBuiltinNatives(vm)
	boot := vm.NewNamespace("bootstrap", nil)
	vm.boot = boot
	if err := defineBootstrap(boot); err != nil {
		return nil, fmt.Errorf("vmkit: bootstrap: %w", err)
	}
	return vm, nil
}

// MustNew is New that panics on error (bootstrap classes are compiled in,
// so failure is a programming error).
func MustNew(p Profile) *VM {
	vm, err := New(p)
	if err != nil {
		panic(err)
	}
	return vm
}

// Bootstrap returns the namespace holding the system classes.
func (vm *VM) Bootstrap() *Namespace { return vm.boot }

// BootResolver returns a resolver that shares the VM's bootstrap classes.
// Domain resolvers typically chain to it for system names (minus the
// interposed ones) and add their own local classes.
func (vm *VM) BootResolver() ResolverFunc {
	return func(name string) (*Resolution, error) {
		if c := vm.boot.Lookup(name); c != nil {
			return &Resolution{Shared: c}, nil
		}
		return nil, nil
	}
}

// MapResolver resolves from a map of class bytes, falling back to next.
func MapResolver(classes map[string][]byte, next ResolverFunc) ResolverFunc {
	return func(name string) (*Resolution, error) {
		if b, ok := classes[name]; ok {
			return &Resolution{Bytes: b}, nil
		}
		if next != nil {
			return next(name)
		}
		return nil, nil
	}
}

// SystemClass returns a bootstrap class by name, or nil.
func (vm *VM) SystemClass(name string) *Class { return vm.boot.Lookup(name) }

// RegisterNative binds a Go function to "Class.method:(desc)ret". It must
// be called before any class declaring that native method links.
func (vm *VM) RegisterNative(key string, fn NativeFunc) {
	vm.nativesMu.Lock()
	defer vm.nativesMu.Unlock()
	vm.natives[key] = fn
}

func (vm *VM) nativeFor(key string) NativeFunc {
	vm.nativesMu.RLock()
	defer vm.nativesMu.RUnlock()
	return vm.natives[key]
}

// NativeFunc implements a native method. recv is nil for static methods.
// A non-nil second result is a thrown VM throwable that unwinds the caller.
type NativeFunc func(env *Env, recv *Object, args []Value) (Value, *Object)

// Env is the context handed to native methods.
type Env struct {
	VM     *VM
	NS     *Namespace // namespace of the declaring class
	Thread *Thread
}

// Throwf builds a VM throwable of the given class with a formatted message.
// The class is resolved in the bootstrap namespace; every namespace shares
// the bootstrap throwable hierarchy.
func (vm *VM) Throwf(class, format string, args ...any) *Object {
	c := vm.boot.Lookup(class)
	if c == nil {
		// Fall back to the root error type; never returns nil.
		c = vm.boot.Lookup(ClassError)
		if c == nil {
			panic("vmkit: bootstrap throwables missing")
		}
	}
	o := &Object{Class: c, Fields: make([]Value, c.numSlots)}
	msg := fmt.Sprintf(format, args...)
	if f := c.FieldByName("message"); f != nil {
		s, err := vm.boot.NewString(msg)
		if err == nil {
			o.Fields[f.Slot] = RefVal(s)
		}
	}
	for i := range o.Fields {
		if o.Fields[i].K == KInvalid {
			o.Fields[i] = Null()
		}
	}
	return o
}

// ThrowableMessage extracts the message string of a throwable ("" if none).
func ThrowableMessage(t *Object) string {
	if t == nil || t.Class == nil {
		return ""
	}
	f := t.Class.FieldByName("message")
	if f == nil {
		return ""
	}
	return StringText(t.Fields[f.Slot].R)
}

// ThrownError adapts a VM throwable into a Go error for API boundaries.
type ThrownError struct {
	Throwable *Object
}

func (e *ThrownError) Error() string {
	if e.Throwable == nil {
		return "vm: unknown throwable"
	}
	msg := ThrowableMessage(e.Throwable)
	if msg == "" {
		return fmt.Sprintf("vm: %s", e.Throwable.Class.Name)
	}
	return fmt.Sprintf("vm: %s: %s", e.Throwable.Class.Name, msg)
}

// lockStatRecord implements the HeavyLocks profile bookkeeping: a real
// shared-table update per monitor operation, like the lock inflation and
// contention tracking in heavyweight JVM monitors.
func (vm *VM) lockStatRecord(o *Object) {
	vm.lockStatsMu.Lock()
	vm.lockStats[o]++
	if len(vm.lockStats) > 1<<12 {
		clear(vm.lockStats)
	}
	vm.lockStatsMu.Unlock()
}

// RecordHeavyLock lets other layers (the LRMI segment switch) charge the
// HeavyLocks profile's synchronization bookkeeping to their own lock
// pairs: on Sun-VM the two lock acquire/release pairs per cross-domain
// call were a dominant cost (Table 1). No-op on light-lock profiles.
func (vm *VM) RecordHeavyLock(o *Object) {
	if !vm.Profile.HeavyLocks {
		return
	}
	if o == nil {
		o = &vm.lockProxy
	}
	vm.lockStatRecord(o)
}
