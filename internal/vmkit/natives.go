package vmkit

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// CapabilityOps is implemented by the J-Kernel layer: the bootstrap
// jk/kernel/Capability natives delegate revocation and the generic gate
// call to the kernel's gate table.
type CapabilityOps interface {
	Revoke(env *Env, stub *Object) *Object
	IsRevoked(env *Env, stub *Object) (int64, *Object)
	// Invoke0 performs a cross-domain call: method index idx on the stub's
	// gate with boxed arguments. It returns the boxed result.
	Invoke0(env *Env, stub *Object, idx int64, args *Object) (Value, *Object)
}

var hashCounter atomic.Int64

// identityHash lazily assigns a stable identity hash to o.
func identityHash(o *Object) int64 {
	h := atomic.LoadInt64(&o.hash)
	if h != 0 {
		return h
	}
	n := hashCounter.Add(1)
	if atomic.CompareAndSwapInt64(&o.hash, 0, n) {
		return n
	}
	return atomic.LoadInt64(&o.hash)
}

func (vm *VM) npe(format string, args ...any) *Object {
	return vm.Throwf(ClassNullPointerEx, format, args...)
}

// stringBytes returns the byte array backing a String (nil-safe).
func stringBytes(s *Object) []byte {
	if s == nil || s.Class == nil {
		return nil
	}
	f := s.Class.FieldByName("bytes")
	if f == nil {
		return nil
	}
	arr := s.Fields[f.Slot].R
	if arr == nil {
		return nil
	}
	return arr.Bytes
}

// newStringIn allocates a String in env's namespace, converting any
// allocation failure to a throwable.
func newStringIn(env *Env, text string) (Value, *Object) {
	s, err := env.NS.NewString(text)
	if err != nil {
		return Value{}, env.VM.Throwf(ClassError, "string alloc: %v", err)
	}
	return RefVal(s), nil
}

func registerBuiltinNatives(vm *VM) {
	reg := vm.RegisterNative

	// ---- jk/lang/Object ----
	reg("jk/lang/Object.hashCode:()I", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		return IntVal(identityHash(recv)), nil
	})
	reg("jk/lang/Object.toString:()Ljk/lang/String;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		return newStringIn(env, fmt.Sprintf("%s@%d", recv.Class.Name, identityHash(recv)))
	})

	// ---- jk/lang/String ----
	reg("jk/lang/String.length:()I", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		return IntVal(int64(len(stringBytes(recv)))), nil
	})
	reg("jk/lang/String.charAt:(I)I", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		b := stringBytes(recv)
		i := args[0].I
		if i < 0 || int(i) >= len(b) {
			return Value{}, env.VM.Throwf(ClassIndexEx, "charAt(%d) of %d", i, len(b))
		}
		return IntVal(int64(b[i])), nil
	})
	reg("jk/lang/String.equals:(Ljk/lang/Object;)I", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		other := args[0].R
		if other == nil || other.Class == nil || other.Class.Name != ClassString {
			return IntVal(0), nil
		}
		if string(stringBytes(recv)) == string(stringBytes(other)) {
			return IntVal(1), nil
		}
		return IntVal(0), nil
	})
	reg("jk/lang/String.hashCode:()I", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		var h int64
		for _, b := range stringBytes(recv) {
			h = h*31 + int64(b)
		}
		return IntVal(h), nil
	})
	reg("jk/lang/String.concat:(Ljk/lang/String;)Ljk/lang/String;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if args[0].R == nil {
			return Value{}, env.VM.npe("concat(null)")
		}
		return newStringIn(env, string(stringBytes(recv))+string(stringBytes(args[0].R)))
	})
	reg("jk/lang/String.substring:(II)Ljk/lang/String;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		b := stringBytes(recv)
		from, to := args[0].I, args[1].I
		if from < 0 || to < from || int(to) > len(b) {
			return Value{}, env.VM.Throwf(ClassIndexEx, "substring(%d,%d) of %d", from, to, len(b))
		}
		return newStringIn(env, string(b[from:to]))
	})
	reg("jk/lang/String.getBytes:()[B", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		// Returns a copy: String is immutable; handing out the internal
		// array would be the exact hazard the paper warns about.
		src := stringBytes(recv)
		arr, err := env.NS.NewArray("[B", len(src))
		if err != nil {
			return Value{}, env.VM.Throwf(ClassError, "%v", err)
		}
		copy(arr.Bytes, src)
		return RefVal(arr), nil
	})
	reg("jk/lang/String.indexOf:(I)I", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		b := stringBytes(recv)
		c := byte(args[0].I)
		for i := range b {
			if b[i] == c {
				return IntVal(int64(i)), nil
			}
		}
		return IntVal(-1), nil
	})
	reg("jk/lang/String.toString:()Ljk/lang/String;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		return RefVal(recv), nil
	})
	reg("jk/lang/String.fromBytes:([B)Ljk/lang/String;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if args[0].R == nil {
			return Value{}, env.VM.npe("fromBytes(null)")
		}
		return newStringIn(env, string(args[0].R.Bytes))
	})
	reg("jk/lang/String.valueOfInt:(I)Ljk/lang/String;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		return newStringIn(env, fmt.Sprintf("%d", args[0].I))
	})

	// ---- jk/lang/System (per-namespace output) ----
	reg("jk/lang/System.println:(Ljk/lang/String;)V", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		w := env.NS.Output
		if w == nil {
			w = env.VM.Stdout
		}
		fmt.Fprintln(w, StringText(args[0].R))
		return Value{}, nil
	})
	reg("jk/lang/System.printInt:(I)V", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		w := env.NS.Output
		if w == nil {
			w = env.VM.Stdout
		}
		fmt.Fprintln(w, args[0].I)
		return Value{}, nil
	})
	reg("jk/lang/System.timeNanos:()I", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		return IntVal(time.Now().UnixNano()), nil
	})

	// ---- jk/lang/Thread (carrier semantics; the kernel interposes) ----
	threadField := func(env *Env, obj *Object) (*Thread, *Object) {
		f := obj.Class.FieldByName("id")
		if f == nil {
			return nil, env.VM.Throwf(ClassError, "thread object missing id")
		}
		t := env.VM.LookupThread(obj.Fields[f.Slot].I)
		if t == nil {
			return nil, env.VM.Throwf(ClassIllegalStateEx, "no such thread")
		}
		return t, nil
	}
	reg("jk/lang/Thread.currentThread:()Ljk/lang/Thread;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if ops := env.NS.ThreadOps; ops != nil {
			o, th := ops.Current(env)
			if th != nil {
				return Value{}, th
			}
			return RefVal(o), nil
		}
		tc, err := env.NS.Resolve(ClassThread)
		if err != nil {
			return Value{}, env.VM.Throwf(ClassError, "%v", err)
		}
		o, ierr := NewInstance(tc)
		if ierr != nil {
			return Value{}, env.VM.Throwf(ClassError, "%v", ierr)
		}
		o.Fields[tc.FieldByName("id").Slot] = IntVal(env.Thread.ID)
		return RefVal(o), nil
	})
	reg("jk/lang/Thread.stop:()V", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if ops := env.NS.ThreadOps; ops != nil {
			return Value{}, ops.Stop(env, recv)
		}
		t, th := threadField(env, recv)
		if th != nil {
			return Value{}, th
		}
		t.Stop(env.VM.Throwf(ClassThreadDeath, "stopped"))
		return Value{}, nil
	})
	reg("jk/lang/Thread.suspend:()V", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if ops := env.NS.ThreadOps; ops != nil {
			return Value{}, ops.Suspend(env, recv)
		}
		t, th := threadField(env, recv)
		if th != nil {
			return Value{}, th
		}
		t.Suspend()
		return Value{}, nil
	})
	reg("jk/lang/Thread.resume:()V", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if ops := env.NS.ThreadOps; ops != nil {
			return Value{}, ops.Resume(env, recv)
		}
		t, th := threadField(env, recv)
		if th != nil {
			return Value{}, th
		}
		t.Resume()
		return Value{}, nil
	})
	reg("jk/lang/Thread.setPriority:(I)V", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if ops := env.NS.ThreadOps; ops != nil {
			return Value{}, ops.SetPriority(env, recv, args[0].I)
		}
		t, th := threadField(env, recv)
		if th != nil {
			return Value{}, th
		}
		t.SetPriority(args[0].I)
		return Value{}, nil
	})
	reg("jk/lang/Thread.getPriority:()I", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if ops := env.NS.ThreadOps; ops != nil {
			p, th := ops.GetPriority(env, recv)
			if th != nil {
				return Value{}, th
			}
			return IntVal(p), nil
		}
		t, th := threadField(env, recv)
		if th != nil {
			return Value{}, th
		}
		return IntVal(t.Priority()), nil
	})
	reg("jk/lang/Thread.yield:()V", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		runtime.Gosched()
		return Value{}, nil
	})

	// ---- jk/kernel/Capability ----
	reg("jk/kernel/Capability.revoke:()V", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if env.VM.CapOps == nil {
			return Value{}, env.VM.Throwf(ClassIllegalStateEx, "no kernel loaded")
		}
		return Value{}, env.VM.CapOps.Revoke(env, recv)
	})
	reg("jk/kernel/Capability.isRevoked:()I", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if env.VM.CapOps == nil {
			return Value{}, env.VM.Throwf(ClassIllegalStateEx, "no kernel loaded")
		}
		v, th := env.VM.CapOps.IsRevoked(env, recv)
		if th != nil {
			return Value{}, th
		}
		return IntVal(v), nil
	})
	reg("jk/kernel/Capability.invoke0:(I[Ljk/lang/Object;)Ljk/lang/Object;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if env.VM.CapOps == nil {
			return Value{}, env.VM.Throwf(ClassIllegalStateEx, "no kernel loaded")
		}
		return env.VM.CapOps.Invoke0(env, recv, args[0].I, args[1].R)
	})

	// ---- jk/lang/StringBuilder ----
	sbFields := func(recv *Object) (bufF, lenF *Field) {
		return recv.Class.FieldByName("buf"), recv.Class.FieldByName("len")
	}
	sbAppend := func(env *Env, recv *Object, data []byte) *Object {
		bufF, lenF := sbFields(recv)
		buf := recv.Fields[bufF.Slot].R
		n := recv.Fields[lenF.Slot].I
		if buf == nil {
			arr, err := env.NS.NewArray("[B", 16+len(data))
			if err != nil {
				return env.VM.Throwf(ClassError, "%v", err)
			}
			buf = arr
			recv.Fields[bufF.Slot] = RefVal(buf)
		}
		if int(n)+len(data) > len(buf.Bytes) {
			arr, err := env.NS.NewArray("[B", 2*(int(n)+len(data)))
			if err != nil {
				return env.VM.Throwf(ClassError, "%v", err)
			}
			copy(arr.Bytes, buf.Bytes[:n])
			buf = arr
			recv.Fields[bufF.Slot] = RefVal(buf)
		}
		copy(buf.Bytes[n:], data)
		recv.Fields[lenF.Slot] = IntVal(n + int64(len(data)))
		return nil
	}
	reg("jk/lang/StringBuilder.appendStr:(Ljk/lang/String;)Ljk/lang/StringBuilder;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if th := sbAppend(env, recv, stringBytes(args[0].R)); th != nil {
			return Value{}, th
		}
		return RefVal(recv), nil
	})
	reg("jk/lang/StringBuilder.appendInt:(I)Ljk/lang/StringBuilder;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		if th := sbAppend(env, recv, []byte(fmt.Sprintf("%d", args[0].I))); th != nil {
			return Value{}, th
		}
		return RefVal(recv), nil
	})
	reg("jk/lang/StringBuilder.toString:()Ljk/lang/String;", func(env *Env, recv *Object, args []Value) (Value, *Object) {
		bufF, lenF := sbFields(recv)
		buf := recv.Fields[bufF.Slot].R
		n := recv.Fields[lenF.Slot].I
		if buf == nil {
			return newStringIn(env, "")
		}
		return newStringIn(env, string(buf.Bytes[:n]))
	})
}
