package vmkit

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary class-file format ("JKC1"): the []byte that resolvers hand to a
// namespace, that the verifier checks, and that interposition may rewrite.
//
//	magic "JKC1"
//	class:   str name, str super, u16 flags, vec<str> interfaces,
//	         vec<field>, vec<method>
//	field:   str name, str desc, u8 static
//	method:  str name, str desc, u16 flags, u32 maxstack, u32 numloc,
//	         vec<instr>, vec<exc>
//	instr:   u8 op, then per opTable: varint I | f64 F | str S
//	exc:     u32 from, u32 to, u32 handler, str type
//
// All integers are unsigned varints except f64 (fixed 8 bytes, little
// endian) and the u8/u16/u32 noted above, which are also varint-encoded but
// range-checked on decode.

const classMagic = "JKC1"

// maxCounts bound decoded vector lengths so a hostile class file cannot
// force huge allocations before verification.
const (
	maxFields  = 1 << 14
	maxMethods = 1 << 14
	maxCode    = 1 << 20
	maxExcs    = 1 << 12
	maxStrLen  = 1 << 16
	maxIfaces  = 1 << 8
)

// EncodeClass serializes def into the binary class format.
func EncodeClass(def *ClassDef) []byte {
	w := &cfWriter{}
	w.raw([]byte(classMagic))
	w.str(def.Name)
	w.str(def.Super)
	w.uvarint(uint64(def.Flags))
	w.uvarint(uint64(len(def.Interfaces)))
	for _, it := range def.Interfaces {
		w.str(it)
	}
	w.uvarint(uint64(len(def.Fields)))
	for _, f := range def.Fields {
		w.str(f.Name)
		w.str(f.Desc)
		var flags byte
		if f.Static {
			flags |= 1
		}
		if f.Private {
			flags |= 2
		}
		w.byte(flags)
	}
	w.uvarint(uint64(len(def.Methods)))
	for i := range def.Methods {
		m := &def.Methods[i]
		w.str(m.Name)
		w.str(m.Desc)
		w.uvarint(uint64(m.Flags))
		w.uvarint(uint64(m.MaxStack))
		w.uvarint(uint64(m.NumLoc))
		w.uvarint(uint64(len(m.Code)))
		for _, in := range m.Code {
			w.byte(byte(in.Op))
			info := opTable[in.Op]
			switch {
			case info.hasI:
				w.varint(in.I)
			case info.hasF:
				w.f64(in.F)
			case info.hasS:
				w.str(in.S)
			}
		}
		w.uvarint(uint64(len(m.Excs)))
		for _, e := range m.Excs {
			w.uvarint(uint64(e.From))
			w.uvarint(uint64(e.To))
			w.uvarint(uint64(e.Handler))
			w.str(e.Type)
		}
	}
	return w.buf
}

// DecodeClass parses the binary class format. It validates structural
// bounds (lengths, opcode ranges, descriptor shapes are left to the
// verifier) but not type correctness.
func DecodeClass(data []byte) (*ClassDef, error) {
	r := &cfReader{buf: data}
	magic := r.raw(4)
	if string(magic) != classMagic {
		return nil, fmt.Errorf("vmkit: bad class magic")
	}
	def := &ClassDef{}
	def.Name = r.str()
	def.Super = r.str()
	def.Flags = ClassFlags(r.bounded(math.MaxUint16))
	nif := r.bounded(maxIfaces)
	for i := uint64(0); i < nif; i++ {
		def.Interfaces = append(def.Interfaces, r.str())
	}
	nf := r.bounded(maxFields)
	for i := uint64(0); i < nf; i++ {
		var f FieldDef
		f.Name = r.str()
		f.Desc = r.str()
		flags := r.byte()
		f.Static = flags&1 != 0
		f.Private = flags&2 != 0
		def.Fields = append(def.Fields, f)
	}
	nm := r.bounded(maxMethods)
	for i := uint64(0); i < nm; i++ {
		var m MethodDef
		m.Name = r.str()
		m.Desc = r.str()
		m.Flags = MethodFlags(r.bounded(math.MaxUint16))
		m.MaxStack = int32(r.bounded(math.MaxInt32))
		m.NumLoc = int32(r.bounded(math.MaxInt32))
		ni := r.bounded(maxCode)
		m.Code = make([]Instr, 0, min(ni, 4096))
		for j := uint64(0); j < ni; j++ {
			op := Opcode(r.byte())
			if op >= opMax || opTable[op].name == "" {
				return nil, fmt.Errorf("vmkit: bad opcode %d at %s.%s[%d]", op, def.Name, m.Name, j)
			}
			in := Instr{Op: op}
			info := opTable[op]
			switch {
			case info.hasI:
				in.I = r.varint()
			case info.hasF:
				in.F = r.f64()
			case info.hasS:
				in.S = r.str()
			}
			m.Code = append(m.Code, in)
		}
		ne := r.bounded(maxExcs)
		for j := uint64(0); j < ne; j++ {
			var e ExcEntry
			e.From = int32(r.bounded(math.MaxInt32))
			e.To = int32(r.bounded(math.MaxInt32))
			e.Handler = int32(r.bounded(math.MaxInt32))
			e.Type = r.str()
			m.Excs = append(m.Excs, e)
		}
		def.Methods = append(def.Methods, m)
	}
	if r.err != nil {
		return nil, fmt.Errorf("vmkit: truncated class file: %w", r.err)
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("vmkit: %d trailing bytes in class file", len(r.buf)-r.pos)
	}
	if !ValidIdent(def.Name) {
		return nil, fmt.Errorf("vmkit: invalid class name %q", def.Name)
	}
	return def, nil
}

type cfWriter struct{ buf []byte }

func (w *cfWriter) raw(b []byte) { w.buf = append(w.buf, b...) }
func (w *cfWriter) byte(b byte)  { w.buf = append(w.buf, b) }

func (w *cfWriter) uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

func (w *cfWriter) varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

func (w *cfWriter) f64(f float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
}

func (w *cfWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.raw([]byte(s))
}

type cfReader struct {
	buf []byte
	pos int
	err error
}

func (r *cfReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *cfReader) raw(n int) []byte {
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail("short read")
		return make([]byte, n)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *cfReader) byte() byte {
	b := r.raw(1)
	return b[0]
}

func (r *cfReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.pos += n
	return v
}

func (r *cfReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.pos += n
	return v
}

// bounded reads a uvarint and fails if it exceeds limit.
func (r *cfReader) bounded(limit uint64) uint64 {
	v := r.uvarint()
	if v > limit {
		r.fail("count %d exceeds limit %d", v, limit)
		return 0
	}
	return v
}

func (r *cfReader) f64() float64 {
	b := r.raw(8)
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *cfReader) str() string {
	n := r.bounded(maxStrLen)
	return string(r.raw(int(n)))
}
