package vmkit

import (
	"fmt"
	"strings"
)

// Well-known class names used throughout the VM and the J-Kernel layer.
const (
	ClassObject    = "jk/lang/Object"
	ClassString    = "jk/lang/String"
	ClassThrowable = "jk/lang/Throwable"
	ClassException = "jk/lang/Exception"
	ClassRuntimeEx = "jk/lang/RuntimeException"
	ClassError     = "jk/lang/Error"

	ClassNullPointerEx  = "jk/lang/NullPointerException"
	ClassCastEx         = "jk/lang/ClassCastException"
	ClassArithmeticEx   = "jk/lang/ArithmeticException"
	ClassIndexEx        = "jk/lang/IndexOutOfBoundsException"
	ClassNegArraySizeEx = "jk/lang/NegativeArraySizeException"
	ClassIllegalStateEx = "jk/lang/IllegalStateException"
	ClassThreadDeath    = "jk/lang/ThreadDeath"

	ClassBoxInt   = "jk/lang/Int"
	ClassBoxFloat = "jk/lang/Float"

	ClassSystem = "jk/lang/System"
	ClassThread = "jk/lang/Thread"

	// Marker interfaces controlling the LRMI calling convention, mirroring
	// java.rmi.Remote and the J-Kernel's fast-copy declaration.
	IfaceRemote        = "jk/kernel/Remote"
	IfaceSerializable  = "jk/io/Serializable"
	IfaceFastCopy      = "jk/io/FastCopy"
	IfaceFastCopyGraph = "jk/io/FastCopyGraph" // fast copy with cycle table

	ClassCapability   = "jk/kernel/Capability"
	ClassRevokedEx    = "jk/kernel/RevokedException"
	ClassRemoteEx     = "jk/kernel/RemoteException"
	ClassTerminatedEx = "jk/kernel/DomainTerminatedException"
)

// ClassFlags carries class-level modifiers.
type ClassFlags uint16

const (
	// FlagInterface marks an interface type: no instance fields, all methods
	// abstract.
	FlagInterface ClassFlags = 1 << iota
	// FlagAbstract forbids instantiation.
	FlagAbstract
	// FlagSystem marks a bootstrap class provided by the VM rather than
	// loaded from user bytecode. System classes may carry native methods.
	FlagSystem
)

// MethodFlags carries method-level modifiers.
type MethodFlags uint16

const (
	// MStatic marks a method with no receiver.
	MStatic MethodFlags = 1 << iota
	// MNative marks a method implemented by a registered Go function.
	MNative
	// MAbstract marks a method with no body (interface methods).
	MAbstract
	// MSynchronized wraps the body in the receiver's monitor (or the class
	// monitor for static methods).
	MSynchronized
	// MPrivate restricts callers to the declaring class. This is the
	// paper's "static access control": the verifier rejects foreign access.
	MPrivate
)

// FieldDef describes one declared field.
type FieldDef struct {
	Name   string
	Desc   string
	Static bool
	// Private restricts access to methods of the declaring class, enforced
	// by the verifier. Capability stubs rely on this to protect their gate
	// references from user bytecode.
	Private bool
}

// ExcEntry is one exception-table row: if an exception of (a subclass of)
// Type is thrown by an instruction with From <= pc < To, control transfers
// to Handler with the throwable as the only stack operand.
type ExcEntry struct {
	From, To, Handler int32
	Type              string
}

// MethodDef describes one declared method, including its bytecode.
type MethodDef struct {
	Name     string
	Desc     string // "(params)ret" descriptor
	Flags    MethodFlags
	MaxStack int32 // operand stack budget; verifier enforces
	NumLoc   int32 // local slots beyond parameters
	Code     []Instr
	Excs     []ExcEntry
}

// ClassDef is the loadable unit: what a class file encodes and what loaders
// submit (as bytes) to a namespace. It is pure data; linking produces the
// runtime *Class.
type ClassDef struct {
	Name       string
	Super      string // empty only for jk/lang/Object
	Interfaces []string
	Flags      ClassFlags
	Fields     []FieldDef
	Methods    []MethodDef
}

// Field is a linked field: its definition plus its slot assignment.
type Field struct {
	FieldDef
	Slot  int // index into Object.Fields (instance) or Class.Statics (static)
	Owner *Class
}

// Method is a linked method.
type Method struct {
	MethodDef
	Owner  *Class
	Native NativeFunc // set when MNative
	// nargs is the number of parameter slots including the receiver.
	nargs int
	// ret is the return descriptor ("" for V).
	ret string
	// linked caches resolved symbolic references, parallel to Code.
	linked []linkedRef
	// excClasses caches resolved exception-table types, parallel to Excs.
	excClasses []*Class
}

// NArgs returns the number of argument slots including any receiver.
func (m *Method) NArgs() int { return m.nargs }

// RetDesc returns the return type descriptor, or "" for void.
func (m *Method) RetDesc() string { return m.ret }

// Sig returns the "name:desc" key used for dispatch tables.
func (m *Method) Sig() string { return m.Name + ":" + m.Desc }

// IsStatic reports whether the method has no receiver.
func (m *Method) IsStatic() bool { return m.Flags&MStatic != 0 }

// Class is a linked, runtime class: resolved hierarchy, flattened dispatch
// tables, and static storage. Classes are created by a Namespace.
type Class struct {
	Def        *ClassDef
	Name       string
	Super      *Class
	Interfaces []*Class

	// vtable maps "name:desc" to the implementing method, with inherited
	// methods flattened in. Interface dispatch uses itable (profile B) or a
	// linear scan of methods (profile A).
	vtable  map[string]*Method
	methods []*Method // declared + inherited, for linear scans

	// fields maps name to linked field (instance and static).
	fields   map[string]*Field
	numSlots int // instance field slots including inherited
	// zeroFields is the precomputed zero template for instances.
	zeroFields []Value
	// Statics holds static field storage. Like the JVM, slot access is not
	// synchronized; racy programs see races. Shared classes are forbidden
	// statics entirely (the J-Kernel rule), so cross-domain races cannot
	// arise through them.
	Statics []Value

	// Namespace that linked the class. Symbolic references in code resolve
	// through this namespace, so two domains can bind the same name to
	// different classes.
	NS *Namespace

	// elem is the element descriptor for array classes ("" otherwise).
	elem string

	// Shared is non-nil when the class participates in a SharedClass group;
	// the core layer uses it to enforce the consistency rules.
	Shared any
}

// IsArray reports whether c is an array class.
func (c *Class) IsArray() bool { return c.elem != "" }

// Elem returns the element descriptor of an array class ("" otherwise).
func (c *Class) Elem() string { return c.elem }

// IsInterface reports whether c is an interface.
func (c *Class) IsInterface() bool { return c.Def != nil && c.Def.Flags&FlagInterface != 0 }

// NumInstanceSlots returns the number of instance field slots (including
// inherited fields).
func (c *Class) NumInstanceSlots() int { return c.numSlots }

// FieldByName returns the linked field with the given name, searching
// superclasses, or nil.
func (c *Class) FieldByName(name string) *Field {
	for k := c; k != nil; k = k.Super {
		if f, ok := k.fields[name]; ok {
			return f
		}
	}
	return nil
}

// MethodBySig returns the method with the given "name:desc" signature using
// the flattened virtual table, or nil.
func (c *Class) MethodBySig(name, desc string) *Method {
	if c.vtable == nil {
		return nil
	}
	return c.vtable[name+":"+desc]
}

// Methods returns the flattened method list (declared and inherited).
func (c *Class) Methods() []*Method { return c.methods }

// SubclassOf reports whether c is t or a subclass of t.
func (c *Class) SubclassOf(t *Class) bool {
	for k := c; k != nil; k = k.Super {
		if k == t {
			return true
		}
	}
	return false
}

// Implements reports whether c or any superclass lists t (or a
// super-interface of t) among its interfaces.
func (c *Class) Implements(t *Class) bool {
	if !t.IsInterface() {
		return false
	}
	for k := c; k != nil; k = k.Super {
		for _, it := range k.Interfaces {
			if it == t || it.Implements(t) || it.SubclassOf(t) {
				return true
			}
		}
	}
	return false
}

// AssignableTo reports whether a value of class c may be stored where a
// value of class t is expected.
func (c *Class) AssignableTo(t *Class) bool {
	if c == t {
		return true
	}
	if t.Name == ClassObject {
		return true
	}
	if c.IsArray() {
		if !t.IsArray() {
			return false
		}
		ce, te := c.elem, t.elem
		if ce == te {
			return true
		}
		// Covariant reference arrays only.
		if strings.HasPrefix(ce, "L") && strings.HasPrefix(te, "L") {
			cc := c.NS.Lookup(refName(ce))
			tc := t.NS.Lookup(refName(te))
			return cc != nil && tc != nil && cc.AssignableTo(tc)
		}
		return false
	}
	if t.IsInterface() {
		if c.IsInterface() {
			return c.SubclassOf(t) || c.Implements(t)
		}
		return c.Implements(t)
	}
	return c.SubclassOf(t)
}

func (c *Class) String() string { return c.Name }

// refName extracts the class name from an "L<name>;" descriptor.
func refName(desc string) string {
	if len(desc) >= 2 && desc[0] == 'L' && desc[len(desc)-1] == ';' {
		return desc[1 : len(desc)-1]
	}
	return desc
}

// descOfClass returns the descriptor naming a class ("L<name>;" or the
// array descriptor itself).
func descOfClass(name string) string {
	if strings.HasPrefix(name, "[") {
		return name
	}
	return "L" + name + ";"
}

// ParseMethodDesc splits "(AB)C" into parameter descriptors and the return
// descriptor ("" for V). It returns an error for malformed descriptors.
func ParseMethodDesc(desc string) (params []string, ret string, err error) {
	if len(desc) < 3 || desc[0] != '(' {
		return nil, "", fmt.Errorf("vmkit: bad method descriptor %q", desc)
	}
	i := 1
	for i < len(desc) && desc[i] != ')' {
		d, n, perr := parseOneDesc(desc[i:])
		if perr != nil {
			return nil, "", fmt.Errorf("vmkit: bad method descriptor %q: %v", desc, perr)
		}
		params = append(params, d)
		i += n
	}
	if i >= len(desc) || desc[i] != ')' {
		return nil, "", fmt.Errorf("vmkit: unterminated params in %q", desc)
	}
	rest := desc[i+1:]
	if rest == "V" {
		return params, "", nil
	}
	d, n, perr := parseOneDesc(rest)
	if perr != nil || n != len(rest) {
		return nil, "", fmt.Errorf("vmkit: bad return descriptor in %q", desc)
	}
	return params, d, nil
}

// parseOneDesc parses a single type descriptor at the front of s and
// returns it plus the number of bytes consumed.
func parseOneDesc(s string) (string, int, error) {
	if s == "" {
		return "", 0, fmt.Errorf("empty descriptor")
	}
	switch s[0] {
	case 'I', 'D', 'Z', 'B', 'C':
		return s[:1], 1, nil
	case 'L':
		j := strings.IndexByte(s, ';')
		if j < 2 {
			return "", 0, fmt.Errorf("unterminated class descriptor")
		}
		return s[:j+1], j + 1, nil
	case '[':
		d, n, err := parseOneDesc(s[1:])
		if err != nil {
			return "", 0, err
		}
		return "[" + d, n + 1, nil
	default:
		return "", 0, fmt.Errorf("unknown descriptor byte %q", s[0])
	}
}

// ValidIdent reports whether s is acceptable as a class, field, or method
// name component. Slashes separate package segments in class names.
func ValidIdent(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_' || r == '$' || r == '/' || r == '<' || r == '>':
		default:
			return false
		}
	}
	return true
}
