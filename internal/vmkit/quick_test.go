package vmkit

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: the class-file codec round-trips arbitrary structurally valid
// definitions byte-identically.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		def := randomClassDef(rng)
		enc := EncodeClass(def)
		dec, err := DecodeClass(enc)
		if err != nil {
			return false
		}
		return string(EncodeClass(dec)) == string(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomClassDef(rng *rand.Rand) *ClassDef {
	def := &ClassDef{
		Name:  fmt.Sprintf("Rand%d", rng.Intn(1000)),
		Super: ClassObject,
	}
	for i := 0; i < rng.Intn(4); i++ {
		def.Fields = append(def.Fields, FieldDef{
			Name:    fmt.Sprintf("f%d", i),
			Desc:    []string{"I", "D", "[B", "Ljk/lang/String;"}[rng.Intn(4)],
			Static:  rng.Intn(2) == 0,
			Private: rng.Intn(2) == 0,
		})
	}
	for i := 0; i < rng.Intn(3); i++ {
		m := MethodDef{
			Name:     fmt.Sprintf("m%d", i),
			Desc:     "(I)I",
			MaxStack: int32(rng.Intn(32) + 2),
			NumLoc:   int32(rng.Intn(4)),
			Flags:    MStatic,
		}
		n := rng.Intn(20) + 2
		for j := 0; j < n; j++ {
			switch rng.Intn(4) {
			case 0:
				m.Code = append(m.Code, Instr{Op: OpIConst, I: rng.Int63n(1000) - 500})
			case 1:
				m.Code = append(m.Code, Instr{Op: OpDConst, F: rng.Float64()})
			case 2:
				m.Code = append(m.Code, Instr{Op: OpSConst, S: fmt.Sprintf("s%d", rng.Intn(10))})
			default:
				m.Code = append(m.Code, Instr{Op: OpNop})
			}
		}
		m.Code = append(m.Code, Instr{Op: OpIConst, I: 0}, Instr{Op: OpRetV})
		def.Methods = append(def.Methods, m)
	}
	return def
}

// Property: randomly generated *well-typed* straight-line programs pass
// the verifier and execute to the value a Go-side oracle computes. This
// exercises the assembler, codec, verifier, and interpreter end to end.
func TestQuickRandomProgramsVerifyAndRun(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src, want := randomIntProgram(rng)
		vm := MustNew(ProfileA)
		b, err := AssembleBytes(src)
		if err != nil {
			t.Logf("assemble: %v\n%s", err, src)
			return false
		}
		ns := vm.NewNamespace("q", MapResolver(map[string][]byte{"Q": b}, vm.BootResolver()))
		th := vm.NewThread("q")
		defer vm.Detach(th)
		v, err := vm.CallStatic(th, ns, "Q.f:()I")
		if err != nil {
			t.Logf("run: %v\n%s", err, src)
			return false
		}
		if v.I != want {
			t.Logf("got %d want %d\n%s", v.I, want, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// randomIntProgram emits a stack program computing a deterministic int
// and the oracle value.
func randomIntProgram(rng *rand.Rand) (string, int64) {
	var b strings.Builder
	b.WriteString(".class Q\n.method static f ()I stack 64 locals 4\n")
	// Maintain a model of the stack.
	var stack []int64
	push := func(v int64) {
		fmt.Fprintf(&b, "  iconst %d\n", v)
		stack = append(stack, v)
	}
	push(rng.Int63n(100))
	steps := rng.Intn(30) + 5
	for i := 0; i < steps; i++ {
		switch op := rng.Intn(7); {
		case op == 0 || len(stack) < 2:
			push(rng.Int63n(100) - 50)
		case op == 1:
			b.WriteString("  iadd\n")
			x, y := stack[len(stack)-2], stack[len(stack)-1]
			stack = append(stack[:len(stack)-2], x+y)
		case op == 2:
			b.WriteString("  isub\n")
			x, y := stack[len(stack)-2], stack[len(stack)-1]
			stack = append(stack[:len(stack)-2], x-y)
		case op == 3:
			b.WriteString("  imul\n")
			x, y := stack[len(stack)-2], stack[len(stack)-1]
			stack = append(stack[:len(stack)-2], x*y)
		case op == 4:
			b.WriteString("  ixor\n")
			x, y := stack[len(stack)-2], stack[len(stack)-1]
			stack = append(stack[:len(stack)-2], x^y)
		case op == 5:
			b.WriteString("  dup\n")
			stack = append(stack, stack[len(stack)-1])
		case op == 6:
			b.WriteString("  swap\n")
			stack[len(stack)-1], stack[len(stack)-2] = stack[len(stack)-2], stack[len(stack)-1]
		}
		// Bound the stack model to MaxStack.
		if len(stack) > 48 {
			b.WriteString("  pop\n")
			stack = stack[:len(stack)-1]
		}
	}
	for len(stack) > 1 {
		b.WriteString("  iadd\n")
		x, y := stack[len(stack)-2], stack[len(stack)-1]
		stack = append(stack[:len(stack)-2], x+y)
	}
	b.WriteString("  retv\n.end\n")
	return b.String(), stack[0]
}

// Property: flipping any single byte of a valid class file never panics
// the pipeline — it either fails decode/verify/link or loads a class that
// is still type-safe to define. (Memory safety of the loading pipeline
// against corrupted input.)
func TestQuickBitFlippedClassFilesNeverPanic(t *testing.T) {
	base, err := AssembleBytes(`
.class Flip
.field x I
.method static f (I)I stack 8 locals 1
  load 0
  iconst 2
  imul
  retv
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	vm := MustNew(ProfileA)
	f := func(pos uint16, bit uint8) bool {
		data := append([]byte(nil), base...)
		data[int(pos)%len(data)] ^= 1 << (bit % 8)
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on flipped byte %d: %v", pos, r)
			}
		}()
		ns := vm.NewNamespace(fmt.Sprintf("flip%d-%d", pos, bit), vm.BootResolver())
		_, _ = ns.DefineClass(data) // error or success; never panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
