package vmkit

import "fmt"

// The verifier performs abstract interpretation over value types, the
// vmkit analog of the JVM bytecode verifier: it proves that code cannot
// forge references, read uninitialized slots, underflow or overflow the
// operand stack, or call methods and touch fields at the wrong types. The
// J-Kernel's protection model rests on this check — domains are isolated
// because verified code can only reach objects it was given.

// vkind is the verification type lattice: Int, Float, Ref(C), Null (bottom
// of the reference order), and Top (unusable).
type vkind uint8

const (
	vtTop vkind = iota
	vtInt
	vtFloat
	vtRef
	vtNull
)

type vtype struct {
	k vkind
	c *Class // for vtRef
}

func (v vtype) String() string {
	switch v.k {
	case vtInt:
		return "int"
	case vtFloat:
		return "float"
	case vtNull:
		return "null"
	case vtRef:
		return "ref(" + v.c.Name + ")"
	default:
		return "top"
	}
}

// vstate is the abstract machine state at one instruction boundary.
type vstate struct {
	locals []vtype
	stack  []vtype
}

func (s *vstate) clone() *vstate {
	ns := &vstate{
		locals: append([]vtype(nil), s.locals...),
		stack:  append([]vtype(nil), s.stack...),
	}
	return ns
}

// mergeInto merges src into dst, returning true when dst changed. Stack
// heights must agree.
func mergeInto(dst, src *vstate) (bool, error) {
	if len(dst.stack) != len(src.stack) {
		return false, fmt.Errorf("stack height mismatch at merge: %d vs %d", len(dst.stack), len(src.stack))
	}
	changed := false
	for i := range dst.locals {
		m := mergeType(dst.locals[i], src.locals[i])
		if m != dst.locals[i] {
			dst.locals[i] = m
			changed = true
		}
	}
	for i := range dst.stack {
		m := mergeType(dst.stack[i], src.stack[i])
		if m == (vtype{k: vtTop}) && dst.stack[i].k != vtTop {
			// A Top on the stack can never be consumed; reject eagerly so
			// errors point at the merge, not a distant use.
			return false, fmt.Errorf("irreconcilable stack types %v / %v at depth %d", dst.stack[i], src.stack[i], i)
		}
		if m != dst.stack[i] {
			dst.stack[i] = m
			changed = true
		}
	}
	return changed, nil
}

func mergeType(a, b vtype) vtype {
	if a == b {
		return a
	}
	if a.k == vtNull && b.k == vtRef {
		return b
	}
	if b.k == vtNull && a.k == vtRef {
		return a
	}
	if a.k == vtRef && b.k == vtRef {
		return vtype{k: vtRef, c: commonAncestor(a.c, b.c)}
	}
	return vtype{k: vtTop}
}

// commonAncestor returns the nearest common superclass (interfaces and
// arrays generalize to Object, as in the JVM's verifier).
func commonAncestor(a, b *Class) *Class {
	seen := map[*Class]bool{}
	for k := a; k != nil; k = k.Super {
		seen[k] = true
	}
	for k := b; k != nil; k = k.Super {
		if seen[k] {
			return k
		}
	}
	// Distinct roots can only happen across namespaces; generalize to the
	// defining namespace's Object.
	if o := a.NS.Lookup(ClassObject); o != nil {
		return o
	}
	return a
}

// verifyClass verifies every concrete method of c. resolveCode must have
// run first so symbolic references are resolved.
func verifyClass(c *Class) error {
	for _, m := range c.methods {
		if m.Owner != c || m.Flags&(MNative|MAbstract) != 0 {
			continue
		}
		if err := verifyMethod(c, m); err != nil {
			return fmt.Errorf("%s.%s%s: %w", c.Name, m.Name, m.Desc, err)
		}
	}
	return nil
}

type verifier struct {
	c      *Class
	m      *Method
	states []*vstate
	work   []int
	ret    string
}

func verifyMethod(c *Class, m *Method) error {
	if len(m.Code) == 0 {
		return fmt.Errorf("empty code")
	}
	if m.MaxStack < 0 || m.MaxStack > 1<<16 {
		return fmt.Errorf("bad max stack %d", m.MaxStack)
	}
	params, ret, err := ParseMethodDesc(m.Desc)
	if err != nil {
		return err
	}
	nlocals := m.nargs + int(m.NumLoc)
	init := &vstate{locals: make([]vtype, nlocals)}
	idx := 0
	if !m.IsStatic() {
		init.locals[0] = vtype{k: vtRef, c: c}
		idx = 1
	}
	for _, p := range params {
		t, err := descToVtype(c.NS, p)
		if err != nil {
			return err
		}
		init.locals[idx] = t
		idx++
	}
	for ; idx < nlocals; idx++ {
		init.locals[idx] = vtype{k: vtTop}
	}

	v := &verifier{c: c, m: m, states: make([]*vstate, len(m.Code)), ret: ret}
	// Validate exception table ranges up front.
	for _, e := range m.Excs {
		if e.From < 0 || e.To < e.From || int(e.To) > len(m.Code) ||
			e.Handler < 0 || int(e.Handler) >= len(m.Code) {
			return fmt.Errorf("bad exception table entry %+v", e)
		}
	}
	v.states[0] = init
	v.work = append(v.work, 0)
	for len(v.work) > 0 {
		pc := v.work[len(v.work)-1]
		v.work = v.work[:len(v.work)-1]
		if err := v.step(pc); err != nil {
			return fmt.Errorf("pc=%d (%s): %w", pc, m.Code[pc], err)
		}
	}
	return nil
}

// flowTo merges state into the target pc, queueing it when changed.
func (v *verifier) flowTo(pc int, s *vstate) error {
	if pc < 0 || pc >= len(v.m.Code) {
		return fmt.Errorf("control flows to invalid pc %d", pc)
	}
	if len(s.stack) > int(v.m.MaxStack) {
		return fmt.Errorf("operand stack exceeds max %d", v.m.MaxStack)
	}
	if v.states[pc] == nil {
		v.states[pc] = s.clone()
		v.work = append(v.work, pc)
		return nil
	}
	changed, err := mergeInto(v.states[pc], s)
	if err != nil {
		return err
	}
	if changed {
		v.work = append(v.work, pc)
	}
	return nil
}

// flowExc propagates the current locals to every handler covering pc.
func (v *verifier) flowExc(pc int, s *vstate) error {
	for i, e := range v.m.Excs {
		if int32(pc) >= e.From && int32(pc) < e.To {
			hs := &vstate{
				locals: s.locals,
				stack:  []vtype{{k: vtRef, c: v.m.excClasses[i]}},
			}
			if err := v.flowTo(int(e.Handler), hs); err != nil {
				return fmt.Errorf("handler at %d: %w", e.Handler, err)
			}
		}
	}
	return nil
}

func (v *verifier) step(pc int) error {
	s := v.states[pc].clone()
	in := v.m.Code[pc]
	linked := v.m.linked[pc]
	ns := v.c.NS

	// Any instruction that can throw propagates its *entry* locals to
	// covering handlers.
	if err := v.flowExc(pc, v.states[pc]); err != nil {
		return err
	}

	pop := func() (vtype, error) {
		if len(s.stack) == 0 {
			return vtype{}, fmt.Errorf("stack underflow")
		}
		t := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		return t, nil
	}
	popKind := func(k vkind) (vtype, error) {
		t, err := pop()
		if err != nil {
			return t, err
		}
		if k == vtRef {
			if t.k != vtRef && t.k != vtNull {
				return t, fmt.Errorf("expected ref, got %v", t)
			}
			return t, nil
		}
		if t.k != k {
			return t, fmt.Errorf("expected kind %d, got %v", k, t)
		}
		return t, nil
	}
	push := func(t vtype) { s.stack = append(s.stack, t) }
	next := func() error { return v.flowTo(pc+1, s) }
	branch := func() error {
		if err := v.flowTo(int(in.I), s); err != nil {
			return err
		}
		return next()
	}

	intBinop := func() error {
		if _, err := popKind(vtInt); err != nil {
			return err
		}
		if _, err := popKind(vtInt); err != nil {
			return err
		}
		push(vtype{k: vtInt})
		return next()
	}
	floatBinop := func() error {
		if _, err := popKind(vtFloat); err != nil {
			return err
		}
		if _, err := popKind(vtFloat); err != nil {
			return err
		}
		push(vtype{k: vtFloat})
		return next()
	}

	switch in.Op {
	case OpNop:
		return next()

	case OpIConst:
		push(vtype{k: vtInt})
		return next()
	case OpDConst:
		push(vtype{k: vtFloat})
		return next()
	case OpSConst:
		sc, err := ns.Resolve(ClassString)
		if err != nil {
			return err
		}
		push(vtype{k: vtRef, c: sc})
		return next()
	case OpNullConst:
		push(vtype{k: vtNull})
		return next()

	case OpLoad:
		if in.I < 0 || int(in.I) >= len(s.locals) {
			return fmt.Errorf("load of local %d (have %d)", in.I, len(s.locals))
		}
		t := s.locals[in.I]
		if t.k == vtTop {
			return fmt.Errorf("load of uninitialized local %d", in.I)
		}
		push(t)
		return next()
	case OpStore:
		if in.I < 0 || int(in.I) >= len(s.locals) {
			return fmt.Errorf("store to local %d (have %d)", in.I, len(s.locals))
		}
		t, err := pop()
		if err != nil {
			return err
		}
		s.locals[in.I] = t
		return next()

	case OpPop:
		if _, err := pop(); err != nil {
			return err
		}
		return next()
	case OpDup:
		t, err := pop()
		if err != nil {
			return err
		}
		push(t)
		push(t)
		return next()
	case OpDupX1:
		a, err := pop()
		if err != nil {
			return err
		}
		b, err := pop()
		if err != nil {
			return err
		}
		push(a)
		push(b)
		push(a)
		return next()
	case OpSwap:
		a, err := pop()
		if err != nil {
			return err
		}
		b, err := pop()
		if err != nil {
			return err
		}
		push(a)
		push(b)
		return next()

	case OpIAdd, OpISub, OpIMul, OpIDiv, OpIRem, OpIShl, OpIShr, OpIUshr, OpIAnd, OpIOr, OpIXor:
		return intBinop()
	case OpINeg:
		if _, err := popKind(vtInt); err != nil {
			return err
		}
		push(vtype{k: vtInt})
		return next()
	case OpDAdd, OpDSub, OpDMul, OpDDiv:
		return floatBinop()
	case OpDNeg:
		if _, err := popKind(vtFloat); err != nil {
			return err
		}
		push(vtype{k: vtFloat})
		return next()

	case OpI2D:
		if _, err := popKind(vtInt); err != nil {
			return err
		}
		push(vtype{k: vtFloat})
		return next()
	case OpD2I:
		if _, err := popKind(vtFloat); err != nil {
			return err
		}
		push(vtype{k: vtInt})
		return next()
	case OpDCmp:
		if _, err := popKind(vtFloat); err != nil {
			return err
		}
		if _, err := popKind(vtFloat); err != nil {
			return err
		}
		push(vtype{k: vtInt})
		return next()

	case OpJmp:
		return v.flowTo(int(in.I), s)
	case OpIfEQ, OpIfNE, OpIfLT, OpIfLE, OpIfGT, OpIfGE:
		if _, err := popKind(vtInt); err != nil {
			return err
		}
		if _, err := popKind(vtInt); err != nil {
			return err
		}
		return branch()
	case OpIfZ, OpIfNZ:
		if _, err := popKind(vtInt); err != nil {
			return err
		}
		return branch()
	case OpIfNull, OpIfNonNull:
		if _, err := popKind(vtRef); err != nil {
			return err
		}
		return branch()
	case OpIfACmpEQ, OpIfACmpNE:
		if _, err := popKind(vtRef); err != nil {
			return err
		}
		if _, err := popKind(vtRef); err != nil {
			return err
		}
		return branch()

	case OpNew:
		push(vtype{k: vtRef, c: linked.class})
		return next()

	case OpGetF:
		t, err := popKind(vtRef)
		if err != nil {
			return err
		}
		if err := v.checkFieldAccess(linked.field); err != nil {
			return err
		}
		if err := v.checkRefAssignable(t, linked.field.Owner); err != nil {
			return err
		}
		ft, err := descToVtype(ns, linked.field.Desc)
		if err != nil {
			return err
		}
		push(ft)
		return next()
	case OpPutF:
		val, err := pop()
		if err != nil {
			return err
		}
		if err := v.checkFieldAccess(linked.field); err != nil {
			return err
		}
		if err := v.checkAssignableDesc(val, linked.field.Desc); err != nil {
			return err
		}
		t, err := popKind(vtRef)
		if err != nil {
			return err
		}
		if err := v.checkRefAssignable(t, linked.field.Owner); err != nil {
			return err
		}
		return next()
	case OpGetS:
		if err := v.checkFieldAccess(linked.field); err != nil {
			return err
		}
		ft, err := descToVtype(ns, linked.field.Desc)
		if err != nil {
			return err
		}
		push(ft)
		return next()
	case OpPutS:
		val, err := pop()
		if err != nil {
			return err
		}
		if err := v.checkFieldAccess(linked.field); err != nil {
			return err
		}
		if err := v.checkAssignableDesc(val, linked.field.Desc); err != nil {
			return err
		}
		return next()

	case OpInvokeV, OpInvokeI, OpInvokeS:
		if linked.method.Flags&MPrivate != 0 && linked.method.Owner != v.c {
			return fmt.Errorf("private method %s.%s not accessible from %s",
				linked.method.Owner.Name, linked.method.Name, v.c.Name)
		}
		params, _, err := ParseMethodDesc(linked.method.Desc)
		if err != nil {
			return err
		}
		for i := len(params) - 1; i >= 0; i-- {
			arg, err := pop()
			if err != nil {
				return err
			}
			if err := v.checkAssignableDesc(arg, params[i]); err != nil {
				return fmt.Errorf("arg %d: %w", i, err)
			}
		}
		if in.Op != OpInvokeS {
			recv, err := popKind(vtRef)
			if err != nil {
				return err
			}
			if err := v.checkRefAssignable(recv, linked.class); err != nil {
				return err
			}
		}
		if linked.method.ret != "" {
			rt, err := descToVtype(ns, linked.method.ret)
			if err != nil {
				return err
			}
			push(rt)
		}
		return next()

	case OpCast:
		if _, err := popKind(vtRef); err != nil {
			return err
		}
		push(vtype{k: vtRef, c: linked.class})
		return next()
	case OpInstOf:
		if _, err := popKind(vtRef); err != nil {
			return err
		}
		push(vtype{k: vtInt})
		return next()

	case OpNewArr:
		if _, err := popKind(vtInt); err != nil {
			return err
		}
		push(vtype{k: vtRef, c: linked.class})
		return next()
	case OpALoad:
		if _, err := popKind(vtInt); err != nil {
			return err
		}
		arr, err := popKind(vtRef)
		if err != nil {
			return err
		}
		et, err := arrayElemVtype(ns, arr)
		if err != nil {
			return err
		}
		push(et)
		return next()
	case OpAStore:
		val, err := pop()
		if err != nil {
			return err
		}
		if _, err := popKind(vtInt); err != nil {
			return err
		}
		arr, err := popKind(vtRef)
		if err != nil {
			return err
		}
		et, err := arrayElemVtype(ns, arr)
		if err != nil {
			return err
		}
		switch et.k {
		case vtInt, vtFloat:
			if val.k != et.k {
				return fmt.Errorf("array store kind mismatch: %v into %v", val, arr)
			}
		default:
			if val.k != vtRef && val.k != vtNull {
				return fmt.Errorf("array store of %v into reference array", val)
			}
		}
		return next()
	case OpALen:
		arr, err := popKind(vtRef)
		if err != nil {
			return err
		}
		if arr.k == vtRef && !arr.c.IsArray() && arr.c.Name != ClassObject {
			return fmt.Errorf("arraylength of non-array %v", arr)
		}
		push(vtype{k: vtInt})
		return next()

	case OpThrow:
		t, err := popKind(vtRef)
		if err != nil {
			return err
		}
		if t.k == vtRef {
			thr, err := ns.Resolve(ClassThrowable)
			if err != nil {
				return err
			}
			if !t.c.AssignableTo(thr) {
				return fmt.Errorf("throw of non-throwable %v", t)
			}
		}
		return nil // terminal

	case OpMonEnter, OpMonExit:
		if _, err := popKind(vtRef); err != nil {
			return err
		}
		return next()

	case OpRet:
		if v.ret != "" {
			return fmt.Errorf("ret in non-void method")
		}
		return nil
	case OpRetV:
		t, err := pop()
		if err != nil {
			return err
		}
		if v.ret == "" {
			return fmt.Errorf("retv in void method")
		}
		if err := v.checkAssignableDesc(t, v.ret); err != nil {
			return err
		}
		return nil

	default:
		return fmt.Errorf("unverifiable opcode %s", in.Op.Name())
	}
}

// checkFieldAccess enforces private field visibility (the paper's static
// access control).
func (v *verifier) checkFieldAccess(f *Field) error {
	if f.Private && f.Owner != v.c {
		return fmt.Errorf("private field %s.%s not accessible from %s", f.Owner.Name, f.Name, v.c.Name)
	}
	return nil
}

// checkRefAssignable checks a ref/null vtype against a target class.
func (v *verifier) checkRefAssignable(t vtype, target *Class) error {
	if t.k == vtNull {
		return nil
	}
	if t.k != vtRef {
		return fmt.Errorf("expected ref, got %v", t)
	}
	if !t.c.AssignableTo(target) {
		return fmt.Errorf("%s is not assignable to %s", t.c.Name, target.Name)
	}
	return nil
}

// checkAssignableDesc checks a vtype against a descriptor.
func (v *verifier) checkAssignableDesc(t vtype, desc string) error {
	switch descKind(desc) {
	case KInt:
		if t.k != vtInt {
			return fmt.Errorf("expected int (%s), got %v", desc, t)
		}
		return nil
	case KFloat:
		if t.k != vtFloat {
			return fmt.Errorf("expected float (%s), got %v", desc, t)
		}
		return nil
	case KRef:
		if t.k == vtNull {
			return nil
		}
		if t.k != vtRef {
			return fmt.Errorf("expected ref (%s), got %v", desc, t)
		}
		var target *Class
		var err error
		if desc[0] == '[' {
			target, err = v.c.NS.arrayClass(desc)
		} else {
			target, err = v.c.NS.Resolve(refName(desc))
		}
		if err != nil {
			return err
		}
		if !t.c.AssignableTo(target) {
			return fmt.Errorf("%s is not assignable to %s", t.c.Name, desc)
		}
		return nil
	default:
		return fmt.Errorf("bad descriptor %q", desc)
	}
}

// descToVtype converts a descriptor to its verification type.
func descToVtype(ns *Namespace, desc string) (vtype, error) {
	switch descKind(desc) {
	case KInt:
		return vtype{k: vtInt}, nil
	case KFloat:
		return vtype{k: vtFloat}, nil
	case KRef:
		var c *Class
		var err error
		if desc[0] == '[' {
			c, err = ns.arrayClass(desc)
		} else {
			c, err = ns.Resolve(refName(desc))
		}
		if err != nil {
			return vtype{}, err
		}
		return vtype{k: vtRef, c: c}, nil
	default:
		return vtype{}, fmt.Errorf("bad descriptor %q", desc)
	}
}

// arrayElemVtype returns the element type of an array vtype. Null yields
// Top (the access will NPE at run time; the result must go unused).
func arrayElemVtype(ns *Namespace, arr vtype) (vtype, error) {
	if arr.k == vtNull {
		return vtype{k: vtTop}, nil
	}
	if arr.k != vtRef || !arr.c.IsArray() {
		return vtype{}, fmt.Errorf("array op on non-array %v", arr)
	}
	return descToVtype(ns, arr.c.Elem())
}
