// Package vmkit implements a small typed stack virtual machine: a binary
// class format, a textual assembler, a bytecode verifier, a linker with
// per-namespace class resolution, and an interpreter with monitors and
// safepoints.
//
// vmkit is the substrate the J-Kernel core builds on. It stands in for the
// Java virtual machine of the paper "Implementing Multiple Protection
// Domains in Java" (Hawblitzel et al., USENIX 1998): protection comes from
// the type system and controlled linking, not from hardware. Domains load
// bytecode through resolvers into private namespaces, the verifier rejects
// ill-typed code, and the J-Kernel generates stub classes at run time for
// cross-domain calls.
package vmkit

import "fmt"

// Kind discriminates the runtime value union.
type Kind uint8

// Value kinds. The VM has two primitive kinds (64-bit integers and 64-bit
// floats) plus references. Booleans, bytes and chars are represented as
// integers, as in the JVM.
const (
	KInvalid Kind = iota
	KInt
	KFloat
	KRef // object, array, or string reference; R==nil means null
)

// Value is a single operand-stack or local-variable slot.
// The zero Value is an invalid slot; Null() is the null reference.
type Value struct {
	K Kind
	I int64
	F float64
	R *Object
}

// IntVal returns an integer value.
func IntVal(i int64) Value { return Value{K: KInt, I: i} }

// FloatVal returns a float value.
func FloatVal(f float64) Value { return Value{K: KFloat, F: f} }

// RefVal returns a reference value (obj may be nil for null).
func RefVal(obj *Object) Value { return Value{K: KRef, R: obj} }

// Null returns the null reference value.
func Null() Value { return Value{K: KRef} }

// IsNull reports whether v is the null reference.
func (v Value) IsNull() bool { return v.K == KRef && v.R == nil }

// String renders a value for diagnostics.
func (v Value) String() string {
	switch v.K {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KFloat:
		return fmt.Sprintf("%g", v.F)
	case KRef:
		if v.R == nil {
			return "null"
		}
		return v.R.String()
	default:
		return "<invalid>"
	}
}

// Object is a heap cell: a class instance or an array. Exactly one of the
// payload fields is used, selected by the object's class:
//
//   - instances: Class points at a non-array class and Fields holds one slot
//     per instance field (indexed by Field.Slot);
//   - arrays: Class is an array class ("[B", "[I", "[D", "[L...;") and one of
//     Bytes/Ints/Floats/Refs is non-nil.
//
// The monitor word (mon) implements synchronized blocks; see monitor.go.
type Object struct {
	Class  *Class
	Fields []Value

	Bytes  []byte
	Ints   []int64
	Floats []float64
	Refs   []*Object

	// Owner is the id of the domain whose account was charged for this
	// allocation. Zero means "system" (allocated outside any domain).
	Owner int64

	// hash is the lazily assigned identity hash (see identityHash).
	hash int64

	mon monitor
}

// Len returns the array length, or -1 if o is not an array.
func (o *Object) Len() int {
	switch {
	case o.Bytes != nil:
		return len(o.Bytes)
	case o.Ints != nil:
		return len(o.Ints)
	case o.Floats != nil:
		return len(o.Floats)
	case o.Refs != nil:
		return len(o.Refs)
	}
	if o.Class != nil && o.Class.IsArray() {
		return 0
	}
	return -1
}

// String renders the object for diagnostics (class name and identity-free).
func (o *Object) String() string {
	if o == nil {
		return "null"
	}
	if o.Class == nil {
		return "<classless>"
	}
	if o.Class.Name == ClassString {
		return fmt.Sprintf("%q", StringText(o))
	}
	return fmt.Sprintf("<%s>", o.Class.Name)
}

// descKind maps a field/param descriptor to the Kind of the value stored.
func descKind(desc string) Kind {
	if desc == "" {
		return KInvalid
	}
	switch desc[0] {
	case 'I', 'Z', 'B', 'C':
		return KInt
	case 'D':
		return KFloat
	case 'L', '[':
		return KRef
	default:
		return KInvalid
	}
}

// zeroValue returns the zero value for a field of the given descriptor.
func zeroValue(desc string) Value {
	switch descKind(desc) {
	case KInt:
		return IntVal(0)
	case KFloat:
		return FloatVal(0)
	default:
		return Null()
	}
}
