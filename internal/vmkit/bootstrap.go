package vmkit

import "fmt"

// Bootstrap class sources, assembled at VM construction. These are the
// "system classes" of the paper: most are shared into every domain
// namespace verbatim; jk/lang/System and jk/lang/Thread are *interposed* —
// each domain gets its own class so output streams and thread operations
// are per-domain (see internal/core).

var bootstrapSources = []string{
	// ---- the root ----
	`.class jk/lang/Object
.method equals (Ljk/lang/Object;)I stack 4 locals 0
  load 0
  load 1
  if_acmpeq yes
  iconst 0
  retv
yes:
  iconst 1
  retv
.end
.method native hashCode ()I
.end
.method native toString ()Ljk/lang/String;
.end
`,

	// ---- strings ----
	`.class jk/lang/String
.field private bytes [B
.method native length ()I
.end
.method native charAt (I)I
.end
.method native equals (Ljk/lang/Object;)I
.end
.method native hashCode ()I
.end
.method native concat (Ljk/lang/String;)Ljk/lang/String;
.end
.method native substring (II)Ljk/lang/String;
.end
.method native getBytes ()[B
.end
.method native indexOf (I)I
.end
.method native toString ()Ljk/lang/String;
.end
.method static native fromBytes ([B)Ljk/lang/String;
.end
.method static native valueOfInt (I)Ljk/lang/String;
.end
`,

	// ---- throwables ----
	`.class jk/lang/Throwable
.field message Ljk/lang/String;
.method init (Ljk/lang/String;)V stack 4 locals 0
  load 0
  load 1
  putfield jk/lang/Throwable.message:Ljk/lang/String;
  ret
.end
.method getMessage ()Ljk/lang/String; stack 2 locals 0
  load 0
  getfield jk/lang/Throwable.message:Ljk/lang/String;
  retv
.end
`,
	".class jk/lang/Exception super jk/lang/Throwable\n",
	".class jk/lang/RuntimeException super jk/lang/Exception\n",
	".class jk/lang/Error super jk/lang/Throwable\n",
	".class jk/lang/NullPointerException super jk/lang/RuntimeException\n",
	".class jk/lang/ClassCastException super jk/lang/RuntimeException\n",
	".class jk/lang/ArithmeticException super jk/lang/RuntimeException\n",
	".class jk/lang/IndexOutOfBoundsException super jk/lang/RuntimeException\n",
	".class jk/lang/NegativeArraySizeException super jk/lang/RuntimeException\n",
	".class jk/lang/IllegalStateException super jk/lang/RuntimeException\n",
	".class jk/lang/ThreadDeath super jk/lang/Error\n",

	// Kernel exceptions are bootstrap classes so that every domain shares
	// them: a RevokedException thrown in a callee must be catchable by the
	// caller even though the two share nothing else.
	".class jk/kernel/RevokedException super jk/lang/RuntimeException\n",
	".class jk/kernel/RemoteException super jk/lang/Exception\n",
	".class jk/kernel/DomainTerminatedException super jk/kernel/RemoteException\n",

	// ---- marker interfaces (calling convention) ----
	".class jk/kernel/Remote interface\n",
	".class jk/io/Serializable interface\n",
	".class jk/io/FastCopy interface\n",
	".class jk/io/FastCopyGraph interface\n",

	// ---- boxes (used by generated stubs to pack arguments) ----
	`.class jk/lang/Int implements jk/io/FastCopy
.field v I
.method static valueOf (I)Ljk/lang/Int; stack 4 locals 0
  new jk/lang/Int
  dup
  load 0
  putfield jk/lang/Int.v:I
  retv
.end
.method intValue ()I stack 2 locals 0
  load 0
  getfield jk/lang/Int.v:I
  retv
.end
`,
	`.class jk/lang/Float implements jk/io/FastCopy
.field v D
.method static valueOf (D)Ljk/lang/Float; stack 4 locals 0
  new jk/lang/Float
  dup
  load 0
  putfield jk/lang/Float.v:D
  retv
.end
.method floatValue ()D stack 2 locals 0
  load 0
  getfield jk/lang/Float.v:D
  retv
.end
`,

	// ---- capability root ----
	// Generated stub classes extend Capability. The gate field indexes the
	// kernel's gate table; it is private so verified user bytecode cannot
	// touch it (natives may).
	`.class jk/kernel/Capability abstract
.field private gate I
.method native revoke ()V
.end
.method native isRevoked ()I
.end
.method native invoke0 (I[Ljk/lang/Object;)Ljk/lang/Object;
.end
`,

	// ---- interposable system classes (bootstrap versions) ----
	systemClassSource,
	threadClassSource,

	// ---- misc utility ----
	`.class jk/lang/StringBuilder
.field private buf [B
.field private len I
.method init ()V stack 4 locals 0
  load 0
  iconst 16
  newarr "[B"
  putfield jk/lang/StringBuilder.buf:[B
  load 0
  iconst 0
  putfield jk/lang/StringBuilder.len:I
  ret
.end
.method native appendStr (Ljk/lang/String;)Ljk/lang/StringBuilder;
.end
.method native appendInt (I)Ljk/lang/StringBuilder;
.end
.method native toString ()Ljk/lang/String;
.end
`,
}

// systemClassSource is interposed per domain: the same bytecode is defined
// freshly in each domain namespace so its natives observe the domain's
// output stream. This mirrors the paper's observation that System "contains
// resources that need to be defined on a per-domain basis".
const systemClassSource = `.class jk/lang/System
.method static native println (Ljk/lang/String;)V
.end
.method static native printInt (I)V
.end
.method static native timeNanos ()I
.end
`

// threadClassSource is interposed per domain: stop/suspend/resume act on
// the calling thread's current *segment*, not the carrier thread, which is
// how the J-Kernel prevents callers and callees from attacking each other's
// threads. The bootstrap binding acts directly on the carrier (there are no
// segments until the core layer is loaded).
const threadClassSource = `.class jk/lang/Thread
.field private id I
.method static native currentThread ()Ljk/lang/Thread;
.end
.method native stop ()V
.end
.method native suspend ()V
.end
.method native resume ()V
.end
.method native setPriority (I)V
.end
.method native getPriority ()I
.end
.method native yield ()V
.end
`

// defineBootstrap assembles and links the system classes into ns.
func defineBootstrap(ns *Namespace) error {
	for _, src := range bootstrapSources {
		def, err := Assemble(src)
		if err != nil {
			return fmt.Errorf("assembling bootstrap: %w\n%s", err, src)
		}
		def.Flags |= FlagSystem
		if _, err := ns.DefineDef(def); err != nil {
			return fmt.Errorf("defining %s: %w", def.Name, err)
		}
	}
	return nil
}

// SystemClassNames returns the bootstrap classes that are safe to share
// into every domain namespace as-is. jk/lang/System and jk/lang/Thread are
// excluded: they must be interposed per domain.
func SystemClassNames() []string {
	names := make([]string, 0, len(bootstrapSources))
	for _, src := range bootstrapSources {
		def := MustAssemble(src)
		switch def.Name {
		case ClassSystem, ClassThread:
			continue
		}
		names = append(names, def.Name)
	}
	return names
}

// InterposedClassSource returns the assembly source for the per-domain
// version of an interposed system class ("" if name is not interposed).
func InterposedClassSource(name string) string {
	switch name {
	case ClassSystem:
		return systemClassSource
	case ClassThread:
		return threadClassSource
	}
	return ""
}
