package vmkit

import "fmt"

// maxCallDepth bounds interpreter recursion so runaway bytecode raises a
// StackOverflow-style error instead of exhausting the Go stack.
const maxCallDepth = 512

// stepsFlushEvery bounds how much interpreter work accumulates before being
// reported to the accounting hook.
const stepsFlushEvery = 4096

// Call executes method m on thread t with the given arguments and returns
// the result. A thrown VM exception surfaces as *ThrownError; VM-level
// faults (wrong arity, abstract target) are plain errors.
func (vm *VM) Call(t *Thread, m *Method, args []Value) (Value, error) {
	if len(args) != m.nargs {
		return Value{}, fmt.Errorf("vmkit: %s.%s wants %d args, got %d", m.Owner.Name, m.Name, m.nargs, len(args))
	}
	v, thrown := vm.exec(t, m, args)
	t.flushSteps()
	if thrown != nil {
		return Value{}, &ThrownError{Throwable: thrown}
	}
	return v, nil
}

// CallStatic resolves "Class.name:(desc)ret" in ns and calls it.
func (vm *VM) CallStatic(t *Thread, ns *Namespace, ref string, args ...Value) (Value, error) {
	mr, err := ParseMethodRef(ref)
	if err != nil {
		return Value{}, err
	}
	c, err := ns.Resolve(mr.Class)
	if err != nil {
		return Value{}, err
	}
	m := c.MethodBySig(mr.Name, mr.Desc)
	if m == nil {
		return Value{}, fmt.Errorf("vmkit: no method %s", ref)
	}
	return vm.Call(t, m, args)
}

// exec runs one frame. The second result is a thrown throwable (nil on
// normal return).
func (vm *VM) exec(t *Thread, m *Method, args []Value) (Value, *Object) {
	if m.Flags&MAbstract != 0 {
		return Value{}, vm.Throwf(ClassError, "abstract method %s.%s", m.Owner.Name, m.Name)
	}
	if th := t.safepoint(); th != nil {
		return Value{}, th
	}
	if m.Flags&MNative != 0 {
		var recv *Object
		rest := args
		if !m.IsStatic() {
			if len(args) == 0 || args[0].R == nil {
				return Value{}, vm.Throwf(ClassNullPointerEx, "null receiver for %s.%s", m.Owner.Name, m.Name)
			}
			recv, rest = args[0].R, args[1:]
		}
		env := &Env{VM: vm, NS: m.Owner.NS, Thread: t}
		return m.Native(env, recv, rest)
	}

	// Synchronized methods hold the receiver's monitor (static: skipped —
	// the VM has no per-class lock object; shared classes forbid statics).
	var monObj *Object
	if m.Flags&MSynchronized != 0 && !m.IsStatic() && args[0].R != nil {
		monObj = args[0].R
		monObj.monEnter(t)
		defer monObj.monExit(t)
	}

	locals := make([]Value, m.nargs+int(m.NumLoc))
	copy(locals, args)
	stack := make([]Value, m.MaxStack)
	sp := 0
	pc := 0
	code := m.Code
	linked := m.linked

	push := func(v Value) { stack[sp] = v; sp++ }
	pop := func() Value { sp--; return stack[sp] }

	throwName := func(class, format string, a ...any) *Object {
		return vm.Throwf(class, format, a...)
	}

	var thrown *Object
	steps := int64(0)

	for {
		if thrown != nil {
			// Exception dispatch: find a handler covering pc whose type
			// accepts the throwable, else unwind.
			handler := -1
			for i, e := range m.Excs {
				if int32(pc) >= e.From && int32(pc) < e.To && thrown.Class.AssignableTo(m.excClasses[i]) {
					handler = int(e.Handler)
					break
				}
			}
			if handler < 0 {
				t.steps += steps
				return Value{}, thrown
			}
			sp = 0
			push(RefVal(thrown))
			pc = handler
			thrown = nil
		}

		in := code[pc]
		steps++
		if steps >= stepsFlushEvery {
			t.steps += steps
			steps = 0
			t.flushSteps()
		}

		switch in.Op {
		case OpNop:

		case OpIConst:
			push(IntVal(in.I))
		case OpDConst:
			push(FloatVal(in.F))
		case OpSConst:
			push(RefVal(linked[pc].str))
		case OpNullConst:
			push(Null())

		case OpLoad:
			push(locals[in.I])
		case OpStore:
			locals[in.I] = pop()

		case OpPop:
			sp--
		case OpDup:
			stack[sp] = stack[sp-1]
			sp++
		case OpDupX1:
			a := stack[sp-1]
			b := stack[sp-2]
			stack[sp-2] = a
			stack[sp-1] = b
			stack[sp] = a
			sp++
		case OpSwap:
			stack[sp-1], stack[sp-2] = stack[sp-2], stack[sp-1]

		case OpIAdd:
			b, a := pop().I, pop().I
			push(IntVal(a + b))
		case OpISub:
			b, a := pop().I, pop().I
			push(IntVal(a - b))
		case OpIMul:
			b, a := pop().I, pop().I
			push(IntVal(a * b))
		case OpIDiv:
			b, a := pop().I, pop().I
			if b == 0 {
				thrown = throwName(ClassArithmeticEx, "division by zero")
				continue
			}
			push(IntVal(a / b))
		case OpIRem:
			b, a := pop().I, pop().I
			if b == 0 {
				thrown = throwName(ClassArithmeticEx, "division by zero")
				continue
			}
			push(IntVal(a % b))
		case OpINeg:
			push(IntVal(-pop().I))
		case OpIShl:
			b, a := pop().I, pop().I
			push(IntVal(a << (uint64(b) & 63)))
		case OpIShr:
			b, a := pop().I, pop().I
			push(IntVal(a >> (uint64(b) & 63)))
		case OpIUshr:
			b, a := pop().I, pop().I
			push(IntVal(int64(uint64(a) >> (uint64(b) & 63))))
		case OpIAnd:
			b, a := pop().I, pop().I
			push(IntVal(a & b))
		case OpIOr:
			b, a := pop().I, pop().I
			push(IntVal(a | b))
		case OpIXor:
			b, a := pop().I, pop().I
			push(IntVal(a ^ b))

		case OpDAdd:
			b, a := pop().F, pop().F
			push(FloatVal(a + b))
		case OpDSub:
			b, a := pop().F, pop().F
			push(FloatVal(a - b))
		case OpDMul:
			b, a := pop().F, pop().F
			push(FloatVal(a * b))
		case OpDDiv:
			b, a := pop().F, pop().F
			push(FloatVal(a / b))
		case OpDNeg:
			push(FloatVal(-pop().F))

		case OpI2D:
			push(FloatVal(float64(pop().I)))
		case OpD2I:
			push(IntVal(int64(pop().F)))
		case OpDCmp:
			b, a := pop().F, pop().F
			switch {
			case a < b:
				push(IntVal(-1))
			case a > b:
				push(IntVal(1))
			default:
				push(IntVal(0))
			}

		case OpJmp:
			if int(in.I) <= pc {
				if th := t.safepoint(); th != nil {
					thrown = th
					continue
				}
			}
			pc = int(in.I)
			continue
		case OpIfEQ, OpIfNE, OpIfLT, OpIfLE, OpIfGT, OpIfGE:
			b, a := pop().I, pop().I
			var taken bool
			switch in.Op {
			case OpIfEQ:
				taken = a == b
			case OpIfNE:
				taken = a != b
			case OpIfLT:
				taken = a < b
			case OpIfLE:
				taken = a <= b
			case OpIfGT:
				taken = a > b
			case OpIfGE:
				taken = a >= b
			}
			if taken {
				if int(in.I) <= pc {
					if th := t.safepoint(); th != nil {
						thrown = th
						continue
					}
				}
				pc = int(in.I)
				continue
			}
		case OpIfZ, OpIfNZ:
			a := pop().I
			if (in.Op == OpIfZ) == (a == 0) {
				if int(in.I) <= pc {
					if th := t.safepoint(); th != nil {
						thrown = th
						continue
					}
				}
				pc = int(in.I)
				continue
			}
		case OpIfNull, OpIfNonNull:
			r := pop().R
			if (in.Op == OpIfNull) == (r == nil) {
				pc = int(in.I)
				continue
			}
		case OpIfACmpEQ, OpIfACmpNE:
			b, a := pop().R, pop().R
			if (in.Op == OpIfACmpEQ) == (a == b) {
				pc = int(in.I)
				continue
			}

		case OpNew:
			o, err := NewInstance(linked[pc].class)
			if err != nil {
				thrown = throwName(ClassError, "%v", err)
				continue
			}
			push(RefVal(o))

		case OpGetF:
			r := pop().R
			if r == nil {
				thrown = throwName(ClassNullPointerEx, "getfield on null")
				continue
			}
			push(r.Fields[linked[pc].field.Slot])
		case OpPutF:
			v := pop()
			r := pop().R
			if r == nil {
				thrown = throwName(ClassNullPointerEx, "putfield on null")
				continue
			}
			r.Fields[linked[pc].field.Slot] = v
		case OpGetS:
			f := linked[pc].field
			push(f.Owner.Statics[f.Slot])
		case OpPutS:
			f := linked[pc].field
			f.Owner.Statics[f.Slot] = pop()

		case OpInvokeV, OpInvokeI:
			ref := linked[pc]
			nargs := ref.method.nargs
			callArgs := make([]Value, nargs)
			copy(callArgs, stack[sp-nargs:sp])
			sp -= nargs
			recv := callArgs[0].R
			if recv == nil {
				thrown = throwName(ClassNullPointerEx, "invoke on null (%s)", ref.sig)
				continue
			}
			var target *Method
			if in.Op == OpInvokeI && vm.Profile.LinearIfaceDispatch {
				// Profile A: resolve through the VM-global locked
				// interface table with a composite key built per call —
				// the expensive invokeinterface of Table 1.
				target = vm.ifaceDispatchSlow(recv.Class, ref.method.Name, ref.method.Desc)
			} else {
				target = recv.Class.vtable[ref.sig]
			}
			if target == nil || target.Flags&MAbstract != 0 {
				thrown = throwName(ClassError, "no implementation of %s in %s", ref.sig, recv.Class.Name)
				continue
			}
			v, th := vm.invokeNested(t, target, callArgs)
			if th != nil {
				thrown = th
				continue
			}
			if target.ret != "" {
				push(v)
			}

		case OpInvokeS:
			ref := linked[pc]
			nargs := ref.method.nargs
			callArgs := make([]Value, nargs)
			copy(callArgs, stack[sp-nargs:sp])
			sp -= nargs
			v, th := vm.invokeNested(t, ref.method, callArgs)
			if th != nil {
				thrown = th
				continue
			}
			if ref.method.ret != "" {
				push(v)
			}

		case OpCast:
			r := stack[sp-1].R
			if r != nil && !r.Class.AssignableTo(linked[pc].class) {
				thrown = throwName(ClassCastEx, "%s is not a %s", r.Class.Name, in.S)
				continue
			}
		case OpInstOf:
			r := pop().R
			if r != nil && r.Class.AssignableTo(linked[pc].class) {
				push(IntVal(1))
			} else {
				push(IntVal(0))
			}

		case OpNewArr:
			n := pop().I
			if n < 0 {
				thrown = throwName(ClassNegArraySizeEx, "array size %d", n)
				continue
			}
			o, err := m.Owner.NS.newArrayOfClass(linked[pc].class, int(n))
			if err != nil {
				thrown = throwName(ClassError, "%v", err)
				continue
			}
			push(RefVal(o))

		case OpALoad:
			idx := pop().I
			arr := pop().R
			if arr == nil {
				thrown = throwName(ClassNullPointerEx, "aload on null")
				continue
			}
			if idx < 0 || int(idx) >= arr.Len() {
				thrown = throwName(ClassIndexEx, "index %d of %d", idx, arr.Len())
				continue
			}
			switch {
			case arr.Bytes != nil:
				push(IntVal(int64(arr.Bytes[idx])))
			case arr.Ints != nil:
				push(IntVal(arr.Ints[idx]))
			case arr.Floats != nil:
				push(FloatVal(arr.Floats[idx]))
			default:
				push(RefVal(arr.Refs[idx]))
			}
		case OpAStore:
			v := pop()
			idx := pop().I
			arr := pop().R
			if arr == nil {
				thrown = throwName(ClassNullPointerEx, "astore on null")
				continue
			}
			if idx < 0 || int(idx) >= arr.Len() {
				thrown = throwName(ClassIndexEx, "index %d of %d", idx, arr.Len())
				continue
			}
			switch {
			case arr.Bytes != nil:
				arr.Bytes[idx] = byte(v.I)
			case arr.Ints != nil:
				arr.Ints[idx] = v.I
			case arr.Floats != nil:
				arr.Floats[idx] = v.F
			default:
				if v.R != nil {
					ec := arr.Class.elemClass()
					if ec != nil && !v.R.Class.AssignableTo(ec) {
						thrown = throwName(ClassCastEx, "array store of %s into %s", v.R.Class.Name, arr.Class.Name)
						continue
					}
				}
				arr.Refs[idx] = v.R
			}
		case OpALen:
			arr := pop().R
			if arr == nil {
				thrown = throwName(ClassNullPointerEx, "arraylength on null")
				continue
			}
			push(IntVal(int64(arr.Len())))

		case OpThrow:
			r := pop().R
			if r == nil {
				thrown = throwName(ClassNullPointerEx, "throw null")
				continue
			}
			thrown = r
			continue

		case OpMonEnter:
			r := pop().R
			if r == nil {
				thrown = throwName(ClassNullPointerEx, "monitorenter on null")
				continue
			}
			r.monEnter(t)
		case OpMonExit:
			r := pop().R
			if r == nil {
				thrown = throwName(ClassNullPointerEx, "monitorexit on null")
				continue
			}
			if !r.monExit(t) {
				thrown = throwName(ClassIllegalStateEx, "monitorexit by non-owner")
				continue
			}

		case OpRet:
			t.steps += steps
			return Value{}, nil
		case OpRetV:
			t.steps += steps
			return pop(), nil

		default:
			thrown = throwName(ClassError, "bad opcode %d", in.Op)
			continue
		}
		pc++
	}
}

// Invoke runs m with args on t, returning the result value or a thrown
// throwable. It is the re-entry point for native methods (LRMI gates) that
// need to execute bytecode.
func (vm *VM) Invoke(t *Thread, m *Method, args []Value) (Value, *Object) {
	if len(args) != m.nargs {
		return Value{}, vm.Throwf(ClassError, "%s.%s wants %d args, got %d", m.Owner.Name, m.Name, m.nargs, len(args))
	}
	return vm.invokeNested(t, m, args)
}

// invokeNested runs a callee frame with depth tracking.
func (vm *VM) invokeNested(t *Thread, m *Method, args []Value) (Value, *Object) {
	t.callDepth++
	if t.callDepth > maxCallDepth {
		t.callDepth--
		return Value{}, vm.Throwf(ClassError, "call stack overflow")
	}
	v, th := vm.exec(t, m, args)
	t.callDepth--
	return v, th
}

// elemClass returns the linked element class of a reference array class,
// nil for primitive arrays.
func (c *Class) elemClass() *Class {
	if c.elem == "" || c.elem[0] != 'L' {
		if c.elem != "" && c.elem[0] == '[' {
			k, _ := c.NS.arrayClass(c.elem)
			return k
		}
		return nil
	}
	return c.NS.Lookup(refName(c.elem))
}

// newArrayOfClass allocates an array whose class is already resolved.
func (ns *Namespace) newArrayOfClass(c *Class, length int) (*Object, error) {
	o := &Object{Class: c, Owner: ns.OwnerID}
	var bytes int64
	switch c.elem {
	case "B":
		o.Bytes = make([]byte, length)
		bytes = int64(length)
	case "I":
		o.Ints = make([]int64, length)
		bytes = int64(length) * 8
	case "D":
		o.Floats = make([]float64, length)
		bytes = int64(length) * 8
	default:
		o.Refs = make([]*Object, length)
		bytes = int64(length) * 8
	}
	if ch := ns.VM.Charge; ch != nil {
		ch(ns.OwnerID, ChargeAlloc, 16+bytes)
	}
	return o, nil
}
