package vmkit

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Thread is a VM thread: the unit that executes bytecode. It is carried by
// whatever goroutine invokes the interpreter. The J-Kernel layer divides
// each Thread into segments (one per side of a cross-domain call) and
// interposes the jk/lang/Thread class so bytecode can only act on segments,
// never on the carrier; see internal/threads.
type Thread struct {
	ID   int64
	VM   *VM
	Name string

	priority atomic.Int64

	// stop holds a throwable to be thrown at the next safepoint (the
	// Thread.stop mechanism). The segment layer decides whether a stop
	// applies to the current segment.
	stop atomic.Pointer[Object]

	// suspended parks the thread at the next safepoint until resumed.
	suspendMu sync.Mutex
	suspendCV *sync.Cond
	suspended bool

	// steps counts executed instructions since the last accounting flush.
	steps int64

	// callDepth tracks interpreter recursion against maxCallDepth.
	callDepth int

	// DomainID is the id of the domain currently executing (for charge
	// attribution); maintained by the segment layer across LRMI.
	DomainID int64

	// Data is reserved for the J-Kernel layer (segment chain).
	Data any

	// SafepointHook, when non-nil, runs at interpreter safepoints and may
	// return a throwable to inject (used for domain termination).
	SafepointHook func(t *Thread) *Object
}

// NewThread registers a new VM thread. The caller's goroutine becomes the
// carrier; Detach must be called when done so lookup tables do not grow.
func (vm *VM) NewThread(name string) *Thread {
	t := &Thread{
		ID:   vm.nextThread.Add(1),
		VM:   vm,
		Name: name,
	}
	t.priority.Store(5)
	t.suspendCV = sync.NewCond(&t.suspendMu)
	vm.threadsMu.Lock()
	vm.threads[t.ID] = t
	vm.threadsAux[t.ID] = t.ID
	vm.threadsMu.Unlock()
	return t
}

// Detach unregisters the thread.
func (vm *VM) Detach(t *Thread) {
	vm.threadsMu.Lock()
	delete(vm.threads, t.ID)
	delete(vm.threadsAux, t.ID)
	vm.threadsMu.Unlock()
}

// LookupThread performs the "thread info lookup" of Table 1: a registry
// lookup by id. With HeavyThreadLookup the query goes through a second
// indirection, modelling the costlier JVM path.
func (vm *VM) LookupThread(id int64) *Thread {
	vm.threadsMu.RLock()
	defer vm.threadsMu.RUnlock()
	if vm.Profile.HeavyThreadLookup {
		aux, ok := vm.threadsAux[id]
		if !ok {
			return nil
		}
		id = aux
	}
	return vm.threads[id]
}

// Priority returns the thread priority (1..10, default 5).
func (t *Thread) Priority() int64 { return t.priority.Load() }

// SetPriority sets the thread priority. The interpreter treats priority as
// advisory, as most 1990s JVMs did.
func (t *Thread) SetPriority(p int64) {
	if p < 1 {
		p = 1
	}
	if p > 10 {
		p = 10
	}
	t.priority.Store(p)
}

// Stop schedules throwable to be thrown in this thread at its next
// safepoint (the Java Thread.stop model).
func (t *Thread) Stop(throwable *Object) {
	t.stop.Store(throwable)
	// A suspended thread must wake to observe the stop.
	t.suspendMu.Lock()
	t.suspendCV.Broadcast()
	t.suspendMu.Unlock()
}

// Suspend parks the thread at its next safepoint until Resume.
func (t *Thread) Suspend() {
	t.suspendMu.Lock()
	t.suspended = true
	t.suspendMu.Unlock()
}

// Resume releases a suspended thread.
func (t *Thread) Resume() {
	t.suspendMu.Lock()
	t.suspended = false
	t.suspendCV.Broadcast()
	t.suspendMu.Unlock()
}

// Suspended reports whether the thread is marked suspended.
func (t *Thread) Suspended() bool {
	t.suspendMu.Lock()
	defer t.suspendMu.Unlock()
	return t.suspended
}

// safepoint is called by the interpreter at method entry and backward
// branches. It returns a throwable to raise, or nil.
func (t *Thread) safepoint() *Object {
	if th := t.stop.Swap(nil); th != nil {
		return th
	}
	t.suspendMu.Lock()
	for t.suspended {
		if th := t.stop.Swap(nil); th != nil {
			t.suspendMu.Unlock()
			return th
		}
		t.suspendCV.Wait()
	}
	t.suspendMu.Unlock()
	if t.SafepointHook != nil {
		if th := t.SafepointHook(t); th != nil {
			return th
		}
	}
	return nil
}

// FlushAccounting reports any buffered interpreter-step charges to the
// accounting hook; LRMI gates call it at domain-switch boundaries so steps
// land on the right domain.
func (t *Thread) FlushAccounting() { t.flushSteps() }

// flushSteps reports accumulated interpreter steps to the accounting hook.
func (t *Thread) flushSteps() {
	if t.steps == 0 {
		return
	}
	if ch := t.VM.Charge; ch != nil {
		ch(t.DomainID, ChargeSteps, t.steps)
	}
	t.steps = 0
}

func (t *Thread) String() string {
	return fmt.Sprintf("thread[%d %s]", t.ID, t.Name)
}
