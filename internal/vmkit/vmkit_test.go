package vmkit

import (
	"strings"
	"testing"
)

// newTestNS builds a VM and a user namespace that sees the bootstrap
// classes plus the given assembled sources.
func newTestNS(t *testing.T, sources ...string) (*VM, *Namespace) {
	t.Helper()
	vm := MustNew(ProfileA)
	classes := map[string][]byte{}
	for _, src := range sources {
		b, err := AssembleBytes(src)
		if err != nil {
			t.Fatalf("assemble: %v\nsource:\n%s", err, src)
		}
		def, err := DecodeClass(b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		classes[def.Name] = b
	}
	ns := vm.NewNamespace("test", MapResolver(classes, vm.BootResolver()))
	return vm, ns
}

func callStatic(t *testing.T, vm *VM, ns *Namespace, ref string, args ...Value) Value {
	t.Helper()
	th := vm.NewThread("test")
	defer vm.Detach(th)
	v, err := vm.CallStatic(th, ns, ref, args...)
	if err != nil {
		t.Fatalf("CallStatic %s: %v", ref, err)
	}
	return v
}

func callStaticErr(t *testing.T, vm *VM, ns *Namespace, ref string, args ...Value) error {
	t.Helper()
	th := vm.NewThread("test")
	defer vm.Detach(th)
	_, err := vm.CallStatic(th, ns, ref, args...)
	return err
}

func TestArithmeticAndControlFlow(t *testing.T) {
	vm, ns := newTestNS(t, `
.class Calc
.method static fib (I)I stack 8 locals 3
  ; iterative fibonacci: a=0 b=1, n times: a,b = b,a+b
  iconst 0
  store 1
  iconst 1
  store 2
loop:
  load 0
  ifz done
  load 2
  load 1
  load 2
  iadd
  store 2
  store 1
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  load 1
  retv
.end
.method static mix (II)I stack 8 locals 0
  load 0
  load 1
  iand
  load 0
  load 1
  ior
  ixor
  retv
.end
`)
	if got := callStatic(t, vm, ns, "Calc.fib:(I)I", IntVal(10)); got.I != 55 {
		t.Errorf("fib(10) = %d, want 55", got.I)
	}
	if got := callStatic(t, vm, ns, "Calc.fib:(I)I", IntVal(0)); got.I != 0 {
		t.Errorf("fib(0) = %d, want 0", got.I)
	}
	// a&b ^ (a|b) == a^b
	if got := callStatic(t, vm, ns, "Calc.mix:(II)I", IntVal(0b1100), IntVal(0b1010)); got.I != 0b0110 {
		t.Errorf("mix = %b, want 110", got.I)
	}
}

func TestObjectsFieldsAndVirtualDispatch(t *testing.T) {
	vm, ns := newTestNS(t, `
.class Shape
.field name Ljk/lang/String;
.method area ()I stack 2 locals 0
  iconst 0
  retv
.end
`, `
.class Square super Shape
.field side I
.method area ()I stack 4 locals 0
  load 0
  getfield Square.side:I
  load 0
  getfield Square.side:I
  imul
  retv
.end
.method static make (I)LSquare; stack 4 locals 0
  new Square
  dup
  load 0
  putfield Square.side:I
  retv
.end
.method static areaOf (LShape;)I stack 2 locals 0
  load 0
  invokevirtual Shape.area:()I
  retv
.end
`)
	sq := callStatic(t, vm, ns, "Square.make:(I)LSquare;", IntVal(7))
	if sq.R == nil || sq.R.Class.Name != "Square" {
		t.Fatalf("make(7) returned %v", sq)
	}
	// Virtual dispatch through the Shape-typed parameter must hit
	// Square.area.
	if got := callStatic(t, vm, ns, "Square.areaOf:(LShape;)I", sq); got.I != 49 {
		t.Errorf("areaOf(square(7)) = %d, want 49", got.I)
	}
}

func TestInterfaceDispatchBothProfiles(t *testing.T) {
	src1 := `
.class Speaker interface
.method speak ()I
.end
`
	src2 := `
.class Dog implements Speaker
.method speak ()I stack 2 locals 0
  iconst 42
  retv
.end
.method static test (LSpeaker;)I stack 2 locals 0
  load 0
  invokeinterface Speaker.speak:()I
  retv
.end
.method static makeAndTest ()I stack 2 locals 0
  new Dog
  invokestatic Dog.test:(LSpeaker;)I
  retv
.end
`
	for _, p := range []Profile{ProfileA, ProfileB} {
		vm := MustNew(p)
		classes := map[string][]byte{}
		for _, src := range []string{src1, src2} {
			b, err := AssembleBytes(src)
			if err != nil {
				t.Fatal(err)
			}
			def, _ := DecodeClass(b)
			classes[def.Name] = b
		}
		ns := vm.NewNamespace("test", MapResolver(classes, vm.BootResolver()))
		th := vm.NewThread("t")
		v, err := vm.CallStatic(th, ns, "Dog.makeAndTest:()I")
		vm.Detach(th)
		if err != nil {
			t.Fatalf("profile %s: %v", p.Name, err)
		}
		if v.I != 42 {
			t.Errorf("profile %s: got %d, want 42", p.Name, v.I)
		}
	}
}

func TestExceptionsThrowCatchUnwind(t *testing.T) {
	vm, ns := newTestNS(t, `
.class Thrower
.method static boom ()I stack 4 locals 0
  new jk/lang/RuntimeException
  throw
.end
.method static catchIt ()I stack 4 locals 0
try:
  invokestatic Thrower.boom:()I
  retv
end:
handler:
  pop
  iconst 99
  retv
  .catch jk/lang/RuntimeException from try to end using handler
.end
.method static missIt ()I stack 4 locals 0
try:
  invokestatic Thrower.boom:()I
  retv
end:
handler:
  pop
  iconst 1
  retv
  .catch jk/kernel/RevokedException from try to end using handler
.end
.method static divZero (I)I stack 4 locals 0
try:
  iconst 100
  load 0
  idiv
  retv
end:
handler:
  pop
  iconst -1
  retv
  .catch jk/lang/ArithmeticException from try to end using handler
.end
`)
	if got := callStatic(t, vm, ns, "Thrower.catchIt:()I"); got.I != 99 {
		t.Errorf("catchIt = %d, want 99", got.I)
	}
	// Handler of unrelated type must not catch; error surfaces to Go.
	err := callStaticErr(t, vm, ns, "Thrower.missIt:()I")
	if err == nil {
		t.Fatal("missIt: expected uncaught exception")
	}
	te, ok := err.(*ThrownError)
	if !ok || te.Throwable.Class.Name != ClassRuntimeEx {
		t.Errorf("missIt: got %v, want RuntimeException", err)
	}
	if got := callStatic(t, vm, ns, "Thrower.divZero:(I)I", IntVal(4)); got.I != 25 {
		t.Errorf("divZero(4) = %d, want 25", got.I)
	}
	if got := callStatic(t, vm, ns, "Thrower.divZero:(I)I", IntVal(0)); got.I != -1 {
		t.Errorf("divZero(0) = %d, want -1 (caught)", got.I)
	}
}

func TestNullPointerAndCastChecks(t *testing.T) {
	vm, ns := newTestNS(t, `
.class Deref
.method static poke (LDeref;)I stack 4 locals 0
  load 0
  getfield Deref.x:I
  retv
.end
.field x I
.method static badCast (Ljk/lang/Object;)Ljk/lang/String; stack 2 locals 0
  load 0
  cast jk/lang/String
  retv
.end
`)
	err := callStaticErr(t, vm, ns, "Deref.poke:(LDeref;)I", Null())
	te, ok := err.(*ThrownError)
	if !ok || te.Throwable.Class.Name != ClassNullPointerEx {
		t.Errorf("poke(null): got %v, want NullPointerException", err)
	}
	obj, err2 := NewInstance(ns.Lookup("Deref"))
	if err2 != nil {
		t.Fatal(err2)
	}
	err = callStaticErr(t, vm, ns, "Deref.badCast:(Ljk/lang/Object;)Ljk/lang/String;", RefVal(obj))
	te, ok = err.(*ThrownError)
	if !ok || te.Throwable.Class.Name != ClassCastEx {
		t.Errorf("badCast: got %v, want ClassCastException", err)
	}
	// null casts succeed
	v := callStatic(t, vm, ns, "Deref.badCast:(Ljk/lang/Object;)Ljk/lang/String;", Null())
	if !v.IsNull() {
		t.Errorf("badCast(null) = %v, want null", v)
	}
}

func TestArraysAndBounds(t *testing.T) {
	vm, ns := newTestNS(t, `
.class Arr
.method static sum ([I)I stack 8 locals 3
  iconst 0
  store 1
  iconst 0
  store 2
loop:
  load 2
  load 0
  arraylength
  if_ge done
  load 1
  load 0
  load 2
  aload
  iadd
  store 1
  load 2
  iconst 1
  iadd
  store 2
  jmp loop
done:
  load 1
  retv
.end
.method static oob ([B)I stack 4 locals 0
  load 0
  iconst 100
  aload
  retv
.end
.method static makeBytes (I)[B stack 4 locals 0
  load 0
  newarr "[B"
  retv
.end
`)
	arr, err := ns.NewArray("[I", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range arr.Ints {
		arr.Ints[i] = int64(i + 1)
	}
	if got := callStatic(t, vm, ns, "Arr.sum:([I)I", RefVal(arr)); got.I != 15 {
		t.Errorf("sum = %d, want 15", got.I)
	}
	b := callStatic(t, vm, ns, "Arr.makeBytes:(I)[B", IntVal(8))
	if b.R == nil || len(b.R.Bytes) != 8 {
		t.Errorf("makeBytes(8) = %v", b)
	}
	err = callStaticErr(t, vm, ns, "Arr.oob:([B)I", b)
	te, ok := err.(*ThrownError)
	if !ok || te.Throwable.Class.Name != ClassIndexEx {
		t.Errorf("oob: got %v, want IndexOutOfBoundsException", err)
	}
	err = callStaticErr(t, vm, ns, "Arr.makeBytes:(I)[B", IntVal(-1))
	te, ok = err.(*ThrownError)
	if !ok || te.Throwable.Class.Name != ClassNegArraySizeEx {
		t.Errorf("makeBytes(-1): got %v, want NegativeArraySizeException", err)
	}
}

func TestStringsAndNatives(t *testing.T) {
	vm, ns := newTestNS(t, `
.class Str
.method static greet (Ljk/lang/String;)Ljk/lang/String; stack 4 locals 0
  sconst "hello, "
  load 0
  invokevirtual jk/lang/String.concat:(Ljk/lang/String;)Ljk/lang/String;
  retv
.end
.method static literalLen ()I stack 2 locals 0
  sconst "abcde"
  invokevirtual jk/lang/String.length:()I
  retv
.end
.method static internSame ()I stack 4 locals 0
  sconst "x1"
  sconst "x1"
  if_acmpeq same
  iconst 0
  retv
same:
  iconst 1
  retv
.end
`)
	name, err := ns.NewString("world")
	if err != nil {
		t.Fatal(err)
	}
	got := callStatic(t, vm, ns, "Str.greet:(Ljk/lang/String;)Ljk/lang/String;", RefVal(name))
	if text := StringText(got.R); text != "hello, world" {
		t.Errorf("greet = %q", text)
	}
	if got := callStatic(t, vm, ns, "Str.literalLen:()I"); got.I != 5 {
		t.Errorf("literalLen = %d", got.I)
	}
	if got := callStatic(t, vm, ns, "Str.internSame:()I"); got.I != 1 {
		t.Errorf("interned literals not identical")
	}
}

func TestVerifierRejections(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"stack underflow", `
.class Bad
.method static f ()I stack 4 locals 0
  iadd
  retv
.end
`, "underflow"},
		{"type confusion int as ref", `
.class Bad
.method static f ()I stack 4 locals 0
  iconst 5
  getfield Bad.x:I
  retv
.end
.field x I
`, "expected ref"},
		{"forged pointer via load", `
.class Bad
.method static f ()Ljk/lang/Object; stack 4 locals 1
  iconst 1234
  store 0
  load 0
  retv
.end
`, "expected ref"},
		{"uninitialized local", `
.class Bad
.method static f ()I stack 4 locals 1
  load 0
  retv
.end
`, "uninitialized"},
		{"bad branch target", `
.class Bad
.method static f ()I stack 4 locals 0
  iconst 0
  ifz missing
  iconst 1
  retv
.end
`, "undefined label"},
		{"fall off end", `
.class Bad
.method static f ()I stack 4 locals 0
  iconst 1
.end
`, "invalid pc"},
		{"void mismatch", `
.class Bad
.method static f ()V stack 4 locals 0
  iconst 1
  retv
.end
`, "retv in void"},
		{"private field foreign access", `
.class Bad
.method static f (Ljk/lang/String;)[B stack 4 locals 0
  load 0
  getfield jk/lang/String.bytes:[B
  retv
.end
`, "private field"},
		{"stack overflow beyond max", `
.class Bad
.method static f ()I stack 2 locals 0
  iconst 1
  iconst 2
  iconst 3
  pop
  pop
  retv
.end
`, "exceeds max"},
		{"merge height mismatch", `
.class Bad
.method static f (I)I stack 8 locals 0
  load 0
  ifz b
  iconst 1
  iconst 2
  jmp join
b:
  iconst 1
join:
  retv
.end
`, "height mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vm := MustNew(ProfileA)
			b, err := AssembleBytes(tc.src)
			if err == nil {
				ns := vm.NewNamespace("test", vm.BootResolver())
				_, err = ns.DefineClass(b)
			}
			if err == nil {
				t.Fatalf("expected verification error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestClassFileRoundTrip(t *testing.T) {
	src := `
.class RT super jk/lang/Throwable implements jk/io/FastCopy
.field a I
.field private b D
.field static private c Ljk/lang/String;
.method static f (ID[B)Ljk/lang/String; stack 12 locals 2
  sconst "x"
  retv
.end
.method synchronized g ()V stack 4 locals 0
try:
  ret
end:
h:
  pop
  ret
  .catch jk/lang/Exception from try to end using h
.end
`
	def, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	enc := EncodeClass(def)
	dec, err := DecodeClass(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2 := EncodeClass(dec)
	if string(enc) != string(enc2) {
		t.Error("encode-decode-encode is not stable")
	}
	// Disassemble and reassemble must produce the same encoding.
	re, err := Assemble(Disassemble(dec))
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, Disassemble(dec))
	}
	if string(EncodeClass(re)) != string(enc) {
		t.Error("disassemble/assemble round trip changed the class")
	}
}

func TestDecodeRejectsCorruptData(t *testing.T) {
	src := `
.class C
.method static f ()I stack 2 locals 0
  iconst 7
  retv
.end
`
	good, err := AssembleBytes(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeClass(nil); err == nil {
		t.Error("nil data accepted")
	}
	if _, err := DecodeClass(good[:len(good)-3]); err == nil {
		t.Error("truncated data accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := DecodeClass(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestNamespaceIsolationSameClassName(t *testing.T) {
	// Two namespaces each define a class named "Secret"; the classes are
	// distinct and casting across them fails.
	vm := MustNew(ProfileA)
	src := `
.class Secret
.field x I
.method static make ()LSecret; stack 2 locals 0
  new Secret
  retv
.end
`
	b, err := AssembleBytes(src)
	if err != nil {
		t.Fatal(err)
	}
	ns1 := vm.NewNamespace("d1", MapResolver(map[string][]byte{"Secret": b}, vm.BootResolver()))
	ns2 := vm.NewNamespace("d2", MapResolver(map[string][]byte{"Secret": b}, vm.BootResolver()))
	c1, err := ns1.Resolve("Secret")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ns2.Resolve("Secret")
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("same *Class bound in both namespaces; expected distinct classes")
	}
	o1, _ := NewInstance(c1)
	if o1.Class.AssignableTo(c2) {
		t.Error("instance of d1.Secret assignable to d2.Secret")
	}
}

func TestMonitorsRecursiveAndOwnerChecked(t *testing.T) {
	vm, ns := newTestNS(t, `
.class Mon
.method static locked (Ljk/lang/Object;)I stack 4 locals 0
  load 0
  monitorenter
  load 0
  monitorenter
  load 0
  monitorexit
  load 0
  monitorexit
  iconst 1
  retv
.end
.method static badExit (Ljk/lang/Object;)I stack 4 locals 0
  load 0
  monitorexit
  iconst 1
  retv
.end
`)
	monClass, err := ns.Resolve("Mon")
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := NewInstance(monClass)
	if got := callStatic(t, vm, ns, "Mon.locked:(Ljk/lang/Object;)I", RefVal(obj)); got.I != 1 {
		t.Errorf("locked = %d", got.I)
	}
	if obj.MonitorOwner() != nil {
		t.Error("monitor still owned after balanced exit")
	}
	err = callStaticErr(t, vm, ns, "Mon.badExit:(Ljk/lang/Object;)I", RefVal(obj))
	te, ok := err.(*ThrownError)
	if !ok || te.Throwable.Class.Name != ClassIllegalStateEx {
		t.Errorf("badExit: got %v, want IllegalStateException", err)
	}
}

func TestThreadStopInjectsAtSafepoint(t *testing.T) {
	vm, ns := newTestNS(t, `
.class Spin
.method static forever ()I stack 4 locals 0
loop:
  jmp loop
.end
`)
	th := vm.NewThread("spinner")
	defer vm.Detach(th)
	done := make(chan error, 1)
	go func() {
		_, err := vm.CallStatic(th, ns, "Spin.forever:()I")
		done <- err
	}()
	th.Stop(vm.Throwf(ClassThreadDeath, "die"))
	err := <-done
	te, ok := err.(*ThrownError)
	if !ok || te.Throwable.Class.Name != ClassThreadDeath {
		t.Fatalf("got %v, want ThreadDeath", err)
	}
}

func TestSystemOutputPerNamespace(t *testing.T) {
	vm := MustNew(ProfileA)
	src := InterposedClassSource(ClassSystem)
	b, err := AssembleBytes(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	ns := vm.NewNamespace("d", MapResolver(map[string][]byte{ClassSystem: b}, vm.BootResolver()))
	ns.Output = &buf
	user := `
.class Hello
.method static main ()V stack 2 locals 0
  sconst "hi there"
  invokestatic jk/lang/System.println:(Ljk/lang/String;)V
  ret
.end
`
	ub, err := AssembleBytes(user)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.DefineClass(ub); err != nil {
		t.Fatal(err)
	}
	th := vm.NewThread("main")
	defer vm.Detach(th)
	if _, err := vm.CallStatic(th, ns, "Hello.main:()V"); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "hi there\n" {
		t.Errorf("output = %q", got)
	}
}
