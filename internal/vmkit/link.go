package vmkit

import "fmt"

// linkedRef is the per-instruction resolution cache: symbolic operands are
// resolved once at class-link time (loading referenced classes recursively,
// as the paper's class loaders do) and stored parallel to the code.
type linkedRef struct {
	class  *Class  // OpNew/OpCast/OpInstOf/OpNewArr
	field  *Field  // field ops
	method *Method // OpInvokeS, and declared-method check for the others
	sig    string  // dispatch key for OpInvokeV/OpInvokeI
	str    *Object // OpSConst interned literal
}

// resolveCode resolves every symbolic reference in c's methods through c's
// namespace. Because shared classes must transitively share their
// referenced classes, resolution through the defining namespace is valid in
// every namespace the class is bound into.
func resolveCode(c *Class) error {
	for _, m := range c.methods {
		if m.Owner != c || m.Flags&(MNative|MAbstract) != 0 {
			continue
		}
		if m.linked != nil {
			continue
		}
		linked := make([]linkedRef, len(m.Code))
		for pc, in := range m.Code {
			ref, err := resolveInstr(c, in)
			if err != nil {
				return fmt.Errorf("%s.%s pc=%d: %w", c.Name, m.Name, pc, err)
			}
			linked[pc] = ref
		}
		excs := make([]*Class, len(m.Excs))
		for i, e := range m.Excs {
			ec, err := c.NS.Resolve(e.Type)
			if err != nil {
				return fmt.Errorf("%s.%s catch[%d]: %w", c.Name, m.Name, i, err)
			}
			if !isThrowable(ec) {
				return fmt.Errorf("%s.%s catch[%d]: %s is not throwable", c.Name, m.Name, i, e.Type)
			}
			excs[i] = ec
		}
		m.linked = linked
		m.excClasses = excs
	}
	return nil
}

func isThrowable(c *Class) bool {
	for k := c; k != nil; k = k.Super {
		if k.Name == ClassThrowable {
			return true
		}
	}
	return false
}

func resolveInstr(c *Class, in Instr) (linkedRef, error) {
	ns := c.NS
	switch in.Op {
	case OpSConst:
		s, err := ns.InternString(in.S)
		if err != nil {
			return linkedRef{}, err
		}
		return linkedRef{str: s}, nil

	case OpNew:
		k, err := ns.Resolve(in.S)
		if err != nil {
			return linkedRef{}, err
		}
		if k.IsInterface() || k.IsArray() || (k.Def != nil && k.Def.Flags&FlagAbstract != 0) {
			return linkedRef{}, fmt.Errorf("cannot instantiate %s", in.S)
		}
		return linkedRef{class: k}, nil

	case OpCast, OpInstOf:
		k, err := ns.Resolve(in.S)
		if err != nil {
			return linkedRef{}, err
		}
		return linkedRef{class: k}, nil

	case OpNewArr:
		if !isArrayDesc(in.S) {
			return linkedRef{}, fmt.Errorf("newarr wants an array descriptor, got %q", in.S)
		}
		k, err := ns.arrayClass(in.S)
		if err != nil {
			return linkedRef{}, err
		}
		return linkedRef{class: k}, nil

	case OpGetF, OpPutF, OpGetS, OpPutS:
		fr, err := ParseFieldRef(in.S)
		if err != nil {
			return linkedRef{}, err
		}
		k, err := ns.Resolve(fr.Class)
		if err != nil {
			return linkedRef{}, err
		}
		f := k.FieldByName(fr.Name)
		if f == nil {
			return linkedRef{}, fmt.Errorf("no field %s in %s", fr.Name, fr.Class)
		}
		if f.Desc != fr.Desc {
			return linkedRef{}, fmt.Errorf("field %s.%s has descriptor %s, not %s", fr.Class, fr.Name, f.Desc, fr.Desc)
		}
		wantStatic := in.Op == OpGetS || in.Op == OpPutS
		if f.Static != wantStatic {
			return linkedRef{}, fmt.Errorf("field %s.%s static mismatch", fr.Class, fr.Name)
		}
		return linkedRef{field: f, class: k}, nil

	case OpInvokeV, OpInvokeI, OpInvokeS:
		mr, err := ParseMethodRef(in.S)
		if err != nil {
			return linkedRef{}, err
		}
		k, err := ns.Resolve(mr.Class)
		if err != nil {
			return linkedRef{}, err
		}
		m := k.MethodBySig(mr.Name, mr.Desc)
		if m == nil {
			return linkedRef{}, fmt.Errorf("no method %s:%s in %s", mr.Name, mr.Desc, mr.Class)
		}
		switch in.Op {
		case OpInvokeS:
			if !m.IsStatic() {
				return linkedRef{}, fmt.Errorf("%s.%s is not static", mr.Class, mr.Name)
			}
		case OpInvokeI:
			if !k.IsInterface() {
				return linkedRef{}, fmt.Errorf("invokeinterface on class %s", mr.Class)
			}
			if m.IsStatic() {
				return linkedRef{}, fmt.Errorf("%s.%s is static", mr.Class, mr.Name)
			}
		default:
			if k.IsInterface() {
				return linkedRef{}, fmt.Errorf("invokevirtual on interface %s", mr.Class)
			}
			if m.IsStatic() {
				return linkedRef{}, fmt.Errorf("%s.%s is static", mr.Class, mr.Name)
			}
		}
		return linkedRef{method: m, class: k, sig: mr.Name + ":" + mr.Desc}, nil
	}
	return linkedRef{}, nil
}
