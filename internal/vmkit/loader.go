package vmkit

import (
	"fmt"
	"io"
	"sync"
)

// Resolution is the outcome of a resolver query, mirroring the J-Kernel's
// class name resolvers: a class name maps to freshly submitted bytecode
// (local class), to a class defined elsewhere (shared class), or to nothing.
type Resolution struct {
	// Bytes, when non-nil, is binary class-file data to define locally.
	Bytes []byte
	// Shared, when non-nil, binds an already-linked class (defined in
	// another namespace) into this namespace.
	Shared *Class
}

// ResolverFunc is queried whenever a namespace encounters an unknown class
// name. Returning (nil, nil) means "unknown name".
type ResolverFunc func(name string) (*Resolution, error)

// LinkError reports a class loading, verification, or linking failure.
type LinkError struct {
	Class string
	Op    string // "resolve", "decode", "hierarchy", "verify", "link"
	Err   error
}

func (e *LinkError) Error() string {
	return fmt.Sprintf("vmkit: %s %s: %v", e.Op, e.Class, e.Err)
}

func (e *LinkError) Unwrap() error { return e.Err }

type classState int

const (
	stateLoading classState = iota + 1 // hierarchy being resolved
	stateLinking                       // shell ready; code verify/link in progress
	stateReady
)

type classEntry struct {
	state classState
	class *Class
}

// Namespace maps class names to classes for one protection domain. Each
// domain has its own namespace, so the same name can denote different
// classes in different domains; sharing a class means binding the same
// *Class into several namespaces.
type Namespace struct {
	VM   *VM
	Name string

	mu       sync.Mutex
	classes  map[string]*classEntry
	resolver ResolverFunc
	interns  map[string]*Object

	// OwnerID is the domain id charged for allocations performed by code
	// running against this namespace (0 = system).
	OwnerID int64

	// Output receives jk/lang/System output for this namespace; when nil,
	// the VM's Stdout is used. Interposing System per domain is what makes
	// this per-domain state possible.
	Output io.Writer

	// ThreadOps, when set by the J-Kernel layer, reroutes the interposed
	// jk/lang/Thread natives to thread-segment semantics.
	ThreadOps ThreadOps
}

// ThreadOps is implemented by the J-Kernel layer to give the interposed
// jk/lang/Thread class segment semantics: operations act on the current
// call segment rather than the carrier thread. Each method returns a VM
// throwable or nil.
type ThreadOps interface {
	Current(env *Env) (*Object, *Object)
	Stop(env *Env, threadObj *Object) *Object
	Suspend(env *Env, threadObj *Object) *Object
	Resume(env *Env, threadObj *Object) *Object
	SetPriority(env *Env, threadObj *Object, p int64) *Object
	GetPriority(env *Env, threadObj *Object) (int64, *Object)
}

// NewNamespace creates an empty namespace resolving through r. The VM's
// bootstrap classes are not automatically visible; use BindSystemClasses or
// a resolver that forwards to the bootstrap namespace.
func (vm *VM) NewNamespace(name string, r ResolverFunc) *Namespace {
	return &Namespace{
		VM:       vm,
		Name:     name,
		classes:  make(map[string]*classEntry),
		resolver: r,
		interns:  make(map[string]*Object),
	}
}

// SetResolver replaces the namespace's resolver (used while bootstrapping).
func (ns *Namespace) SetResolver(r ResolverFunc) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.resolver = r
}

// Lookup returns the class bound to name if it is fully defined, else nil.
func (ns *Namespace) Lookup(name string) *Class {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if e, ok := ns.classes[name]; ok && e.state >= stateLinking {
		return e.class
	}
	return nil
}

// Classes returns a snapshot of all fully defined classes.
func (ns *Namespace) Classes() []*Class {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make([]*Class, 0, len(ns.classes))
	for _, e := range ns.classes {
		if e.state == stateReady {
			out = append(out, e.class)
		}
	}
	return out
}

// Bind makes an existing class (typically defined by another namespace)
// visible in this namespace under its own name. This is the mechanism
// behind both system-class visibility and SharedClass capabilities.
func (ns *Namespace) Bind(c *Class) error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if e, ok := ns.classes[c.Name]; ok {
		if e.class == c {
			return nil
		}
		return fmt.Errorf("vmkit: namespace %s already binds %s", ns.Name, c.Name)
	}
	ns.classes[c.Name] = &classEntry{state: stateReady, class: c}
	return nil
}

// DefineClass decodes, verifies, and links bytecode in this namespace and
// returns the new class. Referenced classes are resolved recursively
// through the namespace's resolver, as in the paper's class loaders.
func (ns *Namespace) DefineClass(data []byte) (*Class, error) {
	def, err := DecodeClass(data)
	if err != nil {
		return nil, &LinkError{Class: "?", Op: "decode", Err: err}
	}
	return ns.defineDecoded(def)
}

// DefineDef links an already-decoded definition (used by the stub generator
// and bootstrap; user-supplied classes should go through DefineClass so the
// binary format is the trust boundary).
func (ns *Namespace) DefineDef(def *ClassDef) (*Class, error) {
	return ns.defineDecoded(def)
}

func (ns *Namespace) defineDecoded(def *ClassDef) (*Class, error) {
	ns.mu.Lock()
	if _, exists := ns.classes[def.Name]; exists {
		ns.mu.Unlock()
		return nil, &LinkError{Class: def.Name, Op: "resolve",
			Err: fmt.Errorf("class already defined in namespace %s", ns.Name)}
	}
	ns.mu.Unlock()
	c, err := ns.load(def.Name, def)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Resolve returns the class bound to name, loading it through the resolver
// if necessary.
func (ns *Namespace) Resolve(name string) (*Class, error) {
	return ns.load(name, nil)
}

// load drives the two-phase pipeline. If def is non-nil it is used directly
// instead of querying the resolver (DefineClass path). Cyclic references
// between classes are permitted once a shell (hierarchy, fields, vtable)
// exists; cyclic superclass chains are not.
func (ns *Namespace) load(name string, def *ClassDef) (*Class, error) {
	if isArrayDesc(name) {
		return ns.arrayClass(name)
	}
	ns.mu.Lock()
	if e, ok := ns.classes[name]; ok {
		switch e.state {
		case stateReady, stateLinking:
			ns.mu.Unlock()
			return e.class, nil
		case stateLoading:
			ns.mu.Unlock()
			return nil, &LinkError{Class: name, Op: "hierarchy",
				Err: fmt.Errorf("circular superclass/interface chain")}
		}
	}
	resolver := ns.resolver
	ns.mu.Unlock()

	if def == nil {
		if resolver == nil {
			return nil, &LinkError{Class: name, Op: "resolve",
				Err: fmt.Errorf("no resolver in namespace %s", ns.Name)}
		}
		res, err := resolver(name)
		if err != nil {
			return nil, &LinkError{Class: name, Op: "resolve", Err: err}
		}
		if res == nil {
			return nil, &LinkError{Class: name, Op: "resolve",
				Err: fmt.Errorf("class not found in namespace %s", ns.Name)}
		}
		if res.Shared != nil {
			if err := ns.Bind(res.Shared); err != nil {
				return nil, &LinkError{Class: name, Op: "resolve", Err: err}
			}
			return res.Shared, nil
		}
		d, err := DecodeClass(res.Bytes)
		if err != nil {
			return nil, &LinkError{Class: name, Op: "decode", Err: err}
		}
		def = d
	}
	if def.Name != name {
		return nil, &LinkError{Class: name, Op: "resolve",
			Err: fmt.Errorf("resolver produced class %q", def.Name)}
	}

	// Phase 1: shell (hierarchy, field slots, vtable).
	ns.mu.Lock()
	if e, ok := ns.classes[name]; ok {
		// Raced with another loader; settle on whoever won.
		ns.mu.Unlock()
		if e.state == stateLoading {
			return nil, &LinkError{Class: name, Op: "hierarchy",
				Err: fmt.Errorf("concurrent circular load")}
		}
		return e.class, nil
	}
	entry := &classEntry{state: stateLoading}
	ns.classes[name] = entry
	ns.mu.Unlock()

	fail := func(op string, err error) (*Class, error) {
		ns.mu.Lock()
		delete(ns.classes, name)
		ns.mu.Unlock()
		if le, ok := err.(*LinkError); ok {
			return nil, le
		}
		return nil, &LinkError{Class: name, Op: op, Err: err}
	}

	c := &Class{Def: def, Name: name, NS: ns}
	if def.Super == "" {
		if name != ClassObject {
			return fail("hierarchy", fmt.Errorf("only %s may omit a superclass", ClassObject))
		}
	} else {
		super, err := ns.Resolve(def.Super)
		if err != nil {
			return fail("hierarchy", err)
		}
		if super.IsInterface() || super.IsArray() {
			return fail("hierarchy", fmt.Errorf("superclass %s is not a class", super.Name))
		}
		c.Super = super
	}
	for _, in := range def.Interfaces {
		ic, err := ns.Resolve(in)
		if err != nil {
			return fail("hierarchy", err)
		}
		if !ic.IsInterface() {
			return fail("hierarchy", fmt.Errorf("%s is not an interface", in))
		}
		c.Interfaces = append(c.Interfaces, ic)
	}
	if err := linkFieldsAndMethods(c); err != nil {
		return fail("link", err)
	}

	ns.mu.Lock()
	entry.class = c
	entry.state = stateLinking
	ns.mu.Unlock()

	// Phase 2: resolve code references (may recursively load), then verify.
	if err := resolveCode(c); err != nil {
		return fail("link", err)
	}
	if err := verifyClass(c); err != nil {
		return fail("verify", err)
	}

	ns.mu.Lock()
	entry.state = stateReady
	ns.mu.Unlock()
	if ch := ns.VM.Charge; ch != nil {
		ch(ns.OwnerID, ChargeClass, int64(len(def.Methods))*64+int64(len(def.Fields))*16+256)
	}
	return c, nil
}

// linkFieldsAndMethods assigns field slots, flattens the vtable, binds
// native methods, and validates basic structure.
func linkFieldsAndMethods(c *Class) error {
	def := c.Def
	c.fields = make(map[string]*Field, len(def.Fields))
	base := 0
	if c.Super != nil {
		base = c.Super.numSlots
	}
	nextSlot := base
	nextStatic := 0
	for i := range def.Fields {
		fd := def.Fields[i]
		if _, dup := c.fields[fd.Name]; dup {
			return fmt.Errorf("duplicate field %s", fd.Name)
		}
		if _, n, err := parseOneDesc(fd.Desc); err != nil || n != len(fd.Desc) {
			return fmt.Errorf("field %s: bad descriptor %q", fd.Name, fd.Desc)
		}
		f := &Field{FieldDef: fd, Owner: c}
		if fd.Static {
			f.Slot = nextStatic
			nextStatic++
		} else {
			if c.IsInterface() {
				return fmt.Errorf("interface %s declares instance field %s", c.Name, fd.Name)
			}
			f.Slot = nextSlot
			nextSlot++
		}
		c.fields[fd.Name] = f
	}
	c.numSlots = nextSlot
	c.Statics = make([]Value, nextStatic)
	for _, f := range c.fields {
		if f.Static {
			c.Statics[f.Slot] = zeroValue(f.Desc)
		}
	}
	c.zeroFields = make([]Value, nextSlot)
	for k := c; k != nil; k = k.Super {
		for _, f := range k.fields {
			if !f.Static {
				c.zeroFields[f.Slot] = zeroValue(f.Desc)
			}
		}
	}

	c.vtable = make(map[string]*Method)
	if c.Super != nil {
		for sig, m := range c.Super.vtable {
			c.vtable[sig] = m
		}
		c.methods = append(c.methods, c.Super.methods...)
	}
	for i := range def.Methods {
		md := def.Methods[i]
		params, ret, err := ParseMethodDesc(md.Desc)
		if err != nil {
			return fmt.Errorf("method %s: %v", md.Name, err)
		}
		m := &Method{MethodDef: md, Owner: c, ret: ret}
		m.nargs = len(params)
		if md.Flags&MStatic == 0 {
			m.nargs++
		}
		if md.Flags&MNative != 0 {
			key := c.Name + "." + md.Name + ":" + md.Desc
			fn := c.NS.VM.nativeFor(key)
			if fn == nil {
				return fmt.Errorf("unbound native method %s", key)
			}
			m.Native = fn
		}
		if c.IsInterface() && md.Flags&(MNative|MStatic) == 0 {
			m.Flags |= MAbstract
		}
		if m.Flags&(MAbstract|MNative) == 0 && len(md.Code) == 0 {
			return fmt.Errorf("method %s has no code", md.Name)
		}
		sig := m.Sig()
		if prev, dup := c.vtable[sig]; dup && prev.Owner == c {
			return fmt.Errorf("duplicate method %s", sig)
		}
		c.vtable[sig] = m
		c.methods = append(c.methods, m)
	}
	return nil
}

// isArrayDesc reports whether name is an array descriptor rather than a
// class name.
func isArrayDesc(name string) bool { return len(name) > 0 && name[0] == '[' }

// arrayClass returns (creating on demand) the array class for desc in this
// namespace. Reference element classes resolve through the namespace.
func (ns *Namespace) arrayClass(desc string) (*Class, error) {
	ns.mu.Lock()
	if e, ok := ns.classes[desc]; ok {
		ns.mu.Unlock()
		return e.class, nil
	}
	ns.mu.Unlock()

	elem, n, err := parseOneDesc(desc[1:])
	if err != nil || n != len(desc)-1 {
		return nil, &LinkError{Class: desc, Op: "resolve", Err: fmt.Errorf("bad array descriptor")}
	}
	switch elem[0] {
	case 'L':
		if _, err := ns.Resolve(refName(elem)); err != nil {
			return nil, err
		}
	case '[':
		if _, err := ns.arrayClass(elem); err != nil {
			return nil, err
		}
	}
	super, err := ns.Resolve(ClassObject)
	if err != nil {
		return nil, err
	}
	c := &Class{
		Name:   desc,
		Super:  super,
		NS:     ns,
		elem:   elem,
		vtable: map[string]*Method{},
		fields: map[string]*Field{},
	}
	if super != nil {
		c.vtable = super.vtable
		c.methods = super.methods
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if e, ok := ns.classes[desc]; ok {
		return e.class, nil
	}
	ns.classes[desc] = &classEntry{state: stateReady, class: c}
	return c, nil
}

// InternString returns the namespace-interned String object for text.
// Literal strings (SCONST) are interned; runtime strings are not.
func (ns *Namespace) InternString(text string) (*Object, error) {
	ns.mu.Lock()
	if o, ok := ns.interns[text]; ok {
		ns.mu.Unlock()
		return o, nil
	}
	ns.mu.Unlock()
	o, err := ns.NewString(text)
	if err != nil {
		return nil, err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if prev, ok := ns.interns[text]; ok {
		return prev, nil
	}
	ns.interns[text] = o
	return o, nil
}

// NewString allocates a fresh (non-interned) String object in this
// namespace.
func (ns *Namespace) NewString(text string) (*Object, error) {
	sc, err := ns.Resolve(ClassString)
	if err != nil {
		return nil, err
	}
	return newStringOfClass(sc, text, ns.OwnerID), nil
}

func newStringOfClass(sc *Class, text string, owner int64) *Object {
	arr := &Object{
		Class: mustArrayClass(sc.NS, "[B"),
		Bytes: []byte(text),
		Owner: owner,
	}
	o := &Object{
		Class:  sc,
		Fields: make([]Value, sc.numSlots),
		Owner:  owner,
	}
	o.Fields[sc.FieldByName("bytes").Slot] = RefVal(arr)
	return o
}

func mustArrayClass(ns *Namespace, desc string) *Class {
	c, err := ns.arrayClass(desc)
	if err != nil {
		panic(fmt.Sprintf("vmkit: array class %s: %v", desc, err))
	}
	return c
}

// StringText extracts the Go string from a jk/lang/String object. Returns
// "" when o is not a string.
func StringText(o *Object) string {
	if o == nil || o.Class == nil || o.Class.Name != ClassString {
		return ""
	}
	f := o.Class.FieldByName("bytes")
	if f == nil {
		return ""
	}
	arr := o.Fields[f.Slot].R
	if arr == nil {
		return ""
	}
	return string(arr.Bytes)
}

// NewInstance allocates a zeroed instance of c.
func NewInstance(c *Class) (*Object, error) {
	if c.IsInterface() || c.Def != nil && c.Def.Flags&FlagAbstract != 0 {
		return nil, fmt.Errorf("vmkit: cannot instantiate %s", c.Name)
	}
	if c.IsArray() {
		return nil, fmt.Errorf("vmkit: use NewArray for %s", c.Name)
	}
	o := &Object{Class: c, Fields: make([]Value, c.numSlots), Owner: c.NS.OwnerID}
	copy(o.Fields, c.zeroFields)
	if ch := c.NS.VM.Charge; ch != nil {
		ch(c.NS.OwnerID, ChargeAlloc, int64(16+16*len(o.Fields)))
	}
	return o, nil
}

// AllFields returns every field including inherited ones (diagnostics and
// serialization helpers).
func (c *Class) AllFields() []*Field {
	var out []*Field
	for k := c; k != nil; k = k.Super {
		for _, f := range k.fields {
			out = append(out, f)
		}
	}
	return out
}

// NewArray allocates an array of the given descriptor and length in ns.
func (ns *Namespace) NewArray(desc string, length int) (*Object, error) {
	if length < 0 {
		return nil, fmt.Errorf("vmkit: negative array size %d", length)
	}
	c, err := ns.arrayClass(desc)
	if err != nil {
		return nil, err
	}
	o := &Object{Class: c, Owner: ns.OwnerID}
	var bytes int64
	switch {
	case desc == "[B":
		o.Bytes = make([]byte, length)
		bytes = int64(length)
	case desc == "[I":
		o.Ints = make([]int64, length)
		bytes = int64(length) * 8
	case desc == "[D":
		o.Floats = make([]float64, length)
		bytes = int64(length) * 8
	default:
		o.Refs = make([]*Object, length)
		bytes = int64(length) * 8
	}
	if ch := ns.VM.Charge; ch != nil {
		ch(ns.OwnerID, ChargeAlloc, 16+bytes)
	}
	return o, nil
}
