// Package telemetry is the J-Kernel's dependency-free observability
// layer: a lock-sharded metrics registry (counters, gauges, log-scale
// latency histograms) plus a lightweight trace layer whose contexts
// propagate across the remote wire (see internal/remote), so a
// supervisor→worker→worker call chain stitches into one trace.
//
// The package is designed to stay on the hot path of the Table 4–9
// benchmarks: every instrument is a pre-resolved pointer whose update is
// a handful of atomic operations, every method is nil-safe (a nil
// *Counter, *Gauge, *Histogram, *Registry, or *Tracer is an inert no-op),
// and the null-call path performs no map lookups and no allocation when
// telemetry is disabled.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counterStripes is the stripe count of Counter: a power of two, sized so
// a modest executor pool spreads across distinct cache lines.
const counterStripes = 8

// padInt64 is an atomic counter cell padded to its own cache line.
type padInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing metric. The zero value is ready;
// a nil *Counter is an inert no-op. The count is striped across
// cache-line-padded cells: a counter shared by a pool of worker
// goroutines (the serve-side LRMI counters, say) would otherwise bounce
// one line between every core on every increment, which costs more than
// the rest of the instrumentation combined. Single-writer callers use
// Inc/Add (stripe 0); pooled callers pass a per-worker stripe to IncAt.
type Counter struct {
	stripes [counterStripes]padInt64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.stripes[0].v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// IncAt increments the counter by one on stripe s&(stripes-1). Callers
// that share one counter across a worker pool pass a stable per-worker
// value so concurrent increments land on distinct cache lines.
func (c *Counter) IncAt(s uint64) {
	if c != nil {
		c.stripes[s&(counterStripes-1)].v.Add(1)
	}
}

// Value returns the current count (0 for nil). The striped cells are
// summed with independent atomic loads, so a concurrent reader sees a
// value at least as large as any increment that completed before the
// call — monotonic, though not a single linearizable snapshot.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var v int64
	for i := range c.stripes {
		v += c.stripes[i].v.Load()
	}
	return v
}

// Gauge is a point-in-time level. The zero value is ready; a nil *Gauge
// is an inert no-op. Padded to a cache line for the same reason as
// Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores the current level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the level by d (use +1/-1 for in-flight tracking).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: log-scale with four sub-buckets per octave
// (bucket = floor(log2(v))*4 + top-two mantissa bits), giving ~±9%
// resolution over the full int64 range with a fixed, lock-free array of
// atomic buckets. Values are whatever unit the caller observes —
// nanoseconds for latency histograms, plain counts for occupancy.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits // sub-buckets per octave
	histOctaves = 64
	histBuckets = histOctaves * histSub
)

// Histogram is a lock-free log-scale distribution with quantile
// estimation. The zero value is ready; a nil *Histogram is an inert
// no-op.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64
	bucket [histBuckets]atomic.Int64
}

// bucketOf maps a value onto its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u) // values 0..histSub-1 land in the first octave 1:1
	}
	// Octave = position of the highest set bit; sub-bucket = the next
	// histSubBits mantissa bits.
	oct := bits.Len64(u) - histSubBits
	sub := (u >> (uint(oct) - 1)) & (histSub - 1)
	return oct*histSub + int(sub)
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) float64 {
	oct := i / histSub
	sub := i % histSub
	if oct == 0 {
		return float64(sub)
	}
	return float64(uint64(histSub+sub) << (uint(oct) - 1))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.bucket[bucketOf(v)].Add(1)
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(start)))
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// interpolating within the winning bucket. Concurrent observes make the
// estimate approximate, never panic.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		n := h.bucket[i].Load()
		if n == 0 {
			continue
		}
		seen += n
		if seen >= rank {
			lo := bucketLow(i)
			hi := bucketLow(i + 1)
			// Position of the rank within this bucket.
			frac := float64(rank-(seen-n)) / float64(n)
			return lo + (hi-lo)*frac
		}
	}
	return bucketLow(histBuckets - 1)
}

// HistogramSnapshot is a summarized distribution for JSON export.
// Latency histograms are in nanoseconds; occupancy histograms in counts.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the distribution.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
	}
}

// --- registry ---------------------------------------------------------------

const regShards = 16

// shard is one lock-sharded slice of the registry's name space.
type shard struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
	edges    map[edgeKey]*Counter
}

type edgeKey struct{ caller, callee string }

// Registry is a lock-sharded metrics registry. Instruments are created on
// first use and live for the registry's lifetime; hot paths resolve their
// instruments once and update through the returned pointers, so the
// sharded locks are off the per-call path. A nil *Registry is an inert
// no-op whose getters return nil instruments (themselves no-ops).
type Registry struct {
	node   string
	shards [regShards]shard
	events eventRing
}

// NewRegistry creates a registry; node names this kernel/process in
// snapshots and stitched traces.
func NewRegistry(node string) *Registry {
	if node == "" {
		node = "jk"
	}
	return &Registry{node: node}
}

// Node returns the registry's node name ("" for nil).
func (r *Registry) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// fnv1a hashes a name onto a shard.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (r *Registry) shard(name string) *shard {
	return &r.shards[fnv1a(name)%regShards]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counters == nil {
		s.counters = map[string]*Counter{}
	}
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gauges == nil {
		s.gauges = map[string]*Gauge{}
	}
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge computed at snapshot time (table sizes,
// queue depths owned by other structures). Re-registering a name replaces
// the function; DropGauge removes it.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gaugeFns == nil {
		s.gaugeFns = map[string]func() int64{}
	}
	s.gaugeFns[name] = fn
}

// DropGauge removes a gauge or gauge function (connection teardown).
func (r *Registry) DropGauge(name string) {
	if r == nil {
		return
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.gaugeFns, name)
	delete(s.gauges, name)
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hists == nil {
		s.hists = map[string]*Histogram{}
	}
	h := s.hists[name]
	if h == nil {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// Edge returns the caller→callee call-graph edge counter, creating it on
// first use. The observed cross-domain call graph (every LRMI records its
// edge) is dumped from /debug/jk — the seed input for stack-based
// access-control policy inference.
func (r *Registry) Edge(caller, callee string) *Counter {
	if r == nil {
		return nil
	}
	s := r.shard(caller)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.edges == nil {
		s.edges = map[edgeKey]*Counter{}
	}
	k := edgeKey{caller, callee}
	c := s.edges[k]
	if c == nil {
		c = &Counter{}
		s.edges[k] = c
	}
	return c
}

// --- event log --------------------------------------------------------------

// Event is one timestamped lifecycle event (worker restarts, faults).
type Event struct {
	At  time.Time `json:"at"`
	Msg string    `json:"msg"`
}

const eventRingCap = 256

// eventRing is a bounded, mutex-guarded event log. Events are rare
// (process lifecycle, faults), so a plain mutex is fine here.
type eventRing struct {
	mu   sync.Mutex
	buf  [eventRingCap]Event
	next uint64
}

// Eventf appends one formatted event to the registry's event log.
func (r *Registry) Eventf(format string, args ...any) {
	if r == nil {
		return
	}
	e := Event{At: time.Now(), Msg: fmt.Sprintf(format, args...)}
	r.events.mu.Lock()
	r.events.buf[r.events.next%eventRingCap] = e
	r.events.next++
	r.events.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.events.mu.Lock()
	defer r.events.mu.Unlock()
	n := r.events.next
	start := uint64(0)
	if n > eventRingCap {
		start = n - eventRingCap
	}
	out := make([]Event, 0, n-start)
	for i := start; i < n; i++ {
		out = append(out, r.events.buf[i%eventRingCap])
	}
	return out
}

// --- snapshot ---------------------------------------------------------------

// EdgeSnapshot is one observed cross-domain call-graph edge.
type EdgeSnapshot struct {
	Caller string `json:"caller"`
	Callee string `json:"callee"`
	Calls  int64  `json:"calls"`
}

// Snapshot is a point-in-time JSON-serializable view of a registry: the
// /debug/jk payload's metrics section.
type Snapshot struct {
	Node       string                       `json:"node"`
	At         time.Time                    `json:"at"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	CallGraph  []EdgeSnapshot               `json:"callgraph,omitempty"`
	Events     []Event                      `json:"events,omitempty"`
}

// Snapshot captures every instrument. Gauge functions are evaluated
// outside the shard locks, so a gauge that itself takes a lock (table
// sizes under a connection mutex) cannot deadlock the registry.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	snap.Node = r.node
	snap.At = time.Now()
	type pendingFn struct {
		name string
		fn   func() int64
	}
	var fns []pendingFn
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for name, c := range s.counters {
			snap.Counters[name] = c.Value()
		}
		for name, g := range s.gauges {
			snap.Gauges[name] = g.Value()
		}
		for name, fn := range s.gaugeFns {
			fns = append(fns, pendingFn{name, fn})
		}
		for name, h := range s.hists {
			snap.Histograms[name] = h.Snapshot()
		}
		for k, c := range s.edges {
			snap.CallGraph = append(snap.CallGraph, EdgeSnapshot{Caller: k.caller, Callee: k.callee, Calls: c.Value()})
		}
		s.mu.Unlock()
	}
	for _, p := range fns {
		snap.Gauges[p.name] = p.fn()
	}
	sort.Slice(snap.CallGraph, func(i, j int) bool {
		a, b := snap.CallGraph[i], snap.CallGraph[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		return a.Callee < b.Callee
	})
	snap.Events = r.Events()
	return snap
}

// defaultRegistry serves components with no kernel to hang a registry on
// (the worker pool supervisor side); Default() never returns nil.
var defaultRegistry = NewRegistry("process")

// Default returns the process-wide default registry.
func Default() *Registry { return defaultRegistry }
