package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The trace layer. Every LRMI and remote invoke records a Span (caller
// domain → callee domain, method, latency, outcome) into a fixed
// lock-free ring; spans over a configurable threshold are additionally
// kept in a slow-call log. A TraceContext names the active trace: the
// remote wire carries it inside msgInvoke/msgBatchInvoke frames, and the
// serving side rebinds it around the inbound call, so a chain of calls
// hopping supervisor→worker→worker shares one trace id and stitches into
// a single tree.
//
// Propagation is opt-in at the root: Task.BeginTrace starts a trace on a
// task, and only active contexts travel on the wire (one flag byte
// otherwise). Untraced calls still reach the ring — a 1-in-64 sample of
// ordinary traffic gets a local span under a fresh trace id (see
// SampleUntraced) — but never pay the cross-process propagation cost,
// and sampled-out calls skip span recording and latency clock reads
// entirely.

// TraceContext names an active trace: the trace id shared by the whole
// chain and the span id of the current hop (the parent of any span the
// next hop creates). The zero value means "no active trace".
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Active reports whether the context names a live trace.
func (tc TraceContext) Active() bool { return tc.TraceID != 0 }

// id generation: a per-process random base (seeded from pid and boot
// time) mixed with a counter through splitmix64, so ids are unique within
// a process and collide across processes with negligible probability —
// without math/rand on the hot path.
var (
	idCounter atomic.Uint64
	idBase    = uint64(time.Now().UnixNano())*2654435761 ^ uint64(os.Getpid())<<32
)

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewID returns a fresh nonzero trace or span id.
func NewID() uint64 {
	for {
		if id := splitmix64(idBase + idCounter.Add(1)); id != 0 {
			return id
		}
	}
}

// FormatID renders an id the way /debug/jk and the examples print them.
func FormatID(id uint64) string { return strconv.FormatUint(id, 16) }

// ParseID parses FormatID output.
func ParseID(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }

// Span is one recorded call. IDs marshal as hex strings (JSON numbers
// cannot carry 64-bit ids).
type Span struct {
	TraceID uint64        `json:"-"`
	SpanID  uint64        `json:"-"`
	Parent  uint64        `json:"-"`
	Node    string        `json:"node"`   // kernel/process that recorded it
	Kind    string        `json:"kind"`   // "local", "client", "server"
	Caller  string        `json:"caller"` // caller domain
	Callee  string        `json:"callee"` // callee domain (or peer)
	Method  string        `json:"method"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"dur_ns"`
	Err     string        `json:"err,omitempty"`
}

// MarshalJSON renders the span with hex ids alongside the plain fields.
func (s Span) MarshalJSON() ([]byte, error) {
	type plain Span // drop the method set to avoid recursion
	return json.Marshal(struct {
		Trace  string `json:"trace"`
		Span   string `json:"span"`
		Parent string `json:"parent,omitempty"`
		plain
	}{
		Trace:  FormatID(s.TraceID),
		Span:   FormatID(s.SpanID),
		Parent: parentHex(s.Parent),
		plain:  plain(s),
	})
}

func parentHex(p uint64) string {
	if p == 0 {
		return ""
	}
	return FormatID(p)
}

// UnmarshalJSON restores the hex ids, so spans shipped between processes
// (a worker answering a supervisor's trace query) round-trip intact.
func (s *Span) UnmarshalJSON(b []byte) error {
	type plain Span
	aux := struct {
		Trace  string `json:"trace"`
		Span   string `json:"span"`
		Parent string `json:"parent"`
		*plain
	}{plain: (*plain)(s)}
	if err := json.Unmarshal(b, &aux); err != nil {
		return err
	}
	s.TraceID, _ = ParseID(aux.Trace)
	s.SpanID, _ = ParseID(aux.Span)
	if aux.Parent != "" {
		s.Parent, _ = ParseID(aux.Parent)
	}
	return nil
}

// Tracer records completed spans for one kernel: a lock-free recent ring
// plus a slow-call log over a configurable threshold. A nil *Tracer is an
// inert no-op.
type Tracer struct {
	node   string
	slowNs atomic.Int64
	sample atomic.Uint64

	recent spanRing
	slow   spanRing
}

const (
	recentSpanCap = 512
	slowSpanCap   = 128
	// DefaultSlowCall is the initial slow-call threshold.
	DefaultSlowCall = 10 * time.Millisecond
)

// spanRing is a fixed lock-free ring of span pointers: writers claim a
// slot with one atomic add and publish with one atomic store; readers
// snapshot the published pointers.
type spanRing struct {
	pos   atomic.Uint64
	slots []atomic.Pointer[Span]
}

func (r *spanRing) init(n int) { r.slots = make([]atomic.Pointer[Span], n) }

func (r *spanRing) record(s *Span) {
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(s)
}

func (r *spanRing) snapshot() []Span {
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		if s := r.slots[i].Load(); s != nil {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// NewTracer creates a tracer; node names this kernel in recorded spans.
func NewTracer(node string) *Tracer {
	if node == "" {
		node = "jk"
	}
	t := &Tracer{node: node}
	t.recent.init(recentSpanCap)
	t.slow.init(slowSpanCap)
	t.slowNs.Store(int64(DefaultSlowCall))
	return t
}

// Node returns the tracer's node name ("" for nil).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// SlowThreshold returns the slow-call log threshold (0 when disabled).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNs.Load())
}

// SetSlowThreshold sets the slow-call log threshold (0 disables it).
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t != nil {
		t.slowNs.Store(int64(d))
	}
}

// UntracedSampleMask selects the 1-in-64 untraced-call sample: a call is
// profiled when (tick & UntracedSampleMask) == 0, whatever monotonic
// per-call tick the instrumenting layer has at hand (a shared atomic
// here, a per-task tick in core, the request id on the wire).
const UntracedSampleMask = 63

const untracedSampleMask = UntracedSampleMask

// SampleUntraced reports whether an untraced call should be profiled
// (1 in 64): record a span and observe call latency. Traced calls always
// record; for everything else the recent ring and latency histograms stay
// a live sample of ordinary traffic without the hot paths paying the
// span allocation and clock reads per call — the call counters still see
// every call exactly.
func (t *Tracer) SampleUntraced() bool {
	if t == nil {
		return false
	}
	return t.sample.Add(1)&untracedSampleMask == 0
}

// Record stores one completed span, filling in the tracer's node name.
func (t *Tracer) Record(s *Span) {
	if t == nil || s == nil {
		return
	}
	if s.Node == "" {
		s.Node = t.node
	}
	t.recent.record(s)
	if thr := t.slowNs.Load(); thr > 0 && int64(s.Dur) >= thr {
		t.slow.record(s)
	}
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []Span {
	if t == nil {
		return nil
	}
	return t.recent.snapshot()
}

// Slow returns the retained slow-call spans, oldest first.
func (t *Tracer) Slow() []Span {
	if t == nil {
		return nil
	}
	return t.slow.snapshot()
}

// TraceSpans returns the retained spans of one trace, oldest first.
func (t *Tracer) TraceSpans(traceID uint64) []Span {
	if t == nil || traceID == 0 {
		return nil
	}
	all := t.recent.snapshot()
	out := all[:0]
	for _, s := range all {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// --- goroutine-carried contexts ---------------------------------------------

// The serving side of a traced remote call rebinds the inbound context
// onto its executor goroutine, so onward calls made inside the served
// method — which create their own tasks — still join the trace. The
// binding uses a goroutine-id map gated by a global count: processes that
// never serve traced calls (benchmarks with tracing un-propagated) skip
// the goroutine-id lookup entirely, which keeps the null-call path free
// of its cost.

var (
	goCtxCount atomic.Int64
	goCtxMu    sync.Mutex
	goCtx      = map[int64]TraceContext{}
)

// goroutineID parses the current goroutine's id from runtime.Stack — the
// same "thread info lookup" the native LRMI path reproduces; it is paid
// only on traced serving paths.
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	b := buf[:n]
	const prefix = "goroutine "
	if !bytes.HasPrefix(b, []byte(prefix)) {
		return 0
	}
	b = b[len(prefix):]
	sp := bytes.IndexByte(b, ' ')
	if sp < 0 {
		return 0
	}
	id, err := strconv.ParseInt(string(b[:sp]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// BindGoroutine attaches tc to the calling goroutine until the returned
// unbind runs. Bindings nest: unbind restores the previous context.
func BindGoroutine(tc TraceContext) (unbind func()) {
	gid := goroutineID()
	goCtxMu.Lock()
	prev, hadPrev := goCtx[gid]
	goCtx[gid] = tc
	goCtxMu.Unlock()
	if !hadPrev {
		goCtxCount.Add(1)
	}
	return func() {
		goCtxMu.Lock()
		if hadPrev {
			goCtx[gid] = prev
		} else {
			delete(goCtx, gid)
		}
		goCtxMu.Unlock()
		if !hadPrev {
			goCtxCount.Add(-1)
		}
	}
}

// GoroutineContext returns the calling goroutine's bound context. The
// fast path is one atomic load: when no goroutine anywhere holds a
// binding, it returns the zero context without the goroutine-id lookup.
func GoroutineContext() TraceContext {
	if goCtxCount.Load() == 0 {
		return TraceContext{}
	}
	gid := goroutineID()
	goCtxMu.Lock()
	tc := goCtx[gid]
	goCtxMu.Unlock()
	return tc
}
