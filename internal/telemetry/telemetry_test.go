package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(10)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should read 0")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil || r.Edge("a", "b") != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	r.Eventf("ignored")
	r.GaugeFunc("x", func() int64 { return 1 })
	if s := r.Snapshot(); s == nil {
		t.Fatal("nil registry snapshot should be non-nil and empty")
	}
	var tr *Tracer
	tr.Record(&Span{})
	if tr.Recent() != nil || tr.Slow() != nil || tr.TraceSpans(1) != nil {
		t.Fatal("nil tracer should be inert")
	}
}

func TestBucketMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, b, prev)
		}
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if low := bucketLow(b); float64(v) < low {
			t.Fatalf("bucketOf(%d) = %d but bucketLow = %g > value", v, b, low)
		}
		prev = b
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// Uniform 1..1000: p50 ≈ 500, p99 ≈ 990, within the ±~9% bucket width
	// plus interpolation error.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-500.5) > 0.001 {
		t.Fatalf("mean = %g", m)
	}
	if p := h.Quantile(0.50); p < 400 || p > 620 {
		t.Fatalf("p50 = %g, want ≈500", p)
	}
	if p := h.Quantile(0.99); p < 850 || p > 1150 {
		t.Fatalf("p99 = %g, want ≈990", p)
	}
}

// TestHistogramHammer drives one histogram from 64 goroutines under -race:
// the satellite concurrency guarantee that Observe/Quantile/Snapshot are
// safe to run concurrently with no locks.
func TestHistogramHammer(t *testing.T) {
	h := &Histogram{}
	const goroutines = 64
	const perG = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers while writers hammer.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Quantile(0.99)
					h.Snapshot()
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	var sum int64
	for i := 0; i < histBuckets; i++ {
		sum += h.bucket[i].Load()
	}
	if sum != goroutines*perG {
		t.Fatalf("bucket sum = %d, want %d", sum, goroutines*perG)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry("test")
	r.Counter("a").Add(2)
	r.Counter("a").Inc()
	r.Gauge("g").Set(7)
	r.GaugeFunc("fn", func() int64 { return 42 })
	r.Histogram("h").Observe(100)
	r.Edge("alpha", "beta").Add(3)
	r.Edge("alpha", "beta").Inc()
	r.Edge("beta", "gamma").Inc()
	r.Eventf("hello %d", 1)

	s := r.Snapshot()
	if s.Node != "test" {
		t.Fatalf("node = %q", s.Node)
	}
	if s.Counters["a"] != 3 {
		t.Fatalf("counter a = %d", s.Counters["a"])
	}
	if s.Gauges["g"] != 7 || s.Gauges["fn"] != 42 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("histogram h = %+v", s.Histograms["h"])
	}
	want := []EdgeSnapshot{{"alpha", "beta", 4}, {"beta", "gamma", 1}}
	if len(s.CallGraph) != 2 || s.CallGraph[0] != want[0] || s.CallGraph[1] != want[1] {
		t.Fatalf("callgraph = %+v", s.CallGraph)
	}
	if len(s.Events) != 1 || s.Events[0].Msg != "hello 1" {
		t.Fatalf("events = %+v", s.Events)
	}

	r.DropGauge("fn")
	if _, ok := r.Snapshot().Gauges["fn"]; ok {
		t.Fatal("dropped gauge fn still in snapshot")
	}
}

func TestEventRingWraps(t *testing.T) {
	r := NewRegistry("test")
	for i := 0; i < eventRingCap+10; i++ {
		r.Eventf("e%d", i)
	}
	ev := r.Events()
	if len(ev) != eventRingCap {
		t.Fatalf("len = %d, want %d", len(ev), eventRingCap)
	}
	if ev[0].Msg != "e10" || ev[len(ev)-1].Msg != fmt.Sprintf("e%d", eventRingCap+9) {
		t.Fatalf("ring window wrong: first %q last %q", ev[0].Msg, ev[len(ev)-1].Msg)
	}
}

func TestTracerRingAndSlowLog(t *testing.T) {
	tr := NewTracer("node-a")
	tr.SetSlowThreshold(time.Millisecond)
	base := time.Now()
	id := NewID()
	for i := 0; i < 5; i++ {
		d := 100 * time.Microsecond
		if i == 3 {
			d = 5 * time.Millisecond
		}
		tr.Record(&Span{TraceID: id, SpanID: NewID(), Method: fmt.Sprintf("m%d", i), Start: base.Add(time.Duration(i)), Dur: d})
	}
	if got := tr.Recent(); len(got) != 5 || got[0].Method != "m0" || got[0].Node != "node-a" {
		t.Fatalf("recent = %+v", got)
	}
	slow := tr.Slow()
	if len(slow) != 1 || slow[0].Method != "m3" {
		t.Fatalf("slow = %+v", slow)
	}
	if got := tr.TraceSpans(id); len(got) != 5 {
		t.Fatalf("trace spans = %d", len(got))
	}
	if got := tr.TraceSpans(id + 1); len(got) != 0 {
		t.Fatalf("foreign trace spans = %d", len(got))
	}
}

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer("n")
	tr.SetSlowThreshold(0)
	for i := 0; i < recentSpanCap*2; i++ {
		tr.Record(&Span{TraceID: 1, SpanID: uint64(i + 1), Start: time.Unix(0, int64(i))})
	}
	if got := len(tr.Recent()); got != recentSpanCap {
		t.Fatalf("recent len = %d, want %d", got, recentSpanCap)
	}
}

func TestIDsNonZeroAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("zero id")
		}
		if seen[id] {
			t.Fatalf("duplicate id %x", id)
		}
		seen[id] = true
	}
	id := NewID()
	parsed, err := ParseID(FormatID(id))
	if err != nil || parsed != id {
		t.Fatalf("round trip: %x -> %q -> %x (%v)", id, FormatID(id), parsed, err)
	}
}

func TestGoroutineContext(t *testing.T) {
	if tc := GoroutineContext(); tc.Active() {
		t.Fatal("unbound goroutine should have no context")
	}
	outer := TraceContext{TraceID: NewID(), SpanID: NewID()}
	unbind := BindGoroutine(outer)
	if got := GoroutineContext(); got != outer {
		t.Fatalf("bound context = %+v, want %+v", got, outer)
	}
	// Nested binding restores the outer one.
	inner := TraceContext{TraceID: NewID(), SpanID: NewID()}
	unbind2 := BindGoroutine(inner)
	if got := GoroutineContext(); got != inner {
		t.Fatalf("nested context = %+v", got)
	}
	unbind2()
	if got := GoroutineContext(); got != outer {
		t.Fatalf("context after inner unbind = %+v, want %+v", got, outer)
	}
	// Other goroutines see nothing.
	done := make(chan TraceContext)
	go func() { done <- GoroutineContext() }()
	if other := <-done; other.Active() {
		t.Fatalf("other goroutine saw %+v", other)
	}
	unbind()
	if tc := GoroutineContext(); tc.Active() {
		t.Fatal("context should be cleared after unbind")
	}
}

func TestSpanJSONHexIDs(t *testing.T) {
	s := Span{TraceID: 0xdeadbeefcafe0001, SpanID: 0x2, Parent: 0x3, Node: "n", Kind: "client", Method: "Echo"}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["trace"] != "deadbeefcafe0001" || m["span"] != "2" || m["parent"] != "3" {
		t.Fatalf("ids = %v %v %v", m["trace"], m["span"], m["parent"])
	}
}

func TestDebugHandler(t *testing.T) {
	reg := NewRegistry("node-a")
	reg.Counter("c").Inc()
	tr := NewTracer("node-a")
	id := NewID()
	tr.Record(&Span{TraceID: id, SpanID: 1, Method: "A", Start: time.Unix(1, 0)})
	tr.Record(&Span{TraceID: id, SpanID: 2, Parent: 1, Method: "B", Start: time.Unix(2, 0)})
	tr.Record(&Span{TraceID: id + 1, SpanID: 3, Method: "C", Start: time.Unix(3, 0)})

	remote := func(traceID uint64) []Span {
		if traceID != id {
			return nil
		}
		return []Span{{TraceID: id, SpanID: 4, Parent: 2, Node: "node-b", Method: "D", Start: time.Unix(4, 0)}}
	}
	h := Handler(HandlerConfig{Registries: []*Registry{reg}, Tracers: []*Tracer{tr}, RemoteSpans: remote})

	// Snapshot page.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/jk", nil))
	var page DebugPage
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Snapshots) != 1 || page.Snapshots[0].Counters["c"] != 1 {
		t.Fatalf("snapshots = %+v", page.Snapshots)
	}
	if len(page.Recent) != 3 {
		t.Fatalf("recent = %d spans", len(page.Recent))
	}

	// Single-trace page stitches in the remote span.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/jk?trace="+FormatID(id), nil))
	var tp TracePage
	if err := json.Unmarshal(rec.Body.Bytes(), &tp); err != nil {
		t.Fatal(err)
	}
	if tp.Trace != FormatID(id) || len(tp.Spans) != 3 {
		t.Fatalf("trace page = %+v", tp)
	}
	if tp.Spans[2].Node != "node-b" {
		t.Fatalf("stitched span order wrong: %+v", tp.Spans)
	}

	// Bad id is a 400, not a panic.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/jk?trace=zzz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad trace id status = %d", rec.Code)
	}
}
