package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
)

// HandlerConfig wires the /debug/jk endpoint. Registries and Tracers are
// the local sources; RemoteSpans, when set, is consulted on ?trace=
// queries to pull spans recorded by other kernels (the cluster supervisor
// uses it to stitch worker spans into one trace view).
type HandlerConfig struct {
	Registries  []*Registry
	Tracers     []*Tracer
	RemoteSpans func(traceID uint64) []Span
}

// DebugPage is the /debug/jk response body.
type DebugPage struct {
	Snapshots []*Snapshot `json:"snapshots"`
	Recent    []Span      `json:"recent,omitempty"`
	Slow      []Span      `json:"slow,omitempty"`
}

// TracePage is the /debug/jk?trace= response body.
type TracePage struct {
	Trace string `json:"trace"`
	Spans []Span `json:"spans"`
}

// Handler returns the /debug/jk handler: a metrics + recent-trace + slow-
// call snapshot by default, or the stitched spans of a single trace with
// ?trace=<hex id>.
func Handler(cfg HandlerConfig) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")

		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := ParseID(q)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			spans := make([]Span, 0, 16)
			for _, t := range cfg.Tracers {
				spans = append(spans, t.TraceSpans(id)...)
			}
			if cfg.RemoteSpans != nil {
				spans = append(spans, cfg.RemoteSpans(id)...)
			}
			sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
			enc.Encode(TracePage{Trace: FormatID(id), Spans: spans})
			return
		}

		page := DebugPage{}
		for _, reg := range cfg.Registries {
			if reg != nil {
				page.Snapshots = append(page.Snapshots, reg.Snapshot())
			}
		}
		for _, t := range cfg.Tracers {
			page.Recent = append(page.Recent, t.Recent()...)
			page.Slow = append(page.Slow, t.Slow()...)
		}
		sort.Slice(page.Recent, func(i, j int) bool { return page.Recent[i].Start.Before(page.Recent[j].Start) })
		sort.Slice(page.Slow, func(i, j int) bool { return page.Slow[i].Start.Before(page.Slow[j].Start) })
		enc.Encode(page)
	})
}
