// Package load is jkvet's package loader: the bridge from Go source on
// disk to typed ASTs the analysis passes walk. It is deliberately built
// from the standard library alone — `go list -json` for package and
// dependency metadata, go/parser for syntax, go/types for checking, and a
// file-based importer that feeds go/types the compiler's export data for
// every dependency — so the analyzer keeps the repository's
// zero-dependency constraint (no golang.org/x/tools).
//
// The shape mirrors what x/tools' go/packages would do in LoadSyntax
// mode, reduced to what the passes need: full syntax and type
// information for the packages named on the command line, and export
// data (types only, no syntax) for everything they import.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully loaded package: parsed files plus type
// information, sharing the load's FileSet.
type Package struct {
	Path  string // import path, e.g. jkernel/internal/remote
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Error      *listErr
}

type listErr struct {
	Err string
}

// Load lists patterns (relative to dir, "" for the working directory),
// parses every matched package, and type-checks it against export data
// for its dependencies. Patterns follow the go tool: import paths,
// ./relative/dirs, and /... wildcards. Test files are not loaded: the
// invariants jkvet enforces are about the production wire and capability
// surface.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listPkg, len(metas))
	var targets []*listPkg
	for _, m := range metas {
		byPath[m.ImportPath] = m
		if !m.DepOnly {
			targets = append(targets, m)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// The importer resolves every import — stdlib or module-local — from
	// the export file `go list -export` reported, so type-checking one
	// package never re-checks its dependency graph from source.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		m := byPath[path]
		if m == nil || m.Export == "" {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(m.Export)
	})

	var pkgs []*Package
	var errs []string
	for _, t := range targets {
		if t.Error != nil {
			errs = append(errs, fmt.Sprintf("%s: %s", t.ImportPath, t.Error.Err))
			continue
		}
		if len(t.CgoFiles) > 0 {
			errs = append(errs, fmt.Sprintf("%s: cgo packages are not supported", t.ImportPath))
			continue
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		p, err := check(fset, imp, t)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		pkgs = append(pkgs, p)
	}
	if len(errs) > 0 {
		return pkgs, fmt.Errorf("load: %s", strings.Join(errs, "; "))
	}
	return pkgs, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var terrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if len(terrs) < 10 {
				terrs = append(terrs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(t.ImportPath, fset, files, info)
	if len(terrs) > 0 {
		return nil, fmt.Errorf("%s: type errors: %s", t.ImportPath, strings.Join(terrs, "; "))
	}
	return &Package{Path: t.ImportPath, Dir: t.Dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// goList shells out to the go tool for package metadata. -export makes
// the tool materialize (or reuse from the build cache) each dependency's
// compiled export data; -deps pulls the whole graph so the importer can
// resolve transitively; -e defers per-package errors to us.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// cgo off: every package resolves to pure-Go files, so export data
	// exists for the whole graph without a C toolchain.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []*listPkg
	for {
		m := new(listPkg)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}
