package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"jkernel/internal/analysis"
	"jkernel/internal/analysis/load"
)

// testPass flags every function whose name starts with "Flagged" — a
// minimal pass to drive the suppression machinery.
var testPass = &analysis.Pass{
	Name: "testpass",
	Doc:  "flags Flagged* functions",
	Run: func(prog *analysis.Program, pkg *load.Package, report analysis.ReportFunc) {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Flagged") {
					report(fd.Pos(), "function %s is flagged", fd.Name.Name)
				}
			}
		}
	},
}

func TestAllowContract(t *testing.T) {
	pkgs, err := load.Load(".", "./testdata/src/allowcheck")
	if err != nil {
		t.Fatal(err)
	}
	prog := analysis.NewProgram(pkgs)
	findings := analysis.Run(prog, []*analysis.Pass{testPass})

	wantSubstrings := []string{
		"needs a pass name",                        // bare //jk:allow
		`unknown pass "nosuchpass"`,                // wrong pass name
		"jk:allow(testpass) needs a justification", // no reason given
		"function FlaggedUnsuppressed is flagged",  // the pass still fires where unsuppressed
	}
	for _, want := range wantSubstrings {
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding contains %q", want)
		}
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "function Flagged is flagged") {
			t.Errorf("suppressed finding leaked through: %s", f)
		}
	}
	if len(findings) != len(wantSubstrings) {
		t.Errorf("got %d findings, want %d:", len(findings), len(wantSubstrings))
		for _, f := range findings {
			t.Logf("  %s", f)
		}
	}
}
