// Package bufown checks the pooled frame-buffer ownership contract of
// the zero-copy wire hot path: every buffer obtained from an acquire
// function (marked //jk:acquire) is released exactly once on every
// control-flow path — including early-return error paths — and the
// buffer's aliased data (fields marked //jk:data, or methods named
// Data) is neither read after the last reference is dropped nor stored
// anywhere that outlives the buffer without the buffer riding along.
//
// Ownership transfers the analysis understands, and stops tracking at:
//
//   - returning the buffer (the caller now owns the reference);
//   - storing the buffer into a struct field, composite literal, map,
//     slice, or channel (the holder owns it; a composite that also
//     carries the buffer's data is the sanctioned replyFrame pattern);
//   - passing the release method as a value, or capturing the buffer in
//     a function literal that calls release (the argsDone pattern);
//   - //jk:retain calls add a reference, requiring one more release.
//
// Passing the buffer (or its data) as an ordinary call argument is a
// borrow: the callee may use it for the duration of the call only, so
// ownership stays with the caller.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"

	"jkernel/internal/analysis"
	"jkernel/internal/analysis/load"
)

// Pass is the bufown analyzer.
var Pass = &analysis.Pass{
	Name: "bufown",
	Doc:  "pooled buffers are released exactly once on every path; frame data never outlives its buffer",
	Run:  run,
}

func run(prog *analysis.Program, pkg *load.Package, report analysis.ReportFunc) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				// Function literals are analyzed as functions in their
				// own right; the enclosing function's walk treats them
				// as opaque (capture is an ownership transfer).
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				a := &analyzer{prog: prog, pkg: pkg, report: report}
				a.analyze(body)
			}
			return true
		})
	}
}

// bufVal is one tracked buffer's per-path state.
type bufVal struct {
	owned       int  // references this function still owes a release for
	deferredRel int  // releases registered with defer (run at return)
	dead        bool // refcount reached zero by explicit release
	acquireLn   int
}

func (b *bufVal) clone() *bufVal { c := *b; return &c }

// state maps tracked buffer variables to their path state.
type state map[*types.Var]*bufVal

func (s state) clone() state {
	n := make(state, len(s))
	for k, v := range s {
		n[k] = v.clone()
	}
	return n
}

// join merges two reachable paths. A buffer owned on either side stays
// owned (a leak on some path is a leak); dead only survives if dead on
// both.
func join(a, b state) state {
	out := make(state, len(a))
	for v, av := range a {
		if bv, ok := b[v]; ok {
			m := av.clone()
			if bv.owned > m.owned {
				m.owned = bv.owned
			}
			if bv.deferredRel < m.deferredRel {
				m.deferredRel = bv.deferredRel
			}
			m.dead = av.dead && bv.dead
			out[v] = m
		} else if av.owned > 0 {
			out[v] = av.clone() // acquired on one path only: maybe-owned
		}
	}
	for v, bv := range b {
		if _, ok := a[v]; !ok && bv.owned > 0 {
			out[v] = bv.clone()
		}
	}
	return out
}

// loopCtx collects the states flowing out of a breakable construct.
type loopCtx struct {
	isLoop    bool // for/range: continue targets it
	breaks    []state
	continues []state
}

type analyzer struct {
	prog   *analysis.Program
	pkg    *load.Package
	report analysis.ReportFunc

	// aliases maps local data variables (x := buf.b) to their buffer.
	// Flow-insensitive: an alias is an alias for the whole function.
	aliases map[*types.Var]*types.Var
	loops   []*loopCtx
	hasGoto bool
}

func (a *analyzer) analyze(body *ast.BlockStmt) {
	// A goto can stitch arbitrary flow; rather than risk wrong reports,
	// functions using one are out of scope.
	ast.Inspect(body, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
			a.hasGoto = true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
	if a.hasGoto {
		return
	}
	a.aliases = map[*types.Var]*types.Var{}
	st, term := a.walkStmt(body, state{})
	if !term {
		a.checkExit(st, body.Rbrace)
	}
}

// --- directive queries -------------------------------------------------------

func (a *analyzer) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fe := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := a.pkg.Info.Uses[fe].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := a.pkg.Info.Uses[fe.Sel].(*types.Func)
		return fn
	}
	return nil
}

func (a *analyzer) isAcquire(call *ast.CallExpr) bool {
	fn := a.calleeFunc(call)
	return fn != nil && a.prog.HasDirective(fn, "acquire")
}

// bufMethod reports whether call is v.<release|retain>() on a tracked
// variable, returning the variable and which directive the method holds.
func (a *analyzer) bufMethod(st state, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	v := a.trackedIdent(st, sel.X)
	if v == nil {
		return nil, ""
	}
	fn, _ := a.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return nil, ""
	}
	for _, d := range []string{"release", "retain"} {
		if a.prog.HasDirective(fn, d) {
			return v, d
		}
	}
	return nil, ""
}

// trackedIdent resolves e to a tracked buffer variable, or nil.
func (a *analyzer) trackedIdent(st state, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := a.pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = a.pkg.Info.Defs[id].(*types.Var)
	}
	if v == nil {
		return nil
	}
	if _, ok := st[v]; ok {
		return v
	}
	return nil
}

// dataOf resolves e to the buffer whose data it aliases: buf.b (a field
// marked //jk:data), buf.Data() (a method marked //jk:data), or a local
// alias variable recorded earlier. Returns nil when e is not frame data.
func (a *analyzer) dataOf(st state, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := a.pkg.Info.Uses[x].(*types.Var)
		if v == nil {
			return nil
		}
		if buf, ok := a.aliases[v]; ok {
			if _, tracked := st[buf]; tracked {
				return buf
			}
		}
	case *ast.SelectorExpr:
		v := a.trackedIdent(st, x.X)
		if v == nil {
			return nil
		}
		if a.prog.FieldHasDirective(v.Type(), x.Sel.Name, "data") {
			return v
		}
	case *ast.CallExpr:
		sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		v := a.trackedIdent(st, sel.X)
		if v == nil {
			return nil
		}
		if fn, _ := a.pkg.Info.Uses[sel.Sel].(*types.Func); fn != nil && a.prog.HasDirective(fn, "data") {
			return v
		}
	case *ast.SliceExpr:
		return a.dataOf(st, x.X)
	}
	return nil
}

// --- effects -----------------------------------------------------------------

func (a *analyzer) releaseAt(st state, v *types.Var, pos token.Pos) {
	s := st[v]
	if s == nil {
		return
	}
	if s.dead {
		a.report(pos, "buffer acquired at line %d is released again after its last reference was dropped (double release)", s.acquireLn)
		return
	}
	s.owned--
	if s.owned <= 0 {
		s.owned = 0
		s.dead = true
	}
}

func (a *analyzer) retainAt(st state, v *types.Var, pos token.Pos) {
	s := st[v]
	if s == nil {
		return
	}
	if s.dead {
		a.report(pos, "buffer acquired at line %d is retained after release", s.acquireLn)
		s.dead = false
	}
	s.owned++
}

// transfer hands ownership of v to whatever now holds it; the variable
// stops being tracked on this path.
func (a *analyzer) transfer(st state, v *types.Var, pos token.Pos) {
	s := st[v]
	if s == nil {
		return
	}
	if s.dead {
		a.report(pos, "buffer acquired at line %d is used after release", s.acquireLn)
	}
	delete(st, v)
}

func (a *analyzer) useCheck(st state, v *types.Var, pos token.Pos) {
	if s := st[v]; s != nil && s.dead {
		a.report(pos, "buffer acquired at line %d is used after release", s.acquireLn)
		s.dead = false // one report per incident, not per subsequent use
	}
}

// checkExit reports buffers still owned when a path leaves the function.
func (a *analyzer) checkExit(st state, pos token.Pos) {
	for _, s := range st {
		if s.owned > 0 {
			a.report(pos, "pooled buffer acquired at line %d is not released on this path (release exactly once on every path, including early returns)", s.acquireLn)
		}
	}
}

// --- statement walk ----------------------------------------------------------

// walkStmt interprets stmt over st, returning the out-state and whether
// every path through stmt terminates the function.
func (a *analyzer) walkStmt(stmt ast.Stmt, st state) (state, bool) {
	switch s := stmt.(type) {
	case nil:
		return st, false
	case *ast.BlockStmt:
		cur := st
		for _, inner := range s.List {
			var term bool
			cur, term = a.walkStmt(inner, cur)
			if term {
				return cur, true
			}
		}
		return cur, false

	case *ast.AssignStmt:
		return a.walkAssign(s, st), false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						a.scanExpr(val, st, false)
					}
				}
			}
		}
		return st, false

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				for _, arg := range call.Args {
					a.scanExpr(arg, st, false)
				}
				return st, true // unwinding; pool misses on panic are not leaks
			}
			if v, kind := a.bufMethod(st, call); v != nil {
				if kind == "release" {
					a.releaseAt(st, v, call.Pos())
				} else {
					a.retainAt(st, v, call.Pos())
				}
				return st, false
			}
			if a.isAcquire(call) {
				a.report(call.Pos(), "acquired buffer is discarded immediately (assign it and release it, or do not acquire)")
				return st, false
			}
		}
		a.scanExpr(s.X, st, false)
		return st, false

	case *ast.ReturnStmt:
		for _, res := range s.Results {
			a.scanReturnExpr(res, st)
		}
		a.checkExit(st, s.Pos())
		return st, true

	case *ast.DeferStmt:
		a.walkDefer(s, st)
		return st, false

	case *ast.GoStmt:
		a.scanExpr(s.Call, st, false)
		return st, false

	case *ast.SendStmt:
		if v := a.trackedIdent(st, s.Value); v != nil {
			a.transfer(st, v, s.Value.Pos())
		} else {
			a.scanExpr(s.Value, st, true)
		}
		a.scanExpr(s.Chan, st, false)
		return st, false

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = a.walkStmt(s.Init, st)
		}
		a.scanExpr(s.Cond, st, false)
		thenSt, elseSt := st.clone(), st.clone()
		a.refine(s.Cond, thenSt, elseSt)
		thenOut, thenTerm := a.walkStmt(s.Body, thenSt)
		elseOut, elseTerm := elseSt, false
		if s.Else != nil {
			elseOut, elseTerm = a.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return thenOut, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return join(thenOut, elseOut), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = a.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			a.scanExpr(s.Cond, st, false)
		}
		return a.walkLoop(s.Body, s.Post, st, s.Cond == nil), false

	case *ast.RangeStmt:
		a.scanExpr(s.X, st, false)
		return a.walkLoop(s.Body, nil, st, false), false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return a.walkSwitch(stmt, st)

	case *ast.BranchStmt:
		// break/continue end this path within the enclosing construct;
		// goto was excluded up front.
		if len(a.loops) > 0 {
			ctx := a.targetCtx(s.Tok)
			if ctx != nil {
				if s.Tok == token.CONTINUE {
					ctx.continues = append(ctx.continues, st.clone())
				} else {
					ctx.breaks = append(ctx.breaks, st.clone())
				}
			}
		}
		return st, true

	case *ast.LabeledStmt:
		return a.walkStmt(s.Stmt, st)

	case *ast.IncDecStmt:
		a.scanExpr(s.X, st, false)
		return st, false

	case *ast.EmptyStmt:
		return st, false
	}
	// Unmodeled statement kinds: scan embedded expressions for uses.
	ast.Inspect(stmt, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			a.scanExpr(e, st, false)
			return false
		}
		return true
	})
	return st, false
}

// targetCtx finds the construct a break/continue targets: continue wants
// the innermost loop, break the innermost breakable.
func (a *analyzer) targetCtx(tok token.Token) *loopCtx {
	for i := len(a.loops) - 1; i >= 0; i-- {
		if tok == token.BREAK || a.loops[i].isLoop {
			return a.loops[i]
		}
	}
	return nil
}

// walkLoop interprets one loop body. The body is walked once from the
// entry state (the canonical pattern acquires and releases within an
// iteration); buffers acquired inside the body must not be owned at the
// back edge, and the loop's out-state joins the zero-iteration path with
// every break.
func (a *analyzer) walkLoop(body *ast.BlockStmt, post ast.Stmt, st state, infinite bool) state {
	ctx := &loopCtx{isLoop: true}
	a.loops = append(a.loops, ctx)
	bodyOut, bodyTerm := a.walkStmt(body, st.clone())
	a.loops = a.loops[:len(a.loops)-1]

	backEdges := ctx.continues
	if !bodyTerm {
		backEdges = append(backEdges, bodyOut)
	}
	for _, be := range backEdges {
		if post != nil {
			be, _ = a.walkStmt(post, be)
		}
		for v, s := range be {
			if s.owned > 0 && v.Pos() > body.Pos() && v.Pos() < body.End() {
				a.report(v.Pos(), "buffer acquired each loop iteration is not released by the end of the iteration on some path")
			}
		}
	}

	var out state
	if !infinite {
		out = st // zero-iteration path
	}
	for _, bs := range ctx.breaks {
		// Iteration-local buffers do not survive the loop.
		filtered := state{}
		for v, s := range bs {
			if v.Pos() > body.Pos() && v.Pos() < body.End() {
				continue
			}
			filtered[v] = s
		}
		if out == nil {
			out = filtered
		} else {
			out = join(out, filtered)
		}
	}
	if out == nil {
		// An infinite loop with no break: code after it is unreachable,
		// but returning the entry state keeps the walk total.
		out = st
	}
	return out
}

// walkSwitch interprets switch/type-switch/select uniformly: every case
// body starts from the entry state and the out-state joins the
// non-terminated ones (plus the entry state if no default exists).
func (a *analyzer) walkSwitch(stmt ast.Stmt, st state) (state, bool) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = a.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			a.scanExpr(s.Tag, st, false)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = a.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	ctx := &loopCtx{isLoop: false}
	a.loops = append(a.loops, ctx)
	var outs []state
	for _, cl := range clauses {
		var body []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				a.scanExpr(e, st, false)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			body = c.Body
			if c.Comm != nil {
				var term bool
				cst := st.clone()
				cst, term = a.walkStmt(c.Comm, cst)
				if !term {
					cur, term := a.walkBody(body, cst)
					if !term {
						outs = append(outs, cur)
					}
				}
				continue
			}
		}
		cur, term := a.walkBody(body, st.clone())
		if !term {
			outs = append(outs, cur)
		}
	}
	a.loops = a.loops[:len(a.loops)-1]
	outs = append(outs, ctx.breaks...)
	if !hasDefault {
		outs = append(outs, st)
	}
	if len(outs) == 0 {
		return st, true // every case terminates and a default exists
	}
	out := outs[0]
	for _, o := range outs[1:] {
		out = join(out, o)
	}
	return out, false
}

func (a *analyzer) walkBody(body []ast.Stmt, st state) (state, bool) {
	cur := st
	for _, inner := range body {
		var term bool
		cur, term = a.walkStmt(inner, cur)
		if term {
			return cur, true
		}
	}
	return cur, false
}

// walkDefer models `defer v.release()` (and closures that release): the
// obligation is met at every later exit, but the data stays live until
// the function actually returns, so later reads are fine while returning
// the data to a caller is not.
func (a *analyzer) walkDefer(s *ast.DeferStmt, st state) {
	if v, kind := a.bufMethod(st, s.Call); v != nil && kind == "release" {
		if sv := st[v]; sv != nil {
			sv.owned--
			if sv.owned < 0 {
				sv.owned = 0
			}
			sv.deferredRel++
		}
		return
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		a.scanFuncLit(lit, st)
		return
	}
	a.scanExpr(s.Call, st, false)
}

// --- assignment --------------------------------------------------------------

func (a *analyzer) walkAssign(s *ast.AssignStmt, st state) state {
	paired := len(s.Lhs) == len(s.Rhs)
	for i, rhs := range s.Rhs {
		var lhs ast.Expr
		if paired {
			lhs = s.Lhs[i]
		}

		// Acquire: fb := getFrame(n).
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && a.isAcquire(call) {
			for _, arg := range call.Args {
				a.scanExpr(arg, st, false)
			}
			if lhs == nil {
				a.report(call.Pos(), "acquired buffer is lost in a multi-value assignment")
				continue
			}
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				a.report(call.Pos(), "acquired buffer is discarded (assign it to a variable so it can be released)")
				continue
			}
			v, _ := a.pkg.Info.Defs[id].(*types.Var)
			if v == nil {
				v, _ = a.pkg.Info.Uses[id].(*types.Var)
			}
			if v == nil {
				continue
			}
			if old := st[v]; old != nil && old.owned > 0 {
				a.report(call.Pos(), "buffer acquired at line %d is still owned when this acquire overwrites it (missed release)", old.acquireLn)
			}
			st[v] = &bufVal{owned: 1, acquireLn: a.pkg.Fset.Position(call.Pos()).Line}
			continue
		}

		// Data alias: argBytes := fb.b (or a composite assigned to a
		// local, like w := wbuf{b: fb.b}, which carries the data on).
		if lhs != nil {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				lv, _ := a.pkg.Info.Defs[id].(*types.Var)
				if lv == nil {
					lv, _ = a.pkg.Info.Uses[id].(*types.Var)
				}
				if lv != nil {
					if buf := a.dataOf(st, rhs); buf != nil {
						a.useCheck(st, buf, rhs.Pos())
						a.aliases[lv] = buf
						continue
					}
					if lit := compositeOf(rhs); lit != nil {
						if buf := a.compositeDataOnly(lit, st); buf != nil {
							a.useCheck(st, buf, rhs.Pos())
							a.aliases[lv] = buf
							a.scanExpr(rhs, st, false)
							continue
						}
					}
					if v := a.trackedIdent(st, rhs); v != nil {
						// A second name for the buffer: ownership follows
						// the new name.
						a.transfer(st, v, rhs.Pos())
						st[lv] = &bufVal{owned: 1, acquireLn: a.pkg.Fset.Position(rhs.Pos()).Line}
						continue
					}
				}
			}
		}

		// Storing into a field, index, or dereference: the destination
		// outlives this frame of reference.
		if lhs != nil && !isIdent(lhs) {
			if v := a.trackedIdent(st, rhs); v != nil {
				if !a.ownBufferWrite(st, lhs) {
					a.transfer(st, v, rhs.Pos())
				}
				continue
			}
			if buf := a.dataOf(st, rhs); buf != nil && !a.ownBufferWrite(st, lhs) {
				a.report(rhs.Pos(), "frame data is stored into %s without its buffer (retain the buffer alongside it, or copy the bytes)", exprString(lhs))
				continue
			}
		}

		a.scanExpr(rhs, st, true)
	}
	// Reads embedded in left-hand sides (index expressions etc).
	for _, lhs := range s.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			a.scanExpr(ix.Index, st, false)
			a.scanExpr(ix.X, st, false)
		}
	}
	return st
}

// ownBufferWrite reports whether lhs writes the buffer's own data field
// (fb.b = ... — growing or re-slicing your own buffer is not an escape).
func (a *analyzer) ownBufferWrite(st state, lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v := a.trackedIdent(st, sel.X)
	return v != nil && a.prog.FieldHasDirective(v.Type(), sel.Sel.Name, "data")
}

func isIdent(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

// --- expression scan ---------------------------------------------------------

// scanExpr walks an expression for buffer uses. escaping controls how a
// composite literal carrying the buffer's data (without the buffer) is
// treated: in an escaping position it is a violation; assigned to a
// local it just propagates the alias (handled by walkAssign).
func (a *analyzer) scanExpr(e ast.Expr, st state, escaping bool) {
	if e == nil {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v := a.trackedIdent(st, x); v != nil {
			a.useCheck(st, v, x.Pos())
		}

	case *ast.SelectorExpr:
		// A release/retain method value passed around transfers one
		// reference (c.exec.submit(... fb.release ...)).
		if v := a.trackedIdent(st, x.X); v != nil {
			if fn, _ := a.pkg.Info.Uses[x.Sel].(*types.Func); fn != nil && a.prog.HasDirective(fn, "release") {
				a.releaseAt(st, v, x.Pos())
				// The release happens later, when the holder invokes it:
				// the data stays valid until then.
				if sv := st[v]; sv != nil {
					sv.dead = false
				}
				return
			}
			a.useCheck(st, v, x.Pos())
			return
		}
		a.scanExpr(x.X, st, false)

	case *ast.CallExpr:
		if v, kind := a.bufMethod(st, x); v != nil {
			if kind == "release" {
				a.releaseAt(st, v, x.Pos())
			} else {
				a.retainAt(st, v, x.Pos())
			}
			return
		}
		a.scanExpr(x.Fun, st, false)
		for _, arg := range x.Args {
			if v := a.trackedIdent(st, arg); v != nil {
				a.useCheck(st, v, arg.Pos()) // borrow for the call
				continue
			}
			if buf := a.dataOf(st, arg); buf != nil {
				a.useCheck(st, buf, arg.Pos()) // borrowed data
				continue
			}
			a.scanExpr(arg, st, true)
		}

	case *ast.CompositeLit:
		a.compositeEffect(x, st, escaping)

	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if v := a.trackedIdent(st, x.X); v != nil {
				a.transfer(st, v, x.Pos()) // address taken: out of our hands
				return
			}
		}
		a.scanExpr(x.X, st, escaping)

	case *ast.FuncLit:
		a.scanFuncLit(x, st)

	case *ast.BinaryExpr:
		a.scanExpr(x.X, st, false)
		a.scanExpr(x.Y, st, false)

	case *ast.IndexExpr:
		a.scanExpr(x.X, st, false)
		a.scanExpr(x.Index, st, false)

	case *ast.SliceExpr:
		if buf := a.dataOf(st, x); buf != nil {
			a.useCheck(st, buf, x.Pos())
			return
		}
		a.scanExpr(x.X, st, false)

	case *ast.StarExpr:
		a.scanExpr(x.X, st, escaping)

	case *ast.TypeAssertExpr:
		a.scanExpr(x.X, st, escaping)

	case *ast.KeyValueExpr:
		a.scanExpr(x.Value, st, escaping)
	}
}

// scanReturnExpr handles one returned expression: returning the buffer
// is the canonical ownership transfer to the caller; returning its data
// while a deferred release is pending hands the caller bytes the pool is
// about to reclaim.
func (a *analyzer) scanReturnExpr(res ast.Expr, st state) {
	if v := a.trackedIdent(st, res); v != nil {
		a.transfer(st, v, res.Pos())
		return
	}
	if buf := a.dataOf(st, res); buf != nil {
		s := st[buf]
		if s != nil && s.deferredRel > 0 {
			a.report(res.Pos(), "returned frame data is reclaimed by the deferred release of its buffer (acquired at line %d)", s.acquireLn)
			return
		}
		a.useCheck(st, buf, res.Pos())
		if s != nil && s.owned > 0 {
			a.report(res.Pos(), "frame data is returned while this function still owns the buffer (acquired at line %d): transfer the buffer or copy the bytes", s.acquireLn)
		}
		return
	}
	if lit := compositeOf(res); lit != nil {
		a.compositeEffect(lit, st, true)
		return
	}
	a.scanExpr(res, st, true)
}

// compositeOf unwraps &T{...} and (T{...}) down to the literal.
func compositeOf(e ast.Expr) *ast.CompositeLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	lit, _ := e.(*ast.CompositeLit)
	return lit
}

// compositeDataOnly reports the buffer whose data a composite literal
// carries when the literal holds data (and no tracked buffer) of exactly
// one buffer — the local scratch-builder pattern `w := wbuf{b: fb.b}`.
func (a *analyzer) compositeDataOnly(lit *ast.CompositeLit, st state) *types.Var {
	var buf *types.Var
	for _, el := range lit.Elts {
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if a.trackedIdent(st, val) != nil {
			return nil // carries the buffer itself: not a bare data alias
		}
		if b := a.dataOf(st, val); b != nil {
			if buf != nil && buf != b {
				return nil
			}
			buf = b
		}
	}
	return buf
}

// compositeEffect applies a composite literal's ownership semantics:
// every tracked buffer stored in it transfers; data stored without its
// buffer in an escaping literal is flagged.
func (a *analyzer) compositeEffect(lit *ast.CompositeLit, st state, escaping bool) {
	buffers := map[*types.Var]bool{}
	type dataUse struct {
		buf *types.Var
		pos token.Pos
	}
	var data []dataUse
	for _, el := range lit.Elts {
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if v := a.trackedIdent(st, val); v != nil {
			buffers[v] = true
			continue
		}
		if buf := a.dataOf(st, val); buf != nil {
			data = append(data, dataUse{buf, val.Pos()})
			continue
		}
		a.scanExpr(val, st, false)
	}
	for _, d := range data {
		a.useCheck(st, d.buf, d.pos)
		if escaping && !buffers[d.buf] {
			if s := st[d.buf]; s != nil {
				a.report(d.pos, "frame data escapes in a composite literal without its buffer (acquired at line %d): store the buffer alongside it or copy the bytes", s.acquireLn)
			}
		}
	}
	for v := range buffers {
		for _, el := range lit.Elts {
			val := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if a.trackedIdent(st, val) == v {
				a.transfer(st, v, val.Pos())
				break
			}
		}
	}
}

// scanFuncLit resolves a closure capturing tracked buffers: a closure
// that calls release owns the reference it will drop (the argsDone
// pattern); any other capture is an opaque transfer.
func (a *analyzer) scanFuncLit(lit *ast.FuncLit, st state) {
	captured := map[*types.Var]bool{}
	releases := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := a.pkg.Info.Uses[id].(*types.Var)
		if v == nil {
			return true
		}
		if _, tracked := st[v]; tracked {
			captured[v] = true
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, kind := a.bufMethod(st, call); v != nil && kind == "release" {
			releases[v] = true
		}
		return true
	})
	for v := range captured {
		if releases[v] {
			a.releaseAt(st, v, lit.Pos())
			if sv := st[v]; sv != nil {
				sv.dead = false // runs later; data stays valid meanwhile
			}
		} else {
			a.transfer(st, v, lit.Pos())
		}
	}
}

// --- condition refinement ----------------------------------------------------

// refine narrows branch states on nil checks: in the branch where a
// maybe-acquired buffer is known nil, there is nothing to release.
func (a *analyzer) refine(cond ast.Expr, thenSt, elseSt state) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			a.refine(c.X, thenSt, state{})
			a.refine(c.Y, thenSt, state{})
		case token.LOR:
			a.refine(c.X, state{}, elseSt)
			a.refine(c.Y, state{}, elseSt)
		case token.EQL, token.NEQ:
			v, isNil := a.nilCompare(thenSt, elseSt, c)
			if v == nil {
				return
			}
			if (c.Op == token.EQL) == isNil {
				delete(thenSt, v) // v == nil holds: no buffer in this branch
			} else {
				delete(elseSt, v)
			}
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			a.refine(c.X, elseSt, thenSt)
		}
	}
}

// nilCompare matches `v == nil` / `nil == v` for a buffer tracked in
// either branch state.
func (a *analyzer) nilCompare(thenSt, elseSt state, c *ast.BinaryExpr) (*types.Var, bool) {
	operand := func(e ast.Expr) *types.Var {
		if v := a.trackedIdent(thenSt, e); v != nil {
			return v
		}
		return a.trackedIdent(elseSt, e)
	}
	if isNilIdent(c.Y) {
		return operand(c.X), true
	}
	if isNilIdent(c.X) {
		return operand(c.Y), true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "the destination"
}
