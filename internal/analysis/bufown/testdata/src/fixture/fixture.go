// Package fixture exercises the bufown pass: a miniature of
// internal/remote's pooled frameBuf contract, with the same directives
// (//jk:acquire, //jk:release, //jk:retain, //jk:data) driving the
// analysis. Lines marked `// want "..."` must be reported; everything
// else must stay silent.
package fixture

// buf mirrors remote.frameBuf.
type buf struct {
	b    []byte //jk:data
	refs int
}

// acquire mirrors remote.getFrame.
//
//jk:acquire
func acquire(n int) *buf { return &buf{b: make([]byte, 0, n), refs: 1} }

// release mirrors frameBuf.release.
//
//jk:release
func (b *buf) release() { b.refs-- }

// retain mirrors frameBuf.retain.
//
//jk:retain
func (b *buf) retain() { b.refs++ }

func send(p []byte) error { return nil }

func submit(f func()) {}

// frame mirrors replyFrame: data plus the buffer that owns it.
type frame struct {
	body []byte
	bb   *buf
}

type holder struct {
	data []byte
}

// --- clean shapes: no findings ----------------------------------------------

func clean() error {
	fb := acquire(64)
	err := send(fb.b)
	fb.release()
	return err
}

func transferByReturn() *buf {
	fb := acquire(64)
	return fb
}

func packWithBuffer() frame {
	fb := acquire(64)
	return frame{body: fb.b, bb: fb}
}

func conditionalNil(use bool) {
	var fb *buf
	if use {
		fb = acquire(64)
	}
	if fb != nil {
		fb.release()
	}
}

func closureRelease() {
	fb := acquire(64)
	submit(func() { fb.release() })
}

func methodValueRelease() {
	fb := acquire(64)
	submit(fb.release)
}

func loopClean(n int) {
	for i := 0; i < n; i++ {
		fb := acquire(64)
		_ = send(fb.b)
		fb.release()
	}
}

func localScratch() error {
	fb := acquire(64)
	f := frame{body: fb.b} // local alias, not an escape
	err := send(f.body)
	fb.release()
	return err
}

// --- violations --------------------------------------------------------------

func leakOnError() error {
	fb := acquire(64)
	if err := send(fb.b); err != nil {
		return err // want "not released on this path"
	}
	fb.release()
	return nil
}

func doubleRelease() {
	fb := acquire(64)
	fb.release()
	fb.release() // want "double release"
}

func useAfterRelease() []byte {
	fb := acquire(64)
	fb.release()
	return fb.b // want "used after release"
}

func discard() {
	acquire(64) // want "discarded"
}

func reacquire() {
	fb := acquire(64)
	fb = acquire(64) // want "still owned when this acquire overwrites it"
	fb.release()
}

func storeDataWithoutBuffer(h *holder) {
	fb := acquire(64)
	h.data = fb.b // want "without its buffer"
	fb.release()
}

func packWithoutBuffer() frame {
	fb := acquire(64)
	defer fb.release()
	return frame{body: fb.b} // want "composite literal without its buffer"
}

func returnDeferredData() []byte {
	fb := acquire(64)
	defer fb.release()
	return fb.b // want "reclaimed by the deferred release"
}

func retainLeak() {
	fb := acquire(64)
	fb.retain()
	fb.release()
} // want "not released on this path"

func loopLeak(n int) {
	for i := 0; i < n; i++ {
		fb := acquire(64) // want "not released by the end of the iteration"
		_ = send(fb.b)
	}
}

// --- suppression -------------------------------------------------------------

func allowedLeak() {
	fb := acquire(64)
	_ = send(fb.b)
	//jk:allow(bufown) fixture: demonstrates the suppression contract — this leak is the point
}
