package bufown_test

import (
	"testing"

	"jkernel/internal/analysis/atest"
	"jkernel/internal/analysis/bufown"
)

func TestFixture(t *testing.T) {
	atest.Run(t, "fixture", bufown.Pass)
}
