// Package allowcheck exercises the //jk:allow contract: a suppression
// must name a known pass and carry a justification, or it becomes a
// finding itself; a well-formed one silences exactly the findings on its
// line and the line below.
package allowcheck

func missingPassName() {
	//jk:allow
}

func unknownPass() {
	//jk:allow(nosuchpass) a justification that cannot save an unknown pass
}

func missingJustification() {
	//jk:allow(testpass)
}

//jk:allow(testpass) the test pass flags this function; the mark proves suppression works
func Flagged() {}

func FlaggedUnsuppressed() {}
