package faultpath_test

import (
	"testing"

	"jkernel/internal/analysis/atest"
	"jkernel/internal/analysis/faultpath"
)

func TestFixture(t *testing.T) {
	atest.Run(t, "fixture", faultpath.Pass)
}

func TestUnmarkedPackageOutOfScope(t *testing.T) {
	atest.Run(t, "unmarked", faultpath.Pass)
}
