// Package unmarked has no //jk:faultpath mark: even a handle* function
// discarding errors stays out of the pass's scope, so this package must
// produce no findings.
package unmarked

import "errors"

func send() error { return errors.New("x") }

func handleOutOfScope() {
	send()
	_ = send()
}
