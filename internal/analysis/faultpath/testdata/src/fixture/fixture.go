// Package fixture exercises the faultpath pass on a miniature frame
// handler surface: in-scope functions (handle*/serve*/reply*, in a
// package marked //jk:faultpath) must not lose errors.
//
//jk:faultpath
package fixture

import "errors"

type conn struct{ nc closer }

type closer interface{ Close() error }

func (c *conn) send(b []byte) error { return errors.New("broken pipe") }

func (c *conn) fault(err error) {}

// lastErr exists so the never-read case compiles: Go rejects an unread
// local, but not an unread package variable.
var lastErr error

// --- violations --------------------------------------------------------------

func (c *conn) handleDiscard(b []byte) {
	c.send(b) // want "returns an error that is discarded"
}

func (c *conn) replyBlank(b []byte) {
	_ = c.send(b) // want "assigned to _"
}

func (c *conn) serveBlankInTuple(m map[string]int) {
	_ = c.send(nil) // want "assigned to _"
}

func (c *conn) handleParked(b []byte) {
	lastErr = c.send(b) // want "stored in lastErr but never checked"
}

// --- clean shapes: no findings ----------------------------------------------

func (c *conn) handleChecked(b []byte) {
	if err := c.send(b); err != nil {
		c.fault(err)
	}
}

func (c *conn) handleReturned(b []byte) error {
	return c.send(b)
}

func (c *conn) handleDeferredClose() {
	defer c.nc.Close() // conventional teardown discard: exempt
}

func (c *conn) handleLaterCheck(b []byte) {
	err := c.send(b)
	if err != nil {
		c.fault(err)
	}
}

// notAHandler is out of scope: the rule binds the dispatch surface, not
// every function in the package.
func (c *conn) notAHandler(b []byte) {
	c.send(b)
}

// --- suppression -------------------------------------------------------------

func (c *conn) handleAllowed(b []byte) {
	//jk:allow(faultpath) fixture: demonstrates the suppression contract — this discard is the point
	c.send(b)
}
