// Package faultpath checks that frame handlers do not discard errors.
// PR 8 fixed, by hand, a family of bugs where a reply's write error
// vanished (`_ = c.send(w.b)`) and the connection kept running on a
// broken socket instead of faulting its imported capabilities; this
// pass makes that fix permanent.
//
// Scope: packages whose package clause carries //jk:faultpath (the
// remote wire layer), functions and methods named handle*, serve*, or
// reply* — the inbound frame dispatch surface. Within scope, any call
// returning an error must not lose it: not evaluated as a bare
// statement, not assigned to the blank identifier, not parked in a
// variable that is never read. Returning the error, branching on it, or
// passing it on (to the connection-fault path) all count as handling —
// the pass checks that the error escapes the handler's hands, the
// connection-fault routing itself is enforced by the handler signatures.
//
// Deferred calls are exempt (the `defer nc.Close()` idiom), as are
// calls carrying //jk:allow(faultpath) with a justification.
package faultpath

import (
	"go/ast"
	"go/types"
	"strings"

	"jkernel/internal/analysis"
	"jkernel/internal/analysis/load"
)

// Pass is the faultpath analyzer.
var Pass = &analysis.Pass{
	Name: "faultpath",
	Doc:  "frame handlers must not discard errors; failures must reach the connection-fault path",
	Run:  run,
}

func run(prog *analysis.Program, pkg *load.Package, report analysis.ReportFunc) {
	if !prog.PackageMarked(pkg.Path, "faultpath") {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !inScope(fd.Name.Name) {
				continue
			}
			checkHandler(prog, pkg, fd, report)
		}
	}
}

// inScope reports whether name belongs to the inbound dispatch surface.
func inScope(name string) bool {
	for _, prefix := range []string{"handle", "serve", "reply"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func checkHandler(prog *analysis.Program, pkg *load.Package, fd *ast.FuncDecl, report analysis.ReportFunc) {
	errType := types.Universe.Lookup("error").Type()

	// First sweep: which variables are ever read? An error assigned to a
	// variable that no expression consumes is as lost as a blank assign.
	reads := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := pkg.Info.Uses[id].(*types.Var); ok && !isAssignTarget(fd.Body, id) {
			reads[v] = true
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			return false // defer nc.Close() et al: conventional discard
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := callErrResult(pkg, call, errType); ok {
				report(call.Pos(), "%s returns an error that is discarded in frame handler %s: route it to the connection-fault path", name, fd.Name.Name)
			}
			return true
		case *ast.AssignStmt:
			checkAssign(pkg, s, fd.Name.Name, errType, reads, report)
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkAssign flags error results dropped through an assignment: either
// an explicit blank in the error slot or a variable nothing ever reads.
func checkAssign(pkg *load.Package, s *ast.AssignStmt, handler string, errType types.Type, reads map[*types.Var]bool, report analysis.ReportFunc) {
	// Only call results matter: `_ = someVar` is a deliberate no-op.
	if len(s.Rhs) == 1 && len(s.Lhs) >= 1 {
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		name, hasErr := callErrResult(pkg, call, errType)
		if !hasErr {
			return
		}
		// Map each lhs slot to its result type position.
		tv := pkg.Info.Types[call]
		var resultAt func(i int) types.Type
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			resultAt = func(i int) types.Type {
				if i < tuple.Len() {
					return tuple.At(i).Type()
				}
				return nil
			}
		} else {
			resultAt = func(i int) types.Type { return tv.Type }
		}
		for i, lhs := range s.Lhs {
			rt := resultAt(i)
			if rt == nil || !types.Identical(rt, errType) {
				continue
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if id.Name == "_" {
				report(id.Pos(), "%s returns an error that is assigned to _ in frame handler %s: route it to the connection-fault path", name, handler)
				continue
			}
			v, _ := pkg.Info.Defs[id].(*types.Var)
			if v == nil {
				v, _ = pkg.Info.Uses[id].(*types.Var)
			}
			if v != nil && !reads[v] {
				report(id.Pos(), "error from %s is stored in %s but never checked in frame handler %s", name, id.Name, handler)
			}
		}
	}
}

// callErrResult reports whether call returns an error (alone or as part
// of a tuple), along with a printable callee name.
func callErrResult(pkg *load.Package, call *ast.CallExpr, errType types.Type) (string, bool) {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return "", false
	}
	has := false
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				has = true
			}
		}
	default:
		has = types.Identical(t, errType)
	}
	if !has {
		return "", false
	}
	return calleeName(call), true
}

func calleeName(call *ast.CallExpr) string {
	switch fe := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fe.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fe.X).(*ast.Ident); ok {
			return id.Name + "." + fe.Sel.Name
		}
		return fe.Sel.Name
	}
	return "call"
}

// isAssignTarget reports whether this identifier occurrence is a plain
// assignment destination (x = ...), which does not count as a read.
// Compound destinations like x[i] do read x and are not filtered.
func isAssignTarget(body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if lhs == id {
				found = true
			}
		}
		return true
	})
	return found
}
