// Package atest is the self-test harness for jkvet passes: it loads a
// fixture package from the calling pass's testdata tree, runs one pass
// over it, and matches the findings against `// want "regexp"`
// expectation comments in the fixture source.
//
// Fixture packages live under <pass>/testdata/src/<name>. The go tool
// ignores testdata directories when expanding ./... — so deliberately
// broken fixtures never trip the repo's own build, vet, or jkvet runs —
// but an explicit relative pattern still loads them, which is exactly
// how this harness reaches in.
//
// A want comment asserts a finding on its own line; several quoted
// regexps on one comment assert several findings. The match is strict
// both ways: an unmatched want fails the test (the pass went blind),
// and an unexpected finding fails the test (the pass misfired).
package atest

import (
	"regexp"
	"sort"
	"strings"
	"testing"

	"jkernel/internal/analysis"
	"jkernel/internal/analysis/load"
)

// wantRe pulls the quoted regexps off a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads ./testdata/src/<fixture> relative to the test's working
// directory (go test runs in the pass's package directory), executes the
// pass, and enforces the want expectations.
func Run(t *testing.T, fixture string, pass *analysis.Pass) {
	t.Helper()
	pkgs, err := load.Load(".", "./testdata/src/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", fixture)
	}
	prog := analysis.NewProgram(pkgs)
	findings := analysis.Run(prog, []*analysis.Pass{pass})

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			filename := pkg.Fset.Position(file.Pos()).Filename
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					// Only comments of the exact form `// want "..."` are
					// expectations; prose mentioning the word is not.
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(rest, "want ") {
						continue
					}
					for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", filename, pkg.Fset.Position(c.Pos()).Line, m[1], err)
						}
						wants = append(wants, &expectation{
							file:    filename,
							line:    pkg.Fset.Position(c.Pos()).Line,
							pattern: re,
						})
					}
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	var unexpected []string
	for _, f := range findings {
		if !claim(wants, f) {
			unexpected = append(unexpected, f.String())
		}
	}
	for _, u := range unexpected {
		t.Errorf("unexpected finding: %s", u)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern)
		}
	}
	if t.Failed() {
		var all []string
		for _, f := range findings {
			all = append(all, "  "+f.String())
		}
		t.Logf("all findings:\n%s", strings.Join(all, "\n"))
	}
}

// claim marks the first unmatched expectation this finding satisfies.
func claim(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.pattern.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// NoFindings loads the given patterns from dir and asserts the passes
// report nothing — the meta-test that keeps the repository itself
// violation-free via go test, not just CI.
func NoFindings(t *testing.T, dir string, passes []*analysis.Pass, patterns ...string) {
	t.Helper()
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	prog := analysis.NewProgram(pkgs)
	findings := analysis.Run(prog, passes)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("%d finding(s); the tree must be jkvet-clean (fix or //jk:allow with justification)", len(findings))
	}
}
