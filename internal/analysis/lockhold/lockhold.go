// Package lockhold checks that no sync.Mutex or sync.RWMutex is held
// across a blocking wire or LRMI operation — the standing deadlock
// hazard of the remote layer: a lock held across Invoke/Flush/WriteTo
// can deadlock against the peer's reply needing the same lock, and at
// minimum serializes the connection behind network latency.
//
// Blocking operations are: functions and methods marked //jk:blocking
// (the core Invoke/InvokeAsync/Flush family carries the mark), a small
// built-in list of stdlib operations that park the goroutine on I/O or
// another goroutine (net dials, net.Buffers.WriteTo, time.Sleep,
// WaitGroup.Wait), channel sends and receives, and select statements
// without a default. sync.Cond.Wait is deliberately absent: it releases
// the mutex while parked.
//
// A deferred Unlock keeps the lock held for the remainder of the
// function — that is precisely the pattern that turns a later blocking
// call into a held-across-blocking violation.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"jkernel/internal/analysis"
	"jkernel/internal/analysis/load"
)

// Pass is the lockhold analyzer.
var Pass = &analysis.Pass{
	Name: "lockhold",
	Doc:  "no mutex held across blocking wire/LRMI operations",
	Run:  run,
}

// stdlibBlocking is the built-in blocking set, keyed by analysis.SymbolKey.
var stdlibBlocking = map[string]bool{
	"net.Dial":                 true,
	"net.DialTimeout":          true,
	"(net.Dialer).Dial":        true,
	"(net.Dialer).DialContext": true,
	"(net.Buffers).WriteTo":    true,
	"time.Sleep":               true,
	"(sync.WaitGroup).Wait":    true,
	"(net.TCPConn).ReadFrom":   true,
	"(io.PipeReader).Read":     true,
	"(io.PipeWriter).Write":    true,
	"(os/exec.Cmd).Run":        true,
	"(os/exec.Cmd).Wait":       true,
	"(net/http.Client).Do":     true,
	"(net/http.Client).Get":    true,
	"(net/http.Client).Post":   true,
}

func run(prog *analysis.Program, pkg *load.Package, report analysis.ReportFunc) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				// Closures run on their own goroutine or schedule; each
				// body is checked as its own function.
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &walker{prog: prog, pkg: pkg, report: report}
				w.walkStmt(body, held{})
			}
			return true
		})
	}
}

// lockInfo records where a held lock was taken.
type lockInfo struct {
	line int
}

// held maps lock keys (the receiver expression, e.g. "c.mu") to where
// they were locked on this path.
type held map[string]lockInfo

func (h held) clone() held {
	n := make(held, len(h))
	for k, v := range h {
		n[k] = v
	}
	return n
}

func joinHeld(a, b held) held {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v // held on either path: maybe-held, still a hazard
		}
	}
	return out
}

type walker struct {
	prog   *analysis.Program
	pkg    *load.Package
	report analysis.ReportFunc

	// muteChan suppresses channel-op reports while walking a select comm
	// clause: the comm op never blocks by itself there — the select does,
	// and a select without default is reported as one unit.
	muteChan bool
}

// walkStmt interprets stmt over the held-lock set, returning the
// out-state and whether every path terminates the function.
func (w *walker) walkStmt(stmt ast.Stmt, h held) (held, bool) {
	switch s := stmt.(type) {
	case nil:
		return h, false
	case *ast.BlockStmt:
		cur := h
		for _, inner := range s.List {
			var term bool
			cur, term = w.walkStmt(inner, cur)
			if term {
				return cur, true
			}
		}
		return cur, false

	case *ast.ExprStmt:
		w.scanExpr(s.X, h)
		return h, false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, h)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, h)
		}
		return h, false

	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scanExpr(e, h)
				return false
			}
			return true
		})
		return h, false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, h)
		}
		return h, true

	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the lock stays held for
		// the rest of this function, so nothing to remove here. A defer
		// of a blocking call runs after the function's own locks would
		// normally be released by the same defer stack — out of scope.
		if key, op := w.lockOp(s.Call, h); op == "lock" {
			// defer mu.Lock() is nonsense but harmless to model as a no-op.
			_ = key
		}
		return h, false

	case *ast.GoStmt:
		// The goroutine runs with its own (empty) lock context; its body,
		// if a literal, is analyzed independently by run.
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, h)
		}
		return h, false

	case *ast.SendStmt:
		w.scanExpr(s.Chan, h)
		w.scanExpr(s.Value, h)
		if !w.muteChan {
			w.blockingOp(s.Arrow, "channel send", h)
		}
		return h, false

	case *ast.IfStmt:
		if s.Init != nil {
			h, _ = w.walkStmt(s.Init, h)
		}
		w.scanExpr(s.Cond, h)
		thenOut, thenTerm := w.walkStmt(s.Body, h.clone())
		elseOut, elseTerm := h.clone(), false
		if s.Else != nil {
			elseOut, elseTerm = w.walkStmt(s.Else, h.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return thenOut, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return joinHeld(thenOut, elseOut), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			h, _ = w.walkStmt(s.Init, h)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, h)
		}
		bodyOut, term := w.walkStmt(s.Body, h.clone())
		if s.Post != nil {
			w.walkStmt(s.Post, bodyOut)
		}
		if term {
			return h, false
		}
		return joinHeld(h, bodyOut), false

	case *ast.RangeStmt:
		w.scanExpr(s.X, h)
		if t := w.pkg.Info.Types[s.X]; t.Type != nil {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				w.blockingOp(s.X.Pos(), "channel receive (range)", h)
			}
		}
		bodyOut, term := w.walkStmt(s.Body, h.clone())
		if term {
			return h, false
		}
		return joinHeld(h, bodyOut), false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkSwitch(stmt, h)

	case *ast.BranchStmt:
		return h, true

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, h)

	case *ast.IncDecStmt:
		w.scanExpr(s.X, h)
		return h, false
	}
	return h, false
}

func (w *walker) walkSwitch(stmt ast.Stmt, h held) (held, bool) {
	var clauses []ast.Stmt
	hasDefault := false
	isSelect := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			h, _ = w.walkStmt(s.Init, h)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, h)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			h, _ = w.walkStmt(s.Init, h)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		isSelect = true
	}
	for _, cl := range clauses {
		switch c := cl.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
		}
	}
	if isSelect && !hasDefault {
		w.blockingOp(stmt.Pos(), "select without default", h)
	}
	var outs []held
	for _, cl := range clauses {
		var body []ast.Stmt
		ch := h.clone()
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, ch)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.muteChan = true
				ch, _ = w.walkStmt(c.Comm, ch)
				w.muteChan = false
			}
			body = c.Body
		}
		cur, term := ch, false
		for _, inner := range body {
			cur, term = w.walkStmt(inner, cur)
			if term {
				break
			}
		}
		if !term {
			outs = append(outs, cur)
		}
	}
	if !hasDefault {
		outs = append(outs, h)
	}
	if len(outs) == 0 {
		return h, true
	}
	out := outs[0]
	for _, o := range outs[1:] {
		out = joinHeld(out, o)
	}
	return out, false
}

// scanExpr looks for lock transitions and blocking operations inside an
// expression, mutating h in place (expressions evaluate on one path).
func (w *walker) scanExpr(e ast.Expr, h held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // analyzed independently
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !w.muteChan {
				w.blockingOp(x.Pos(), "channel receive", h)
			}
		case *ast.CallExpr:
			if key, op := w.lockOp(x, h); op != "" {
				switch op {
				case "lock":
					h[key] = lockInfo{line: w.pkg.Fset.Position(x.Pos()).Line}
				case "unlock":
					delete(h, key)
				}
				return false
			}
			if fn := calleeFunc(w.pkg, x); fn != nil {
				if w.prog.HasDirective(fn, "blocking") || stdlibBlocking[analysis.SymbolKey(fn)] {
					w.blockingOp(x.Pos(), "call to "+fn.Name(), h)
				}
			}
		}
		return true
	})
}

// blockingOp reports op happening while any lock is held.
func (w *walker) blockingOp(pos token.Pos, op string, h held) {
	for key, info := range h {
		w.report(pos, "%s while holding %s (locked at line %d): release the lock before blocking wire/LRMI operations", op, key, info.line)
	}
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock on sync.Mutex/RWMutex,
// returning the lock's key and "lock"/"unlock".
func (w *walker) lockOp(call *ast.CallExpr, h held) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", ""
	}
	var op string
	switch analysis.SymbolKey(fn) {
	case "(sync.Mutex).Lock", "(sync.RWMutex).Lock", "(sync.RWMutex).RLock":
		op = "lock"
	case "(sync.Mutex).Unlock", "(sync.RWMutex).Unlock", "(sync.RWMutex).RUnlock":
		op = "unlock"
	case "(sync.Mutex).TryLock", "(sync.RWMutex).TryLock", "(sync.RWMutex).TryRLock":
		// The result may be false; treating it as held would be wrong
		// more often than right, and TryLock call sites check the bool.
		return "", ""
	default:
		return "", ""
	}
	return exprKey(sel.X), op
}

func calleeFunc(pkg *load.Package, call *ast.CallExpr) *types.Func {
	switch fe := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fe].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fe.Sel].(*types.Func)
		return fn
	}
	return nil
}

// exprKey renders a lock receiver as a stable string ("c.mu", "s.pool.mu").
func exprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.IndexExpr:
		return exprKey(x.X) + "[...]"
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	}
	return "<lock>"
}
