// Package fixture exercises the lockhold pass: locks held across
// blocking operations (marked //jk:blocking or on the stdlib built-in
// list) must be reported; lock-release-then-block and poll-style
// selects must stay silent.
package fixture

import (
	"net"
	"sync"
	"time"
)

// invoke stands in for core.Capability.Invoke.
//
//jk:blocking
func invoke() error { return nil }

type srv struct {
	mu sync.Mutex
	rw sync.RWMutex
}

// --- violations --------------------------------------------------------------

func (s *srv) holdAcrossInvoke() {
	s.mu.Lock()
	invoke() // want "call to invoke while holding s.mu"
	s.mu.Unlock()
}

func (s *srv) deferredUnlockStillHolds() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return invoke() // want "call to invoke while holding s.mu"
}

func (s *srv) readLockAcrossSleep() {
	s.rw.RLock()
	time.Sleep(time.Millisecond) // want "call to Sleep while holding s.rw"
	s.rw.RUnlock()
}

func (s *srv) holdAcrossDial() {
	s.mu.Lock()
	defer s.mu.Unlock()
	net.Dial("tcp", "nowhere:0") // want "call to Dial while holding s.mu"
}

func (s *srv) holdAcrossChannelOps(ch chan int) {
	s.mu.Lock()
	<-ch    // want "channel receive while holding s.mu"
	ch <- 1 // want "channel send while holding s.mu"
	s.mu.Unlock()
}

func (s *srv) holdAcrossSelect(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while holding s.mu"
	case <-ch:
	}
}

func (s *srv) branchLeak(ready bool, ch chan int) {
	s.mu.Lock()
	if ready {
		s.mu.Unlock()
	}
	invoke() // want "call to invoke while holding s.mu"
	if !ready {
		s.mu.Unlock()
	}
}

// --- clean shapes: no findings ----------------------------------------------

func (s *srv) releaseThenBlock() {
	s.mu.Lock()
	s.mu.Unlock()
	invoke()
}

func (s *srv) pollSelect(ch chan int) {
	s.mu.Lock()
	select {
	case <-ch:
	default:
	}
	s.mu.Unlock()
}

func (s *srv) branchesBothRelease(fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		invoke()
		return
	}
	s.mu.Unlock()
	invoke()
}

func (s *srv) condWaitIsFine(c *sync.Cond) {
	s.mu.Lock()
	c.Wait() // Cond.Wait releases the mutex while parked: not blocking-under-lock
	s.mu.Unlock()
}

func (s *srv) goroutineHasOwnContext() {
	s.mu.Lock()
	go func() {
		invoke() // runs without the parent's locks
	}()
	s.mu.Unlock()
}

// --- suppression -------------------------------------------------------------

func (s *srv) allowedHold() {
	s.mu.Lock()
	//jk:allow(lockhold) fixture: the lock is the simulated fixed capacity; holding it across the sleep is the point
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}
