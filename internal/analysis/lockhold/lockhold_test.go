package lockhold_test

import (
	"testing"

	"jkernel/internal/analysis/atest"
	"jkernel/internal/analysis/lockhold"
)

func TestFixture(t *testing.T) {
	atest.Run(t, "fixture", lockhold.Pass)
}
