// Package fixture exercises the capleak pass: gate targets whose remote
// surface passes anything but capabilities and seri-registered deep-copy
// types must be reported at the creation site.
package fixture

// Cap stands in for core.Capability: the one legal cross-domain
// reference.
//
//jk:cap
type Cap struct{ id int64 }

// create stands in for core.Kernel.CreateNativeCapability.
//
//jk:gate-target 0
func create(target any) {}

// register stands in for seri's Registry.Register / RegisterWireType.
//
//jk:wire-register 1
func register(name string, sample any) {}

// Spec is wire-registered below: it may cross by value or pointer.
type Spec struct{ Name string }

// Unregistered never passes through register: it may not cross.
type Unregistered struct{ X int }

// good's whole remote surface is legal.
type good struct{}

func (good) Ping(n int64, s string) (string, error) { return s, nil }
func (good) Blob(b []byte) ([]byte, error)          { return b, nil }
func (good) Grant(c *Cap) (*Cap, error)             { return c, nil }
func (good) Deploy(sp *Spec) (Spec, error)          { return *sp, nil }
func (good) NotRemote(p *int)                       {}             // no trailing error: not on the remote surface
func (good) hidden(p *int) error                    { return nil } // unexported: not on the remote surface

// bad leaks shared mutable state in every method.
type bad struct{}

func (bad) Leak(p *int) error               { return nil }
func (bad) Share(m map[string]int) error    { return nil }
func (bad) Slice(s []string) (int64, error) { return 0, nil }
func (bad) Stream() (chan int, error)       { return nil, nil }
func (bad) Hook(f func()) error             { return nil }
func (bad) Opaque(v any) error              { return nil }
func (bad) Unreg(u Unregistered) error      { return nil }

func wire() {
	register("fixture.Spec", Spec{})
}

func cleanTargets() {
	create(good{})
	var dynamic any = bad{}
	create(dynamic) // interface-typed target: surface unknowable, skipped
}

func leakyTarget() {
	create(&bad{}) // want "method Hook" "method Leak" "method Opaque" "method Share" "method Slice" "method Stream" "method Unreg"
}

func allowedCounterExample() {
	//jk:allow(capleak) fixture: the shareany-style deliberate breach — direct sharing is the demonstration
	create(&bad{})
}
