// Package capleak checks the paper's core discipline at the gate
// boundary: capabilities are the only legal cross-domain references,
// and every other argument or result crosses by deep copy. A method on
// a gate/native-target type that traffics in raw pointers, slices,
// maps, channels, or funcs hands the caller shared mutable state — the
// exact breach internal/shareany exists to demonstrate.
//
// Facts are gathered from directives, so the pass tracks what the
// kernel actually does rather than a hard-coded type list:
//
//   - //jk:gate-target N on a function (core.CreateNativeCapability)
//     marks argument N of each call as a type whose remote surface is
//     about to be exposed across domains;
//   - //jk:wire-register N (core.Kernel.RegisterWireType, seri's
//     Registry.Register) marks argument N of each call as a type the
//     serializer deep-copies — such named struct types may legally
//     cross;
//   - //jk:cap on a type declaration marks the capability type itself.
//
// The remote surface mirrors core/native.go's rule: exported methods
// whose final result is error. For each such method, every parameter
// and every non-error result must be a basic type, the capability type,
// []byte (the serializer's byte-copy tag), or a seri-registered named
// struct (by value or single pointer). Findings anchor at the
// gate-target call site — that is where the type escapes its domain —
// so internal/shareany's deliberate breach is suppressed there with one
// //jk:allow(capleak) justification.
package capleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"sync"

	"jkernel/internal/analysis"
	"jkernel/internal/analysis/load"
)

// Pass is the capleak analyzer.
var Pass = &analysis.Pass{
	Name: "capleak",
	Doc:  "gate-target methods may only pass capabilities or seri-registered deep-copy types across domains",
	Run:  run,
}

// facts are program-wide: wire registrations in one package legalize
// parameter types on a gate target created in another.
type facts struct {
	registered map[string]bool // NamedTypeKey of seri-registered types
}

var (
	factsMu    sync.Mutex
	factsCache = map[*analysis.Program]*facts{}
)

func factsFor(prog *analysis.Program) *facts {
	factsMu.Lock()
	defer factsMu.Unlock()
	if f, ok := factsCache[prog]; ok {
		return f
	}
	f := &facts{registered: map[string]bool{}}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil {
					return true
				}
				for _, d := range prog.DirectivesFor(fn) {
					if d.Name != "wire-register" {
						continue
					}
					if arg := argAt(call, d.Args); arg != nil {
						if key := registeredKey(pkg, arg); key != "" {
							f.registered[key] = true
						}
					}
				}
				return true
			})
		}
	}
	factsCache[prog] = f
	return f
}

// registeredKey resolves the registered sample expression to its named
// type: Register(&DeploySpec{}) and RegisterWireType(Response{}) both
// register the struct type itself.
func registeredKey(pkg *load.Package, arg ast.Expr) string {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Type == nil {
		return ""
	}
	return analysis.NamedTypeKey(tv.Type)
}

func argAt(call *ast.CallExpr, directiveArgs string) ast.Expr {
	idx, err := strconv.Atoi(directiveArgs)
	if err != nil || idx < 0 || idx >= len(call.Args) {
		return nil
	}
	return call.Args[idx]
}

func run(prog *analysis.Program, pkg *load.Package, report analysis.ReportFunc) {
	f := factsFor(prog)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pkg, call)
			if fn == nil {
				return true
			}
			for _, d := range prog.DirectivesFor(fn) {
				if d.Name != "gate-target" {
					continue
				}
				arg := argAt(call, d.Args)
				if arg == nil {
					continue
				}
				checkTarget(prog, pkg, f, arg, call.Pos(), report)
			}
			return true
		})
	}
}

// checkTarget audits the remote surface of the type passed as a gate
// target at pos.
func checkTarget(prog *analysis.Program, pkg *load.Package, f *facts, arg ast.Expr, pos token.Pos, report analysis.ReportFunc) {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	t := types.Unalias(tv.Type)
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return // dynamic target: the static type says nothing about the surface
	}
	typeName := analysis.NamedTypeKey(t)
	if typeName == "" {
		return
	}
	mset := types.NewMethodSet(types.NewPointer(derefNamed(t)))
	for i := 0; i < mset.Len(); i++ {
		m, ok := mset.At(i).Obj().(*types.Func)
		if !ok || !m.Exported() {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || !remoteReachable(sig) {
			continue
		}
		params := sig.Params()
		for j := 0; j < params.Len(); j++ {
			if why := disallowed(prog, f, params.At(j).Type()); why != "" {
				report(pos, "gate target %s: method %s parameter %s crosses the domain boundary as %s — only capabilities and seri-registered deep-copy types may cross",
					typeName, m.Name(), paramName(params.At(j), j), why)
			}
		}
		results := sig.Results()
		for j := 0; j < results.Len()-1; j++ { // final error result excluded
			if why := disallowed(prog, f, results.At(j).Type()); why != "" {
				report(pos, "gate target %s: method %s result %d crosses the domain boundary as %s — only capabilities and seri-registered deep-copy types may cross",
					typeName, m.Name(), j, why)
			}
		}
	}
}

func paramName(v *types.Var, i int) string {
	if v.Name() != "" && v.Name() != "_" {
		return v.Name()
	}
	return fmt.Sprintf("%d", i)
}

func derefNamed(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return types.Unalias(p.Elem())
	}
	return t
}

// remoteReachable mirrors core/native.go: the remote surface is the
// exported methods whose final result is error.
func remoteReachable(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// disallowed classifies a boundary-crossing type: "" when it may cross,
// otherwise a short phrase naming the breach.
func disallowed(prog *analysis.Program, f *facts, t types.Type) string {
	t = types.Unalias(t)
	if types.Identical(t, types.Universe.Lookup("error").Type()) {
		return ""
	}
	if prog.TypeHasDirective(t, "cap") {
		return "" // the capability type: the one legal reference
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return "an unsafe.Pointer"
		}
		return "" // bools, numerics, strings copy by value
	case *types.Slice:
		if b, ok := types.Unalias(u.Elem()).Underlying().(*types.Basic); ok && b.Kind() == types.Uint8 {
			return "" // []byte: the serializer's byte-copy tag
		}
		return "a raw slice (" + t.String() + "), sharing backing memory"
	case *types.Map:
		return "a raw map (" + t.String() + "), sharing mutable state"
	case *types.Chan:
		return "a channel (" + t.String() + ")"
	case *types.Signature:
		return "a func value"
	case *types.Pointer:
		elem := types.Unalias(u.Elem())
		if prog.TypeHasDirective(elem, "cap") {
			return ""
		}
		if key := analysis.NamedTypeKey(elem); key != "" && f.registered[key] {
			return "" // pointer to a seri-registered struct: deep-copied on the wire
		}
		return "a raw pointer (" + t.String() + "), sharing the pointee"
	case *types.Interface:
		return "an interface (" + t.String() + "), hiding the concrete crossing type"
	case *types.Struct:
		if key := analysis.NamedTypeKey(t); key != "" && f.registered[key] {
			return ""
		}
		return "an unregistered struct (" + t.String() + "): register it with the serializer or pass a capability"
	case *types.Array:
		if b, ok := types.Unalias(u.Elem()).Underlying().(*types.Basic); ok && b.Kind() != types.UnsafePointer {
			_ = b
			return "" // arrays of basics copy by value
		}
		return "an array of non-basic elements (" + t.String() + ")"
	}
	return ""
}

func calleeFunc(pkg *load.Package, call *ast.CallExpr) *types.Func {
	switch fe := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fe].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fe.Sel].(*types.Func)
		return fn
	}
	return nil
}
