package capleak_test

import (
	"testing"

	"jkernel/internal/analysis/atest"
	"jkernel/internal/analysis/capleak"
)

func TestFixture(t *testing.T) {
	atest.Run(t, "fixture", capleak.Pass)
}
