// Package analysis is the frame jkvet's passes hang on: a loaded program
// view (every package with syntax and types, plus a cross-package
// directive index), findings with a uniform report format, and the
// //jk:allow suppression contract.
//
// The passes machine-check the invariants the paper's design rests on —
// capabilities are the only legal cross-domain references, everything
// else crosses by deep copy, and the wire hot path's buffer ownership
// contract holds on every control-flow path. See the package docs of
// bufown, capleak, lockhold, and faultpath for the individual rules.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"jkernel/internal/analysis/load"
)

// A Finding is one rule violation, addressed by position so the reporter
// can print it and the suppression layer can match //jk:allow comments.
type Finding struct {
	Pos     token.Position
	Pass    string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d %s: %s", f.Pos.Filename, f.Pos.Line, f.Pass, f.Message)
}

// A Pass is one analyzer. Run inspects a single package but may consult
// program-wide facts (directives, wire registrations) through prog.
type Pass struct {
	Name string
	Doc  string
	Run  func(prog *Program, pkg *load.Package, report ReportFunc)
}

// ReportFunc records one finding at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// Program is the whole loaded package set plus the cross-package
// directive index passes key their rules on.
type Program struct {
	Fset *token.FileSet
	Pkgs []*load.Package

	directives map[string][]Directive // symbol key -> directives
	pkgMarks   map[string][]Directive // package path -> package-clause directives
	allows     map[string][]allowMark // filename -> suppression comments
}

// Directive is one //jk:name arg comment attached to a declaration.
type Directive struct {
	Name string // e.g. "acquire", "blocking", "gate-target"
	Args string // raw argument text after the name
	Pos  token.Pos
}

// allowMark is one //jk:allow(pass) comment with its justification.
type allowMark struct {
	pass          string
	justification string
	line          int
	pos           token.Pos
}

// NewProgram indexes the loaded packages: declaration directives keyed
// by stable symbol strings (so a directive on a function in one package
// is visible when another package calls it) and //jk:allow suppressions
// keyed by file and line.
func NewProgram(pkgs []*load.Package) *Program {
	p := &Program{
		directives: map[string][]Directive{},
		pkgMarks:   map[string][]Directive{},
		allows:     map[string][]allowMark{},
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	p.Pkgs = pkgs
	for _, pkg := range pkgs {
		p.indexPackage(pkg)
	}
	return p
}

// SymbolKey is the stable cross-package name of a function or method:
// "path.Func" for package functions, "(path.Type).Method" for methods
// (pointer receivers normalized away). Directives are stored and looked
// up under these keys, so identity survives the boundary between a
// package loaded from source and the same package seen through export
// data.
func SymbolKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if fn.Pkg() == nil {
			return fn.Name()
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return "(" + namedKey(sig.Recv().Type()) + ")." + fn.Name()
}

// FieldKey names a struct field: "(path.Type).field".
func FieldKey(owner types.Type, field string) string {
	return "(" + namedKey(owner) + ")." + field
}

// namedKey prints the defining named type of t, pointers stripped.
func namedKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		obj := n.Obj()
		if obj.Pkg() == nil {
			return obj.Name()
		}
		return obj.Pkg().Path() + "." + obj.Name()
	case *types.Alias:
		return namedKey(types.Unalias(t))
	}
	return t.String()
}

// NamedTypeKey names a (possibly pointer-wrapped) named type:
// "path.Type", or "" when t has no defining name.
func NamedTypeKey(t types.Type) string {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() == nil {
			return obj.Name()
		}
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return ""
}

// DirectivesFor returns the directives attached to the declaration of
// fn, wherever it was declared.
func (p *Program) DirectivesFor(fn *types.Func) []Directive {
	if fn == nil {
		return nil
	}
	return p.directives[SymbolKey(fn)]
}

// HasDirective reports whether fn carries //jk:<name>.
func (p *Program) HasDirective(fn *types.Func, name string) bool {
	for _, d := range p.DirectivesFor(fn) {
		if d.Name == name {
			return true
		}
	}
	return false
}

// FieldHasDirective reports whether the field named field of owner's
// struct type carries //jk:<name>.
func (p *Program) FieldHasDirective(owner types.Type, field, name string) bool {
	for _, d := range p.directives[FieldKey(owner, field)] {
		if d.Name == name {
			return true
		}
	}
	return false
}

// TypeHasDirective reports whether the declaration of t's named type
// (pointers stripped) carries //jk:<name>.
func (p *Program) TypeHasDirective(t types.Type, name string) bool {
	key := NamedTypeKey(t)
	if key == "" {
		return false
	}
	for _, d := range p.directives[key] {
		if d.Name == name {
			return true
		}
	}
	return false
}

// PackageMarked reports whether any file of package path carries the
// package-clause directive //jk:<name>.
func (p *Program) PackageMarked(path, name string) bool {
	for _, d := range p.pkgMarks[path] {
		if d.Name == name {
			return true
		}
	}
	return false
}

// --- directive indexing -----------------------------------------------------

// parseDirective recognizes "//jk:name args". Directive comments use the
// no-space machine-comment form, so godoc drops them like //go: lines.
func parseDirective(text string, pos token.Pos) (Directive, bool) {
	if !strings.HasPrefix(text, "//jk:") {
		return Directive{}, false
	}
	body := strings.TrimPrefix(text, "//jk:")
	name, args, _ := strings.Cut(body, " ")
	return Directive{Name: strings.TrimSpace(name), Args: strings.TrimSpace(args), Pos: pos}, true
}

func (p *Program) indexPackage(pkg *load.Package) {
	for _, file := range pkg.Files {
		filename := pkg.Fset.Position(file.Pos()).Filename

		// Package-clause directives mark whole-package scopes
		// (e.g. //jk:faultpath on internal/remote).
		if file.Doc != nil {
			for _, c := range file.Doc.List {
				if d, ok := parseDirective(c.Text, c.Pos()); ok {
					p.pkgMarks[pkg.Path] = append(p.pkgMarks[pkg.Path], d)
				}
			}
		}

		// Every comment in the file is scanned for //jk:allow — the
		// suppression must work on the same line as the finding or the
		// line above, wherever that comment syntactically attaches.
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				p.indexAllow(pkg.Fset, filename, c)
			}
		}

		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				key := SymbolKey(obj)
				for _, c := range d.Doc.List {
					if dir, ok := parseDirective(c.Text, c.Pos()); ok {
						p.directives[key] = append(p.directives[key], dir)
					}
				}
			case *ast.GenDecl:
				p.indexTypeDirectives(pkg, d)
			}
		}
	}
}

// indexTypeDirectives picks up //jk: comments on type declarations
// (keyed "path.Type") and on struct fields (doc or trailing, keyed
// "(path.Type).field").
func (p *Program) indexTypeDirectives(pkg *load.Package, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		obj := pkg.Info.Defs[ts.Name]
		if obj == nil {
			continue
		}
		typeDocs := ts.Doc
		if typeDocs == nil && len(d.Specs) == 1 {
			typeDocs = d.Doc
		}
		if typeDocs != nil {
			key := NamedTypeKey(obj.Type())
			for _, c := range typeDocs.List {
				if dir, ok := parseDirective(c.Text, c.Pos()); ok {
					p.directives[key] = append(p.directives[key], dir)
				}
			}
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			var groups []*ast.CommentGroup
			if field.Doc != nil {
				groups = append(groups, field.Doc)
			}
			if field.Comment != nil {
				groups = append(groups, field.Comment)
			}
			for _, g := range groups {
				for _, c := range g.List {
					dir, ok := parseDirective(c.Text, c.Pos())
					if !ok {
						continue
					}
					for _, name := range field.Names {
						key := FieldKey(obj.Type(), name.Name)
						p.directives[key] = append(p.directives[key], dir)
					}
				}
			}
		}
	}
}

// --- //jk:allow suppression -------------------------------------------------

// indexAllow records "//jk:allow(pass) justification" comments. The
// justification is mandatory: a suppression that does not say why is
// itself reported (see Apply).
func (p *Program) indexAllow(fset *token.FileSet, filename string, c *ast.Comment) {
	d, ok := parseDirective(c.Text, c.Pos())
	if !ok || d.Name != "allow" && !strings.HasPrefix(d.Name, "allow(") {
		return
	}
	// The pass name rides in parentheses glued to the directive name:
	// jk:allow(bufown).
	rest := strings.TrimPrefix(d.Name, "allow")
	if d.Args != "" {
		rest += " " + d.Args
	}
	if !strings.HasPrefix(rest, "(") {
		p.allows[filename] = append(p.allows[filename], allowMark{
			pass: "", line: fset.Position(c.Pos()).Line, pos: c.Pos(),
		})
		return
	}
	passName, justification, found := strings.Cut(rest[1:], ")")
	if !found {
		passName = rest[1:]
	}
	p.allows[filename] = append(p.allows[filename], allowMark{
		pass:          strings.TrimSpace(passName),
		justification: strings.TrimSpace(justification),
		line:          fset.Position(c.Pos()).Line,
		pos:           c.Pos(),
	})
}

// knownPasses is filled by the driver so malformed suppressions can name
// the valid options.
var knownPasses = map[string]bool{}

// RegisterPassNames teaches the suppression checker the valid pass set.
func RegisterPassNames(names ...string) {
	for _, n := range names {
		knownPasses[n] = true
	}
}

// Apply filters findings through the //jk:allow marks: a finding is
// suppressed when a matching mark sits on its line or the line above.
// Malformed marks — no pass name, an unknown pass, or a missing
// justification — surface as findings themselves, so a suppression can
// never silently rot.
func (p *Program) Apply(findings []Finding) []Finding {
	var out []Finding
	used := map[*allowMark]bool{}
	for _, f := range findings {
		if mark := p.allowFor(f); mark != nil {
			used[mark] = true
			continue
		}
		out = append(out, f)
	}
	// Validate every mark, used or not: a stale allow with no finding is
	// fine (the code got fixed), but a malformed one is not.
	for file, marks := range p.allows {
		for i := range marks {
			m := &marks[i]
			switch {
			case m.pass == "":
				out = append(out, Finding{
					Pos:  token.Position{Filename: file, Line: m.line},
					Pass: "jkvet", Message: "jk:allow needs a pass name: //jk:allow(pass) justification",
				})
			case !knownPasses[m.pass]:
				out = append(out, Finding{
					Pos:  token.Position{Filename: file, Line: m.line},
					Pass: "jkvet", Message: fmt.Sprintf("jk:allow names unknown pass %q", m.pass),
				})
			case m.justification == "":
				out = append(out, Finding{
					Pos:  token.Position{Filename: file, Line: m.line},
					Pass: "jkvet", Message: fmt.Sprintf("jk:allow(%s) needs a justification explaining why the invariant holds here", m.pass),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}

func (p *Program) allowFor(f Finding) *allowMark {
	marks := p.allows[f.Pos.Filename]
	for i := range marks {
		m := &marks[i]
		if m.pass != f.Pass || m.justification == "" || !knownPasses[m.pass] {
			continue
		}
		if m.line == f.Pos.Line || m.line == f.Pos.Line-1 {
			return m
		}
	}
	return nil
}

// --- driver ------------------------------------------------------------------

// Run executes the passes over every package and returns the surviving
// findings, sorted, with suppressions applied.
func Run(prog *Program, passes []*Pass) []Finding {
	var names []string
	for _, pass := range passes {
		names = append(names, pass.Name)
	}
	RegisterPassNames(names...)
	var findings []Finding
	for _, pass := range passes {
		for _, pkg := range prog.Pkgs {
			report := func(pos token.Pos, format string, args ...any) {
				findings = append(findings, Finding{
					Pos:     prog.Fset.Position(pos),
					Pass:    pass.Name,
					Message: fmt.Sprintf(format, args...),
				})
			}
			pass.Run(prog, pkg, report)
		}
	}
	return prog.Apply(findings)
}
