package httpd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jkernel/internal/core"
)

// servletIfaceSrc is the shared VM servlet interface — the contract every
// uploaded VM servlet implements. service(method, pathAndQuery, body)
// returns the response body; richer responses use the native API.
const servletIfaceSrc = `
.class jk/servlet/Servlet interface implements jk/kernel/Remote
.method service (Ljk/lang/String;Ljk/lang/String;[B)[B
.end
`

// Control is the hook a cluster control plane (internal/sched) installs
// on a bridge to own the lifecycle of its servlets. Every method may be
// called concurrently with request traffic.
type Control interface {
	// UploadServlet intercepts admin uploads: the control plane decides
	// which kernel instantiates the bundle and mounts the result itself.
	UploadServlet(name, prefix, main string, bundle map[string][]byte) error
	// TerminateServlet intercepts admin termination. handled=false falls
	// back to the bridge's local path.
	TerminateServlet(name string) (handled bool, err error)
	// ServletFault reports a remote mount the bridge just auto-unmounted
	// after a capability fault (revocation, worker crash, lost
	// connection) so the control plane can re-place it.
	ServletFault(name string, err error)
	// ObserveRequest receives the outcome of every routed request — the
	// per-servlet load and latency signal for placement and autoscaling.
	ObserveRequest(name string, status int, err error, dur time.Duration)
}

// Bridge is the ISAPI-extension analog: it lives in the front server's
// process, receives requests, and forwards them through LRMI to servlet
// domains. It also exposes the admin surface for uploading and terminating
// servlets.
type Bridge struct {
	K      *core.Kernel
	Router *Router

	system *core.Domain // hosts the bridge's own task contexts
	host   *ServletHost // shared servlet interface + VM instantiation

	// control, when installed, owns servlet placement (see Control).
	control atomic.Pointer[controlBox]

	// taskPool recycles detached bridge tasks so per-request cost is the
	// LRMI, not task setup ("the Java code runs in the same thread as IIS
	// uses to invoke the bridge" — and that thread context is reused).
	taskPool sync.Pool
}

// controlBox wraps the Control interface for atomic.Pointer.
type controlBox struct{ c Control }

// NewBridge wires a bridge into kernel k.
func NewBridge(k *core.Kernel) (*Bridge, error) {
	system, err := k.NewDomain(core.DomainConfig{Name: "www-bridge"})
	if err != nil {
		return nil, err
	}
	host, err := NewServletHost(k)
	if err != nil {
		return nil, err
	}
	b := &Bridge{
		K:      k,
		Router: &Router{},
		system: system,
		host:   host,
	}
	b.taskPool.New = func() any {
		return k.NewDetachedTask(system, "bridge-req")
	}
	return b, nil
}

// SetControl installs (or, with nil, removes) the cluster control plane.
func (b *Bridge) SetControl(c Control) {
	if c == nil {
		b.control.Store(nil)
		return
	}
	b.control.Store(&controlBox{c: c})
}

// controlPlane returns the installed Control, or nil.
func (b *Bridge) controlPlane() Control {
	if box := b.control.Load(); box != nil {
		return box.c
	}
	return nil
}

// Host returns the bridge's servlet host (VM instantiation machinery).
func (b *Bridge) Host() *ServletHost { return b.host }

// ServletInterface returns the shared jk/servlet/Servlet group, for
// domains created outside the bridge.
func (b *Bridge) ServletInterface() *core.SharedClass { return b.host.servletSC }

// MountNative runs a Go servlet in its own domain and mounts it.
func (b *Bridge) MountNative(name, prefix string, s Servlet) (*core.Domain, error) {
	d, err := b.K.NewDomain(core.DomainConfig{Name: "servlet-" + name})
	if err != nil {
		return nil, err
	}
	cap, err := b.K.CreateNativeCapability(d, &nativeServletAdapter{s: s})
	if err != nil {
		return nil, err
	}
	if err := b.Router.Mount(name, prefix, cap, d, false); err != nil {
		return nil, err
	}
	return d, nil
}

// MountRemote mounts a servlet capability imported from a worker kernel
// (any capability whose Service method follows the native servlet
// contract): requests dispatch through the proxy's LRMI path and cross
// the wire to the worker process. The worker's kernel must also have the
// servlet types registered (RegisterTypes). A dead or revoked worker
// surfaces as 503, like a terminated local servlet. The route carries no
// domain: the proxy's owner is the connection's shared host domain, which
// must outlive this one servlet, so TerminateServlet revokes only the
// proxy.
func (b *Bridge) MountRemote(name, prefix string, cap *core.Capability) error {
	return b.Router.Mount(name, prefix, cap, nil, false)
}

// UploadVM creates a fresh domain, loads the uploaded class bundle into
// it, instantiates mainClass (which must implement jk/servlet/Servlet),
// and mounts it at prefix. This is the paper's servlet upload: arbitrary
// user bytecode, fully isolated.
func (b *Bridge) UploadVM(name, prefix, mainClass string, bundle map[string][]byte) (*core.Domain, error) {
	d, cap, err := b.host.InstantiateVM(name, mainClass, bundle)
	if err != nil {
		return nil, err
	}
	if err := b.Router.Mount(name, prefix, cap, d, true); err != nil {
		d.Terminate("mount failed")
		return nil, err
	}
	return d, nil
}

// TerminateServlet unmounts the servlet and terminates its domain. Clients
// in mid-call observe RevokedException; the server itself is unaffected —
// replacement without restarting the server, which Jigsaw could not do.
// Remote servlets (MountRemote) have no dedicated local domain; their
// proxy capability is revoked instead, leaving the worker connection and
// its other imports untouched.
func (b *Bridge) TerminateServlet(name string) error {
	if ctl := b.controlPlane(); ctl != nil {
		handled, err := ctl.TerminateServlet(name)
		if handled || err != nil {
			return err
		}
	}
	rt := b.Router.Unmount(name)
	if rt == nil {
		return fmt.Errorf("httpd: no servlet %q", name)
	}
	if rt.domain == nil {
		rt.cap.Revoke()
		return nil
	}
	rt.domain.Terminate("servlet terminated by admin")
	return nil
}

// ServeHTTP is the front-server hook (http.Handler). Admin endpoints live
// under /admin/; everything else routes to servlets.
func (b *Bridge) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/admin/") {
		b.serveAdmin(w, r)
		return
	}
	rt := b.Router.Lookup(r.URL.Path)
	if rt == nil {
		http.NotFound(w, r)
		return
	}

	// Per-servlet telemetry: latency and status counters under the kernel
	// registry (free when telemetry is disabled), plus the control plane's
	// load/latency observer when one is installed.
	ctl := b.controlPlane()
	start := time.Now()
	status := http.StatusOK
	var reqErr error
	if b.K.Telemetry() != nil || ctl != nil {
		defer func() {
			if b.K.Telemetry() != nil {
				b.observe(rt.name, status, start)
			}
			if ctl != nil {
				ctl.ObserveRequest(rt.name, status, reqErr, time.Since(start))
			}
		}()
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<22))
	if err != nil {
		status = http.StatusBadRequest
		http.Error(w, "read body: "+err.Error(), status)
		return
	}

	// Enter the bridge domain for the duration of the request: the Java
	// code runs "in the same thread as IIS uses to invoke the bridge".
	task := b.taskPool.Get().(*core.Task)
	defer b.taskPool.Put(task)

	if rt.isVM {
		out, err := rt.cap.InvokeVM(task, "service", r.Method, r.URL.RequestURI(), body)
		if err != nil {
			reqErr = err
			status = servletError(w, err)
			return
		}
		data, _ := out.([]byte)
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.WriteHeader(http.StatusOK)
		w.Write(data)
		return
	}

	req := &Request{
		Method:  r.Method,
		Path:    r.URL.Path,
		Query:   r.URL.RawQuery,
		Headers: flattenHeader(r.Header),
		Body:    body,
	}
	results, err := rt.cap.InvokeFrom(task, "Service", req)
	if err != nil {
		reqErr = err
		b.maybeUnmountFaulted(rt, err)
		status = servletError(w, err)
		return
	}
	resp, _ := results[0].(*Response)
	if resp == nil {
		status = http.StatusBadGateway
		http.Error(w, "servlet returned no response", status)
		return
	}
	for k, v := range resp.Headers {
		w.Header().Set(k, v)
	}
	status = resp.Status
	if status == 0 {
		status = http.StatusOK
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(resp.Body)))
	w.WriteHeader(status)
	w.Write(resp.Body)
}

// maybeUnmountFaulted observes a capability fault on a remote mount. A
// servlet whose backing capability was revoked, or whose worker
// connection dropped, would otherwise sit in the router returning errors
// forever. With a control plane installed, the route stays mounted — the
// fault is reported and the controller atomically swaps in a replacement
// (failover reads 503→200, never 404). Without one, the route is
// unmounted; only the exact faulted route is removed (a re-placement
// mounted concurrently under the same name survives). Local servlets are
// untouched: their termination is an administrative act, and the route is
// the only record of it.
func (b *Bridge) maybeUnmountFaulted(rt *route, err error) {
	if rt.domain != nil || rt.isVM || !errors.Is(err, core.ErrRevoked) {
		return
	}
	if ctl := b.controlPlane(); ctl != nil {
		ctl.ServletFault(rt.name, err)
		return
	}
	if !b.Router.unmountRoute(rt) {
		return // a concurrent request already unmounted it
	}
	if reg := b.K.Telemetry(); reg != nil {
		reg.Eventf("httpd: unmounted faulted remote servlet %q: %v", rt.name, err)
	}
}

// servletError maps kernel failures onto HTTP statuses: a dead or revoked
// servlet — local, or a remote worker that crashed — is a gateway
// failure, not a server crash. Returns the status it wrote.
func servletError(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, core.ErrRevoked) || errors.Is(err, core.ErrDomainTerminated):
		http.Error(w, "servlet unavailable: "+err.Error(), http.StatusServiceUnavailable)
		return http.StatusServiceUnavailable
	default:
		http.Error(w, "servlet failed: "+err.Error(), http.StatusBadGateway)
		return http.StatusBadGateway
	}
}

// observe records one routed request: total count, per-servlet latency,
// and a per-servlet, per-status counter.
func (b *Bridge) observe(name string, status int, start time.Time) {
	reg := b.K.Telemetry()
	if reg == nil {
		return
	}
	reg.Counter("httpd.requests").Inc()
	reg.Histogram("httpd.req." + name + ".latency_ns").ObserveSince(start)
	reg.Counter("httpd.req." + name + ".status_" + strconv.Itoa(status)).Inc()
}

// serveAdmin handles upload and termination.
//
//	POST   /admin/upload?name=N&prefix=/p&main=Class   body: class bundle
//	DELETE /admin/servlet?name=N
//	GET    /admin/servlets
func (b *Bridge) serveAdmin(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/admin/upload":
		q := r.URL.Query()
		name, prefix, main := q.Get("name"), q.Get("prefix"), q.Get("main")
		if name == "" || prefix == "" || main == "" {
			http.Error(w, "need name, prefix, main", http.StatusBadRequest)
			return
		}
		raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<22))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		bundle, err := DecodeBundle(raw)
		if err != nil {
			http.Error(w, "bad bundle: "+err.Error(), http.StatusBadRequest)
			return
		}
		if ctl := b.controlPlane(); ctl != nil {
			if err := ctl.UploadServlet(name, prefix, main, bundle); err != nil {
				http.Error(w, "upload rejected: "+err.Error(), http.StatusUnprocessableEntity)
				return
			}
		} else if _, err := b.UploadVM(name, prefix, main, bundle); err != nil {
			http.Error(w, "upload rejected: "+err.Error(), http.StatusUnprocessableEntity)
			return
		}
		fmt.Fprintf(w, "servlet %s mounted at %s\n", name, prefix)

	case r.Method == http.MethodDelete && r.URL.Path == "/admin/servlet":
		name := r.URL.Query().Get("name")
		if err := b.TerminateServlet(name); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "servlet %s terminated\n", name)

	case r.Method == http.MethodGet && r.URL.Path == "/admin/servlets":
		for _, n := range b.Router.Names() {
			fmt.Fprintln(w, n)
		}

	default:
		http.NotFound(w, r)
	}
}

func flattenHeader(h http.Header) map[string]string {
	out := make(map[string]string, len(h))
	for k, vs := range h {
		if len(vs) > 0 {
			out[k] = vs[0]
		}
	}
	return out
}

// EncodeBundle packs class files for upload: repeated
// [name-len][name][data-len][data], little-endian u32 lengths.
func EncodeBundle(bundle map[string][]byte) []byte {
	var out []byte
	u32 := func(n int) {
		out = binary.LittleEndian.AppendUint32(out, uint32(n))
	}
	for name, data := range bundle {
		u32(len(name))
		out = append(out, name...)
		u32(len(data))
		out = append(out, data...)
	}
	return out
}

// DecodeBundle unpacks an uploaded class bundle.
func DecodeBundle(raw []byte) (map[string][]byte, error) {
	out := map[string][]byte{}
	for len(raw) > 0 {
		if len(raw) < 4 {
			return nil, fmt.Errorf("truncated bundle")
		}
		n := binary.LittleEndian.Uint32(raw)
		raw = raw[4:]
		if uint32(len(raw)) < n {
			return nil, fmt.Errorf("truncated name")
		}
		name := string(raw[:n])
		raw = raw[n:]
		if len(raw) < 4 {
			return nil, fmt.Errorf("truncated bundle")
		}
		dn := binary.LittleEndian.Uint32(raw)
		raw = raw[4:]
		if uint32(len(raw)) < dn {
			return nil, fmt.Errorf("truncated class data")
		}
		data := append([]byte(nil), raw[:dn]...)
		raw = raw[dn:]
		out[name] = data
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty bundle")
	}
	return out, nil
}
