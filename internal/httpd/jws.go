package httpd

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"jkernel/internal/core"
	"jkernel/internal/vmkit"
)

// This file holds the two Table 5 baselines.
//
// StaticHandler is the "IIS" analog: the off-the-shelf native server
// serving an in-memory document directly.
//
// JWS is the "Java Web Server" analog: the entire request path — request
// parsing, header generation, body copy — runs in VM bytecode on the
// interpreter, as JWS ran all-Java without a JIT.

// StaticHandler serves doc for every request.
func StaticHandler(doc []byte) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", strconv.Itoa(len(doc)))
		w.WriteHeader(http.StatusOK)
		w.Write(doc)
	})
}

// httpEngineSrc is the all-bytecode HTTP engine: handle() scans the
// request line, formats the status line and Content-Length header, and
// assembles the response byte by byte.
const httpEngineSrc = `
.class jk/www/HttpEngine
.field static doc [B
.method static setDoc ([B)V stack 2 locals 0
  load 0
  putstatic jk/www/HttpEngine.doc:[B
  ret
.end
.method static handle ([B)[B stack 10 locals 10
  ; locals: 0=req 1=i/j 2=pathStart 3=pathLen 4=hdr 5=digits 6=ndigits 7=out 8=k 9=tmp
  iconst 0
  store 1
scan1:
  load 1
  load 0
  arraylength
  if_ge bad
  load 0
  load 1
  aload
  iconst 32
  if_eq found1
  load 1
  iconst 1
  iadd
  store 1
  jmp scan1
found1:
  load 1
  iconst 1
  iadd
  store 2
  load 2
  store 1
scan2:
  load 1
  load 0
  arraylength
  if_ge bad
  load 0
  load 1
  aload
  iconst 32
  if_eq found2
  load 1
  iconst 1
  iadd
  store 1
  jmp scan2
found2:
  load 1
  load 2
  isub
  store 3
  sconst "HTTP/1.0 200 OK\r\nServer: jk-jws/1.0\r\nContent-Length: "
  invokevirtual jk/lang/String.getBytes:()[B
  store 4
  getstatic jk/www/HttpEngine.doc:[B
  arraylength
  store 9
  iconst 20
  newarr "[B"
  store 5
  iconst 0
  store 6
digitloop:
  load 5
  load 6
  load 9
  iconst 10
  irem
  iconst 48
  iadd
  astore
  load 6
  iconst 1
  iadd
  store 6
  load 9
  iconst 10
  idiv
  store 9
  load 9
  ifnz digitloop
  load 4
  arraylength
  load 6
  iadd
  iconst 4
  iadd
  getstatic jk/www/HttpEngine.doc:[B
  arraylength
  iadd
  newarr "[B"
  store 7
  iconst 0
  store 8
cp1:
  load 8
  load 4
  arraylength
  if_ge cp1done
  load 7
  load 8
  load 4
  load 8
  aload
  astore
  load 8
  iconst 1
  iadd
  store 8
  jmp cp1
cp1done:
  load 6
  iconst 1
  isub
  store 1
cp2:
  load 1
  iconst 0
  if_lt cp2done
  load 7
  load 8
  load 5
  load 1
  aload
  astore
  load 8
  iconst 1
  iadd
  store 8
  load 1
  iconst 1
  isub
  store 1
  jmp cp2
cp2done:
  load 7
  load 8
  iconst 13
  astore
  load 8
  iconst 1
  iadd
  store 8
  load 7
  load 8
  iconst 10
  astore
  load 8
  iconst 1
  iadd
  store 8
  load 7
  load 8
  iconst 13
  astore
  load 8
  iconst 1
  iadd
  store 8
  load 7
  load 8
  iconst 10
  astore
  load 8
  iconst 1
  iadd
  store 8
  iconst 0
  store 1
cp3:
  load 1
  getstatic jk/www/HttpEngine.doc:[B
  arraylength
  if_ge done
  load 7
  load 8
  getstatic jk/www/HttpEngine.doc:[B
  load 1
  aload
  astore
  load 8
  iconst 1
  iadd
  store 8
  load 1
  iconst 1
  iadd
  store 1
  jmp cp3
done:
  load 7
  retv
bad:
  iconst 0
  newarr "[B"
  retv
.end
`

// JWS is the all-interpreted server.
type JWS struct {
	K      *core.Kernel
	Domain *core.Domain
}

// NewJWS builds the engine domain and installs doc as the served document.
func NewJWS(k *core.Kernel, doc []byte) (*JWS, error) {
	engine, err := vmkit.AssembleBytes(httpEngineSrc)
	if err != nil {
		return nil, err
	}
	d, err := k.NewDomain(core.DomainConfig{
		Name:    "jws",
		Classes: map[string][]byte{"jk/www/HttpEngine": engine},
	})
	if err != nil {
		return nil, err
	}
	j := &JWS{K: k, Domain: d}
	if err := j.SetDoc(doc); err != nil {
		return nil, err
	}
	return j, nil
}

// SetDoc replaces the served document.
func (j *JWS) SetDoc(doc []byte) error {
	task := j.K.NewTask(j.Domain, "setdoc")
	defer task.Close()
	arr, err := j.Domain.NS.NewArray("[B", len(doc))
	if err != nil {
		return err
	}
	copy(arr.Bytes, doc)
	_, err = task.CallStatic("jk/www/HttpEngine.setDoc:([B)V", vmkit.RefVal(arr))
	return err
}

// HandleWith processes one raw HTTP request through the bytecode engine
// using an existing task (task must belong to j.Domain's kernel and be on
// the calling goroutine).
func (j *JWS) HandleWith(task *core.Task, rawRequest []byte) ([]byte, error) {
	arr, err := j.Domain.NS.NewArray("[B", len(rawRequest))
	if err != nil {
		return nil, err
	}
	copy(arr.Bytes, rawRequest)
	v, err := task.CallStatic("jk/www/HttpEngine.handle:([B)[B", vmkit.RefVal(arr))
	if err != nil {
		return nil, err
	}
	if v.R == nil {
		return nil, fmt.Errorf("jws: engine returned null")
	}
	return v.R.Bytes, nil
}

// Serve accepts connections and answers HTTP/1.0-style requests (with
// keep-alive) until the listener closes.
func (j *JWS) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go j.serveConn(conn)
	}
}

func (j *JWS) serveConn(conn net.Conn) {
	defer conn.Close()
	task := j.K.NewTask(j.Domain, "jws-conn")
	defer task.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		req, err := readRequestBytes(br)
		if err != nil {
			return
		}
		resp, err := j.HandleWith(task, req)
		if err != nil {
			return
		}
		if _, err := bw.Write(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// readRequestBytes reads one request's header block (through the blank
// line). Bodies are not supported by the toy engine.
func readRequestBytes(br *bufio.Reader) ([]byte, error) {
	var buf bytes.Buffer
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return nil, err
		}
		buf.Write(line)
		if len(bytes.TrimRight(line, "\r\n")) == 0 {
			return buf.Bytes(), nil
		}
		if buf.Len() > 1<<16 {
			return nil, fmt.Errorf("jws: request too large")
		}
	}
}
