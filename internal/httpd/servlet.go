// Package httpd implements the paper's §4: an extensible HTTP server built
// on the J-Kernel. An off-the-shelf front server (net/http, standing in
// for IIS) hosts a bridge (the ISAPI-extension analog) that forwards each
// request through LRMI to a user servlet running in its own protection
// domain. Servlets are uploaded dynamically as bytecode, each into a fresh
// domain, and can be terminated and hot-replaced without restarting the
// server — the failure-isolation and clean-termination properties the
// CS314 experience motivated.
//
// The package also provides the two baselines of Table 5: a plain static
// server ("IIS") and an all-interpreted server whose request path runs
// entirely in VM bytecode ("JWS", which ran without a JIT).
package httpd

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"jkernel/internal/core"
)

// Request is the servlet-visible request. It crosses domains by copy.
type Request struct {
	Method  string
	Path    string
	Query   string
	Headers map[string]string
	Body    []byte
}

// Response is the servlet's reply. It crosses domains by copy.
type Response struct {
	Status  int
	Headers map[string]string
	Body    []byte
}

// Servlet is the native (Go) servlet interface; VM servlets implement the
// shared jk/servlet/Servlet interface instead.
type Servlet interface {
	Service(req *Request) (*Response, error)
}

// nativeServletAdapter exposes a Servlet through a native capability (its
// exported method set defines the remote surface).
type nativeServletAdapter struct{ s Servlet }

// Service forwards to the wrapped servlet.
func (a *nativeServletAdapter) Service(req *Request) (*Response, error) {
	return a.s.Service(req)
}

// RegisterTypes registers the servlet API types with a kernel for
// fast-copy transfer (maps make the graphs non-tree, so use the table),
// and for wire transfer so servlet requests can also cross process
// boundaries through internal/remote. Call it in worker kernels that host
// remote servlets, too.
func RegisterTypes(k *core.Kernel) {
	k.RegisterFastCopy(&Request{}, true)
	k.RegisterFastCopy(&Response{}, true)
	k.RegisterWireType("jk.httpd.Request", Request{})
	k.RegisterWireType("jk.httpd.Response", Response{})
}

// route is one mounted servlet.
type route struct {
	name   string
	prefix string
	cap    *core.Capability
	domain *core.Domain
	isVM   bool
}

// Router maps URL prefixes to servlet capabilities, longest prefix first.
type Router struct {
	mu     sync.RWMutex
	routes []*route
}

// Mount binds a servlet capability to a URL prefix.
func (r *Router) Mount(name, prefix string, cap *core.Capability, d *core.Domain, isVM bool) error {
	if !strings.HasPrefix(prefix, "/") {
		return fmt.Errorf("httpd: prefix must start with /: %q", prefix)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rt := range r.routes {
		if rt.name == name {
			return fmt.Errorf("httpd: servlet %q already mounted", name)
		}
	}
	r.routes = append(r.routes, &route{name: name, prefix: prefix, cap: cap, domain: d, isVM: isVM})
	sort.SliceStable(r.routes, func(i, j int) bool {
		return len(r.routes[i].prefix) > len(r.routes[j].prefix)
	})
	return nil
}

// unmountRoute removes exactly rt (identity compare), reporting whether it
// was still mounted. Fault-driven unmounts use it so a re-placed servlet
// mounted under the same name is never removed by a stale fault.
func (r *Router) unmountRoute(rt *route) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, x := range r.routes {
		if x == rt {
			r.routes = append(r.routes[:i], r.routes[i+1:]...)
			return true
		}
	}
	return false
}

// Remount atomically replaces the route mounted as name with a fresh
// remote-backed one, or mounts it new. Lookups never observe a gap,
// which is what keeps control-plane failover 503→200 instead of 404.
func (r *Router) Remount(name, prefix string, cap *core.Capability) error {
	if !strings.HasPrefix(prefix, "/") {
		return fmt.Errorf("httpd: prefix must start with /: %q", prefix)
	}
	nrt := &route{name: name, prefix: prefix, cap: cap}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rt := range r.routes {
		if rt.name == name {
			if rt.domain != nil || rt.isVM {
				return fmt.Errorf("httpd: servlet %q is locally hosted; unmount it first", name)
			}
			r.routes[i] = nrt
			sort.SliceStable(r.routes, func(i, j int) bool {
				return len(r.routes[i].prefix) > len(r.routes[j].prefix)
			})
			return nil
		}
	}
	r.routes = append(r.routes, nrt)
	sort.SliceStable(r.routes, func(i, j int) bool {
		return len(r.routes[i].prefix) > len(r.routes[j].prefix)
	})
	return nil
}

// Unmount removes a servlet by name and returns its route.
func (r *Router) Unmount(name string) *route {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rt := range r.routes {
		if rt.name == name {
			r.routes = append(r.routes[:i], r.routes[i+1:]...)
			return rt
		}
	}
	return nil
}

// Lookup finds the longest-prefix route for path.
func (r *Router) Lookup(path string) *route {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, rt := range r.routes {
		if strings.HasPrefix(path, rt.prefix) {
			return rt
		}
	}
	return nil
}

// Names lists mounted servlet names.
func (r *Router) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.routes))
	for _, rt := range r.routes {
		out = append(out, rt.name)
	}
	sort.Strings(out)
	return out
}
