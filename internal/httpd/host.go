package httpd

import (
	"fmt"
	"sync"

	"jkernel/internal/core"
	"jkernel/internal/vmkit"
)

// ServletHost is the part of servlet hosting that does not need a front
// server: the shared jk/servlet/Servlet interface and the machinery to
// instantiate uploaded VM bundles into fresh domains. The Bridge embeds
// one; worker kernels in a cluster use one directly so uploaded servlets
// can be placed on remote kernels (the remote-playground model).
type ServletHost struct {
	K         *core.Kernel
	www       *core.Domain // defines the shared servlet interface
	servletSC *core.SharedClass
}

// NewServletHost wires servlet hosting into kernel k: it registers the
// servlet wire/copy types, assembles the shared servlet interface, and
// shares it for uploaded domains to implement.
func NewServletHost(k *core.Kernel) (*ServletHost, error) {
	RegisterTypes(k)
	iface, err := vmkit.AssembleBytes(servletIfaceSrc)
	if err != nil {
		return nil, err
	}
	www, err := k.NewDomain(core.DomainConfig{
		Name:    "www-system",
		Classes: map[string][]byte{"jk/servlet/Servlet": iface},
	})
	if err != nil {
		return nil, err
	}
	sc, err := k.ShareClasses(www, "jk/servlet/Servlet")
	if err != nil {
		return nil, err
	}
	return &ServletHost{K: k, www: www, servletSC: sc}, nil
}

// ServletInterface returns the shared jk/servlet/Servlet group, for
// domains created outside the host.
func (h *ServletHost) ServletInterface() *core.SharedClass { return h.servletSC }

// InstantiateVM creates a fresh domain, loads the class bundle into it,
// and instantiates mainClass (which must implement jk/servlet/Servlet)
// behind a VM capability. The caller decides what to do with the pair —
// the Bridge mounts it, a cluster worker wraps it for the wire.
func (h *ServletHost) InstantiateVM(name, mainClass string, bundle map[string][]byte) (*core.Domain, *core.Capability, error) {
	d, err := h.K.NewDomain(core.DomainConfig{
		Name:    "servlet-" + name,
		Classes: bundle,
		Shared:  []*core.SharedClass{h.servletSC},
	})
	if err != nil {
		return nil, nil, err
	}
	cls, err := d.NS.Resolve(mainClass)
	if err != nil {
		d.Terminate("bad servlet class")
		return nil, nil, fmt.Errorf("httpd: servlet class: %w", err)
	}
	obj, ierr := vmkit.NewInstance(cls)
	if ierr != nil {
		d.Terminate("servlet instantiation failed")
		return nil, nil, ierr
	}
	cap, err := h.K.CreateVMCapability(d, obj)
	if err != nil {
		d.Terminate("servlet capability failed")
		return nil, nil, fmt.Errorf("httpd: servlet capability: %w", err)
	}
	return d, cap, nil
}

// ServletCapability exposes a native Go servlet through a capability owned
// by domain d, following the servlet invocation contract (a Service method
// taking *Request and returning *Response). The capability can be mounted
// locally or exported across the wire to a front kernel.
func ServletCapability(k *core.Kernel, d *core.Domain, s Servlet) (*core.Capability, error) {
	return k.CreateNativeCapability(d, &nativeServletAdapter{s: s})
}

// vmCapServlet adapts a VM servlet capability to the native Servlet
// interface: Service enters a host task and forwards through the VM
// calling convention (service(method, pathAndQuery, body) -> body). It is
// how a worker kernel serves an uploaded VM servlet to a remote front
// server, whose wire dispatch speaks the native contract.
type vmCapServlet struct {
	k     *core.Kernel
	cap   *core.Capability
	tasks sync.Pool
}

// VMServlet wraps a VM servlet capability as a native Servlet. Tasks enter
// taskDomain (typically the deployer's own domain) for the duration of
// each request.
func VMServlet(k *core.Kernel, taskDomain *core.Domain, cap *core.Capability) Servlet {
	v := &vmCapServlet{k: k, cap: cap}
	v.tasks.New = func() any {
		return k.NewDetachedTask(taskDomain, "vm-servlet")
	}
	return v
}

// Service forwards one request into the VM servlet domain.
func (v *vmCapServlet) Service(req *Request) (*Response, error) {
	task := v.tasks.Get().(*core.Task)
	defer v.tasks.Put(task)
	uri := req.Path
	if req.Query != "" {
		uri += "?" + req.Query
	}
	out, err := v.cap.InvokeVM(task, "service", req.Method, uri, req.Body)
	if err != nil {
		return nil, err
	}
	data, _ := out.([]byte)
	return &Response{Status: 200, Body: data}, nil
}
