package httpd

import (
	"fmt"

	"jkernel/internal/core"
	"jkernel/internal/vmkit"
)

// DocServletSource returns the assembly for a VM servlet that serves a
// fixed in-memory document — the workload of Table 5's "IIS + J-Kernel"
// row: the bridge LRMIs into the servlet domain, and the body crosses back
// under the copying calling convention.
//
// The servlet keeps its document in a static of its (domain-local) class;
// it is installed via the configure([B)V convention.
func DocServletSource(className string) string {
	return fmt.Sprintf(`
.class %[1]s implements jk/servlet/Servlet
.field static body [B
.method static configure ([B)V stack 2 locals 0
  load 0
  putstatic %[1]s.body:[B
  ret
.end
.method service (Ljk/lang/String;Ljk/lang/String;[B)[B stack 2 locals 0
  getstatic %[1]s.body:[B
  retv
.end
`, className)
}

// Configure invokes the optional static configure([B)V convention on a
// servlet domain's main class.
func Configure(k *core.Kernel, d *core.Domain, mainClass string, config []byte) error {
	cls, err := d.NS.Resolve(mainClass)
	if err != nil {
		return err
	}
	if cls.MethodBySig("configure", "([B)V") == nil {
		return fmt.Errorf("httpd: %s has no configure([B)V", mainClass)
	}
	task := k.NewTask(d, "configure")
	defer task.Close()
	arr, err := d.NS.NewArray("[B", len(config))
	if err != nil {
		return err
	}
	copy(arr.Bytes, config)
	_, err = task.CallStatic(mainClass+".configure:([B)V", vmkit.RefVal(arr))
	return err
}

// MountDocServlet uploads a document-serving VM servlet and configures it
// with doc. It returns the servlet domain.
func (b *Bridge) MountDocServlet(name, prefix string, doc []byte) (*core.Domain, error) {
	className := "DocServlet"
	src := DocServletSource(className)
	data, err := vmkit.AssembleBytes(src)
	if err != nil {
		return nil, err
	}
	d, err := b.UploadVM(name, prefix, className, map[string][]byte{className: data})
	if err != nil {
		return nil, err
	}
	if err := Configure(b.K, d, className, doc); err != nil {
		b.TerminateServlet(name)
		return nil, err
	}
	return d, nil
}
