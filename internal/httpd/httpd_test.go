package httpd

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"jkernel/internal/core"
	"jkernel/internal/vmkit"
)

func newLocalListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

func newBridge(t *testing.T) (*core.Kernel, *Bridge) {
	t.Helper()
	k := core.MustNew(core.Options{})
	b, err := NewBridge(k)
	if err != nil {
		t.Fatal(err)
	}
	return k, b
}

type helloServlet struct{ greeting string }

func (h *helloServlet) Service(req *Request) (*Response, error) {
	return &Response{
		Status: 200,
		Body:   []byte(h.greeting + " " + req.Path),
	}, nil
}

type crashServlet struct{}

func (c *crashServlet) Service(req *Request) (*Response, error) {
	panic("servlet bug")
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res, string(body)
}

func TestNativeServletRoundTrip(t *testing.T) {
	_, b := newBridge(t)
	if _, err := b.MountNative("hello", "/hello", &helloServlet{greeting: "hi"}); err != nil {
		t.Fatal(err)
	}
	res, body := get(t, b, "/hello/world")
	if res.StatusCode != 200 || body != "hi /hello/world" {
		t.Errorf("got %d %q", res.StatusCode, body)
	}
	res, _ = get(t, b, "/nope")
	if res.StatusCode != 404 {
		t.Errorf("unrouted path: %d", res.StatusCode)
	}
}

func TestServletCrashIsolated(t *testing.T) {
	_, b := newBridge(t)
	if _, err := b.MountNative("boom", "/boom", &crashServlet{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.MountNative("ok", "/ok", &helloServlet{greeting: "ok"}); err != nil {
		t.Fatal(err)
	}
	res, body := get(t, b, "/boom")
	if res.StatusCode != http.StatusBadGateway {
		t.Errorf("crash status = %d (%s)", res.StatusCode, body)
	}
	// The server and the other servlet live on.
	res, _ = get(t, b, "/ok")
	if res.StatusCode != 200 {
		t.Errorf("healthy servlet harmed by sibling crash: %d", res.StatusCode)
	}
}

func TestVMDocServlet(t *testing.T) {
	_, b := newBridge(t)
	doc := []byte("<html>doc body</html>")
	if _, err := b.MountDocServlet("doc", "/doc", doc); err != nil {
		t.Fatal(err)
	}
	res, body := get(t, b, "/doc/index.html")
	if res.StatusCode != 200 || body != string(doc) {
		t.Errorf("got %d %q", res.StatusCode, body)
	}
}

func TestUploadTerminateReplaceCycle(t *testing.T) {
	_, b := newBridge(t)
	mk := func(msg string) []byte {
		src := fmt.Sprintf(`
.class UserServlet implements jk/servlet/Servlet
.method service (Ljk/lang/String;Ljk/lang/String;[B)[B stack 4 locals 0
  sconst %q
  invokevirtual jk/lang/String.getBytes:()[B
  retv
.end
`, msg)
		data, err := vmkit.AssembleBytes(src)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// Upload v1 through the admin HTTP surface, like a real user.
	bundle := EncodeBundle(map[string][]byte{"UserServlet": mk("version one")})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost,
		"/admin/upload?name=user&prefix=/user&main=UserServlet", bytes.NewReader(bundle))
	b.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("upload: %d %s", rec.Code, rec.Body.String())
	}
	if _, body := get(t, b, "/user"); body != "version one" {
		t.Fatalf("v1 body = %q", body)
	}

	// Terminate it; requests now fail but the server survives.
	rec = httptest.NewRecorder()
	b.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/admin/servlet?name=user", nil))
	if rec.Code != 200 {
		t.Fatalf("terminate: %d", rec.Code)
	}
	if res, _ := get(t, b, "/user"); res.StatusCode != 404 {
		t.Errorf("after terminate: %d, want 404 (unmounted)", res.StatusCode)
	}

	// Hot-replace with v2 — no server restart, fresh domain.
	bundle = EncodeBundle(map[string][]byte{"UserServlet": mk("version two")})
	rec = httptest.NewRecorder()
	b.ServeHTTP(rec, httptest.NewRequest(http.MethodPost,
		"/admin/upload?name=user2&prefix=/user&main=UserServlet", bytes.NewReader(bundle)))
	if rec.Code != 200 {
		t.Fatalf("re-upload: %d %s", rec.Code, rec.Body.String())
	}
	if _, body := get(t, b, "/user"); body != "version two" {
		t.Errorf("v2 body = %q", body)
	}
}

func TestUploadRejectsBadBytecode(t *testing.T) {
	_, b := newBridge(t)
	// Type-confused servlet: returns an int where [B is declared.
	src := `
.class EvilServlet implements jk/servlet/Servlet
.method service (Ljk/lang/String;Ljk/lang/String;[B)[B stack 4 locals 0
  iconst 1234
  retv
.end
`
	data, err := vmkit.AssembleBytes(src)
	if err != nil {
		t.Fatal(err)
	}
	bundle := EncodeBundle(map[string][]byte{"EvilServlet": data})
	rec := httptest.NewRecorder()
	b.ServeHTTP(rec, httptest.NewRequest(http.MethodPost,
		"/admin/upload?name=evil&prefix=/evil&main=EvilServlet", bytes.NewReader(bundle)))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("verifier-rejected upload returned %d: %s", rec.Code, rec.Body.String())
	}
}

func TestJWSHandlesRequests(t *testing.T) {
	k := core.MustNew(core.Options{})
	doc := []byte(strings.Repeat("x", 100))
	jws, err := NewJWS(k, doc)
	if err != nil {
		t.Fatal(err)
	}
	task := k.NewTask(jws.Domain, "test")
	defer task.Close()
	resp, err := jws.HandleWith(task, []byte("GET /index.html HTTP/1.0\r\n\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(resp)
	if !strings.HasPrefix(s, "HTTP/1.0 200 OK\r\n") {
		t.Errorf("status line: %q", s[:min(40, len(s))])
	}
	if !strings.Contains(s, "Content-Length: 100\r\n") {
		t.Errorf("content length missing: %q", s[:80])
	}
	if !strings.HasSuffix(s, string(doc)) {
		t.Error("body missing")
	}
}

func TestJWSOverRealSocket(t *testing.T) {
	k := core.MustNew(core.Options{})
	jws, err := NewJWS(k, []byte("hello jws"))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := newLocalListener()
	if err != nil {
		t.Fatal(err)
	}
	go jws.Serve(ln)
	defer ln.Close()

	resp, err := http.Get("http://" + ln.Addr().String() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello jws" {
		t.Errorf("body = %q", body)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	in := map[string][]byte{"A": {1, 2}, "B": {}, "C": []byte("xyz")}
	out, err := DecodeBundle(EncodeBundle(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || string(out["C"]) != "xyz" || len(out["A"]) != 2 {
		t.Errorf("round trip = %v", out)
	}
	if _, err := DecodeBundle([]byte{1, 2, 3}); err == nil {
		t.Error("truncated bundle accepted")
	}
	if _, err := DecodeBundle(nil); err == nil {
		t.Error("empty bundle accepted")
	}
}

func TestStaticHandler(t *testing.T) {
	res, body := get(t, StaticHandler([]byte("static doc")), "/any")
	if res.StatusCode != 200 || body != "static doc" {
		t.Errorf("got %d %q", res.StatusCode, body)
	}
}
