package cs314

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func assemble(t *testing.T, unit, src string) *Object {
	t.Helper()
	o, err := AssembleC3(unit, src)
	if err != nil {
		t.Fatalf("assemble %s: %v", unit, err)
	}
	return o
}

func linkRun(t *testing.T, maxSteps int64, objs ...*Object) []int32 {
	t.Helper()
	exe, err := Link(objs...)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	out, err := RunProgram(exe, maxSteps)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func TestEncodeDecodeInstr(t *testing.T) {
	w := Encode(OpAddi, 3, 7, 0, -42)
	op, rd, rs, _, imm, _ := Decode(w)
	if op != OpAddi || rd != 3 || rs != 7 || imm != -42 {
		t.Errorf("decode = %v r%d r%d %d", op, rd, rs, imm)
	}
	j := EncodeJ(OpJal, 12345)
	op2, _, _, _, _, addr := Decode(j)
	if op2 != OpJal || addr != 12345 {
		t.Errorf("jal decode = %v %d", op2, addr)
	}
}

func TestAssembleAndRunBasics(t *testing.T) {
	out := linkRun(t, 1000, assemble(t, "m", `
.global main
main:
  li r5, 6
  li r6, 7
  mul r7, r5, r6
  out r7
  halt
`))
	if len(out) != 1 || out[0] != 42 {
		t.Errorf("out = %v", out)
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 = 55.
	out := linkRun(t, 10000, assemble(t, "m", `
.global main
main:
  li r5, 0      # sum
  li r6, 1      # i
  li r7, 11
loop:
  beq r6, r7, done
  add r5, r5, r6
  addi r6, r6, 1
  beq r0, r0, loop
done:
  out r5
  halt
`))
	if len(out) != 1 || out[0] != 55 {
		t.Errorf("out = %v", out)
	}
}

func TestDataSectionAndLa(t *testing.T) {
	out := linkRun(t, 1000, assemble(t, "m", `
.global main
.data
value:
  .word 1234
main2_pad:
  .word 0
.text
main:
  la r5, value
  lw r6, 0(r5)
  out r6
  halt
`))
	if len(out) != 1 || out[0] != 1234 {
		t.Errorf("out = %v", out)
	}
}

func TestCrossUnitLinking(t *testing.T) {
	lib := assemble(t, "lib", `
.global double
double:
  add r1, r1, r1
  jr r14
`)
	main := assemble(t, "main", `
.global main
main:
  addi r13, r13, -4
  sw r14, 0(r13)
  li r1, 21
  jal double
  out r1
  lw r14, 0(r13)
  addi r13, r13, 4
  jr r14
`)
	out := linkRun(t, 1000, main, lib)
	if len(out) != 1 || out[0] != 42 {
		t.Errorf("out = %v", out)
	}
	// Order independence.
	out = linkRun(t, 1000, lib, main)
	if len(out) != 1 || out[0] != 42 {
		t.Errorf("out (lib first) = %v", out)
	}
}

func TestLinkErrors(t *testing.T) {
	undef := assemble(t, "m", `
.global main
main:
  jal missing
  halt
`)
	if _, err := Link(undef); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("undefined symbol: %v", err)
	}
	a := assemble(t, "a", ".global main\nmain:\n  halt\n")
	b := assemble(t, "b", ".global main\nmain:\n  halt\n")
	if _, err := Link(a, b); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate symbol: %v", err)
	}
	noMain := assemble(t, "n", ".global f\nf:\n  halt\n")
	if _, err := Link(noMain); err == nil || !strings.Contains(err.Error(), "main") {
		t.Errorf("missing main: %v", err)
	}
}

func TestObjectCodecRoundTrip(t *testing.T) {
	o := assemble(t, "rt", `
.global main
.global helper
.data
tbl:
  .word 7
  .space 8
.text
main:
  la r5, tbl
  jal helper
  halt
helper:
  jr r14
`)
	dec, err := DecodeObject(EncodeObject(o))
	if err != nil {
		t.Fatal(err)
	}
	if string(EncodeObject(dec)) != string(EncodeObject(o)) {
		t.Error("object codec not stable")
	}
	if !dec.Symbols["main"].Global || dec.Symbols["tbl"].Global {
		t.Error("global flags lost")
	}
	if _, err := DecodeObject([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestEmulatorFaults(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"div zero", ".global main\nmain:\n  li r5, 1\n  div r6, r5, r0\n  halt\n", "division by zero"},
		{"oob store", ".global main\nmain:\n  li r5, -8\n  sw r5, 0(r5)\n  halt\n", "out of bounds"},
		{"text store", ".global main\nmain:\n  li r5, 0\n  sw r5, 0(r5)\n  halt\n", "text segment"},
		{"step limit", ".global main\nmain:\nl:\n  beq r0, r0, l\n", "step limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exe, err := Link(assemble(t, "m", tc.src))
			if err != nil {
				t.Fatal(err)
			}
			_, err = RunProgram(exe, 1000)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("got %v, want %q", err, tc.want)
			}
		})
	}
}

func compileRun(t *testing.T, src string, maxSteps int64) []int32 {
	t.Helper()
	asm, err := CompileMiniC(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	obj, err := AssembleC3("prog", asm)
	if err != nil {
		t.Fatalf("assemble compiled code: %v\n%s", err, asm)
	}
	return linkRun(t, maxSteps, obj)
}

func TestMiniCArithmetic(t *testing.T) {
	out := compileRun(t, `
func main() {
  print(2 + 3 * 4);
  print((2 + 3) * 4);
  print(10 / 3);
  print(10 % 3);
  print(-5 + 2);
}
`, 10000)
	want := []int32{14, 20, 3, 1, -3}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestMiniCControlFlow(t *testing.T) {
	out := compileRun(t, `
func main() {
  var i = 0;
  var sum = 0;
  while (i < 10) {
    i = i + 1;
    if (i % 2 == 0) {
      sum = sum + i;
    } else {
      sum = sum - 1;
    }
  }
  print(sum);
  if (sum >= 25 && sum <= 25) { print(1); }
  if (sum != 25 || 0 == 0) { print(2); }
  if (!(sum == 25)) { print(3); }
}
`, 100000)
	// sum = (2+4+6+8+10) - 5 = 25
	want := []int32{25, 1, 2}
	if len(out) != len(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestMiniCFunctionsAndRecursion(t *testing.T) {
	out := compileRun(t, `
func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func max(a, b) {
  if (a > b) { return a; }
  return b;
}
func main() {
  print(fib(15));
  print(max(3, 9));
  print(max(9, 3));
}
`, 5_000_000)
	want := []int32{610, 9, 9}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}

func TestMiniCErrors(t *testing.T) {
	bad := []string{
		"func main() { print(x); }",       // undefined variable
		"func main() { x = 1; }",          // undeclared assignment
		"func main() { print(1+); }",      // syntax
		"func f(a,b,c,d,e) { return 0; }", // too many params
		"func main() { ",                  // unterminated
		"",                                // empty
	}
	for _, src := range bad {
		if _, err := CompileMiniC(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

// Property: MiniC arithmetic agrees with Go on random expressions of the
// shape ((a OP b) OP c) with guarded divisors.
func TestQuickMiniCArithmeticAgreesWithGo(t *testing.T) {
	type inputs struct {
		A, B, C  int16
		Op1, Op2 uint8
	}
	eval := func(op uint8, x, y int32) int32 {
		switch op % 4 {
		case 0:
			return x + y
		case 1:
			return x - y
		case 2:
			return x * y
		default:
			if y == 0 {
				return x
			}
			return x / y
		}
	}
	opStr := func(op uint8, y int32) (string, int32) {
		switch op % 4 {
		case 0:
			return "+", y
		case 1:
			return "-", y
		case 2:
			return "*", y
		default:
			if y == 0 {
				return "+", 0 // mirror the guard
			}
			return "/", y
		}
	}
	f := func(in inputs) bool {
		a, b, c := int32(in.A), int32(in.B), int32(in.C)
		op1, y1 := opStr(in.Op1, b)
		want1 := eval(in.Op1, a, b)
		if op1 == "+" && y1 == 0 && in.Op1%4 == 3 {
			want1 = a
		}
		op2, y2 := opStr(in.Op2, c)
		want := eval(in.Op2, want1, c)
		if op2 == "+" && y2 == 0 && in.Op2%4 == 3 {
			want = want1
		}
		src := "func main() { print((" +
			itoa(a) + " " + op1 + " " + itoa(y1) + ") " + op2 + " " + itoa(y2) + "); }"
		asm, err := CompileMiniC(src)
		if err != nil {
			return false
		}
		obj, err := AssembleC3("q", asm)
		if err != nil {
			return false
		}
		exe, err := Link(obj)
		if err != nil {
			return false
		}
		out, err := RunProgram(exe, 100000)
		if err != nil || len(out) != 1 {
			return false
		}
		return out[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func itoa(v int32) string {
	if v < 0 {
		return "(0 - " + itoaU(-int64(v)) + ")"
	}
	return itoaU(int64(v))
}

func itoaU(v int64) string {
	return strconv.FormatInt(v, 10)
}
