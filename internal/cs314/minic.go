package cs314

import (
	"fmt"
	"strconv"
	"strings"
)

// MiniC is the course compiler: a small imperative language compiled to C3
// assembly. Everything is a 32-bit int.
//
//	func name(a, b) { stmts }
//	var x = expr;      x = expr;
//	if (e) { .. } else { .. }      while (e) { .. }
//	return e;          print(e);   f(a, b);
//	operators: || && == != < <= > >= + - * / %  unary - !
//
// Calling convention: arguments in r1..r4, result in r1, r14 link, r13
// stack. Locals live in the frame; expressions evaluate on a register
// stack r5..r12 (deep expressions spill to an error, as in the course
// original).

// CompileMiniC compiles a source unit to C3 assembly text.
func CompileMiniC(src string) (string, error) {
	toks, err := lexMiniC(src)
	if err != nil {
		return "", err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return "", err
	}
	g := &codegen{}
	if err := g.program(prog); err != nil {
		return "", err
	}
	return g.out.String(), nil
}

// --- lexer ---------------------------------------------------------------

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNum
	tokPunct
)

type token struct {
	kind tokKind
	text string
	line int
}

var punct2 = []string{"||", "&&", "==", "!=", "<=", ">="}

func lexMiniC(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNum, src[i:j], line})
			i = j
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(src) && (src[j] == '_' || src[j] >= 'a' && src[j] <= 'z' ||
				src[j] >= 'A' && src[j] <= 'Z' || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		default:
			matched := false
			if i+1 < len(src) {
				two := src[i : i+2]
				for _, p := range punct2 {
					if two == p {
						toks = append(toks, token{tokPunct, two, line})
						i += 2
						matched = true
						break
					}
				}
			}
			if matched {
				continue
			}
			if strings.IndexByte("(){};,=+-*/%<>!", c) >= 0 {
				toks = append(toks, token{tokPunct, string(c), line})
				i++
				continue
			}
			return nil, fmt.Errorf("minic: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tokEOF, "", line})
	return toks, nil
}

// --- AST ------------------------------------------------------------------

type funcDef struct {
	name   string
	params []string
	body   []stmt
}

type stmt interface{ isStmt() }

type (
	varStmt struct {
		name string
		init expr
	}
	assignStmt struct {
		name string
		val  expr
	}
	ifStmt struct {
		cond      expr
		then, els []stmt
	}
	whileStmt struct {
		cond expr
		body []stmt
	}
	returnStmt struct{ val expr }
	printStmt  struct{ val expr }
	exprStmt   struct{ val expr }
)

func (varStmt) isStmt()    {}
func (assignStmt) isStmt() {}
func (ifStmt) isStmt()     {}
func (whileStmt) isStmt()  {}
func (returnStmt) isStmt() {}
func (printStmt) isStmt()  {}
func (exprStmt) isStmt()   {}

type expr interface{ isExpr() }

type (
	numExpr struct{ v int32 }
	varExpr struct{ name string }
	binExpr struct {
		op   string
		l, r expr
	}
	unExpr struct {
		op string
		e  expr
	}
	callExpr struct {
		name string
		args []expr
	}
)

func (numExpr) isExpr()  {}
func (varExpr) isExpr()  {}
func (binExpr) isExpr()  {}
func (unExpr) isExpr()   {}
func (callExpr) isExpr() {}

// --- parser ----------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(f string, a ...any) error {
	return fmt.Errorf("minic: line %d: %s", p.peek().line, fmt.Sprintf(f, a...))
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("minic: line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) parseProgram() ([]*funcDef, error) {
	var funcs []*funcDef
	for p.peek().kind != tokEOF {
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		funcs = append(funcs, f)
	}
	if len(funcs) == 0 {
		return nil, fmt.Errorf("minic: empty program")
	}
	return funcs, nil
}

func (p *parser) parseFunc() (*funcDef, error) {
	if err := p.expect("func"); err != nil {
		return nil, err
	}
	name := p.next()
	if name.kind != tokIdent {
		return nil, p.errf("expected function name")
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := &funcDef{name: name.text}
	for p.peek().text != ")" {
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errf("expected parameter name")
		}
		f.params = append(f.params, t.text)
		if p.peek().text == "," {
			p.next()
		}
	}
	p.next() // ")"
	if len(f.params) > 4 {
		return nil, p.errf("more than 4 parameters in %s", f.name)
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

func (p *parser) parseBlock() ([]stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for p.peek().text != "}" {
		if p.peek().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.next() // "}"
	return out, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.peek()
	switch {
	case t.text == "var":
		p.next()
		name := p.next()
		if name.kind != tokIdent {
			return nil, p.errf("expected variable name")
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return varStmt{name: name.text, init: e}, p.expect(";")
	case t.text == "if":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []stmt
		if p.peek().text == "else" {
			p.next()
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return ifStmt{cond: cond, then: then, els: els}, nil
	case t.text == "while":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return whileStmt{cond: cond, body: body}, nil
	case t.text == "return":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return returnStmt{val: e}, p.expect(";")
	case t.text == "print":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return printStmt{val: e}, p.expect(";")
	case t.kind == tokIdent && p.toks[p.pos+1].text == "=":
		name := p.next().text
		p.next() // "="
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return assignStmt{name: name, val: e}, p.expect(";")
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return exprStmt{val: e}, p.expect(";")
	}
}

// Precedence climbing.
var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3,
	"<": 4, "<=": 4, ">": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) parseExpr() (expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek().text
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = binExpr{op: op, l: lhs, r: rhs}
	}
}

func (p *parser) parseUnary() (expr, error) {
	switch p.peek().text {
	case "-":
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unExpr{op: "-", e: e}, nil
	case "!":
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unExpr{op: "!", e: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNum:
		n, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return numExpr{v: int32(n)}, nil
	case t.kind == tokIdent:
		if p.peek().text == "(" {
			p.next()
			var args []expr
			for p.peek().text != ")" {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.peek().text == "," {
					p.next()
				}
			}
			p.next() // ")"
			if len(args) > 4 {
				return nil, p.errf("more than 4 arguments to %s", t.text)
			}
			return callExpr{name: t.text, args: args}, nil
		}
		return varExpr{name: t.text}, nil
	case t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	default:
		return nil, fmt.Errorf("minic: line %d: unexpected %q", t.line, t.text)
	}
}

// --- code generation --------------------------------------------------------

const (
	firstScratch = 5
	lastScratch  = 12
)

type codegen struct {
	out    strings.Builder
	fn     *funcDef
	locals map[string]int32 // frame offsets (bytes from sp)
	frame  int32
	label  int
	reg    int // next free scratch register
}

func (g *codegen) emitf(f string, a ...any) {
	fmt.Fprintf(&g.out, f+"\n", a...)
}

func (g *codegen) newLabel(hint string) string {
	g.label++
	return fmt.Sprintf("%s_%s_%d", g.fn.name, hint, g.label)
}

func (g *codegen) push() (int, error) {
	if g.reg > lastScratch {
		return 0, fmt.Errorf("minic: expression too deep in %s", g.fn.name)
	}
	r := g.reg
	g.reg++
	return r, nil
}

func (g *codegen) pop() { g.reg-- }

func (g *codegen) program(funcs []*funcDef) error {
	g.emitf(".text")
	for _, f := range funcs {
		g.emitf(".global %s", f.name)
	}
	for _, f := range funcs {
		if err := g.function(f); err != nil {
			return err
		}
	}
	return nil
}

// collectLocals assigns frame slots to params and var declarations.
func collectLocals(f *funcDef) map[string]int32 {
	locals := map[string]int32{}
	off := int32(0)
	add := func(name string) {
		if _, ok := locals[name]; !ok {
			locals[name] = off
			off += 4
		}
	}
	for _, p := range f.params {
		add(p)
	}
	var walk func(ss []stmt)
	walk = func(ss []stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case varStmt:
				add(v.name)
			case ifStmt:
				walk(v.then)
				walk(v.els)
			case whileStmt:
				walk(v.body)
			}
		}
	}
	walk(f.body)
	return locals
}

func (g *codegen) function(f *funcDef) error {
	g.fn = f
	g.locals = collectLocals(f)
	g.frame = int32(len(g.locals))*4 + 4 // locals + saved ra
	g.reg = firstScratch

	g.emitf("%s:", f.name)
	g.emitf("  addi r%d, r%d, %d", RegSP, RegSP, -g.frame)
	g.emitf("  sw r%d, %d(r%d)", RegRA, g.frame-4, RegSP)
	for i, p := range f.params {
		g.emitf("  sw r%d, %d(r%d)", RegRV+i, g.locals[p], RegSP)
	}
	for _, s := range f.body {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	// Implicit return 0.
	g.emitf("  addi r%d, r0, 0", RegRV)
	g.epilogue()
	return nil
}

func (g *codegen) epilogue() {
	g.emitf("  lw r%d, %d(r%d)", RegRA, g.frame-4, RegSP)
	g.emitf("  addi r%d, r%d, %d", RegSP, RegSP, g.frame)
	g.emitf("  jr r%d", RegRA)
}

func (g *codegen) stmt(s stmt) error {
	switch v := s.(type) {
	case varStmt:
		return g.store(v.name, v.init)
	case assignStmt:
		if _, ok := g.locals[v.name]; !ok {
			return fmt.Errorf("minic: assignment to undeclared %q in %s", v.name, g.fn.name)
		}
		return g.store(v.name, v.val)
	case returnStmt:
		r, err := g.expr(v.val)
		if err != nil {
			return err
		}
		g.emitf("  add r%d, r%d, r0", RegRV, r)
		g.pop()
		g.epilogue()
		return nil
	case printStmt:
		r, err := g.expr(v.val)
		if err != nil {
			return err
		}
		g.emitf("  out r%d", r)
		g.pop()
		return nil
	case exprStmt:
		r, err := g.expr(v.val)
		if err != nil {
			return err
		}
		_ = r
		g.pop()
		return nil
	case ifStmt:
		r, err := g.expr(v.cond)
		if err != nil {
			return err
		}
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		g.emitf("  beq r%d, r0, %s", r, elseL)
		g.pop()
		for _, s := range v.then {
			if err := g.stmt(s); err != nil {
				return err
			}
		}
		g.emitf("  beq r0, r0, %s", endL)
		g.emitf("%s:", elseL)
		for _, s := range v.els {
			if err := g.stmt(s); err != nil {
				return err
			}
		}
		g.emitf("%s:", endL)
		return nil
	case whileStmt:
		topL := g.newLabel("loop")
		endL := g.newLabel("endloop")
		g.emitf("%s:", topL)
		r, err := g.expr(v.cond)
		if err != nil {
			return err
		}
		g.emitf("  beq r%d, r0, %s", r, endL)
		g.pop()
		for _, s := range v.body {
			if err := g.stmt(s); err != nil {
				return err
			}
		}
		g.emitf("  beq r0, r0, %s", topL)
		g.emitf("%s:", endL)
		return nil
	default:
		return fmt.Errorf("minic: unknown statement %T", s)
	}
}

func (g *codegen) store(name string, e expr) error {
	r, err := g.expr(e)
	if err != nil {
		return err
	}
	off, ok := g.locals[name]
	if !ok {
		return fmt.Errorf("minic: unknown variable %q in %s", name, g.fn.name)
	}
	g.emitf("  sw r%d, %d(r%d)", r, off, RegSP)
	g.pop()
	return nil
}

// expr evaluates e into a fresh scratch register (left pushed).
func (g *codegen) expr(e expr) (int, error) {
	switch v := e.(type) {
	case numExpr:
		r, err := g.push()
		if err != nil {
			return 0, err
		}
		g.emitf("  li r%d, %d", r, v.v)
		return r, nil
	case varExpr:
		off, ok := g.locals[v.name]
		if !ok {
			return 0, fmt.Errorf("minic: unknown variable %q in %s", v.name, g.fn.name)
		}
		r, err := g.push()
		if err != nil {
			return 0, err
		}
		g.emitf("  lw r%d, %d(r%d)", r, off, RegSP)
		return r, nil
	case unExpr:
		r, err := g.expr(v.e)
		if err != nil {
			return 0, err
		}
		switch v.op {
		case "-":
			g.emitf("  sub r%d, r0, r%d", r, r)
		case "!":
			// r = (r == 0) ? 1 : 0  via slt on unsigned trick: use beq.
			t := g.newLabel("notz")
			e := g.newLabel("notend")
			g.emitf("  beq r%d, r0, %s", r, t)
			g.emitf("  addi r%d, r0, 0", r)
			g.emitf("  beq r0, r0, %s", e)
			g.emitf("%s:", t)
			g.emitf("  addi r%d, r0, 1", r)
			g.emitf("%s:", e)
		}
		return r, nil
	case binExpr:
		return g.binop(v)
	case callExpr:
		return g.call(v)
	default:
		return 0, fmt.Errorf("minic: unknown expression %T", e)
	}
}

func (g *codegen) binop(v binExpr) (int, error) {
	rl, err := g.expr(v.l)
	if err != nil {
		return 0, err
	}
	rr, err := g.expr(v.r)
	if err != nil {
		return 0, err
	}
	emitCmp := func(branchOp string, swap bool) {
		a, b := rl, rr
		if swap {
			a, b = rr, rl
		}
		t := g.newLabel("cmpt")
		e := g.newLabel("cmpe")
		g.emitf("  %s r%d, r%d, %s", branchOp, a, b, t)
		g.emitf("  addi r%d, r0, 0", rl)
		g.emitf("  beq r0, r0, %s", e)
		g.emitf("%s:", t)
		g.emitf("  addi r%d, r0, 1", rl)
		g.emitf("%s:", e)
	}
	switch v.op {
	case "+":
		g.emitf("  add r%d, r%d, r%d", rl, rl, rr)
	case "-":
		g.emitf("  sub r%d, r%d, r%d", rl, rl, rr)
	case "*":
		g.emitf("  mul r%d, r%d, r%d", rl, rl, rr)
	case "/":
		g.emitf("  div r%d, r%d, r%d", rl, rl, rr)
	case "%":
		g.emitf("  rem r%d, r%d, r%d", rl, rl, rr)
	case "<":
		g.emitf("  slt r%d, r%d, r%d", rl, rl, rr)
	case ">":
		g.emitf("  slt r%d, r%d, r%d", rl, rr, rl)
	case "<=":
		emitCmp("blt", true) // rl = (rr < rl), then invert: rl <= rr
		g.emitf("  addi r%d, r0, 1", RegAT)
		g.emitf("  sub r%d, r%d, r%d", rl, RegAT, rl)
	case ">=":
		emitCmp("blt", false) // rl = (rl < rr), then invert
		g.emitf("  addi r%d, r0, 1", RegAT)
		g.emitf("  sub r%d, r%d, r%d", rl, RegAT, rl)
	case "==":
		emitCmp("beq", false)
	case "!=":
		emitCmp("bne", false)
	case "&&":
		// Both non-zero: normalize then AND.
		t1 := g.newLabel("andl")
		g.emitf("  beq r%d, r0, %s", rl, t1)
		g.emitf("  addi r%d, r0, 1", rl)
		g.emitf("%s:", t1)
		t2 := g.newLabel("andr")
		g.emitf("  beq r%d, r0, %s", rr, t2)
		g.emitf("  addi r%d, r0, 1", rr)
		g.emitf("%s:", t2)
		g.emitf("  and r%d, r%d, r%d", rl, rl, rr)
	case "||":
		g.emitf("  or r%d, r%d, r%d", rl, rl, rr)
		t := g.newLabel("orl")
		g.emitf("  beq r%d, r0, %s", rl, t)
		g.emitf("  addi r%d, r0, 1", rl)
		g.emitf("%s:", t)
	default:
		return 0, fmt.Errorf("minic: unknown operator %q", v.op)
	}
	g.pop() // rr
	return rl, nil
}

// call saves live scratch registers across the call, marshals arguments
// into r1..r4, and retrieves the result from r1.
func (g *codegen) call(v callExpr) (int, error) {
	// Evaluate arguments onto the register stack.
	base := g.reg
	for _, a := range v.args {
		if _, err := g.expr(a); err != nil {
			return 0, err
		}
	}
	// Save scratch r5..(reg-1) to the stack (everything live, including
	// the argument temporaries, survives in callee-unclobbered memory).
	live := g.reg - firstScratch
	save := int32(live) * 4
	if save > 0 {
		g.emitf("  addi r%d, r%d, %d", RegSP, RegSP, -save)
		for i := 0; i < live; i++ {
			g.emitf("  sw r%d, %d(r%d)", firstScratch+i, int32(i)*4, RegSP)
		}
	}
	// Marshal arguments from their saved slots into r1..r4.
	for i := range v.args {
		slot := int32(base-firstScratch+i) * 4
		g.emitf("  lw r%d, %d(r%d)", RegRV+i, slot, RegSP)
	}
	g.emitf("  jal %s", v.name)
	// Restore scratch below the arg temporaries.
	for i := 0; i < base-firstScratch; i++ {
		g.emitf("  lw r%d, %d(r%d)", firstScratch+i, int32(i)*4, RegSP)
	}
	if save > 0 {
		g.emitf("  addi r%d, r%d, %d", RegSP, RegSP, save)
	}
	// Drop the argument temporaries from the register stack; push result.
	g.reg = base
	r, err := g.push()
	if err != nil {
		return 0, err
	}
	g.emitf("  add r%d, r%d, r0", r, RegRV)
	return r, nil
}
