package cs314

import "fmt"

// Link combines object files into an executable. Text sections concatenate
// in argument order; data sections concatenate after the text (word
// aligned) at DataBase. Relocations resolve first against the defining
// object's own symbols, then against global symbols of any object. The
// entry point is the global symbol "main".
func Link(objs ...*Object) (*Executable, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("cs314: nothing to link")
	}
	type placed struct {
		obj      *Object
		textBase uint32 // word address
		dataBase uint32 // byte offset within the linked data segment
	}
	var plan []placed
	var textLen uint32
	var dataLen uint32
	for _, o := range objs {
		plan = append(plan, placed{obj: o, textBase: textLen, dataBase: dataLen})
		textLen += uint32(len(o.Text))
		dataLen += uint32(len(o.Data))
	}
	dataBase := textLen * 4 // bytes; data follows text in the address space

	// Global symbol table.
	globals := map[string]addr{}
	for _, p := range plan {
		for name, s := range p.obj.Symbols {
			if !s.Global {
				continue
			}
			if _, dup := globals[name]; dup {
				return nil, fmt.Errorf("cs314: duplicate global symbol %q", name)
			}
			globals[name] = addr{section: s.Section, value: linkAddr(s, p.textBase, dataBase+p.dataBase)}
		}
	}

	resolve := func(p placed, name string) (addr, error) {
		if s, ok := p.obj.Symbols[name]; ok {
			return addr{section: s.Section, value: linkAddr(s, p.textBase, dataBase+p.dataBase)}, nil
		}
		if a, ok := globals[name]; ok {
			return a, nil
		}
		return addr{}, fmt.Errorf("cs314: undefined symbol %q (from %s)", name, p.obj.Name)
	}

	exe := &Executable{
		Text:     make([]uint32, 0, textLen),
		DataBase: dataBase,
		Data:     make([]byte, 0, dataLen),
	}
	for _, p := range plan {
		exe.Text = append(exe.Text, p.obj.Text...)
		exe.Data = append(exe.Data, p.obj.Data...)
	}

	for _, p := range plan {
		for _, r := range p.obj.Relocs {
			site := p.textBase + r.Offset
			if int(site) >= len(exe.Text) {
				return nil, fmt.Errorf("cs314: reloc site %d out of range in %s", r.Offset, p.obj.Name)
			}
			target, err := resolve(p, r.Symbol)
			if err != nil {
				return nil, err
			}
			w := exe.Text[site]
			switch r.Kind {
			case RelJump:
				if target.section != SecText {
					return nil, fmt.Errorf("cs314: jump to data symbol %q", r.Symbol)
				}
				w = w&^uint32(addrMask) | target.value&addrMask
			case RelBranch:
				if target.section != SecText {
					return nil, fmt.Errorf("cs314: branch to data symbol %q", r.Symbol)
				}
				off := int64(target.value) - int64(site) - 1
				if off < ImmMin || off > ImmMax {
					return nil, fmt.Errorf("cs314: branch to %q out of range", r.Symbol)
				}
				w = w&^uint32(immMask) | uint32(int32(off))&immMask
			case RelHi:
				hi, _ := splitHiLo(int32(target.byteAddr()))
				w = w&^uint32(immMask) | uint32(hi)&immMask
			case RelLo:
				_, lo := splitHiLo(int32(target.byteAddr()))
				w = w&^uint32(immMask) | uint32(lo)&immMask
			default:
				return nil, fmt.Errorf("cs314: unknown reloc kind %d", r.Kind)
			}
			exe.Text[site] = w
		}
	}

	main, ok := globals["main"]
	if !ok || main.section != SecText {
		return nil, fmt.Errorf("cs314: no global text symbol \"main\"")
	}
	exe.Entry = main.value
	return exe, nil
}

// addr is a resolved symbol location: word address for text symbols, byte
// address for data symbols.
type addr struct {
	section Section
	value   uint32
}

// byteAddr converts to a byte address for la-style relocations.
func (a addr) byteAddr() uint32 {
	if a.section == SecText {
		return a.value * 4
	}
	return a.value
}

// linkAddr computes a symbol's linked address: word address for text
// symbols, byte address for data symbols.
func linkAddr(s Symbol, textBase, dataByteBase uint32) uint32 {
	if s.Section == SecText {
		return textBase + s.Offset
	}
	return dataByteBase + s.Offset
}
