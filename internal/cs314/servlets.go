package cs314

import (
	"fmt"
	"strconv"
	"strings"

	"jkernel/internal/httpd"
)

// The CS314 servlets: each tool wrapped as an httpd.Servlet so the
// extensible web server can host the course toolchain with one protection
// domain per component. A bug (or termination) in, say, the compiler
// servlet leaves the assembler and linker running — the failure-isolation
// property whose absence in Jigsaw "made the introduction of new features
// during the course very difficult".

// CompilerServlet compiles MiniC source (request body) to C3 assembly.
type CompilerServlet struct{}

// Service implements httpd.Servlet.
func (CompilerServlet) Service(req *httpd.Request) (*httpd.Response, error) {
	asm, err := CompileMiniC(string(req.Body))
	if err != nil {
		return &httpd.Response{Status: 422, Body: []byte(err.Error())}, nil
	}
	return &httpd.Response{Status: 200, Body: []byte(asm)}, nil
}

// AssemblerServlet assembles C3 assembly (request body) into an object
// file. The unit name comes from ?unit=.
type AssemblerServlet struct{}

// Service implements httpd.Servlet.
func (AssemblerServlet) Service(req *httpd.Request) (*httpd.Response, error) {
	unit := "unit"
	if q := req.Query; q != "" {
		for _, kv := range strings.Split(q, "&") {
			if v, ok := strings.CutPrefix(kv, "unit="); ok {
				unit = v
			}
		}
	}
	obj, err := AssembleC3(unit, string(req.Body))
	if err != nil {
		return &httpd.Response{Status: 422, Body: []byte(err.Error())}, nil
	}
	return &httpd.Response{Status: 200, Body: EncodeObject(obj)}, nil
}

// LinkerServlet links a bundle of object files (request body: the httpd
// bundle format) into an executable.
type LinkerServlet struct{}

// Service implements httpd.Servlet.
func (LinkerServlet) Service(req *httpd.Request) (*httpd.Response, error) {
	bundle, err := httpd.DecodeBundle(req.Body)
	if err != nil {
		return &httpd.Response{Status: 400, Body: []byte(err.Error())}, nil
	}
	names := make([]string, 0, len(bundle))
	for n := range bundle {
		names = append(names, n)
	}
	// Deterministic link order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	var objs []*Object
	for _, n := range names {
		o, err := DecodeObject(bundle[n])
		if err != nil {
			return &httpd.Response{Status: 422, Body: []byte(fmt.Sprintf("%s: %v", n, err))}, nil
		}
		objs = append(objs, o)
	}
	exe, err := Link(objs...)
	if err != nil {
		return &httpd.Response{Status: 422, Body: []byte(err.Error())}, nil
	}
	return &httpd.Response{Status: 200, Body: EncodeExecutable(exe)}, nil
}

// RunnerServlet executes an executable image (request body) on the
// emulator and returns its output, one integer per line.
type RunnerServlet struct {
	// MaxSteps bounds execution (default 10M) so student infinite loops
	// cannot wedge the grading server.
	MaxSteps int64
}

// Service implements httpd.Servlet.
func (r RunnerServlet) Service(req *httpd.Request) (*httpd.Response, error) {
	exe, err := DecodeExecutable(req.Body)
	if err != nil {
		return &httpd.Response{Status: 400, Body: []byte(err.Error())}, nil
	}
	max := r.MaxSteps
	if max == 0 {
		max = 10_000_000
	}
	out, err := RunProgram(exe, max)
	var b strings.Builder
	for _, v := range out {
		b.WriteString(strconv.FormatInt(int64(v), 10))
		b.WriteByte('\n')
	}
	if err != nil {
		fmt.Fprintf(&b, "fault: %v\n", err)
		return &httpd.Response{Status: 422, Body: []byte(b.String())}, nil
	}
	return &httpd.Response{Status: 200, Body: []byte(b.String())}, nil
}

// MountAll mounts the four course servlets on a bridge under /cs314/.
func MountAll(b *httpd.Bridge) error {
	mounts := []struct {
		name, prefix string
		s            httpd.Servlet
	}{
		{"cs314-compile", "/cs314/compile", CompilerServlet{}},
		{"cs314-assemble", "/cs314/assemble", AssemblerServlet{}},
		{"cs314-link", "/cs314/link", LinkerServlet{}},
		{"cs314-run", "/cs314/run", RunnerServlet{}},
	}
	for _, m := range mounts {
		if _, err := b.MountNative(m.name, m.prefix, m.s); err != nil {
			return err
		}
	}
	return nil
}
