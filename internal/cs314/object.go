package cs314

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Object is a relocatable object file: one text section (words), one data
// section (bytes), exported symbols, and relocations against symbols that
// the linker resolves.
type Object struct {
	Name    string
	Text    []uint32
	Data    []byte
	Symbols map[string]Symbol
	Relocs  []Reloc
}

// Section discriminates symbol homes.
type Section uint8

// Sections.
const (
	SecText Section = iota
	SecData
)

// Symbol is a named location. Only Global symbols resolve across units;
// local labels stay private to their object file.
type Symbol struct {
	Section Section
	Offset  uint32 // word offset in text; byte offset in data
	Global  bool
}

// RelocKind tells the linker how to patch.
type RelocKind uint8

const (
	// RelJump patches a 26-bit absolute word address (jal).
	RelJump RelocKind = iota
	// RelBranch patches a 14-bit pc-relative word offset (beq/bne/blt).
	RelBranch
	// RelHi patches a lui immediate with the high bits of a byte address.
	RelHi
	// RelLo patches an addi immediate with the low bits of a byte address.
	RelLo
)

// Reloc is one patch site in the text section.
type Reloc struct {
	Kind   RelocKind
	Offset uint32 // word index into Text
	Symbol string
}

// Executable is a linked program image.
type Executable struct {
	Entry    uint32 // word address of the entry point
	Text     []uint32
	DataBase uint32 // byte address where Data is loaded
	Data     []byte
}

const (
	objMagic = "C3O1"
	exeMagic = "C3X1"
)

// EncodeObject serializes an object file.
func EncodeObject(o *Object) []byte {
	var b []byte
	u := func(v uint64) { b = binary.AppendUvarint(b, v) }
	str := func(s string) { u(uint64(len(s))); b = append(b, s...) }
	b = append(b, objMagic...)
	str(o.Name)
	u(uint64(len(o.Text)))
	for _, w := range o.Text {
		b = binary.LittleEndian.AppendUint32(b, w)
	}
	u(uint64(len(o.Data)))
	b = append(b, o.Data...)
	names := make([]string, 0, len(o.Symbols))
	for n := range o.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	u(uint64(len(names)))
	for _, n := range names {
		s := o.Symbols[n]
		str(n)
		flags := byte(s.Section)
		if s.Global {
			flags |= 0x80
		}
		b = append(b, flags)
		u(uint64(s.Offset))
	}
	u(uint64(len(o.Relocs)))
	for _, r := range o.Relocs {
		b = append(b, byte(r.Kind))
		u(uint64(r.Offset))
		str(r.Symbol)
	}
	return b
}

type byteReader struct {
	b   []byte
	pos int
	err error
}

func (r *byteReader) fail(f string, a ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(f, a...)
	}
}

func (r *byteReader) u() uint64 {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil || r.pos+n > len(r.b) {
		r.fail("truncated")
		return make([]byte, n)
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *byteReader) str() string {
	n := r.u()
	if n > 1<<16 {
		r.fail("string too long")
		return ""
	}
	return string(r.bytes(int(n)))
}

// DecodeObject parses an object file.
func DecodeObject(data []byte) (*Object, error) {
	r := &byteReader{b: data}
	if string(r.bytes(4)) != objMagic {
		return nil, fmt.Errorf("cs314: bad object magic")
	}
	o := &Object{Symbols: map[string]Symbol{}}
	o.Name = r.str()
	nt := r.u()
	if nt > 1<<22 {
		return nil, fmt.Errorf("cs314: text too large")
	}
	o.Text = make([]uint32, nt)
	for i := range o.Text {
		o.Text[i] = binary.LittleEndian.Uint32(r.bytes(4))
	}
	nd := r.u()
	if nd > 1<<24 {
		return nil, fmt.Errorf("cs314: data too large")
	}
	o.Data = append([]byte(nil), r.bytes(int(nd))...)
	ns := r.u()
	for i := uint64(0); i < ns && r.err == nil; i++ {
		name := r.str()
		flags := r.bytes(1)[0]
		off := uint32(r.u())
		o.Symbols[name] = Symbol{
			Section: Section(flags & 0x7f),
			Offset:  off,
			Global:  flags&0x80 != 0,
		}
	}
	nr := r.u()
	for i := uint64(0); i < nr && r.err == nil; i++ {
		kind := RelocKind(r.bytes(1)[0])
		off := uint32(r.u())
		sym := r.str()
		o.Relocs = append(o.Relocs, Reloc{Kind: kind, Offset: off, Symbol: sym})
	}
	if r.err != nil {
		return nil, fmt.Errorf("cs314: decode object: %w", r.err)
	}
	return o, nil
}

// EncodeExecutable serializes an executable image.
func EncodeExecutable(e *Executable) []byte {
	var b []byte
	b = append(b, exeMagic...)
	b = binary.LittleEndian.AppendUint32(b, e.Entry)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Text)))
	for _, w := range e.Text {
		b = binary.LittleEndian.AppendUint32(b, w)
	}
	b = binary.LittleEndian.AppendUint32(b, e.DataBase)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Data)))
	b = append(b, e.Data...)
	return b
}

// DecodeExecutable parses an executable image.
func DecodeExecutable(data []byte) (*Executable, error) {
	r := &byteReader{b: data}
	if string(r.bytes(4)) != exeMagic {
		return nil, fmt.Errorf("cs314: bad executable magic")
	}
	e := &Executable{}
	e.Entry = binary.LittleEndian.Uint32(r.bytes(4))
	nt := binary.LittleEndian.Uint32(r.bytes(4))
	if nt > 1<<22 {
		return nil, fmt.Errorf("cs314: text too large")
	}
	e.Text = make([]uint32, nt)
	for i := range e.Text {
		e.Text[i] = binary.LittleEndian.Uint32(r.bytes(4))
	}
	e.DataBase = binary.LittleEndian.Uint32(r.bytes(4))
	nd := binary.LittleEndian.Uint32(r.bytes(4))
	if nd > 1<<24 {
		return nil, fmt.Errorf("cs314: data too large")
	}
	e.Data = append([]byte(nil), r.bytes(int(nd))...)
	if r.err != nil {
		return nil, fmt.Errorf("cs314: decode executable: %w", r.err)
	}
	return e, nil
}
