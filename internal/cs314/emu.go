package cs314

import (
	"encoding/binary"
	"fmt"
)

// Emulator executes a linked C3 executable against a flat byte-addressable
// memory. Text occupies [0, 4*len(Text)); data is loaded at DataBase; the
// stack grows down from the top of memory.
type Emulator struct {
	Regs   [NumRegs]int32
	PC     uint32 // word address
	Mem    []byte
	Text   []uint32
	Output []int32
	halted bool
	steps  int64
}

// EmuError reports an execution fault.
type EmuError struct {
	PC  uint32
	Msg string
}

func (e *EmuError) Error() string {
	return fmt.Sprintf("c3 emu: pc=%d: %s", e.PC, e.Msg)
}

// DefaultMemSize is the emulator's memory if none is specified.
const DefaultMemSize = 1 << 20

// NewEmulator loads an executable.
func NewEmulator(exe *Executable, memSize int) (*Emulator, error) {
	if memSize <= 0 {
		memSize = DefaultMemSize
	}
	need := int(exe.DataBase) + len(exe.Data) + 4096
	if memSize < need {
		memSize = need
	}
	e := &Emulator{
		Mem:  make([]byte, memSize),
		Text: exe.Text,
		PC:   exe.Entry,
	}
	for i, w := range exe.Text {
		binary.LittleEndian.PutUint32(e.Mem[i*4:], w)
	}
	copy(e.Mem[exe.DataBase:], exe.Data)
	e.Regs[RegSP] = int32(memSize - 4)
	// A return from main lands on a halt at the very top of text space:
	// set the link register to a sentinel that Step treats as halt.
	e.Regs[RegRA] = int32(len(exe.Text))
	return e, nil
}

// Halted reports whether the program has stopped.
func (e *Emulator) Halted() bool { return e.halted }

// Steps returns executed instruction count.
func (e *Emulator) Steps() int64 { return e.steps }

// Run executes until halt or maxSteps; it errors on faults or timeout.
func (e *Emulator) Run(maxSteps int64) error {
	for !e.halted {
		if e.steps >= maxSteps {
			return &EmuError{PC: e.PC, Msg: fmt.Sprintf("step limit %d exceeded", maxSteps)}
		}
		if err := e.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one instruction.
func (e *Emulator) Step() error {
	if e.halted {
		return nil
	}
	if int(e.PC) >= len(e.Text) {
		// Return past the end of text = clean halt (main returned).
		e.halted = true
		return nil
	}
	w := e.Text[e.PC]
	op, rd, rs, rt, imm, addr := Decode(w)
	next := e.PC + 1
	e.steps++

	fault := func(f string, a ...any) error {
		return &EmuError{PC: e.PC, Msg: fmt.Sprintf(f, a...)}
	}
	loadWord := func(ba int32) (int32, error) {
		if ba < 0 || int(ba)+4 > len(e.Mem) {
			return 0, fault("load at %d out of bounds", ba)
		}
		if ba%4 != 0 {
			return 0, fault("misaligned load at %d", ba)
		}
		return int32(binary.LittleEndian.Uint32(e.Mem[ba:])), nil
	}
	storeWord := func(ba int32, v int32) error {
		if ba < 0 || int(ba)+4 > len(e.Mem) {
			return fault("store at %d out of bounds", ba)
		}
		if ba%4 != 0 {
			return fault("misaligned store at %d", ba)
		}
		if ba < int32(len(e.Text)*4) {
			return fault("store into text segment at %d", ba)
		}
		binary.LittleEndian.PutUint32(e.Mem[ba:], uint32(v))
		return nil
	}

	switch op {
	case OpHalt:
		e.halted = true
		return nil
	case OpAdd:
		e.set(rd, e.Regs[rs]+e.Regs[rt])
	case OpSub:
		e.set(rd, e.Regs[rs]-e.Regs[rt])
	case OpMul:
		e.set(rd, e.Regs[rs]*e.Regs[rt])
	case OpDiv:
		if e.Regs[rt] == 0 {
			return fault("division by zero")
		}
		e.set(rd, e.Regs[rs]/e.Regs[rt])
	case OpRem:
		if e.Regs[rt] == 0 {
			return fault("division by zero")
		}
		e.set(rd, e.Regs[rs]%e.Regs[rt])
	case OpAnd:
		e.set(rd, e.Regs[rs]&e.Regs[rt])
	case OpOr:
		e.set(rd, e.Regs[rs]|e.Regs[rt])
	case OpXor:
		e.set(rd, e.Regs[rs]^e.Regs[rt])
	case OpShl:
		e.set(rd, e.Regs[rs]<<(uint32(e.Regs[rt])&31))
	case OpShr:
		e.set(rd, int32(uint32(e.Regs[rs])>>(uint32(e.Regs[rt])&31)))
	case OpSlt:
		if e.Regs[rs] < e.Regs[rt] {
			e.set(rd, 1)
		} else {
			e.set(rd, 0)
		}
	case OpAddi:
		e.set(rd, e.Regs[rs]+imm)
	case OpLui:
		e.set(rd, imm<<LuiShift)
	case OpLw:
		v, err := loadWord(e.Regs[rs] + imm)
		if err != nil {
			return err
		}
		e.set(rd, v)
	case OpSw:
		if err := storeWord(e.Regs[rs]+imm, e.Regs[rt]); err != nil {
			return err
		}
	case OpBeq:
		if e.Regs[rs] == e.Regs[rt] {
			next = uint32(int64(e.PC) + 1 + int64(imm))
		}
	case OpBne:
		if e.Regs[rs] != e.Regs[rt] {
			next = uint32(int64(e.PC) + 1 + int64(imm))
		}
	case OpBlt:
		if e.Regs[rs] < e.Regs[rt] {
			next = uint32(int64(e.PC) + 1 + int64(imm))
		}
	case OpJal:
		e.set(RegRA, int32(e.PC+1))
		next = addr
	case OpJr:
		next = uint32(e.Regs[rs])
	case OpOut:
		e.Output = append(e.Output, e.Regs[rs])
		if len(e.Output) > 1<<20 {
			return fault("output flood")
		}
	default:
		return fault("illegal opcode %d", op)
	}
	e.PC = next
	return nil
}

// set writes a register, keeping r0 zero.
func (e *Emulator) set(rd int, v int32) {
	if rd != RegZero {
		e.Regs[rd] = v
	}
}

// RunProgram is a convenience: execute exe and return its output values.
func RunProgram(exe *Executable, maxSteps int64) ([]int32, error) {
	e, err := NewEmulator(exe, 0)
	if err != nil {
		return nil, err
	}
	if err := e.Run(maxSteps); err != nil {
		return e.Output, err
	}
	return e.Output, nil
}
