// Package cs314 implements the components behind the paper's CS314
// servlets: "The course staff wrote compiler, assembler, and linker
// components in Java, which students used for course homeworks and
// projects" — served from an extensible web server, which motivated the
// J-Kernel's failure isolation and clean termination.
//
// The package defines a small 32-bit RISC ISA ("C3"), an assembler from
// textual assembly to relocatable object files, a linker producing
// executables, a compiler from a small imperative language ("MiniC") to C3
// assembly, and an emulator to run the results. Each tool also ships as a
// servlet (see servlets.go) so the webserver example can host the whole
// toolchain as isolated domains.
package cs314

import "fmt"

// Register conventions: r0 is hard-wired zero, r1 carries return values
// and the first argument, r1–r4 are arguments, r5–r12 are scratch, r13 is
// the stack pointer, r14 the link register, r15 assembler temporary.
const (
	RegZero = 0
	RegRV   = 1
	RegSP   = 13
	RegRA   = 14
	RegAT   = 15
	NumRegs = 16
)

// Opcode space.
type Op uint32

const (
	OpHalt Op = iota
	// R-type: rd = rs OP rt
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSlt // rd = (rs < rt) ? 1 : 0, signed
	// I-type
	OpAddi // rd = rs + imm
	OpLui  // rd = imm << 14
	OpLw   // rd = mem[rs + imm]
	OpSw   // mem[rs + imm] = rt   (encoded with rd = rt)
	OpBeq  // if rs == rt: pc += imm   (word offset; rd = rt)
	OpBne
	OpBlt // if rs < rt (signed)
	// J-type
	OpJal // ra = pc+1; pc = addr
	OpJr  // pc = rs
	OpOut // emit rs to the output device
	opMax
)

var opNames = [opMax]string{
	OpHalt: "halt",
	OpAdd:  "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSlt: "slt",
	OpAddi: "addi", OpLui: "lui", OpLw: "lw", OpSw: "sw",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt",
	OpJal: "jal", OpJr: "jr", OpOut: "out",
}

// Name returns the mnemonic.
func (o Op) Name() string {
	if o < opMax {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint32(o))
}

// Instruction encoding (32 bits):
//
//	[31:26] opcode
//	[25:22] rd
//	[21:18] rs
//	[17:14] rt
//	[13:0]  imm14 (signed, I-type)
//
// J-type (jal) uses [25:0] as a 26-bit word address.
const (
	immBits = 14
	immMask = (1 << immBits) - 1
	// ImmMax/ImmMin bound I-type immediates.
	ImmMax = 1<<(immBits-1) - 1
	ImmMin = -(1 << (immBits - 1))
	// LuiShift positions the lui immediate.
	LuiShift = immBits
	addrMask = (1 << 26) - 1
)

// Encode packs an instruction.
func Encode(op Op, rd, rs, rt int, imm int32) uint32 {
	return uint32(op)<<26 |
		uint32(rd&0xf)<<22 |
		uint32(rs&0xf)<<18 |
		uint32(rt&0xf)<<14 |
		uint32(imm)&immMask
}

// EncodeJ packs a J-type instruction.
func EncodeJ(op Op, addr uint32) uint32 {
	return uint32(op)<<26 | addr&addrMask
}

// Decode unpacks an instruction.
func Decode(w uint32) (op Op, rd, rs, rt int, imm int32, addr uint32) {
	op = Op(w >> 26)
	rd = int(w >> 22 & 0xf)
	rs = int(w >> 18 & 0xf)
	rt = int(w >> 14 & 0xf)
	imm = int32(w & immMask)
	if imm>>(immBits-1) != 0 { // sign-extend
		imm |= ^int32(immMask)
	}
	addr = w & addrMask
	return
}

// Disasm renders one instruction for diagnostics.
func Disasm(w uint32) string {
	op, rd, rs, rt, imm, addr := Decode(w)
	switch op {
	case OpHalt:
		return "halt"
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt:
		return fmt.Sprintf("%s r%d, r%d, r%d", op.Name(), rd, rs, rt)
	case OpAddi:
		return fmt.Sprintf("addi r%d, r%d, %d", rd, rs, imm)
	case OpLui:
		return fmt.Sprintf("lui r%d, %d", rd, imm)
	case OpLw:
		return fmt.Sprintf("lw r%d, %d(r%d)", rd, imm, rs)
	case OpSw:
		return fmt.Sprintf("sw r%d, %d(r%d)", rd, imm, rs)
	case OpBeq, OpBne, OpBlt:
		return fmt.Sprintf("%s r%d, r%d, %d", op.Name(), rs, rd, imm)
	case OpJal:
		return fmt.Sprintf("jal %d", addr)
	case OpJr:
		return fmt.Sprintf("jr r%d", rs)
	case OpOut:
		return fmt.Sprintf("out r%d", rs)
	default:
		return fmt.Sprintf(".word %#08x", w)
	}
}
