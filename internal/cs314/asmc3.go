package cs314

import (
	"fmt"
	"strconv"
	"strings"
)

// AssembleC3 translates C3 assembly into a relocatable object.
//
// Syntax, line oriented, '#' comments:
//
//	.text / .data            switch section (text is default)
//	.global name             export a symbol
//	label:                   define a symbol at the current location
//	.word N                  (data) emit a 32-bit word
//	.space N                 (data) emit N zero bytes
//	add rd, rs, rt           R-type ops
//	addi rd, rs, imm         also: li rd, imm (pseudo, expands as needed)
//	lw rd, imm(rs) / sw rt, imm(rs)
//	la rd, symbol            pseudo: lui+addi with relocations
//	beq rs, rt, label        branches (pc-relative)
//	jal label / jr rs / out rs / halt
func AssembleC3(unit string, src string) (*Object, error) {
	a := &c3asm{
		obj:     &Object{Name: unit, Symbols: map[string]Symbol{}},
		globals: map[string]bool{},
	}
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.line(line); err != nil {
			return nil, fmt.Errorf("c3 asm %s:%d: %w", unit, ln+1, err)
		}
	}
	if err := a.patchLocal(); err != nil {
		return nil, err
	}
	for name := range a.globals {
		sym, ok := a.obj.Symbols[name]
		if !ok {
			return nil, fmt.Errorf("c3 asm %s: .global %s has no definition", unit, name)
		}
		sym.Global = true
		a.obj.Symbols[name] = sym
	}
	return a.obj, nil
}

type c3asm struct {
	obj     *Object
	inData  bool
	globals map[string]bool
	// local branch fixups: branches to labels in this unit resolve here;
	// unresolved names become relocations for the linker.
	branchFix []fix
	jumpFix   []fix
}

type fix struct {
	word  uint32
	label string
}

func (a *c3asm) here() uint32 {
	if a.inData {
		return uint32(len(a.obj.Data))
	}
	return uint32(len(a.obj.Text))
}

func (a *c3asm) define(label string) error {
	if _, dup := a.obj.Symbols[label]; dup {
		return fmt.Errorf("duplicate label %q", label)
	}
	sec := SecText
	if a.inData {
		sec = SecData
	}
	a.obj.Symbols[label] = Symbol{Section: sec, Offset: a.here()}
	return nil
}

func (a *c3asm) emit(w uint32) {
	a.obj.Text = append(a.obj.Text, w)
}

func (a *c3asm) line(line string) error {
	switch {
	case line == ".text":
		a.inData = false
		return nil
	case line == ".data":
		a.inData = true
		return nil
	case strings.HasPrefix(line, ".global"):
		name := strings.TrimSpace(strings.TrimPrefix(line, ".global"))
		if name == "" {
			return fmt.Errorf(".global needs a name")
		}
		a.globals[name] = true
		return nil
	case strings.HasSuffix(line, ":"):
		return a.define(strings.TrimSuffix(line, ":"))
	case strings.HasPrefix(line, ".word"):
		if !a.inData {
			return fmt.Errorf(".word outside .data")
		}
		n, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, ".word")), 0, 64)
		if err != nil {
			return err
		}
		var w [4]byte
		w[0] = byte(n)
		w[1] = byte(n >> 8)
		w[2] = byte(n >> 16)
		w[3] = byte(n >> 24)
		a.obj.Data = append(a.obj.Data, w[:]...)
		return nil
	case strings.HasPrefix(line, ".space"):
		if !a.inData {
			return fmt.Errorf(".space outside .data")
		}
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".space")))
		if err != nil || n < 0 || n > 1<<20 {
			return fmt.Errorf("bad .space %q", line)
		}
		a.obj.Data = append(a.obj.Data, make([]byte, n)...)
		return nil
	}
	if a.inData {
		return fmt.Errorf("instruction in .data: %q", line)
	}
	return a.instruction(line)
}

// reg parses "r4".
func reg(tok string) (int, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 || tok[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return n, nil
}

func imm14(tok string) (int32, error) {
	n, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	if n < ImmMin || n > ImmMax {
		return 0, fmt.Errorf("immediate %d out of range [%d,%d]", n, ImmMin, ImmMax)
	}
	return int32(n), nil
}

// memOperand parses "imm(rs)".
func memOperand(tok string) (int32, int, error) {
	tok = strings.TrimSpace(tok)
	open := strings.IndexByte(tok, '(')
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	off := int32(0)
	if open > 0 {
		v, err := imm14(tok[:open])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	rs, err := reg(tok[open+1 : len(tok)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, rs, nil
}

var rOps = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv, "rem": OpRem,
	"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "shr": OpShr, "slt": OpSlt,
}

var branchOps = map[string]Op{"beq": OpBeq, "bne": OpBne, "blt": OpBlt}

func (a *c3asm) instruction(line string) error {
	mnem := line
	rest := ""
	if sp := strings.IndexAny(line, " \t"); sp >= 0 {
		mnem, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	args := splitArgs(rest)

	if op, ok := rOps[mnem]; ok {
		if len(args) != 3 {
			return fmt.Errorf("%s wants rd, rs, rt", mnem)
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		rt, err := reg(args[2])
		if err != nil {
			return err
		}
		a.emit(Encode(op, rd, rs, rt, 0))
		return nil
	}
	if op, ok := branchOps[mnem]; ok {
		if len(args) != 3 {
			return fmt.Errorf("%s wants rs, rt, label", mnem)
		}
		rs, err := reg(args[0])
		if err != nil {
			return err
		}
		rt, err := reg(args[1])
		if err != nil {
			return err
		}
		a.branchFix = append(a.branchFix, fix{word: a.here(), label: args[2]})
		a.emit(Encode(op, rt, rs, rt, 0))
		return nil
	}

	switch mnem {
	case "addi":
		if len(args) != 3 {
			return fmt.Errorf("addi wants rd, rs, imm")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		rs, err := reg(args[1])
		if err != nil {
			return err
		}
		v, err := imm14(args[2])
		if err != nil {
			return err
		}
		a.emit(Encode(OpAddi, rd, rs, 0, v))
		return nil
	case "lui":
		if len(args) != 2 {
			return fmt.Errorf("lui wants rd, imm")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := imm14(args[1])
		if err != nil {
			return err
		}
		a.emit(Encode(OpLui, rd, 0, 0, v))
		return nil
	case "li":
		if len(args) != 2 {
			return fmt.Errorf("li wants rd, imm")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(strings.TrimSpace(args[1]), 0, 64)
		if err != nil {
			return fmt.Errorf("bad immediate %q", args[1])
		}
		if n >= ImmMin && n <= ImmMax {
			a.emit(Encode(OpAddi, rd, RegZero, 0, int32(n)))
			return nil
		}
		if n < -(1<<27) || n >= 1<<27 {
			return fmt.Errorf("li immediate %d out of range", n)
		}
		// addi sign-extends its immediate, so round the high part up when
		// the low half's sign bit is set (the MIPS %hi/%lo adjustment).
		hi, lo := splitHiLo(int32(n))
		a.emit(Encode(OpLui, rd, 0, 0, hi))
		a.emit(Encode(OpAddi, rd, rd, 0, lo))
		return nil
	case "la":
		if len(args) != 2 {
			return fmt.Errorf("la wants rd, symbol")
		}
		rd, err := reg(args[0])
		if err != nil {
			return err
		}
		sym := strings.TrimSpace(args[1])
		a.obj.Relocs = append(a.obj.Relocs,
			Reloc{Kind: RelHi, Offset: a.here(), Symbol: sym},
			Reloc{Kind: RelLo, Offset: a.here() + 1, Symbol: sym})
		a.emit(Encode(OpLui, rd, 0, 0, 0))
		a.emit(Encode(OpAddi, rd, rd, 0, 0))
		return nil
	case "lw", "sw":
		if len(args) != 2 {
			return fmt.Errorf("%s wants reg, imm(rs)", mnem)
		}
		r1, err := reg(args[0])
		if err != nil {
			return err
		}
		off, rs, err := memOperand(args[1])
		if err != nil {
			return err
		}
		if mnem == "lw" {
			a.emit(Encode(OpLw, r1, rs, 0, off))
		} else {
			a.emit(Encode(OpSw, r1, rs, r1, off))
		}
		return nil
	case "jal":
		if len(args) != 1 {
			return fmt.Errorf("jal wants a label")
		}
		a.jumpFix = append(a.jumpFix, fix{word: a.here(), label: args[0]})
		a.emit(EncodeJ(OpJal, 0))
		return nil
	case "jr":
		if len(args) != 1 {
			return fmt.Errorf("jr wants a register")
		}
		rs, err := reg(args[0])
		if err != nil {
			return err
		}
		a.emit(Encode(OpJr, 0, rs, 0, 0))
		return nil
	case "out":
		if len(args) != 1 {
			return fmt.Errorf("out wants a register")
		}
		rs, err := reg(args[0])
		if err != nil {
			return err
		}
		a.emit(Encode(OpOut, 0, rs, 0, 0))
		return nil
	case "halt":
		a.emit(Encode(OpHalt, 0, 0, 0, 0))
		return nil
	case "nop":
		a.emit(Encode(OpAdd, 0, 0, 0, 0))
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", mnem)
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// splitHiLo decomposes v into hi/lo such that (hi << LuiShift) + signext(lo)
// reconstructs v, compensating for addi's sign extension.
func splitHiLo(v int32) (hi, lo int32) {
	hi = (v + 1<<(immBits-1)) >> immBits
	lo = v - hi<<immBits
	return hi, lo
}

// patchLocal resolves branch/jump fixups against local labels; unresolved
// names become linker relocations.
func (a *c3asm) patchLocal() error {
	for _, f := range a.branchFix {
		if sym, ok := a.obj.Symbols[f.label]; ok && sym.Section == SecText {
			off := int64(sym.Offset) - int64(f.word) - 1
			if off < ImmMin || off > ImmMax {
				return fmt.Errorf("branch to %q out of range", f.label)
			}
			a.obj.Text[f.word] |= uint32(int32(off)) & immMask
			continue
		}
		// Branches must be local: pc-relative across units is fragile.
		return fmt.Errorf("branch to undefined local label %q", f.label)
	}
	for _, f := range a.jumpFix {
		if sym, ok := a.obj.Symbols[f.label]; ok && sym.Section == SecText {
			a.obj.Text[f.word] |= sym.Offset & addrMask
			// Still relocate: the unit may move when linked.
			a.obj.Relocs = append(a.obj.Relocs, Reloc{Kind: RelJump, Offset: f.word, Symbol: f.label})
			continue
		}
		a.obj.Relocs = append(a.obj.Relocs, Reloc{Kind: RelJump, Offset: f.word, Symbol: f.label})
	}
	return nil
}
