package remote

import (
	"errors"
	"net"
	"sync"
	"time"

	"jkernel/internal/core"
)

// Listener accepts kernel-to-kernel connections and serves the kernel's
// export table (Kernel.Export) to every peer.
type Listener struct {
	k  *core.Kernel
	ln net.Listener

	mu     sync.Mutex
	conns  map[*Conn]struct{}
	closed bool
}

// Listen starts serving kernel k on network/addr ("tcp" or "unix") in the
// background.
func Listen(k *core.Kernel, network, addr string) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	// A listening kernel is a reachable handoff origin: advertise the bound
	// address so peers can tell third parties where to redeem tickets.
	Advertise(k, network, ln.Addr().String())
	l := NewListener(k, ln)
	go l.serve()
	return l, nil
}

// NewListener wraps an already-listening net.Listener without starting the
// accept loop; call Serve to run it in the foreground (workers do).
func NewListener(k *core.Kernel, ln net.Listener) *Listener {
	return &Listener{k: k, ln: ln, conns: make(map[*Conn]struct{})}
}

// Serve runs the accept loop until the listener closes.
func (l *Listener) Serve() error {
	return l.serve()
}

func (l *Listener) serve() error {
	var delay time.Duration
	for {
		nc, err := l.ln.Accept()
		if err != nil {
			if l.isClosed() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			// Transient failures (EMFILE under fd pressure, aborted
			// handshakes) must not silently stop the accept loop: back off
			// and keep serving, as net/http does.
			if delay == 0 {
				delay = 5 * time.Millisecond
			} else if delay *= 2; delay > time.Second {
				delay = time.Second
			}
			time.Sleep(delay)
			continue
		}
		delay = 0
		conn, cerr := NewConn(l.k, nc)
		if cerr != nil {
			//jk:allow(faultpath) the handshake failed before a connection existed: dropping the socket is the whole fault path, and Close's error has no one left to inform
			nc.Close()
			continue
		}
		l.track(conn)
	}
}

func (l *Listener) track(c *Conn) {
	l.mu.Lock()
	l.conns[c] = struct{}{}
	l.mu.Unlock()
	go func() {
		<-c.Done()
		l.mu.Lock()
		delete(l.conns, c)
		l.mu.Unlock()
	}()
}

func (l *Listener) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// Addr returns the listening address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Conns returns the currently live accepted connections (diagnostics:
// table-occupancy inspection, leak tests).
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	conns := make([]*Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	return conns
}

// Close stops accepting and tears down every live connection.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]*Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}
