package remote

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jkernel/internal/core"
)

// Three-party handoff tests: kernel A (origin) exports a capability, B
// (middleman) imports it and re-exports it to C (receiver), and C
// silently redeems the handoff ticket for a direct A–C import. The
// relay path must keep working whenever shortening cannot happen —
// disabled handoff, unreachable origin, revocation racing the redeem.

// capHolder republishes whatever capability the test parked in it — the
// middleman's re-export surface.
type capHolder struct {
	mu  sync.Mutex
	cap *core.Capability
}

func (h *capHolder) set(cap *core.Capability) {
	h.mu.Lock()
	h.cap = cap
	h.mu.Unlock()
}

func (h *capHolder) Get() (*core.Capability, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.cap == nil {
		return nil, errors.New("holder is empty")
	}
	return h.cap, nil
}

// triple is three kernels chained over real unix sockets: B dials A, C
// dials B, and (when a handoff is redeemed) C dials A directly.
type triple struct {
	a, b, c          *core.Kernel
	aDom, bDom, cDom *core.Domain
	lnA, lnB         *Listener
	sockA            string
	ba               *Conn // B's connection to A
	cb               *Conn // C's connection to B
	ab               *Conn // A's server-side connection for B's dial
	bc               *Conn // B's server-side connection for C's dial
	holder           *capHolder
	taskB            *core.Task
	taskC            *core.Task
}

func newTriple(t testing.TB) *triple {
	t.Helper()
	tr := &triple{
		a: core.MustNew(core.Options{}),
		b: core.MustNew(core.Options{}),
		c: core.MustNew(core.Options{}),
	}
	var err error
	if tr.aDom, err = tr.a.NewDomain(core.DomainConfig{Name: "origin"}); err != nil {
		t.Fatal(err)
	}
	if tr.bDom, err = tr.b.NewDomain(core.DomainConfig{Name: "middle"}); err != nil {
		t.Fatal(err)
	}
	if tr.cDom, err = tr.c.NewDomain(core.DomainConfig{Name: "receiver"}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tr.sockA = filepath.Join(dir, "a.sock")
	sockB := filepath.Join(dir, "b.sock")
	if tr.lnA, err = Listen(tr.a, "unix", tr.sockA); err != nil {
		t.Fatal(err)
	}
	if tr.lnB, err = Listen(tr.b, "unix", sockB); err != nil {
		t.Fatal(err)
	}
	if tr.ba, err = Dial(tr.b, "unix", tr.sockA); err != nil {
		t.Fatal(err)
	}
	tr.ab = serverConn(t, tr.lnA)
	if tr.cb, err = Dial(tr.c, "unix", sockB); err != nil {
		t.Fatal(err)
	}
	tr.bc = serverConn(t, tr.lnB)
	tr.holder = &capHolder{}
	holderCap, err := tr.b.CreateNativeCapability(tr.bDom, tr.holder)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.b.Export("holder", holderCap); err != nil {
		t.Fatal(err)
	}
	tr.taskB = tr.b.NewDetachedTask(tr.bDom, "triple-b")
	tr.taskC = tr.c.NewDetachedTask(tr.cDom, "triple-c")
	t.Cleanup(func() {
		tr.cb.Close()
		tr.ba.Close()
		tr.lnB.Close()
		tr.lnA.Close()
	})
	return tr
}

// waitEligible blocks until every listed connection has completed its
// feature handshake (offers are only minted toward announced peers).
// Deliberately independent of SetHandoff, so disabled-path tests can
// still synchronize on the handshake.
func waitEligible(t testing.TB, conns ...*Conn) {
	t.Helper()
	known := func(c *Conn) bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.featKnown && c.peerFeatures&featHandoff != 0
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, c := range conns {
		for !known(c) {
			if time.Now().After(deadline) {
				t.Fatal("feature handshake never completed")
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// relayImport runs one grant through the chain: B imports A's
// "origin-svc" export, parks it in the holder, and C re-imports it
// through B. The returned proxy is the relay import (possibly already
// shortened in the background).
func (tr *triple) relayImport(t testing.TB) *core.Capability {
	t.Helper()
	proxy, err := tr.ba.Import("origin-svc")
	if err != nil {
		t.Fatal(err)
	}
	tr.holder.set(proxy)
	holder, err := tr.cb.Import("holder")
	if err != nil {
		t.Fatal(err)
	}
	res, err := holder.InvokeFrom(tr.taskC, "Get")
	if err != nil {
		t.Fatal(err)
	}
	cap, ok := res[0].(*core.Capability)
	if !ok {
		t.Fatalf("Get returned %#v", res)
	}
	return cap
}

func waitShortened(t testing.TB, tr *triple, cap *core.Capability) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !HandoffDone(cap) {
		if time.Now().After(deadline) {
			reg := tr.c.Telemetry()
			t.Fatalf("handoff never redeemed (offers=%d redeemed=%d fallback=%d revoked=%d)",
				tr.b.Telemetry().Counter("remote.handoff.offers").Value(),
				reg.Counter("remote.handoff.redeemed").Value(),
				reg.Counter("remote.handoff.fallback").Value(),
				reg.Counter("remote.handoff.revoked").Value())
		}
		time.Sleep(time.Millisecond)
	}
}

func counterValue(k *core.Kernel, name string) int64 {
	return k.Telemetry().Counter(name).Value()
}

// The happy path: a re-exported import is silently shortened to a direct
// origin connection, the middleman's tables drain back to baseline, and
// the capability keeps working after the middleman's upstream link dies.
func TestHandoffShortensReexport(t *testing.T) {
	tr := newTriple(t)
	svc, err := tr.a.CreateNativeCapability(tr.aDom, echoSvc{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.a.Export("origin-svc", svc); err != nil {
		t.Fatal(err)
	}
	waitEligible(t, tr.ba, tr.bc)

	cap := tr.relayImport(t)
	if res, err := cap.InvokeFrom(tr.taskC, "Echo", "via-b"); err != nil || res[0] != any("via-b") {
		t.Fatalf("relay invoke: %v %#v", err, res)
	}
	waitShortened(t, tr, cap)

	// The shortened proxy never lazy-fetches through the middleman: the
	// manifest arrived with the redeem reply.
	if ms := cap.Methods(); len(ms) == 0 {
		t.Fatal("redeemed import has no prefetched manifest")
	}
	if res, err := cap.InvokeFrom(tr.taskC, "Echo", "direct"); err != nil || res[0] != any("direct") {
		t.Fatalf("shortened invoke: %v %#v", err, res)
	}

	// The middleman drops out of the route: its relay export to C dies,
	// which unpins its own import — but B still HOLDS that import (the
	// holder), so the entry stays and B's proxy keeps working. Only the
	// relay plumbing drains.
	waitTables(t, "middleman B->C", tr.bc, TableSizes{Exports: 1, ExportIDs: 1, Unhook: 1}) // just the holder
	waitTables(t, "middleman B->A", tr.ba, TableSizes{Imports: 1})                          // B's own origin-svc import
	if res, err := tr.holder.cap.InvokeFrom(tr.taskB, "Echo", "b-still-works"); err != nil || res[0] != any("b-still-works") {
		t.Fatalf("middleman's own import died with the handoff: %v %#v", err, res)
	}
	if got := counterValue(tr.c, "remote.handoff.redeemed"); got != 1 {
		t.Fatalf("redeemed counter = %d, want 1", got)
	}
	if tickets := HandoffTableSizes(tr.a).Tickets; tickets != 0 {
		t.Fatalf("origin still holds %d tickets", tickets)
	}

	// Directness proof: sever B's upstream connection entirely — a relay
	// would fault, the shortened route does not care.
	tr.ba.Close()
	if res, err := cap.InvokeFrom(tr.taskC, "Sum", int64(40), int64(2)); err != nil || res[0] != any(int64(42)) {
		t.Fatalf("invoke after middleman upstream loss: %v %#v", err, res)
	}
}

// An unreachable origin leaves the relay path untouched: the capability
// keeps working through the middleman and no shortening is claimed.
func TestHandoffFallbackWhenOriginUnreachable(t *testing.T) {
	tr := newTriple(t)
	svc, err := tr.a.CreateNativeCapability(tr.aDom, echoSvc{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.a.Export("origin-svc", svc); err != nil {
		t.Fatal(err)
	}
	waitEligible(t, tr.ba, tr.bc)

	proxy, err := tr.ba.Import("origin-svc")
	if err != nil {
		t.Fatal(err)
	}
	tr.holder.set(proxy)

	// Unlink A's socket AFTER B's connection is up: the established B–A
	// link lives on (so the offer is still minted with A's address), but
	// C's redeem dial must fail and fall back to the relay.
	os.Remove(tr.sockA)

	holder, err := tr.cb.Import("holder")
	if err != nil {
		t.Fatal(err)
	}
	res, err := holder.InvokeFrom(tr.taskC, "Get")
	if err != nil {
		t.Fatal(err)
	}
	cap := res[0].(*core.Capability)

	deadline := time.Now().Add(15 * time.Second)
	for counterValue(tr.c, "remote.handoff.fallback") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("redeem never fell back")
		}
		time.Sleep(time.Millisecond)
	}
	if HandoffDone(cap) {
		t.Fatal("handoff claimed shortened with the origin unreachable")
	}
	if res, err := cap.InvokeFrom(tr.taskC, "Echo", "still-relayed"); err != nil || res[0] != any("still-relayed") {
		t.Fatalf("relay fallback invoke: %v %#v", err, res)
	}
}

// Disabling handoff on the middleman pins re-exports to the relay path:
// no offers, no tickets, and the capability still works.
func TestHandoffDisabledPinsRelay(t *testing.T) {
	tr := newTriple(t)
	SetHandoff(tr.b, false)
	svc, err := tr.a.CreateNativeCapability(tr.aDom, echoSvc{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.a.Export("origin-svc", svc); err != nil {
		t.Fatal(err)
	}
	waitEligible(t, tr.ba, tr.bc)

	cap := tr.relayImport(t)
	if res, err := cap.InvokeFrom(tr.taskC, "Echo", "relay-only"); err != nil || res[0] != any("relay-only") {
		t.Fatalf("relay invoke: %v %#v", err, res)
	}
	// Give any stray offer time to land, then assert none was minted.
	time.Sleep(50 * time.Millisecond)
	if got := counterValue(tr.b, "remote.handoff.offers"); got != 0 {
		t.Fatalf("disabled middleman minted %d offers", got)
	}
	if HandoffDone(cap) {
		t.Fatal("handoff claimed shortened with minting disabled")
	}
	if tickets := HandoffTableSizes(tr.a).Tickets; tickets != 0 {
		t.Fatalf("origin holds %d tickets from a disabled middleman", tickets)
	}
}

// End-to-end revocation across a shortened path: A revokes while C holds
// in-flight sync and async calls on the redeemed import — everything
// resolves with the capability fault, nothing hangs. The second half
// re-runs the scenario on the relay fallback (handoff disabled).
func TestHandoffRevocationAcrossShortenedPath(t *testing.T) {
	for _, relayOnly := range []bool{false, true} {
		name := "shortened"
		if relayOnly {
			name = "relay-fallback"
		}
		t.Run(name, func(t *testing.T) {
			tr := newTriple(t)
			if relayOnly {
				SetHandoff(tr.b, false)
			}
			block := &blockSvc{gate: make(chan struct{})}
			svc, err := tr.a.CreateNativeCapability(tr.aDom, block)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.a.Export("origin-svc", svc); err != nil {
				t.Fatal(err)
			}
			waitEligible(t, tr.ba, tr.bc)
			cap := tr.relayImport(t)
			if !relayOnly {
				waitShortened(t, tr, cap)
			}

			// In-flight traffic: a parked sync call and a wave of futures.
			syncErr := make(chan error, 1)
			go func() {
				_, err := cap.InvokeFrom(tr.c.NewDetachedTask(tr.cDom, "sync-wait"), "Wait")
				syncErr <- err
			}()
			futs := make([]*core.Future, 8)
			for i := range futs {
				futs[i] = cap.InvokeAsyncFrom(tr.taskC, "Wait")
			}
			tr.cb.Flush()
			time.Sleep(20 * time.Millisecond) // let the calls park server-side

			svc.Revoke()
			close(block.gate) // unblock the servers; replies race the push

			for i, fut := range futs {
				if _, err := fut.Wait(); err != nil && !capFault(err) {
					t.Fatalf("future %d: non-capability fault %v", i, err)
				}
			}
			if err := <-syncErr; err != nil && !capFault(err) {
				t.Fatalf("sync call: non-capability fault %v", err)
			}

			// The push reached C: every further call faults.
			deadline := time.Now().Add(10 * time.Second)
			for {
				_, err := cap.InvokeFrom(tr.taskC, "Ping")
				if capFault(err) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("revocation never reached the receiver (last err: %v)", err)
				}
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// Mid-redeem revocation: a ticket whose gate dies between mint and redeem
// must fault the redemption, never resurrect the export. Driven
// deterministically through the origin's own tables.
func TestHandoffMidRedeemRevocationFaults(t *testing.T) {
	tr := newTriple(t)
	svc, err := tr.a.CreateNativeCapability(tr.aDom, echoSvc{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.a.Export("origin-svc", svc); err != nil {
		t.Fatal(err)
	}
	waitEligible(t, tr.ba, tr.bc)

	// Mint a ticket by hand at the origin, then revoke the gate before
	// anyone redeems: the redeem must answer with the capability fault.
	nonce := newNonce()
	if err := stateOf(tr.a).registerTicket(nonce, svc, 7); err != nil {
		t.Fatal(err)
	}
	svc.Revoke()

	oc, err := stateOf(tr.c).originConn(tr.c, "unix", tr.sockA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oc.sendRedeem(nonce, 7); !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("redeem of a revoked ticket: %v, want ErrRevoked", err)
	}
	if got := HandoffTableSizes(tr.a).Tickets; got != 0 {
		t.Fatalf("consumed ticket still registered (%d left)", got)
	}
	// One-time semantics: the same nonce can never be redeemed twice.
	if _, err := oc.sendRedeem(nonce, 7); err == nil {
		t.Fatal("second redeem of a one-time ticket succeeded")
	}
}

// The -race stress companion to the mid-redeem race: grants are minted,
// handed off, and revoked concurrently; every outcome must be either a
// working (possibly shortened) import or a clean capability fault, and
// all three kernels' handoff tables must drain.
func TestHandoffStressMintRedeemRevoke(t *testing.T) {
	tr := newTriple(t)
	maker := &churnMaker{k: tr.a, d: tr.aDom}
	mcap, err := tr.a.CreateNativeCapability(tr.aDom, maker)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.a.Export("maker", mcap); err != nil {
		t.Fatal(err)
	}
	waitEligible(t, tr.ba, tr.bc)
	bmaker, err := tr.ba.Import("maker")
	if err != nil {
		t.Fatal(err)
	}
	holder, err := tr.cb.Import("holder")
	if err != nil {
		t.Fatal(err)
	}

	iters := 200
	if testing.Short() {
		iters = 40
	}
	for i := 0; i < iters; i++ {
		res, err := bmaker.InvokeFrom(tr.taskB, "Make")
		if err != nil {
			t.Fatalf("iter %d: Make: %v", i, err)
		}
		fresh := res[0].(*core.Capability)
		tr.holder.set(fresh)
		got, err := holder.InvokeFrom(tr.taskC, "Get")
		if err != nil {
			t.Fatalf("iter %d: Get: %v", i, err)
		}
		cap := got[0].(*core.Capability)

		// Revocation races the background redeem from a second goroutine.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
			}
			if _, err := bmaker.InvokeFrom(tr.taskB, "RevokeLast"); err != nil {
				t.Errorf("iter %d: RevokeLast: %v", i, err)
			}
		}()
		if _, err := cap.InvokeFrom(tr.taskC, "Add", int64(1)); err != nil && !capFault(err) {
			t.Fatalf("iter %d: non-capability fault %v", i, err)
		}
		wg.Wait()
		ReleaseProxy(cap)
		ReleaseProxy(fresh)
	}

	// Tickets are one-time and TTL-bounded; after the storm the origin's
	// table must drain (redeems consumed them, revoked ones answered the
	// fault) and no offer may stay parked at the receiver.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ht := HandoffTableSizes(tr.a)
		cs := tr.cb.TableSizes()
		if ht.Tickets == 0 && cs.Handoffs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handoff tables never drained: origin=%+v receiver=%+v", ht, cs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Depth-2 relay manifest regression: with shortening disabled the chain
// A->B->C->D stays a two-deep relay, and a manifest fetch on the deepest
// import must traverse it without wedging any connection's reader.
func TestHandoffDepthTwoRelayManifest(t *testing.T) {
	tr := newTriple(t)
	// Disable shortening everywhere: this test wants the pure relay chain.
	SetHandoff(tr.a, false)
	SetHandoff(tr.b, false)
	SetHandoff(tr.c, false)
	d := core.MustNew(core.Options{})
	SetHandoff(d, false)
	dDom, err := d.NewDomain(core.DomainConfig{Name: "deep"})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := tr.a.CreateNativeCapability(tr.aDom, echoSvc{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.a.Export("origin-svc", svc); err != nil {
		t.Fatal(err)
	}
	cap := tr.relayImport(t) // depth-1 relay at C

	// Re-export the relay one hop further: C -> D.
	sockC := filepath.Join(t.TempDir(), "c.sock")
	lnC, err := Listen(tr.c, "unix", sockC)
	if err != nil {
		t.Fatal(err)
	}
	defer lnC.Close()
	deepHolder := &capHolder{}
	deepHolder.set(cap)
	dh, err := tr.c.CreateNativeCapability(tr.cDom, deepHolder)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.c.Export("deep-holder", dh); err != nil {
		t.Fatal(err)
	}
	dc, err := Dial(d, "unix", sockC)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	holder, err := dc.Import("deep-holder")
	if err != nil {
		t.Fatal(err)
	}
	taskD := d.NewDetachedTask(dDom, "deep")
	res, err := holder.InvokeFrom(taskD, "Get")
	if err != nil {
		t.Fatal(err)
	}
	deep := res[0].(*core.Capability)

	// The regression: Methods() walks manifest fetches D->C->B->A; each
	// hop must run off its reader so the chain cannot stall behind its
	// own pending reply.
	done := make(chan []string, 1)
	go func() { done <- deep.Methods() }()
	select {
	case ms := <-done:
		if len(ms) == 0 {
			t.Fatal("depth-2 relay manifest came back empty")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("depth-2 relay manifest fetch wedged")
	}
	if res, err := deep.InvokeFrom(taskD, "Echo", "deep"); err != nil || res[0] != any("deep") {
		t.Fatalf("depth-2 invoke: %v %#v", err, res)
	}
}

// Ticket-table flood discipline: a middleman registering more tickets
// than one TTL window allows is refused, reusing the preRevoked bound
// semantics (the connection-level caller faults on the error).
func TestHandoffTicketFloodRefused(t *testing.T) {
	k := core.MustNew(core.Options{})
	d, err := k.NewDomain(core.DomainConfig{Name: "flood"})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := k.CreateNativeCapability(d, echoSvc{})
	if err != nil {
		t.Fatal(err)
	}
	ks := stateOf(k)
	for i := 0; i < maxTickets; i++ {
		if err := ks.registerTicket(uint64(i+1), cap, uint64(i)); err != nil {
			t.Fatalf("ticket %d refused below the cap: %v", i, err)
		}
	}
	if err := ks.registerTicket(uint64(maxTickets+1), cap, 0); err == nil {
		t.Fatal("ticket table grew past its bound")
	}
}

// TestChurnThreeKernelTablesReturnToBaseline is satellite coverage for
// the relayed-capability release leak: grant/relay/redeem/release cycles
// across three kernels must leave every table — A's exports, B's relay
// entries and upstream imports, C's imports, and the origin's ticket
// table — at its pre-churn size. (The TestChurn prefix keeps it inside
// the CI leak-soak pattern.)
func TestChurnThreeKernelTablesReturnToBaseline(t *testing.T) {
	tr := newTriple(t)
	maker := &churnMaker{k: tr.a, d: tr.aDom}
	mcap, err := tr.a.CreateNativeCapability(tr.aDom, maker)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.a.Export("maker", mcap); err != nil {
		t.Fatal(err)
	}
	waitEligible(t, tr.ba, tr.bc)
	bmaker, err := tr.ba.Import("maker")
	if err != nil {
		t.Fatal(err)
	}
	holder, err := tr.cb.Import("holder")
	if err != nil {
		t.Fatal(err)
	}

	baBase := TableSizes{Imports: 1}                          // B's maker proxy
	abBase := TableSizes{Exports: 1, ExportIDs: 1, Unhook: 1} // A's maker export
	bcBase := TableSizes{Exports: 1, ExportIDs: 1, Unhook: 1} // B's holder export
	cbBase := TableSizes{Imports: 1}                          // C's holder proxy
	waitTables(t, "B->A pre-churn", tr.ba, baBase)
	waitTables(t, "A->B pre-churn", tr.ab, abBase)

	cycles := 2000
	if testing.Short() {
		cycles = 300
	}
	for i := 0; i < cycles; i++ {
		res, err := bmaker.InvokeFrom(tr.taskB, "Make")
		if err != nil {
			t.Fatalf("cycle %d: Make: %v", i, err)
		}
		fresh := res[0].(*core.Capability)
		tr.holder.set(fresh)
		got, err := holder.InvokeFrom(tr.taskC, "Get")
		if err != nil {
			t.Fatalf("cycle %d: Get: %v", i, err)
		}
		cap := got[0].(*core.Capability)
		switch i % 3 {
		case 0:
			// Use, then release from the receiver outward: the relay
			// entry's death must propagate B's own references upstream.
			if _, err := cap.InvokeFrom(tr.taskC, "Add", int64(1)); err != nil && !capFault(err) {
				t.Fatalf("cycle %d: Add: %v", i, err)
			}
			ReleaseProxy(cap)
			ReleaseProxy(fresh)
		case 1:
			// Origin-side revocation mid-flight: the push must clear all
			// three kernels whether or not the redeem won the race.
			if _, err := bmaker.InvokeFrom(tr.taskB, "RevokeLast"); err != nil {
				t.Fatalf("cycle %d: RevokeLast: %v", i, err)
			}
			ReleaseProxy(cap)
			ReleaseProxy(fresh)
		case 2:
			// Release without ever invoking (the redeem may still be in
			// flight when the proxy dies).
			ReleaseProxy(cap)
			ReleaseProxy(fresh)
		}
	}

	waitTables(t, "B->A post-churn", tr.ba, baBase)
	waitTables(t, "A->B post-churn", tr.ab, abBase)
	waitTables(t, "B->C post-churn", tr.bc, bcBase)
	waitTables(t, "C->B post-churn", tr.cb, cbBase)
	deadline := time.Now().Add(30 * time.Second)
	for {
		at := HandoffTableSizes(tr.a)
		if at.Tickets == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("origin ticket table never drained: %+v", at)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The direct A<-C connection minted per-cycle exports; all of them
	// must be released once every redeemed proxy died.
	for _, conn := range tr.lnA.Conns() {
		if conn == tr.ab {
			continue
		}
		waitTables(t, "A->C post-churn", conn, TableSizes{})
	}
}
