package remote

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Pooled frame buffers — the allocation half of the zero-copy hot path.
//
// Every wire frame, outbound or inbound, lives in a frameBuf drawn from a
// size-classed pool (power-of-two classes, 512 B up to maxFrame). The
// ownership rules, which README's "wire hot path" section documents for
// integrators:
//
//   - Writers: the goroutine building a frame holds the buffer from
//     getFrame until the frame is on the wire (or abandoned), then calls
//     release. Encoded argument/result payloads (marshalVectorInto) live
//     inside the same buffer, so nothing outlives the send.
//   - Readers: the read loop owns one reference for the dispatch of each
//     inbound frame. Decoded payloads that alias the frame
//     (invokeFrame.args, replyFrame.body) are only read inside that hold;
//     anything retained past dispatch — strings, decoded seri values — is
//     copied out by the parsers/decoder. Invoke handlers run off the
//     reader goroutine, so dispatch retains an extra reference per invoke
//     frame that the handler drops the moment unmarshalVector returns.
//
// A buffer returns to the pool only when its refcount hits zero. With
// poisoning on (SetBufferPoison, the lifetime-regression debug mode),
// every returned buffer is overwritten with 0xDB first, so a use-after-
// release shows up as corrupt data or a decode error instead of a
// heisenbug.

const (
	minBufClass = 9  // 512 B — smaller frames just use the smallest class
	maxBufClass = 24 // 16 MiB == maxFrame
)

// framePools[c] holds *frameBuf with cap(b) >= 1<<c.
var framePools [maxBufClass + 1]sync.Pool

// poisonPut, when on, overwrites buffers with 0xDB as they return to the
// pool. Test/debug mode: it turns "recycled while still referenced" into a
// deterministic data corruption the lifetime regression can detect.
var poisonPut atomic.Bool

// SetBufferPoison toggles poison-on-put for the frame-buffer pools.
func SetBufferPoison(on bool) { poisonPut.Store(on) }

// frameBuf is one pooled, refcounted frame buffer. b is the live frame
// content; writers append to it (marshalVectorInto may grow and replace
// the backing array — release re-classes by final capacity).
type frameBuf struct {
	b    []byte //jk:data
	refs atomic.Int32
}

// bufClass is the pool class for a buffer of at least n bytes: the
// smallest power-of-two class that fits, floored at minBufClass.
func bufClass(n int) int {
	if n <= 1<<minBufClass {
		return minBufClass
	}
	return bits.Len(uint(n - 1)) // ceil(log2 n)
}

// getFrame returns a buffer with len(b) == 0 and cap(b) >= n, holding one
// reference. n beyond maxFrame is the caller's protocol error; the buffer
// is still served (unpooled) so the size check can fail gracefully.
//
//jk:acquire
func getFrame(n int) *frameBuf {
	c := bufClass(n)
	if c > maxBufClass {
		fb := &frameBuf{b: make([]byte, 0, n)}
		fb.refs.Store(1)
		return fb
	}
	if v := framePools[c].Get(); v != nil {
		fb := v.(*frameBuf)
		fb.b = fb.b[:0]
		fb.refs.Store(1)
		return fb
	}
	fb := &frameBuf{b: make([]byte, 0, 1<<c)}
	fb.refs.Store(1)
	return fb
}

// retain adds one reference (dispatch handing an invoke frame to an
// off-reader handler).
//
//jk:retain
func (fb *frameBuf) retain() { fb.refs.Add(1) }

// release drops one reference; the last one returns the buffer to its
// size-class pool. A buffer that grew past its class (append moved the
// backing array) is re-homed by its final capacity, so pool classes keep
// their >= 1<<class invariant.
//
//jk:release
func (fb *frameBuf) release() {
	n := fb.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("remote: frameBuf released more times than retained")
	}
	cp := cap(fb.b)
	c := bits.Len(uint(cp)) - 1 // floor(log2 cap): cap >= 1<<c holds
	if c < minBufClass || c > maxBufClass {
		return // odd-sized stray; let the GC have it
	}
	if poisonPut.Load() {
		b := fb.b[:cp]
		for i := range b {
			b[i] = 0xDB
		}
	}
	fb.b = fb.b[:0]
	framePools[c].Put(fb)
}
