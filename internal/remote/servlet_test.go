package remote

import (
	"errors"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/httpd"
)

// remoteServlet runs in the worker kernel and follows the native servlet
// contract.
type remoteServlet struct{}

func (remoteServlet) Service(req *httpd.Request) (*httpd.Response, error) {
	return &httpd.Response{
		Status:  200,
		Headers: map[string]string{"X-Worker": "1"},
		Body:    []byte("remote:" + req.Path),
	}, nil
}

// TestRemoteServletDispatch serves HTTP from a supervisor kernel whose
// servlet lives in a second kernel behind the wire: the bridge cannot
// tell, and a dead worker degrades to 503, not a crash.
func TestRemoteServletDispatch(t *testing.T) {
	// Worker kernel: hosts the servlet, exports it.
	worker := core.MustNew(core.Options{})
	httpd.RegisterTypes(worker)
	wd, err := worker.NewDomain(core.DomainConfig{Name: "servlets"})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := worker.CreateNativeCapability(wd, remoteServlet{})
	if err != nil {
		t.Fatal(err)
	}
	if err := worker.Export("servlet", cap); err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "servlet.sock")
	ln, err := Listen(worker, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Supervisor kernel: front server + bridge, servlet mounted remotely.
	sup := core.MustNew(core.Options{})
	bridge, err := httpd.NewBridge(sup)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(sup, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	proxy, err := conn.Import("servlet")
	if err != nil {
		t.Fatal(err)
	}
	if err := bridge.MountRemote("remote", "/r/", proxy); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("GET", "/r/hello", nil)
	rec := httptest.NewRecorder()
	bridge.ServeHTTP(rec, req)
	if rec.Code != 200 || rec.Body.String() != "remote:/r/hello" {
		t.Fatalf("remote dispatch: %d %q", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Worker") != "1" {
		t.Fatalf("headers lost: %v", rec.Header())
	}

	// Terminating one remote servlet revokes only its proxy: the
	// connection, its domain, and other imports stay usable.
	if err := bridge.TerminateServlet("remote"); err != nil {
		t.Fatal(err)
	}
	if conn.Domain().Terminated() {
		t.Fatal("terminating a remote servlet killed the whole connection domain")
	}
	if err := conn.Ping(2 * time.Second); err != nil {
		t.Fatalf("connection unusable after remote servlet terminate: %v", err)
	}
	// Remount for the worker-death check below.
	proxy2, err := conn.Import("servlet")
	if err != nil {
		t.Fatal(err)
	}
	if err := bridge.MountRemote("remote2", "/r/", proxy2); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	bridge.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("remounted servlet: %d %q", rec.Code, rec.Body.String())
	}

	// Worker death degrades to 503 (unavailable), never a crash.
	ln.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec = httptest.NewRecorder()
		bridge.ServeHTTP(rec, req)
		if rec.Code != 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker death never surfaced")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rec.Code != 503 {
		t.Fatalf("dead worker: got %d %q, want 503", rec.Code, rec.Body.String())
	}
}

// faultRecorder is a minimal httpd.Control that records servlet faults.
type faultRecorder struct {
	mu     sync.Mutex
	faults []string
}

func (f *faultRecorder) UploadServlet(name, prefix, main string, bundle map[string][]byte) error {
	return errors.New("not implemented")
}
func (f *faultRecorder) TerminateServlet(name string) (bool, error) { return false, nil }
func (f *faultRecorder) ServletFault(name string, err error) {
	f.mu.Lock()
	f.faults = append(f.faults, name)
	f.mu.Unlock()
}
func (f *faultRecorder) ObserveRequest(name string, status int, err error, dur time.Duration) {}

// TestRemoteServletFaultAutoUnmount checks the two fault policies: a
// remote mount whose backing capability faults (worker connection lost)
// is removed from the router when no control plane is installed (no
// errors forever), and kept mounted — but reported — when one is, so the
// controller can atomically swap in a replacement with no 404 window.
func TestRemoteServletFaultAutoUnmount(t *testing.T) {
	worker := core.MustNew(core.Options{})
	httpd.RegisterTypes(worker)
	wd, err := worker.NewDomain(core.DomainConfig{Name: "servlets"})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := worker.CreateNativeCapability(wd, remoteServlet{})
	if err != nil {
		t.Fatal(err)
	}
	if err := worker.Export("servlet", cap); err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "fault.sock")
	ln, err := Listen(worker, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	sup := core.MustNew(core.Options{})
	bridge, err := httpd.NewBridge(sup)
	if err != nil {
		t.Fatal(err)
	}
	mountFlaky := func(name string) *Conn {
		t.Helper()
		conn, err := Dial(sup, "unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		proxy, err := conn.Import("servlet")
		if err != nil {
			t.Fatal(err)
		}
		if err := bridge.MountRemote(name, "/f/", proxy); err != nil {
			t.Fatal(err)
		}
		return conn
	}
	waitFault := func() int {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			r := httptest.NewRecorder()
			bridge.ServeHTTP(r, httptest.NewRequest("GET", "/f/x", nil))
			if r.Code != 200 {
				return r.Code
			}
			if time.Now().After(deadline) {
				t.Fatal("fault never surfaced")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// No control plane: sever the connection, the proxy faults with a
	// revocation, and the dead mount must be gone — the next request 404s
	// instead of hitting a revoked proxy forever.
	conn := mountFlaky("flaky")
	conn.Close()
	if code := waitFault(); code != 503 {
		t.Fatalf("faulted servlet: got %d, want 503", code)
	}
	for _, n := range bridge.Router.Names() {
		if n == "flaky" {
			t.Fatal("faulted remote mount still in the router")
		}
	}
	r := httptest.NewRecorder()
	bridge.ServeHTTP(r, httptest.NewRequest("GET", "/f/x", nil))
	if r.Code != 404 {
		t.Fatalf("unmounted servlet: got %d, want 404", r.Code)
	}

	// With a control plane installed the route must survive the fault
	// (503, not 404 — re-placement is the controller's job), and the
	// controller must hear about it.
	rec := &faultRecorder{}
	bridge.SetControl(rec)
	conn = mountFlaky("flaky2")
	conn.Close()
	if code := waitFault(); code != 503 {
		t.Fatalf("faulted servlet under control plane: got %d, want 503", code)
	}
	found := false
	for _, n := range bridge.Router.Names() {
		if n == "flaky2" {
			found = true
		}
	}
	if !found {
		t.Fatal("control plane installed, but the faulted route was unmounted")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.faults) == 0 || rec.faults[0] != "flaky2" {
		t.Fatalf("control plane faults = %v, want [flaky2 ...]", rec.faults)
	}
}
