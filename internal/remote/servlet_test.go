package remote

import (
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/httpd"
)

// remoteServlet runs in the worker kernel and follows the native servlet
// contract.
type remoteServlet struct{}

func (remoteServlet) Service(req *httpd.Request) (*httpd.Response, error) {
	return &httpd.Response{
		Status:  200,
		Headers: map[string]string{"X-Worker": "1"},
		Body:    []byte("remote:" + req.Path),
	}, nil
}

// TestRemoteServletDispatch serves HTTP from a supervisor kernel whose
// servlet lives in a second kernel behind the wire: the bridge cannot
// tell, and a dead worker degrades to 503, not a crash.
func TestRemoteServletDispatch(t *testing.T) {
	// Worker kernel: hosts the servlet, exports it.
	worker := core.MustNew(core.Options{})
	httpd.RegisterTypes(worker)
	wd, err := worker.NewDomain(core.DomainConfig{Name: "servlets"})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := worker.CreateNativeCapability(wd, remoteServlet{})
	if err != nil {
		t.Fatal(err)
	}
	if err := worker.Export("servlet", cap); err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "servlet.sock")
	ln, err := Listen(worker, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Supervisor kernel: front server + bridge, servlet mounted remotely.
	sup := core.MustNew(core.Options{})
	bridge, err := httpd.NewBridge(sup)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(sup, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	proxy, err := conn.Import("servlet")
	if err != nil {
		t.Fatal(err)
	}
	if err := bridge.MountRemote("remote", "/r/", proxy); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("GET", "/r/hello", nil)
	rec := httptest.NewRecorder()
	bridge.ServeHTTP(rec, req)
	if rec.Code != 200 || rec.Body.String() != "remote:/r/hello" {
		t.Fatalf("remote dispatch: %d %q", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Worker") != "1" {
		t.Fatalf("headers lost: %v", rec.Header())
	}

	// Terminating one remote servlet revokes only its proxy: the
	// connection, its domain, and other imports stay usable.
	if err := bridge.TerminateServlet("remote"); err != nil {
		t.Fatal(err)
	}
	if conn.Domain().Terminated() {
		t.Fatal("terminating a remote servlet killed the whole connection domain")
	}
	if err := conn.Ping(2 * time.Second); err != nil {
		t.Fatalf("connection unusable after remote servlet terminate: %v", err)
	}
	// Remount for the worker-death check below.
	proxy2, err := conn.Import("servlet")
	if err != nil {
		t.Fatal(err)
	}
	if err := bridge.MountRemote("remote2", "/r/", proxy2); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	bridge.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("remounted servlet: %d %q", rec.Code, rec.Body.String())
	}

	// Worker death degrades to 503 (unavailable), never a crash.
	ln.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec = httptest.NewRecorder()
		bridge.ServeHTTP(rec, req)
		if rec.Code != 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker death never surfaced")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rec.Code != 503 {
		t.Fatalf("dead worker: got %d %q, want 503", rec.Code, rec.Body.String())
	}
}
