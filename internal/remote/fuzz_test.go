package remote

import (
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/seri"
)

// fuzzRef stands in for a capability in fuzzed streams: the External hook
// accepts any handle, so the fuzzer can reach past the reference tags.
type fuzzRef struct{ H uint64 }

type fuzzWireExt struct{}

func (fuzzWireExt) EncodeExternal(v any) (uint64, bool) {
	if r, ok := v.(*fuzzRef); ok {
		return r.H, true
	}
	return 0, false
}

func (fuzzWireExt) DecodeExternal(h uint64) (any, error) {
	return &fuzzRef{H: h}, nil
}

// seedFrames builds one of every protocol frame with the same encoders
// the live connection uses — a captured-traffic corpus without the
// capture: these are byte-for-byte the frames a real exchange produces.
func seedFrames() [][]byte {
	reg := seri.NewRegistry()
	args, err := seri.MarshalExt(reg, []any{"hello", int64(42), []byte{1, 2, 3}, &fuzzRef{H: 7}}, fuzzWireExt{})
	if err != nil {
		panic(err)
	}
	results, err := seri.Marshal(reg, []any{int64(1), "ok"})
	if err != nil {
		panic(err)
	}

	var frames [][]byte
	add := func(w *wbuf) { frames = append(frames, w.b) }

	// Single invoke, untraced (flags byte zero).
	w := &wbuf{}
	w.u8(msgInvoke)
	w.uvarint(1)
	w.uvarint(0)
	w.str("Echo")
	w.u8(0)
	w.raw(args)
	add(w)

	// Single invoke carrying a trace context.
	w = &wbuf{}
	w.u8(msgInvoke)
	w.uvarint(1)
	w.uvarint(0)
	w.str("Echo")
	appendTrace(w, 0xdeadbeefcafe, 42)
	w.raw(args)
	add(w)

	// Batched invoke, traced and untraced calls mixed.
	w = &wbuf{}
	w.u8(msgBatchInvoke)
	w.uvarint(3)
	appendBatchCall(w, 2, 0, "Null", 0, 0, nil)
	appendBatchCall(w, 3, 1, "Sum", 0xfeedface, 7, args)
	appendBatchCall(w, 4, 0, "Echo", 0, 0, args)
	add(w)

	// Replies: success and error.
	w = &wbuf{}
	w.u8(msgReply)
	w.uvarint(1)
	appendReplyBody(w, replyFrame{reqID: 1, status: statusOK, body: results}, false)
	add(w)
	w = &wbuf{}
	w.u8(msgReply)
	w.uvarint(2)
	appendReplyBody(w, replyFrame{reqID: 2, status: statusErr, kind: errKindRevoked, msg: "gone"}, false)
	add(w)

	// Batched reply with mixed per-call status.
	w = &wbuf{}
	w.u8(msgBatchReply)
	w.uvarint(2)
	w.uvarint(3)
	appendReplyBody(w, replyFrame{status: statusOK, body: results}, true)
	w.uvarint(4)
	appendReplyBody(w, replyFrame{status: statusErr, kind: errKindRemote, class: "panic", msg: "boom"}, true)
	add(w)

	// Revocation push.
	w = &wbuf{}
	w.u8(msgRevoke)
	w.uvarint(5)
	w.u8(revokeReasonTerminated)
	add(w)

	// Lookup and its replies.
	w = &wbuf{}
	w.u8(msgLookup)
	w.uvarint(6)
	w.str("counter")
	add(w)
	w = &wbuf{}
	w.u8(msgLookupReply)
	w.uvarint(6)
	w.u8(statusOK)
	w.uvarint(packHandle(9, handleKindTheirs))
	w.uvarint(2)
	w.str("Add")
	w.str("Get")
	add(w)
	w = &wbuf{}
	w.u8(msgLookupReply)
	w.uvarint(7)
	w.u8(statusErr)
	w.u8(errKindNotFound)
	w.str("")
	w.str("no export named \"x\"")
	add(w)

	// Liveness probes: the bare legacy form and the feature-tailed form a
	// handoff-capable build sends (features mask, advertised endpoint).
	w = &wbuf{}
	w.u8(msgPing)
	w.uvarint(8)
	add(w)
	w = &wbuf{}
	w.u8(msgPong)
	w.uvarint(8)
	add(w)
	w = &wbuf{}
	appendPing(w, msgPing, 8, "unix", "/tmp/origin.sock")
	add(w)
	w = &wbuf{}
	appendPing(w, msgPong, 8, "tcp", "10.0.0.7:9090")
	add(w)

	// Batched import releases (export id, receipt count, generation).
	w = &wbuf{}
	w.u8(msgRelease)
	w.uvarint(3)
	appendReleaseEntry(w, releaseEntry{exportID: 9, count: 2, gen: 4})
	appendReleaseEntry(w, releaseEntry{exportID: 0, count: 1, gen: 1})
	appendReleaseEntry(w, releaseEntry{exportID: 1 << 40, count: 7, gen: 300})
	add(w)

	// Lazy manifest fetch and its replies.
	w = &wbuf{}
	w.u8(msgManifest)
	w.uvarint(10)
	w.uvarint(9)
	add(w)
	w = &wbuf{}
	w.u8(msgManifestReply)
	w.uvarint(10)
	w.u8(statusOK)
	w.uvarint(2)
	w.str("Add")
	w.str("Get")
	add(w)
	w = &wbuf{}
	w.u8(msgManifestReply)
	w.uvarint(11)
	w.u8(statusErr)
	w.u8(errKindRevoked)
	w.str("")
	w.str("unknown export 9")
	add(w)

	// Three-party handoff: ticket registration, the offer relayed to the
	// receiver, and the redeem exchange against the origin.
	frames = append(frames, encodeRegister(0xfeedc0ffee, 9))
	frames = append(frames, encodeOffer(3, 9, 0xfeedc0ffee, "unix", "/tmp/origin.sock"))
	w = &wbuf{}
	w.u8(msgRedeem)
	w.uvarint(12)
	w.uvarint(0xfeedc0ffee)
	w.uvarint(9)
	add(w)
	w = &wbuf{}
	w.u8(msgRedeemReply)
	w.uvarint(12)
	w.u8(statusOK)
	w.uvarint(14)
	w.uvarint(2)
	w.str("Add")
	w.str("Get")
	add(w)
	w = &wbuf{}
	w.u8(msgRedeemReply)
	w.uvarint(13)
	w.u8(statusErr)
	w.u8(errKindNotFound)
	w.str("")
	w.str("unknown or expired handoff ticket")
	add(w)

	return frames
}

// FuzzDecodeFrame drives arbitrary bytes through the full inbound decode
// surface: the frame parsers (decodeFrame, exactly what conn.dispatch
// runs) and, for frames that carry them, the seri argument/result
// streams. Malformed input must come back as an error — which faults the
// connection — never as a panic.
func FuzzDecodeFrame(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
	}
	// Malformed trace blocks seed the corpus too: the fuzzer mutates from
	// the rejection paths as well as the happy ones.
	f.Add([]byte{msgInvoke, 1, 0, 4, 'E', 'c', 'h', 'o', 0xff})
	f.Add([]byte{msgInvoke, 1, 0, 4, 'E', 'c', 'h', 'o', 1, 0, 9})
	f.Add([]byte{msgBatchInvoke, 1, 2, 0, 4, 'N', 'u', 'l', 'l', 1, 7})
	// Malformed handoff frames: unknown kind, an offer with no origin
	// address, and a redeem truncated mid-ticket. Each must be rejected
	// (faulting the connection), never panic.
	f.Add([]byte{msgHandoff, 9, 1, 2})
	f.Add([]byte{msgHandoff, handoffOffer, 3, 9, 5, 4, 'u', 'n', 'i', 'x', 0})
	f.Add([]byte{msgRedeem, 12, 0xff})
	reg := seri.NewRegistry()
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, v, err := decodeFrame(data)
		if err != nil {
			return
		}
		// Follow the dispatch path into the embedded seri streams.
		switch typ {
		case msgInvoke:
			_, _ = seri.UnmarshalExt(reg, v.(invokeFrame).args, fuzzWireExt{})
		case msgBatchInvoke:
			for _, call := range v.([]invokeFrame) {
				_, _ = seri.UnmarshalExt(reg, call.args, fuzzWireExt{})
			}
		case msgReply:
			if rep := v.(replyFrame); rep.status == statusOK {
				_, _ = seri.UnmarshalExt(reg, rep.body, fuzzWireExt{})
			}
		case msgBatchReply:
			for _, rep := range v.([]replyFrame) {
				if rep.status == statusOK {
					_, _ = seri.UnmarshalExt(reg, rep.body, fuzzWireExt{})
				}
			}
		}
	})
}

// A malformed frame over a live connection faults that connection — and
// only that connection: the serving kernel keeps serving.
func TestMalformedFrameFaultsConnection(t *testing.T) {
	server := core.MustNew(core.Options{})
	sd, err := server.NewDomain(core.DomainConfig{Name: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := server.CreateNativeCapability(sd, echoSvc{})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Export("echo", cap); err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "fuzz.sock")
	ln, err := Listen(server, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Raw client: a well-framed payload of garbage (bad message type, then
	// a truncated batch on a second connection).
	for _, garbage := range [][]byte{
		{0xff, 0x01, 0x02},
		{msgBatchInvoke, 0xce, 0xff, 0xff}, // count overruns frame
		{msgReply},                         // truncated
		// Malformed trace blocks: unknown flags value, a set trace flag
		// with a zero trace id, and a trace block truncated before the
		// parent span. Each must fault the connection, never panic.
		{msgInvoke, 1, 0, 4, 'E', 'c', 'h', 'o', 0xff},
		{msgInvoke, 1, 0, 4, 'E', 'c', 'h', 'o', 1, 0, 9},
		{msgInvoke, 1, 0, 4, 'E', 'c', 'h', 'o', 1, 7},
	} {
		nc, err := net.Dial("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(nc, garbage); err != nil {
			t.Fatal(err)
		}
		// The server must close this connection (read eventually errors),
		// not crash and not hang. Reads may first see the server-initiated
		// feature-probe ping, so drain until the close lands.
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 4096)
		for {
			_, err := nc.Read(buf)
			if err == nil {
				continue // feature probe or similar chatter; keep draining
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				t.Fatal("server kept talking after a malformed frame")
			}
			break // connection faulted, as required
		}
		nc.Close()
	}

	// The kernel behind the listener is unharmed: a fresh, well-behaved
	// connection still imports and invokes.
	client := core.MustNew(core.Options{})
	cd, err := client.NewDomain(core.DomainConfig{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(client, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	proxy, err := conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	task := client.NewDetachedTask(cd, "after-garbage")
	res, err := proxy.InvokeFrom(task, "Echo", "still here")
	if err != nil || res[0] != any("still here") {
		t.Fatalf("server damaged by malformed frame: %#v %v", res, err)
	}
	if errors.Is(err, core.ErrRevoked) {
		t.Fatal("unexpected revocation")
	}
}
