package remote

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/seri"
)

// connSeq numbers connections for domain naming.
var connSeq atomic.Int64

// ErrConnClosed reports an operation on a closed connection.
var ErrConnClosed = errors.New("remote: connection closed")

// Conn is one kernel-to-kernel connection. It is symmetric: both ends can
// export (answer lookups and invokes from the peer) and import (hold
// proxies for peer capabilities). All proxies imported over the
// connection are owned by a dedicated local domain, so a connection
// teardown is a domain termination: every proxy faults, nothing else in
// the kernel is disturbed.
type Conn struct {
	k      *core.Kernel
	domain *core.Domain

	nc  net.Conn
	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu         sync.Mutex
	nextReq    uint64
	pending    map[uint64]func(wireResult) // reqID -> completion (sync chan send or future resolve)
	exports    map[uint64]*core.Capability // export id -> local capability
	exportIDs  map[*core.Gate]uint64       // dedup: gate -> export id
	nextExport uint64
	imports    map[uint64]*core.Capability // peer export id -> local proxy
	preRevoked map[uint64]byte             // revokes that raced ahead of the import
	unhook     []func()                    // OnRevoke deregistrations, run at shutdown
	closed     bool
	cause      error

	// batch coalesces pending asynchronous invokes into multi-invoke
	// frames (see batch.go).
	batch *batcher

	// exec runs inbound invocations on pooled goroutines. Fresh
	// goroutines pay stack-growth copying on every call (reflect + seri
	// are stack-hungry); pooled workers keep their grown stacks warm,
	// which is most of the difference between sync and batched
	// throughput on null calls.
	exec *executor

	// taskPool recycles detached tasks for inbound invocations, so the
	// per-call cost is the LRMI plus the wire, not task setup.
	taskPool sync.Pool

	done chan struct{}
}

// wireResult is one decoded msgReply.
type wireResult struct {
	results []any
	copied  int64
	err     error
}

// NewConn wires an established network connection into kernel k and
// starts its reader. The connection gets a fresh host domain named
// remote-<n> that owns its proxies and runs its inbound calls.
func NewConn(k *core.Kernel, nc net.Conn) (*Conn, error) {
	d, err := k.NewDomain(core.DomainConfig{
		Name: fmt.Sprintf("remote-%d", connSeq.Add(1)),
	})
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Conn{
		k:          k,
		domain:     d,
		nc:         nc,
		bw:         bufio.NewWriter(nc),
		pending:    make(map[uint64]func(wireResult)),
		exports:    make(map[uint64]*core.Capability),
		exportIDs:  make(map[*core.Gate]uint64),
		imports:    make(map[uint64]*core.Capability),
		preRevoked: make(map[uint64]byte),
		done:       make(chan struct{}),
	}
	c.batch = newBatcher(c)
	c.exec = newExecutor(c.done)
	c.taskPool.New = func() any {
		return k.NewDetachedTask(d, "remote-call")
	}
	go c.readLoop()
	go c.batch.run()
	return c, nil
}

// executor runs inbound-call jobs on a bounded pool of persistent
// goroutines. Jobs never queue behind a blocked worker: submit hands the
// job to an idle worker, grows the pool if there is room, and otherwise
// falls back to a one-off goroutine — so a call that blocks (waiting on
// another capability, say) can never stall an unrelated call, only
// de-optimize it.
type executor struct {
	done    <-chan struct{}
	jobs    chan func()
	workers atomic.Int32
	max     int32
}

func newExecutor(done <-chan struct{}) *executor {
	// The cap tracks the deepest useful pipeline: a client fanning out
	// full batch windows keeps ~hundreds of calls in flight, and a parked
	// worker is only handed a job when it is actually idle, so the pool
	// grows to what the load sustains and no further (idle stacks shrink
	// at GC). Smaller caps measurably re-introduce stack-growth churn on
	// the overflow path.
	return &executor{done: done, jobs: make(chan func()), max: 512}
}

func (e *executor) submit(job func()) {
	select {
	case e.jobs <- job: // an idle pooled worker takes it
		return
	default:
	}
	if n := e.workers.Load(); n < e.max && e.workers.CompareAndSwap(n, n+1) {
		go e.worker(job)
		return
	}
	go job()
}

// worker runs its first job, then serves the pool until the connection
// dies.
func (e *executor) worker(job func()) {
	job()
	for {
		select {
		case j := <-e.jobs:
			j()
		case <-e.done:
			return
		}
	}
}

// Flush forces every queued asynchronous invoke onto the wire before
// returning, including calls the background flusher was mid-write on.
// The flusher already drains the queue whenever it is idle, so Flush is
// only needed when the caller wants a hard everything-is-sent point (end
// of a fan-out wave, say).
func (c *Conn) Flush() {
	c.batch.flush()
}

// Dial connects kernel k to a remote kernel listening on network/addr
// ("tcp" or "unix").
func Dial(k *core.Kernel, network, addr string) (*Conn, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewConn(k, nc)
}

// Domain returns the connection's host domain (owner of its proxies).
func (c *Conn) Domain() *core.Domain { return c.domain }

// Done is closed when the connection shuts down.
func (c *Conn) Done() <-chan struct{} { return c.done }

// Err returns the shutdown cause, once Done is closed.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cause
}

// Close tears the connection down: pending calls fail, and every proxy
// imported over it faults with a revocation wrapping ErrRevoked.
func (c *Conn) Close() error {
	c.shutdown(ErrConnClosed)
	return nil
}

// send frames and writes one message.
func (c *Conn) send(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeFrame(c.bw, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Ping performs one protocol round trip, proving the peer kernel is up
// and serving. Dial-with-retry loops use it as a readiness probe: a
// connection can land in the listen backlog of a process that is already
// dying, and only an answered ping distinguishes the two.
func (c *Conn) Ping(timeout time.Duration) error {
	reqID, ch, err := c.newPending()
	if err != nil {
		return err
	}
	var w wbuf
	w.u8(msgPing)
	w.uvarint(reqID)
	if err := c.send(w.b); err != nil {
		c.dropPending(reqID)
		return err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		// A genuine pong carries no error; a shutdown racing the probe
		// delivers the connection fault here, and both this case and
		// <-c.done may be ready — the fault must win either way.
		return res.err
	case <-c.done:
		return c.closedErr()
	case <-timer.C:
		c.dropPending(reqID)
		return fmt.Errorf("remote: ping timeout after %v", timeout)
	}
}

// Import asks the peer for the capability it exports under name and
// returns a local proxy for it.
func (c *Conn) Import(name string) (*core.Capability, error) {
	reqID, ch, err := c.newPending()
	if err != nil {
		return nil, err
	}
	var w wbuf
	w.u8(msgLookup)
	w.uvarint(reqID)
	w.str(name)
	if err := c.send(w.b); err != nil {
		c.dropPending(reqID)
		return nil, err
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		// results[0] carries the proxy smuggled through the lookup path.
		cap, _ := res.results[0].(*core.Capability)
		if cap == nil {
			return nil, fmt.Errorf("remote: lookup %q returned no capability", name)
		}
		return cap, nil
	case <-c.done:
		return nil, c.closedErr()
	}
}

// newPendingFn registers a completion callback under a fresh request id.
// The callback runs at most once — on the reader goroutine when the reply
// arrives, or on the shutdown path — unless dropPending removes it first.
func (c *Conn) newPendingFn(fn func(wireResult)) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, c.causeLocked()
	}
	c.nextReq++
	id := c.nextReq
	c.pending[id] = fn
	return id, nil
}

// newPending is the synchronous flavor: the reply arrives on a channel.
func (c *Conn) newPending() (uint64, chan wireResult, error) {
	ch := make(chan wireResult, 1)
	id, err := c.newPendingFn(func(res wireResult) { ch <- res })
	if err != nil {
		return 0, nil, err
	}
	return id, ch, nil
}

func (c *Conn) dropPending(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// complete resolves one pending request; unknown ids (dropped by
// cancellation, or raced by shutdown) are ignored.
func (c *Conn) complete(id uint64, res wireResult) {
	c.mu.Lock()
	fn := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if fn != nil {
		fn(res)
	}
}

func (c *Conn) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.causeLocked()
}

func (c *Conn) causeLocked() error {
	if c.cause != nil && c.cause != ErrConnClosed {
		return fmt.Errorf("%w: %v", ErrConnClosed, c.cause)
	}
	return ErrConnClosed
}

// --- export side -----------------------------------------------------------

// exportLocked registers cap in the export table (idempotent per gate) and
// arranges revocation push. Caller holds c.mu.
func (c *Conn) exportLocked(cap *core.Capability) uint64 {
	g := cap.Gate()
	if id, ok := c.exportIDs[g]; ok {
		return id
	}
	id := c.nextExport
	c.nextExport++
	c.exports[id] = cap
	c.exportIDs[g] = id
	// Push revocation to the peer the moment the gate dies, so remote
	// proxies fail fast instead of on their next wire round-trip. The hook
	// fires immediately if the gate is already revoked; the peer tolerates
	// a revoke arriving before the handle that names it. Shutdown
	// unregisters the hook so closed connections don't stay pinned to
	// long-lived gates.
	c.unhook = append(c.unhook, g.OnRevoke(func() {
		reason := revokeReasonRevoked
		if cap.Owner().Terminated() {
			reason = revokeReasonTerminated
		}
		var w wbuf
		w.u8(msgRevoke)
		w.uvarint(id)
		w.u8(reason)
		_ = c.send(w.b) // a dead connection needs no push
	}))
	return id
}

// importLocked returns (creating if needed) the proxy for the peer's
// export id. A cached proxy that was revoked locally (e.g. an unmounted
// remote servlet) is replaced: revocation kills the handle, not the
// peer's export, and a fresh import is a fresh grant — if the peer side
// is what died, the new proxy's first invoke fails there anyway. Caller
// holds c.mu.
func (c *Conn) importLocked(id uint64, methods []string) (*core.Capability, error) {
	if cap, ok := c.imports[id]; ok && !cap.Revoked() {
		return cap, nil
	}
	pt := &proxyTarget{conn: c, exportID: id, methods: methods}
	cap, err := c.k.CreateProxyCapability(c.domain, pt)
	if err != nil {
		return nil, err
	}
	c.imports[id] = cap
	if reason, raced := c.preRevoked[id]; raced {
		delete(c.preRevoked, id)
		cap.RevokeWithReason(revokeFault(reason))
	}
	return cap, nil
}

// revokeFault builds the local error for a pushed revocation.
func revokeFault(reason byte) error {
	if reason == revokeReasonTerminated {
		return fmt.Errorf("%w (remote domain)", core.ErrDomainTerminated)
	}
	return fmt.Errorf("%w (remote)", core.ErrRevoked)
}

// --- seri External bridge --------------------------------------------------

// connExternal implements seri.External over the connection's tables:
// capabilities cross the stream as handles, everything else by copy.
type connExternal struct{ c *Conn }

func (e connExternal) EncodeExternal(v any) (uint64, bool) {
	cap, ok := v.(*core.Capability)
	if !ok {
		return 0, false
	}
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	// A proxy imported over THIS connection goes home as the peer's own
	// export id; everything else (local capabilities, proxies from other
	// connections) is exported from here.
	if pt := proxyOf(cap); pt != nil && pt.conn == c {
		return packHandle(pt.exportID, handleKindYours), true
	}
	return packHandle(c.exportLocked(cap), handleKindTheirs), true
}

func (e connExternal) DecodeExternal(h uint64) (any, error) {
	id, kind := unpackHandle(h)
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if kind == handleKindYours {
		// Our own export returning home: hand back the original.
		cap, ok := c.exports[id]
		if !ok {
			return nil, fmt.Errorf("remote: unknown returning export %d", id)
		}
		return cap, nil
	}
	return c.importLocked(id, nil)
}

// proxyOf returns cap's proxy target when cap is a wire proxy.
func proxyOf(cap *core.Capability) *proxyTarget {
	pt, _ := core.ProxyTargetOf(cap).(*proxyTarget)
	return pt
}

// --- outbound invocation (proxy side) --------------------------------------

// proxyTarget is the core.ProxyTarget for one imported capability.
type proxyTarget struct {
	conn     *Conn
	exportID uint64 // the PEER's export id
	methods  []string
}

func (p *proxyTarget) ProxyMethods() []string { return p.methods }

// marshalVector encodes an argument/result vector. The empty vector is
// the empty payload: zero-arg calls and void results — the bulk of small
// batched traffic — skip the serializer entirely on both ends.
func (c *Conn) marshalVector(vals []any) ([]byte, error) {
	if len(vals) == 0 {
		return nil, nil
	}
	return seri.MarshalExt(c.k.SeriRegistry(), vals, connExternal{c})
}

// unmarshalVector decodes what marshalVector produced.
func (c *Conn) unmarshalVector(data []byte) ([]any, error) {
	if len(data) == 0 {
		return nil, nil
	}
	decoded, err := seri.UnmarshalExt(c.k.SeriRegistry(), data, connExternal{c})
	if err != nil {
		return nil, err
	}
	vals, _ := decoded.([]any)
	return vals, nil
}

// InvokeProxy performs one remote invocation: marshal args (capabilities
// by reference), one request/reply round trip, unmarshal results.
func (p *proxyTarget) InvokeProxy(method string, args []any) ([]any, int64, error) {
	c := p.conn
	argBytes, err := c.marshalVector(args)
	if err != nil {
		return nil, 0, &core.CopyError{What: "remote arguments of " + method, Err: err}
	}
	// Oversized arguments are a copy failure on a healthy connection, not
	// a revocation; reject before the frame writer does.
	if len(argBytes)+len(method)+32 > maxFrame {
		return nil, 0, &core.CopyError{
			What: "remote arguments of " + method,
			Err:  fmt.Errorf("%d bytes exceeds the %d-byte frame limit", len(argBytes), maxFrame),
		}
	}
	reqID, ch, err := c.newPending()
	if err != nil {
		return nil, 0, err
	}
	var w wbuf
	w.u8(msgInvoke)
	w.uvarint(reqID)
	w.uvarint(p.exportID)
	w.str(method)
	w.raw(argBytes)
	if err := c.send(w.b); err != nil {
		c.dropPending(reqID)
		// A failed write means the peer is gone: same capability fault as
		// any other connection loss.
		return nil, 0, fmt.Errorf("%w: remote send %s: %v", core.ErrRevoked, method, err)
	}
	select {
	case res := <-ch:
		return res.results, int64(len(argBytes)) + res.copied, res.err
	case <-c.done:
		// A call interrupted by connection loss is a capability fault, the
		// same as revocation, so callers need only one failure model.
		return nil, int64(len(argBytes)), fmt.Errorf("%w: %v", core.ErrRevoked, c.closedErr())
	}
}

// InvokeProxyAsync implements core.AsyncProxyTarget: marshal, enqueue on
// the connection's batcher, and return. The completion callback fires on
// the reader goroutine when the (possibly batched) reply arrives, or on
// the shutdown path when the connection dies first — either way exactly
// once, unless cancel removes the pending slot before that.
func (p *proxyTarget) InvokeProxyAsync(method string, args []any, complete func([]any, int64, error)) (cancel func()) {
	c := p.conn
	argBytes, err := c.marshalVector(args)
	if err != nil {
		complete(nil, 0, &core.CopyError{What: "remote arguments of " + method, Err: err})
		return func() {}
	}
	if len(argBytes)+len(method)+64 > maxFrame {
		complete(nil, 0, &core.CopyError{
			What: "remote arguments of " + method,
			Err:  fmt.Errorf("%d bytes exceeds the %d-byte frame limit", len(argBytes), maxFrame),
		})
		return func() {}
	}
	argLen := int64(len(argBytes))
	reqID, err := c.newPendingFn(func(res wireResult) {
		complete(res.results, argLen+res.copied, res.err)
	})
	if err != nil {
		// The connection is already down: same capability fault the sync
		// path reports.
		complete(nil, 0, fmt.Errorf("%w: %v", core.ErrRevoked, err))
		return func() {}
	}
	c.batch.enqueue(batchedCall{reqID: reqID, exportID: p.exportID, method: method, args: argBytes})
	return func() { c.dropPending(reqID) }
}

// sendBatch writes queued calls as one frame: a lone call travels as an
// ordinary msgInvoke (no batch envelope), several as msgBatchInvoke. A
// failed write fails every call in the frame with the connection fault.
func (c *Conn) sendBatch(calls []batchedCall) {
	var w wbuf
	if len(calls) == 1 {
		w.u8(msgInvoke)
		w.uvarint(calls[0].reqID)
		w.uvarint(calls[0].exportID)
		w.str(calls[0].method)
		w.raw(calls[0].args)
	} else {
		w.u8(msgBatchInvoke)
		w.uvarint(uint64(len(calls)))
		for _, call := range calls {
			appendBatchCall(&w, call.reqID, call.exportID, call.method, call.args)
		}
	}
	if err := c.send(w.b); err != nil {
		fault := fmt.Errorf("%w: remote send: %v", core.ErrRevoked, err)
		for _, call := range calls {
			c.complete(call.reqID, wireResult{err: fault})
		}
	}
}

// --- reader / inbound ------------------------------------------------------

func (c *Conn) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		frame, err := readFrame(br)
		if err != nil {
			c.shutdown(err)
			return
		}
		if err := c.dispatch(frame); err != nil {
			c.shutdown(err)
			return
		}
	}
}

// dispatch decodes one frame (decodeFrame — the fuzzed surface) and acts
// on the typed result. A decode error faults the whole connection: frame
// structure is trusted-transport territory, unlike per-call argument
// streams, which fail per call.
func (c *Conn) dispatch(frame []byte) error {
	t, v, err := decodeFrame(frame)
	if err != nil {
		return err
	}
	switch t {
	case msgInvoke:
		// Handlers run off the reader so it keeps draining replies — a
		// worker servicing a call can call back into us mid-request.
		f := v.(invokeFrame)
		c.exec.submit(func() { c.handleInvoke(f) })
	case msgBatchInvoke:
		go c.handleBatchInvoke(v.([]invokeFrame))
	case msgReply:
		c.complete(v.(replyFrame).reqID, c.wireResultOf(v.(replyFrame)))
	case msgBatchReply:
		for _, rep := range v.([]replyFrame) {
			c.complete(rep.reqID, c.wireResultOf(rep))
		}
	case msgRevoke:
		f := v.(revokeFrame)
		c.handleRevoke(f.exportID, f.reason)
	case msgLookup:
		f := v.(lookupFrame)
		go c.handleLookup(f.reqID, f.name)
	case msgLookupReply:
		c.handleLookupReply(v.(lookupReplyFrame))
	case msgPing:
		var w wbuf
		w.u8(msgPong)
		w.uvarint(v.(pingFrame).reqID)
		return c.send(w.b)
	case msgPong:
		c.complete(v.(pingFrame).reqID, wireResult{})
	}
	return nil
}

// wireResultOf turns one decoded reply into a caller-facing result,
// decoding the seri stream of successful replies.
func (c *Conn) wireResultOf(rep replyFrame) wireResult {
	res := wireResult{}
	if rep.status == statusOK {
		results, derr := c.unmarshalVector(rep.body)
		if derr != nil {
			res.err = fmt.Errorf("remote: decode results: %w", derr)
		} else {
			res.results = results
			res.copied = int64(len(rep.body))
		}
		return res
	}
	res.err = decodeWireErr(rep.kind, rep.class, rep.msg)
	return res
}

// serveInvoke runs one inbound call on a local export and builds its
// reply. Every failure — unknown export, argument decode, callee error,
// unencodable results — lands in the reply's own status, which is what
// gives batched calls per-call error isolation for free.
func (c *Conn) serveInvoke(f invokeFrame) replyFrame {
	errRep := func(kind byte, class, msg string) replyFrame {
		return replyFrame{reqID: f.reqID, status: statusErr, kind: kind, class: class, msg: msg}
	}
	c.mu.Lock()
	cap := c.exports[f.exportID]
	c.mu.Unlock()
	if cap == nil {
		return errRep(errKindRevoked, "", fmt.Sprintf("unknown export %d", f.exportID))
	}
	if cap.Stub != nil {
		return errRep(errKindRemote, "UnsupportedOperation",
			"remote invocation of VM capabilities is not supported yet")
	}
	args, err := c.unmarshalVector(f.args)
	if err != nil {
		return errRep(errKindProtocol, "", err.Error())
	}

	task := c.taskPool.Get().(*core.Task)
	results, callErr := cap.InvokeFrom(task, f.method, args...)
	c.taskPool.Put(task)

	if callErr != nil {
		kind, class, msg := encodeWireErr(callErr)
		return errRep(kind, class, msg)
	}
	resBytes, err := c.marshalVector(results)
	if err != nil {
		return errRep(errKindProtocol, "", "encode results: "+err.Error())
	}
	if len(resBytes)+32 > maxFrame {
		return errRep(errKindProtocol, "",
			fmt.Sprintf("results of %d bytes exceed the frame limit", len(resBytes)))
	}
	return replyFrame{reqID: f.reqID, status: statusOK, body: resBytes}
}

// handleInvoke services one single-invoke frame.
func (c *Conn) handleInvoke(f invokeFrame) {
	rep := c.serveInvoke(f)
	var w wbuf
	w.u8(msgReply)
	w.uvarint(rep.reqID)
	appendReplyBody(&w, rep, false)
	if err := c.send(w.b); err != nil && rep.status == statusOK {
		// An unsendable success must still answer, or the caller hangs.
		c.replyErr(rep.reqID, errKindProtocol, "", "send results: "+err.Error())
	}
}

// handleBatchInvoke services one multi-invoke frame: the calls run
// concurrently (each is an independent invocation, exactly as if it had
// arrived in its own frame) and the replies leave as one batch frame with
// per-call status — one faulting call never poisons its batch.
func (c *Conn) handleBatchInvoke(calls []invokeFrame) {
	replies := make([]replyFrame, len(calls))
	var wg sync.WaitGroup
	wg.Add(len(calls))
	for i := range calls {
		i := i
		c.exec.submit(func() {
			defer wg.Done()
			replies[i] = c.serveInvoke(calls[i])
		})
	}
	wg.Wait()

	// Chunk the batch reply by size so large result sets cannot overflow
	// one frame; each chunk is a valid msgBatchReply.
	for start := 0; start < len(replies); {
		var w wbuf
		end, size := start, 0
		for end < len(replies) {
			s := len(replies[end].body) + len(replies[end].class) + len(replies[end].msg) + 32
			if end > start && size+s > maxBatchBytes {
				break
			}
			size += s
			end++
		}
		w.u8(msgBatchReply)
		w.uvarint(uint64(end - start))
		for _, rep := range replies[start:end] {
			w.uvarint(rep.reqID)
			appendReplyBody(&w, rep, true)
		}
		if err := c.send(w.b); err != nil {
			// The connection is going down; pending completions fail
			// through shutdown, so there is nobody left to answer.
			return
		}
		start = end
	}
}

func (c *Conn) replyErr(reqID uint64, kind byte, class, msg string) {
	var w wbuf
	w.u8(msgReply)
	w.uvarint(reqID)
	w.u8(statusErr)
	w.u8(kind)
	w.str(class)
	w.str(msg)
	_ = c.send(w.b)
}

// handleRevoke applies a pushed revocation to the local proxy.
func (c *Conn) handleRevoke(exportID uint64, reason byte) {
	c.mu.Lock()
	cap := c.imports[exportID]
	if cap == nil {
		c.preRevoked[exportID] = reason
	}
	c.mu.Unlock()
	if cap != nil {
		cap.RevokeWithReason(revokeFault(reason))
	}
}

// handleLookup answers an Import from the peer out of the kernel's export
// table.
func (c *Conn) handleLookup(reqID uint64, name string) {
	cap := c.k.ExportedCapability(name)
	if cap == nil {
		c.replyLookupErr(reqID, errKindNotFound, fmt.Sprintf("no export named %q", name))
		return
	}
	c.mu.Lock()
	var handle uint64
	if pt := proxyOf(cap); pt != nil && pt.conn == c {
		handle = packHandle(pt.exportID, handleKindYours)
	} else {
		handle = packHandle(c.exportLocked(cap), handleKindTheirs)
	}
	c.mu.Unlock()
	var w wbuf
	w.u8(msgLookupReply)
	w.uvarint(reqID)
	w.u8(statusOK)
	w.uvarint(handle)
	methods := cap.Methods()
	w.uvarint(uint64(len(methods)))
	for _, m := range methods {
		w.str(m)
	}
	_ = c.send(w.b)
}

func (c *Conn) replyLookupErr(reqID uint64, kind byte, msg string) {
	var w wbuf
	w.u8(msgLookupReply)
	w.uvarint(reqID)
	w.u8(statusErr)
	w.u8(kind)
	w.str("")
	w.str(msg)
	_ = c.send(w.b)
}

func (c *Conn) handleLookupReply(f lookupReplyFrame) {
	res := wireResult{}
	if f.status == statusOK {
		id, kind := unpackHandle(f.handle)
		c.mu.Lock()
		var cap *core.Capability
		var ierr error
		if kind == handleKindYours {
			if cap = c.exports[id]; cap == nil {
				ierr = fmt.Errorf("remote: unknown returning export %d", id)
			}
		} else {
			cap, ierr = c.importLocked(id, f.methods)
		}
		c.mu.Unlock()
		if ierr != nil {
			res.err = ierr
		} else {
			res.results = []any{cap}
		}
	} else {
		res.err = decodeWireErr(f.kind, "", f.msg)
	}
	c.complete(f.reqID, res)
}

// --- error mapping ---------------------------------------------------------

// encodeWireErr maps a local invocation failure onto the wire.
func encodeWireErr(err error) (kind byte, class, msg string) {
	switch {
	case errors.Is(err, core.ErrRevoked):
		return errKindRevoked, "", err.Error()
	case errors.Is(err, core.ErrDomainTerminated):
		return errKindTerminated, "", err.Error()
	case errors.Is(err, core.ErrNoSuchMethod):
		return errKindNoMethod, "", err.Error()
	}
	var re *core.RemoteError
	if errors.As(err, &re) {
		return errKindRemote, re.Class, re.Msg
	}
	return errKindRemote, fmt.Sprintf("%T", err), err.Error()
}

// decodeWireErr rebuilds a local error from the wire, around the same
// kernel sentinels so errors.Is works transparently through proxies.
func decodeWireErr(kind byte, class, msg string) error {
	switch kind {
	case errKindRevoked:
		return wrapSentinel(core.ErrRevoked, msg)
	case errKindTerminated:
		return wrapSentinel(core.ErrDomainTerminated, msg)
	case errKindNoMethod:
		return wrapSentinel(core.ErrNoSuchMethod, msg)
	case errKindNotFound:
		return fmt.Errorf("remote: %s", msg)
	case errKindProtocol:
		return fmt.Errorf("remote: protocol error: %s", msg)
	default:
		return &core.RemoteError{Class: class, Msg: msg}
	}
}

// wrapSentinel rebuilds a sentinel-rooted error without repeating the
// sentinel's own text (the wire message is usually err.Error() of the
// same sentinel on the far side).
func wrapSentinel(sentinel error, msg string) error {
	msg = strings.TrimPrefix(msg, sentinel.Error())
	msg = strings.TrimPrefix(msg, ": ")
	if msg == "" {
		return fmt.Errorf("%w (remote)", sentinel)
	}
	return fmt.Errorf("%w (remote): %s", sentinel, msg)
}

// --- teardown --------------------------------------------------------------

// shutdown tears the connection down exactly once: pending requests fail,
// every imported proxy faults, and the host domain terminates so its
// resources are reclaimed.
func (c *Conn) shutdown(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cause = cause
	pending := c.pending
	c.pending = make(map[uint64]func(wireResult))
	imports := make([]*core.Capability, 0, len(c.imports))
	for _, cap := range c.imports {
		imports = append(imports, cap)
	}
	unhook := c.unhook
	c.unhook = nil
	c.mu.Unlock()

	for _, remove := range unhook {
		remove()
	}

	close(c.done)
	c.nc.Close()

	fault := fmt.Errorf("%w: remote connection lost: %v", core.ErrRevoked, cause)
	for _, cap := range imports {
		cap.RevokeWithReason(fault)
	}
	for _, fn := range pending {
		fn(wireResult{err: fmt.Errorf("%w: connection lost mid-call: %v", core.ErrRevoked, cause)})
	}
	c.domain.Terminate("remote connection closed")
}
