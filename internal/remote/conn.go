package remote

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/seri"
	"jkernel/internal/telemetry"
)

// connSeq numbers connections for domain naming.
var connSeq atomic.Int64

// ErrConnClosed reports an operation on a closed connection.
var ErrConnClosed = errors.New("remote: connection closed")

// Conn is one kernel-to-kernel connection. It is symmetric: both ends can
// export (answer lookups and invokes from the peer) and import (hold
// proxies for peer capabilities). All proxies imported over the
// connection are owned by a dedicated local domain, so a connection
// teardown is a domain termination: every proxy faults, nothing else in
// the kernel is disturbed.
type Conn struct {
	k      *core.Kernel
	domain *core.Domain

	nc   net.Conn
	wmu  sync.Mutex  // serializes frame writes
	whdr [4]byte     // frame length header scratch (guarded by wmu)
	wvec net.Buffers // vectored-write scratch (guarded by wmu)

	mu            sync.Mutex
	nextReq       uint64
	pending       map[uint64]wireCompleter // reqID -> completion (sync chan send or future resolve)
	exports       map[uint64]*exportEntry  // export id -> refcounted local capability
	exportIDs     map[*core.Gate]uint64    // dedup: gate -> export id
	nextExport    uint64
	imports       map[uint64]*importEntry // peer export id -> local proxy + receipt count
	nextImportGen uint64                  // generation stamped on fresh imports (release dedup)
	preRevoked    map[uint64]parkedRevoke // revokes that raced ahead of the import
	closed        bool
	cause         error

	// Peer identity for three-party handoff: the endpoint this side dialed
	// (or the peer's advertised listen address from the ping tail) and the
	// peer's announced feature mask. featKnown stays false against a
	// pre-handoff peer, which pins every re-export to the relay path.
	peerNet, peerAddr string
	peerFeatures      uint64
	featKnown         bool
	pendingHandoffs   map[uint64]parkedOffer // redeem offers that raced ahead of their relay import
	releasedImports   map[uint64]time.Time   // fully-released ids; a revoke crossing the release is stale

	// batch coalesces pending asynchronous invokes into multi-invoke
	// frames, and import releases into msgRelease frames (see batch.go).
	batch *batcher

	// exec runs inbound invocations on pooled goroutines. Fresh
	// goroutines pay stack-growth copying on every call (reflect + seri
	// are stack-hungry); pooled workers keep their grown stacks warm,
	// which is most of the difference between sync and batched
	// throughput on null calls.
	exec *executor

	// taskPool recycles detached tasks for inbound invocations, so the
	// per-call cost is the LRMI plus the wire, not task setup.
	taskPool sync.Pool

	// metrics is the connection's telemetry bundle; nil when the kernel
	// has telemetry disabled (every use is nil-guarded).
	metrics *connMetrics

	done chan struct{}
}

// wireResult is one decoded msgReply.
type wireResult struct {
	results []any
	copied  int64
	err     error
}

// NewConn wires an established network connection into kernel k and
// starts its reader. The connection gets a fresh host domain named
// remote-<n> that owns its proxies and runs its inbound calls.
func NewConn(k *core.Kernel, nc net.Conn) (*Conn, error) {
	d, err := k.NewDomain(core.DomainConfig{
		Name: fmt.Sprintf("remote-%d", connSeq.Add(1)),
	})
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Conn{
		k:               k,
		domain:          d,
		nc:              nc,
		pending:         make(map[uint64]wireCompleter),
		exports:         make(map[uint64]*exportEntry),
		exportIDs:       make(map[*core.Gate]uint64),
		imports:         make(map[uint64]*importEntry),
		preRevoked:      make(map[uint64]parkedRevoke),
		pendingHandoffs: make(map[uint64]parkedOffer),
		releasedImports: make(map[uint64]time.Time),
		done:            make(chan struct{}),
	}
	c.batch = newBatcher(c)
	c.exec = newExecutor(c.done)
	c.taskPool.New = func() any {
		return k.NewDetachedTask(d, "remote-call")
	}
	c.metrics = newConnMetrics(k, c)
	go c.readLoop()
	go c.batch.run()
	// Announce our features (and learn the peer's) with one async probe.
	// Until the pong lands, handoff minting toward this peer stays off and
	// re-exports use the relay path; pre-handoff peers ignore the tail and
	// see a plain ping.
	go func() { _ = c.Ping(10 * time.Second) }()
	return c, nil
}

// execJob is one inbound-call job. Batch invokes submit pointers into a
// per-batch job array (one allocation per frame, not per call); one-off
// jobs wrap a closure in funcJob.
type execJob interface{ run() }

// funcJob adapts a plain closure to execJob.
type funcJob func()

func (j funcJob) run() { j() }

// executor runs inbound-call jobs on a bounded pool of persistent
// goroutines. Jobs never queue behind a blocked worker: submit hands the
// job to an idle worker, grows the pool if there is room, and otherwise
// falls back to a one-off goroutine — so a call that blocks (waiting on
// another capability, say) can never stall an unrelated call, only
// de-optimize it.
type executor struct {
	done    <-chan struct{}
	jobs    chan execJob
	workers atomic.Int32
	max     int32
}

func newExecutor(done <-chan struct{}) *executor {
	// The cap tracks the deepest useful pipeline: a client fanning out
	// full batch windows keeps ~hundreds of calls in flight, and a parked
	// worker is only handed a job when it is actually idle, so the pool
	// grows to what the load sustains and no further (idle stacks shrink
	// at GC). Smaller caps measurably re-introduce stack-growth churn on
	// the overflow path.
	return &executor{done: done, jobs: make(chan execJob), max: 512}
}

func (e *executor) submit(job execJob) {
	select {
	case e.jobs <- job: // an idle pooled worker takes it
		return
	default:
	}
	if n := e.workers.Load(); n < e.max && e.workers.CompareAndSwap(n, n+1) {
		go e.worker(job)
		return
	}
	go job.run()
}

// worker runs its first job, then serves the pool until the connection
// dies.
func (e *executor) worker(job execJob) {
	job.run()
	for {
		select {
		case j := <-e.jobs:
			j.run()
		case <-e.done:
			return
		}
	}
}

// Flush forces every queued asynchronous invoke — and every queued
// capability release — onto the wire before returning, including frames
// the background flusher was mid-write on. The flusher already drains the
// queues whenever it is idle, so Flush is only needed when the caller
// wants a hard everything-is-sent point (end of a fan-out wave, say).
//
//jk:blocking
func (c *Conn) Flush() {
	c.batch.flush()
}

// Dial connects kernel k to a remote kernel listening on network/addr
// ("tcp" or "unix").
//
//jk:blocking
func Dial(k *core.Kernel, network, addr string) (*Conn, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c, err := NewConn(k, nc)
	if err != nil {
		return nil, err
	}
	c.setDialTarget(network, addr)
	return c, nil
}

// setDialTarget records the endpoint this side dialed, making c usable as
// a handoff origin reference (a middleman tells receivers to dial it).
func (c *Conn) setDialTarget(network, addr string) {
	c.mu.Lock()
	c.peerNet, c.peerAddr = network, addr
	c.mu.Unlock()
}

// recordPeer stores what a ping/pong tail announced: the peer's feature
// mask and — when no dial target is known (inbound connections) — its
// advertised listen address.
func (c *Conn) recordPeer(f pingFrame) {
	if !f.hasFeatures {
		return
	}
	c.mu.Lock()
	c.peerFeatures = f.features
	c.featKnown = true
	if c.peerAddr == "" && f.addr != "" {
		c.peerNet, c.peerAddr = f.network, f.addr
	}
	c.mu.Unlock()
}

// Domain returns the connection's host domain (owner of its proxies).
func (c *Conn) Domain() *core.Domain { return c.domain }

// TableSizes is a snapshot of one connection's table occupancy, for leak
// diagnostics: on a healthy connection whose peers release what they are
// done with, every field returns to baseline after a burst of traffic.
type TableSizes struct {
	Exports    int // live export entries (capabilities the peer may invoke)
	ExportIDs  int // gate -> export id dedup entries (== Exports when healthy)
	Imports    int // live proxies for peer capabilities
	PreRevoked int // revocations parked for imports still in flight
	Unhook     int // gate revocation hooks held (one per live export)
	Pending    int // requests awaiting replies
	Handoffs   int // redeem offers parked for relay imports still in flight
}

// TableSizes reports the connection's current table occupancy. Parked
// revocations past their in-flight window are pruned first, so the
// snapshot never counts garbage a quiet connection would only have shed
// on its next pushed revocation.
func (c *Conn) TableSizes() TableSizes {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.prunePreRevokedLocked(now)
	c.pruneHandoffsLocked(now)
	t := TableSizes{
		Exports:    len(c.exports),
		ExportIDs:  len(c.exportIDs),
		Imports:    len(c.imports),
		PreRevoked: len(c.preRevoked),
		Pending:    len(c.pending),
		Handoffs:   len(c.pendingHandoffs),
	}
	for _, e := range c.exports {
		if e.unhook != nil {
			t.Unhook++
		}
	}
	return t
}

// PendingCalls reports how many requests are on the wire awaiting replies
// — the per-worker queue-depth signal a placement policy or autoscaler
// reads. Cheaper than TableSizes: one lock, no pruning.
func (c *Conn) PendingCalls() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Done is closed when the connection shuts down.
func (c *Conn) Done() <-chan struct{} { return c.done }

// Err returns the shutdown cause, once Done is closed.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cause
}

// Close tears the connection down: pending calls fail, and every proxy
// imported over it faults with a revocation wrapping ErrRevoked.
func (c *Conn) Close() error {
	c.shutdown(ErrConnClosed)
	return nil
}

// send frames and writes one message.
//
//jk:blocking
func (c *Conn) send(payload []byte) error {
	return c.sendSegments(payload)
}

// sendOrFault writes one frame and routes a failed write to the
// connection-fault path. It is the send for frame handlers with nobody
// to hand an error back to (replies, manifests, lookup answers): a reply
// that cannot reach the peer means the socket is broken, and the
// connection must fault its imports rather than keep running silently —
// the same policy sendReleases applies.
//
//jk:blocking
func (c *Conn) sendOrFault(payload []byte) {
	if err := c.send(payload); err != nil {
		c.shutdown(fmt.Errorf("remote: reply write failed: %w", err))
	}
}

// sendSegments frames and writes one message whose payload is the
// concatenation of segs, as a single vectored write: the 4-byte length
// header and every segment go down in one writev-style syscall
// (net.Buffers), with no copy into an intermediate contiguous buffer. The
// first byte of the first segment is the message type.
//
//jk:blocking
func (c *Conn) sendSegments(segs ...[]byte) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total > maxFrame {
		return fmt.Errorf("remote: frame of %d bytes exceeds limit", total)
	}
	if len(segs) > 0 && len(segs[0]) > 0 {
		c.metrics.frameOut(segs[0][0])
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	binary.LittleEndian.PutUint32(c.whdr[:], uint32(total))
	c.wvec = append(c.wvec[:0], c.whdr[:])
	for _, s := range segs {
		if len(s) > 0 {
			c.wvec = append(c.wvec, s)
		}
	}
	// WriteTo consumes its receiver, so hand it a copy of the scratch's
	// slice header; the scratch itself is cleared after the write so it
	// does not pin payload buffers between frames.
	vec := c.wvec
	//jk:allow(lockhold) wmu is the frame-write serializer: it exists to be held across this one vectored write so frames never interleave, and nothing else ever blocks under it
	_, err := vec.WriteTo(c.nc)
	clear(c.wvec)
	c.wvec = c.wvec[:0]
	return err
}

// Ping performs one protocol round trip, proving the peer kernel is up
// and serving. Dial-with-retry loops use it as a readiness probe: a
// connection can land in the listen backlog of a process that is already
// dying, and only an answered ping distinguishes the two.
//
//jk:blocking
func (c *Conn) Ping(timeout time.Duration) error {
	reqID, ch, err := c.newPending()
	if err != nil {
		return err
	}
	network, addr := advertised(c.k)
	var w wbuf
	appendPing(&w, msgPing, reqID, network, addr)
	if err := c.send(w.b); err != nil {
		c.dropPending(reqID)
		return err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		// A genuine pong carries no error; a shutdown racing the probe
		// delivers the connection fault here, and both this case and
		// <-c.done may be ready — the fault must win either way.
		return res.err
	case <-c.done:
		return c.closedErr()
	case <-timer.C:
		c.dropPending(reqID)
		return fmt.Errorf("remote: ping timeout after %v", timeout)
	}
}

// Import asks the peer for the capability it exports under name and
// returns a local proxy for it.
func (c *Conn) Import(name string) (*core.Capability, error) {
	reqID, ch, err := c.newPending()
	if err != nil {
		return nil, err
	}
	var w wbuf
	w.u8(msgLookup)
	w.uvarint(reqID)
	w.str(name)
	if err := c.send(w.b); err != nil {
		c.dropPending(reqID)
		return nil, err
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		// results[0] carries the proxy smuggled through the lookup path.
		cap, _ := res.results[0].(*core.Capability)
		if cap == nil {
			return nil, fmt.Errorf("remote: lookup %q returned no capability", name)
		}
		return cap, nil
	case <-c.done:
		return nil, c.closedErr()
	}
}

// wireCompleter is a pending slot's completion callback. It runs at most
// once — on the reader goroutine when the reply arrives, or on the
// shutdown path — unless dropPending removes the slot first. It is an
// interface (not a func) so the async hot path can register its pooled
// per-call state without allocating a closure.
type wireCompleter interface {
	completeWire(res wireResult)
}

// chanCompleter adapts the synchronous wait-on-channel flavor.
type chanCompleter chan wireResult

func (ch chanCompleter) completeWire(res wireResult) { ch <- res }

// newPending registers a pending slot whose reply arrives on a channel.
func (c *Conn) newPending() (uint64, chan wireResult, error) {
	ch := make(chan wireResult, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, c.causeLocked()
	}
	c.nextReq++
	id := c.nextReq
	c.pending[id] = chanCompleter(ch)
	return id, ch, nil
}

func (c *Conn) dropPending(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// complete resolves one pending request; unknown ids (dropped by
// cancellation, or raced by shutdown) are ignored.
func (c *Conn) complete(id uint64, res wireResult) {
	c.mu.Lock()
	pc := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if pc != nil {
		pc.completeWire(res)
	}
}

func (c *Conn) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.causeLocked()
}

func (c *Conn) causeLocked() error {
	if c.cause != nil && c.cause != ErrConnClosed {
		return fmt.Errorf("%w: %v", ErrConnClosed, c.cause)
	}
	return ErrConnClosed
}

// --- export side -----------------------------------------------------------

// exportEntry is one row of the per-connection export table. refs counts
// the handles shipped to the peer that the peer has not yet released; the
// entry — and its gate revocation hook — dies when refs reaches zero
// (msgRelease) or when the gate is revoked, whichever happens first, so a
// long-lived connection does not pin dead gates.
type exportEntry struct {
	cap    *core.Capability
	refs   uint64 // handles sent minus handles released
	relGen uint64 // highest release generation applied (stale-release guard)
	unhook func() // OnRevoke deregistration for the revocation-push hook
	// relay, for re-exported proxies, names the upstream import whose wire
	// references this entry transitively pins; they are released when the
	// entry dies at refcount zero (see handleRelease), closing the
	// middleman release leak.
	relay *relayRef
}

// importEntry is one row of the import table. recv counts how many times
// the peer shipped this handle; the release sent when the proxy dies
// carries exactly that count, which is what makes a release racing a
// re-export benign (the exporter's refcount nets out, never underflows).
// gen is a connection-unique generation stamped when the proxy was
// created: the exporter ignores a release whose generation it has already
// applied, so a duplicated or superseded release cannot double-decrement.
type importEntry struct {
	cap  *core.Capability
	recv uint64
	gen  uint64
	// pins counts relay export entries (on this kernel's other
	// connections) whose wire references ride on this entry. While pinned
	// the receipts cannot go back to the exporter even if the local proxy
	// dies — the relayed handles downstream still route through them — so
	// a pinned release parks the entry as a zombie until the last pin
	// drops (unpinImport completes it).
	pins   int
	zombie bool
}

// exportLocked registers cap in the export table (idempotent per gate),
// counts one wire reference, and arranges revocation push. created
// reports whether this call minted the entry (which is when a handoff
// offer is worth sending). Caller holds c.mu.
func (c *Conn) exportLocked(cap *core.Capability, relay *relayRef) (id uint64, created bool) {
	g := cap.Gate()
	if id, ok := c.exportIDs[g]; ok {
		c.exports[id].refs++
		return id, false
	}
	id = c.exportNewLocked(cap, relay)
	c.exportIDs[g] = id
	return id, true
}

// exportNewLocked unconditionally mints a fresh export entry, bypassing
// the per-gate dedup. Redeemed handoffs need this: the fresh export's
// refcount and revocation push must be independent of any direct import
// the peer already holds for the same gate, so releasing one can never
// strand the other. Caller holds c.mu.
func (c *Conn) exportNewLocked(cap *core.Capability, relay *relayRef) uint64 {
	g := cap.Gate()
	id := c.nextExport
	c.nextExport++
	e := &exportEntry{cap: cap, refs: 1, relay: relay}
	c.exports[id] = e
	// Push revocation to the peer the moment the gate dies, so remote
	// proxies fail fast instead of on their next wire round-trip, then
	// drop the table entry: a revoked gate answers every call with the
	// same fault the push delivered, so nothing is lost, and the table
	// returns to baseline without waiting for the peer's release. The
	// hook fires immediately if the gate is already revoked — while this
	// goroutine holds c.mu — which is why the table cleanup runs on its
	// own goroutine. The peer tolerates a revoke arriving before the
	// handle that names it (preRevoked).
	e.unhook = g.OnRevoke(func() {
		reason := revokeReasonRevoked
		if cap.Owner().Terminated() {
			reason = revokeReasonTerminated
		}
		var w wbuf
		w.u8(msgRevoke)
		w.uvarint(id)
		w.u8(reason)
		if err := c.send(w.b); err != nil {
			// A writer that cannot deliver the push is a dead connection:
			// fault it (async — the hook may fire under c.mu) so the peer's
			// proxies fail via teardown instead of hanging on a half-dead
			// socket that swallows every later push and release too.
			go c.shutdown(fmt.Errorf("remote: send revocation push: %w", err))
		}
		go c.dropExport(id, g)
	})
	return id
}

// dropExport removes one export entry unconditionally (gate revoked).
func (c *Conn) dropExport(id uint64, g *core.Gate) {
	c.mu.Lock()
	e := c.exports[id]
	if e == nil {
		c.mu.Unlock()
		return
	}
	delete(c.exports, id)
	if c.exportIDs[g] == id {
		delete(c.exportIDs, g)
	}
	c.mu.Unlock()
	if e.unhook != nil {
		e.unhook() // no-op post-fire, but uniform with the refcount path
	}
	if e.relay != nil {
		// A revoked relay entry drops its pin on the upstream import; the
		// import's own revocation (same fault, pushed from the origin)
		// completes the release once every pin is gone.
		e.relay.conn.unpinImport(e.relay.importID, e.relay.gen)
	}
}

// dropExportRefsLocked returns n of an export's wire references, deleting
// the entry at zero. It returns the gate-hook deregistration to run after
// c.mu is released (nil when the entry survives or is already gone), the
// upstream relay reference to release for a dying relay entry — the peer
// releasing the last relay handle is what lets the middleman return its
// own references to the origin — and an error when the peer releases more
// references than it was ever sent, a protocol violation that faults the
// connection. Caller holds c.mu and must act on unhook/upstream after
// releasing it.
func (c *Conn) dropExportRefsLocked(id, n uint64) (unhook func(), upstream *relayRef, err error) {
	e := c.exports[id]
	if e == nil {
		// Already dropped — the gate's revocation raced the peer's
		// release, or a rollback beat it. Benign either way.
		return nil, nil, nil
	}
	if n > e.refs {
		return nil, nil, fmt.Errorf("remote: protocol error: release of %d refs for export %d holding %d", n, id, e.refs)
	}
	e.refs -= n
	if e.refs > 0 {
		return nil, nil, nil
	}
	delete(c.exports, id)
	if g := e.cap.Gate(); c.exportIDs[g] == id {
		delete(c.exportIDs, g)
	}
	return e.unhook, e.relay, nil
}

// importLocked returns (creating if needed) the proxy for the peer's
// export id, counting one handle receipt. A cached proxy that was revoked
// locally (e.g. an unmounted remote servlet, or an explicit ReleaseProxy
// racing a re-send) is replaced: revocation kills the handle, not the
// peer's export, and a fresh import is a fresh grant — if the peer side
// is what died, the new proxy's first invoke fails there anyway. When a
// pushed revocation raced ahead of the import, the parked reason is
// returned as pre; the caller must apply it with RevokeWithReason outside
// c.mu (firing the proxy's revocation hooks under the connection lock
// would deadlock against the release path). created reports whether this
// call minted the proxy, so a decode that fails mid-vector can release
// exactly the entries nothing else will ever own. Caller holds c.mu.
func (c *Conn) importLocked(id uint64, methods []string) (cap *core.Capability, pre error, created bool, err error) {
	if e, ok := c.imports[id]; ok {
		if !e.cap.Revoked() {
			e.recv++
			return e.cap, nil, false, nil
		}
		// Replacing a dead proxy: release the stale entry's receipts now.
		// Its revocation hook will find the entry replaced and no-op, so
		// this is the only release for that generation — and any in-flight
		// async invokes on the old proxy were already resolved with the
		// capability fault when its gate was severed.
		c.batch.enqueueRelease(releaseEntry{exportID: id, count: e.recv, gen: e.gen})
	}
	pt := &proxyTarget{conn: c, exportID: id, methods: methods, fetched: methods != nil}
	cap, err = c.k.CreateProxyCapability(c.domain, pt)
	if err != nil {
		return nil, nil, false, err
	}
	created = true
	c.nextImportGen++
	e := &importEntry{cap: cap, recv: 1, gen: c.nextImportGen}
	c.imports[id] = e
	// The id is live again (the exporter resurrected it before our release
	// landed, or this replaces a dead proxy), so a future revoke for it is
	// no longer stale.
	delete(c.releasedImports, id)
	gen := e.gen
	// The proxy's death — explicit ReleaseProxy, local revocation, pushed
	// revocation, or connection teardown — releases its wire references.
	// The hook cannot fire inline here (the gate is fresh and every revoke
	// path serializes on c.mu, which we hold), and it runs on its own
	// goroutine so no revoker ever blocks on the connection lock.
	cap.Gate().OnRevoke(func() { go c.releaseImport(id, gen) })
	if p, raced := c.preRevoked[id]; raced {
		delete(c.preRevoked, id)
		pre = revokeFault(p.reason)
	}
	// A handoff offer for this handle may have raced ahead of the frame
	// that carries it (offers are sent during marshal, before the payload).
	// Now that the proxy exists, redeem the parked offer against the origin.
	if off, parked := c.pendingHandoffs[id]; parked && pre == nil {
		delete(c.pendingHandoffs, id)
		go c.redeemOffer(off.f, cap, id, gen)
	}
	return cap, pre, created, nil
}

// releaseImport drops the import-table entry for id (if it still holds
// the generation the dying proxy was created under) and queues a batched
// release for every handle receipt it accumulated.
func (c *Conn) releaseImport(id, gen uint64) {
	c.mu.Lock()
	e := c.imports[id]
	if e == nil || e.gen != gen || c.closed {
		// Replaced, already released, or the whole connection is going
		// down (shutdown clears the tables wholesale).
		c.mu.Unlock()
		return
	}
	if e.pins > 0 {
		// Relay exports still ride on these receipts: park the entry and
		// let the last unpin return them.
		e.zombie = true
		c.mu.Unlock()
		return
	}
	delete(c.imports, id)
	delete(c.preRevoked, id) // a parked revoke for a dead handle expires with it
	c.recordReleasedLocked(id, time.Now())
	rel := releaseEntry{exportID: id, count: e.recv, gen: e.gen}
	c.mu.Unlock()
	c.batch.enqueueRelease(rel)
}

// unpinImport drops one relay pin from an import entry: a relay export
// entry that named this import as its upstream died (peer released it,
// gate revoked, payload rolled back, or its connection closed). The last
// pin leaving a zombie entry completes the release its proxy deferred.
func (c *Conn) unpinImport(id, gen uint64) {
	c.mu.Lock()
	e := c.imports[id]
	if e == nil || e.gen != gen || c.closed {
		c.mu.Unlock()
		return
	}
	e.pins--
	if e.pins > 0 || !e.zombie {
		c.mu.Unlock()
		return
	}
	delete(c.imports, id)
	delete(c.preRevoked, id)
	c.recordReleasedLocked(id, time.Now())
	rel := releaseEntry{exportID: id, count: e.recv, gen: e.gen}
	c.mu.Unlock()
	c.batch.enqueueRelease(rel)
}

// recordReleasedLocked remembers that every receipt for import id went
// back to the exporter. The exporter's entry dies when that release
// lands, so a revocation push for id can only be one that crossed the
// release in flight — handleRevoke recognizes it as stale and drops it
// instead of parking it in preRevoked (where a redeem-heavy workload,
// which force-releases a relay import per shortened handoff, would
// otherwise trip the flood guard). The set is a best-effort staleness
// filter: entries expire with the preRevoked window, and on overflow the
// whole set is wiped — a dropped record merely re-opens the benign park.
// Caller holds c.mu.
func (c *Conn) recordReleasedLocked(id uint64, now time.Time) {
	if len(c.releasedImports) >= 4*maxPreRevoked {
		for rid, at := range c.releasedImports {
			if now.Sub(at) > preRevokedTTL {
				delete(c.releasedImports, rid)
			}
		}
		if len(c.releasedImports) >= 4*maxPreRevoked {
			clear(c.releasedImports)
		}
	}
	c.releasedImports[id] = now
}

// ReleaseProxy severs a wire proxy's local handle, releasing its wire
// reference so the exporting kernel can drop its table entry once every
// handle is gone. It reports whether cap was a live wire proxy. Releasing
// is revocation of the handle, not of the peer's capability: importing
// the same export again yields a fresh, working proxy.
func ReleaseProxy(cap *core.Capability) bool {
	if proxyOf(cap) == nil {
		return false
	}
	cap.RevokeWithReason(fmt.Errorf("%w: proxy released", core.ErrRevoked))
	return true
}

// revokeFault builds the local error for a pushed revocation.
func revokeFault(reason byte) error {
	if reason == revokeReasonTerminated {
		return fmt.Errorf("%w (remote domain)", core.ErrDomainTerminated)
	}
	return fmt.Errorf("%w (remote)", core.ErrRevoked)
}

// --- seri External bridge --------------------------------------------------

// connExternal implements seri.External over the connection's tables:
// capabilities cross the stream as handles, everything else by copy. One
// instance lives per marshal/unmarshal so an encode that counted wire
// references and then failed (a later unencodable value, an oversized
// frame) can return them — otherwise the peer would owe releases for
// handles it never received — and so a decode that fails mid-vector can
// release the proxies it minted that nothing else will ever own.
type connExternal struct {
	c       *Conn
	sent    []uint64           // export ids refcounted by this encode, for rollback
	created []*core.Capability // proxies minted by this decode, for rollback
}

func (e *connExternal) EncodeExternal(v any) (uint64, bool) {
	cap, ok := v.(*core.Capability)
	if !ok {
		return 0, false
	}
	// A proxy imported over THIS connection goes home as the peer's own
	// export id; everything else (local capabilities, proxies from other
	// connections) is exported from here — and a foreign proxy also mints
	// a handoff offer when the peers allow it (see exportHandle).
	h, refcounted := e.c.exportHandle(cap)
	if refcounted {
		e.sent = append(e.sent, h>>1)
	}
	return h, true
}

// rollback returns the wire references this encode counted, for payloads
// that never reach the wire.
func (e *connExternal) rollback() {
	if len(e.sent) == 0 {
		return
	}
	c := e.c
	var unhooks []func()
	var upstreams []*relayRef
	c.mu.Lock()
	for _, id := range e.sent {
		// The refs being returned are ours, so over-release is impossible.
		unhook, upstream, _ := c.dropExportRefsLocked(id, 1)
		if unhook != nil {
			unhooks = append(unhooks, unhook)
		}
		if upstream != nil {
			upstreams = append(upstreams, upstream)
		}
	}
	c.mu.Unlock()
	e.sent = nil
	for _, unhook := range unhooks {
		unhook()
	}
	// A rolled-back relay entry returns only its pin; the middleman's own
	// import receipts stay (the payload never reached the peer, but the
	// import belongs to whoever holds the proxy, not to this encode).
	for _, rr := range upstreams {
		rr.conn.unpinImport(rr.importID, rr.gen)
	}
}

func (e *connExternal) DecodeExternal(h uint64) (any, error) {
	id, kind := unpackHandle(h)
	c := e.c
	c.mu.Lock()
	if kind == handleKindYours {
		// Our own export returning home: hand back the original.
		ent := c.exports[id]
		c.mu.Unlock()
		if ent == nil {
			return nil, fmt.Errorf("remote: unknown returning export %d", id)
		}
		return ent.cap, nil
	}
	cap, pre, created, err := c.importLocked(id, nil)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if created {
		e.created = append(e.created, cap)
	}
	if pre != nil {
		cap.RevokeWithReason(pre)
	}
	return cap, nil
}

// releaseCreated revokes the proxies this decode minted when the vector
// they arrived in never reaches its caller (a later value failed to
// decode). Nothing else will ever own them, so without this the import
// entry — and the sender's export reference — would outlive the failed
// call; revoking them routes through the ordinary release path. A proxy
// that was merely re-received by this decode (entry pre-existed) is left
// alone: its receipts are real and its owner releases them.
func (e *connExternal) releaseCreated() {
	for _, cap := range e.created {
		cap.RevokeWithReason(fmt.Errorf("%w: argument vector never delivered", core.ErrRevoked))
	}
	e.created = nil
}

// proxyOf returns cap's proxy target when cap is a wire proxy.
func proxyOf(cap *core.Capability) *proxyTarget {
	pt, _ := core.ProxyTargetOf(cap).(*proxyTarget)
	return pt
}

// staleRouteErr matches the one failure a superseded relay route
// produces: the middleman answered "unknown export" because the
// shortened route already released our reference there. The call was
// rejected before dispatch, so reissuing it cannot double-execute.
func staleRouteErr(err error) bool {
	return err != nil && strings.Contains(err.Error(), "unknown export")
}

// --- outbound invocation (proxy side) --------------------------------------

// proxyTarget is the core.ProxyTarget for one imported capability.
type proxyTarget struct {
	conn     *Conn
	exportID uint64 // the PEER's export id
	redeemed bool   // true when this route came from a redeemed handoff ticket

	// next forwards a superseded relay route to its shortened replacement.
	// A redeemed handoff retargets the proxy and releases the middleman's
	// export; an invoke that snapshotted the old route concurrently can
	// reach the middleman after that release and come back "unknown
	// export" — a call that never executed, so it retries on next.
	next atomic.Pointer[proxyTarget]

	// The method manifest. Lookup-imported proxies are born with it;
	// proxies imported inline (as arguments or results) fetch it lazily on
	// the first ProxyMethods call — one msgManifest round trip, cached.
	mmu     sync.Mutex
	methods []string
	fetched bool
}

// ProxyMethods reports the remote method names, fetching the manifest
// from the exporting kernel on first use for inline imports. A fetch that
// fails (connection lost, export already dropped) reports no methods and
// leaves the cache empty, so a transient failure does not poison a
// later call.
func (p *proxyTarget) ProxyMethods() []string {
	p.mmu.Lock()
	defer p.mmu.Unlock()
	if p.fetched {
		return p.methods
	}
	ms, err := p.conn.fetchManifest(p.exportID)
	if err != nil {
		return nil
	}
	p.methods = ms
	p.fetched = true
	return ms
}

// fetchManifest performs one manifest round trip for the peer's export.
func (c *Conn) fetchManifest(exportID uint64) ([]string, error) {
	reqID, ch, err := c.newPending()
	if err != nil {
		return nil, err
	}
	var w wbuf
	w.u8(msgManifest)
	w.uvarint(reqID)
	w.uvarint(exportID)
	if err := c.send(w.b); err != nil {
		c.dropPending(reqID)
		return nil, err
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		// results[0] carries the manifest smuggled through the reply path.
		ms, _ := res.results[0].([]string)
		return ms, nil
	case <-c.done:
		return nil, c.closedErr()
	}
}

// marshalVector encodes an argument/result vector. The empty vector is
// the empty payload: zero-arg calls and void results — the bulk of small
// batched traffic — skip the serializer entirely on both ends. rollback
// returns the wire references the encode counted; callers must run it
// when the payload is abandoned before reaching the wire (it is a no-op
// after a successful send, because the handles really did ship).
func (c *Conn) marshalVector(vals []any) (data []byte, rollback func(), err error) {
	if len(vals) == 0 {
		return nil, func() {}, nil
	}
	ext := &connExternal{c: c}
	data, err = seri.MarshalExt(c.k.SeriRegistry(), vals, ext)
	if err != nil {
		ext.rollback()
		return nil, nil, err
	}
	return data, ext.rollback, nil
}

// marshalVectorInto encodes an argument/result vector directly into fb —
// after whatever frame header the caller already wrote — so the encoded
// payload never exists as a separate allocation. Same rollback contract as
// marshalVector; on error fb is untouched.
func (c *Conn) marshalVectorInto(fb *frameBuf, vals []any) (rollback func(), err error) {
	if len(vals) == 0 {
		return func() {}, nil
	}
	ext := &connExternal{c: c}
	out, err := seri.AppendMarshalExt(fb.b, c.k.SeriRegistry(), vals, ext)
	if err != nil {
		ext.rollback()
		return nil, err
	}
	fb.b = out
	return ext.rollback, nil
}

// unmarshalVector decodes what marshalVector produced. A vector that
// fails mid-decode releases the proxies it already minted — the decode
// side of the encode rollback, keeping both ends' tables honest when a
// call's arguments or results turn out undecodable.
func (c *Conn) unmarshalVector(data []byte) ([]any, error) {
	if len(data) == 0 {
		return nil, nil
	}
	ext := &connExternal{c: c}
	decoded, err := seri.UnmarshalExt(c.k.SeriRegistry(), data, ext)
	if err != nil {
		ext.releaseCreated()
		return nil, err
	}
	vals, _ := decoded.([]any)
	return vals, nil
}

// InvokeProxy performs one remote invocation: marshal args (capabilities
// by reference), one request/reply round trip, unmarshal results.
func (p *proxyTarget) InvokeProxy(method string, args []any) ([]any, int64, error) {
	return p.invoke(method, args, telemetry.TraceContext{})
}

// InvokeProxyTraced implements core.TracedProxyTarget: the caller's trace
// context crosses the wire inside the invoke frame.
func (p *proxyTarget) InvokeProxyTraced(method string, args []any, tc telemetry.TraceContext) ([]any, int64, error) {
	return p.invoke(method, args, tc)
}

func (p *proxyTarget) invoke(method string, args []any, tc telemetry.TraceContext) ([]any, int64, error) {
	c := p.conn
	m := c.metrics
	start := m.sampleStart(tc.Active())
	var spanID uint64
	if m != nil && tc.Active() {
		spanID = telemetry.NewID() // this hop's span, the wire parent of the callee's
	}
	finish := func(results []any, copied int64, err error) ([]any, int64, error) {
		m.clientSpan(tc, spanID, method, start, err)
		return results, copied, err
	}
	reqID, ch, err := c.newPending()
	if err != nil {
		return finish(nil, 0, err)
	}
	// The whole frame — header and argument stream — builds in one pooled
	// buffer, released the moment it is on the wire.
	fb := getFrame(len(method) + 64)
	w := wbuf{b: fb.b}
	w.u8(msgInvoke)
	w.uvarint(reqID)
	w.uvarint(p.exportID)
	w.str(method)
	appendTrace(&w, tc.TraceID, spanID)
	fb.b = w.b
	argStart := len(fb.b)
	rollback, err := c.marshalVectorInto(fb, args)
	if err != nil {
		c.dropPending(reqID)
		fb.release()
		return finish(nil, 0, &core.CopyError{What: "remote arguments of " + method, Err: err})
	}
	argLen := int64(len(fb.b) - argStart)
	// Oversized arguments are a copy failure on a healthy connection, not
	// a revocation; reject before the frame writer does.
	if len(fb.b) > maxFrame {
		rollback()
		c.dropPending(reqID)
		fb.release()
		return finish(nil, 0, &core.CopyError{
			What: "remote arguments of " + method,
			Err:  fmt.Errorf("%d bytes exceeds the %d-byte frame limit", argLen, maxFrame),
		})
	}
	err = c.send(fb.b)
	fb.release()
	if err != nil {
		c.dropPending(reqID)
		// A failed write means the peer is gone: same capability fault as
		// any other connection loss.
		return finish(nil, 0, fmt.Errorf("%w: remote send %s: %v", core.ErrRevoked, method, err))
	}
	select {
	case res := <-ch:
		if n := p.next.Load(); n != nil && staleRouteErr(res.err) {
			// The shortened route released this one mid-call; the call
			// never ran. Reissue it on the direct route (which does its
			// own span accounting).
			return n.invoke(method, args, tc)
		}
		return finish(res.results, argLen+res.copied, res.err)
	case <-c.done:
		// A call interrupted by connection loss is a capability fault, the
		// same as revocation, so callers need only one failure model.
		return finish(nil, argLen, fmt.Errorf("%w: %v", core.ErrRevoked, c.closedErr()))
	}
}

// pendingAsync is the per-call state of one batched asynchronous invoke.
// It is both the connection's pending-slot completion (completeWire, fired
// on the reader goroutine) and the caller's cancel handle
// (core.AsyncCanceler), so starting a call allocates this one struct where
// it used to allocate a completion closure plus a cancel closure.
type pendingAsync struct {
	p      *proxyTarget
	method string
	args   []any
	tc     telemetry.TraceContext
	done   core.AsyncCompleter
	spanID uint64
	start  time.Time
	argLen int64
	reqID  uint64
}

func (pa *pendingAsync) completeWire(res wireResult) {
	p := pa.p
	if n := p.next.Load(); n != nil && staleRouteErr(res.err) {
		// Superseded relay route: the middleman dropped our export before
		// this call reached it, so it never ran. Reissue on the shortened
		// route; its completion fires exactly once.
		n.invokeAsync(pa.method, pa.args, pa.tc, pa.done)
		return
	}
	p.conn.metrics.clientSpan(pa.tc, pa.spanID, pa.method, pa.start, res.err)
	pa.done.CompleteWire(res.results, pa.argLen+res.copied, res.err)
}

// CancelAsync implements core.AsyncCanceler: drop the pending slot so a
// late reply is ignored.
func (pa *pendingAsync) CancelAsync() { pa.p.conn.dropPending(pa.reqID) }

// noopCanceler is handed back for calls that failed before taking a
// pending slot; there is nothing to cancel.
type noopCanceler struct{}

func (noopCanceler) CancelAsync() {}

// InvokeProxyAsync implements core.AsyncProxyTarget: marshal, enqueue on
// the connection's batcher, and return. The completion fires on the
// reader goroutine when the (possibly batched) reply arrives, or on the
// shutdown path when the connection dies first — either way exactly once,
// unless cancel removes the pending slot before that.
func (p *proxyTarget) InvokeProxyAsync(method string, args []any, done core.AsyncCompleter) core.AsyncCanceler {
	return p.invokeAsync(method, args, telemetry.TraceContext{}, done)
}

// InvokeProxyAsyncTraced implements core.TracedAsyncProxyTarget: the
// caller's trace context crosses inside the (possibly batched) frame.
func (p *proxyTarget) InvokeProxyAsyncTraced(method string, args []any, tc telemetry.TraceContext, done core.AsyncCompleter) core.AsyncCanceler {
	return p.invokeAsync(method, args, tc, done)
}

func (p *proxyTarget) invokeAsync(method string, args []any, tc telemetry.TraceContext, done core.AsyncCompleter) core.AsyncCanceler {
	c := p.conn
	m := c.metrics
	start := m.sampleStart(tc.Active())
	var spanID uint64
	if m != nil && tc.Active() {
		spanID = telemetry.NewID() // this hop's span, the wire parent of the callee's
	}
	fail := func(err error) core.AsyncCanceler {
		m.clientSpan(tc, spanID, method, start, err)
		done.CompleteWire(nil, 0, err)
		return noopCanceler{}
	}
	// Batched calls queue their encoded args until the flusher writes the
	// frame, so each call's stream lives in its own pooled buffer that
	// sendBatch releases after the vectored write. Zero-arg calls — the
	// bulk of small batched traffic — take no buffer at all.
	var argsBuf *frameBuf
	var argBytes []byte
	rollback := func() {}
	if len(args) > 0 {
		argsBuf = getFrame(64)
		var err error
		rollback, err = c.marshalVectorInto(argsBuf, args)
		if err != nil {
			argsBuf.release()
			return fail(&core.CopyError{What: "remote arguments of " + method, Err: err})
		}
		argBytes = argsBuf.b
		if len(argBytes)+len(method)+64 > maxFrame {
			rollback()
			// Read the length out before release: argBytes aliases the
			// buffer, and released bytes are the pool's (poisoned under
			// test).
			n := len(argBytes)
			argsBuf.release()
			return fail(&core.CopyError{
				What: "remote arguments of " + method,
				Err:  fmt.Errorf("%d bytes exceeds the %d-byte frame limit", n, maxFrame),
			})
		}
	}
	pa := &pendingAsync{
		p:      p,
		method: method,
		args:   args,
		tc:     tc,
		done:   done,
		spanID: spanID,
		start:  start,
		argLen: int64(len(argBytes)),
	}
	c.mu.Lock()
	if c.closed {
		// The connection is already down: same capability fault the sync
		// path reports.
		err := c.causeLocked()
		c.mu.Unlock()
		rollback()
		if argsBuf != nil {
			argsBuf.release()
		}
		return fail(fmt.Errorf("%w: %v", core.ErrRevoked, err))
	}
	c.nextReq++
	pa.reqID = c.nextReq
	c.pending[pa.reqID] = pa
	c.mu.Unlock()
	c.batch.enqueue(batchedCall{reqID: pa.reqID, exportID: p.exportID, method: method, traceID: tc.TraceID, parentSpan: spanID, args: argBytes, argsBuf: argsBuf})
	return pa
}

// sendBatch writes queued calls as one frame: a lone call travels as an
// ordinary msgInvoke (no batch envelope), several as msgBatchInvoke. A
// failed write fails every call in the frame with the connection fault.
func (c *Conn) sendBatch(calls []batchedCall) {
	if m := c.metrics; m != nil {
		m.batchOccupancy.Observe(int64(len(calls)))
	}
	// Call headers build in one pooled buffer; each call's argument bytes
	// stay in the buffer invokeAsync encoded them into, and the vectored
	// writer stitches header and payload segments into one syscall —
	// nothing is memmoved into a contiguous frame.
	hb := getFrame(64 * len(calls))
	var err error
	if len(calls) == 1 {
		call := &calls[0]
		w := wbuf{b: hb.b}
		w.u8(msgInvoke)
		w.uvarint(call.reqID)
		w.uvarint(call.exportID)
		w.str(call.method)
		appendTrace(&w, call.traceID, call.parentSpan)
		hb.b = w.b
		err = c.sendSegments(hb.b, call.args)
	} else {
		w := wbuf{b: hb.b}
		w.u8(msgBatchInvoke)
		w.uvarint(uint64(len(calls)))
		// Two passes: headers first (appends may move hb's backing array,
		// so segment slices are only cut once the buffer is final).
		cuts := make([]int, len(calls))
		for i := range calls {
			call := &calls[i]
			appendBatchCallHeader(&w, call.reqID, call.exportID, call.method, call.traceID, call.parentSpan, len(call.args))
			cuts[i] = len(w.b)
		}
		hb.b = w.b
		segs := make([][]byte, 0, 2*len(calls))
		prev := 0
		for i := range calls {
			segs = append(segs, hb.b[prev:cuts[i]])
			if len(calls[i].args) > 0 {
				segs = append(segs, calls[i].args)
			}
			prev = cuts[i]
		}
		err = c.sendSegments(segs...)
	}
	hb.release()
	for i := range calls {
		if calls[i].argsBuf != nil {
			calls[i].argsBuf.release()
			calls[i].argsBuf = nil
		}
	}
	if err != nil {
		fault := fmt.Errorf("%w: remote send: %v", core.ErrRevoked, err)
		for _, call := range calls {
			c.complete(call.reqID, wireResult{err: fault})
		}
	}
}

// sendReleases writes queued import releases as one msgRelease frame. A
// failed write faults the connection: a half-dead writer that swallowed
// releases silently would leak the peer's export entries until teardown,
// and every later frame was going to fail the same way.
func (c *Conn) sendReleases(entries []releaseEntry) {
	fb := getFrame(8 + 16*len(entries))
	w := wbuf{b: fb.b}
	w.u8(msgRelease)
	w.uvarint(uint64(len(entries)))
	for _, e := range entries {
		appendReleaseEntry(&w, e)
	}
	fb.b = w.b
	err := c.send(fb.b)
	fb.release()
	if err != nil {
		c.shutdown(fmt.Errorf("remote: send releases: %w", err))
	}
}

// --- reader / inbound ------------------------------------------------------

func (c *Conn) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		fb, err := readFrameInto(br)
		if err != nil {
			c.shutdown(err)
			return
		}
		// The reader's reference spans dispatch; handlers that outlive
		// dispatch (invoke frames, whose args alias the buffer) retain
		// their own and drop it once the argument stream is decoded.
		err = c.dispatch(fb)
		fb.release()
		if err != nil {
			c.shutdown(err)
			return
		}
	}
}

// dispatch decodes one frame (decodeFrame — the fuzzed surface) and acts
// on the typed result. A decode error faults the whole connection: frame
// structure is trusted-transport territory, unlike per-call argument
// streams, which fail per call.
func (c *Conn) dispatch(fb *frameBuf) error {
	t, v, err := decodeFrame(fb.b)
	if m := c.metrics; m != nil {
		m.frameIn(t)
		if err != nil {
			m.badFrames.Inc()
			m.reg.Eventf("conn %s: malformed %s frame faulted the connection: %v", m.peer, msgName(t), err)
		}
	}
	if err != nil {
		return err
	}
	switch t {
	case msgInvoke:
		// Handlers run off the reader so it keeps draining replies — a
		// worker servicing a call can call back into us mid-request. The
		// frame buffer rides along (f.args aliases it) until the handler
		// has decoded the argument stream.
		f := v.(invokeFrame)
		fb.retain()
		c.exec.submit(funcJob(func() { c.handleInvoke(f, fb.release) }))
	case msgBatchInvoke:
		calls := v.([]invokeFrame)
		fb.retain()
		var undecoded atomic.Int32
		undecoded.Store(int32(len(calls)))
		argsDone := func() {
			if undecoded.Add(-1) == 0 {
				fb.release()
			}
		}
		go c.handleBatchInvoke(calls, argsDone)
	case msgReply:
		c.complete(v.(replyFrame).reqID, c.wireResultOf(v.(replyFrame)))
	case msgBatchReply:
		for _, rep := range v.([]replyFrame) {
			c.complete(rep.reqID, c.wireResultOf(rep))
		}
	case msgRevoke:
		f := v.(revokeFrame)
		return c.handleRevoke(f.exportID, f.reason)
	case msgRelease:
		return c.handleRelease(v.([]releaseEntry))
	case msgManifest:
		// Off the reader: a manifest of a re-exported proxy may itself
		// need a wire round trip on another connection.
		go c.handleManifest(v.(manifestFrame))
	case msgManifestReply:
		c.handleManifestReply(v.(manifestReplyFrame))
	case msgLookup:
		f := v.(lookupFrame)
		go c.handleLookup(f.reqID, f.name)
	case msgLookupReply:
		c.handleLookupReply(v.(lookupReplyFrame))
	case msgPing:
		f := v.(pingFrame)
		c.recordPeer(f)
		network, addr := advertised(c.k)
		var w wbuf
		appendPing(&w, msgPong, f.reqID, network, addr)
		return c.send(w.b)
	case msgPong:
		f := v.(pingFrame)
		c.recordPeer(f)
		c.complete(f.reqID, wireResult{})
	case msgHandoff:
		return c.handleHandoff(v.(handoffFrame))
	case msgRedeem:
		// Off the reader: redemption mints an export (and possibly a
		// recursive offer on a third connection) and sends the reply.
		go c.handleRedeem(v.(redeemFrame))
	case msgRedeemReply:
		c.handleRedeemReply(v.(redeemReplyFrame))
	}
	return nil
}

// wireResultOf turns one decoded reply into a caller-facing result,
// decoding the seri stream of successful replies.
func (c *Conn) wireResultOf(rep replyFrame) wireResult {
	res := wireResult{}
	if rep.status == statusOK {
		results, derr := c.unmarshalVector(rep.body)
		if derr != nil {
			res.err = fmt.Errorf("remote: decode results: %w", derr)
		} else {
			res.results = results
			res.copied = int64(len(rep.body))
		}
		return res
	}
	res.err = decodeWireErr(rep.kind, rep.class, rep.msg)
	return res
}

// serveInvoke runs one inbound call on a local export and builds its
// reply. Every failure — unknown export, argument decode, callee error,
// unencodable results — lands in the reply's own status, which is what
// gives batched calls per-call error isolation for free.
//
// argsDone releases the caller's hold on the inbound frame buffer that
// f.args aliases; serveInvoke calls it exactly once, the moment the
// argument stream is decoded (or the call fails before needing it) — the
// buffer must never stay pinned for the duration of the callee.
func (c *Conn) serveInvoke(f invokeFrame, argsDone func()) replyFrame {
	errRep := func(kind byte, class, msg string) replyFrame {
		return replyFrame{reqID: f.reqID, status: statusErr, kind: kind, class: class, msg: msg}
	}
	c.mu.Lock()
	var cap *core.Capability
	if e := c.exports[f.exportID]; e != nil {
		cap = e.cap
	}
	c.mu.Unlock()
	if cap == nil {
		argsDone()
		return errRep(errKindRevoked, "", fmt.Sprintf("unknown export %d", f.exportID))
	}
	if cap.Stub != nil {
		argsDone()
		return errRep(errKindRemote, "UnsupportedOperation",
			"remote invocation of VM capabilities is not supported yet")
	}
	args, err := c.unmarshalVector(f.args)
	argsDone() // decode copies everything out; the frame is free to recycle
	if err != nil {
		return errRep(errKindProtocol, "", err.Error())
	}

	m := c.metrics
	// Untraced frames sample off the request id — monotonic per client
	// connection, so it is an exact 1-in-64 tick with no shared counter.
	start := m.serveStart(f.traceID != 0 || f.reqID&telemetry.UntracedSampleMask == 0)
	var serverSpan uint64

	task := c.taskPool.Get().(*core.Task)
	// Traced frames bind the inbound context to the serving task AND the
	// serving goroutine, so onward calls — whether made with this task or
	// with fresh tasks the handler creates — join the caller's trace.
	// Untraced frames (the common case) skip all of it, including the
	// goroutine-id lookup.
	var unbind func()
	if m != nil && f.traceID != 0 {
		serverSpan = telemetry.NewID()
		tc := telemetry.TraceContext{TraceID: f.traceID, SpanID: serverSpan}
		task.SetTraceContext(tc)
		unbind = telemetry.BindGoroutine(tc)
	}
	results, callErr := cap.InvokeFrom(task, f.method, args...)
	if unbind != nil {
		// Clear before the task returns to the pool: the next Get may be
		// on another goroutine serving an unrelated, untraced call.
		unbind()
		task.SetTraceContext(telemetry.TraceContext{})
	}
	c.taskPool.Put(task)

	if m != nil {
		m.serverSpan(f, serverSpan, cap.Owner().Name, start, callErr)
	}

	if callErr != nil {
		kind, class, msg := encodeWireErr(callErr)
		return errRep(kind, class, msg)
	}
	if len(results) == 0 {
		// Void results — the bulk of small traffic — take no buffer.
		return replyFrame{reqID: f.reqID, status: statusOK}
	}
	resFb := getFrame(64)
	rollback, err := c.marshalVectorInto(resFb, results)
	if err != nil {
		resFb.release()
		return errRep(errKindProtocol, "", "encode results: "+err.Error())
	}
	if len(resFb.b)+32 > maxFrame {
		rollback()
		// Read the length out before release: released bytes are the
		// pool's (poisoned under test).
		n := len(resFb.b)
		resFb.release()
		return errRep(errKindProtocol, "",
			fmt.Sprintf("results of %d bytes exceed the frame limit", n))
	}
	return replyFrame{reqID: f.reqID, status: statusOK, body: resFb.b, bodyBuf: resFb}
}

// handleInvoke services one single-invoke frame. argsDone is the frame
// buffer hold passed through to serveInvoke.
func (c *Conn) handleInvoke(f invokeFrame, argsDone func()) {
	rep := c.serveInvoke(f, argsDone)
	hb := getFrame(32)
	w := wbuf{b: hb.b}
	w.u8(msgReply)
	w.uvarint(rep.reqID)
	var err error
	if rep.status == statusOK {
		// Header and result stream go down as separate segments of one
		// vectored write; the result buffer never gets copied into the
		// frame.
		w.u8(statusOK)
		hb.b = w.b
		err = c.sendSegments(hb.b, rep.body)
	} else {
		appendReplyBody(&w, rep, false)
		hb.b = w.b
		err = c.send(hb.b)
	}
	hb.release()
	if rep.bodyBuf != nil {
		rep.bodyBuf.release()
	}
	if err != nil && rep.status == statusOK {
		// An unsendable success must still answer, or the caller hangs.
		c.replyErr(rep.reqID, errKindProtocol, "", "send results: "+err.Error())
	}
}

// batchRun is the shared state of one in-flight batch invoke, and
// batchCallJob one call's slot in it.
type batchRun struct {
	c        *Conn
	calls    []invokeFrame
	replies  []replyFrame
	jobs     []batchCallJob
	argsDone func()
	wg       sync.WaitGroup
}

type batchCallJob struct {
	b *batchRun
	i int
}

func (j *batchCallJob) run() {
	defer j.b.wg.Done()
	j.b.replies[j.i] = j.b.c.serveInvoke(j.b.calls[j.i], j.b.argsDone)
}

// handleBatchInvoke services one multi-invoke frame: the calls run
// concurrently (each is an independent invocation, exactly as if it had
// arrived in its own frame) and the replies leave as one batch frame with
// per-call status — one faulting call never poisons its batch.
func (c *Conn) handleBatchInvoke(calls []invokeFrame, argsDone func()) {
	// One batchRun and one job array per frame: submitting &b.jobs[i]
	// converts a pointer to the execJob interface, so the per-call path
	// allocates nothing (the old per-call closures were an allocation
	// each, visible on the batched hot path).
	b := &batchRun{c: c, calls: calls, replies: make([]replyFrame, len(calls)), argsDone: argsDone}
	b.wg.Add(len(calls))
	b.jobs = make([]batchCallJob, len(calls))
	for i := range calls {
		b.jobs[i] = batchCallJob{b: b, i: i}
		c.exec.submit(&b.jobs[i])
	}
	b.wg.Wait()
	replies := b.replies

	// Every pooled result buffer is released once its chunk is written
	// (or abandoned on a dead connection).
	defer func() {
		for i := range replies {
			if replies[i].bodyBuf != nil {
				replies[i].bodyBuf.release()
			}
		}
	}()

	// Chunk the batch reply by size so large result sets cannot overflow
	// one frame; each chunk is a valid msgBatchReply. Reply headers build
	// in a pooled buffer and result streams ride as their own segments of
	// the vectored write.
	for start := 0; start < len(replies); {
		end, size := start, 0
		for end < len(replies) {
			s := len(replies[end].body) + len(replies[end].class) + len(replies[end].msg) + 32
			if end > start && size+s > maxBatchBytes {
				break
			}
			size += s
			end++
		}
		hb := getFrame(32 * (end - start))
		w := wbuf{b: hb.b}
		w.u8(msgBatchReply)
		w.uvarint(uint64(end - start))
		cuts := make([]int, end-start)
		for i, rep := range replies[start:end] {
			w.uvarint(rep.reqID)
			w.u8(rep.status)
			if rep.status == statusOK {
				w.uvarint(uint64(len(rep.body)))
			} else {
				w.u8(rep.kind)
				w.str(rep.class)
				w.str(rep.msg)
			}
			cuts[i] = len(w.b)
		}
		hb.b = w.b
		segs := make([][]byte, 0, 2*(end-start))
		prev := 0
		for i, rep := range replies[start:end] {
			segs = append(segs, hb.b[prev:cuts[i]])
			if rep.status == statusOK && len(rep.body) > 0 {
				segs = append(segs, rep.body)
			}
			prev = cuts[i]
		}
		err := c.sendSegments(segs...)
		hb.release()
		if err != nil {
			// The connection is going down; pending completions fail
			// through shutdown, so there is nobody left to answer.
			return
		}
		start = end
	}
}

func (c *Conn) replyErr(reqID uint64, kind byte, class, msg string) {
	var w wbuf
	w.u8(msgReply)
	w.uvarint(reqID)
	w.u8(statusErr)
	w.u8(kind)
	w.str(class)
	w.str(msg)
	c.sendOrFault(w.b)
}

// parkedRevoke is a pushed revocation waiting for its import: the frame
// carrying the handle was sent after the revocation push (the hook fires
// during marshal, before the invoke frame leaves), so on a FIFO stream
// the handle follows within one in-flight window. at bounds that window:
// a parked entry that old is garbage — most commonly a revocation racing
// a release the importer already sent, for an id that will never arrive
// again — and is pruned rather than kept forever.
type parkedRevoke struct {
	reason byte
	at     time.Time
}

// maxPreRevoked caps the parked-revocation table. Entries are consumed by
// the import they raced, expired after preRevokedTTL (or when the handle
// they would have revoked is released), and cleared at teardown — so the
// table only grows when a peer floods revocations for exports it never
// ships. A peer that parks maxPreRevoked of them inside one TTL window is
// malfunctioning or hostile, and the connection faults rather than grow
// without bound.
const (
	maxPreRevoked = 1024
	preRevokedTTL = 5 * time.Second
)

// prunePreRevokedLocked drops parked revocations past their in-flight
// window. Caller holds c.mu.
func (c *Conn) prunePreRevokedLocked(now time.Time) {
	for id, p := range c.preRevoked {
		if now.Sub(p.at) > preRevokedTTL {
			delete(c.preRevoked, id)
		}
	}
}

// handleRevoke applies a pushed revocation to the local proxy, or parks
// it for an import still in flight.
func (c *Conn) handleRevoke(exportID uint64, reason byte) error {
	c.mu.Lock()
	var cap *core.Capability
	if e := c.imports[exportID]; e != nil {
		cap = e.cap
	} else if at, released := c.releasedImports[exportID]; released && time.Since(at) <= preRevokedTTL {
		// The push crossed our own full release in flight: the handle is
		// already dead on both ends, so there is nothing left to revoke.
	} else {
		now := time.Now()
		c.prunePreRevokedLocked(now)
		if len(c.preRevoked) >= maxPreRevoked {
			c.mu.Unlock()
			return fmt.Errorf("remote: protocol error: %d revocations parked for never-imported exports", maxPreRevoked)
		}
		c.preRevoked[exportID] = parkedRevoke{reason: reason, at: now}
	}
	c.mu.Unlock()
	if cap != nil {
		c.metrics.capFault(1)
		cap.RevokeWithReason(revokeFault(reason))
	}
	return nil
}

// handleRelease returns wire references the peer is done with, dropping
// export entries — and their gate revocation hooks — at refcount zero.
// The generation guard makes duplicate or superseded releases inert; a
// release of more references than were ever sent faults the connection.
func (c *Conn) handleRelease(entries []releaseEntry) error {
	var unhooks []func()
	var upstreams []*relayRef
	c.mu.Lock()
	for _, re := range entries {
		e := c.exports[re.exportID]
		if e == nil || re.gen <= e.relGen {
			continue // dropped by revocation GC, or a stale duplicate
		}
		e.relGen = re.gen
		unhook, upstream, err := c.dropExportRefsLocked(re.exportID, re.count)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		if unhook != nil {
			unhooks = append(unhooks, unhook)
		}
		if upstream != nil {
			upstreams = append(upstreams, upstream)
		}
	}
	c.mu.Unlock()
	for _, unhook := range unhooks {
		unhook()
	}
	// A dead relay entry drops its pin on the middleman's own import, so
	// an import held only for relaying drains back to the origin once the
	// peer is done — without this, re-exporting a proxy pinned the
	// origin's export for the life of the middleman's connection. An
	// import the middleman still holds for itself just loses the pin and
	// stays usable.
	for _, rr := range upstreams {
		rr.conn.unpinImport(rr.importID, rr.gen)
	}
	return nil
}

// handleManifest answers a lazy manifest fetch out of the export table.
func (c *Conn) handleManifest(f manifestFrame) {
	c.mu.Lock()
	var cap *core.Capability
	if e := c.exports[f.exportID]; e != nil {
		cap = e.cap
	}
	c.mu.Unlock()
	var w wbuf
	w.u8(msgManifestReply)
	w.uvarint(f.reqID)
	if cap == nil {
		w.u8(statusErr)
		w.u8(errKindRevoked)
		w.str("")
		w.str(fmt.Sprintf("unknown export %d", f.exportID))
	} else {
		methods := cap.Methods()
		w.u8(statusOK)
		w.uvarint(uint64(len(methods)))
		for _, m := range methods {
			w.str(m)
		}
	}
	c.sendOrFault(w.b)
}

func (c *Conn) handleManifestReply(f manifestReplyFrame) {
	res := wireResult{}
	if f.status == statusOK {
		res.results = []any{f.methods}
	} else {
		res.err = decodeWireErr(f.kind, f.class, f.msg)
	}
	c.complete(f.reqID, res)
}

// handleLookup answers an Import from the peer out of the kernel's export
// table.
func (c *Conn) handleLookup(reqID uint64, name string) {
	cap := c.k.ExportedCapability(name)
	if cap == nil {
		c.replyLookupErr(reqID, errKindNotFound, fmt.Sprintf("no export named %q", name))
		return
	}
	handle, _ := c.exportHandle(cap)
	var w wbuf
	w.u8(msgLookupReply)
	w.uvarint(reqID)
	w.u8(statusOK)
	w.uvarint(handle)
	methods := cap.Methods()
	w.uvarint(uint64(len(methods)))
	for _, m := range methods {
		w.str(m)
	}
	c.sendOrFault(w.b)
}

func (c *Conn) replyLookupErr(reqID uint64, kind byte, msg string) {
	var w wbuf
	w.u8(msgLookupReply)
	w.uvarint(reqID)
	w.u8(statusErr)
	w.u8(kind)
	w.str("")
	w.str(msg)
	c.sendOrFault(w.b)
}

func (c *Conn) handleLookupReply(f lookupReplyFrame) {
	res := wireResult{}
	if f.status == statusOK {
		id, kind := unpackHandle(f.handle)
		var cap *core.Capability
		var pre, ierr error
		c.mu.Lock()
		if kind == handleKindYours {
			if e := c.exports[id]; e != nil {
				cap = e.cap
			} else {
				ierr = fmt.Errorf("remote: unknown returning export %d", id)
			}
		} else {
			cap, pre, _, ierr = c.importLocked(id, f.methods)
		}
		c.mu.Unlock()
		if pre != nil {
			cap.RevokeWithReason(pre)
		}
		if ierr != nil {
			res.err = ierr
		} else {
			res.results = []any{cap}
		}
	} else {
		res.err = decodeWireErr(f.kind, "", f.msg)
	}
	c.complete(f.reqID, res)
}

// --- error mapping ---------------------------------------------------------

// encodeWireErr maps a local invocation failure onto the wire.
func encodeWireErr(err error) (kind byte, class, msg string) {
	switch {
	case errors.Is(err, core.ErrRevoked):
		return errKindRevoked, "", err.Error()
	case errors.Is(err, core.ErrDomainTerminated):
		return errKindTerminated, "", err.Error()
	case errors.Is(err, core.ErrNoSuchMethod):
		return errKindNoMethod, "", err.Error()
	}
	var re *core.RemoteError
	if errors.As(err, &re) {
		return errKindRemote, re.Class, re.Msg
	}
	return errKindRemote, fmt.Sprintf("%T", err), err.Error()
}

// decodeWireErr rebuilds a local error from the wire, around the same
// kernel sentinels so errors.Is works transparently through proxies.
func decodeWireErr(kind byte, class, msg string) error {
	switch kind {
	case errKindRevoked:
		return wrapSentinel(core.ErrRevoked, msg)
	case errKindTerminated:
		return wrapSentinel(core.ErrDomainTerminated, msg)
	case errKindNoMethod:
		return wrapSentinel(core.ErrNoSuchMethod, msg)
	case errKindNotFound:
		return fmt.Errorf("remote: %s", msg)
	case errKindProtocol:
		return fmt.Errorf("remote: protocol error: %s", msg)
	default:
		return &core.RemoteError{Class: class, Msg: msg}
	}
}

// wrapSentinel rebuilds a sentinel-rooted error without repeating the
// sentinel's own text (the wire message is usually err.Error() of the
// same sentinel on the far side).
func wrapSentinel(sentinel error, msg string) error {
	msg = strings.TrimPrefix(msg, sentinel.Error())
	msg = strings.TrimPrefix(msg, ": ")
	if msg == "" {
		return fmt.Errorf("%w (remote)", sentinel)
	}
	return fmt.Errorf("%w (remote): %s", sentinel, msg)
}

// --- teardown --------------------------------------------------------------

// shutdown tears the connection down exactly once: pending requests fail,
// every imported proxy faults, and the host domain terminates so its
// resources are reclaimed.
func (c *Conn) shutdown(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cause = cause
	pending := c.pending
	c.pending = make(map[uint64]wireCompleter)
	imports := make([]*core.Capability, 0, len(c.imports))
	for _, e := range c.imports {
		imports = append(imports, e.cap)
	}
	c.imports = make(map[uint64]*importEntry)
	c.preRevoked = make(map[uint64]parkedRevoke)
	c.pendingHandoffs = make(map[uint64]parkedOffer)
	c.releasedImports = make(map[uint64]time.Time)
	// Unregister every export's revocation hook so a closed connection
	// does not stay pinned to long-lived gates, and collect the relay
	// entries' upstream pins — they live on OTHER connections of this
	// kernel and must not outlive the relays that took them.
	unhook := make([]func(), 0, len(c.exports))
	var upstreams []*relayRef
	for _, e := range c.exports {
		if e.unhook != nil {
			unhook = append(unhook, e.unhook)
		}
		if e.relay != nil {
			upstreams = append(upstreams, e.relay)
		}
	}
	c.exports = make(map[uint64]*exportEntry)
	c.exportIDs = make(map[*core.Gate]uint64)
	c.mu.Unlock()

	for _, remove := range unhook {
		remove()
	}
	for _, rr := range upstreams {
		rr.conn.unpinImport(rr.importID, rr.gen)
	}

	close(c.done)
	c.nc.Close()

	if m := c.metrics; m != nil {
		m.capFault(int64(len(imports)))
		m.drop()
		m.reg.Eventf("conn %s closed: %v", m.peer, cause)
	}

	fault := fmt.Errorf("%w: remote connection lost: %v", core.ErrRevoked, cause)
	for _, cap := range imports {
		cap.RevokeWithReason(fault)
	}
	for _, pc := range pending {
		pc.completeWire(wireResult{err: fmt.Errorf("%w: connection lost mid-call: %v", core.ErrRevoked, cause)})
	}
	c.domain.Terminate("remote connection closed")
}
