package remote

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/seri"
)

// connSeq numbers connections for domain naming.
var connSeq atomic.Int64

// ErrConnClosed reports an operation on a closed connection.
var ErrConnClosed = errors.New("remote: connection closed")

// Conn is one kernel-to-kernel connection. It is symmetric: both ends can
// export (answer lookups and invokes from the peer) and import (hold
// proxies for peer capabilities). All proxies imported over the
// connection are owned by a dedicated local domain, so a connection
// teardown is a domain termination: every proxy faults, nothing else in
// the kernel is disturbed.
type Conn struct {
	k      *core.Kernel
	domain *core.Domain

	nc  net.Conn
	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu         sync.Mutex
	nextReq    uint64
	pending    map[uint64]chan wireResult
	exports    map[uint64]*core.Capability // export id -> local capability
	exportIDs  map[*core.Gate]uint64       // dedup: gate -> export id
	nextExport uint64
	imports    map[uint64]*core.Capability // peer export id -> local proxy
	preRevoked map[uint64]byte             // revokes that raced ahead of the import
	unhook     []func()                    // OnRevoke deregistrations, run at shutdown
	closed     bool
	cause      error

	// taskPool recycles detached tasks for inbound invocations, so the
	// per-call cost is the LRMI plus the wire, not task setup.
	taskPool sync.Pool

	done chan struct{}
}

// wireResult is one decoded msgReply.
type wireResult struct {
	results []any
	copied  int64
	err     error
}

// NewConn wires an established network connection into kernel k and
// starts its reader. The connection gets a fresh host domain named
// remote-<n> that owns its proxies and runs its inbound calls.
func NewConn(k *core.Kernel, nc net.Conn) (*Conn, error) {
	d, err := k.NewDomain(core.DomainConfig{
		Name: fmt.Sprintf("remote-%d", connSeq.Add(1)),
	})
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Conn{
		k:          k,
		domain:     d,
		nc:         nc,
		bw:         bufio.NewWriter(nc),
		pending:    make(map[uint64]chan wireResult),
		exports:    make(map[uint64]*core.Capability),
		exportIDs:  make(map[*core.Gate]uint64),
		imports:    make(map[uint64]*core.Capability),
		preRevoked: make(map[uint64]byte),
		done:       make(chan struct{}),
	}
	c.taskPool.New = func() any {
		return k.NewDetachedTask(d, "remote-call")
	}
	go c.readLoop()
	return c, nil
}

// Dial connects kernel k to a remote kernel listening on network/addr
// ("tcp" or "unix").
func Dial(k *core.Kernel, network, addr string) (*Conn, error) {
	nc, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewConn(k, nc)
}

// Domain returns the connection's host domain (owner of its proxies).
func (c *Conn) Domain() *core.Domain { return c.domain }

// Done is closed when the connection shuts down.
func (c *Conn) Done() <-chan struct{} { return c.done }

// Err returns the shutdown cause, once Done is closed.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cause
}

// Close tears the connection down: pending calls fail, and every proxy
// imported over it faults with a revocation wrapping ErrRevoked.
func (c *Conn) Close() error {
	c.shutdown(ErrConnClosed)
	return nil
}

// send frames and writes one message.
func (c *Conn) send(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeFrame(c.bw, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Ping performs one protocol round trip, proving the peer kernel is up
// and serving. Dial-with-retry loops use it as a readiness probe: a
// connection can land in the listen backlog of a process that is already
// dying, and only an answered ping distinguishes the two.
func (c *Conn) Ping(timeout time.Duration) error {
	reqID, ch, err := c.newPending()
	if err != nil {
		return err
	}
	var w wbuf
	w.u8(msgPing)
	w.uvarint(reqID)
	if err := c.send(w.b); err != nil {
		c.dropPending(reqID)
		return err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-c.done:
		return c.closedErr()
	case <-timer.C:
		c.dropPending(reqID)
		return fmt.Errorf("remote: ping timeout after %v", timeout)
	}
}

// Import asks the peer for the capability it exports under name and
// returns a local proxy for it.
func (c *Conn) Import(name string) (*core.Capability, error) {
	reqID, ch, err := c.newPending()
	if err != nil {
		return nil, err
	}
	var w wbuf
	w.u8(msgLookup)
	w.uvarint(reqID)
	w.str(name)
	if err := c.send(w.b); err != nil {
		c.dropPending(reqID)
		return nil, err
	}
	select {
	case res := <-ch:
		if res.err != nil {
			return nil, res.err
		}
		// results[0] carries the proxy smuggled through the lookup path.
		cap, _ := res.results[0].(*core.Capability)
		if cap == nil {
			return nil, fmt.Errorf("remote: lookup %q returned no capability", name)
		}
		return cap, nil
	case <-c.done:
		return nil, c.closedErr()
	}
}

func (c *Conn) newPending() (uint64, chan wireResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, c.causeLocked()
	}
	c.nextReq++
	id := c.nextReq
	ch := make(chan wireResult, 1)
	c.pending[id] = ch
	return id, ch, nil
}

func (c *Conn) dropPending(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *Conn) closedErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.causeLocked()
}

func (c *Conn) causeLocked() error {
	if c.cause != nil && c.cause != ErrConnClosed {
		return fmt.Errorf("%w: %v", ErrConnClosed, c.cause)
	}
	return ErrConnClosed
}

// --- export side -----------------------------------------------------------

// exportLocked registers cap in the export table (idempotent per gate) and
// arranges revocation push. Caller holds c.mu.
func (c *Conn) exportLocked(cap *core.Capability) uint64 {
	g := cap.Gate()
	if id, ok := c.exportIDs[g]; ok {
		return id
	}
	id := c.nextExport
	c.nextExport++
	c.exports[id] = cap
	c.exportIDs[g] = id
	// Push revocation to the peer the moment the gate dies, so remote
	// proxies fail fast instead of on their next wire round-trip. The hook
	// fires immediately if the gate is already revoked; the peer tolerates
	// a revoke arriving before the handle that names it. Shutdown
	// unregisters the hook so closed connections don't stay pinned to
	// long-lived gates.
	c.unhook = append(c.unhook, g.OnRevoke(func() {
		reason := revokeReasonRevoked
		if cap.Owner().Terminated() {
			reason = revokeReasonTerminated
		}
		var w wbuf
		w.u8(msgRevoke)
		w.uvarint(id)
		w.u8(reason)
		_ = c.send(w.b) // a dead connection needs no push
	}))
	return id
}

// importLocked returns (creating if needed) the proxy for the peer's
// export id. A cached proxy that was revoked locally (e.g. an unmounted
// remote servlet) is replaced: revocation kills the handle, not the
// peer's export, and a fresh import is a fresh grant — if the peer side
// is what died, the new proxy's first invoke fails there anyway. Caller
// holds c.mu.
func (c *Conn) importLocked(id uint64, methods []string) (*core.Capability, error) {
	if cap, ok := c.imports[id]; ok && !cap.Revoked() {
		return cap, nil
	}
	pt := &proxyTarget{conn: c, exportID: id, methods: methods}
	cap, err := c.k.CreateProxyCapability(c.domain, pt)
	if err != nil {
		return nil, err
	}
	c.imports[id] = cap
	if reason, raced := c.preRevoked[id]; raced {
		delete(c.preRevoked, id)
		cap.RevokeWithReason(revokeFault(reason))
	}
	return cap, nil
}

// revokeFault builds the local error for a pushed revocation.
func revokeFault(reason byte) error {
	if reason == revokeReasonTerminated {
		return fmt.Errorf("%w (remote domain)", core.ErrDomainTerminated)
	}
	return fmt.Errorf("%w (remote)", core.ErrRevoked)
}

// --- seri External bridge --------------------------------------------------

// connExternal implements seri.External over the connection's tables:
// capabilities cross the stream as handles, everything else by copy.
type connExternal struct{ c *Conn }

func (e connExternal) EncodeExternal(v any) (uint64, bool) {
	cap, ok := v.(*core.Capability)
	if !ok {
		return 0, false
	}
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	// A proxy imported over THIS connection goes home as the peer's own
	// export id; everything else (local capabilities, proxies from other
	// connections) is exported from here.
	if pt := proxyOf(cap); pt != nil && pt.conn == c {
		return packHandle(pt.exportID, handleKindYours), true
	}
	return packHandle(c.exportLocked(cap), handleKindTheirs), true
}

func (e connExternal) DecodeExternal(h uint64) (any, error) {
	id, kind := unpackHandle(h)
	c := e.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if kind == handleKindYours {
		// Our own export returning home: hand back the original.
		cap, ok := c.exports[id]
		if !ok {
			return nil, fmt.Errorf("remote: unknown returning export %d", id)
		}
		return cap, nil
	}
	return c.importLocked(id, nil)
}

// proxyOf returns cap's proxy target when cap is a wire proxy.
func proxyOf(cap *core.Capability) *proxyTarget {
	pt, _ := core.ProxyTargetOf(cap).(*proxyTarget)
	return pt
}

// --- outbound invocation (proxy side) --------------------------------------

// proxyTarget is the core.ProxyTarget for one imported capability.
type proxyTarget struct {
	conn     *Conn
	exportID uint64 // the PEER's export id
	methods  []string
}

func (p *proxyTarget) ProxyMethods() []string { return p.methods }

// InvokeProxy performs one remote invocation: marshal args (capabilities
// by reference), one request/reply round trip, unmarshal results.
func (p *proxyTarget) InvokeProxy(method string, args []any) ([]any, int64, error) {
	c := p.conn
	argBytes, err := seri.MarshalExt(c.k.SeriRegistry(), args, connExternal{c})
	if err != nil {
		return nil, 0, &core.CopyError{What: "remote arguments of " + method, Err: err}
	}
	// Oversized arguments are a copy failure on a healthy connection, not
	// a revocation; reject before the frame writer does.
	if len(argBytes)+len(method)+32 > maxFrame {
		return nil, 0, &core.CopyError{
			What: "remote arguments of " + method,
			Err:  fmt.Errorf("%d bytes exceeds the %d-byte frame limit", len(argBytes), maxFrame),
		}
	}
	reqID, ch, err := c.newPending()
	if err != nil {
		return nil, 0, err
	}
	var w wbuf
	w.u8(msgInvoke)
	w.uvarint(reqID)
	w.uvarint(p.exportID)
	w.str(method)
	w.raw(argBytes)
	if err := c.send(w.b); err != nil {
		c.dropPending(reqID)
		// A failed write means the peer is gone: same capability fault as
		// any other connection loss.
		return nil, 0, fmt.Errorf("%w: remote send %s: %v", core.ErrRevoked, method, err)
	}
	select {
	case res := <-ch:
		return res.results, int64(len(argBytes)) + res.copied, res.err
	case <-c.done:
		// A call interrupted by connection loss is a capability fault, the
		// same as revocation, so callers need only one failure model.
		return nil, int64(len(argBytes)), fmt.Errorf("%w: %v", core.ErrRevoked, c.closedErr())
	}
}

// --- reader / inbound ------------------------------------------------------

func (c *Conn) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		frame, err := readFrame(br)
		if err != nil {
			c.shutdown(err)
			return
		}
		if err := c.dispatch(frame); err != nil {
			c.shutdown(err)
			return
		}
	}
}

func (c *Conn) dispatch(frame []byte) error {
	r := &rbuf{b: frame}
	t, err := r.u8()
	if err != nil {
		return err
	}
	switch t {
	case msgInvoke:
		reqID, err := r.uvarint()
		if err != nil {
			return err
		}
		exportID, err := r.uvarint()
		if err != nil {
			return err
		}
		method, err := r.str()
		if err != nil {
			return err
		}
		args := r.rest()
		// Handlers run concurrently so the reader keeps draining replies —
		// a worker servicing a call can call back into us mid-request.
		go c.handleInvoke(reqID, exportID, method, args)
		return nil
	case msgReply:
		return c.handleReply(r)
	case msgRevoke:
		exportID, err := r.uvarint()
		if err != nil {
			return err
		}
		reason, err := r.u8()
		if err != nil {
			return err
		}
		c.handleRevoke(exportID, reason)
		return nil
	case msgLookup:
		reqID, err := r.uvarint()
		if err != nil {
			return err
		}
		name, err := r.str()
		if err != nil {
			return err
		}
		go c.handleLookup(reqID, name)
		return nil
	case msgLookupReply:
		return c.handleLookupReply(r)
	case msgPing:
		reqID, err := r.uvarint()
		if err != nil {
			return err
		}
		var w wbuf
		w.u8(msgPong)
		w.uvarint(reqID)
		return c.send(w.b)
	case msgPong:
		reqID, err := r.uvarint()
		if err != nil {
			return err
		}
		c.mu.Lock()
		ch := c.pending[reqID]
		delete(c.pending, reqID)
		c.mu.Unlock()
		if ch != nil {
			ch <- wireResult{}
		}
		return nil
	default:
		return fmt.Errorf("remote: unknown message type %d", t)
	}
}

// handleInvoke services one inbound call on a local export.
func (c *Conn) handleInvoke(reqID, exportID uint64, method string, argBytes []byte) {
	c.mu.Lock()
	cap := c.exports[exportID]
	c.mu.Unlock()
	if cap == nil {
		c.replyErr(reqID, errKindRevoked, "", fmt.Sprintf("unknown export %d", exportID))
		return
	}
	if cap.Stub != nil {
		c.replyErr(reqID, errKindRemote, "UnsupportedOperation",
			"remote invocation of VM capabilities is not supported yet")
		return
	}
	decoded, err := seri.UnmarshalExt(c.k.SeriRegistry(), argBytes, connExternal{c})
	if err != nil {
		c.replyErr(reqID, errKindProtocol, "", err.Error())
		return
	}
	args, _ := decoded.([]any)

	task := c.taskPool.Get().(*core.Task)
	results, callErr := cap.InvokeFrom(task, method, args...)
	c.taskPool.Put(task)

	if callErr != nil {
		kind, class, msg := encodeWireErr(callErr)
		c.replyErr(reqID, kind, class, msg)
		return
	}
	resBytes, err := seri.MarshalExt(c.k.SeriRegistry(), results, connExternal{c})
	if err != nil {
		c.replyErr(reqID, errKindProtocol, "", "encode results: "+err.Error())
		return
	}
	var w wbuf
	w.u8(msgReply)
	w.uvarint(reqID)
	w.u8(statusOK)
	w.raw(resBytes)
	if err := c.send(w.b); err != nil {
		// An unsendable success (e.g. results exceed the frame limit on a
		// healthy connection) must still answer, or the caller hangs.
		c.replyErr(reqID, errKindProtocol, "", "send results: "+err.Error())
	}
}

func (c *Conn) replyErr(reqID uint64, kind byte, class, msg string) {
	var w wbuf
	w.u8(msgReply)
	w.uvarint(reqID)
	w.u8(statusErr)
	w.u8(kind)
	w.str(class)
	w.str(msg)
	_ = c.send(w.b)
}

func (c *Conn) handleReply(r *rbuf) error {
	reqID, err := r.uvarint()
	if err != nil {
		return err
	}
	status, err := r.u8()
	if err != nil {
		return err
	}
	res := wireResult{}
	if status == statusOK {
		body := r.rest()
		decoded, derr := seri.UnmarshalExt(c.k.SeriRegistry(), body, connExternal{c})
		if derr != nil {
			res.err = fmt.Errorf("remote: decode results: %w", derr)
		} else {
			res.results, _ = decoded.([]any)
			res.copied = int64(len(body))
		}
	} else {
		kind, kerr := r.u8()
		if kerr != nil {
			return kerr
		}
		class, cerr := r.str()
		if cerr != nil {
			return cerr
		}
		msg, merr := r.str()
		if merr != nil {
			return merr
		}
		res.err = decodeWireErr(kind, class, msg)
	}
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- res
	}
	return nil
}

// handleRevoke applies a pushed revocation to the local proxy.
func (c *Conn) handleRevoke(exportID uint64, reason byte) {
	c.mu.Lock()
	cap := c.imports[exportID]
	if cap == nil {
		c.preRevoked[exportID] = reason
	}
	c.mu.Unlock()
	if cap != nil {
		cap.RevokeWithReason(revokeFault(reason))
	}
}

// handleLookup answers an Import from the peer out of the kernel's export
// table.
func (c *Conn) handleLookup(reqID uint64, name string) {
	cap := c.k.ExportedCapability(name)
	if cap == nil {
		c.replyLookupErr(reqID, errKindNotFound, fmt.Sprintf("no export named %q", name))
		return
	}
	c.mu.Lock()
	var handle uint64
	if pt := proxyOf(cap); pt != nil && pt.conn == c {
		handle = packHandle(pt.exportID, handleKindYours)
	} else {
		handle = packHandle(c.exportLocked(cap), handleKindTheirs)
	}
	c.mu.Unlock()
	var w wbuf
	w.u8(msgLookupReply)
	w.uvarint(reqID)
	w.u8(statusOK)
	w.uvarint(handle)
	methods := cap.Methods()
	w.uvarint(uint64(len(methods)))
	for _, m := range methods {
		w.str(m)
	}
	_ = c.send(w.b)
}

func (c *Conn) replyLookupErr(reqID uint64, kind byte, msg string) {
	var w wbuf
	w.u8(msgLookupReply)
	w.uvarint(reqID)
	w.u8(statusErr)
	w.u8(kind)
	w.str("")
	w.str(msg)
	_ = c.send(w.b)
}

func (c *Conn) handleLookupReply(r *rbuf) error {
	reqID, err := r.uvarint()
	if err != nil {
		return err
	}
	status, err := r.u8()
	if err != nil {
		return err
	}
	res := wireResult{}
	if status == statusOK {
		handle, herr := r.uvarint()
		if herr != nil {
			return herr
		}
		n, nerr := r.uvarint()
		if nerr != nil {
			return nerr
		}
		methods := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			m, merr := r.str()
			if merr != nil {
				return merr
			}
			methods = append(methods, m)
		}
		id, kind := unpackHandle(handle)
		c.mu.Lock()
		var cap *core.Capability
		var ierr error
		if kind == handleKindYours {
			if cap = c.exports[id]; cap == nil {
				ierr = fmt.Errorf("remote: unknown returning export %d", id)
			}
		} else {
			cap, ierr = c.importLocked(id, methods)
		}
		c.mu.Unlock()
		if ierr != nil {
			res.err = ierr
		} else {
			res.results = []any{cap}
		}
	} else {
		kind, kerr := r.u8()
		if kerr != nil {
			return kerr
		}
		if _, err := r.str(); err != nil { // class, unused for lookups
			return err
		}
		msg, merr := r.str()
		if merr != nil {
			return merr
		}
		res.err = decodeWireErr(kind, "", msg)
	}
	c.mu.Lock()
	ch := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if ch != nil {
		ch <- res
	}
	return nil
}

// --- error mapping ---------------------------------------------------------

// encodeWireErr maps a local invocation failure onto the wire.
func encodeWireErr(err error) (kind byte, class, msg string) {
	switch {
	case errors.Is(err, core.ErrRevoked):
		return errKindRevoked, "", err.Error()
	case errors.Is(err, core.ErrDomainTerminated):
		return errKindTerminated, "", err.Error()
	case errors.Is(err, core.ErrNoSuchMethod):
		return errKindNoMethod, "", err.Error()
	}
	var re *core.RemoteError
	if errors.As(err, &re) {
		return errKindRemote, re.Class, re.Msg
	}
	return errKindRemote, fmt.Sprintf("%T", err), err.Error()
}

// decodeWireErr rebuilds a local error from the wire, around the same
// kernel sentinels so errors.Is works transparently through proxies.
func decodeWireErr(kind byte, class, msg string) error {
	switch kind {
	case errKindRevoked:
		return wrapSentinel(core.ErrRevoked, msg)
	case errKindTerminated:
		return wrapSentinel(core.ErrDomainTerminated, msg)
	case errKindNoMethod:
		return wrapSentinel(core.ErrNoSuchMethod, msg)
	case errKindNotFound:
		return fmt.Errorf("remote: %s", msg)
	case errKindProtocol:
		return fmt.Errorf("remote: protocol error: %s", msg)
	default:
		return &core.RemoteError{Class: class, Msg: msg}
	}
}

// wrapSentinel rebuilds a sentinel-rooted error without repeating the
// sentinel's own text (the wire message is usually err.Error() of the
// same sentinel on the far side).
func wrapSentinel(sentinel error, msg string) error {
	msg = strings.TrimPrefix(msg, sentinel.Error())
	msg = strings.TrimPrefix(msg, ": ")
	if msg == "" {
		return fmt.Errorf("%w (remote)", sentinel)
	}
	return fmt.Errorf("%w (remote): %s", sentinel, msg)
}

// --- teardown --------------------------------------------------------------

// shutdown tears the connection down exactly once: pending requests fail,
// every imported proxy faults, and the host domain terminates so its
// resources are reclaimed.
func (c *Conn) shutdown(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cause = cause
	pending := c.pending
	c.pending = make(map[uint64]chan wireResult)
	imports := make([]*core.Capability, 0, len(c.imports))
	for _, cap := range c.imports {
		imports = append(imports, cap)
	}
	unhook := c.unhook
	c.unhook = nil
	c.mu.Unlock()

	for _, remove := range unhook {
		remove()
	}

	close(c.done)
	c.nc.Close()

	fault := fmt.Errorf("%w: remote connection lost: %v", core.ErrRevoked, cause)
	for _, cap := range imports {
		cap.RevokeWithReason(fault)
	}
	for _, ch := range pending {
		ch <- wireResult{err: fmt.Errorf("%w: connection lost mid-call: %v", core.ErrRevoked, cause)}
	}
	c.domain.Terminate("remote connection closed")
}
