package remote

import (
	"path/filepath"
	"testing"

	"jkernel/internal/core"
	"jkernel/internal/telemetry"
)

// chainRelay hops a call onward through a proxy imported from the next
// kernel in the chain — the supervisor→worker→worker shape. The handler
// builds its own task, so trace continuity depends on the serving side's
// goroutine-bound context, not on the inbound task leaking through.
type chainRelay struct {
	k    *core.Kernel
	d    *core.Domain
	next *core.Capability
}

func (s *chainRelay) Hop(arg string) (string, error) {
	t := s.k.NewTask(s.d, "hop")
	defer t.Close()
	res, err := s.next.InvokeFrom(t, "Echo", arg)
	if err != nil {
		return "", err
	}
	out, _ := res[0].(string)
	return "hop:" + out, nil
}

// A trace begun on the supervisor must stitch through two wire hops: the
// app's client spans, the middle kernel's server and onward client spans,
// and the far kernel's server spans all share one trace id, with parent
// links resolving across kernels. Covers both the batched async path and
// the sync path.
func TestTracePropagatesAcrossKernelChain(t *testing.T) {
	far := core.MustNew(core.Options{TelemetryNode: "far"})
	mid := core.MustNew(core.Options{TelemetryNode: "mid"})
	app := core.MustNew(core.Options{TelemetryNode: "app"})

	fd, err := far.NewDomain(core.DomainConfig{Name: "far-svc"})
	if err != nil {
		t.Fatal(err)
	}
	md, err := mid.NewDomain(core.DomainConfig{Name: "mid-svc"})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := app.NewDomain(core.DomainConfig{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}

	// far exports echo; mid imports it over one socket.
	echoCap, err := far.CreateNativeCapability(fd, echoSvc{})
	if err != nil {
		t.Fatal(err)
	}
	if err := far.Export("echo", echoCap); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	farLn, err := Listen(far, "unix", filepath.Join(dir, "far.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer farLn.Close()
	midToFar, err := Dial(mid, "unix", filepath.Join(dir, "far.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer midToFar.Close()
	farEcho, err := midToFar.Import("echo")
	if err != nil {
		t.Fatal(err)
	}

	// mid exports the relay; app imports it over a second socket.
	relayCap, err := mid.CreateNativeCapability(md, &chainRelay{k: mid, d: md, next: farEcho})
	if err != nil {
		t.Fatal(err)
	}
	if err := mid.Export("relay", relayCap); err != nil {
		t.Fatal(err)
	}
	midLn, err := Listen(mid, "unix", filepath.Join(dir, "mid.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer midLn.Close()
	appToMid, err := Dial(app, "unix", filepath.Join(dir, "mid.sock"))
	if err != nil {
		t.Fatal(err)
	}
	defer appToMid.Close()
	relay, err := appToMid.Import("relay")
	if err != nil {
		t.Fatal(err)
	}

	task := app.NewDetachedTask(ad, "traced")
	tc := task.BeginTrace()
	defer task.EndTrace()

	// Batched async fan-out: three invokes leave as one frame, each
	// carrying the trace context.
	var futs []*core.Future
	for i := 0; i < 3; i++ {
		futs = append(futs, relay.InvokeAsyncFrom(task, "Hop", "a"))
	}
	appToMid.Flush()
	if err := core.WaitAll(futs...); err != nil {
		t.Fatal(err)
	}
	// And one sync invoke on the same trace.
	res, err := relay.InvokeFrom(task, "Hop", "b")
	if err != nil || res[0] != any("hop:b") {
		t.Fatalf("sync hop: %#v %v", res, err)
	}

	appSpans := app.Tracer().TraceSpans(tc.TraceID)
	midSpans := mid.Tracer().TraceSpans(tc.TraceID)
	farSpans := far.Tracer().TraceSpans(tc.TraceID)

	// 4 calls × (app client, mid server, mid client, far server) plus the
	// kernels' local LRMI spans. Every kernel must have recorded under the
	// one trace id, and the whole chain must be at least 3 spans deep.
	if len(appSpans) == 0 || len(midSpans) == 0 || len(farSpans) == 0 {
		t.Fatalf("trace %s missing a kernel: app=%d mid=%d far=%d",
			telemetry.FormatID(tc.TraceID), len(appSpans), len(midSpans), len(farSpans))
	}
	all := append(append(appSpans, midSpans...), farSpans...)
	if len(all) < 12 {
		t.Fatalf("expected at least 12 spans across the chain, got %d", len(all))
	}

	// Parent links stitch across kernels: every wire server span's parent
	// must be a span id recorded somewhere in the trace (the peer's client
	// span), or the root context itself.
	ids := map[uint64]bool{tc.SpanID: true}
	for _, s := range all {
		ids[s.SpanID] = true
	}
	for _, s := range all {
		if s.Kind == "server" && !ids[s.Parent] {
			t.Fatalf("server span %s has dangling parent %s",
				telemetry.FormatID(s.SpanID), telemetry.FormatID(s.Parent))
		}
	}

	// An untraced call after EndTrace must NOT extend this trace.
	task.EndTrace()
	if _, err := relay.InvokeFrom(task, "Hop", "c"); err != nil {
		t.Fatal(err)
	}
	if n := len(app.Tracer().TraceSpans(tc.TraceID)); n != len(appSpans) {
		t.Fatalf("untraced call extended the trace: %d -> %d spans", len(appSpans), n)
	}
}
