package remote

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jkernel/internal/core"
)

// TestMain lets pool tests re-exec this binary as a worker process.
func TestMain(m *testing.M) {
	MaybeRunWorker(testWorkerSetup)
	os.Exit(m.Run())
}

// --- test services ---------------------------------------------------------

type echoSvc struct{}

func (echoSvc) Echo(s string) (string, error)         { return s, nil }
func (echoSvc) Sum(a, b int64) (int64, error)         { return a + b, nil }
func (echoSvc) Fail(msg string) error                 { return errors.New(msg) }
func (echoSvc) Null() error                           { return nil }
func (echoSvc) Blob(b []byte) (int64, error)          { return int64(len(b)), nil }
func (echoSvc) Pair(s string) (string, string, error) { return s, s + "!", nil }

type counterSvc struct {
	mu sync.Mutex
	n  int64
}

func (c *counterSvc) Add(d int64) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	return c.n, nil
}

// relaySvc invokes a capability handed to it — the callback path: the
// argument capability crosses the wire by reference and comes back as a
// proxy that calls the original kernel.
type relaySvc struct {
	k *core.Kernel
	d *core.Domain
}

func (s *relaySvc) Relay(cap *core.Capability, arg string) (string, error) {
	t := s.k.NewTask(s.d, "relay")
	defer t.Close()
	res, err := cap.InvokeFrom(t, "Echo", arg)
	if err != nil {
		return "", err
	}
	out, _ := res[0].(string)
	return "relayed:" + out, nil
}

// makerSvc returns a fresh capability from a call — the result path.
type makerSvc struct {
	k *core.Kernel
	d *core.Domain
}

func (s *makerSvc) MakeCounter() (*core.Capability, error) {
	return s.k.CreateNativeCapability(s.d, &counterSvc{})
}

// testWorkerSetup is the self-exec worker body for the pool tests.
func testWorkerSetup(k *core.Kernel) error {
	d, err := k.NewDomain(core.DomainConfig{Name: "svc"})
	if err != nil {
		return err
	}
	echo, err := k.CreateNativeCapability(d, echoSvc{})
	if err != nil {
		return err
	}
	if err := k.Export("echo", echo); err != nil {
		return err
	}
	counter, err := k.CreateNativeCapability(d, &counterSvc{})
	if err != nil {
		return err
	}
	return k.Export("counter", counter)
}

// --- in-process pair fixture ----------------------------------------------

// pair is two kernels in one process connected over a real unix socket:
// the full wire path without process-spawn overhead.
type pair struct {
	server, client *core.Kernel
	serverDom      *core.Domain
	clientDom      *core.Domain
	ln             *Listener
	conn           *Conn
	task           *core.Task
}

func newPair(t testing.TB) *pair {
	t.Helper()
	server := core.MustNew(core.Options{})
	client := core.MustNew(core.Options{})
	sd, err := server.NewDomain(core.DomainConfig{Name: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	cd, err := client.NewDomain(core.DomainConfig{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(t.TempDir(), "pair.sock")
	ln, err := Listen(server, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := Dial(client, "unix", sock)
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	task := client.NewDetachedTask(cd, "test")
	p := &pair{server: server, client: client, serverDom: sd, clientDom: cd, ln: ln, conn: conn, task: task}
	t.Cleanup(func() {
		p.conn.Close()
		p.ln.Close()
	})
	return p
}

func (p *pair) export(t testing.TB, name string, svc any) *core.Capability {
	t.Helper()
	cap, err := p.server.CreateNativeCapability(p.serverDom, svc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.server.Export(name, cap); err != nil {
		t.Fatal(err)
	}
	return cap
}

// --- tests -----------------------------------------------------------------

func TestRemoteInvoke(t *testing.T) {
	p := newPair(t)
	p.export(t, "echo", echoSvc{})
	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	res, err := proxy.InvokeFrom(p.task, "Echo", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != any("hello") {
		t.Fatalf("bad result: %#v", res)
	}
	res, err = proxy.InvokeFrom(p.task, "Sum", int64(2), int64(40))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != any(int64(42)) {
		t.Fatalf("Sum: %#v", res)
	}
	res, err = proxy.InvokeFrom(p.task, "Pair", "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0] != any("x") || res[1] != any("x!") {
		t.Fatalf("Pair: %#v", res)
	}
}

func TestRemoteMethodsManifest(t *testing.T) {
	p := newPair(t)
	p.export(t, "echo", echoSvc{})
	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	ms := proxy.Methods()
	want := map[string]bool{"Echo": true, "Sum": true, "Fail": true, "Null": true, "Blob": true, "Pair": true}
	if len(ms) != len(want) {
		t.Fatalf("methods: %v", ms)
	}
	for _, m := range ms {
		if !want[m] {
			t.Fatalf("unexpected method %q", m)
		}
	}
}

func TestRemoteErrors(t *testing.T) {
	p := newPair(t)
	p.export(t, "echo", echoSvc{})
	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	// Callee failure crosses as a copied RemoteError.
	_, err = proxy.InvokeFrom(p.task, "Fail", "boom")
	var re *core.RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" {
		t.Fatalf("Fail: %v", err)
	}
	// Unknown method maps onto ErrNoSuchMethod.
	_, err = proxy.InvokeFrom(p.task, "Nope")
	if !errors.Is(err, core.ErrNoSuchMethod) {
		t.Fatalf("Nope: %v", err)
	}
	// Unknown export name fails the import.
	if _, err := p.conn.Import("missing"); err == nil {
		t.Fatal("import of unexported name succeeded")
	}
}

func TestRemoteRevocation(t *testing.T) {
	p := newPair(t)
	cap := p.export(t, "echo", echoSvc{})
	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.InvokeFrom(p.task, "Null"); err != nil {
		t.Fatal(err)
	}
	cap.Revoke()
	// The next invoke fails with the revocation sentinel, whether it races
	// the pushed revoke or not.
	if _, err := proxy.InvokeFrom(p.task, "Null"); !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("invoke after revoke: %v", err)
	}
	// The push also flips the proxy's own revoked state, no wire needed.
	deadline := time.Now().Add(2 * time.Second)
	for !proxy.Revoked() {
		if time.Now().After(deadline) {
			t.Fatal("pushed revocation never reached the proxy")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRemoteTermination(t *testing.T) {
	p := newPair(t)
	p.export(t, "echo", echoSvc{})
	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	p.serverDom.Terminate("test")
	deadline := time.Now().Add(2 * time.Second)
	for !proxy.Revoked() {
		if time.Now().After(deadline) {
			t.Fatal("termination never reached the proxy")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := proxy.InvokeFrom(p.task, "Null"); !errors.Is(err, core.ErrDomainTerminated) {
		t.Fatalf("invoke after termination: %v", err)
	}
}

func TestRemoteCapabilityArgumentCallback(t *testing.T) {
	p := newPair(t)
	p.export(t, "relay", &relaySvc{k: p.server, d: p.serverDom})
	proxy, err := p.conn.Import("relay")
	if err != nil {
		t.Fatal(err)
	}
	// A client-side capability crosses as an argument; the server calls it
	// back through a proxy of its own.
	local, err := p.client.CreateNativeCapability(p.clientDom, echoSvc{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := proxy.InvokeFrom(p.task, "Relay", local, "ping")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != any("relayed:ping") {
		t.Fatalf("callback: %#v", res)
	}
}

func TestRemoteCapabilityResult(t *testing.T) {
	p := newPair(t)
	p.export(t, "maker", &makerSvc{k: p.server, d: p.serverDom})
	proxy, err := p.conn.Import("maker")
	if err != nil {
		t.Fatal(err)
	}
	res, err := proxy.InvokeFrom(p.task, "MakeCounter")
	if err != nil {
		t.Fatal(err)
	}
	counter, _ := res[0].(*core.Capability)
	if counter == nil {
		t.Fatalf("no capability result: %#v", res)
	}
	for want := int64(1); want <= 3; want++ {
		out, err := counter.InvokeFrom(p.task, "Add", int64(1))
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != any(want) {
			t.Fatalf("Add -> %#v, want %d", out, want)
		}
	}
}

// A capability that came from the peer goes home as the peer's own export
// id, not as a proxy-to-a-proxy.
func TestRemoteCapabilityReturnsHome(t *testing.T) {
	p := newPair(t)
	p.export(t, "echo", echoSvc{})
	p.export(t, "relay", &relaySvc{k: p.server, d: p.serverDom})
	echoProxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	relayProxy, err := p.conn.Import("relay")
	if err != nil {
		t.Fatal(err)
	}
	// Pass the server's own echo capability (held as our proxy) back to the
	// server: Relay must invoke it locally there and succeed.
	res, err := relayProxy.InvokeFrom(p.task, "Relay", echoProxy, "home")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != any("relayed:home") {
		t.Fatalf("returning capability: %#v", res)
	}
}

func TestRemoteBindStubs(t *testing.T) {
	p := newPair(t)
	p.export(t, "echo", echoSvc{})
	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	// Bind's typed stubs work through a proxy exactly as through a local
	// capability — the caller truly cannot tell.
	task := p.client.NewTask(p.clientDom, "bind-test")
	defer task.Close()
	var svc struct {
		Echo func(string) (string, error)
		Sum  func(int64, int64) (int64, error)
	}
	if err := proxy.Bind(&svc); err != nil {
		t.Fatal(err)
	}
	out, err := svc.Echo("typed")
	if err != nil || out != "typed" {
		t.Fatalf("Echo stub: %q %v", out, err)
	}
	n, err := svc.Sum(20, 22)
	if err != nil || n != 42 {
		t.Fatalf("Sum stub: %d %v", n, err)
	}
}

func TestRemoteConnectionLossFaultsProxies(t *testing.T) {
	p := newPair(t)
	p.export(t, "echo", echoSvc{})
	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a worker crash: the server side goes away wholesale.
	p.ln.Close()
	deadline := time.Now().Add(2 * time.Second)
	for !proxy.Revoked() {
		if time.Now().After(deadline) {
			t.Fatal("connection loss never faulted the proxy")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = proxy.InvokeFrom(p.task, "Null")
	if !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("invoke after connection loss: %v", err)
	}
}

func TestRemoteConcurrentInvokes(t *testing.T) {
	p := newPair(t)
	p.export(t, "counter", &counterSvc{})
	proxy, err := p.conn.Import("counter")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const per = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := p.client.NewDetachedTask(p.clientDom, "conc")
			for j := 0; j < per; j++ {
				if _, err := proxy.InvokeFrom(task, "Add", int64(1)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := proxy.InvokeFrom(p.task, "Add", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != any(int64(workers*per)) {
		t.Fatalf("lost updates: %#v", res)
	}
}

func TestRemoteLargeArgument(t *testing.T) {
	p := newPair(t)
	p.export(t, "echo", echoSvc{})
	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 1<<20)
	for i := range blob {
		blob[i] = byte(i)
	}
	res, err := proxy.InvokeFrom(p.task, "Blob", blob)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != any(int64(len(blob))) {
		t.Fatalf("Blob: %#v", res)
	}
}

// --- pool (real worker processes) ------------------------------------------

func TestPoolWorkersAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	sup := core.MustNew(core.Options{})
	supDom, err := sup.NewDomain(core.DomainConfig{Name: "sup"})
	if err != nil {
		t.Fatal(err)
	}
	task := sup.NewDetachedTask(supDom, "pool-test")

	errFile, _ := os.CreateTemp("", "worker-stderr-")
	t.Cleanup(func() {
		errFile.Seek(0, 0)
		b := make([]byte, 4096)
		n, _ := errFile.Read(b)
		if n > 0 {
			t.Logf("worker stderr:\n%s", b[:n])
		}
		errFile.Close()
		os.Remove(errFile.Name())
	})
	pool, err := StartPool(PoolOptions{Workers: 2, Log: t.Logf, Stderr: errFile})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Both workers serve the exported counter independently (sharding).
	for i := 0; i < pool.Size(); i++ {
		conn, err := pool.Worker(i).Dial(sup, 10*time.Second)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		counter, err := conn.Import("counter")
		if err != nil {
			t.Fatalf("worker %d import: %v", i, err)
		}
		res, err := counter.InvokeFrom(task, "Add", int64(10*(i+1)))
		if err != nil {
			t.Fatalf("worker %d invoke: %v", i, err)
		}
		if res[0] != any(int64(10*(i+1))) {
			t.Fatalf("worker %d state not isolated: %#v", i, res)
		}
		conn.Close()
	}

	// Crash drill: kill worker 0; its proxies fault, the supervisor keeps
	// running, and the pool restarts the process.
	w := pool.Worker(0)
	conn, err := w.Dial(sup, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	echo, err := conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := echo.InvokeFrom(task, "Null"); err != nil {
		t.Fatal(err)
	}
	if err := w.Kill(); err != nil {
		t.Fatal(err)
	}
	// The in-flight connection faults as a capability error...
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err = echo.InvokeFrom(task, "Null")
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("proxy never faulted after worker kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("worker death fault: %v", err)
	}
	// ...and the slot comes back: a fresh dial reaches the restarted
	// process with fresh state.
	conn2, err := w.Dial(sup, 15*time.Second)
	if err != nil {
		t.Fatalf("restarted worker not reachable: %v", err)
	}
	defer conn2.Close()
	counter, err := conn2.Import("counter")
	if err != nil {
		t.Fatal(err)
	}
	res, err := counter.InvokeFrom(task, "Add", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != any(int64(1)) {
		t.Fatalf("restarted worker kept state: %#v", res)
	}
	if w.Restarts() < 1 {
		t.Fatalf("restart not recorded: %d", w.Restarts())
	}
}

func TestRemoteTCP(t *testing.T) {
	server := core.MustNew(core.Options{})
	client := core.MustNew(core.Options{})
	sd, err := server.NewDomain(core.DomainConfig{Name: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	cd, err := client.NewDomain(core.DomainConfig{Name: "app"})
	if err != nil {
		t.Fatal(err)
	}
	cap, err := server.CreateNativeCapability(sd, echoSvc{})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Export("echo", cap); err != nil {
		t.Fatal(err)
	}
	ln, err := Listen(server, "tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := Dial(client, "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	proxy, err := conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	task := client.NewDetachedTask(cd, "tcp-test")
	res, err := proxy.InvokeFrom(task, "Echo", "over tcp")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != any("over tcp") {
		t.Fatalf("tcp: %#v", res)
	}
}

// Accounting: remote calls meter wire bytes against the caller's account.
func TestRemoteAccounting(t *testing.T) {
	p := newPair(t)
	p.export(t, "echo", echoSvc{})
	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.InvokeFrom(p.task, "Blob", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	stats := p.clientDom.Stats()
	if stats.CopyBytes < 4096 || stats.CrossCalls < 1 {
		t.Fatalf("wire bytes not metered: %+v", stats)
	}
}
