package remote

import (
	"fmt"
	"net"
	"os"
	"strings"

	"jkernel/internal/core"
)

// EnvWorkerAddr steers a self-exec worker child: when set (to
// "unix:/path/to.sock" or "tcp:host:port"), MaybeRunWorker turns the
// process into a worker kernel listening there.
const EnvWorkerAddr = "JK_WORKER_ADDR"

// EnvWorkerDebug opts a self-exec worker into a debug HTTP listener: set
// it to a TCP addr ("127.0.0.1:0" for an ephemeral port) and the worker
// serves /debug/jk and /debug/pprof/ there, announcing the bound address
// on stderr.
const EnvWorkerDebug = "JK_WORKER_DEBUG"

// WorkerConfig describes one worker kernel process.
type WorkerConfig struct {
	// Network and Addr are the listen endpoint ("unix"/"tcp").
	Network, Addr string
	// Options configures the worker's kernel.
	Options core.Options
	// Setup populates the fresh kernel: create domains, create
	// capabilities, and Kernel.Export the ones the supervisor may import.
	Setup func(k *core.Kernel) error
	// Ready, when set, is called once the listener is up (diagnostics).
	Ready func(addr net.Addr)
	// DebugAddr, when set, opts the worker into a TCP debug listener
	// serving /debug/jk (telemetry snapshot + traces) and /debug/pprof/.
	DebugAddr string
	// DebugReady, when set, receives the debug listener's bound address.
	DebugReady func(addr net.Addr)
}

// RunWorker boots a worker kernel and serves it until the process dies or
// the listener is closed: the body of cmd/jkworker and of every self-exec
// worker child.
func RunWorker(cfg WorkerConfig) error {
	if cfg.Setup == nil {
		return fmt.Errorf("remote: worker needs a Setup function")
	}
	k, err := core.New(cfg.Options)
	if err != nil {
		return fmt.Errorf("remote: worker kernel: %w", err)
	}
	if err := cfg.Setup(k); err != nil {
		return fmt.Errorf("remote: worker setup: %w", err)
	}
	if cfg.DebugAddr != "" {
		daddr, err := StartDebugServer(k, cfg.DebugAddr)
		if err != nil {
			return fmt.Errorf("remote: worker debug listener: %w", err)
		}
		if cfg.DebugReady != nil {
			cfg.DebugReady(daddr)
		}
	}
	if cfg.Network == "unix" {
		// A crashed predecessor may have left its socket behind.
		os.Remove(cfg.Addr)
	}
	ln, err := net.Listen(cfg.Network, cfg.Addr)
	if err != nil {
		return fmt.Errorf("remote: worker listen: %w", err)
	}
	// The worker is a dialable handoff origin for the capabilities it
	// exports: peers that re-export them tell third parties this address.
	Advertise(k, cfg.Network, ln.Addr().String())
	if cfg.Ready != nil {
		cfg.Ready(ln.Addr())
	}
	return NewListener(k, ln).Serve()
}

// MaybeRunWorker turns the current process into a worker when the worker
// environment variable is set, then exits; otherwise it returns
// immediately. Call it first thing in main (or TestMain) of any binary
// that spawns a self-exec worker pool.
func MaybeRunWorker(setup func(k *core.Kernel) error) {
	spec := os.Getenv(EnvWorkerAddr)
	if spec == "" {
		return
	}
	network, addr, ok := strings.Cut(spec, ":")
	if !ok || (network != "unix" && network != "tcp") {
		fmt.Fprintf(os.Stderr, "jkworker: bad %s=%q (want unix:PATH or tcp:ADDR)\n", EnvWorkerAddr, spec)
		os.Exit(2)
	}
	cfg := WorkerConfig{Network: network, Addr: addr, Setup: setup}
	// Name the worker's telemetry node by pid so spans stitched across the
	// cluster say which process recorded them.
	cfg.Options.TelemetryNode = fmt.Sprintf("worker-%d", os.Getpid())
	if dbg := os.Getenv(EnvWorkerDebug); dbg != "" {
		cfg.DebugAddr = dbg
		cfg.DebugReady = func(a net.Addr) {
			fmt.Fprintf(os.Stderr, "jkworker: debug listener on http://%s/debug/jk\n", a)
		}
	}
	if err := RunWorker(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "jkworker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}
