package remote

import "sync"

// Wire-level batching: asynchronous invokes enqueue here instead of
// writing their own frame, and a per-connection flusher goroutine drains
// the queue into msgBatchInvoke frames. Flushing is "smart batching"
// rather than timer-driven: whenever the flusher is idle it sends
// whatever has queued immediately, so a lone call on an idle connection
// pays no added latency, while calls arriving during a frame write pile
// up and leave as one frame. The flush policy is therefore:
//
//   - occupancy: at most maxBatchCalls calls per frame;
//   - size: at most maxBatchBytes of encoded calls per frame;
//   - explicit: Conn.Flush drains the queue on the calling goroutine
//     before returning.

const (
	// maxBatchCalls bounds calls per multi-invoke frame.
	maxBatchCalls = 128
	// maxBatchBytes bounds the encoded size of one multi-invoke frame
	// (well under maxFrame; a single oversized call still travels alone
	// and is rejected by the per-call frame check).
	maxBatchBytes = 1 << 20
	// maxReleaseEntries bounds entries per msgRelease frame (each entry is
	// three uvarints, so even the cap is a small frame).
	maxReleaseEntries = 4096
)

// batchedCall is one encoded, pending invocation awaiting a frame.
type batchedCall struct {
	reqID    uint64
	exportID uint64
	method   string
	// traceID/parentSpan are the call's wire trace block (zero traceID
	// encodes as the one-byte untraced flags).
	traceID    uint64
	parentSpan uint64
	args       []byte
	// argsBuf is the pooled buffer args lives in (nil for zero-arg calls);
	// sendBatch releases it once the frame is written. Calls still queued
	// at shutdown keep theirs — the GC reclaims them, the pool just misses.
	argsBuf *frameBuf
}

// wireSize is the call's encoded footprint (over-approximated headers,
// including the worst-case trace block).
func (b batchedCall) wireSize() int {
	return len(b.args) + len(b.method) + 64
}

// batcher coalesces pending asynchronous invokes — and capability
// releases — for one connection.
type batcher struct {
	c *Conn

	mu       sync.Mutex
	q        []batchedCall
	rq       []releaseEntry // pending import releases, coalesced per frame
	inflight int            // batches taken but not yet written
	idle     *sync.Cond     // signalled when inflight drops to zero

	// qSpare/rqSpare recycle the slices take/takeReleases pop: the sender
	// returns each batch's backing array after the write, so steady-state
	// batching ping-pongs between two arrays instead of allocating one per
	// flush.
	qSpare  []batchedCall
	rqSpare []releaseEntry

	// kick signals the flusher that the queue is non-empty (capacity 1:
	// a pending kick covers any number of enqueues).
	kick chan struct{}
}

func newBatcher(c *Conn) *batcher {
	b := &batcher{c: c, kick: make(chan struct{}, 1)}
	b.idle = sync.NewCond(&b.mu)
	return b
}

// enqueue adds one call and nudges the flusher.
func (b *batcher) enqueue(call batchedCall) {
	b.mu.Lock()
	b.q = append(b.q, call)
	b.mu.Unlock()
	b.nudge()
}

// enqueueRelease queues one import release. Releases churned in a burst (a
// table sweep, a fan of proxies dying together) leave as one msgRelease
// frame, exactly as batched invokes do.
func (b *batcher) enqueueRelease(e releaseEntry) {
	b.mu.Lock()
	b.rq = append(b.rq, e)
	b.mu.Unlock()
	b.nudge()
}

func (b *batcher) nudge() {
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// run is the flusher goroutine: drain whenever kicked, exit with the
// connection. Calls still queued at shutdown fail through their pending
// completions (Conn.shutdown), not here.
func (b *batcher) run() {
	for {
		select {
		case <-b.kick:
		case <-b.c.done:
			return
		}
		b.drain()
	}
}

// drain sends frames until both queues are empty. Safe to call
// concurrently (Conn.Flush races the flusher): take/takeReleases are
// atomic, so each queued call and release is sent exactly once. Invokes
// drain before releases, so a call enqueued before its proxy was released
// reaches the exporter while the export entry is still live.
func (b *batcher) drain() {
	for {
		if calls := b.take(); len(calls) != 0 {
			b.c.sendBatch(calls)
			b.recycleCalls(calls)
			b.sent()
			continue
		}
		rels := b.takeReleases()
		if len(rels) == 0 {
			return
		}
		b.c.sendReleases(rels)
		b.recycleReleases(rels)
		b.sent()
	}
}

// flush is drain plus the guarantee Conn.Flush advertises: it also waits
// out batches the background flusher popped but has not finished writing,
// so "flush returned" means "every call enqueued before it is on the
// wire (or has failed its pendings)".
func (b *batcher) flush() {
	b.drain()
	b.mu.Lock()
	for b.inflight > 0 || len(b.q) > 0 || len(b.rq) > 0 {
		if len(b.q) > 0 || len(b.rq) > 0 {
			// More work queued while we waited; send it ourselves.
			b.mu.Unlock()
			b.drain()
			b.mu.Lock()
			continue
		}
		b.idle.Wait()
	}
	b.mu.Unlock()
}

// sent retires one in-flight batch.
func (b *batcher) sent() {
	b.mu.Lock()
	b.inflight--
	if b.inflight == 0 {
		b.idle.Broadcast()
	}
	b.mu.Unlock()
}

// take pops up to one frame's worth of queued calls (occupancy and size
// bound), marking them in flight until sent. A single call exceeding
// maxBatchBytes still travels, alone. The popped slice reuses the spare
// backing array (recycleCalls returns it after the send), so steady-state
// batching allocates nothing here.
func (b *batcher) take() []batchedCall {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.q) == 0 {
		return nil
	}
	b.inflight++
	n, size := 0, 0
	for n < len(b.q) && n < maxBatchCalls {
		s := b.q[n].wireSize()
		if n > 0 && size+s > maxBatchBytes {
			break
		}
		size += s
		n++
	}
	out := append(b.qSpare[:0], b.q[:n]...)
	b.qSpare = nil
	rest := copy(b.q, b.q[n:])
	clear(b.q[rest:]) // drop arg references so sent calls are collectable
	b.q = b.q[:rest]
	return out
}

// recycleCalls returns a sent batch's backing array to the spare slot
// (cleared, so it pins no argument buffers). Concurrent drains race for
// the slot; the loser's array goes to the GC.
func (b *batcher) recycleCalls(calls []batchedCall) {
	clear(calls)
	b.mu.Lock()
	if b.qSpare == nil {
		b.qSpare = calls[:0]
	}
	b.mu.Unlock()
}

// recycleReleases is recycleCalls for release batches.
func (b *batcher) recycleReleases(rels []releaseEntry) {
	clear(rels)
	b.mu.Lock()
	if b.rqSpare == nil {
		b.rqSpare = rels[:0]
	}
	b.mu.Unlock()
}

// releaseBacklog reports the queued-release count (telemetry gauge).
func (b *batcher) releaseBacklog() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.rq)
}

// takeReleases pops up to one frame's worth of queued releases, marking
// them in flight until sent.
func (b *batcher) takeReleases() []releaseEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.rq) == 0 {
		return nil
	}
	b.inflight++
	n := len(b.rq)
	if n > maxReleaseEntries {
		n = maxReleaseEntries
	}
	out := append(b.rqSpare[:0], b.rq[:n]...)
	b.rqSpare = nil
	rest := copy(b.rq, b.rq[n:])
	b.rq = b.rq[:rest]
	return out
}
