// Package remote extends the J-Kernel's capability discipline across
// process boundaries: a supervisor kernel and worker kernels, each a full
// single-process J-Kernel, exchange capabilities over a length-prefixed
// wire protocol. Imported capabilities materialize as proxy gates that
// plug into the ordinary core invoke path, so callers cannot tell a local
// capability from a remote one — the paper's LRMI semantics (copy
// non-capability arguments, pass capabilities by reference, propagate
// revocation and termination as exceptions) hold across the wire.
//
// The protocol is symmetric: either end may export, import, and invoke.
// Each connection keeps an export table (local capabilities the peer may
// invoke, keyed by export id) and an import table (peer capabilities this
// side holds proxies for). Arguments cross as an intermediate byte array
// produced by internal/seri, with capability references encoded through
// seri's External hook. Revocation — explicit, or implied by domain
// termination — is pushed eagerly so proxies fail fast, and a lost
// connection faults every proxy imported over it ("worker died" surfaces
// as a capability fault, never as a supervisor crash).
//
// The //jk:faultpath mark below puts this package's handle*/serve*/reply*
// frame handlers in scope of jkvet's faultpath pass: an error a handler
// drops is a connection silently running on a broken socket.
//
//jk:faultpath
package remote

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Message types.
const (
	msgInvoke      byte = 1 // reqID, exportID, method, args stream
	msgReply       byte = 2 // reqID, status, results stream | error
	msgRevoke      byte = 3 // exportID, reason
	msgLookup      byte = 4 // reqID, name
	msgLookupReply byte = 5 // reqID, status, handle, methods | error
	msgPing        byte = 6 // reqID: liveness/readiness probe
	msgPong        byte = 7 // reqID
	// Batched invokes (the paper's Table 4 lesson applied to the wire):
	// many pending small calls coalesce into one multi-invoke frame, and
	// the reply carries per-call status so one faulting call cannot
	// poison its batch.
	msgBatchInvoke byte = 8 // count, then per call: reqID, exportID, method, argLen, args
	msgBatchReply  byte = 9 // count, then per call: reqID, status, bodyLen+body | error
	// Capability lifecycle: imports release their wire references when the
	// local proxy dies (explicit ReleaseProxy, local revocation, or a
	// pushed revocation), and the export side drops its table entry when
	// the reference count reaches zero. Releases are batched — one frame
	// carries any number of (exportID, count, generation) entries — and
	// the generation counter makes a stale or duplicated release for a
	// re-imported id harmless (see Conn.handleRelease).
	msgRelease byte = 10 // count, then per entry: exportID, count, gen
	// Lazy method manifests: capabilities imported inline (as arguments or
	// results) carry no method list; the first Methods() call fetches it
	// with one round trip and caches it on the proxy.
	msgManifest      byte = 11 // reqID, exportID
	msgManifestReply byte = 12 // reqID, status, methods | error
	// Three-party handoff (path shortening): when a proxy imported from
	// kernel A is re-exported to kernel C, the middleman B mints a
	// redeemable ticket instead of settling for a relay. msgHandoff carries
	// the ticket registration to A (kind=register) and the offer to C
	// (kind=offer: A's address, A's export id, and a one-time nonce); C
	// dials A — or reuses a pooled connection — and trades the nonce for a
	// first-class import with msgRedeem/msgRedeemReply. Peers that predate
	// these frames are detected through the ping feature mask, and the
	// relay path stays as the transparent fallback.
	msgHandoff     byte = 13 // kind, then register: nonce, exportID | offer: relayID, exportID, nonce, network, addr
	msgRedeem      byte = 14 // reqID, nonce, exportID
	msgRedeemReply byte = 15 // reqID, status, exportID, methods | error
)

// msgHandoff kinds.
const (
	handoffRegister byte = 1 // middleman -> origin: register a ticket
	handoffOffer    byte = 2 // middleman -> receiver: redeem it at the origin
)

// Feature bits exchanged in the ping/pong tail. Pre-handoff builds parse
// only the request id and ignore the tail, which is what makes the
// exchange backward compatible: an absent tail means an old peer, and no
// handoff frame is ever sent to one.
const featHandoff uint64 = 1 << 0

// localFeatures is the feature mask this build announces.
const localFeatures = featHandoff

// Reply statuses.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// Wire error kinds, mapped back onto kernel sentinels by the caller.
const (
	errKindRevoked    byte = 1
	errKindTerminated byte = 2
	errKindNoMethod   byte = 3
	errKindNotFound   byte = 4 // lookup of an unexported name
	errKindRemote     byte = 5 // copied callee failure (class + message)
	errKindProtocol   byte = 6
)

// Revocation reasons pushed with msgRevoke.
const (
	revokeReasonRevoked    byte = 0
	revokeReasonTerminated byte = 1
)

// maxFrame bounds one protocol frame (header-declared length).
const maxFrame = 1 << 24

// Capability handles: a handle names a gate relative to the *sender*.
// kind 0 means "owned by me, import it"; kind 1 means "owned by you,
// here is your own export id back". Packed as id<<1|kind so a handle fits
// seri's single-uint64 External contract.
const (
	handleKindTheirs = 0 // receiver should import (sender-owned)
	handleKindYours  = 1 // receiver's own export returning home
)

func packHandle(id uint64, kind uint64) uint64 { return id<<1 | kind }
func unpackHandle(h uint64) (id uint64, kind uint64) {
	return h >> 1, h & 1
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("remote: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame into a fresh allocation
// (handshake paths and tests; the connection read loop uses readFrameInto).
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("remote: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readFrameInto reads one length-prefixed frame into a pooled frame
// buffer. The caller (the read loop) owns the returned reference and
// releases it when dispatch is done with the frame.
func readFrameInto(r io.Reader) (*frameBuf, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("remote: frame of %d bytes exceeds limit", n)
	}
	fb := getFrame(int(n))
	fb.b = fb.b[:n]
	if _, err := io.ReadFull(r, fb.b); err != nil {
		fb.release()
		return nil, err
	}
	return fb, nil
}

// wbuf builds a frame payload.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)        { w.b = append(w.b, v) }
func (w *wbuf) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *wbuf) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) raw(p []byte) { w.b = append(w.b, p...) }

// rbuf walks a frame payload.
type rbuf struct {
	b   []byte
	pos int
}

func (r *rbuf) fail(what string) error {
	return fmt.Errorf("remote: malformed frame: %s at offset %d", what, r.pos)
}

func (r *rbuf) u8() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, r.fail("truncated byte")
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

func (r *rbuf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, r.fail("bad uvarint")
	}
	r.pos += n
	return v, nil
}

func (r *rbuf) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.pos) {
		return "", r.fail("string overruns frame")
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// count reads a collection count and rejects values that cannot fit in the
// remaining frame bytes (each element needs at least elemMin bytes), so a
// malformed frame cannot trigger a huge up-front allocation.
func (r *rbuf) count(elemMin int) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(len(r.b)-r.pos)/uint64(elemMin) {
		return 0, r.fail("collection overruns frame")
	}
	return int(n), nil
}

// bytes reads a length-prefixed byte payload (aliasing the frame buffer).
func (r *rbuf) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, r.fail("bytes overrun frame")
	}
	b := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

// rest returns the unread tail of the frame (the seri stream).
func (r *rbuf) rest() []byte { return r.b[r.pos:] }

// --- typed frames -----------------------------------------------------------
//
// Every inbound frame decodes through one of the parse functions below
// before any side effect happens; conn.dispatch acts on the typed result.
// The split keeps the full decode surface reachable from pure functions,
// which is what FuzzDecodeFrame exercises: malformed input must return an
// error (faulting the connection), never panic.

// Trace block flags. Every invoke (single or batched call entry) carries
// a one-byte flags field after the method name; traceFlagContext adds the
// caller's trace id and parent span id, so a traced call chain stitches
// across kernels. Unknown flag bits are a protocol error — the fuzz suite
// holds decode to "error, never panic" here like everywhere else.
const traceFlagContext byte = 1

// invokeFrame is one decoded invocation request (single or batched).
type invokeFrame struct {
	reqID    uint64
	exportID uint64
	method   string
	// traceID/parentSpan carry the caller's trace context when the frame's
	// trace flags include traceFlagContext (traceID is nonzero then).
	traceID    uint64
	parentSpan uint64
	args       []byte // seri stream, aliases the frame buffer
}

// replyFrame is one decoded invocation reply (single or batched). It
// doubles as the outbound reply representation: serveInvoke encodes
// result streams into a pooled buffer recorded in bodyBuf (nil on parsed
// inbound frames), which the reply sender releases after the write.
type replyFrame struct {
	reqID   uint64
	status  byte
	body    []byte // statusOK: seri stream of results
	kind    byte   // statusErr: wire error kind
	class   string
	msg     string
	bodyBuf *frameBuf // outbound only: pooled owner of body
}

// revokeFrame is a pushed revocation.
type revokeFrame struct {
	exportID uint64
	reason   byte
}

// lookupFrame is an export-name lookup request.
type lookupFrame struct {
	reqID uint64
	name  string
}

// lookupReplyFrame answers a lookup: a capability handle plus its method
// manifest, or a wire error.
type lookupReplyFrame struct {
	reqID   uint64
	status  byte
	handle  uint64
	methods []string
	kind    byte
	class   string
	msg     string
}

// pingFrame is a liveness probe or its answer. New builds append a
// feature mask and their advertised listen address; an absent tail marks
// a pre-handoff peer (hasFeatures false) that must never see the new
// frame types.
type pingFrame struct {
	reqID       uint64
	features    uint64
	hasFeatures bool
	network     string // advertised listen endpoint ("" when not listening)
	addr        string
}

// handoffFrame is one msgHandoff: a ticket registration at the origin
// (kind=register) or a redeem offer at the receiver (kind=offer).
type handoffFrame struct {
	kind     byte
	nonce    uint64
	exportID uint64 // the origin's export id the ticket names
	relayID  uint64 // offer only: the middleman's relay export id on this conn
	network  string // offer only: the origin kernel's dialable endpoint
	addr     string
}

// redeemFrame trades a ticket nonce for a first-class import.
type redeemFrame struct {
	reqID    uint64
	nonce    uint64
	exportID uint64 // cross-check against the registered ticket
}

// redeemReplyFrame answers a redeem: a fresh export id plus the method
// manifest (so shortened imports never lazy-fetch through the middleman),
// or a wire error (unknown/expired ticket, revoked capability).
type redeemReplyFrame struct {
	reqID    uint64
	status   byte
	exportID uint64
	methods  []string
	kind     byte
	class    string
	msg      string
}

// releaseEntry is one import's released wire references: the peer's export
// id, how many handles the importer received for it, and the import-entry
// generation those receipts belong to.
type releaseEntry struct {
	exportID uint64
	count    uint64
	gen      uint64
}

// manifestFrame asks for an export's method list.
type manifestFrame struct {
	reqID    uint64
	exportID uint64
}

// manifestReplyFrame answers a manifest fetch: the method list, or a wire
// error (unknown or revoked export).
type manifestReplyFrame struct {
	reqID   uint64
	status  byte
	methods []string
	kind    byte
	class   string
	msg     string
}

// parseTrace decodes the trace block following the method name: one flags
// byte, then — with traceFlagContext — the trace id and parent span id.
func parseTrace(r *rbuf, f *invokeFrame) error {
	flags, err := r.u8()
	if err != nil {
		return err
	}
	switch flags {
	case 0:
		return nil
	case traceFlagContext:
		if f.traceID, err = r.uvarint(); err != nil {
			return err
		}
		if f.traceID == 0 {
			return r.fail("zero trace id")
		}
		f.parentSpan, err = r.uvarint()
		return err
	default:
		return r.fail("unknown trace flags")
	}
}

// appendTrace encodes the trace block (the common untraced case is one
// zero byte).
func appendTrace(w *wbuf, traceID, parentSpan uint64) {
	if traceID == 0 {
		w.u8(0)
		return
	}
	w.u8(traceFlagContext)
	w.uvarint(traceID)
	w.uvarint(parentSpan)
}

func parseInvoke(r *rbuf) (invokeFrame, error) {
	var f invokeFrame
	var err error
	if f.reqID, err = r.uvarint(); err != nil {
		return f, err
	}
	if f.exportID, err = r.uvarint(); err != nil {
		return f, err
	}
	if f.method, err = r.str(); err != nil {
		return f, err
	}
	if err = parseTrace(r, &f); err != nil {
		return f, err
	}
	f.args = r.rest()
	return f, nil
}

// parseBatchInvoke decodes a multi-invoke frame. Per-call argument bytes
// are length-prefixed (unlike the single-invoke frame, whose args run to
// the end of the frame).
func parseBatchInvoke(r *rbuf) ([]invokeFrame, error) {
	n, err := r.count(5) // reqID + exportID + method len + trace flags + arg len, 1 byte each minimum
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, r.fail("empty batch")
	}
	calls := make([]invokeFrame, 0, n)
	for i := 0; i < n; i++ {
		var f invokeFrame
		if f.reqID, err = r.uvarint(); err != nil {
			return nil, err
		}
		if f.exportID, err = r.uvarint(); err != nil {
			return nil, err
		}
		if f.method, err = r.str(); err != nil {
			return nil, err
		}
		if err = parseTrace(r, &f); err != nil {
			return nil, err
		}
		if f.args, err = r.bytes(); err != nil {
			return nil, err
		}
		calls = append(calls, f)
	}
	if len(r.rest()) != 0 {
		return nil, r.fail("trailing bytes after batch")
	}
	return calls, nil
}

// parseReplyError decodes the statusErr tail shared by reply flavors.
func parseReplyError(r *rbuf, f *replyFrame) error {
	var err error
	if f.kind, err = r.u8(); err != nil {
		return err
	}
	if f.class, err = r.str(); err != nil {
		return err
	}
	f.msg, err = r.str()
	return err
}

func parseReply(r *rbuf) (replyFrame, error) {
	var f replyFrame
	var err error
	if f.reqID, err = r.uvarint(); err != nil {
		return f, err
	}
	if f.status, err = r.u8(); err != nil {
		return f, err
	}
	if f.status == statusOK {
		f.body = r.rest()
		return f, nil
	}
	return f, parseReplyError(r, &f)
}

// parseBatchReply decodes a multi-reply frame (per-call status).
func parseBatchReply(r *rbuf) ([]replyFrame, error) {
	n, err := r.count(3) // reqID + status + 1 byte of payload minimum
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, r.fail("empty batch reply")
	}
	replies := make([]replyFrame, 0, n)
	for i := 0; i < n; i++ {
		var f replyFrame
		if f.reqID, err = r.uvarint(); err != nil {
			return nil, err
		}
		if f.status, err = r.u8(); err != nil {
			return nil, err
		}
		if f.status == statusOK {
			if f.body, err = r.bytes(); err != nil {
				return nil, err
			}
		} else if err = parseReplyError(r, &f); err != nil {
			return nil, err
		}
		replies = append(replies, f)
	}
	if len(r.rest()) != 0 {
		return nil, r.fail("trailing bytes after batch reply")
	}
	return replies, nil
}

func parseRevoke(r *rbuf) (revokeFrame, error) {
	var f revokeFrame
	var err error
	if f.exportID, err = r.uvarint(); err != nil {
		return f, err
	}
	f.reason, err = r.u8()
	return f, err
}

func parseLookup(r *rbuf) (lookupFrame, error) {
	var f lookupFrame
	var err error
	if f.reqID, err = r.uvarint(); err != nil {
		return f, err
	}
	f.name, err = r.str()
	return f, err
}

func parseLookupReply(r *rbuf) (lookupReplyFrame, error) {
	var f lookupReplyFrame
	var err error
	if f.reqID, err = r.uvarint(); err != nil {
		return f, err
	}
	if f.status, err = r.u8(); err != nil {
		return f, err
	}
	if f.status != statusOK {
		if f.kind, err = r.u8(); err != nil {
			return f, err
		}
		if f.class, err = r.str(); err != nil {
			return f, err
		}
		f.msg, err = r.str()
		return f, err
	}
	if f.handle, err = r.uvarint(); err != nil {
		return f, err
	}
	n, err := r.count(1)
	if err != nil {
		return f, err
	}
	f.methods = make([]string, 0, n)
	for i := 0; i < n; i++ {
		m, merr := r.str()
		if merr != nil {
			return f, merr
		}
		f.methods = append(f.methods, m)
	}
	return f, nil
}

func parsePing(r *rbuf) (pingFrame, error) {
	var f pingFrame
	var err error
	if f.reqID, err = r.uvarint(); err != nil {
		return f, err
	}
	if len(r.rest()) == 0 {
		return f, nil // pre-handoff peer: no feature tail
	}
	if f.features, err = r.uvarint(); err != nil {
		return f, err
	}
	f.hasFeatures = true
	if f.network, err = r.str(); err != nil {
		return f, err
	}
	f.addr, err = r.str()
	// Bytes past the advertise tail belong to future extensions and are
	// ignored, exactly as pre-handoff builds ignore this whole tail.
	return f, err
}

func parseHandoff(r *rbuf) (handoffFrame, error) {
	var f handoffFrame
	var err error
	if f.kind, err = r.u8(); err != nil {
		return f, err
	}
	switch f.kind {
	case handoffRegister:
		if f.nonce, err = r.uvarint(); err != nil {
			return f, err
		}
		f.exportID, err = r.uvarint()
		return f, err
	case handoffOffer:
		if f.relayID, err = r.uvarint(); err != nil {
			return f, err
		}
		if f.exportID, err = r.uvarint(); err != nil {
			return f, err
		}
		if f.nonce, err = r.uvarint(); err != nil {
			return f, err
		}
		if f.network, err = r.str(); err != nil {
			return f, err
		}
		if f.addr, err = r.str(); err != nil {
			return f, err
		}
		if f.addr == "" {
			return f, r.fail("offer without origin address")
		}
		return f, nil
	default:
		return f, r.fail("unknown handoff kind")
	}
}

func parseRedeem(r *rbuf) (redeemFrame, error) {
	var f redeemFrame
	var err error
	if f.reqID, err = r.uvarint(); err != nil {
		return f, err
	}
	if f.nonce, err = r.uvarint(); err != nil {
		return f, err
	}
	f.exportID, err = r.uvarint()
	return f, err
}

func parseRedeemReply(r *rbuf) (redeemReplyFrame, error) {
	var f redeemReplyFrame
	var err error
	if f.reqID, err = r.uvarint(); err != nil {
		return f, err
	}
	if f.status, err = r.u8(); err != nil {
		return f, err
	}
	if f.status != statusOK {
		if f.kind, err = r.u8(); err != nil {
			return f, err
		}
		if f.class, err = r.str(); err != nil {
			return f, err
		}
		f.msg, err = r.str()
		return f, err
	}
	if f.exportID, err = r.uvarint(); err != nil {
		return f, err
	}
	n, err := r.count(1)
	if err != nil {
		return f, err
	}
	f.methods = make([]string, 0, n)
	for i := 0; i < n; i++ {
		m, merr := r.str()
		if merr != nil {
			return f, merr
		}
		f.methods = append(f.methods, m)
	}
	return f, nil
}

func parseRelease(r *rbuf) ([]releaseEntry, error) {
	n, err := r.count(3) // exportID + count + gen, 1 byte each minimum
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, r.fail("empty release")
	}
	entries := make([]releaseEntry, 0, n)
	for i := 0; i < n; i++ {
		var e releaseEntry
		if e.exportID, err = r.uvarint(); err != nil {
			return nil, err
		}
		if e.count, err = r.uvarint(); err != nil {
			return nil, err
		}
		if e.gen, err = r.uvarint(); err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	if len(r.rest()) != 0 {
		return nil, r.fail("trailing bytes after release")
	}
	return entries, nil
}

func parseManifest(r *rbuf) (manifestFrame, error) {
	var f manifestFrame
	var err error
	if f.reqID, err = r.uvarint(); err != nil {
		return f, err
	}
	f.exportID, err = r.uvarint()
	return f, err
}

func parseManifestReply(r *rbuf) (manifestReplyFrame, error) {
	var f manifestReplyFrame
	var err error
	if f.reqID, err = r.uvarint(); err != nil {
		return f, err
	}
	if f.status, err = r.u8(); err != nil {
		return f, err
	}
	if f.status != statusOK {
		if f.kind, err = r.u8(); err != nil {
			return f, err
		}
		if f.class, err = r.str(); err != nil {
			return f, err
		}
		f.msg, err = r.str()
		return f, err
	}
	n, err := r.count(1)
	if err != nil {
		return f, err
	}
	f.methods = make([]string, 0, n)
	for i := 0; i < n; i++ {
		m, merr := r.str()
		if merr != nil {
			return f, merr
		}
		f.methods = append(f.methods, m)
	}
	return f, nil
}

// decodeFrame decodes one frame into its typed form: (msgType, frame,
// nil) on success, an error on malformed input. It is the single decode
// entry point for conn.dispatch and for the fuzz targets.
func decodeFrame(frame []byte) (byte, any, error) {
	r := &rbuf{b: frame}
	t, err := r.u8()
	if err != nil {
		return 0, nil, err
	}
	var v any
	switch t {
	case msgInvoke:
		v, err = parseInvoke(r)
	case msgBatchInvoke:
		v, err = parseBatchInvoke(r)
	case msgReply:
		v, err = parseReply(r)
	case msgBatchReply:
		v, err = parseBatchReply(r)
	case msgRevoke:
		v, err = parseRevoke(r)
	case msgLookup:
		v, err = parseLookup(r)
	case msgLookupReply:
		v, err = parseLookupReply(r)
	case msgPing, msgPong:
		v, err = parsePing(r)
	case msgRelease:
		v, err = parseRelease(r)
	case msgManifest:
		v, err = parseManifest(r)
	case msgManifestReply:
		v, err = parseManifestReply(r)
	case msgHandoff:
		v, err = parseHandoff(r)
	case msgRedeem:
		v, err = parseRedeem(r)
	case msgRedeemReply:
		v, err = parseRedeemReply(r)
	default:
		return t, nil, fmt.Errorf("remote: unknown message type %d", t)
	}
	if err != nil {
		return t, nil, err
	}
	return t, v, nil
}

// --- frame encoders ---------------------------------------------------------

// appendBatchCallHeader appends one call's header (everything but the
// argument bytes) to a msgBatchInvoke body. The vectored sender emits the
// args as their own write segment, so the header declares the length and
// the payload never moves.
func appendBatchCallHeader(w *wbuf, reqID, exportID uint64, method string, traceID, parentSpan uint64, argLen int) {
	w.uvarint(reqID)
	w.uvarint(exportID)
	w.str(method)
	appendTrace(w, traceID, parentSpan)
	w.uvarint(uint64(argLen))
}

// appendBatchCall appends one complete call to a msgBatchInvoke body.
func appendBatchCall(w *wbuf, reqID, exportID uint64, method string, traceID, parentSpan uint64, args []byte) {
	appendBatchCallHeader(w, reqID, exportID, method, traceID, parentSpan, len(args))
	w.raw(args)
}

// appendReleaseEntry appends one entry to a msgRelease body.
func appendReleaseEntry(w *wbuf, e releaseEntry) {
	w.uvarint(e.exportID)
	w.uvarint(e.count)
	w.uvarint(e.gen)
}

// appendReplyBody appends the status tail of f (everything after reqID)
// to a reply frame; batched reply bodies length-prefix their payload.
func appendReplyBody(w *wbuf, f replyFrame, batched bool) {
	w.u8(f.status)
	if f.status == statusOK {
		if batched {
			w.uvarint(uint64(len(f.body)))
		}
		w.raw(f.body)
		return
	}
	w.u8(f.kind)
	w.str(f.class)
	w.str(f.msg)
}

// appendPing encodes a ping or pong with the feature/advertise tail.
func appendPing(w *wbuf, t byte, reqID uint64, network, addr string) {
	w.u8(t)
	w.uvarint(reqID)
	w.uvarint(localFeatures)
	w.str(network)
	w.str(addr)
}

// encodeRegister builds the middleman -> origin ticket registration.
func encodeRegister(nonce, exportID uint64) []byte {
	var w wbuf
	w.u8(msgHandoff)
	w.u8(handoffRegister)
	w.uvarint(nonce)
	w.uvarint(exportID)
	return w.b
}

// encodeOffer builds the middleman -> receiver redeem offer.
func encodeOffer(relayID, exportID, nonce uint64, network, addr string) []byte {
	var w wbuf
	w.u8(msgHandoff)
	w.u8(handoffOffer)
	w.uvarint(relayID)
	w.uvarint(exportID)
	w.uvarint(nonce)
	w.str(network)
	w.str(addr)
	return w.b
}
