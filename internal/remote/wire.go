// Package remote extends the J-Kernel's capability discipline across
// process boundaries: a supervisor kernel and worker kernels, each a full
// single-process J-Kernel, exchange capabilities over a length-prefixed
// wire protocol. Imported capabilities materialize as proxy gates that
// plug into the ordinary core invoke path, so callers cannot tell a local
// capability from a remote one — the paper's LRMI semantics (copy
// non-capability arguments, pass capabilities by reference, propagate
// revocation and termination as exceptions) hold across the wire.
//
// The protocol is symmetric: either end may export, import, and invoke.
// Each connection keeps an export table (local capabilities the peer may
// invoke, keyed by export id) and an import table (peer capabilities this
// side holds proxies for). Arguments cross as an intermediate byte array
// produced by internal/seri, with capability references encoded through
// seri's External hook. Revocation — explicit, or implied by domain
// termination — is pushed eagerly so proxies fail fast, and a lost
// connection faults every proxy imported over it ("worker died" surfaces
// as a capability fault, never as a supervisor crash).
package remote

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Message types.
const (
	msgInvoke      byte = 1 // reqID, exportID, method, args stream
	msgReply       byte = 2 // reqID, status, results stream | error
	msgRevoke      byte = 3 // exportID, reason
	msgLookup      byte = 4 // reqID, name
	msgLookupReply byte = 5 // reqID, status, handle, methods | error
	msgPing        byte = 6 // reqID: liveness/readiness probe
	msgPong        byte = 7 // reqID
)

// Reply statuses.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// Wire error kinds, mapped back onto kernel sentinels by the caller.
const (
	errKindRevoked    byte = 1
	errKindTerminated byte = 2
	errKindNoMethod   byte = 3
	errKindNotFound   byte = 4 // lookup of an unexported name
	errKindRemote     byte = 5 // copied callee failure (class + message)
	errKindProtocol   byte = 6
)

// Revocation reasons pushed with msgRevoke.
const (
	revokeReasonRevoked    byte = 0
	revokeReasonTerminated byte = 1
)

// maxFrame bounds one protocol frame (header-declared length).
const maxFrame = 1 << 24

// Capability handles: a handle names a gate relative to the *sender*.
// kind 0 means "owned by me, import it"; kind 1 means "owned by you,
// here is your own export id back". Packed as id<<1|kind so a handle fits
// seri's single-uint64 External contract.
const (
	handleKindTheirs = 0 // receiver should import (sender-owned)
	handleKindYours  = 1 // receiver's own export returning home
)

func packHandle(id uint64, kind uint64) uint64 { return id<<1 | kind }
func unpackHandle(h uint64) (id uint64, kind uint64) {
	return h >> 1, h & 1
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("remote: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("remote: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// wbuf builds a frame payload.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)        { w.b = append(w.b, v) }
func (w *wbuf) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *wbuf) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) raw(p []byte) { w.b = append(w.b, p...) }

// rbuf walks a frame payload.
type rbuf struct {
	b   []byte
	pos int
}

func (r *rbuf) fail(what string) error {
	return fmt.Errorf("remote: malformed frame: %s at offset %d", what, r.pos)
}

func (r *rbuf) u8() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, r.fail("truncated byte")
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

func (r *rbuf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, r.fail("bad uvarint")
	}
	r.pos += n
	return v, nil
}

func (r *rbuf) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)-r.pos) {
		return "", r.fail("string overruns frame")
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// rest returns the unread tail of the frame (the seri stream).
func (r *rbuf) rest() []byte { return r.b[r.pos:] }
