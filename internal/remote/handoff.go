package remote

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"jkernel/internal/core"
)

// Three-party handoff: when a proxy imported from kernel A is re-exported
// over another connection to kernel C, the middleman B mints a redeemable
// ticket — A's dialable address, A's export id, and a one-time nonce
// registered with A — instead of settling for a relay in which every C
// invoke transits B. C dials A (or reuses a pooled connection to it),
// redeems the ticket for a fresh first-class export, and retargets its
// existing proxy capability onto the direct route; the relay import is
// then released, draining B's tables back to baseline. The relay path is
// minted regardless and stays as the transparent fallback: an unreachable
// origin, an expired ticket, or a peer that predates the handoff frames
// (detected through the ping feature mask) just leaves the two-hop route
// in place.

// Handoff pacing and table bounds. Tickets are one-time and TTL-pruned,
// reusing the preRevoked flood discipline from the release-race
// machinery: a peer that floods registrations faults its connection
// rather than growing the table without bound.
const (
	ticketTTL          = 30 * time.Second
	maxTickets         = 1024
	redeemDialTimeout  = 5 * time.Second
	redeemRetries      = 4
	redeemRetryPause   = 25 * time.Millisecond
	redeemReplyTimeout = 10 * time.Second
)

// ticket is one registered handoff grant at the origin kernel: the
// capability a middleman promised to a third party, redeemable once.
type ticket struct {
	cap      *core.Capability
	exportID uint64 // the origin's export id on the registering connection
	at       time.Time
}

// redeemSlot is one pooled origin connection (receiver side), keyed by
// origin address. The slot mutex doubles as a singleflight: concurrent
// redeems toward the same origin share one dial.
type redeemSlot struct {
	mu   sync.Mutex
	conn *Conn
}

// kernelState is the per-kernel handoff state: the advertised listen
// endpoint, the origin-side ticket table, and the receiver-side pool of
// connections to origin kernels.
type kernelState struct {
	mu       sync.Mutex
	network  string
	addr     string
	disabled bool
	tickets  map[uint64]ticket
	slots    map[string]*redeemSlot
}

var kstates sync.Map // *core.Kernel -> *kernelState

func stateOf(k *core.Kernel) *kernelState {
	if v, ok := kstates.Load(k); ok {
		return v.(*kernelState)
	}
	v, _ := kstates.LoadOrStore(k, &kernelState{
		tickets: make(map[uint64]ticket),
		slots:   make(map[string]*redeemSlot),
	})
	return v.(*kernelState)
}

// Advertise records kernel k's dialable listen endpoint, announced to
// peers in the ping/pong tail so re-exports of k's capabilities can be
// shortened back to it. Listen and RunWorker call it automatically; call
// it directly only for hand-built listeners.
func Advertise(k *core.Kernel, network, addr string) {
	ks := stateOf(k)
	ks.mu.Lock()
	ks.network, ks.addr = network, addr
	ks.mu.Unlock()
}

// advertised returns k's recorded listen endpoint ("" when not listening).
func advertised(k *core.Kernel) (network, addr string) {
	ks := stateOf(k)
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return ks.network, ks.addr
}

// SetHandoff enables or disables three-party handoff for kernel k (it is
// on by default). Disabled, the kernel mints no tickets and ignores
// offers, pinning every re-export to the relay path — the switch the
// benchmarks and fallback tests use to measure the two routes.
func SetHandoff(k *core.Kernel, enabled bool) {
	ks := stateOf(k)
	ks.mu.Lock()
	ks.disabled = !enabled
	ks.mu.Unlock()
}

func handoffEnabled(k *core.Kernel) bool {
	ks := stateOf(k)
	ks.mu.Lock()
	defer ks.mu.Unlock()
	return !ks.disabled
}

// HandoffTables is a snapshot of one kernel's handoff state, for leak
// diagnostics: tickets drain on redeem or TTL, so a quiet kernel reads
// zero.
type HandoffTables struct {
	Tickets     int // registered, unredeemed tickets
	OriginConns int // pooled receiver-side connections to origin kernels
}

// HandoffTableSizes reports k's current handoff-table occupancy, pruning
// expired tickets first.
func HandoffTableSizes(k *core.Kernel) HandoffTables {
	ks := stateOf(k)
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.pruneTicketsLocked(time.Now())
	return HandoffTables{Tickets: len(ks.tickets), OriginConns: len(ks.slots)}
}

// HandoffDone reports whether cap is a wire proxy whose route was
// shortened by a redeemed handoff ticket (it now invokes the origin
// kernel directly instead of relaying through the middleman that
// re-exported it).
func HandoffDone(cap *core.Capability) bool {
	pt := proxyOf(cap)
	return pt != nil && pt.redeemed
}

func (ks *kernelState) pruneTicketsLocked(now time.Time) {
	for n, t := range ks.tickets {
		if now.Sub(t.at) > ticketTTL {
			delete(ks.tickets, n)
		}
	}
}

// registerTicket records a one-time grant. A full table inside one TTL
// window means a malfunctioning or hostile middleman; the caller faults
// the registering connection.
func (ks *kernelState) registerTicket(nonce uint64, cap *core.Capability, exportID uint64) error {
	now := time.Now()
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.pruneTicketsLocked(now)
	if len(ks.tickets) >= maxTickets {
		return fmt.Errorf("remote: protocol error: %d handoff tickets registered and unredeemed", maxTickets)
	}
	ks.tickets[nonce] = ticket{cap: cap, exportID: exportID, at: now}
	return nil
}

// takeTicket consumes a ticket (one-time semantics).
func (ks *kernelState) takeTicket(nonce uint64) (ticket, bool) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.pruneTicketsLocked(time.Now())
	t, ok := ks.tickets[nonce]
	if ok {
		delete(ks.tickets, nonce)
	}
	return t, ok
}

// originConn returns (dialing if needed) the kernel's pooled connection
// to the origin at network/addr. The handshake includes a protocol ping,
// so by the time a connection is handed out the peer's feature mask is
// known. A pooled connection that died is replaced on the next call.
func (ks *kernelState) originConn(k *core.Kernel, network, addr string) (*Conn, error) {
	key := network + "!" + addr
	ks.mu.Lock()
	s := ks.slots[key]
	if s == nil {
		s = &redeemSlot{}
		ks.slots[key] = s
	}
	ks.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		select {
		case <-s.conn.Done():
			s.conn = nil // died since last use; dial fresh below
		default:
			return s.conn, nil
		}
	}
	//jk:allow(lockhold) the slot mutex is a deliberate per-origin singleflight: concurrent redeemers must park on the one dial rather than each dialing the origin themselves
	conn, err := dialHandshake(k, network, addr, redeemDialTimeout)
	if err != nil {
		return nil, err
	}
	conn.setDialTarget(network, addr)
	s.conn = conn
	return conn, nil
}

// newNonce mints a one-time ticket nonce. Nonces gate redemption of a
// grant the origin already decided to honor — unguessability keeps a
// third kernel from racing the intended receiver, and 64 random bits are
// plenty for a table capped at maxTickets.
func newNonce() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		if n := binary.LittleEndian.Uint64(b[:]); n != 0 {
			return n
		}
	}
	return uint64(time.Now().UnixNano()) | 1
}

// handoffCounter bumps a kernel-wide handoff metric (nil-safe).
func (c *Conn) handoffCounter(name string) {
	if reg := c.k.Telemetry(); reg != nil {
		reg.Counter(name).Inc()
	}
}

// handoffEligible reports whether handoff frames may be sent to this
// connection's peer: the kernel has handoff enabled and the peer has
// announced (via the ping tail) that it understands the new frames. An
// unknown peer is treated as a pre-handoff build — relay only.
func (c *Conn) handoffEligible() bool {
	if !handoffEnabled(c.k) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.featKnown && c.peerFeatures&featHandoff != 0
}

// relayRef records, on a relay export entry, where the re-exported proxy
// came from: the upstream connection and the import entry (id +
// generation) holding the middleman's wire references on the origin. When
// the downstream peer releases the last relay reference, these upstream
// references are released too — without this the middleman pinned the
// origin's export forever (the relayed-capability release leak).
type relayRef struct {
	conn     *Conn
	importID uint64
	gen      uint64
}

// originInfo is what a middleman needs to offer a handoff for a proxy on
// this connection: the origin's dialable address and proof it speaks the
// handoff frames.
type originInfo struct {
	network string
	addr    string
	ok      bool
}

// relayInfo resolves the upstream side of re-exporting the proxy for
// importID: the release linkage for the relay entry, and whether the
// origin is offerable (address known, feature announced). The returned
// relayRef holds one pin on the import entry — a caller that does not
// hand it to a freshly created export entry must unpinImport it. Takes
// c.mu itself — callers must not hold any connection lock, keeping
// cross-connection lock order acyclic.
func (c *Conn) relayInfo(importID uint64) (*relayRef, originInfo) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.imports[importID]
	if e == nil {
		return nil, originInfo{}
	}
	e.pins++
	rr := &relayRef{conn: c, importID: importID, gen: e.gen}
	oi := originInfo{network: c.peerNet, addr: c.peerAddr}
	oi.ok = c.featKnown && c.peerFeatures&featHandoff != 0 && oi.addr != ""
	return rr, oi
}

// exportHandle encodes cap as a capability handle for this connection's
// peer — the single choke point behind both the seri External hook and
// lookup replies. A proxy going home travels as the peer's own export id
// (not refcounted); everything else is exported here. When cap is a proxy
// from ANOTHER connection — a re-export that would otherwise relay every
// invoke through this kernel — the relay export still happens (it is the
// fallback the receiver keeps if redemption fails), but a handoff ticket
// is minted alongside it: registered with the origin over the proxy's own
// connection, offered to the receiver over this one. On a FIFO stream the
// offer precedes the frame carrying the handle, so the receiver parks it
// until the import materializes.
func (c *Conn) exportHandle(cap *core.Capability) (handle uint64, refcounted bool) {
	pt := proxyOf(cap)
	if pt != nil && pt.conn == c {
		return packHandle(pt.exportID, handleKindYours), false
	}
	var relay *relayRef
	var oi originInfo
	if pt != nil {
		relay, oi = pt.conn.relayInfo(pt.exportID)
	}
	offerable := oi.ok && c.handoffEligible()
	c.mu.Lock()
	id, created := c.exportLocked(cap, relay)
	c.mu.Unlock()
	if !created && relay != nil {
		// Deduped onto an existing relay entry, which holds its own pin.
		relay.conn.unpinImport(relay.importID, relay.gen)
	}
	if created && offerable {
		nonce := newNonce()
		// Registration travels first; the receiver's redeem retries
		// briefly in case it still outruns this frame to the origin.
		_ = pt.conn.send(encodeRegister(nonce, pt.exportID))
		_ = c.send(encodeOffer(id, pt.exportID, nonce, oi.network, oi.addr))
		c.handoffCounter("remote.handoff.offers")
	}
	return packHandle(id, handleKindTheirs), true
}

// parkedOffer is a redeem offer waiting for the relay import it names
// (the offer frame outruns the handle on the same stream). TTL-pruned
// with the preRevoked window.
type parkedOffer struct {
	f  handoffFrame
	at time.Time
}

// pruneHandoffsLocked drops parked offers past the in-flight window.
// Caller holds c.mu.
func (c *Conn) pruneHandoffsLocked(now time.Time) {
	for id, p := range c.pendingHandoffs {
		if now.Sub(p.at) > preRevokedTTL {
			delete(c.pendingHandoffs, id)
		}
	}
}

// handleHandoff services one msgHandoff on the reader: a ticket
// registration (we are the origin) or a redeem offer (we are the
// receiver). Only table floods fault the connection; anything stale —
// an export revoked under the ticket, an offer for a relay that was
// already released — degrades to the relay fallback.
func (c *Conn) handleHandoff(f handoffFrame) error {
	switch f.kind {
	case handoffRegister:
		c.mu.Lock()
		var cap *core.Capability
		if e := c.exports[f.exportID]; e != nil {
			cap = e.cap
		}
		c.mu.Unlock()
		if cap == nil {
			return nil // revoked or released under the middleman; redeem will fail anyway
		}
		return stateOf(c.k).registerTicket(f.nonce, cap, f.exportID)
	case handoffOffer:
		if !handoffEnabled(c.k) {
			return nil
		}
		now := time.Now()
		c.mu.Lock()
		c.pruneHandoffsLocked(now)
		if e, ok := c.imports[f.relayID]; ok {
			cap, gen := e.cap, e.gen
			c.mu.Unlock()
			go c.redeemOffer(f, cap, f.relayID, gen)
			return nil
		}
		if len(c.pendingHandoffs) >= maxPreRevoked {
			c.mu.Unlock()
			return fmt.Errorf("remote: protocol error: %d handoff offers parked for never-imported relays", maxPreRevoked)
		}
		c.pendingHandoffs[f.relayID] = parkedOffer{f: f, at: now}
		c.mu.Unlock()
	}
	return nil
}

// handleRedeem answers one ticket redemption at the origin, off the
// reader goroutine (it may export a foreign proxy, which consults another
// connection). The ticket is consumed either way; a gate revoked between
// mint and redeem yields the capability fault, never a resurrected
// export.
func (c *Conn) handleRedeem(f redeemFrame) {
	fail := func(kind byte, msg string) {
		var w wbuf
		w.u8(msgRedeemReply)
		w.uvarint(f.reqID)
		w.u8(statusErr)
		w.u8(kind)
		w.str("")
		w.str(msg)
		c.sendOrFault(w.b)
	}
	t, ok := stateOf(c.k).takeTicket(f.nonce)
	if !ok || t.exportID != f.exportID {
		fail(errKindNotFound, "unknown or expired handoff ticket")
		return
	}
	if t.cap.Revoked() {
		kind := byte(errKindRevoked)
		if t.cap.Owner().Terminated() {
			kind = errKindTerminated
		}
		fail(kind, "capability revoked before the handoff was redeemed")
		return
	}
	id, ok := c.exportFreshHandle(t.cap)
	if !ok {
		fail(errKindNotFound, "handoff target not exportable on this connection")
		return
	}
	methods := t.cap.Methods()
	var w wbuf
	w.u8(msgRedeemReply)
	w.uvarint(f.reqID)
	w.u8(statusOK)
	w.uvarint(id)
	w.uvarint(uint64(len(methods)))
	for _, m := range methods {
		w.str(m)
	}
	c.sendOrFault(w.b)
}

// exportFreshHandle exports cap under a brand-new id, bypassing the
// per-gate dedup: a redeemed handoff needs an export whose refcount and
// revocation push are independent of any direct import the peer already
// holds for the same gate, so releasing one can never strand the other.
// When cap is itself a proxy (this kernel is mid-chain), the fresh entry
// carries the upstream relay linkage and a further offer is minted, so a
// chain shortens hop by hop.
func (c *Conn) exportFreshHandle(cap *core.Capability) (uint64, bool) {
	pt := proxyOf(cap)
	if pt != nil && pt.conn == c {
		// The ticket names a capability imported FROM the redeeming peer:
		// a fresh export would just loop calls back through us.
		return 0, false
	}
	var relay *relayRef
	var oi originInfo
	if pt != nil {
		relay, oi = pt.conn.relayInfo(pt.exportID)
	}
	offerable := oi.ok && c.handoffEligible()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		if relay != nil {
			relay.conn.unpinImport(relay.importID, relay.gen)
		}
		return 0, false
	}
	id := c.exportNewLocked(cap, relay)
	c.mu.Unlock()
	if offerable {
		nonce := newNonce()
		_ = pt.conn.send(encodeRegister(nonce, pt.exportID))
		_ = c.send(encodeOffer(id, pt.exportID, nonce, oi.network, oi.addr))
		c.handoffCounter("remote.handoff.offers")
	}
	return id, true
}

// redeemGrant is a successful redemption: the origin's fresh export id
// plus the prefetched method manifest (a shortened import never
// lazy-fetches through the middleman).
type redeemGrant struct {
	exportID uint64
	methods  []string
}

// sendRedeem performs one redeem round trip on the origin connection.
func (c *Conn) sendRedeem(nonce, exportID uint64) (redeemGrant, error) {
	reqID, ch, err := c.newPending()
	if err != nil {
		return redeemGrant{}, err
	}
	var w wbuf
	w.u8(msgRedeem)
	w.uvarint(reqID)
	w.uvarint(nonce)
	w.uvarint(exportID)
	if err := c.send(w.b); err != nil {
		c.dropPending(reqID)
		return redeemGrant{}, err
	}
	timer := time.NewTimer(redeemReplyTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			return redeemGrant{}, res.err
		}
		g, _ := res.results[0].(redeemGrant)
		return g, nil
	case <-c.done:
		return redeemGrant{}, c.closedErr()
	case <-timer.C:
		c.dropPending(reqID)
		return redeemGrant{}, fmt.Errorf("remote: handoff redeem timed out after %v", redeemReplyTimeout)
	}
}

func (c *Conn) handleRedeemReply(f redeemReplyFrame) {
	res := wireResult{}
	if f.status == statusOK {
		res.results = []any{redeemGrant{exportID: f.exportID, methods: f.methods}}
	} else {
		res.err = decodeWireErr(f.kind, f.class, f.msg)
	}
	c.complete(f.reqID, res)
}

// isUnknownTicket matches the origin's not-yet-registered reply, the one
// redeem failure worth a brief retry (the registration frame may still be
// in flight on the middleman->origin connection).
func isUnknownTicket(err error) bool {
	return err != nil && strings.Contains(err.Error(), "handoff ticket")
}

// redeemOffer is the receiver side of one handoff, run on its own
// goroutine: dial (or reuse) the origin, trade the nonce for a fresh
// export, adopt it as an import on the origin connection, retarget the
// existing relay proxy onto the direct route, and release the middleman's
// relay references. Every failure short of a revocation leaves the relay
// path untouched — the capability keeps working, just unshortened.
func (c *Conn) redeemOffer(f handoffFrame, cap *core.Capability, relayID, relayGen uint64) {
	oc, err := stateOf(c.k).originConn(c.k, f.network, f.addr)
	if err != nil || !oc.handoffEligible() {
		c.handoffCounter("remote.handoff.fallback")
		return
	}
	var grant redeemGrant
	for attempt := 0; ; attempt++ {
		grant, err = oc.sendRedeem(f.nonce, f.exportID)
		if err == nil || attempt >= redeemRetries || !isUnknownTicket(err) {
			break
		}
		time.Sleep(redeemRetryPause)
	}
	if err != nil {
		if errors.Is(err, core.ErrRevoked) || errors.Is(err, core.ErrDomainTerminated) {
			// The gate died between ticket mint and redeem: the redeeming
			// import faults — the origin consumed the ticket without
			// resurrecting the export, and the relay path is about to
			// deliver the same push.
			c.metrics.capFault(1)
			cap.RevokeWithReason(err)
			c.handoffCounter("remote.handoff.revoked")
			return
		}
		c.handoffCounter("remote.handoff.fallback")
		return
	}
	pre, ok := oc.adoptImport(grant.exportID, cap)
	if !ok {
		// The origin connection died under us; its teardown already
		// reclaimed the fresh export. The relay path stands.
		c.handoffCounter("remote.handoff.fallback")
		return
	}
	if pre != nil {
		// A revocation for the fresh export raced ahead of the adoption
		// and was parked in preRevoked: apply it (satellite of the
		// mid-redeem revocation race).
		c.metrics.capFault(1)
		cap.RevokeWithReason(pre)
		return
	}
	opt := proxyOf(cap)
	npt := &proxyTarget{conn: oc, exportID: grant.exportID, methods: grant.methods, fetched: true, redeemed: true}
	if !core.RetargetProxy(cap, npt) {
		// Revoked under us; the adoption hook already released the fresh
		// import.
		return
	}
	// Forward the relay route before releasing it: an invoke that
	// snapshotted the old target races the release below and retries on
	// npt when the middleman reports the export gone.
	if opt != nil {
		opt.next.Store(npt)
	}
	// The proxy now invokes the origin directly. Drop the middleman's
	// relay references; its tables (and, through the relay release
	// linkage, its own upstream references) drain back to baseline.
	c.releaseImport(relayID, relayGen)
	c.handoffCounter("remote.handoff.redeemed")
}

// adoptImport registers an import entry for id on this (origin)
// connection whose proxy is an EXISTING capability — the relay import
// being shortened — rather than a freshly minted one. The entry carries a
// fresh generation and the usual lifecycle hook; a revocation parked for
// id is consumed and returned as pre. Returns ok=false when the
// connection is closed or the id is unexpectedly occupied (the caller
// keeps the relay path).
func (c *Conn) adoptImport(id uint64, cap *core.Capability) (pre error, ok bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false
	}
	if _, exists := c.imports[id]; exists {
		c.mu.Unlock()
		return nil, false
	}
	c.nextImportGen++
	e := &importEntry{cap: cap, recv: 1, gen: c.nextImportGen}
	c.imports[id] = e
	delete(c.releasedImports, id) // id is live again; future revokes are real
	gen := e.gen
	// If cap is already revoked this fires inline and the fresh entry
	// self-cleans through the ordinary release path.
	cap.Gate().OnRevoke(func() { go c.releaseImport(id, gen) })
	if p, raced := c.preRevoked[id]; raced {
		delete(c.preRevoked, id)
		pre = revokeFault(p.reason)
	}
	c.mu.Unlock()
	return pre, true
}
