package remote

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jkernel/internal/core"
)

// capFault reports whether err is a legitimate capability fault — the
// only failure a caller may see when gates are being revoked or workers
// killed under it.
func capFault(err error) bool {
	return errors.Is(err, core.ErrRevoked) || errors.Is(err, core.ErrDomainTerminated)
}

// TestStressMixedTrafficWithRevocations hammers one connection from many
// goroutines with interleaved sync invokes, single async invokes, and
// batched async waves, while a chaos goroutine revokes a rolling set of
// exported capabilities and others force flushes. Run under -race in CI;
// invariants: no panic, no wedge, every failure is a capability fault,
// and no successful counter update is lost.
func TestStressMixedTrafficWithRevocations(t *testing.T) {
	p := newPair(t)
	p.export(t, "counter", &counterSvc{})
	p.export(t, "echo", echoSvc{})

	const revocables = 16
	revCaps := make([]*core.Capability, revocables)
	revProxies := make([]*core.Capability, revocables)
	for i := range revCaps {
		revCaps[i] = p.export(t, fmt.Sprintf("rev-%d", i), echoSvc{})
		proxy, err := p.conn.Import(fmt.Sprintf("rev-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		revProxies[i] = proxy
	}
	counter, err := p.conn.Import("counter")
	if err != nil {
		t.Fatal(err)
	}
	echo, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		iters   = 60
		batch   = 16
	)
	var added atomic.Int64 // successful counter increments
	var wg sync.WaitGroup
	fail := make(chan string, workers+1)

	// Chaos: revoke the rolling set while traffic is in flight.
	stopChaos := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < revocables; i++ {
			select {
			case <-stopChaos:
				return
			case <-time.After(2 * time.Millisecond):
			}
			revCaps[i].Revoke()
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			task := p.client.NewDetachedTask(p.clientDom, fmt.Sprintf("stress-%d", w))
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0: // synchronous counter update
					if _, err := counter.InvokeFrom(task, "Add", int64(1)); err != nil {
						fail <- fmt.Sprintf("worker %d sync Add: %v", w, err)
						return
					}
					added.Add(1)
				case 1: // single async against a revocable target
					target := revProxies[(w+i)%revocables]
					fut := target.InvokeAsyncFrom(task, "Echo", "x")
					if _, err := fut.Wait(); err != nil && !capFault(err) {
						fail <- fmt.Sprintf("worker %d async rev echo: %v", w, err)
						return
					}
				case 2: // batched async wave, mixed targets, explicit flush
					futs := make([]*core.Future, 0, batch)
					for j := 0; j < batch; j++ {
						if j%4 == 0 {
							futs = append(futs, counter.InvokeAsyncFrom(task, "Add", int64(1)))
						} else {
							futs = append(futs, echo.InvokeAsyncFrom(task, "Sum", int64(j), int64(1)))
						}
					}
					p.conn.Flush()
					for j, fut := range futs {
						if _, err := fut.Wait(); err != nil {
							fail <- fmt.Sprintf("worker %d batch[%d]: %v", w, j, err)
							return
						}
						if j%4 == 0 {
							added.Add(1)
						}
					}
				}
			}
		}(w)
	}

	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case msg := <-fail:
		close(stopChaos)
		t.Fatal(msg)
	case <-time.After(60 * time.Second):
		t.Fatal("stress run wedged")
	}
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	// Every acknowledged Add must be present: batching loses no updates.
	res, err := counter.InvokeFrom(p.task, "Add", int64(0))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != any(added.Load()) {
		t.Fatalf("lost updates: counter=%v acknowledged=%d", res[0], added.Load())
	}
}

// TestStressWorkerKillMidStream kills a worker process while async and
// sync invokes are streaming over its connection. Every future must
// resolve (join never hangs), every failure must be a capability fault —
// the supervisor never crashes — and the restarted worker must serve a
// fresh connection.
func TestStressWorkerKillMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	sup := core.MustNew(core.Options{})
	supDom, err := sup.NewDomain(core.DomainConfig{Name: "sup"})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := StartPool(PoolOptions{Workers: 1, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	w := pool.Worker(0)
	conn, err := w.Dial(sup, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := conn.Import("counter")
	if err != nil {
		t.Fatal(err)
	}

	const workers = 6
	var wg sync.WaitGroup
	bad := make(chan string, workers)
	stop := make(chan struct{})
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			task := sup.NewDetachedTask(supDom, fmt.Sprintf("kill-stress-%d", g))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if i%2 == 0 {
					_, err = counter.InvokeFrom(task, "Add", int64(1))
				} else {
					futs := []*core.Future{
						counter.InvokeAsyncFrom(task, "Add", int64(1)),
						counter.InvokeAsyncFrom(task, "Add", int64(1)),
						counter.InvokeAsyncFrom(task, "Add", int64(1)),
					}
					conn.Flush()
					err = core.WaitAll(futs...)
				}
				if err != nil {
					if !capFault(err) {
						bad <- fmt.Sprintf("goroutine %d: non-capability fault: %v", g, err)
					}
					return // connection is dead; this goroutine is done
				}
			}
		}(g)
	}

	// Let traffic build, then kill the worker under it.
	time.Sleep(100 * time.Millisecond)
	if err := w.Kill(); err != nil {
		t.Fatal(err)
	}

	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("futures never resolved after worker kill")
	}
	close(stop)
	select {
	case msg := <-bad:
		t.Fatal(msg)
	default:
	}

	// The supervisor survived; the restarted worker serves fresh state.
	conn2, err := w.Dial(sup, 15*time.Second)
	if err != nil {
		t.Fatalf("restarted worker not reachable: %v", err)
	}
	defer conn2.Close()
	counter2, err := conn2.Import("counter")
	if err != nil {
		t.Fatal(err)
	}
	task := sup.NewDetachedTask(supDom, "after-restart")
	fut := counter2.InvokeAsyncFrom(task, "Add", int64(1))
	res, err := fut.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != any(int64(1)) {
		t.Fatalf("restarted worker state: %#v", res)
	}
}

// TestBatchErrorIsolation puts failing and succeeding calls in the same
// async wave: each call gets its own status, so the faulting ones error
// individually and the rest of the batch is untouched.
func TestBatchErrorIsolation(t *testing.T) {
	p := newPair(t)
	p.export(t, "echo", echoSvc{})
	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	futs := make([]*core.Future, n)
	for i := range futs {
		switch i % 3 {
		case 0:
			futs[i] = proxy.InvokeAsyncFrom(p.task, "Sum", int64(i), int64(1))
		case 1:
			futs[i] = proxy.InvokeAsyncFrom(p.task, "Fail", fmt.Sprintf("boom-%d", i))
		case 2:
			futs[i] = proxy.InvokeAsyncFrom(p.task, "Nope") // no such method
		}
	}
	p.conn.Flush()
	for i, fut := range futs {
		res, err := fut.Wait()
		switch i % 3 {
		case 0:
			if err != nil {
				t.Fatalf("fut %d poisoned by neighbors: %v", i, err)
			}
			if res[0] != any(int64(i+1)) {
				t.Fatalf("fut %d: %#v", i, res)
			}
		case 1:
			var re *core.RemoteError
			if !errors.As(err, &re) || re.Msg != fmt.Sprintf("boom-%d", i) {
				t.Fatalf("fut %d: want copied callee failure, got %v", i, err)
			}
		case 2:
			if !errors.Is(err, core.ErrNoSuchMethod) {
				t.Fatalf("fut %d: want ErrNoSuchMethod, got %v", i, err)
			}
		}
	}
}
