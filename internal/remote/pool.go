package remote

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/telemetry"
)

// PoolOptions configures a worker pool.
type PoolOptions struct {
	// Workers is the number of worker processes (default 1).
	Workers int
	// Dir holds the workers' unix sockets (default: fresh temp dir,
	// removed on Close).
	Dir string
	// Command builds the worker process for index i listening on
	// network/addr. Default: re-exec the current binary with the worker
	// environment variable set (pair with MaybeRunWorker in main).
	Command func(i int, network, addr string) *exec.Cmd
	// Stderr receives worker stderr (default: the supervisor's stderr).
	Stderr *os.File
	// RestartDelay paces respawns after a crash (default 200ms).
	RestartDelay time.Duration
	// Log, when set, receives pool lifecycle events.
	Log func(format string, args ...any)
	// Telemetry receives pool metrics and lifecycle events (spawn counts,
	// restart counts with exit reasons, dial latency). Default: the
	// process-global registry.
	Telemetry *telemetry.Registry
}

// Pool supervises worker kernel processes: it spawns them, watches for
// exits, and restarts crashed workers — the supervisor keeps running and
// its proxies fault instead (the remote-playground failure model). Slots
// can be added (Add) and removed (Remove) at runtime, which is how a
// control plane autoscales the pool.
type Pool struct {
	opts   PoolOptions
	dir    string
	ownDir bool
	closed atomic.Bool
	wg     sync.WaitGroup

	// mu guards the workers slice and the next slot index; slots come and
	// go at runtime once a scheduler drives Add/Remove.
	mu      sync.Mutex
	workers []*PoolWorker
	nextIdx int

	// Pool telemetry. Worker restarts were once silent unless the caller
	// wired a Log func; now every exit is counted and its reason (exit
	// code, signal, spawn failure) lands in the registry's event log.
	spawns      *telemetry.Counter
	restarts    *telemetry.Counter
	dialLatency *telemetry.Histogram
}

// PoolWorker is one supervised worker slot. The process occupying it may
// be restarted any number of times; the socket address is stable. Slot
// indices are monotonic — a removed slot's index is never reused, so a
// scheduler can key state by index without ABA confusion.
type PoolWorker struct {
	pool    *Pool
	Index   int
	network string
	addr    string

	// live counts connections Dial handed out that have not shut down;
	// Remove is drain-aware and refuses to kill a slot that still serves.
	live    atomic.Int64
	removed atomic.Bool

	mu       sync.Mutex
	cmd      *exec.Cmd
	restarts int
}

// SelfExecCommand re-executes the current binary as a worker child. The
// child must call MaybeRunWorker early in main.
func SelfExecCommand(i int, network, addr string) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), EnvWorkerAddr+"="+network+":"+addr)
	return cmd
}

// StartPool spawns the workers and begins supervising them.
func StartPool(opts PoolOptions) (*Pool, error) {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Command == nil {
		opts.Command = SelfExecCommand
	}
	if opts.RestartDelay <= 0 {
		opts.RestartDelay = 200 * time.Millisecond
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	if opts.Telemetry == nil {
		opts.Telemetry = telemetry.Default()
	}
	p := &Pool{opts: opts, dir: opts.Dir}
	p.spawns = opts.Telemetry.Counter("remote.pool.spawns")
	p.restarts = opts.Telemetry.Counter("remote.pool.restarts")
	p.dialLatency = opts.Telemetry.Histogram("remote.pool.dial.latency_ns")
	if p.dir == "" {
		dir, err := os.MkdirTemp("", "jkpool-")
		if err != nil {
			return nil, err
		}
		p.dir = dir
		p.ownDir = true
	}
	for i := 0; i < opts.Workers; i++ {
		if _, err := p.Add(); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// Add appends a fresh worker slot to the pool and spawns its process. The
// new slot gets the next monotonic index; it is supervised exactly like
// the initial workers. This is the scale-up primitive.
func (p *Pool) Add() (*PoolWorker, error) {
	if p.closed.Load() {
		return nil, fmt.Errorf("remote: pool closed")
	}
	p.mu.Lock()
	i := p.nextIdx
	p.nextIdx++
	w := &PoolWorker{
		pool:    p,
		Index:   i,
		network: "unix",
		addr:    filepath.Join(p.dir, fmt.Sprintf("worker-%d.sock", i)),
	}
	p.workers = append(p.workers, w)
	p.mu.Unlock()
	if err := w.spawn(); err != nil {
		p.detach(w)
		return nil, err
	}
	return w, nil
}

// Remove drains and deletes a worker slot: it stops future respawns, waits
// up to wait for connections handed out by Dial to shut down, and only
// then kills the process. A slot that still serves live connections after
// the wait is NOT killed — Remove re-arms the slot and returns an error,
// so a control plane cannot yank a worker out from under in-flight calls
// by accident. Callers drain first (close their conns), then Remove.
func (p *Pool) Remove(w *PoolWorker, wait time.Duration) error {
	if w.pool != p {
		return fmt.Errorf("remote: worker %d is not from this pool", w.Index)
	}
	w.removed.Store(true) // monitor stops respawning
	deadline := time.Now().Add(wait)
	for w.live.Load() > 0 {
		if time.Now().After(deadline) {
			w.removed.Store(false)
			return fmt.Errorf("remote: worker %d still has %d live connection(s)", w.Index, w.live.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	w.mu.Lock()
	if w.cmd != nil && w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	w.mu.Unlock()
	p.detach(w)
	if w.network == "unix" {
		os.Remove(w.addr)
	}
	p.opts.Telemetry.Eventf("pool worker %d removed", w.Index)
	p.opts.Log("worker %d: removed", w.Index)
	return nil
}

// detach forgets a slot without touching its process.
func (p *Pool) detach(w *PoolWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, x := range p.workers {
		if x == w {
			p.workers = append(p.workers[:i], p.workers[i+1:]...)
			return
		}
	}
}

// Worker returns slot i (by position, not index; see Workers for slots of
// a dynamic pool).
func (p *Pool) Worker(i int) *PoolWorker {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workers[i]
}

// Workers snapshots the current slots.
func (p *Pool) Workers() []*PoolWorker {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*PoolWorker, len(p.workers))
	copy(out, p.workers)
	return out
}

// Size returns the number of worker slots.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// Close kills every worker and stops supervision.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	for _, w := range p.Workers() {
		w.mu.Lock()
		if w.cmd != nil && w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
		w.mu.Unlock()
	}
	p.wg.Wait()
	if p.ownDir {
		os.RemoveAll(p.dir)
	}
}

// Network and Addr identify the worker's stable listen endpoint.
func (w *PoolWorker) Network() string { return w.network }
func (w *PoolWorker) Addr() string    { return w.addr }

// Restarts reports how many times this slot's process was respawned.
func (w *PoolWorker) Restarts() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.restarts
}

// LiveConns reports how many connections handed out by Dial are still up —
// the drain signal Remove waits on.
func (w *PoolWorker) LiveConns() int { return int(w.live.Load()) }

// Kill terminates the current worker process (the supervisor will restart
// it). Used by failure drills and tests.
func (w *PoolWorker) Kill() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cmd == nil || w.cmd.Process == nil {
		return fmt.Errorf("remote: worker %d has no process", w.Index)
	}
	return w.cmd.Process.Kill()
}

// Handshake pacing: one probe never waits longer than pingProbeMax (a
// healthy worker answers in microseconds; anything slower is a process
// that accepted us into its backlog while dying), and retries are paced
// by retryPause — both clipped to whatever remains of the caller's
// deadline, so Dial returns within its timeout, never at timeout plus a
// probe.
const (
	pingProbeMax = 2 * time.Second
	retryPause   = 20 * time.Millisecond
)

// Dial connects kernel k to the worker, retrying until the worker's
// listener is up (fresh spawns and restarts take a moment) or timeout
// elapses. Each attempt is a deadline-bound handshake — connect, then a
// protocol ping with the remaining time budget: a dying worker can still
// accept a connection into its listen backlog (or be SIGKILLed between
// accept and serve), and only an answered ping proves the kernel behind
// the socket is serving.
func (w *PoolWorker) Dial(k *core.Kernel, timeout time.Duration) (*Conn, error) {
	// A PoolWorker can be built bare (tests, ad-hoc endpoints); telemetry
	// instruments are nil-safe, so a missing pool just goes unobserved.
	var reg *telemetry.Registry
	var dialLat *telemetry.Histogram
	if w.pool != nil {
		reg = w.pool.opts.Telemetry
		dialLat = w.pool.dialLatency
	}
	start := time.Now()
	deadline := start.Add(timeout)
	var lastErr error = fmt.Errorf("no attempt completed")
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			reg.Eventf("pool worker %d unreachable after %v: %v", w.Index, timeout, lastErr)
			return nil, fmt.Errorf("remote: worker %d not reachable after %v: %w", w.Index, timeout, lastErr)
		}
		conn, err := dialHandshake(k, w.network, w.addr, remaining)
		if err == nil {
			// Dial latency covers spawn-to-readiness retries, so it is the
			// observed worker warm-up time, not one TCP connect.
			dialLat.ObserveSince(start)
			// Track the connection for drain-aware Remove: the slot counts
			// as serving until every conn Dial handed out has shut down.
			w.live.Add(1)
			go func() {
				<-conn.Done()
				w.live.Add(-1)
			}()
			return conn, nil
		}
		lastErr = err
		pause := retryPause
		if rem := time.Until(deadline); pause > rem {
			pause = rem
		}
		if pause > 0 {
			time.Sleep(pause)
		}
	}
}

// dialHandshake performs one connect-and-ping handshake within budget.
// Both phases share the budget: the connect may consume most of it, and
// the readiness ping gets what is left (capped at pingProbeMax).
//
//jk:blocking
func dialHandshake(k *core.Kernel, network, addr string, budget time.Duration) (*Conn, error) {
	deadline := time.Now().Add(budget)
	nc, err := net.DialTimeout(network, addr, budget)
	if err != nil {
		return nil, err
	}
	conn, err := NewConn(k, nc)
	if err != nil {
		nc.Close()
		return nil, err
	}
	conn.setDialTarget(network, addr)
	probe := time.Until(deadline)
	if probe > pingProbeMax {
		probe = pingProbeMax
	}
	if probe <= 0 {
		conn.Close()
		return nil, fmt.Errorf("remote: %s: connected with no time left to probe", addr)
	}
	if perr := conn.Ping(probe); perr != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: %s: connected but unresponsive: %w", addr, perr)
	}
	return conn, nil
}

// spawn starts the worker process and its monitor.
func (w *PoolWorker) spawn() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.spawnLocked()
}

// spawnLocked starts the process under w.mu. The closed check and the cmd
// store share the mutex with Pool.Close's kill loop, so a respawn cannot
// slip past a concurrent Close and leak an orphan process.
func (w *PoolWorker) spawnLocked() error {
	if w.pool.closed.Load() || w.removed.Load() {
		return nil
	}
	if w.network == "unix" {
		os.Remove(w.addr)
	}
	cmd := w.pool.opts.Command(w.Index, w.network, w.addr)
	if cmd.Stderr == nil {
		if w.pool.opts.Stderr != nil {
			cmd.Stderr = w.pool.opts.Stderr
		} else {
			cmd.Stderr = os.Stderr
		}
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("remote: spawn worker %d: %w", w.Index, err)
	}
	w.cmd = cmd
	w.pool.spawns.Inc()
	w.pool.opts.Log("worker %d: started pid %d (%s)", w.Index, cmd.Process.Pid, w.addr)
	w.pool.wg.Add(1)
	go w.monitor(cmd)
	return nil
}

// monitor reaps one process incarnation and respawns unless the pool is
// closing.
func (w *PoolWorker) monitor(cmd *exec.Cmd) {
	defer w.pool.wg.Done()
	err := cmd.Wait()
	if w.pool.closed.Load() || w.removed.Load() {
		return
	}
	reason := exitReason(cmd, err)
	w.pool.restarts.Inc()
	w.pool.opts.Telemetry.Eventf("pool worker %d exited: %s; restarting in %v",
		w.Index, reason, w.pool.opts.RestartDelay)
	w.pool.opts.Log("worker %d: exited (%s); restarting in %v", w.Index, reason, w.pool.opts.RestartDelay)
	time.Sleep(w.pool.opts.RestartDelay)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pool.closed.Load() || w.removed.Load() {
		return
	}
	w.restarts++
	if serr := w.spawnLocked(); serr != nil {
		w.pool.opts.Telemetry.Eventf("pool worker %d respawn failed: %v", w.Index, serr)
		w.pool.opts.Log("worker %d: respawn failed: %v", w.Index, serr)
	}
}

// exitReason renders why a worker process died: the exit code or signal
// when the process ran, otherwise the Wait error itself.
func exitReason(cmd *exec.Cmd, err error) string {
	if st := cmd.ProcessState; st != nil {
		if code := st.ExitCode(); code >= 0 {
			return fmt.Sprintf("exit code %d", code)
		}
		// ExitCode is -1 for signal deaths; String spells the signal.
		return st.String()
	}
	if err != nil {
		return err.Error()
	}
	return "unknown"
}
