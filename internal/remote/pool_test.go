package remote

import (
	"strings"
	"sync"
	"testing"
	"time"

	"jkernel/internal/core"
)

// TestPoolAddRemove grows a pool at runtime, checks the new slot serves,
// and exercises the drain-aware Remove: a slot with a live connection is
// refused, a drained slot is killed and never respawned.
func TestPoolAddRemove(t *testing.T) {
	pool, err := StartPool(PoolOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	k := core.MustNew(core.Options{})

	w1, err := pool.Add()
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 2 || w1.Index != 1 {
		t.Fatalf("after Add: size=%d index=%d, want 2/1", pool.Size(), w1.Index)
	}
	conn, err := w1.Dial(k, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Import("echo"); err != nil {
		t.Fatalf("added worker does not serve: %v", err)
	}
	if w1.LiveConns() != 1 {
		t.Fatalf("live conns = %d, want 1", w1.LiveConns())
	}

	// Drain-aware: a live connection blocks removal.
	if err := pool.Remove(w1, 50*time.Millisecond); err == nil {
		t.Fatal("Remove succeeded with a live connection")
	} else if !strings.Contains(err.Error(), "live connection") {
		t.Fatalf("unexpected refusal: %v", err)
	}
	// The refused Remove must leave the slot supervised: kill it and it
	// restarts.
	if err := w1.Kill(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if conn2, err := w1.Dial(k, 10*time.Second); err != nil {
		t.Fatalf("slot not supervised after refused Remove: %v", err)
	} else {
		conn2.Close()
	}

	// Drained: removal succeeds, the slot is gone, and its process stays
	// dead (no respawn after the kill inside Remove).
	waitLive := time.Now().Add(5 * time.Second)
	for w1.LiveConns() != 0 && time.Now().Before(waitLive) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := pool.Remove(w1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 1 {
		t.Fatalf("size after Remove = %d, want 1", pool.Size())
	}
	if _, err := dialHandshake(k, w1.network, w1.addr, 500*time.Millisecond); err == nil {
		t.Fatal("removed worker came back")
	}

	// Indices stay monotonic: the next Add does not reuse 1.
	w2, err := pool.Add()
	if err != nil {
		t.Fatal(err)
	}
	if w2.Index != 2 {
		t.Fatalf("recycled slot index %d, want 2", w2.Index)
	}
}

// TestDialRacesKillRestart hammers the Dial/Kill race: while a client
// repeatedly dials a worker slot, the slot's process is killed over and
// over. Every Dial must either succeed against the restarted process or
// fail cleanly — no panic, no wedged handshake, and the slot must serve
// again once the killing stops. Run under -race this also checks the
// pool's slot bookkeeping against concurrent monitor respawns.
func TestDialRacesKillRestart(t *testing.T) {
	pool, err := StartPool(PoolOptions{Workers: 1, RestartDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	w := pool.Worker(0)
	k := core.MustNew(core.Options{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			w.Kill()
			time.Sleep(15 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := w.Dial(k, 2*time.Second)
		if err != nil {
			continue // the kill won this round; Dial failed cleanly
		}
		// A successful handshake may still race the next kill; any
		// invocation outcome is fine as long as nothing wedges.
		if proxy, ierr := conn.Import("echo"); ierr == nil {
			task := k.NewDetachedTask(conn.Domain(), "race")
			proxy.InvokeFrom(task, "Echo", "x")
		}
		conn.Close()
	}
	close(stop)
	wg.Wait()

	// The slot must recover once the killing stops.
	conn, err := w.Dial(k, 10*time.Second)
	if err != nil {
		t.Fatalf("worker never recovered: %v", err)
	}
	defer conn.Close()
	proxy, err := conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	task := k.NewDetachedTask(conn.Domain(), "post")
	res, err := proxy.InvokeFrom(task, "Echo", "alive")
	if err != nil || res[0] != "alive" {
		t.Fatalf("post-race invoke: %v %v", res, err)
	}
}
