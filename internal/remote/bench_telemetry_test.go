package remote

import (
	"testing"
	"time"

	"jkernel/internal/core"
)

// benchPair builds an app kernel connected to a service kernel over TCP
// loopback, mirroring jkbench's Table 10 setup.
func benchPair(b *testing.B, disable bool) (*Conn, *core.Capability, *core.Task, func()) {
	b.Helper()
	app := core.MustNew(core.Options{DisableTelemetry: disable, TelemetryNode: "bench-app"})
	svc := core.MustNew(core.Options{DisableTelemetry: disable, TelemetryNode: "bench-svc"})
	sd, err := svc.NewDomain(core.DomainConfig{Name: "svc"})
	if err != nil {
		b.Fatal(err)
	}
	cap, err := svc.CreateNativeCapability(sd, nullSvc{})
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.Export("null", cap); err != nil {
		b.Fatal(err)
	}
	ln, err := Listen(svc, "tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ad, err := app.NewDomain(core.DomainConfig{Name: "app"})
	if err != nil {
		b.Fatal(err)
	}
	task := app.NewDetachedTask(ad, "bench")
	conn, err := Dial(app, "tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	proxy, err := conn.Import("null")
	if err != nil {
		b.Fatal(err)
	}
	return conn, proxy, task, func() { conn.Close(); ln.Close() }
}

type nullSvc struct{}

func (nullSvc) Null() error { return nil }

func benchAsyncBatched(b *testing.B, disable bool) {
	conn, proxy, task, done := benchPair(b, disable)
	defer done()
	const window = 512
	futs := make([]*core.Future, 0, window)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; {
		w := window
		if w > b.N-n {
			w = b.N - n
		}
		futs = futs[:0]
		for i := 0; i < w; i++ {
			futs = append(futs, proxy.InvokeAsyncFrom(task, "Null"))
		}
		conn.Flush()
		for _, f := range futs {
			if _, err := f.Wait(); err != nil {
				b.Fatal(err)
			}
		}
		n += w
	}
	b.StopTimer()
	_ = time.Now()
}

func BenchmarkAsyncBatchedTelemetryOn(b *testing.B)  { benchAsyncBatched(b, false) }
func BenchmarkAsyncBatchedTelemetryOff(b *testing.B) { benchAsyncBatched(b, true) }
