package remote

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"jkernel/internal/core"
)

func TestBufClass(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, minBufClass}, {1, minBufClass}, {512, minBufClass},
		{513, 10}, {1024, 10}, {1025, 11},
		{maxFrame, maxBufClass},
	}
	for _, c := range cases {
		if got := bufClass(c.n); got != c.class {
			t.Errorf("bufClass(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestFrameBufRefcount(t *testing.T) {
	fb := getFrame(100)
	if cap(fb.b) < 100 || len(fb.b) != 0 {
		t.Fatalf("getFrame(100): len %d cap %d", len(fb.b), cap(fb.b))
	}
	fb.retain()
	fb.release()
	if fb.refs.Load() != 1 {
		t.Fatalf("refs after retain+release: %d", fb.refs.Load())
	}
	fb.release() // back to the pool
	defer func() {
		if recover() == nil {
			t.Fatal("release past zero did not panic")
		}
	}()
	fb.release()
}

func TestFrameBufGrowReclass(t *testing.T) {
	fb := getFrame(16) // minimum class
	fb.b = append(fb.b, make([]byte, 10_000)...)
	grown := cap(fb.b)
	fb.release() // must re-home by final capacity, not the original class
	fb2 := getFrame(grown)
	if cap(fb2.b) < 10_000 {
		t.Fatalf("reclassed buffer not reusable: cap %d", cap(fb2.b))
	}
	fb2.release()
}

func TestPoisonOnPut(t *testing.T) {
	SetBufferPoison(true)
	defer SetBufferPoison(false)
	fb := getFrame(64)
	fb.b = append(fb.b, []byte("payload-still-referenced")...)
	alias := fb.b
	fb.release()
	for i, c := range alias {
		if c != 0xDB {
			t.Fatalf("byte %d not poisoned after release: %q", i, alias)
		}
	}
}

// blobSvc serves deterministic payloads for the lifetime churn.
type blobSvc struct{}

func (blobSvc) Make(n, seed int64) ([]byte, error) {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(seed + int64(i))
	}
	return b, nil
}

func (blobSvc) EchoBlob(b []byte) ([]byte, error) { return b, nil }

func wantBlob(n, seed int64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(seed + int64(i))
	}
	return b
}

// TestBufferLifetimeChurn is the pool-lifetime regression: with poisoning
// on, every frame buffer recycled while still referenced would overwrite
// in-flight argument or result bytes with 0xDB. The churn mixes sync and
// async-batched invokes whose result payloads are retained well past the
// call, across payload sizes spanning several pool classes, and verifies
// every retained payload afterward. Run under -race in CI.
func TestBufferLifetimeChurn(t *testing.T) {
	SetBufferPoison(true)
	defer SetBufferPoison(false)

	p := newPair(t)
	p.export(t, "blob", blobSvc{})
	proxy, err := p.conn.Import("blob")
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 4
		rounds  = 200
	)
	sizes := []int64{0, 7, 100, 600, 5_000, 70_000}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			task := p.client.NewDetachedTask(p.clientDom, fmt.Sprintf("churn-%d", w))
			retained := make([][]byte, 0, rounds)
			expected := make([][]byte, 0, rounds)
			for r := 0; r < rounds; r++ {
				n := sizes[r%len(sizes)]
				seed := int64(w*1000 + r)
				if r%2 == 0 {
					res, err := proxy.InvokeFrom(task, "Make", n, seed)
					if err != nil {
						errs <- fmt.Errorf("worker %d round %d Make: %w", w, r, err)
						return
					}
					b, _ := res[0].([]byte)
					retained = append(retained, b)
					expected = append(expected, wantBlob(n, seed))
				} else {
					futs := []*core.Future{
						proxy.InvokeAsyncFrom(task, "EchoBlob", wantBlob(n, seed)),
						proxy.InvokeAsyncFrom(task, "Make", n/2+1, seed),
					}
					p.conn.Flush()
					for fi, fut := range futs {
						res, err := fut.Wait()
						if err != nil {
							errs <- fmt.Errorf("worker %d round %d async %d: %w", w, r, fi, err)
							return
						}
						b, _ := res[0].([]byte)
						retained = append(retained, b)
					}
					expected = append(expected, wantBlob(n, seed), wantBlob(n/2+1, seed))
				}
			}
			// Every retained payload must still hold its original bytes: a
			// buffer recycled while referenced would have been poisoned.
			for i := range retained {
				if !bytes.Equal(retained[i], expected[i]) && !(len(retained[i]) == 0 && len(expected[i]) == 0) {
					errs <- fmt.Errorf("worker %d: retained payload %d corrupted (len %d, want len %d)",
						w, i, len(retained[i]), len(expected[i]))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
