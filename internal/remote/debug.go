package remote

import (
	"net"
	"net/http"
	"net/http/pprof"

	"jkernel/internal/core"
	"jkernel/internal/telemetry"
)

// Opt-in debug listener: a worker (or any kernel host) can serve its live
// telemetry — metric snapshot, recent-trace ring, slow-call log — plus the
// stdlib profiler over HTTP. Nothing here runs unless explicitly enabled,
// so a worker without the flag pays zero.

// DebugMux builds the debug HTTP handler for one kernel: /debug/jk is the
// telemetry endpoint (snapshot by default, ?trace=<hexid> for one stitched
// trace), /debug/pprof/ the Go profiler. The process-global registry rides
// along so pool supervision metrics are visible too.
func DebugMux(k *core.Kernel) *http.ServeMux {
	cfg := telemetry.HandlerConfig{Registries: []*telemetry.Registry{telemetry.Default()}}
	if r := k.Telemetry(); r != nil {
		cfg.Registries = append(cfg.Registries, r)
	}
	if t := k.Tracer(); t != nil {
		cfg.Tracers = append(cfg.Tracers, t)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/jk", telemetry.Handler(cfg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer serves DebugMux(k) on a TCP addr ("host:port"; port 0
// picks a free one) and returns the bound address. The listener runs for
// the life of the process.
func StartDebugServer(k *core.Kernel, addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(ln, DebugMux(k))
	return ln.Addr(), nil
}
