package remote

import (
	"time"

	"jkernel/internal/core"
	"jkernel/internal/telemetry"
)

// Connection telemetry: frame counters by message type, batch occupancy,
// serve/client latency, capability faults, and per-connection table-size
// gauges (registered at NewConn, dropped at shutdown so a churned
// connection leaves no stale gauges behind). A kernel with telemetry
// disabled yields a nil *connMetrics; every use is nil-guarded.

// msgName labels a wire message type for metric names.
func msgName(t byte) string {
	switch t {
	case msgInvoke:
		return "invoke"
	case msgReply:
		return "reply"
	case msgRevoke:
		return "revoke"
	case msgLookup:
		return "lookup"
	case msgLookupReply:
		return "lookup_reply"
	case msgPing:
		return "ping"
	case msgPong:
		return "pong"
	case msgBatchInvoke:
		return "batch_invoke"
	case msgBatchReply:
		return "batch_reply"
	case msgRelease:
		return "release"
	case msgManifest:
		return "manifest"
	case msgManifestReply:
		return "manifest_reply"
	case msgHandoff:
		return "handoff"
	case msgRedeem:
		return "redeem"
	case msgRedeemReply:
		return "redeem_reply"
	default:
		return "other"
	}
}

const maxMsgType = msgRedeemReply

type connMetrics struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	peer   string // the connection's host domain name ("remote-<n>")

	// Frame counters indexed by message type, shared kernel-wide (one set
	// of instruments regardless of connection count).
	framesIn  [maxMsgType + 2]*telemetry.Counter
	framesOut [maxMsgType + 2]*telemetry.Counter
	badFrames *telemetry.Counter

	batchOccupancy *telemetry.Histogram
	serveLatency   *telemetry.Histogram
	clientLatency  *telemetry.Histogram
	capFaults      *telemetry.Counter

	gaugeNames []string // per-conn gauges to drop at shutdown
}

// newConnMetrics wires c into its kernel's registry; nil when the kernel
// has telemetry disabled.
func newConnMetrics(k *core.Kernel, c *Conn) *connMetrics {
	reg := k.Telemetry()
	if reg == nil {
		return nil
	}
	m := &connMetrics{
		reg:            reg,
		tracer:         k.Tracer(),
		peer:           c.domain.Name,
		badFrames:      reg.Counter("remote.frames_in.malformed"),
		batchOccupancy: reg.Histogram("remote.batch.occupancy"),
		serveLatency:   reg.Histogram("remote.serve.latency_ns"),
		clientLatency:  reg.Histogram("remote.invoke.latency_ns"),
		capFaults:      reg.Counter("remote.capability_faults"),
	}
	for t := byte(1); t <= maxMsgType; t++ {
		m.framesIn[t] = reg.Counter("remote.frames_in." + msgName(t))
		m.framesOut[t] = reg.Counter("remote.frames_out." + msgName(t))
	}
	m.framesIn[maxMsgType+1] = reg.Counter("remote.frames_in.other")
	m.framesOut[maxMsgType+1] = reg.Counter("remote.frames_out.other")

	// Per-connection live gauges: table occupancy (the wire-table leak
	// diagnostics of TableSizes), release backlog, executor pool size.
	base := "remote.conn." + c.domain.Name
	gauge := func(name string, fn func() int64) {
		reg.GaugeFunc(name, fn)
		m.gaugeNames = append(m.gaugeNames, name)
	}
	gauge(base+".exports", func() int64 { return int64(c.TableSizes().Exports) })
	gauge(base+".imports", func() int64 { return int64(c.TableSizes().Imports) })
	gauge(base+".pending", func() int64 { return int64(c.TableSizes().Pending) })
	gauge(base+".pre_revoked", func() int64 { return int64(c.TableSizes().PreRevoked) })
	gauge(base+".release_backlog", func() int64 { return int64(c.batch.releaseBacklog()) })
	gauge(base+".exec_workers", func() int64 { return int64(c.exec.workers.Load()) })
	return m
}

// drop removes the per-connection gauges (connection teardown).
func (m *connMetrics) drop() {
	if m == nil {
		return
	}
	for _, name := range m.gaugeNames {
		m.reg.DropGauge(name)
	}
}

func (m *connMetrics) frameIn(t byte) {
	if m == nil {
		return
	}
	if t == 0 || t > maxMsgType {
		t = maxMsgType + 1
	}
	m.framesIn[t].Inc()
}

func (m *connMetrics) frameOut(t byte) {
	if m == nil {
		return
	}
	if t == 0 || t > maxMsgType {
		t = maxMsgType + 1
	}
	m.framesOut[t].Inc()
}

func (m *connMetrics) capFault(n int64) {
	if m != nil {
		m.capFaults.Add(n)
	}
}

// sampleStart makes the per-call profiling decision for one outbound wire
// invoke: traced calls always profile; untraced calls profile 1 in 64. It
// returns the call's start timestamp, or the zero time for sampled-out
// calls — which then skip both clock reads, the latency histogram, and
// the span, while the frame counters still see every call.
func (m *connMetrics) sampleStart(traced bool) time.Time {
	if m == nil {
		return time.Time{}
	}
	if traced || m.tracer.SampleUntraced() {
		return time.Now()
	}
	return time.Time{}
}

// serveStart is sampleStart for the serving side, with the decision made
// by the caller (off the frame's request id, which costs no shared
// counter).
func (m *connMetrics) serveStart(profiled bool) time.Time {
	if m == nil || !profiled {
		return time.Time{}
	}
	return time.Now()
}

// clientSpan records the caller side of one wire invoke (sync or async,
// enqueue to reply). A zero start means the call fell outside the
// untraced sample (see sampleStart): the frame counters already counted
// it; skip the latency histogram and span.
func (m *connMetrics) clientSpan(tc telemetry.TraceContext, spanID uint64, method string, start time.Time, err error) {
	if m == nil || start.IsZero() {
		return
	}
	m.clientLatency.ObserveSince(start)
	dur := time.Since(start)
	if tc.TraceID == 0 && err == nil {
		// Untraced sampled calls feed the histogram only; a span is
		// recorded just for failures and slow outliers (see
		// kernelMetrics.span for the rationale).
		if thr := m.tracer.SlowThreshold(); thr <= 0 || dur < thr {
			return
		}
	}
	if spanID == 0 {
		spanID = telemetry.NewID()
	}
	s := &telemetry.Span{
		TraceID: tc.TraceID,
		SpanID:  spanID,
		Parent:  tc.SpanID,
		Kind:    "client",
		Callee:  m.peer,
		Method:  method,
		Start:   start,
		Dur:     dur,
	}
	if s.TraceID == 0 {
		s.TraceID = s.SpanID // untraced calls get a local single-span trace
	}
	if err != nil {
		s.Err = err.Error()
	}
	m.tracer.Record(s)
}

// serverSpan records the serving side of one inbound invoke. A zero
// start means the frame fell outside the untraced sample: skip the
// latency histogram and span. spanID is zero for untraced frames (a
// fresh id is minted for the local span).
func (m *connMetrics) serverSpan(f invokeFrame, spanID uint64, callee string, start time.Time, err error) {
	if m == nil || start.IsZero() {
		return
	}
	m.serveLatency.ObserveSince(start)
	dur := time.Since(start)
	if f.traceID == 0 && err == nil {
		if thr := m.tracer.SlowThreshold(); thr <= 0 || dur < thr {
			return
		}
	}
	if spanID == 0 {
		spanID = telemetry.NewID()
	}
	s := &telemetry.Span{
		TraceID: f.traceID,
		SpanID:  spanID,
		Parent:  f.parentSpan,
		Kind:    "server",
		Caller:  m.peer,
		Callee:  callee,
		Method:  f.method,
		Start:   start,
		Dur:     dur,
	}
	if s.TraceID == 0 {
		s.TraceID = s.SpanID
	}
	if err != nil {
		s.Err = err.Error()
	}
	m.tracer.Record(s)
}
