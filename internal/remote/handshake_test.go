package remote

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"jkernel/internal/core"
)

// A listener that accepts connections but never speaks the protocol — the
// exact shape of the ping-probe race: a dying worker whose backlog still
// accepts. The deadline-bound handshake must give up within its budget.
func TestDialDeadlineAgainstDeadbeatListener(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "deadbeat.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			defer nc.Close() // hold it open, never answer
		}
	}()

	k := core.MustNew(core.Options{})
	w := &PoolWorker{network: "unix", addr: sock}
	const timeout = 500 * time.Millisecond
	start := time.Now()
	conn, err := w.Dial(k, timeout)
	elapsed := time.Since(start)
	if err == nil {
		conn.Close()
		t.Fatal("Dial succeeded against a listener that never serves")
	}
	// The old probe waited a fixed 2s per ping regardless of the caller's
	// deadline; the handshake must not overshoot it by more than slack.
	if elapsed > timeout+500*time.Millisecond {
		t.Fatalf("Dial overshot its deadline: %v (timeout %v): %v", elapsed, timeout, err)
	}
	if elapsed < timeout/2 {
		t.Fatalf("Dial gave up before its deadline: %v (timeout %v): %v", elapsed, timeout, err)
	}
}

// SIGKILL the worker while connects are in flight: every Dial must return
// within its deadline (the kill can land between accept and serve, which
// is the backlog race), and once the pool restarts the worker a Dial must
// succeed against the fresh process.
func TestDialDuringWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	sup := core.MustNew(core.Options{})
	pool, err := StartPool(PoolOptions{Workers: 1, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	w := pool.Worker(0)

	for round := 0; round < 3; round++ {
		type dialResult struct {
			conn *Conn
			err  error
		}
		res := make(chan dialResult, 1)
		go func() {
			conn, err := w.Dial(sup, 10*time.Second)
			res <- dialResult{conn, err}
		}()
		// Land the kill while the dial/handshake is in progress. The kill
		// may race the pool's own restart of the previous round's kill, in
		// which case there is briefly no process to kill — also fine, the
		// dial is still racing a worker death.
		time.Sleep(time.Duration(round) * 3 * time.Millisecond)
		if err := w.Kill(); err != nil {
			t.Logf("round %d kill raced the restart: %v", round, err)
		}
		select {
		case r := <-res:
			// Either outcome is legal — connected to the old incarnation
			// just before the kill, to the restarted one, or timed out —
			// as long as it returned and didn't wedge.
			if r.conn != nil {
				r.conn.Close()
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("round %d: Dial hung past its deadline through a worker kill", round)
		}
	}

	// The slot must come back: a clean handshake against the restarted
	// worker, well within the deadline.
	conn, err := w.Dial(sup, 10*time.Second)
	if err != nil {
		t.Fatalf("restarted worker not reachable: %v", err)
	}
	defer conn.Close()
	if err := conn.Ping(2 * time.Second); err != nil {
		t.Fatalf("restarted worker not serving: %v", err)
	}
}
