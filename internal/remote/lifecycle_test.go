package remote

import (
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jkernel/internal/core"
)

// Capability-lifecycle tests: the export table is reference-counted (a
// handle released by the importer, or a gate revocation, drops the entry
// and its revocation hook), imports die by explicit ReleaseProxy or local
// revocation, and inline imports fetch their method manifest lazily. The
// churn regression at the bottom is the leak gate: per-connection tables
// must return to baseline after ten thousand full cycles.

// serverConn waits for the listener to surface its accepted connection.
func serverConn(t testing.TB, ln *Listener) *Conn {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if conns := ln.Conns(); len(conns) == 1 {
			return conns[0]
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("listener never surfaced its connection")
	return nil
}

// waitTables polls until the connection's tables match want.
func waitTables(t testing.TB, what string, c *Conn, want TableSizes) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var got TableSizes
	for time.Now().Before(deadline) {
		if got = c.TableSizes(); got == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s tables never drained: got %+v, want %+v", what, got, want)
}

// waitHooks polls until the gate's revocation-hook count reaches want.
func waitHooks(t testing.TB, what string, g *core.Gate, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if g.RevokeHooks() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s still holds %d revocation hooks, want %d", what, g.RevokeHooks(), want)
}

// Releasing an imported proxy drops the exporter's table entry — and its
// gate revocation hook — without revoking the capability itself: a fresh
// import is a fresh grant.
func TestReleaseProxyDropsExport(t *testing.T) {
	p := newPair(t)
	cap := p.export(t, "echo", echoSvc{})
	sc := serverConn(t, p.ln)

	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.TableSizes(); got.Exports != 1 || got.Unhook != 1 {
		t.Fatalf("after import: %+v", got)
	}
	if cap.Gate().RevokeHooks() != 1 {
		t.Fatalf("exported gate holds %d hooks, want 1", cap.Gate().RevokeHooks())
	}

	if !ReleaseProxy(proxy) {
		t.Fatal("ReleaseProxy returned false for a live wire proxy")
	}
	if _, err := proxy.InvokeFrom(p.task, "Null"); !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("released proxy still invokable: %v", err)
	}
	waitTables(t, "server", sc, TableSizes{})
	waitTables(t, "client", p.conn, TableSizes{})
	waitHooks(t, "exported gate", cap.Gate(), 0)
	if cap.Revoked() {
		t.Fatal("release revoked the exporter's capability")
	}

	// A fresh import is a fresh grant over a fresh table entry.
	again, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	if res, err := again.InvokeFrom(p.task, "Echo", "back"); err != nil || res[0] != any("back") {
		t.Fatalf("re-imported proxy broken: %#v %v", res, err)
	}

	// ReleaseProxy is proxy-only: local capabilities refuse.
	if ReleaseProxy(cap) {
		t.Fatal("ReleaseProxy accepted a local capability")
	}
}

// Satellite regression: a revoked gate must leave exports, exportIDs, and
// the hook table immediately — not at connection shutdown.
func TestRevokedGateLeavesTables(t *testing.T) {
	p := newPair(t)
	cap := p.export(t, "echo", echoSvc{})
	sc := serverConn(t, p.ln)

	proxy, err := p.conn.Import("echo")
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.TableSizes(); got.Exports != 1 {
		t.Fatalf("after import: %+v", got)
	}
	cap.Revoke()
	waitTables(t, "server", sc, TableSizes{})
	// The revocation push kills the client proxy, whose release empties
	// the import table too.
	waitTables(t, "client", p.conn, TableSizes{})
	if _, err := proxy.InvokeFrom(p.task, "Null"); !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("proxy survived gate revocation: %v", err)
	}
}

// stableMaker returns the same capability from every call, so repeated
// fetches re-send one export id — the re-export path of the release
// generation counter.
type stableMaker struct {
	cap *core.Capability
}

func (s *stableMaker) Get() (*core.Capability, error) { return s.cap, nil }

// blockSvc parks calls until released, to hold invokes in flight.
type blockSvc struct {
	gate chan struct{}
}

func (b *blockSvc) Wait() error { <-b.gate; return nil }
func (b *blockSvc) Ping() error { return nil }

// Satellite regression: replacing a released/revoked cached proxy must
// not strand in-flight async invokes on the old proxy — they resolve with
// the capability fault the moment the local gate is severed.
func TestReplacedProxyResolvesInflightFutures(t *testing.T) {
	p := newPair(t)
	blocker := &blockSvc{gate: make(chan struct{})}
	bcap, err := p.server.CreateNativeCapability(p.serverDom, blocker)
	if err != nil {
		t.Fatal(err)
	}
	p.export(t, "maker", &stableMaker{cap: bcap})
	maker, err := p.conn.Import("maker")
	if err != nil {
		t.Fatal(err)
	}

	res, err := maker.InvokeFrom(p.task, "Get")
	if err != nil {
		t.Fatal(err)
	}
	first := res[0].(*core.Capability)
	fut := first.InvokeAsyncFrom(p.task, "Wait")
	p.conn.Flush()

	// Sever the local handle while the call is in flight: the future must
	// resolve with the capability fault, not hang behind the blocked call.
	ReleaseProxy(first)
	select {
	case <-fut.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight future never resolved after its proxy was released")
	}
	if _, err := fut.Wait(); !errors.Is(err, core.ErrRevoked) {
		t.Fatalf("stale future resolved with %v, want ErrRevoked", err)
	}

	// Re-fetching the same export yields a working replacement proxy.
	res, err = maker.InvokeFrom(p.task, "Get")
	if err != nil {
		t.Fatal(err)
	}
	second := res[0].(*core.Capability)
	if second.Revoked() {
		t.Fatal("replacement proxy arrived revoked")
	}
	if _, err := second.InvokeFrom(p.task, "Ping"); err != nil {
		t.Fatalf("replacement proxy broken: %v", err)
	}
	close(blocker.gate) // let the abandoned Wait drain; its reply is dropped
}

// Inline imports (capability results/arguments) arrive without a method
// manifest; the first Methods() call fetches it with one round trip and
// caches it on the proxy.
func TestInlineImportLazyManifest(t *testing.T) {
	p := newPair(t)
	p.export(t, "maker", &makerSvc{k: p.server, d: p.serverDom})
	maker, err := p.conn.Import("maker")
	if err != nil {
		t.Fatal(err)
	}
	res, err := maker.InvokeFrom(p.task, "MakeCounter")
	if err != nil {
		t.Fatal(err)
	}
	counter := res[0].(*core.Capability)

	pt := proxyOf(counter)
	if pt == nil {
		t.Fatal("inline result is not a wire proxy")
	}
	pt.mmu.Lock()
	prefetched := pt.fetched
	pt.mmu.Unlock()
	if prefetched {
		t.Fatal("inline import arrived with a manifest; the lazy path is untested")
	}

	ms := counter.Methods()
	if len(ms) != 1 || ms[0] != "Add" {
		t.Fatalf("lazy manifest: %v, want [Add]", ms)
	}

	// The manifest is cached: it survives the exporter dropping the
	// export entry (which would fail a second wire fetch).
	ReleaseProxy(counter)
	waitTables(t, "client", p.conn, TableSizes{Imports: 1}) // maker remains
	pt.mmu.Lock()
	cached := pt.fetched
	pt.mmu.Unlock()
	if !cached {
		t.Fatal("manifest not cached after fetch")
	}
	if ms := pt.ProxyMethods(); len(ms) != 1 || ms[0] != "Add" {
		t.Fatalf("cached manifest: %v, want [Add]", ms)
	}

	// A manifest fetch for a dropped export reports cleanly (no methods),
	// and does not fault the connection.
	if ms, err := p.conn.fetchManifest(pt.exportID); err == nil {
		t.Fatalf("manifest fetch for dropped export %d returned %v", pt.exportID, ms)
	}
	if res, err := maker.InvokeFrom(p.task, "MakeCounter"); err != nil || res[0] == nil {
		t.Fatalf("connection damaged by dead-export manifest fetch: %v", err)
	}
}

// Satellite regression: a peer pushing revocations for exports it never
// ships must not grow preRevoked without bound — the connection faults at
// the cap.
func TestPreRevokedCapFaultsConnection(t *testing.T) {
	server := core.MustNew(core.Options{})
	sock := filepath.Join(t.TempDir(), "prerevoke.sock")
	ln, err := Listen(server, "unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	nc, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	for i := 0; i <= maxPreRevoked; i++ {
		var w wbuf
		w.u8(msgRevoke)
		w.uvarint(uint64(1000 + i))
		w.u8(revokeReasonRevoked)
		if err := writeFrame(nc, w.b); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// The server may get a feature-probe ping out before the flood faults
	// it, so drain frames until the connection actually dies.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 4096)
	for {
		_, err := nc.Read(buf)
		if err == nil {
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatal("connection survived a parked-revocation flood")
		}
		return // faulted, as required
	}
}

// churnMaker mints a fresh capability per call and can revoke the last
// one it handed out — the server half of the churn cycle.
type churnMaker struct {
	k *core.Kernel
	d *core.Domain

	mu   sync.Mutex
	last *core.Capability
}

func (m *churnMaker) Make() (*core.Capability, error) {
	cap, err := m.k.CreateNativeCapability(m.d, &counterSvc{})
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.last = cap
	m.mu.Unlock()
	return cap, nil
}

func (m *churnMaker) RevokeLast() error {
	m.mu.Lock()
	last := m.last
	m.last = nil
	m.mu.Unlock()
	if last != nil {
		last.Revoke()
	}
	return nil
}

// takerSvc receives a capability and releases it — the callee's half of
// the handle-discipline contract for inbound inline imports.
type takerSvc struct{}

func (takerSvc) Take(cap *core.Capability) error {
	if cap == nil {
		return errors.New("no capability")
	}
	if !ReleaseProxy(cap) {
		return errors.New("argument was not a wire proxy")
	}
	return nil
}

// leakProbe is registered only on the client's seri registry, so the
// server can decode the capability that precedes it in an argument
// vector but must fail on the probe itself.
type leakProbe struct {
	N int64
}

// A vector that fails to decode mid-stream must release the inline
// proxies it already minted: nothing else will ever own them, so without
// the decode rollback both ends' tables leak one entry per failed call.
func TestFailedDecodeReleasesMintedProxies(t *testing.T) {
	p := newPair(t)
	p.export(t, "taker", takerSvc{})
	sc := serverConn(t, p.ln)
	taker, err := p.conn.Import("taker")
	if err != nil {
		t.Fatal(err)
	}
	p.client.SeriRegistry().Register("LeakProbe", leakProbe{})

	serverBase := TableSizes{Exports: 1, ExportIDs: 1, Unhook: 1}
	clientBase := TableSizes{Imports: 1}
	waitTables(t, "server pre-fail", sc, serverBase)

	local, err := p.client.CreateNativeCapability(p.clientDom, &counterSvc{})
	if err != nil {
		t.Fatal(err)
	}
	// The capability decodes (and is imported server-side) before the
	// unregistered probe fails the vector; the call must error without
	// stranding that import or the client's export reference.
	if _, err := taker.InvokeFrom(p.task, "Take", local, leakProbe{N: 7}); err == nil {
		t.Fatal("invoke with an undecodable argument succeeded")
	}
	waitTables(t, "server post-fail", sc, serverBase)
	waitTables(t, "client post-fail", p.conn, clientBase)
	waitHooks(t, "client-local gate", local.Gate(), 0)
	if local.Revoked() {
		t.Fatal("decode rollback revoked the sender's capability")
	}
}

// The leak gate: ten thousand export/import/revoke/release cycles over
// one connection, in both directions, must leave every per-connection
// table at its pre-churn size.
func TestChurnTablesReturnToBaseline(t *testing.T) {
	cycles := 10000
	if testing.Short() {
		cycles = 1000
	}
	p := newPair(t)
	p.export(t, "maker", &churnMaker{k: p.server, d: p.serverDom})
	p.export(t, "taker", takerSvc{})
	sc := serverConn(t, p.ln)

	maker, err := p.conn.Import("maker")
	if err != nil {
		t.Fatal(err)
	}
	taker, err := p.conn.Import("taker")
	if err != nil {
		t.Fatal(err)
	}

	// Steady state: the two lookup imports and nothing else.
	serverBase := TableSizes{Exports: 2, ExportIDs: 2, Unhook: 2}
	clientBase := TableSizes{Imports: 2}
	waitTables(t, "server pre-churn", sc, serverBase)
	waitTables(t, "client pre-churn", p.conn, clientBase)

	for i := 0; i < cycles; i++ {
		res, err := maker.InvokeFrom(p.task, "Make")
		if err != nil {
			t.Fatalf("cycle %d: Make: %v", i, err)
		}
		cap := res[0].(*core.Capability)
		switch i % 5 {
		case 0:
			// Exercise the lazy manifest before releasing.
			if ms := cap.Methods(); len(ms) != 1 || ms[0] != "Add" {
				t.Fatalf("cycle %d: manifest %v", i, ms)
			}
			ReleaseProxy(cap)
		case 1:
			// Server-side revocation: the push must clear both ends.
			if _, err := maker.InvokeFrom(p.task, "RevokeLast"); err != nil {
				t.Fatalf("cycle %d: RevokeLast: %v", i, err)
			}
		case 2:
			// The client→server direction: ship a fresh local capability
			// inline; the taker releases it on arrival.
			local, err := p.client.CreateNativeCapability(p.clientDom, &counterSvc{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := taker.InvokeFrom(p.task, "Take", local); err != nil {
				t.Fatalf("cycle %d: Take: %v", i, err)
			}
			ReleaseProxy(cap)
		default:
			if _, err := cap.InvokeFrom(p.task, "Add", int64(1)); err != nil {
				t.Fatalf("cycle %d: Add: %v", i, err)
			}
			ReleaseProxy(cap)
		}
	}

	waitTables(t, "server post-churn", sc, serverBase)
	waitTables(t, "client post-churn", p.conn, clientBase)

	// The telemetry gauges must agree with the drained tables: per-conn
	// table gauges back at their pre-churn values, nothing pending, and no
	// async call still counted in flight.
	cbase := "remote.conn." + p.conn.domain.Name
	waitGauges(t, "client post-churn", p.client, map[string]int64{
		cbase + ".imports":         2,
		cbase + ".pending":         0,
		cbase + ".release_backlog": 0,
		"core.async.inflight":      0,
	})
	sbase := "remote.conn." + sc.domain.Name
	waitGauges(t, "server post-churn", p.server, map[string]int64{
		sbase + ".exports":     2,
		sbase + ".pending":     0,
		sbase + ".pre_revoked": 0,
		"core.async.inflight":  0,
	})
}

// waitGauges polls a kernel's registry snapshot until every named gauge
// reads its wanted value.
func waitGauges(t testing.TB, what string, k *core.Kernel, want map[string]int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var got map[string]int64
	for time.Now().Before(deadline) {
		got = k.Telemetry().Snapshot().Gauges
		ok := true
		for name, v := range want {
			if got[name] != v {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s gauges never returned to baseline: got %v, want %v", what, got, want)
}

// Async churn: released handles queued behind batched invokes must drain
// the same way — a fan-out wave followed by a release sweep returns to
// baseline.
func TestChurnAsyncReleaseSweep(t *testing.T) {
	p := newPair(t)
	p.export(t, "maker", &churnMaker{k: p.server, d: p.serverDom})
	sc := serverConn(t, p.ln)
	maker, err := p.conn.Import("maker")
	if err != nil {
		t.Fatal(err)
	}
	serverBase := TableSizes{Exports: 1, ExportIDs: 1, Unhook: 1}
	waitTables(t, "server pre-sweep", sc, serverBase)

	const wave = 256
	caps := make([]*core.Capability, 0, wave)
	for i := 0; i < wave; i++ {
		res, err := maker.InvokeFrom(p.task, "Make")
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, res[0].(*core.Capability))
	}
	futs := make([]*core.Future, 0, wave)
	for _, cap := range caps {
		futs = append(futs, cap.InvokeAsyncFrom(p.task, "Add", int64(1)))
	}
	p.conn.Flush()
	if err := core.WaitAll(futs...); err != nil {
		t.Fatal(err)
	}
	for _, cap := range caps {
		ReleaseProxy(cap)
	}
	p.conn.Flush()
	waitTables(t, "server post-sweep", sc, serverBase)
	waitTables(t, "client post-sweep", p.conn, TableSizes{Imports: 1})
}
