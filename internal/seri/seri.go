// Package seri is the J-Kernel's default argument copier for native (Go)
// targets: a general, reflection-driven object-graph serializer in the
// role of Java serialization. Marshalling writes a self-describing byte
// stream (the "intermediate byte array" whose cost Table 4 measures);
// unmarshalling rebuilds an isomorphic graph that shares no mutable memory
// with the source. Cycles and aliasing are preserved through reference
// tags, exactly like Java serialization's handle table.
//
// Types containing struct values must be registered by name so the decoder
// can rebuild them; this mirrors serialVersionUID-style class descriptors
// without pulling in unsafe tricks.
package seri

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
)

// Stream tags.
const (
	tagNil = iota
	tagBool
	tagInt
	tagUint
	tagFloat
	tagString
	tagBytes
	tagSlice
	tagMap
	tagStruct
	tagPtr
	tagRef   // back-reference to an already-encoded object
	tagIface // dynamic value: type name + value
	tagCap   // capability reference: passes by handle, never by copy
)

// Registry maps type names to concrete types for decoding. A nil *Registry
// is valid and knows only primitive shapes.
//
// Registering a struct type also compiles a generated marshaler for it (see
// fastpath.go): a per-type plan of closures over the precomputed field
// layout that the encoder and decoder consult before falling back to the
// generic reflect walker. Registration is rare and lookups are the hot
// path, so the registry keeps its tables in an immutable snapshot swapped
// atomically on Register — readers never lock.
type Registry struct {
	mu    sync.Mutex // serializes Register/SetFastpath (writers only)
	state atomic.Pointer[regState]
}

// regState is one immutable registry snapshot.
type regState struct {
	fast        bool // generated marshalers enabled (default true)
	byName      map[string]reflect.Type
	byType      map[reflect.Type]string
	plans       map[reflect.Type]*typePlan
	plansByName map[string]*typePlan
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	r.state.Store(&regState{
		fast:        true,
		byName:      make(map[string]reflect.Type),
		byType:      make(map[reflect.Type]string),
		plans:       make(map[reflect.Type]*typePlan),
		plansByName: make(map[string]*typePlan),
	})
	return r
}

// clone copies s for a write; the maps are duplicated so the previous
// snapshot stays valid for concurrent readers.
func (s *regState) clone() *regState {
	n := &regState{
		fast:        s.fast,
		byName:      make(map[string]reflect.Type, len(s.byName)+1),
		byType:      make(map[reflect.Type]string, len(s.byType)+1),
		plans:       make(map[reflect.Type]*typePlan, len(s.plans)+1),
		plansByName: make(map[string]*typePlan, len(s.plansByName)+1),
	}
	for k, v := range s.byName {
		n.byName[k] = v
	}
	for k, v := range s.byType {
		n.byType[k] = v
	}
	for k, v := range s.plans {
		n.plans[k] = v
	}
	for k, v := range s.plansByName {
		n.plansByName[k] = v
	}
	return n
}

// Register binds name to the dynamic type of sample (a value, not a
// pointer, for struct types; pointer types register their element too).
// Struct types get a generated marshaler compiled here, at register time,
// so no call ever pays the layout walk.
//
//jk:wire-register 1
func (r *Registry) Register(name string, sample any) {
	t := reflect.TypeOf(sample)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.state.Load().clone()
	s.byName[name] = t
	s.byType[t] = name
	if t.Kind() == reflect.Struct {
		p := compilePlan(name, t)
		s.plans[t] = p
		s.plansByName[name] = p
	}
	r.state.Store(s)
}

// SetFastpath toggles the generated marshalers (on by default). With the
// fast path off, every encode and decode goes through the generic reflect
// walker — the two must produce byte-identical streams, which is what the
// differential fuzz target holds them to.
func (r *Registry) SetFastpath(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.state.Load().clone()
	s.fast = on
	r.state.Store(s)
}

func (r *Registry) nameOf(t reflect.Type) (string, bool) {
	if r == nil {
		return "", false
	}
	s := r.state.Load()
	n, ok := s.byType[t]
	return n, ok
}

func (r *Registry) typeOf(name string) (reflect.Type, bool) {
	if r == nil {
		return nil, false
	}
	s := r.state.Load()
	t, ok := s.byName[name]
	return t, ok
}

// planFor returns the generated marshaler plan for t, or nil when t is
// unregistered or the fast path is disabled.
func (r *Registry) planFor(t reflect.Type) *typePlan {
	if r == nil {
		return nil
	}
	s := r.state.Load()
	if !s.fast {
		return nil
	}
	return s.plans[t]
}

// External resolves values that cross the stream by reference rather than
// by copy — the J-Kernel's capabilities. The encoder offers every pointer
// and interface value to EncodeExternal; a (handle, true) answer writes a
// capability-reference tag instead of a deep copy, and the decoder hands
// the handle back to DecodeExternal to produce the local stand-in (the
// original capability, or a proxy for a remote one).
type External interface {
	// EncodeExternal reports whether v travels by reference, and under
	// which handle.
	EncodeExternal(v any) (handle uint64, ok bool)
	// DecodeExternal resolves a handle read from the stream.
	DecodeExternal(handle uint64) (any, error)
}

// Marshal encodes v into a fresh byte slice.
func Marshal(r *Registry, v any) ([]byte, error) {
	return MarshalExt(r, v, nil)
}

// MarshalExt is Marshal with an External hook for capability references.
func MarshalExt(r *Registry, v any, ext External) ([]byte, error) {
	return AppendMarshalExt(nil, r, v, ext)
}

// encPool recycles encoders (and their alias-tracking maps) across calls;
// the per-encode state is reset on put, and the seen map keeps its buckets
// warm, so steady-state marshalling allocates only the output it grows.
var encPool = sync.Pool{
	New: func() any { return &encoder{seen: make(map[unsafePtr]uint64)} },
}

// AppendMarshalExt encodes v like MarshalExt but appends the stream to dst
// and returns the extended slice (which may have been reallocated, exactly
// like append). It is the zero-copy entry point for transports that encode
// directly into a framed output buffer instead of paying an intermediate
// byte array per payload.
func AppendMarshalExt(dst []byte, r *Registry, v any, ext External) ([]byte, error) {
	e := encPool.Get().(*encoder)
	e.reg, e.ext, e.buf = r, ext, dst
	err := e.encodeIface(reflect.ValueOf(v))
	buf := e.buf
	e.reg, e.ext, e.buf = nil, nil, nil
	if e.next != 0 {
		clear(e.seen)
		e.next = 0
	}
	encPool.Put(e)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// Unmarshal decodes a stream produced by Marshal.
func Unmarshal(r *Registry, data []byte) (any, error) {
	return UnmarshalExt(r, data, nil)
}

// decPool recycles decoders. The objs table is cleared (dropping its
// references into the decoded graph) before put, and oversized tables are
// released so one huge decode does not pin its footprint forever.
var decPool = sync.Pool{
	New: func() any { return &decoder{} },
}

// UnmarshalExt is Unmarshal with an External hook for capability
// references. A stream containing capability references fails to decode
// without one.
func UnmarshalExt(r *Registry, data []byte, ext External) (any, error) {
	d := decPool.Get().(*decoder)
	d.reg, d.ext, d.buf, d.pos, d.depth = r, ext, data, 0, 0
	v, err := d.decodeIface()
	if err == nil && d.pos != len(d.buf) {
		err = fmt.Errorf("seri: %d trailing bytes", len(d.buf)-d.pos)
	}
	d.reg, d.ext, d.buf = nil, nil, nil
	if cap(d.objs) > 1024 {
		d.objs = nil
	} else {
		clear(d.objs)
		d.objs = d.objs[:0]
	}
	decPool.Put(d)
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Copy deep-copies v through the serialized form — the LRMI default path.
func Copy(r *Registry, v any) (any, error) {
	data, err := Marshal(r, v)
	if err != nil {
		return nil, err
	}
	return Unmarshal(r, data)
}

// unsafePtr identifies heap cells for alias/cycle detection without unsafe:
// pointers, maps, and slices hash by their reflect pointer. Slices include
// their length so overlapping slices of one array are not conflated.
type unsafePtr struct {
	p uintptr
	t reflect.Type
	n int
}

type encoder struct {
	reg  *Registry
	ext  External
	buf  []byte
	next uint64
	seen map[unsafePtr]uint64
}

// encodeExternal writes a capability reference when the External hook
// claims v. Only pointer and interface kinds can be capabilities, so the
// hook is not consulted for primitives and containers.
func (e *encoder) encodeExternal(v reflect.Value) (bool, error) {
	if e.ext == nil || v.Kind() != reflect.Ptr || v.IsNil() || !v.CanInterface() {
		return false, nil
	}
	h, ok := e.ext.EncodeExternal(v.Interface())
	if !ok {
		return false, nil
	}
	e.byte(tagCap)
	e.uvarint(h)
	return true, nil
}

func (e *encoder) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *encoder) uvarint(u uint64) { e.buf = binary.AppendUvarint(e.buf, u) }
func (e *encoder) varint(i int64)   { e.buf = binary.AppendVarint(e.buf, i) }
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// encodeIface writes a dynamically typed value: tagIface + type name +
// payload for registered/primitive types.
func (e *encoder) encodeIface(v reflect.Value) error {
	if !v.IsValid() {
		e.byte(tagNil)
		return nil
	}
	// Unwrap interface values.
	for v.Kind() == reflect.Interface && !v.IsNil() {
		v = v.Elem()
	}
	if v.Kind() == reflect.Interface {
		e.byte(tagNil)
		return nil
	}
	if done, err := e.encodeExternal(v); done || err != nil {
		return err
	}
	// Registered structs take the generated marshaler: one plan lookup
	// yields both the wire name and the compiled field appenders.
	if v.Kind() == reflect.Struct {
		if p := e.reg.planFor(v.Type()); p != nil {
			e.byte(tagIface)
			e.str(p.name)
			return p.appendTo(e, v)
		}
	}
	e.byte(tagIface)
	name, err := e.typeName(v.Type())
	if err != nil {
		return err
	}
	e.str(name)
	return e.encode(v)
}

// typeName renders a structural name for primitives and container shapes,
// and the registered name for named struct types.
func (e *encoder) typeName(t reflect.Type) (string, error) {
	switch t.Kind() {
	case reflect.Bool:
		return "bool", nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return "int", nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return "uint", nil
	case reflect.Float32, reflect.Float64:
		return "float", nil
	case reflect.String:
		return "string", nil
	case reflect.Slice:
		if t.Elem().Kind() == reflect.Uint8 {
			return "bytes", nil
		}
		en, err := e.typeName(t.Elem())
		if err != nil {
			return "", err
		}
		return "[]" + en, nil
	case reflect.Map:
		kn, err := e.typeName(t.Key())
		if err != nil {
			return "", err
		}
		vn, err := e.typeName(t.Elem())
		if err != nil {
			return "", err
		}
		return "map[" + kn + "]" + vn, nil
	case reflect.Ptr:
		en, err := e.typeName(t.Elem())
		if err != nil {
			return "", err
		}
		return "*" + en, nil
	case reflect.Struct:
		if n, ok := e.reg.nameOf(t); ok {
			return n, nil
		}
		return "", fmt.Errorf("seri: unregistered struct type %v", t)
	case reflect.Interface:
		return "any", nil
	default:
		return "", fmt.Errorf("seri: unsupported type %v", t)
	}
}

func (e *encoder) encode(v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		e.byte(tagBool)
		if v.Bool() {
			e.byte(1)
		} else {
			e.byte(0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.byte(tagInt)
		e.varint(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		e.byte(tagUint)
		e.uvarint(v.Uint())
	case reflect.Float32, reflect.Float64:
		e.byte(tagFloat)
		e.uvarint(math.Float64bits(v.Float()))
	case reflect.String:
		e.byte(tagString)
		e.str(v.String())
	case reflect.Slice:
		if v.IsNil() {
			e.byte(tagNil)
			return nil
		}
		key := unsafePtr{p: v.Pointer(), t: v.Type(), n: v.Len()}
		if id, ok := e.seen[key]; ok {
			e.byte(tagRef)
			e.uvarint(id)
			return nil
		}
		e.seen[key] = e.next
		e.next++
		if v.Type().Elem().Kind() == reflect.Uint8 {
			e.byte(tagBytes)
			e.uvarint(uint64(v.Len()))
			e.buf = append(e.buf, v.Bytes()...)
			return nil
		}
		e.byte(tagSlice)
		e.uvarint(uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := e.encodeElem(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		if v.IsNil() {
			e.byte(tagNil)
			return nil
		}
		key := unsafePtr{p: v.Pointer(), t: v.Type()}
		if id, ok := e.seen[key]; ok {
			e.byte(tagRef)
			e.uvarint(id)
			return nil
		}
		e.seen[key] = e.next
		e.next++
		e.byte(tagMap)
		e.uvarint(uint64(v.Len()))
		iter := v.MapRange()
		for iter.Next() {
			if err := e.encodeElem(iter.Key()); err != nil {
				return err
			}
			if err := e.encodeElem(iter.Value()); err != nil {
				return err
			}
		}
	case reflect.Ptr:
		if v.IsNil() {
			e.byte(tagNil)
			return nil
		}
		if done, err := e.encodeExternal(v); done || err != nil {
			return err
		}
		key := unsafePtr{p: v.Pointer(), t: v.Type()}
		if id, ok := e.seen[key]; ok {
			e.byte(tagRef)
			e.uvarint(id)
			return nil
		}
		e.seen[key] = e.next
		e.next++
		e.byte(tagPtr)
		return e.encode(v.Elem())
	case reflect.Struct:
		if p := e.reg.planFor(v.Type()); p != nil {
			return p.appendTo(e, v)
		}
		e.byte(tagStruct)
		t := v.Type()
		n := 0
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).IsExported() {
				n++
			}
		}
		e.uvarint(uint64(n))
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			e.str(f.Name)
			if err := e.encodeElem(v.Field(i)); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
	case reflect.Interface:
		return e.encodeIface(v)
	default:
		return fmt.Errorf("seri: cannot encode %v", v.Kind())
	}
	return nil
}

// encodeElem encodes a statically typed element; interfaces dispatch
// dynamically.
func (e *encoder) encodeElem(v reflect.Value) error {
	if v.Kind() == reflect.Interface {
		return e.encodeIface(v)
	}
	return e.encode(v)
}

// Decode hardening limits. Streams arriving over the wire are adversarial
// (internal/remote feeds peer bytes straight in), so the decoder bounds
// everything that could otherwise turn malformed input into a crash: the
// recursion depth (a run of nested pointers would overflow the stack) and
// type-name length (typeFor recurses per structural prefix). Allocation
// counts are checked against the remaining buffer before any make.
const (
	maxDecodeDepth = 1000
	maxTypeName    = 4096
	// maxPrealloc bounds the bytes a single slice/map header may demand
	// up front (count × element footprint). Element counts are already
	// bounded by the remaining stream bytes, but a registered type with a
	// large element (an embedded array, say) would otherwise let a small
	// stream demand count × sizeof — a gigabyte-scale allocation from a
	// kilobyte frame. Any plausible legitimate stream sits far below this.
	maxPrealloc = 64 << 20
)

type decoder struct {
	reg   *Registry
	ext   External
	buf   []byte
	pos   int
	depth int
	objs  []reflect.Value // id -> decoded heap object
}

// decodeExternal resolves a capability reference read from the stream.
func (d *decoder) decodeExternal() (any, error) {
	h, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if d.ext == nil {
		return nil, d.fail("capability reference %d with no external decoder", h)
	}
	v, err := d.ext.DecodeExternal(h)
	if err != nil {
		return nil, fmt.Errorf("seri: capability reference %d: %w", h, err)
	}
	return v, nil
}

func (d *decoder) fail(format string, args ...any) error {
	return fmt.Errorf("seri: "+format+" at offset %d", append(args, d.pos)...)
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, d.fail("truncated")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad uvarint")
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad varint")
	}
	d.pos += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return "", d.fail("string of %d bytes overruns buffer", n)
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

// strBytes reads a length-prefixed string as a transient byte slice
// aliasing the input buffer — valid only until the caller advances or
// returns. The generated decoders use it for field-name dispatch so a map
// hit costs no allocation (a map[string]T lookup keyed by string(bytes)
// does not materialize the string).
func (d *decoder) strBytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, d.fail("string of %d bytes overruns buffer", n)
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// decodeIface reads a dynamically typed value.
func (d *decoder) decodeIface() (any, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	if tag == tagNil {
		return nil, nil
	}
	if tag == tagCap {
		return d.decodeExternal()
	}
	if tag != tagIface {
		return nil, d.fail("expected iface tag, got %d", tag)
	}
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	if len(name) > maxTypeName {
		return nil, d.fail("type name of %d bytes", len(name))
	}
	t, err := d.typeFor(name)
	if err != nil {
		return nil, err
	}
	v := reflect.New(t).Elem()
	if err := d.decodeInto(v); err != nil {
		return nil, err
	}
	return v.Interface(), nil
}

// typeFor resolves a structural or registered type name.
func (d *decoder) typeFor(name string) (reflect.Type, error) {
	switch name {
	case "bool":
		return reflect.TypeOf(false), nil
	case "int":
		return reflect.TypeOf(int64(0)), nil
	case "uint":
		return reflect.TypeOf(uint64(0)), nil
	case "float":
		return reflect.TypeOf(float64(0)), nil
	case "string":
		return reflect.TypeOf(""), nil
	case "bytes":
		return reflect.TypeOf([]byte(nil)), nil
	case "any":
		return reflect.TypeOf((*any)(nil)).Elem(), nil
	}
	if len(name) > 2 && name[:2] == "[]" {
		et, err := d.typeFor(name[2:])
		if err != nil {
			return nil, err
		}
		return reflect.SliceOf(et), nil
	}
	if len(name) > 1 && name[0] == '*' {
		et, err := d.typeFor(name[1:])
		if err != nil {
			return nil, err
		}
		return reflect.PointerTo(et), nil
	}
	if len(name) > 4 && name[:4] == "map[" {
		depth := 1
		i := 4
		for ; i < len(name); i++ {
			if name[i] == '[' {
				depth++
			}
			if name[i] == ']' {
				depth--
				if depth == 0 {
					break
				}
			}
		}
		if depth != 0 {
			return nil, d.fail("bad map type %q", name)
		}
		kt, err := d.typeFor(name[4:i])
		if err != nil {
			return nil, err
		}
		vt, err := d.typeFor(name[i+1:])
		if err != nil {
			return nil, err
		}
		// reflect.MapOf panics on invalid key types (e.g. "map[bytes]...").
		if kt.Kind() != reflect.Interface && !kt.Comparable() {
			return nil, d.fail("invalid map key type in %q", name)
		}
		return reflect.MapOf(kt, vt), nil
	}
	if t, ok := d.reg.typeOf(name); ok {
		return t, nil
	}
	return nil, d.fail("unknown type %q", name)
}

// decodeInto fills v (addressable) from the stream, guarding recursion
// depth: every nesting level of the encoding costs at least one stream
// byte, so a depth bound rejects only pathological input.
func (d *decoder) decodeInto(v reflect.Value) error {
	if d.depth >= maxDecodeDepth {
		return d.fail("nesting deeper than %d", maxDecodeDepth)
	}
	d.depth++
	err := d.decodeInto0(v)
	d.depth--
	return err
}

func (d *decoder) decodeInto0(v reflect.Value) error {
	if v.Kind() == reflect.Interface {
		x, err := d.decodeIface()
		if err != nil {
			return err
		}
		if x == nil {
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		xv := reflect.ValueOf(x)
		if !xv.Type().AssignableTo(v.Type()) {
			// Widen decoded int64/uint64/float64 where needed.
			if xv.Type().ConvertibleTo(v.Type()) {
				xv = xv.Convert(v.Type())
			} else {
				return d.fail("cannot assign %v to %v", xv.Type(), v.Type())
			}
		}
		v.Set(xv)
		return nil
	}

	tag, err := d.byte()
	if err != nil {
		return err
	}
	// A tag that does not match the slot's kind is a malformed stream
	// (reflect's setters panic on kind mismatch, so check first).
	wrongTag := func() error { return d.fail("tag %d cannot fill %v slot", tag, v.Type()) }
	switch tag {
	case tagNil:
		v.Set(reflect.Zero(v.Type()))
	case tagBool:
		b, err := d.byte()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Bool {
			return wrongTag()
		}
		v.SetBool(b != 0)
	case tagInt:
		i, err := d.varint()
		if err != nil {
			return err
		}
		switch v.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		default:
			return wrongTag()
		}
		v.SetInt(i)
	case tagUint:
		u, err := d.uvarint()
		if err != nil {
			return err
		}
		switch v.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		default:
			return wrongTag()
		}
		v.SetUint(u)
	case tagFloat:
		u, err := d.uvarint()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.Float32 && v.Kind() != reflect.Float64 {
			return wrongTag()
		}
		v.SetFloat(math.Float64frombits(u))
	case tagString:
		s, err := d.str()
		if err != nil {
			return err
		}
		if v.Kind() != reflect.String {
			return wrongTag()
		}
		v.SetString(s)
	case tagBytes:
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(d.buf)-d.pos) {
			return d.fail("bytes of %d overruns buffer", n)
		}
		if v.Kind() != reflect.Slice || v.Type().Elem().Kind() != reflect.Uint8 {
			return wrongTag()
		}
		b := make([]byte, n)
		copy(b, d.buf[d.pos:])
		d.pos += int(n)
		v.SetBytes(b)
		d.objs = append(d.objs, v)
	case tagSlice:
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(d.buf)-d.pos) {
			return d.fail("slice of %d overruns buffer", n)
		}
		if v.Kind() != reflect.Slice {
			return wrongTag()
		}
		if n*uint64(v.Type().Elem().Size()) > maxPrealloc {
			return d.fail("slice of %d×%d-byte elements exceeds the preallocation bound", n, v.Type().Elem().Size())
		}
		s := reflect.MakeSlice(v.Type(), int(n), int(n))
		v.Set(s)
		d.objs = append(d.objs, v)
		for i := 0; i < int(n); i++ {
			if err := d.decodeInto(s.Index(i)); err != nil {
				return err
			}
		}
	case tagMap:
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		// Each entry needs at least two stream bytes (key + value tag).
		if n > uint64(len(d.buf)-d.pos)/2 {
			return d.fail("map of %d overruns buffer", n)
		}
		if v.Kind() != reflect.Map {
			return wrongTag()
		}
		if entry := uint64(v.Type().Key().Size()+v.Type().Elem().Size()) + 16; n*entry > maxPrealloc {
			return d.fail("map of %d×%d-byte entries exceeds the preallocation bound", n, entry)
		}
		mv := reflect.MakeMapWithSize(v.Type(), int(n))
		v.Set(mv)
		d.objs = append(d.objs, v)
		kt, vt := v.Type().Key(), v.Type().Elem()
		for i := uint64(0); i < n; i++ {
			kv := reflect.New(kt).Elem()
			if err := d.decodeInto(kv); err != nil {
				return err
			}
			// A dynamically typed key may decode to an unhashable value
			// (SetMapIndex would panic — "hash of unhashable type").
			if !kv.Comparable() {
				return d.fail("unhashable map key of type %v", kv.Type())
			}
			vv := reflect.New(vt).Elem()
			if err := d.decodeInto(vv); err != nil {
				return err
			}
			mv.SetMapIndex(kv, vv)
		}
	case tagPtr:
		if v.Kind() != reflect.Ptr {
			return wrongTag()
		}
		p := reflect.New(v.Type().Elem())
		v.Set(p)
		d.objs = append(d.objs, v)
		return d.decodeInto(p.Elem())
	case tagStruct:
		if v.Kind() != reflect.Struct {
			return d.fail("struct tag for %v", v.Kind())
		}
		if p := d.reg.planFor(v.Type()); p != nil {
			return p.decodeInto(d, v)
		}
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			fname, err := d.str()
			if err != nil {
				return err
			}
			f := v.FieldByName(fname)
			// Unexported fields resolve to valid but non-settable values
			// (the setters would panic); the encoder never writes them, so
			// a stream naming one is malformed.
			if !f.IsValid() || !f.CanSet() {
				return d.fail("no field %q in %v", fname, v.Type())
			}
			if err := d.decodeInto(f); err != nil {
				return fmt.Errorf("field %s: %w", fname, err)
			}
		}
	case tagRef:
		id, err := d.uvarint()
		if err != nil {
			return err
		}
		if id >= uint64(len(d.objs)) {
			return d.fail("dangling ref %d", id)
		}
		src := d.objs[id]
		if !src.Type().AssignableTo(v.Type()) {
			return d.fail("ref type %v not assignable to %v", src.Type(), v.Type())
		}
		v.Set(src)
	case tagIface:
		// A dynamically typed value in a statically typed slot: rewind the
		// tag and decode as interface payload.
		d.pos--
		x, err := d.decodeIface()
		if err != nil {
			return err
		}
		// The encoder writes tagNil directly for nil values, so a dynamic
		// nil here ("any" payload holding nothing) is malformed — and
		// reflect.ValueOf(nil) has no Type to consult.
		if x == nil {
			return d.fail("nil dynamic value for %v slot", v.Type())
		}
		xv := reflect.ValueOf(x)
		if xv.Type().ConvertibleTo(v.Type()) {
			v.Set(xv.Convert(v.Type()))
			return nil
		}
		return d.fail("cannot place %v into %v", xv.Type(), v.Type())
	case tagCap:
		x, err := d.decodeExternal()
		if err != nil {
			return err
		}
		xv := reflect.ValueOf(x)
		if !xv.IsValid() || !xv.Type().AssignableTo(v.Type()) {
			return d.fail("capability reference is not assignable to %v", v.Type())
		}
		v.Set(xv)
	default:
		return d.fail("unknown tag %d", tag)
	}
	return nil
}
