package seri

import (
	"encoding/binary"
	"testing"
)

// permissiveExt resolves any capability handle, so fuzzed streams can
// reach past the reference tags the way a live connection's tables would.
type permissiveExt struct{}

func (permissiveExt) EncodeExternal(v any) (uint64, bool) {
	if c, ok := v.(*fakeCap); ok {
		return c.id, true
	}
	return 0, false
}

func (permissiveExt) DecodeExternal(h uint64) (any, error) {
	return &fakeCap{id: h}, nil
}

// hiddenField has an unexported field the encoder skips — a wire stream
// naming it is forged.
type hiddenField struct {
	Visible int64
	hidden  int64 //nolint:unused // decode hardening target
}

// TestDecodeHardeningRegressions pins two crafted streams that panicked
// the pre-hardened decoder (found by review of the fuzz surface): a
// dynamic nil in a concrete-typed slot, and a struct stream naming an
// unexported field. Both must come back as decode errors.
func TestDecodeHardeningRegressions(t *testing.T) {
	r := reg()
	r.Register("Hidden", hiddenField{})
	str := func(b []byte, s string) []byte {
		b = binary.AppendUvarint(b, uint64(len(s)))
		return append(b, s...)
	}

	// []string whose element claims dynamic type "any" holding nil:
	// reflect.ValueOf(nil).Type() panicked in the tagIface slot branch.
	var nilIface []byte
	nilIface = append(nilIface, tagIface)
	nilIface = str(nilIface, "[]string")
	nilIface = append(nilIface, tagSlice)
	nilIface = binary.AppendUvarint(nilIface, 1)
	nilIface = append(nilIface, tagIface)
	nilIface = str(nilIface, "any")
	nilIface = append(nilIface, tagNil)

	// A struct stream naming the unexported field: FieldByName returns a
	// valid but non-settable value, and SetInt panicked.
	var unexported []byte
	unexported = append(unexported, tagIface)
	unexported = str(unexported, "Hidden")
	unexported = append(unexported, tagStruct)
	unexported = binary.AppendUvarint(unexported, 1)
	unexported = str(unexported, "hidden")
	unexported = append(unexported, tagInt)
	unexported = binary.AppendVarint(unexported, 7)

	for name, stream := range map[string][]byte{
		"nil dynamic value in concrete slot": nilIface,
		"unexported struct field":            unexported,
	} {
		if _, err := Unmarshal(r, stream); err == nil {
			t.Errorf("%s: forged stream decoded without error", name)
		}
	}
}

// FuzzSeriRoundtrip checks the decoder's core safety property against
// arbitrary bytes: decoding never panics (malformed streams error), and
// any value that does decode is well-formed enough to re-marshal and
// decode again — the stream a connection re-encodes for a third kernel
// must never be poison.
func FuzzSeriRoundtrip(f *testing.F) {
	r := reg()
	ext := permissiveExt{}
	doc := Doc{
		Title: "seed",
		Body:  []byte{1, 2, 3},
		Tags:  []string{"a", "b"},
		Meta:  map[string]int64{"x": 1},
		At:    &Point{X: 3, Y: 4},
	}
	cycle := &Node{Val: 1}
	cycle.Next = &Node{Val: 2, Next: cycle}
	for _, v := range []any{
		int64(-42),
		"hello",
		[]byte("bytes"),
		doc,
		cycle,
		[]any{int64(1), "two", 3.5, nil, &fakeCap{id: 9}},
		map[string]any{"k": []int64{1, 2, 3}},
	} {
		data, err := MarshalExt(r, v, ext)
		if err != nil {
			panic(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := UnmarshalExt(r, data, ext)
		if err != nil {
			return
		}
		out, err := MarshalExt(r, v, ext)
		if err != nil {
			t.Fatalf("decoded value failed to re-marshal: %v (%#v)", err, v)
		}
		if _, err := UnmarshalExt(r, out, ext); err != nil {
			t.Fatalf("re-marshaled stream failed to decode: %v", err)
		}
	})
}
