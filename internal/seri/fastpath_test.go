package seri

import (
	"bytes"
	"reflect"
	"testing"
)

// fastProbe covers every kind the plan compiler handles: one field per
// scalar fast path, aliased byte slices, and the fallback kinds (pointer,
// element slice, map, nested struct, interface).
type fastProbe struct {
	B    bool
	I8   int8
	I    int64
	U    uint64
	F32  float32
	F    float64
	S    string
	Raw  []byte
	Raw2 []byte
	Ptr  *Point
	Seq  []string
	M    map[string]int64 // differential fixtures keep ≤1 entry: map order is nondeterministic
	Sub  Point
	Any  any
}

func fastReg() *Registry {
	r := reg()
	r.Register("fastProbe", fastProbe{})
	return r
}

// diffMarshal encodes v twice — generated marshalers on, then off — and
// fails unless the streams are byte-identical.
func diffMarshal(t *testing.T, r *Registry, v any) []byte {
	t.Helper()
	fast, ferr := Marshal(r, v)
	r.SetFastpath(false)
	slow, serr := Marshal(r, v)
	r.SetFastpath(true)
	if (ferr == nil) != (serr == nil) {
		t.Fatalf("fastpath error mismatch: fast=%v slow=%v", ferr, serr)
	}
	if ferr != nil {
		return nil
	}
	if !bytes.Equal(fast, slow) {
		t.Fatalf("fastpath stream differs from reflect walker\nfast: %x\nslow: %x", fast, slow)
	}
	return fast
}

// diffUnmarshal decodes data twice — plans on, then off — and fails unless
// both agree with each other and with want.
func diffUnmarshal(t *testing.T, r *Registry, data []byte, want any) {
	t.Helper()
	fast, ferr := Unmarshal(r, data)
	r.SetFastpath(false)
	slow, serr := Unmarshal(r, data)
	r.SetFastpath(true)
	if (ferr == nil) != (serr == nil) {
		t.Fatalf("fastpath decode error mismatch: fast=%v slow=%v", ferr, serr)
	}
	if ferr != nil {
		return
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("fastpath decode differs from reflect walker\nfast: %#v\nslow: %#v", fast, slow)
	}
	if want != nil && !reflect.DeepEqual(fast, want) {
		t.Fatalf("decode mismatch\ngot:  %#v\nwant: %#v", fast, want)
	}
}

func TestFastpathDifferentialFixtures(t *testing.T) {
	shared := []byte("shared-backing")
	pt := &Point{X: 7, Y: -9}
	cyc := &Node{Val: 1}
	cyc.Next = cyc
	cases := []any{
		Point{X: 1, Y: 2},
		Point{},
		Node{Val: 5, Next: &Node{Val: 6}},
		*cyc,
		Doc{Title: "t", Body: []byte{1, 2, 3}, Tags: []string{"a", "b"}, Meta: map[string]int64{"k": 9}, At: pt},
		Doc{},
		fastProbe{
			B: true, I8: -8, I: 1 << 40, U: 1<<63 + 3, F32: 1.5, F: -2.25,
			S: "héllo\x00", Raw: shared, Raw2: shared, Ptr: pt,
			Seq: []string{"x", ""}, M: map[string]int64{"one": 1},
			Sub: Point{X: 3}, Any: int64(42),
		},
		fastProbe{Raw: []byte{}, Any: Point{X: 1}},
		fastProbe{S: string(make([]byte, 300))},
	}
	r := fastReg()
	for i, v := range cases {
		data := diffMarshal(t, r, v)
		if data == nil {
			t.Fatalf("case %d: marshal failed", i)
		}
		diffUnmarshal(t, r, data, v)
	}
}

// TestFastpathAliasingPreserved pins the alias-table contract: byte slices
// shared between fast-path fields must still dedup through tagRef and come
// back as one backing array.
func TestFastpathAliasingPreserved(t *testing.T) {
	r := fastReg()
	shared := []byte("alias")
	in := fastProbe{Raw: shared, Raw2: shared}
	data, err := Marshal(r, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(r, data)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(fastProbe)
	if len(got.Raw) == 0 || &got.Raw[0] != &got.Raw2[0] {
		t.Fatalf("shared byte slices decoded to separate backings")
	}
	got.Raw[0] = 'X'
	if got.Raw2[0] != 'X' {
		t.Fatalf("alias broken after decode")
	}
}

// TestFastpathDecodeTolerantOfForeignTags pins the rewind fallback: a fast
// scalar slot fed a tag the fast decoder does not handle (tagNil, or a
// dynamically typed value) must defer to the generic walker, not error.
func TestFastpathDecodeTolerantOfForeignTags(t *testing.T) {
	r := fastReg()
	// tagNil in fast slots: a zero Doc encodes Body/Tags/Meta/At as tagNil.
	data, err := Marshal(r, Doc{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(r, data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, Doc{}) {
		t.Fatalf("zero Doc round-trip: %#v", out)
	}
}

func TestPlanOf(t *testing.T) {
	r := fastReg()
	info := r.PlanOf(fastProbe{})
	if !info.Generated || info.Name != "fastProbe" {
		t.Fatalf("PlanOf(fastProbe) = %+v", info)
	}
	// B, I8, I, U, F32, F, S, Raw, Raw2 are fast; Ptr, Seq, M, Sub, Any fall back.
	if info.FastFields != 9 || info.FallbackFields != 5 {
		t.Fatalf("PlanOf(fastProbe) fields = %+v", info)
	}
	if got := r.PlanOf(struct{ Z int }{}); got.Generated || got.Name != "" {
		t.Fatalf("PlanOf(unregistered) = %+v", got)
	}
	var nilReg *Registry
	if got := nilReg.PlanOf(Point{}); got.Generated {
		t.Fatalf("PlanOf on nil registry = %+v", got)
	}
}

func TestSetFastpathToggles(t *testing.T) {
	r := fastReg()
	r.SetFastpath(false)
	if p := r.planFor(reflect.TypeOf(Point{})); p != nil {
		t.Fatal("planFor returned a plan with fastpath off")
	}
	r.SetFastpath(true)
	if p := r.planFor(reflect.TypeOf(Point{})); p == nil {
		t.Fatal("planFor returned nil with fastpath on")
	}
}

// FuzzFastpathDifferential drives randomized fixture graphs through both
// encoders and both decoders, asserting byte-identical streams and
// reflect.DeepEqual results. Maps are capped at one entry (iteration order
// would otherwise make even the reflect walker nondeterministic) and NaN is
// excluded (NaN != NaN breaks DeepEqual, not the codec).
func FuzzFastpathDifferential(f *testing.F) {
	f.Add(true, int64(-5), uint64(99), 1.25, "s", []byte("raw"), uint8(3), true)
	f.Add(false, int64(0), uint64(0), 0.0, "", []byte(nil), uint8(0), false)
	f.Add(true, int64(1<<62), uint64(1<<63), -9.75, "κλμ", []byte{0, 255}, uint8(7), true)
	f.Fuzz(func(t *testing.T, b bool, i int64, u uint64, fl float64, s string, raw []byte, n uint8, alias bool) {
		if fl != fl {
			fl = 0 // NaN
		}
		r := fastReg()
		probe := fastProbe{
			B: b, I8: int8(i), I: i, U: u, F32: float32(fl), F: fl,
			S: s, Raw: raw, Seq: []string{s, s}, Sub: Point{X: i, Y: int64(u)},
			Any: u,
		}
		if alias {
			probe.Raw2 = raw
		} else {
			probe.Raw2 = append([]byte("x"), raw...)
		}
		if n%2 == 0 {
			probe.M = map[string]int64{s: i}
		}
		// A short pointer chain, optionally cyclic, exercises the fallback
		// closures' alias bookkeeping interleaved with fast fields.
		head := &Node{Val: i}
		cur := head
		for k := 0; k < int(n%8); k++ {
			cur.Next = &Node{Val: i + int64(k)}
			cur = cur.Next
		}
		if alias {
			cur.Next = head
		}
		for _, v := range []any{probe, *head, Doc{Title: s, Body: raw}} {
			data := diffMarshal(t, r, v)
			if data == nil {
				continue
			}
			diffUnmarshal(t, r, data, nil)
		}
	})
}
