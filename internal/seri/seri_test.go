package seri

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

type Point struct {
	X, Y int64
}

type Node struct {
	Val  int64
	Next *Node
}

type Doc struct {
	Title string
	Body  []byte
	Tags  []string
	Meta  map[string]int64
	At    *Point
}

func reg() *Registry {
	r := NewRegistry()
	r.Register("Point", Point{})
	r.Register("Node", Node{})
	r.Register("Doc", Doc{})
	return r
}

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	out, err := Copy(reg(), v)
	if err != nil {
		t.Fatalf("Copy(%#v): %v", v, err)
	}
	return out
}

func TestPrimitives(t *testing.T) {
	cases := []any{
		nil, true, false, int64(-42), uint64(99), 3.5, "héllo", "",
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %#v = %#v", v, got)
		}
	}
}

func TestIntWidthsNormalize(t *testing.T) {
	// Narrow ints decode as int64 (the wire type); value preserved.
	got := roundTrip(t, int8(-7))
	if got.(int64) != -7 {
		t.Errorf("int8 round trip = %v", got)
	}
}

func TestBytesAndSlices(t *testing.T) {
	b := []byte{1, 2, 3}
	got := roundTrip(t, b).([]byte)
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("bytes = %v", got)
	}
	got[0] = 99
	if b[0] == 99 {
		t.Error("copy aliases source bytes")
	}

	s := []string{"a", "b"}
	got2 := roundTrip(t, s).([]string)
	if !reflect.DeepEqual(got2, s) {
		t.Errorf("slice = %v", got2)
	}
}

func TestStructsAndMaps(t *testing.T) {
	d := Doc{
		Title: "t",
		Body:  []byte("body"),
		Tags:  []string{"x", "y"},
		Meta:  map[string]int64{"a": 1, "b": 2},
		At:    &Point{X: 3, Y: 4},
	}
	got := roundTrip(t, d).(Doc)
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("doc = %#v", got)
	}
	got.At.X = 99
	if d.At.X == 99 {
		t.Error("copy aliases nested pointer")
	}
	got.Meta["a"] = 99
	if d.Meta["a"] == 99 {
		t.Error("copy aliases map")
	}
}

func TestCycle(t *testing.T) {
	a := &Node{Val: 1}
	b := &Node{Val: 2, Next: a}
	a.Next = b // cycle

	got := roundTrip(t, a).(*Node)
	if got.Val != 1 || got.Next.Val != 2 {
		t.Fatalf("values lost: %v -> %v", got.Val, got.Next.Val)
	}
	if got.Next.Next != got {
		t.Error("cycle not preserved")
	}
	if got == a || got.Next == b {
		t.Error("copy aliases source")
	}
}

func TestSharedSubobjectAliasPreserved(t *testing.T) {
	shared := &Point{X: 1}
	type pair struct {
		A, B *Point
	}
	r := reg()
	r.Register("pair", pair{})
	out, err := Copy(r, pair{A: shared, B: shared})
	if err != nil {
		t.Fatal(err)
	}
	p := out.(pair)
	if p.A != p.B {
		t.Error("internal aliasing lost: A and B point to different copies")
	}
	if p.A == shared {
		t.Error("copy aliases source")
	}
}

func TestUnregisteredStructRejected(t *testing.T) {
	type hidden struct{ X int }
	if _, err := Copy(NewRegistry(), hidden{X: 1}); err == nil {
		t.Error("unregistered struct accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	r := reg()
	if _, err := Unmarshal(r, []byte{0xff, 0x01, 0x02}); err == nil {
		t.Error("garbage accepted")
	}
	good, err := Marshal(r, Doc{Title: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(r, good[:len(good)-1]); err == nil {
		t.Error("truncated stream accepted")
	}
	if _, err := Unmarshal(r, append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestMarshalDeterministicForSameValue(t *testing.T) {
	r := reg()
	v := Doc{Title: "t", Body: []byte("abc"), At: &Point{X: 1}}
	a, err := Marshal(r, v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(r, v)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("same value marshals differently (maps excluded, so this should be stable)")
	}
}

// Property: for random trees of Nodes and random Docs, Copy is an
// isomorphism that never aliases the source.
func TestQuickRandomGraphs(t *testing.T) {
	r := reg()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random linked list with random tail sharing.
		n := rng.Intn(20) + 1
		nodes := make([]*Node, n)
		for i := range nodes {
			nodes[i] = &Node{Val: rng.Int63n(1000)}
			if i > 0 {
				nodes[i-1].Next = nodes[i]
			}
		}
		if rng.Intn(2) == 0 && n > 2 {
			nodes[n-1].Next = nodes[rng.Intn(n)] // make a cycle
		}
		out, err := Copy(r, nodes[0])
		if err != nil {
			return false
		}
		got := out.(*Node)
		// Walk both up to 3n steps comparing values and checking no alias.
		a, b := nodes[0], got
		for i := 0; i < 3*n; i++ {
			if a == nil || b == nil {
				return a == nil && b == nil
			}
			if a.Val != b.Val || a == b {
				return false
			}
			a, b = a.Next, b.Next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
