package seri

import (
	"errors"
	"testing"
)

// fakeCap stands in for core.Capability in the external-reference tests.
type fakeCap struct{ id uint64 }

// capTable is a test External: an export/import table keyed by handle.
type capTable struct {
	byCap    map[*fakeCap]uint64
	byHandle map[uint64]*fakeCap
	next     uint64
}

func newCapTable() *capTable {
	return &capTable{byCap: map[*fakeCap]uint64{}, byHandle: map[uint64]*fakeCap{}}
}

func (t *capTable) EncodeExternal(v any) (uint64, bool) {
	c, ok := v.(*fakeCap)
	if !ok {
		return 0, false
	}
	if h, ok := t.byCap[c]; ok {
		return h, true
	}
	h := t.next
	t.next++
	t.byCap[c] = h
	t.byHandle[h] = c
	return h, true
}

func (t *capTable) DecodeExternal(h uint64) (any, error) {
	c, ok := t.byHandle[h]
	if !ok {
		return nil, errors.New("unknown handle")
	}
	return c, nil
}

func TestExternalTopLevel(t *testing.T) {
	tab := newCapTable()
	c := &fakeCap{id: 7}
	data, err := MarshalExt(nil, c, tab)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalExt(nil, data, tab)
	if err != nil {
		t.Fatal(err)
	}
	if out != any(c) {
		t.Fatalf("capability did not pass by reference: got %#v", out)
	}
}

func TestExternalInsideArgsSlice(t *testing.T) {
	tab := newCapTable()
	c := &fakeCap{id: 1}
	args := []any{int64(42), "hello", c, nil}
	data, err := MarshalExt(nil, args, tab)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalExt(nil, data, tab)
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := out.([]any)
	if !ok || len(dec) != 4 {
		t.Fatalf("bad decode: %#v", out)
	}
	if dec[0] != any(int64(42)) || dec[1] != any("hello") || dec[3] != nil {
		t.Fatalf("copied values wrong: %#v", dec)
	}
	if dec[2] != any(c) {
		t.Fatalf("capability arg not by reference: %#v", dec[2])
	}
}

type capHolder struct {
	Name string
	Cap  *fakeCap
	Any  any
}

func TestExternalStructFields(t *testing.T) {
	reg := NewRegistry()
	reg.Register("capHolder", capHolder{})
	tab := newCapTable()
	c := &fakeCap{id: 3}
	in := &capHolder{Name: "svc", Cap: c, Any: c}
	data, err := MarshalExt(reg, in, tab)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalExt(reg, data, tab)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := out.(*capHolder)
	if !ok {
		t.Fatalf("bad type %T", out)
	}
	if h.Name != "svc" {
		t.Fatalf("copied field lost: %q", h.Name)
	}
	if h.Cap != c || h.Any != any(c) {
		t.Fatalf("capability fields not by reference: %#v", h)
	}
}

func TestExternalAliasing(t *testing.T) {
	tab := newCapTable()
	c := &fakeCap{id: 9}
	data, err := MarshalExt(nil, []any{c, c}, tab)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalExt(nil, data, tab)
	if err != nil {
		t.Fatal(err)
	}
	dec := out.([]any)
	if dec[0] != dec[1] || dec[0] != any(c) {
		t.Fatalf("aliased capability refs diverged: %#v", dec)
	}
}

func TestExternalMissingDecoder(t *testing.T) {
	tab := newCapTable()
	data, err := MarshalExt(nil, &fakeCap{id: 2}, tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(nil, data); err == nil {
		t.Fatal("expected error decoding capability ref without an External")
	}
}

func TestExternalUnknownHandle(t *testing.T) {
	tab := newCapTable()
	data, err := MarshalExt(nil, &fakeCap{id: 2}, tab)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalExt(nil, data, newCapTable()); err == nil {
		t.Fatal("expected error for a handle unknown to the decoder table")
	}
}

// A type the External declines must still copy normally.
func TestExternalDeclines(t *testing.T) {
	tab := newCapTable()
	reg := NewRegistry()
	reg.Register("capHolder", capHolder{})
	in := &capHolder{Name: "plain"}
	data, err := MarshalExt(reg, in, tab)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalExt(reg, data, tab)
	if err != nil {
		t.Fatal(err)
	}
	h := out.(*capHolder)
	if h == in {
		t.Fatal("non-capability pointer crossed by reference")
	}
	if h.Name != "plain" {
		t.Fatalf("bad copy: %#v", h)
	}
}
