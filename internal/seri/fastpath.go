// Generated per-type marshalers: the seri fast path.
//
// Registering a struct type compiles a typePlan — closures over the
// precomputed field layout (indices, pre-encoded name prefixes, per-kind
// append/decode functions) — so encoding a registered value walks an array
// of monomorphic closures instead of re-deriving the layout reflectively
// on every call (the run-time stub-generation idea of the paper's LRMI
// stubs, applied to the serializer). Scalar fields (bools, ints, uints,
// floats, strings, byte slices) encode and decode through direct closures;
// anything recursive or dynamic (pointers, maps, nested structs, element
// slices, interfaces) falls back to the generic walker for that field
// only, preserving alias/cycle tracking.
//
// The contract, held by the differential fuzz target: with the fast path
// on or off, the encoded stream is byte-identical and decode yields
// reflect.DeepEqual values. The plan therefore replicates the walker's
// exact tag order, alias-table bookkeeping, and error behavior.
package seri

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
)

// typePlan is the generated marshaler for one registered struct type.
type typePlan struct {
	name   string
	t      reflect.Type
	header []byte // tagStruct + uvarint(exported field count), precomputed
	fields []fieldPlan
	byName map[string]int // wire field name -> fields index (decode dispatch)
	fast   int            // fields with a direct scalar closure (diagnostics)
}

// fieldPlan is one exported field's compiled encode/decode pair.
type fieldPlan struct {
	idx   int // struct field index
	name  string
	nameB []byte // uvarint(len(name)) + name, precomputed
	enc   func(e *encoder, v reflect.Value) error
	dec   func(d *decoder, v reflect.Value) error
	fast  bool
}

// appendTo encodes v (a struct of plan type) into e.buf, byte-identical to
// the generic walker's struct case.
func (p *typePlan) appendTo(e *encoder, v reflect.Value) error {
	e.buf = append(e.buf, p.header...)
	for i := range p.fields {
		f := &p.fields[i]
		e.buf = append(e.buf, f.nameB...)
		if err := f.enc(e, v.Field(f.idx)); err != nil {
			return fmt.Errorf("field %s: %w", f.name, err)
		}
	}
	return nil
}

// decodeInto fills v from the stream after the caller consumed tagStruct.
// Field dispatch is one map hit on the precomputed name table instead of
// reflect.Value.FieldByName's linear scan.
func (p *typePlan) decodeInto(d *decoder, v reflect.Value) error {
	n, err := d.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		fname, err := d.strBytes()
		if err != nil {
			return err
		}
		// string(fname) in the map index does not allocate; the name is
		// only materialized on the error paths.
		fi, ok := p.byName[string(fname)]
		if !ok {
			return d.fail("no field %q in %v", string(fname), p.t)
		}
		f := &p.fields[fi]
		if err := f.dec(d, v.Field(f.idx)); err != nil {
			return fmt.Errorf("field %s: %w", string(fname), err)
		}
	}
	return nil
}

// compilePlan builds the generated marshaler for a registered struct type.
// Runs once, at Register time.
func compilePlan(name string, t reflect.Type) *typePlan {
	p := &typePlan{name: name, t: t, byName: make(map[string]int)}
	n := 0
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).IsExported() {
			n++
		}
	}
	p.header = append(p.header, tagStruct)
	p.header = binary.AppendUvarint(p.header, uint64(n))
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() {
			continue
		}
		f := fieldPlan{idx: i, name: sf.Name}
		f.nameB = binary.AppendUvarint(f.nameB, uint64(len(sf.Name)))
		f.nameB = append(f.nameB, sf.Name...)
		f.enc, f.dec, f.fast = compileField(sf.Type)
		p.byName[sf.Name] = len(p.fields)
		if f.fast {
			p.fast++
		}
		p.fields = append(p.fields, f)
	}
	return p
}

// compileField picks the scalar fast closures where the field kind allows
// it and the generic walker otherwise. The fast decoders read the tag and,
// on any mismatch (a hostile or cross-version stream), rewind one byte and
// hand the slot to the generic path so error behavior stays identical.
func compileField(ft reflect.Type) (enc func(*encoder, reflect.Value) error, dec func(*decoder, reflect.Value) error, fast bool) {
	switch ft.Kind() {
	case reflect.Bool:
		return func(e *encoder, v reflect.Value) error {
				if v.Bool() {
					e.buf = append(e.buf, tagBool, 1)
				} else {
					e.buf = append(e.buf, tagBool, 0)
				}
				return nil
			}, func(d *decoder, v reflect.Value) error {
				tag, err := d.byte()
				if err != nil {
					return err
				}
				if tag != tagBool {
					d.pos--
					return d.decodeInto(v)
				}
				b, err := d.byte()
				if err != nil {
					return err
				}
				v.SetBool(b != 0)
				return nil
			}, true
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return func(e *encoder, v reflect.Value) error {
				e.buf = append(e.buf, tagInt)
				e.buf = binary.AppendVarint(e.buf, v.Int())
				return nil
			}, func(d *decoder, v reflect.Value) error {
				tag, err := d.byte()
				if err != nil {
					return err
				}
				if tag != tagInt {
					d.pos--
					return d.decodeInto(v)
				}
				i, err := d.varint()
				if err != nil {
					return err
				}
				v.SetInt(i)
				return nil
			}, true
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return func(e *encoder, v reflect.Value) error {
				e.buf = append(e.buf, tagUint)
				e.buf = binary.AppendUvarint(e.buf, v.Uint())
				return nil
			}, func(d *decoder, v reflect.Value) error {
				tag, err := d.byte()
				if err != nil {
					return err
				}
				if tag != tagUint {
					d.pos--
					return d.decodeInto(v)
				}
				u, err := d.uvarint()
				if err != nil {
					return err
				}
				v.SetUint(u)
				return nil
			}, true
	case reflect.Float32, reflect.Float64:
		return func(e *encoder, v reflect.Value) error {
				e.buf = append(e.buf, tagFloat)
				e.buf = binary.AppendUvarint(e.buf, math.Float64bits(v.Float()))
				return nil
			}, func(d *decoder, v reflect.Value) error {
				tag, err := d.byte()
				if err != nil {
					return err
				}
				if tag != tagFloat {
					d.pos--
					return d.decodeInto(v)
				}
				u, err := d.uvarint()
				if err != nil {
					return err
				}
				v.SetFloat(math.Float64frombits(u))
				return nil
			}, true
	case reflect.String:
		return func(e *encoder, v reflect.Value) error {
				s := v.String()
				e.buf = append(e.buf, tagString)
				e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
				e.buf = append(e.buf, s...)
				return nil
			}, func(d *decoder, v reflect.Value) error {
				tag, err := d.byte()
				if err != nil {
					return err
				}
				if tag != tagString {
					d.pos--
					return d.decodeInto(v)
				}
				s, err := d.str()
				if err != nil {
					return err
				}
				v.SetString(s)
				return nil
			}, true
	case reflect.Slice:
		if ft.Elem().Kind() != reflect.Uint8 {
			break
		}
		// Byte slices keep the walker's alias-table bookkeeping (overlapping
		// slices of one array must still dedup through tagRef) but skip the
		// per-call kind dispatch.
		sliceType := ft
		return func(e *encoder, v reflect.Value) error {
				if v.IsNil() {
					e.buf = append(e.buf, tagNil)
					return nil
				}
				key := unsafePtr{p: v.Pointer(), t: sliceType, n: v.Len()}
				if id, ok := e.seen[key]; ok {
					e.buf = append(e.buf, tagRef)
					e.buf = binary.AppendUvarint(e.buf, id)
					return nil
				}
				e.seen[key] = e.next
				e.next++
				e.buf = append(e.buf, tagBytes)
				e.buf = binary.AppendUvarint(e.buf, uint64(v.Len()))
				e.buf = append(e.buf, v.Bytes()...)
				return nil
			}, func(d *decoder, v reflect.Value) error {
				tag, err := d.byte()
				if err != nil {
					return err
				}
				if tag != tagBytes {
					d.pos--
					return d.decodeInto(v)
				}
				n, err := d.uvarint()
				if err != nil {
					return err
				}
				if n > uint64(len(d.buf)-d.pos) {
					return d.fail("bytes of %d overruns buffer", n)
				}
				// Copy-on-decode: the result must not alias d.buf, which
				// transports recycle the moment decode returns.
				b := make([]byte, n)
				copy(b, d.buf[d.pos:])
				d.pos += int(n)
				v.SetBytes(b)
				d.objs = append(d.objs, v)
				return nil
			}, true
	}
	return func(e *encoder, v reflect.Value) error { return e.encodeElem(v) },
		func(d *decoder, v reflect.Value) error { return d.decodeInto(v) },
		false
}

// PlanInfo describes the generated marshaler compiled for a registered
// type — the stub-generation report surfaced through
// core.Kernel.RegisterWireType.
type PlanInfo struct {
	Name           string // registered wire name
	Type           string // Go type
	Generated      bool   // a generated marshaler exists (struct types)
	FastFields     int    // fields encoded by direct scalar closures
	FallbackFields int    // fields routed through the generic walker
}

// Plans reports the generated-marshaler plan of every registered type,
// sorted by wire name.
func (r *Registry) Plans() []PlanInfo {
	if r == nil {
		return nil
	}
	s := r.state.Load()
	out := make([]PlanInfo, 0, len(s.byName))
	for name, t := range s.byName {
		info := PlanInfo{Name: name, Type: fmt.Sprint(t)}
		if p := s.plansByName[name]; p != nil {
			info.Generated = true
			info.FastFields = p.fast
			info.FallbackFields = len(p.fields) - p.fast
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PlanOf reports the generated-marshaler plan for sample's dynamic type.
func (r *Registry) PlanOf(sample any) PlanInfo {
	t := reflect.TypeOf(sample)
	info := PlanInfo{Type: fmt.Sprint(t)}
	if r == nil {
		return info
	}
	s := r.state.Load()
	info.Name = s.byType[t]
	if p := s.plans[t]; p != nil {
		info.Generated = true
		info.FastFields = p.fast
		info.FallbackFields = len(p.fields) - p.fast
	}
	return info
}
