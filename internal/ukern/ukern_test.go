package ukern

import (
	"errors"
	"sync"
	"testing"
)

func TestL4RoundTrip(t *testing.T) {
	k := NewKernel()
	c := k.NewL4Pair()
	defer c.Close()
	for i := uint64(0); i < 100; i++ {
		out, err := c.Call(i)
		if err != nil {
			t.Fatal(err)
		}
		if out != i+1 {
			t.Fatalf("Call(%d) = %d, want %d", i, out, i+1)
		}
	}
}

func TestL4CallAfterClose(t *testing.T) {
	k := NewKernel()
	c := k.NewL4Pair()
	c.Close()
	if _, err := c.Call(1); !errors.Is(err, ErrDeadTask) {
		t.Errorf("got %v, want ErrDeadTask", err)
	}
}

func TestExoTransfer(t *testing.T) {
	k := NewKernel()
	p := k.NewExoPair()
	out, err := p.Call(41)
	if err != nil {
		t.Fatal(err)
	}
	if out != 42 {
		t.Errorf("Call = %d", out)
	}
	// The protection-domain switch must leave the caller current again.
	if cur := k.current.Load(); cur != p.caller.ID {
		t.Errorf("current task = %d, want caller %d", cur, p.caller.ID)
	}
}

func TestErosCapabilityAndJournal(t *testing.T) {
	k := NewKernel()
	p := k.NewErosPair()
	defer p.Close()
	out, err := p.Call(1)
	if err != nil {
		t.Fatal(err)
	}
	if out != 2 {
		t.Errorf("Call = %d", out)
	}
	if p.JournalLen() != 1 {
		t.Errorf("journal = %d entries", p.JournalLen())
	}
	p.RevokeCap()
	if _, err := p.Call(1); err == nil {
		t.Error("revoked capability accepted")
	}
}

func TestErosJournalCheckpoints(t *testing.T) {
	k := NewKernel()
	p := k.NewErosPair()
	defer p.Close()
	for i := 0; i < 5000; i++ {
		if _, err := p.Call(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if p.JournalLen() >= 5000 {
		t.Error("journal never checkpointed")
	}
}

func TestAddressSpaceIsolation(t *testing.T) {
	k := NewKernel()
	t1 := k.NewTask(8)
	t2 := k.NewTask(8)
	f1, ok1 := t1.AS.Lookup(0)
	f2, ok2 := t2.AS.Lookup(0)
	if !ok1 || !ok2 {
		t.Fatal("pages unmapped")
	}
	if f1 == f2 {
		t.Error("two address spaces map page 0 to the same frame")
	}
	if _, ok := t1.AS.Lookup(999); ok {
		t.Error("unmapped page resolved")
	}
}

func TestConcurrentL4Clients(t *testing.T) {
	k := NewKernel()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := k.NewL4Pair()
			defer c.Close()
			for i := uint64(0); i < 200; i++ {
				if out, err := c.Call(i); err != nil || out != i+1 {
					t.Errorf("call: %v %d", err, out)
					return
				}
			}
		}()
	}
	wg.Wait()
}
