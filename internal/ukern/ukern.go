// Package ukern is a small in-process microkernel simulator providing the
// fast-IPC baselines of Table 6: L4-style synchronous rendezvous IPC,
// Exokernel-style protected control transfer, and EROS-style capability
// invocation with a persistence journal.
//
// The paper compares the J-Kernel's 3-argument LRMI against published
// numbers for these kernels (1.82–4.90 µs on mid-90s hardware) to argue
// that language-based protection is competitive with the fastest
// hardware-based IPC. We cannot rerun L4 on a P5-133, so each engine here
// reproduces the *structure* of its namesake's IPC path — context save and
// restore, address-space/protection-domain switch bookkeeping, capability
// lookup, journal append — with real Go synchronization supplying the
// control transfer, and the benches compare them against our LRMI.
package ukern

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrDeadTask reports IPC to a destroyed task.
var ErrDeadTask = errors.New("ukern: task is dead")

// Regs models the register context transferred on IPC ("Exokernel's
// protected control transfer installs the callee's processor context").
type Regs struct {
	IP, SP uint64
	GP     [8]uint64 // message registers, like L4's MRs
}

// AddressSpace is a toy page table: virtual page -> frame.
type AddressSpace struct {
	ID    int64
	pages map[uint64]uint64
}

// NewAddressSpace creates a space with n mapped pages.
func NewAddressSpace(id int64, n int) *AddressSpace {
	as := &AddressSpace{ID: id, pages: make(map[uint64]uint64, n)}
	for i := 0; i < n; i++ {
		as.pages[uint64(i)] = uint64(i) | uint64(id)<<40
	}
	return as
}

// Lookup translates a page, modelling the TLB-miss walk after a switch.
func (as *AddressSpace) Lookup(page uint64) (uint64, bool) {
	f, ok := as.pages[page]
	return f, ok
}

// Task is a schedulable protection domain.
type Task struct {
	ID   int64
	AS   *AddressSpace
	Regs Regs
	dead atomic.Bool
}

// Kernel holds the simulator state.
type Kernel struct {
	mu      sync.Mutex
	nextID  int64
	current atomic.Int64 // current task id, flipped on every "switch"
	// tlb caches translations; flushed on protection-domain switch, so
	// post-switch lookups pay the table walk like a real TLB shootdown.
	tlbMu sync.Mutex
	tlb   map[uint64]uint64
}

// NewKernel creates a simulator.
func NewKernel() *Kernel {
	return &Kernel{tlb: make(map[uint64]uint64, 64)}
}

// NewTask creates a task with its own address space.
func (k *Kernel) NewTask(pages int) *Task {
	k.mu.Lock()
	k.nextID++
	id := k.nextID
	k.mu.Unlock()
	return &Task{ID: id, AS: NewAddressSpace(id, pages)}
}

// switchTo performs the protection-domain switch bookkeeping common to all
// three engines: save/restore register context and flush the TLB.
func (k *Kernel) switchTo(from, to *Task, msg *Regs) {
	// Context install: the message registers travel in the context.
	to.Regs = *msg
	k.current.Store(to.ID)
	k.tlbMu.Lock()
	clear(k.tlb)
	// First few post-switch accesses miss and walk the page table.
	for p := uint64(0); p < 4; p++ {
		if f, ok := to.AS.Lookup(p); ok {
			k.tlb[p] = f
		}
	}
	k.tlbMu.Unlock()
}

// --- L4-style synchronous IPC -------------------------------------------

// l4Msg is one rendezvous message.
type l4Msg struct {
	regs  Regs
	reply chan Regs
}

// L4Conn is a client connection to an L4-style server thread: Call is a
// send+receive rendezvous, i.e. one round-trip IPC (two messages, two
// protection-domain switches).
type L4Conn struct {
	k        *Kernel
	client   *Task
	server   *Task
	req      chan l4Msg
	reply    chan Regs
	stopOnce sync.Once
	stop     chan struct{}
}

// NewL4Pair starts a server task whose handler echoes MR0+1 and returns a
// connected client.
func (k *Kernel) NewL4Pair() *L4Conn {
	c := &L4Conn{
		k:      k,
		client: k.NewTask(16),
		server: k.NewTask(16),
		req:    make(chan l4Msg), // unbuffered: rendezvous
		reply:  make(chan Regs),
		stop:   make(chan struct{}),
	}
	go func() {
		for {
			select {
			case <-c.stop:
				return
			case m := <-c.req:
				// Switch into the server's space, run the handler, switch
				// back via the reply send.
				k.switchTo(c.client, c.server, &m.regs)
				out := m.regs
				out.GP[0]++
				m.reply <- out
			}
		}
	}()
	return c
}

// Call performs one round-trip IPC carrying payload in MR0.
func (c *L4Conn) Call(payload uint64) (uint64, error) {
	if c.server.dead.Load() {
		return 0, ErrDeadTask
	}
	m := l4Msg{regs: Regs{IP: 0x1000, SP: 0x8000}, reply: c.reply}
	m.regs.GP[0] = payload
	select {
	case c.req <- m:
	case <-c.stop:
		return 0, ErrDeadTask
	}
	out := <-c.reply
	c.k.switchTo(c.server, c.client, &out)
	return out.GP[0], nil
}

// Close stops the server task.
func (c *L4Conn) Close() {
	c.stopOnce.Do(func() {
		c.server.dead.Store(true)
		close(c.stop)
	})
}

// --- Exokernel-style protected control transfer ---------------------------

// ExoPair models Exokernel's protected control transfer: the caller
// *donates* its time slice, installing the callee's processor context and
// continuing execution at the callee's entry point — no scheduler
// involvement. We reproduce that by running the callee's handler on the
// caller's goroutine between two protection-domain switches.
type ExoPair struct {
	k       *Kernel
	caller  *Task
	callee  *Task
	handler func(*Regs)
}

// NewExoPair creates a caller/callee pair with the standard echo handler.
func (k *Kernel) NewExoPair() *ExoPair {
	p := &ExoPair{k: k, caller: k.NewTask(16), callee: k.NewTask(16)}
	p.handler = func(r *Regs) { r.GP[0]++ }
	return p
}

// Call performs a round trip: transfer in, run handler, transfer back.
func (p *ExoPair) Call(payload uint64) (uint64, error) {
	if p.callee.dead.Load() {
		return 0, ErrDeadTask
	}
	regs := Regs{IP: 0x2000, SP: 0x9000}
	regs.GP[0] = payload
	p.k.switchTo(p.caller, p.callee, &regs) // protected control transfer in
	p.handler(&regs)
	p.k.switchTo(p.callee, p.caller, &regs) // and back
	return regs.GP[0], nil
}

// --- EROS-style capability IPC -------------------------------------------

// ErosCap is an EROS capability: an index into the kernel's capability
// table naming an endpoint, validated on every invocation.
type ErosCap struct {
	idx uint64
}

// ErosPair is a client/server pair joined by a capability. EROS adds
// orthogonal persistence: every invocation appends to a (checkpointed)
// journal.
type ErosPair struct {
	k       *Kernel
	conn    *L4Conn // EROS IPC is also a synchronous rendezvous
	capsMu  sync.Mutex
	caps    []int64 // capability table: idx -> task id
	cap     ErosCap
	journal []journalEntry
}

type journalEntry struct {
	cap uint64
	seq uint64
	mr0 uint64
}

// NewErosPair starts a server and mints a capability for it.
func (k *Kernel) NewErosPair() *ErosPair {
	p := &ErosPair{k: k, conn: k.NewL4Pair()}
	p.caps = append(p.caps, p.conn.server.ID)
	p.cap = ErosCap{idx: 0}
	p.journal = make([]journalEntry, 0, 1024)
	return p
}

// Call validates the capability, journals the invocation, and performs the
// round-trip IPC.
func (p *ErosPair) Call(payload uint64) (uint64, error) {
	p.capsMu.Lock()
	if p.cap.idx >= uint64(len(p.caps)) {
		p.capsMu.Unlock()
		return 0, fmt.Errorf("ukern: invalid capability %d", p.cap.idx)
	}
	tid := p.caps[p.cap.idx]
	p.journal = append(p.journal, journalEntry{cap: p.cap.idx, seq: uint64(len(p.journal)), mr0: payload})
	if len(p.journal) == cap(p.journal) {
		p.journal = p.journal[:0] // "checkpoint"
	}
	p.capsMu.Unlock()
	if tid != p.conn.server.ID {
		return 0, ErrDeadTask
	}
	return p.conn.Call(payload)
}

// RevokeCap invalidates the capability (EROS supports revocation natively).
func (p *ErosPair) RevokeCap() {
	p.capsMu.Lock()
	p.caps = p.caps[:0]
	p.capsMu.Unlock()
}

// Close stops the server.
func (p *ErosPair) Close() { p.conn.Close() }

// JournalLen reports journal occupancy (tests).
func (p *ErosPair) JournalLen() int {
	p.capsMu.Lock()
	defer p.capsMu.Unlock()
	return len(p.journal)
}
