package threads

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

// The registry maps carrier goroutines to their segment chains. It is the
// native-path analog of the JVM's "current thread lookup", which Table 1
// shows is a real component of LRMI cost: Go offers no ambient
// goroutine-local storage, so the lookup parses the goroutine id from
// runtime.Stack and consults a shared map — an honest reproduction of why
// that lookup was expensive on 1990s JVMs.

var registry sync.Map // gid int64 -> *Chain

// GoroutineID returns the current goroutine's id.
func GoroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// Format: "goroutine 123 [running]:"
	b := buf[:n]
	const prefix = "goroutine "
	if !bytes.HasPrefix(b, []byte(prefix)) {
		return 0
	}
	b = b[len(prefix):]
	sp := bytes.IndexByte(b, ' ')
	if sp < 0 {
		return 0
	}
	id, err := strconv.ParseInt(string(b[:sp]), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// Register binds a new chain (base segment owned by domain) to the calling
// goroutine and returns it. The caller must Unregister when done.
func Register(domain int64) *Chain {
	c := NewChain(domain)
	registry.Store(GoroutineID(), c)
	return c
}

// Unregister removes the calling goroutine's chain.
func Unregister() {
	registry.Delete(GoroutineID())
}

// CurrentChain performs the thread-info lookup for the calling goroutine.
// It returns nil when the goroutine was never registered.
func CurrentChain() *Chain {
	v, ok := registry.Load(GoroutineID())
	if !ok {
		return nil
	}
	return v.(*Chain)
}

// LookupChain performs the lookup for an explicit goroutine id (benchmarks
// use this to separate map cost from stack-parse cost).
func LookupChain(gid int64) *Chain {
	v, ok := registry.Load(gid)
	if !ok {
		return nil
	}
	return v.(*Chain)
}
