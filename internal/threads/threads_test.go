package threads

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPushPopCurrent(t *testing.T) {
	c := NewChain(1)
	base := c.Current()
	if base.Domain != 1 {
		t.Fatalf("base domain = %d", base.Domain)
	}
	s2 := c.Push(2)
	if c.Current() != s2 {
		t.Error("push did not take control")
	}
	s3 := c.Push(3)
	if c.Depth() != 3 {
		t.Errorf("depth = %d, want 3", c.Depth())
	}
	if got := c.Pop(); got != s2 {
		t.Error("pop did not return to caller segment")
	}
	_ = s3
	if got := c.Pop(); got != base {
		t.Error("pop did not return to base")
	}
}

func TestPopBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on base pop")
		}
	}()
	NewChain(1).Pop()
}

func TestStopAppliesToOwnSegmentOnly(t *testing.T) {
	c := NewChain(1)
	caller := c.Current()
	callee := c.Push(2)

	// Caller's segment stopped while callee runs: callee polls fine.
	caller.Stop("caller killed")
	if err := c.Poll(); err != nil {
		t.Fatalf("callee poll disturbed by caller stop: %v", err)
	}
	// When control returns to the caller, the stop fires.
	c.Pop()
	err := c.Poll()
	if !errors.Is(err, ErrSegmentStopped) {
		t.Fatalf("poll after return = %v, want ErrSegmentStopped", err)
	}
	if !strings.Contains(err.Error(), "caller killed") {
		t.Errorf("stop message lost: %v", err)
	}
	// The stop is one-shot.
	if err := c.Poll(); err != nil {
		t.Errorf("second poll = %v, want nil", err)
	}
	_ = callee
}

func TestStopCalleeFiresImmediately(t *testing.T) {
	c := NewChain(1)
	callee := c.Push(2)
	callee.Stop("die")
	if err := c.Poll(); !errors.Is(err, ErrSegmentStopped) {
		t.Fatalf("poll = %v", err)
	}
}

func TestSuspendParksAndResumeReleases(t *testing.T) {
	c := NewChain(1)
	seg := c.Current()
	seg.Suspend()

	released := make(chan error, 1)
	go func() { released <- c.Poll() }()

	select {
	case err := <-released:
		t.Fatalf("poll returned %v while suspended", err)
	case <-time.After(30 * time.Millisecond):
	}
	seg.Resume()
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("poll after resume = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("poll still parked after resume")
	}
}

func TestStopWakesSuspendedSegment(t *testing.T) {
	c := NewChain(1)
	seg := c.Current()
	seg.Suspend()
	released := make(chan error, 1)
	go func() { released <- c.Poll() }()
	time.Sleep(10 * time.Millisecond)
	seg.Stop("killed while parked")
	select {
	case err := <-released:
		if !errors.Is(err, ErrSegmentStopped) {
			t.Fatalf("poll = %v, want stop", err)
		}
	case <-time.After(time.Second):
		t.Fatal("stop did not wake suspended segment")
	}
}

func TestSuspendOfCallerDoesNotBlockCallee(t *testing.T) {
	c := NewChain(1)
	caller := c.Current()
	c.Push(2)
	caller.Suspend()
	done := make(chan error, 1)
	go func() { done <- c.Poll() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("callee poll = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("callee blocked by caller suspension")
	}
}

func TestPriorityClampedPerSegment(t *testing.T) {
	c := NewChain(1)
	a := c.Current()
	b := c.Push(2)
	a.SetPriority(99)
	b.SetPriority(-5)
	if a.Priority() != 10 {
		t.Errorf("a priority = %d, want 10 (clamped)", a.Priority())
	}
	if b.Priority() != 1 {
		t.Errorf("b priority = %d, want 1 (clamped)", b.Priority())
	}
}

func TestGoroutineIDStableAndDistinct(t *testing.T) {
	id1 := GoroutineID()
	if id1 == 0 {
		t.Fatal("GoroutineID returned 0")
	}
	if id2 := GoroutineID(); id2 != id1 {
		t.Fatalf("id changed within goroutine: %d then %d", id1, id2)
	}
	ch := make(chan int64)
	go func() { ch <- GoroutineID() }()
	if other := <-ch; other == id1 {
		t.Error("two goroutines share an id")
	}
}

func TestRegistryLookup(t *testing.T) {
	c := Register(7)
	defer Unregister()
	if got := CurrentChain(); got != c {
		t.Error("CurrentChain did not find registered chain")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if CurrentChain() != nil {
			t.Error("unregistered goroutine found a chain")
		}
	}()
	wg.Wait()
}
