// Package threads implements the J-Kernel's thread-segment model.
//
// The paper (§3.1, "Local-RMI stubs"): switching real threads on every
// cross-domain call would cost more than the whole call (Table 3), so the
// J-Kernel instead divides each carrier thread into segments, one per side
// of a cross-domain call, and interposes a Thread class whose stop,
// suspend, resume, and setPriority act on the *current segment* rather
// than the carrier. A caller therefore cannot stop or suspend its callee's
// execution, and a callee holding a Thread object cannot attack the caller
// after returning.
//
// A Chain is the per-carrier stack of segments. Cross-domain calls push a
// segment on entry and pop it on return. Stop and suspend requests are
// recorded on the segment and take effect when that segment is (or becomes)
// the one in control: the VM interpreter polls via a safepoint hook, and
// the native LRMI path polls at call boundaries.
package threads

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrSegmentStopped is returned (or converted to a VM ThreadDeath) when a
// stopped segment regains control.
var ErrSegmentStopped = errors.New("threads: segment stopped")

var segIDs atomic.Int64

// Seg is one side of a cross-domain call: the unit the interposed Thread
// class operates on.
type Seg struct {
	ID     int64
	Domain int64 // owning domain id
	chain  *Chain
	prev   *Seg

	mu        sync.Mutex
	stopped   bool
	stopMsg   string
	suspended bool
	priority  int64
}

// Chain is the segment stack of one carrier thread.
type Chain struct {
	mu  sync.Mutex
	top *Seg
	// cv wakes a carrier parked on a suspended segment.
	cv *sync.Cond
}

// NewChain creates a chain whose base segment belongs to domain.
func NewChain(domain int64) *Chain {
	c := &Chain{}
	c.cv = sync.NewCond(&c.mu)
	base := newSeg(c, domain, nil)
	c.top = base
	return c
}

func newSeg(c *Chain, domain int64, prev *Seg) *Seg {
	return &Seg{
		ID:       segIDs.Add(1),
		Domain:   domain,
		chain:    c,
		prev:     prev,
		priority: 5,
	}
}

// Current returns the segment in control.
func (c *Chain) Current() *Seg {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.top
}

// Push enters a new segment for domain (cross-domain call entry).
func (c *Chain) Push(domain int64) *Seg {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := newSeg(c, domain, c.top)
	c.top = s
	return s
}

// Pop leaves the top segment (cross-domain call return). It returns the
// segment that regains control. Popping the base segment is a programming
// error and panics.
func (c *Chain) Pop() *Seg {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.top == nil || c.top.prev == nil {
		panic("threads: pop of base segment")
	}
	c.top = c.top.prev
	return c.top
}

// Depth returns the number of segments (≥1).
func (c *Chain) Depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for s := c.top; s != nil; s = s.prev {
		n++
	}
	return n
}

// Poll is the safepoint check: it parks the carrier while the controlling
// segment is suspended and reports ErrSegmentStopped (with the stop
// message) when it has been stopped. The VM layer converts the error into
// a ThreadDeath throwable.
func (c *Chain) Poll() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		s := c.top
		s.mu.Lock()
		if s.stopped {
			s.stopped = false
			msg := s.stopMsg
			s.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrSegmentStopped, msg)
		}
		if !s.suspended {
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		// Parked until some segment state changes.
		c.cv.Wait()
	}
}

// Stop marks the segment stopped. If the segment is currently in control
// the carrier will observe it at its next poll; if it is a caller segment
// deeper in the chain, the stop takes effect when control returns to it.
// Crucially, stopping a segment never disturbs *other* segments of the
// same carrier: the callee cannot be killed by its caller and vice versa.
func (s *Seg) Stop(msg string) {
	s.mu.Lock()
	s.stopped = true
	s.stopMsg = msg
	s.mu.Unlock()
	s.chain.kick()
}

// Suspend marks the segment suspended; the carrier parks when this segment
// is in control (immediately if it already is, at return otherwise).
func (s *Seg) Suspend() {
	s.mu.Lock()
	s.suspended = true
	s.mu.Unlock()
	s.chain.kick()
}

// Resume clears suspension.
func (s *Seg) Resume() {
	s.mu.Lock()
	s.suspended = false
	s.mu.Unlock()
	s.chain.kick()
}

// Suspended reports whether the segment is marked suspended.
func (s *Seg) Suspended() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.suspended
}

// SetPriority sets the segment's advisory priority (clamped to 1..10).
func (s *Seg) SetPriority(p int64) {
	if p < 1 {
		p = 1
	}
	if p > 10 {
		p = 10
	}
	s.mu.Lock()
	s.priority = p
	s.mu.Unlock()
}

// Priority returns the segment's advisory priority.
func (s *Seg) Priority() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.priority
}

// kick wakes a carrier parked in Poll.
func (c *Chain) kick() {
	c.mu.Lock()
	c.cv.Broadcast()
	c.mu.Unlock()
}
