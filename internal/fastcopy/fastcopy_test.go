package fastcopy

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

type Inner struct {
	N int
	B []byte
}

type Outer struct {
	Name   string
	I      *Inner
	Vals   []int
	Lookup map[string]*Inner
}

type Ring struct {
	V    int
	Next *Ring
}

func TestCopyTree(t *testing.T) {
	c := New()
	src := &Outer{
		Name: "x",
		I:    &Inner{N: 1, B: []byte("abc")},
		Vals: []int{1, 2, 3},
		Lookup: map[string]*Inner{
			"a": {N: 2, B: []byte("def")},
		},
	}
	out, err := c.Copy(src)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*Outer)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("copy differs: %#v", got)
	}
	if got == src || got.I == src.I || got.Lookup["a"] == src.Lookup["a"] {
		t.Error("copy aliases source pointers")
	}
	got.I.B[0] = 'Z'
	if src.I.B[0] == 'Z' {
		t.Error("copy aliases byte slice")
	}
}

func TestCycleWithoutTableFails(t *testing.T) {
	a := &Ring{V: 1}
	a.Next = a
	_, err := New().Copy(a)
	if err == nil || !strings.Contains(err.Error(), "depth limit") {
		t.Fatalf("expected depth-limit error, got %v", err)
	}
}

func TestCycleWithTableSucceeds(t *testing.T) {
	a := &Ring{V: 1}
	b := &Ring{V: 2, Next: a}
	a.Next = b
	out, err := New(WithCycleTable()).Copy(a)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*Ring)
	if got.V != 1 || got.Next.V != 2 || got.Next.Next != got {
		t.Error("cycle not preserved")
	}
	if got == a {
		t.Error("copy aliases source")
	}
}

func TestSharedSubobjectWithTable(t *testing.T) {
	shared := &Inner{N: 7}
	type two struct{ A, B *Inner }
	out, err := New(WithCycleTable()).Copy(&two{A: shared, B: shared})
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*two)
	if got.A != got.B {
		t.Error("aliasing lost with cycle table enabled")
	}
}

func TestSharedSubobjectWithoutTableDuplicates(t *testing.T) {
	// Without the table the paper's fast path copies shared objects twice:
	// documented behaviour, verified here.
	shared := &Inner{N: 7}
	type two struct{ A, B *Inner }
	out, err := New().Copy(&two{A: shared, B: shared})
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*two)
	if got.A == got.B {
		t.Error("expected duplicated copies without cycle table")
	}
	if got.A.N != 7 || got.B.N != 7 {
		t.Error("values lost")
	}
}

type token struct{ id int }

func (t *token) String() string { return "token" }

func TestCapabilityPassesByReference(t *testing.T) {
	capv := &token{id: 1}
	pred := func(v any) bool { _, ok := v.(*token); return ok }
	type msg struct {
		Data []byte
		Cap  *token
	}
	out, err := New(WithCapabilityFunc(pred)).Copy(&msg{Data: []byte("d"), Cap: capv})
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*msg)
	if got.Cap != capv {
		t.Error("capability was copied; must pass by reference")
	}
	if &got.Data[0] == &[]byte("d")[0] {
		t.Error("data should be fresh")
	}
}

func TestFuncAndChanRejected(t *testing.T) {
	type bad1 struct{ F func() }
	type bad2 struct{ C chan int }
	if _, err := New().Copy(&bad1{F: func() {}}); err == nil {
		t.Error("func field accepted")
	}
	if _, err := New().Copy(&bad2{C: make(chan int)}); err == nil {
		t.Error("chan field accepted")
	}
}

func TestUnexportedFieldsZeroed(t *testing.T) {
	type mixed struct {
		Public int
		secret int
	}
	out, err := New().Copy(&mixed{Public: 1, secret: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*mixed)
	if got.Public != 1 {
		t.Error("exported field lost")
	}
	if got.secret != 0 {
		t.Error("unexported field leaked across boundary")
	}
}

func TestNilHandling(t *testing.T) {
	c := New()
	if out, err := c.Copy(nil); err != nil || out != nil {
		t.Errorf("Copy(nil) = %v, %v", out, err)
	}
	var p *Inner
	out, err := c.Copy(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*Inner) != nil {
		t.Error("nil pointer should stay nil")
	}
}

func TestSizeofEstimates(t *testing.T) {
	if n := Sizeof([]byte("12345")); n != 5 {
		t.Errorf("Sizeof(5 bytes) = %d", n)
	}
	if n := Sizeof("abc"); n != 3 {
		t.Errorf("Sizeof(string) = %d", n)
	}
	if n := Sizeof(nil); n != 0 {
		t.Errorf("Sizeof(nil) = %d", n)
	}
	type s struct {
		A int64
		B []byte
	}
	if n := Sizeof(&s{A: 1, B: make([]byte, 10)}); n != 8+8+10 {
		t.Errorf("Sizeof(struct) = %d", n)
	}
}

// Property: copies with the cycle table are deep-equal and alias-free for
// random list structures.
func TestQuickDeepEqualNoAlias(t *testing.T) {
	c := New(WithCycleTable())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		head := &Ring{V: rng.Int()}
		cur := head
		all := []*Ring{head}
		for i := 0; i < n; i++ {
			nxt := &Ring{V: rng.Int()}
			cur.Next = nxt
			cur = nxt
			all = append(all, nxt)
		}
		if rng.Intn(2) == 0 {
			cur.Next = all[rng.Intn(len(all))]
		}
		out, err := c.Copy(head)
		if err != nil {
			return false
		}
		got := out.(*Ring)
		a, b := head, got
		for i := 0; i < 3*n+3; i++ {
			if a == nil || b == nil {
				return a == nil && b == nil
			}
			if a.V != b.V || a == b {
				return false
			}
			a, b = a.Next, b.Next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
