// Package fastcopy is the J-Kernel's fast-copy mechanism for native (Go)
// targets: instead of serializing arguments into an intermediate byte
// array and parsing them back (package seri), it copies objects and their
// fields directly. The paper reports this is more than an order of
// magnitude faster for large arguments (Table 4).
//
// As in the paper, cycle/alias tracking via a hash table is opt-in
// (WithCycleTable): tracking costs time, so by default graphs are assumed
// to be trees and a depth limit converts runaway recursion (a cycle) into
// an error instead of a hang.
//
// A capability predicate can be installed so that designated values pass
// by reference rather than by copy — the heart of the J-Kernel calling
// convention.
package fastcopy

import (
	"fmt"
	"reflect"
)

// maxDepth bounds recursion when no cycle table is in use.
const maxDepth = 256

// Option configures a Copier.
type Option func(*Copier)

// WithCycleTable enables the hash table that tracks already-copied objects
// so shared and cyclic structures copy correctly (at extra cost).
func WithCycleTable() Option {
	return func(c *Copier) { c.useTable = true }
}

// WithCapabilityFunc installs a predicate for pass-by-reference values:
// when pred returns true the value crosses uncopied.
func WithCapabilityFunc(pred func(v any) bool) Option {
	return func(c *Copier) { c.isCap = pred }
}

// Copier deep-copies Go values.
type Copier struct {
	useTable bool
	isCap    func(v any) bool
}

// New creates a Copier.
func New(opts ...Option) *Copier {
	c := &Copier{}
	for _, o := range opts {
		o(c)
	}
	return c
}

type copyCtx struct {
	c     *Copier
	depth int
	seen  map[seenKey]reflect.Value
}

type seenKey struct {
	p uintptr
	t reflect.Type
	n int
}

// Copy returns a deep copy of v. The result shares no mutable memory with
// v except for values the capability predicate claims.
func (c *Copier) Copy(v any) (any, error) {
	if v == nil {
		return nil, nil
	}
	ctx := &copyCtx{c: c}
	if c.useTable {
		ctx.seen = make(map[seenKey]reflect.Value)
	}
	out, err := ctx.copyValue(reflect.ValueOf(v))
	if err != nil {
		return nil, err
	}
	return out.Interface(), nil
}

func (ctx *copyCtx) copyValue(v reflect.Value) (reflect.Value, error) {
	ctx.depth++
	defer func() { ctx.depth-- }()
	if ctx.depth > maxDepth {
		return reflect.Value{}, fmt.Errorf("fastcopy: depth limit exceeded (cyclic data without WithCycleTable?)")
	}

	// Capability pass-by-reference check applies to interface-shaped
	// values: pointers, maps, and channels of registered capability types.
	if ctx.c.isCap != nil && v.CanInterface() {
		switch v.Kind() {
		case reflect.Ptr, reflect.Interface:
			if !v.IsNil() && ctx.c.isCap(v.Interface()) {
				return v, nil
			}
		}
	}

	switch v.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128, reflect.String:
		return v, nil

	case reflect.Slice:
		if v.IsNil() {
			return v, nil
		}
		key := seenKey{p: v.Pointer(), t: v.Type(), n: v.Len()}
		if ctx.seen != nil {
			if prev, ok := ctx.seen[key]; ok {
				return prev, nil
			}
		}
		out := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		if ctx.seen != nil {
			ctx.seen[key] = out
		}
		if v.Type().Elem().Kind() == reflect.Uint8 {
			reflect.Copy(out, v)
			return out, nil
		}
		for i := 0; i < v.Len(); i++ {
			ev, err := ctx.copyValue(v.Index(i))
			if err != nil {
				return reflect.Value{}, err
			}
			out.Index(i).Set(ev)
		}
		return out, nil

	case reflect.Array:
		out := reflect.New(v.Type()).Elem()
		for i := 0; i < v.Len(); i++ {
			ev, err := ctx.copyValue(v.Index(i))
			if err != nil {
				return reflect.Value{}, err
			}
			out.Index(i).Set(ev)
		}
		return out, nil

	case reflect.Map:
		if v.IsNil() {
			return v, nil
		}
		key := seenKey{p: v.Pointer(), t: v.Type()}
		if ctx.seen != nil {
			if prev, ok := ctx.seen[key]; ok {
				return prev, nil
			}
		}
		out := reflect.MakeMapWithSize(v.Type(), v.Len())
		if ctx.seen != nil {
			ctx.seen[key] = out
		}
		iter := v.MapRange()
		for iter.Next() {
			kv, err := ctx.copyValue(iter.Key())
			if err != nil {
				return reflect.Value{}, err
			}
			vv, err := ctx.copyValue(iter.Value())
			if err != nil {
				return reflect.Value{}, err
			}
			out.SetMapIndex(kv, vv)
		}
		return out, nil

	case reflect.Ptr:
		if v.IsNil() {
			return v, nil
		}
		key := seenKey{p: v.Pointer(), t: v.Type()}
		if ctx.seen != nil {
			if prev, ok := ctx.seen[key]; ok {
				return prev, nil
			}
		}
		out := reflect.New(v.Type().Elem())
		if ctx.seen != nil {
			ctx.seen[key] = out
		}
		ev, err := ctx.copyValue(v.Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		out.Elem().Set(ev)
		return out, nil

	case reflect.Struct:
		out := reflect.New(v.Type()).Elem()
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				// Unexported fields cannot be copied via reflection; a
				// struct with unexported state must be a capability or
				// implement its own transfer. Zero value is deliberate: no
				// hidden channel crosses the domain boundary.
				continue
			}
			fv, err := ctx.copyValue(v.Field(i))
			if err != nil {
				return reflect.Value{}, fmt.Errorf("field %s: %w", t.Field(i).Name, err)
			}
			out.Field(i).Set(fv)
		}
		return out, nil

	case reflect.Interface:
		if v.IsNil() {
			return v, nil
		}
		ev, err := ctx.copyValue(v.Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		out := reflect.New(v.Type()).Elem()
		out.Set(ev)
		return out, nil

	case reflect.Func, reflect.Chan, reflect.UnsafePointer:
		return reflect.Value{}, fmt.Errorf("fastcopy: %v cannot cross a domain boundary (not a capability)", v.Kind())

	default:
		return reflect.Value{}, fmt.Errorf("fastcopy: unsupported kind %v", v.Kind())
	}
}

// Sizeof estimates the transfer size of v in bytes, used for accounting
// charges at LRMI boundaries. It traverses like Copy (bounded by the same
// depth limit) but never allocates.
func Sizeof(v any) int64 {
	var walk func(reflect.Value, int) int64
	walk = func(v reflect.Value, depth int) int64 {
		if depth > maxDepth {
			return 0
		}
		switch v.Kind() {
		case reflect.Bool, reflect.Int8, reflect.Uint8:
			return 1
		case reflect.Int16, reflect.Uint16:
			return 2
		case reflect.Int32, reflect.Uint32, reflect.Float32:
			return 4
		case reflect.Int, reflect.Int64, reflect.Uint, reflect.Uint64, reflect.Float64, reflect.Uintptr:
			return 8
		case reflect.String:
			return int64(v.Len())
		case reflect.Slice, reflect.Array:
			if v.Kind() == reflect.Slice && v.IsNil() {
				return 0
			}
			if v.Kind() == reflect.Slice && v.Type().Elem().Kind() == reflect.Uint8 {
				return int64(v.Len())
			}
			var n int64
			for i := 0; i < v.Len(); i++ {
				n += walk(v.Index(i), depth+1)
			}
			return n
		case reflect.Map:
			var n int64
			iter := v.MapRange()
			for iter.Next() {
				n += walk(iter.Key(), depth+1) + walk(iter.Value(), depth+1)
			}
			return n
		case reflect.Ptr, reflect.Interface:
			if v.IsNil() {
				return 0
			}
			return 8 + walk(v.Elem(), depth+1)
		case reflect.Struct:
			var n int64
			for i := 0; i < v.NumField(); i++ {
				if v.Type().Field(i).IsExported() {
					n += walk(v.Field(i), depth+1)
				}
			}
			return n
		default:
			return 0
		}
	}
	if v == nil {
		return 0
	}
	return walk(reflect.ValueOf(v), 0)
}
