package oskit

import (
	"bytes"
	"os"
	"testing"
)

func TestMain(m *testing.M) {
	MaybeRunChild()
	os.Exit(m.Run())
}

func TestPipeRPCEcho(t *testing.T) {
	tr, err := StartPipeServer()
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, payload := range [][]byte{{1}, []byte("hello"), make([]byte, 1024)} {
		reply, err := tr.RoundTrip(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reply, payload) {
			t.Errorf("reply %v != payload %v", reply[:min(8, len(reply))], payload[:min(8, len(payload))])
		}
	}
}

func TestTCPRPCEcho(t *testing.T) {
	tr, err := StartTCPServer()
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reply, err := tr.RoundTrip([]byte{42})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) != 1 || reply[0] != 42 {
		t.Errorf("reply = %v", reply)
	}
	// Many round trips on one connection.
	for i := 0; i < 100; i++ {
		if _, err := tr.RoundTrip([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInProcCall(t *testing.T) {
	s := InProc()
	if got := s.Null(7); got != 7 {
		t.Errorf("Null(7) = %d", got)
	}
}

func TestPipeServerSurvivesManyCalls(t *testing.T) {
	tr, err := StartPipeServer()
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 500; i++ {
		if _, err := tr.RoundTrip([]byte{byte(i)}); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}
