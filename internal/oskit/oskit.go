// Package oskit provides the traditional-OS IPC baselines of Table 2:
// cross-process RPC over pipes (the NT-RPC analog), RPC over a loopback
// TCP socket (the COM out-of-proc analog), and a direct in-process
// interface call (the COM in-proc analog).
//
// The cross-process servers run in a *real* child process (the test/bench
// binary re-executes itself in server mode), so the measured costs include
// genuine kernel crossings and scheduler hops, which is the paper's point:
// "the communication between two fully protected components is at least a
// factor of 3000 from a regular C++ invocation."
package oskit

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
)

// Env variables steering the self-exec child.
const (
	envMode = "JKERNEL_OSKIT_MODE"
	envAddr = "JKERNEL_OSKIT_ADDR"
)

// MaybeRunChild turns the current process into an RPC server when the
// oskit environment variables are set, then exits. Call it first thing in
// TestMain / main of any binary that uses StartPipeServer or
// StartTCPServer.
func MaybeRunChild() {
	switch os.Getenv(envMode) {
	case "pipe":
		if err := serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "oskit pipe child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	case "tcp":
		conn, err := net.Dial("tcp", os.Getenv(envAddr))
		if err != nil {
			fmt.Fprintln(os.Stderr, "oskit tcp child:", err)
			os.Exit(1)
		}
		if err := serve(conn, conn); err != nil && err != io.EOF {
			fmt.Fprintln(os.Stderr, "oskit tcp child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
}

// serve is the echo RPC loop: length-prefixed frames echoed back.
func serve(r io.Reader, w io.Writer) error {
	br := bufio.NewReader(r)
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil
			}
			return err
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > 1<<20 {
			return fmt.Errorf("frame too large: %d", n)
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

// Transport is a connection to an RPC server.
type Transport struct {
	r    *bufio.Reader
	w    *bufio.Writer
	kill func() error
}

// RoundTrip sends payload and returns the echoed reply — one null RPC when
// payload is a single byte.
func (t *Transport) RoundTrip(payload []byte) ([]byte, error) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := t.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := t.w.Write(payload); err != nil {
		return nil, err
	}
	if err := t.w.Flush(); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	reply := make([]byte, n)
	if _, err := io.ReadFull(t.r, reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// Close shuts the transport and reaps the child.
func (t *Transport) Close() error {
	if t.kill != nil {
		return t.kill()
	}
	return nil
}

// StartPipeServer spawns the current binary as a pipe-RPC server child
// (the NT-RPC analog) and returns a connected transport.
func StartPipeServer() (*Transport, error) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), envMode+"=pipe")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	t := &Transport{
		r: bufio.NewReader(stdout),
		w: bufio.NewWriter(stdin),
		kill: func() error {
			stdin.Close()
			return cmd.Wait()
		},
	}
	return t, nil
}

// StartTCPServer spawns the current binary as a TCP-RPC server child (the
// COM out-of-proc analog) connected over loopback.
func StartTCPServer() (*Transport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), envMode+"=tcp", envAddr+"="+ln.Addr().String())
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		ln.Close()
		return nil, err
	}
	conn, err := ln.Accept()
	ln.Close()
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	t := &Transport{
		r: bufio.NewReader(conn),
		w: bufio.NewWriter(conn),
		kill: func() error {
			conn.Close()
			return cmd.Wait()
		},
	}
	return t, nil
}

// NullServer is the in-proc baseline (COM in-proc): a component behind an
// interface in the same address space.
type NullServer struct{ n int64 }

// Caller is the interface clients hold.
type Caller interface{ Null(b byte) byte }

// Null echoes its argument.
func (s *NullServer) Null(b byte) byte {
	s.n++
	return b
}

// Count reports how many calls the server saw.
func (s *NullServer) Count() int64 { return s.n }

// InProc returns an interface-typed in-process server.
func InProc() Caller { return &NullServer{} }
