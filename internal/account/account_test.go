package account

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicCharges(t *testing.T) {
	m := NewMeter(ChargeCaller)
	m.Alloc(1, 100)
	m.Alloc(1, 50)
	m.Steps(1, 7)
	m.Class(2, 300)
	s1 := m.Snapshot(1)
	if s1.AllocBytes != 150 || s1.Steps != 7 {
		t.Errorf("domain1 = %+v", s1)
	}
	if m.Snapshot(2).ClassBytes != 300 {
		t.Errorf("domain2 = %+v", m.Snapshot(2))
	}
	if m.Snapshot(99) != (Stats{}) {
		t.Error("unknown domain should be zero")
	}
}

func TestCopyPolicies(t *testing.T) {
	cases := []struct {
		policy                 CopyPolicy
		wantCaller, wantCallee int64
	}{
		{ChargeCaller, 101, 0},
		{ChargeCallee, 0, 101},
		{ChargeSplit, 51, 50},
	}
	for _, tc := range cases {
		t.Run(tc.policy.String(), func(t *testing.T) {
			m := NewMeter(tc.policy)
			m.CrossCall(1, 2, 101)
			if got := m.Snapshot(1).CopyBytes; got != tc.wantCaller {
				t.Errorf("caller copy = %d, want %d", got, tc.wantCaller)
			}
			if got := m.Snapshot(2).CopyBytes; got != tc.wantCallee {
				t.Errorf("callee copy = %d, want %d", got, tc.wantCallee)
			}
			if m.Snapshot(1).CrossCalls != 1 {
				t.Error("cross call not counted")
			}
		})
	}
}

// Conservation: whatever the policy, total copy charges equal total bytes.
func TestCopyConservationProperty(t *testing.T) {
	f := func(seed int64, policyRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := CopyPolicy(policyRaw % 3)
		m := NewMeter(policy)
		var want int64
		for i := 0; i < 50; i++ {
			caller := int64(rng.Intn(4) + 1)
			callee := int64(rng.Intn(4) + 5)
			bytes := int64(rng.Intn(10000))
			m.CrossCall(caller, callee, bytes)
			want += bytes
		}
		return m.GrandTotal(func(s Stats) int64 { return s.CopyBytes }) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreezeStopsCharges(t *testing.T) {
	m := NewMeter(ChargeCaller)
	m.Alloc(1, 10)
	m.Freeze(1)
	m.Alloc(1, 10)
	m.Steps(1, 10)
	m.Class(1, 10)
	s := m.Snapshot(1)
	if s.AllocBytes != 10 || s.Steps != 0 || s.ClassBytes != 0 {
		t.Errorf("frozen domain accrued charges: %+v", s)
	}
}

func TestDomainsSorted(t *testing.T) {
	m := NewMeter(ChargeCaller)
	m.Alloc(3, 1)
	m.Alloc(1, 1)
	m.Alloc(2, 1)
	ids := m.Domains()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("Domains() = %v", ids)
	}
}

func TestConcurrentCharging(t *testing.T) {
	m := NewMeter(ChargeSplit)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Alloc(1, 1)
				m.CrossCall(1, 2, 2)
			}
		}()
	}
	wg.Wait()
	if got := m.Snapshot(1).AllocBytes; got != 8000 {
		t.Errorf("alloc = %d, want 8000", got)
	}
	total := m.GrandTotal(func(s Stats) int64 { return s.CopyBytes })
	if total != 16000 {
		t.Errorf("copy total = %d, want 16000", total)
	}
}
