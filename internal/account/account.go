// Package account implements per-domain resource accounting.
//
// The paper (§2, "Resource Accounting") observes that object sharing makes
// it unclear whom to charge for memory and CPU, quoting Hydra: "No one
// 'owns' an object ... thus it's very hard to know to whom the cost of
// maintaining it should be charged." The J-Kernel's copy-based calling
// convention makes ownership crisp again — every non-capability object
// lives in exactly one domain — so charges have an unambiguous home. This
// package meters allocation, interpreter work, copied bytes, loaded class
// metadata, and cross-domain calls per domain, with pluggable policies for
// who pays LRMI copy costs (the open design point the paper discusses).
package account

import (
	"fmt"
	"sort"
	"sync"
)

// CopyPolicy selects who pays for LRMI argument copying.
type CopyPolicy uint8

const (
	// ChargeCaller bills the invoking domain (it chose to pass the data).
	ChargeCaller CopyPolicy = iota
	// ChargeCallee bills the receiving domain (the copy becomes its state).
	ChargeCallee
	// ChargeSplit bills each side half, rounding the odd byte to the caller.
	ChargeSplit
)

func (p CopyPolicy) String() string {
	switch p {
	case ChargeCaller:
		return "caller"
	case ChargeCallee:
		return "callee"
	case ChargeSplit:
		return "split"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Stats is a snapshot of one domain's charges.
type Stats struct {
	AllocBytes int64 // heap allocation
	Steps      int64 // interpreter instructions
	CopyBytes  int64 // LRMI argument/result copying
	ClassBytes int64 // class metadata
	CrossCalls int64 // LRMI invocations initiated
	Revoked    int64 // capabilities revoked by/for this domain
}

// Total returns the byte-denominated charges (steps and calls excluded).
func (s Stats) Total() int64 { return s.AllocBytes + s.CopyBytes + s.ClassBytes }

// Meter aggregates charges per domain id. The zero Meter is ready to use
// with the default policy (ChargeCaller).
type Meter struct {
	mu      sync.Mutex
	domains map[int64]*Stats
	policy  CopyPolicy
	frozen  map[int64]bool
}

// NewMeter creates a Meter with the given copy policy.
func NewMeter(policy CopyPolicy) *Meter {
	return &Meter{policy: policy}
}

// Policy returns the meter's copy policy.
func (m *Meter) Policy() CopyPolicy {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.policy
}

// SetPolicy changes the copy policy for subsequent charges.
func (m *Meter) SetPolicy(p CopyPolicy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policy = p
}

func (m *Meter) stats(domain int64) *Stats {
	if m.domains == nil {
		m.domains = make(map[int64]*Stats)
	}
	s, ok := m.domains[domain]
	if !ok {
		s = &Stats{}
		m.domains[domain] = s
	}
	return s
}

// Alloc charges domain for bytes of heap allocation.
func (m *Meter) Alloc(domain, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.frozen[domain] {
		return
	}
	m.stats(domain).AllocBytes += bytes
}

// Steps charges domain for interpreter work.
func (m *Meter) Steps(domain, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.frozen[domain] {
		return
	}
	m.stats(domain).Steps += n
}

// Class charges domain for class metadata.
func (m *Meter) Class(domain, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.frozen[domain] {
		return
	}
	m.stats(domain).ClassBytes += bytes
}

// CrossCall records an LRMI initiated by caller and applies the copy
// charge for bytes according to the policy.
func (m *Meter) CrossCall(caller, callee, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats(caller).CrossCalls++
	switch m.policy {
	case ChargeCaller:
		m.stats(caller).CopyBytes += bytes
	case ChargeCallee:
		m.stats(callee).CopyBytes += bytes
	case ChargeSplit:
		half := bytes / 2
		m.stats(caller).CopyBytes += bytes - half
		m.stats(callee).CopyBytes += half
	}
}

// RevokeCount records n capability revocations attributed to domain.
func (m *Meter) RevokeCount(domain, n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats(domain).Revoked += n
}

// Freeze stops further charges to domain (used at domain termination: a
// dead domain cannot accrue new costs, reproducing "clean semantics of
// domain termination" for the accounting dimension).
func (m *Meter) Freeze(domain int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.frozen == nil {
		m.frozen = make(map[int64]bool)
	}
	m.frozen[domain] = true
}

// Snapshot returns a copy of domain's stats.
func (m *Meter) Snapshot(domain int64) Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.domains[domain]; ok {
		return *s
	}
	return Stats{}
}

// Domains returns the ids with recorded charges, sorted.
func (m *Meter) Domains() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]int64, 0, len(m.domains))
	for id := range m.domains {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// GrandTotal sums a field across all domains; used by conservation tests:
// however the copy policy splits a charge, the sum over domains equals the
// bytes charged.
func (m *Meter) GrandTotal(f func(Stats) int64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, s := range m.domains {
		total += f(*s)
	}
	return total
}
