// Wire-marshaler stub generation.
//
// stubgen.go applies the paper's run-time stub-generation idea to the VM
// call path: when a capability crosses a domain boundary, genStubClass
// emits bytecode specialized to the target's method table so the invoke
// fast path never consults it reflectively again. This file is the same
// idea applied to the serializer: when a type is registered for wire
// transfer (Kernel.RegisterWireType → seri.Registry.Register), the
// registry compiles a per-type marshaler plan — closures over the
// precomputed field layout — that the encoder consults before the reflect
// walker (internal/seri/fastpath.go). Both generators run once at
// registration and pay no reflection on the hot path.
package core

import "jkernel/internal/seri"

// WirePlans reports the generated marshaler for every registered wire
// type, sorted by wire name — the serializer counterpart of the VM's
// generated stub classes, surfaced for diagnostics and tests.
func (k *Kernel) WirePlans() []seri.PlanInfo {
	return k.seriReg.Plans()
}
