package core

import (
	"strings"
	"testing"
	"time"

	"jkernel/internal/vmkit"
)

// mustAsm assembles source to class bytes.
func mustAsm(t *testing.T, src string) []byte {
	t.Helper()
	b, err := vmkit.AssembleBytes(src)
	if err != nil {
		t.Fatalf("assemble: %v\n%s", err, src)
	}
	return b
}

const readFileIface = `
.class ReadFile interface implements jk/kernel/Remote
.method readByte (I)I
.end
.method readBytes (I)[B
.end
.method fill ([B)V
.end
.method echo (Ljk/kernel/Capability;)Ljk/kernel/Capability;
.end
.method reject (Ljk/lang/Object;)I
.end
`

const readFileImpl = `
.class ReadFileImpl implements ReadFile
.field base I
.method readByte (I)I stack 4 locals 0
  load 0
  getfield ReadFileImpl.base:I
  load 1
  iadd
  retv
.end
.method readBytes (I)[B stack 4 locals 0
  load 1
  newarr "[B"
  retv
.end
.method fill ([B)V stack 6 locals 0
  load 1
  iconst 0
  iconst 9
  astore
  ret
.end
.method echo (Ljk/kernel/Capability;)Ljk/kernel/Capability; stack 2 locals 0
  load 1
  retv
.end
.method reject (Ljk/lang/Object;)I stack 2 locals 0
  iconst 1
  retv
.end
`

const clientSrc = `
.class Client
.method static run ()I stack 8 locals 1
  sconst "files"
  invokestatic jk/kernel/Repository.lookup:(Ljk/lang/String;)Ljk/kernel/Capability;
  cast ReadFile
  store 0
  load 0
  iconst 3
  invokeinterface ReadFile.readByte:(I)I
  retv
.end
.method static callCaught ()I stack 8 locals 1
try:
  invokestatic Client.run:()I
  retv
end:
revoked:
  pop
  iconst -1
  retv
terminated:
  pop
  iconst -2
  retv
  .catch jk/kernel/RevokedException from try to end using revoked
  .catch jk/kernel/DomainTerminatedException from try to end using terminated
.end
.method static copySemantics ()I stack 10 locals 2
  ; arr = [1]; cap.fill(arr); return arr[0]  (must stay 1: callee got a copy)
  iconst 1
  newarr "[B"
  store 0
  load 0
  iconst 0
  iconst 1
  astore
  sconst "files"
  invokestatic jk/kernel/Repository.lookup:(Ljk/lang/String;)Ljk/kernel/Capability;
  cast ReadFile
  load 0
  invokeinterface ReadFile.fill:([B)V
  load 0
  iconst 0
  aload
  retv
.end
.method static capIdentity ()I stack 8 locals 1
  ; echo(cap) must return the identical stub reference
  sconst "files"
  invokestatic jk/kernel/Repository.lookup:(Ljk/lang/String;)Ljk/kernel/Capability;
  store 0
  load 0
  cast ReadFile
  load 0
  invokeinterface ReadFile.echo:(Ljk/kernel/Capability;)Ljk/kernel/Capability;
  load 0
  if_acmpeq same
  iconst 0
  retv
same:
  iconst 1
  retv
.end
.method static passLocalObject ()I stack 8 locals 0
  ; passing a non-copyable object must raise RemoteException
try:
  sconst "files"
  invokestatic jk/kernel/Repository.lookup:(Ljk/lang/String;)Ljk/kernel/Capability;
  cast ReadFile
  new Client
  invokeinterface ReadFile.reject:(Ljk/lang/Object;)I
  retv
end:
handler:
  pop
  iconst 42
  retv
  .catch jk/kernel/RemoteException from try to end using handler
.end
`

// newTwoDomains builds the standard fixture: d1 serves a ReadFile
// capability named "files"; d2 runs Client against it.
func newTwoDomains(t *testing.T) (*Kernel, *Domain, *Domain, *Capability) {
	t.Helper()
	k := MustNew(Options{})
	d1, err := k.NewDomain(DomainConfig{
		Name: "server",
		Classes: map[string][]byte{
			"ReadFile":     mustAsm(t, readFileIface),
			"ReadFileImpl": mustAsm(t, readFileImpl),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := k.ShareClasses(d1, "ReadFile")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := k.NewDomain(DomainConfig{
		Name:    "client",
		Classes: map[string][]byte{"Client": mustAsm(t, clientSrc)},
		Shared:  []*SharedClass{sc},
	})
	if err != nil {
		t.Fatal(err)
	}

	task := k.NewTask(d1, "setup")
	defer task.Close()
	implClass, err := d1.NS.Resolve("ReadFileImpl")
	if err != nil {
		t.Fatal(err)
	}
	target, err := vmkit.NewInstance(implClass)
	if err != nil {
		t.Fatal(err)
	}
	target.Fields[implClass.FieldByName("base").Slot] = vmkit.IntVal(100)
	cap, err := k.CreateVMCapability(d1, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Repository().Bind("files", cap); err != nil {
		t.Fatal(err)
	}
	return k, d1, d2, cap
}

func clientCall(t *testing.T, k *Kernel, d *Domain, method string) (vmkit.Value, error) {
	t.Helper()
	task := k.NewTask(d, "client")
	defer task.Close()
	return task.CallStatic("Client." + method + ":()I")
}

func TestCrossDomainCallThroughGeneratedStub(t *testing.T) {
	k, _, d2, _ := newTwoDomains(t)
	v, err := clientCall(t, k, d2, "run")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v.I != 103 { // base 100 + arg 3
		t.Errorf("run = %d, want 103", v.I)
	}
}

func TestArgumentsAreCopiedNotShared(t *testing.T) {
	k, _, d2, _ := newTwoDomains(t)
	v, err := clientCall(t, k, d2, "copySemantics")
	if err != nil {
		t.Fatalf("copySemantics: %v", err)
	}
	if v.I != 1 {
		t.Errorf("caller's array was mutated by callee (got %d, want 1): copy semantics broken", v.I)
	}
}

func TestCapabilityPassesByReference(t *testing.T) {
	k, _, d2, _ := newTwoDomains(t)
	v, err := clientCall(t, k, d2, "capIdentity")
	if err != nil {
		t.Fatalf("capIdentity: %v", err)
	}
	if v.I != 1 {
		t.Error("capability lost identity across domains; must pass by reference")
	}
}

func TestNonCopyableObjectRejected(t *testing.T) {
	k, _, d2, _ := newTwoDomains(t)
	v, err := clientCall(t, k, d2, "passLocalObject")
	if err != nil {
		t.Fatalf("passLocalObject: %v", err)
	}
	if v.I != 42 {
		t.Errorf("expected RemoteException path (42), got %d", v.I)
	}
}

func TestRevocationThrowsAndPropagates(t *testing.T) {
	k, _, d2, cap := newTwoDomains(t)
	if cap.Revoked() {
		t.Fatal("fresh capability reports revoked")
	}
	cap.Revoke()
	if !cap.Revoked() {
		t.Fatal("revoked capability reports live")
	}
	v, err := clientCall(t, k, d2, "callCaught")
	if err != nil {
		t.Fatalf("callCaught: %v", err)
	}
	if v.I != -1 {
		t.Errorf("expected RevokedException path (-1), got %d", v.I)
	}
}

func TestDomainTerminationRevokesAllCapabilities(t *testing.T) {
	k, d1, d2, cap := newTwoDomains(t)
	d1.Terminate("test shutdown")
	if !d1.Terminated() {
		t.Fatal("domain not terminated")
	}
	if !cap.Revoked() {
		t.Fatal("termination did not revoke created capability")
	}
	v, err := clientCall(t, k, d2, "callCaught")
	if err != nil {
		t.Fatalf("callCaught: %v", err)
	}
	if v.I != -2 {
		t.Errorf("expected DomainTerminatedException path (-2), got %d", v.I)
	}
	// A dead domain cannot load classes or create capabilities.
	if _, err := d1.DefineClass(mustAsm(t, ".class Late\n.method static f ()I stack 2 locals 0\n iconst 1\n retv\n.end\n")); err == nil {
		t.Error("terminated domain accepted new classes")
	}
	if _, err := k.CreateVMCapability(d1, cap.Stub); err == nil {
		t.Error("terminated domain created a capability")
	}
}

func TestStubClassIsVerifiedBytecode(t *testing.T) {
	_, d1, _, cap := newTwoDomains(t)
	if cap.Stub == nil {
		t.Fatal("VM capability has no stub")
	}
	stubClass := cap.Stub.Class
	if !strings.HasPrefix(stubClass.Name, "jk/stub/ReadFileImpl$") {
		t.Errorf("stub class name = %s", stubClass.Name)
	}
	if stubClass.NS != d1.NS {
		t.Error("stub defined outside creating domain's namespace")
	}
	// The stub extends Capability and implements the remote interface.
	capClass := d1.K.VM.SystemClass(vmkit.ClassCapability)
	if !stubClass.AssignableTo(capClass) {
		t.Error("stub does not extend Capability")
	}
	rf, _ := d1.NS.Resolve("ReadFile")
	if !stubClass.AssignableTo(rf) {
		t.Error("stub does not implement remote interface")
	}
}

func TestCreateRequiresRemoteInterface(t *testing.T) {
	k := MustNew(Options{})
	d, err := k.NewDomain(DomainConfig{
		Name: "d",
		Classes: map[string][]byte{
			"Plain": mustAsm(t, ".class Plain\n.method f ()I stack 2 locals 0\n iconst 1\n retv\n.end\n"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := d.NS.Resolve("Plain")
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := vmkit.NewInstance(pc)
	if _, err := k.CreateVMCapability(d, obj); err != ErrNotRemote {
		t.Errorf("got %v, want ErrNotRemote", err)
	}
}

const serializableSrc = `
.class Msg implements jk/io/Serializable
.field value I
.field text Ljk/lang/String;
.field next LMsg;
`

const serialIface = `
.class Sink interface implements jk/kernel/Remote
.method consume (LMsg;)I
.end
`

const serialImpl = `
.class SinkImpl implements Sink
.method consume (LMsg;)I stack 6 locals 0
  ; mutate the received copy, return value + text length
  load 1
  iconst 999
  putfield Msg.value:I
  load 1
  getfield Msg.text:Ljk/lang/String;
  invokevirtual jk/lang/String.length:()I
  retv
.end
`

const serialClient = `
.class SClient
.method static run ()I stack 10 locals 2
  new Msg
  store 0
  load 0
  iconst 7
  putfield Msg.value:I
  load 0
  sconst "hello"
  putfield Msg.text:Ljk/lang/String;
  sconst "sink"
  invokestatic jk/kernel/Repository.lookup:(Ljk/lang/String;)Ljk/kernel/Capability;
  cast Sink
  load 0
  invokeinterface Sink.consume:(LMsg;)I
  ; callee mutated its copy to 999; ours must still be 7.
  load 0
  getfield Msg.value:I
  iadd
  retv
.end
`

func TestSerializablePathCopiesGraphs(t *testing.T) {
	k := MustNew(Options{})
	d1, err := k.NewDomain(DomainConfig{
		Name: "server",
		Classes: map[string][]byte{
			"Msg":      mustAsm(t, serializableSrc),
			"Sink":     mustAsm(t, serialIface),
			"SinkImpl": mustAsm(t, serialImpl),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := k.ShareClasses(d1, "Sink", "Msg")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := k.NewDomain(DomainConfig{
		Name:    "client",
		Classes: map[string][]byte{"SClient": mustAsm(t, serialClient)},
		Shared:  []*SharedClass{sc},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup := k.NewTask(d1, "setup")
	implClass, _ := d1.NS.Resolve("SinkImpl")
	target, _ := vmkit.NewInstance(implClass)
	cap, err := k.CreateVMCapability(d1, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Repository().Bind("sink", cap); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	task := k.NewTask(d2, "client")
	defer task.Close()
	v, err := task.CallStatic("SClient.run:()I")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// consume returns len("hello")=5, plus our unmutated 7.
	if v.I != 12 {
		t.Errorf("run = %d, want 12 (callee mutation leaked?)", v.I)
	}
}

func TestShareClassesRejectsStatics(t *testing.T) {
	k := MustNew(Options{})
	d, err := k.NewDomain(DomainConfig{
		Name: "d",
		Classes: map[string][]byte{
			"HasStatic": mustAsm(t, ".class HasStatic implements jk/kernel/Remote interface\n"),
			"Evil":      mustAsm(t, ".class Evil\n.field static leak I\n"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.ShareClasses(d, "Evil"); err == nil || !strings.Contains(err.Error(), "static field") {
		t.Errorf("static field not rejected: %v", err)
	}
}

func TestShareClassesClosureIncludesReferences(t *testing.T) {
	k := MustNew(Options{})
	d, err := k.NewDomain(DomainConfig{
		Name: "d",
		Classes: map[string][]byte{
			"Outer": mustAsm(t, ".class Outer\n.field in LInner;\n"),
			"Inner": mustAsm(t, ".class Inner\n.field x I\n"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := k.ShareClasses(d, "Outer")
	if err != nil {
		t.Fatal(err)
	}
	names := sc.Names()
	if len(names) != 2 || names[0] != "Inner" || names[1] != "Outer" {
		t.Errorf("closure = %v, want [Inner Outer]", names)
	}
}

func TestAccountingChargesCrossCalls(t *testing.T) {
	k, d1, d2, _ := newTwoDomains(t)
	if _, err := clientCall(t, k, d2, "run"); err != nil {
		t.Fatal(err)
	}
	s2 := k.Meter.Snapshot(d2.ID)
	if s2.CrossCalls == 0 {
		t.Error("cross call not accounted to caller")
	}
	if s2.Steps == 0 {
		t.Error("interpreter steps not accounted")
	}
	s1 := k.Meter.Snapshot(d1.ID)
	if s1.ClassBytes == 0 {
		t.Error("class metadata not accounted to loading domain")
	}
}

// --- native-target capabilities ----------------------------------------

type calcService struct {
	calls int
}

func (c *calcService) Add(a, b int64) (int64, error) {
	c.calls++
	return a + b, nil
}

func (c *calcService) Scramble(data []byte) ([]byte, error) {
	for i := range data {
		data[i] ^= 0xff
	}
	return data, nil
}

func (c *calcService) Boom() error {
	panic("kaboom")
}

func (c *calcService) Echo(cap *Capability) (*Capability, error) {
	return cap, nil
}

func newNativePair(t *testing.T) (*Kernel, *Domain, *Domain, *Capability, *calcService) {
	t.Helper()
	k := MustNew(Options{})
	d1, err := k.NewDomain(DomainConfig{Name: "server"})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := k.NewDomain(DomainConfig{Name: "client"})
	if err != nil {
		t.Fatal(err)
	}
	svc := &calcService{}
	cap, err := k.CreateNativeCapability(d1, svc)
	if err != nil {
		t.Fatal(err)
	}
	return k, d1, d2, cap, svc
}

func TestNativeInvoke(t *testing.T) {
	k, _, d2, cap, svc := newNativePair(t)
	task := k.NewTask(d2, "t")
	defer task.Close()
	res, err := cap.Invoke("Add", int64(2), int64(40))
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if len(res) != 1 || res[0].(int64) != 42 {
		t.Errorf("Add = %v", res)
	}
	if svc.calls != 1 {
		t.Errorf("calls = %d", svc.calls)
	}
	if _, err := cap.Invoke("NoSuch"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestNativeArgumentsCopied(t *testing.T) {
	k, _, d2, cap, _ := newNativePair(t)
	task := k.NewTask(d2, "t")
	defer task.Close()
	mine := []byte{1, 2, 3}
	res, err := cap.Invoke("Scramble", mine)
	if err != nil {
		t.Fatal(err)
	}
	if mine[0] != 1 {
		t.Error("callee mutated the caller's buffer: arguments must copy")
	}
	out := res[0].([]byte)
	if out[0] != 0xfe {
		t.Errorf("result = %v", out)
	}
	// The result is also a copy of the callee's buffer.
	out[0] = 7
	res2, _ := cap.Invoke("Scramble", mine)
	if res2[0].([]byte)[0] == 7 {
		t.Error("result aliases callee memory")
	}
}

func TestNativePanicIsolated(t *testing.T) {
	k, _, d2, cap, _ := newNativePair(t)
	task := k.NewTask(d2, "t")
	defer task.Close()
	_, err := cap.Invoke("Boom")
	re, ok := err.(*RemoteError)
	if !ok || !strings.Contains(re.Msg, "kaboom") {
		t.Fatalf("panic not isolated as RemoteError: %v", err)
	}
	// The kernel survives; later calls work.
	if _, err := cap.Invoke("Add", int64(1), int64(1)); err != nil {
		t.Errorf("kernel did not survive callee panic: %v", err)
	}
}

func TestNativeCapabilityPassByRef(t *testing.T) {
	k, d1, d2, cap, _ := newNativePair(t)
	other, err := k.CreateNativeCapability(d1, &calcService{})
	if err != nil {
		t.Fatal(err)
	}
	task := k.NewTask(d2, "t")
	defer task.Close()
	res, err := cap.Invoke("Echo", other)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].(*Capability) != other {
		t.Error("capability identity lost through native LRMI")
	}
}

func TestNativeRevocationAndTermination(t *testing.T) {
	k, d1, d2, cap, _ := newNativePair(t)
	task := k.NewTask(d2, "t")
	defer task.Close()
	cap.Revoke()
	if _, err := cap.Invoke("Add", int64(1), int64(1)); err != ErrRevoked {
		t.Errorf("got %v, want ErrRevoked", err)
	}
	cap2, _ := k.CreateNativeCapability(d1, &calcService{})
	d1.Terminate("bye")
	if _, err := cap2.Invoke("Add", int64(1), int64(1)); err != ErrDomainTerminated {
		t.Errorf("got %v, want ErrDomainTerminated", err)
	}
}

func TestNativeBindTypedStub(t *testing.T) {
	k, _, d2, cap, _ := newNativePair(t)
	task := k.NewTask(d2, "t")
	defer task.Close()
	var stub struct {
		Add      func(a, b int64) (int64, error)
		Scramble func([]byte) ([]byte, error)
	}
	if err := cap.Bind(&stub); err != nil {
		t.Fatal(err)
	}
	sum, err := stub.Add(20, 22)
	if err != nil || sum != 42 {
		t.Errorf("Add = %d, %v", sum, err)
	}
	out, err := stub.Scramble([]byte{0})
	if err != nil || out[0] != 0xff {
		t.Errorf("Scramble = %v, %v", out, err)
	}
}

func TestInvokeWithoutTaskFails(t *testing.T) {
	k, _, _, cap, _ := newNativePair(t)
	_ = k
	done := make(chan error, 1)
	go func() {
		_, err := cap.Invoke("Add", int64(1), int64(1))
		done <- err
	}()
	if err := <-done; err != ErrNotEntered {
		t.Errorf("got %v, want ErrNotEntered", err)
	}
}

// --- thread segments across LRMI ----------------------------------------

const threadedImpl = `
.class StopperImpl implements Stopper
.method selfStop ()I stack 4 locals 0
  ; stop the *current segment* (the callee side), then keep running: the
  ; stop fires at the next safepoint inside the callee.
  invokestatic jk/lang/Thread.currentThread:()Ljk/lang/Thread;
  invokevirtual jk/lang/Thread.stop:()V
loop:
  jmp loop
.end
.method ping ()I stack 2 locals 0
  iconst 1
  retv
.end
`

const threadedIface = `
.class Stopper interface implements jk/kernel/Remote
.method selfStop ()I
.end
.method ping ()I
.end
`

const threadedClient = `
.class TClient
.method static run ()I stack 4 locals 0
try:
  sconst "stopper"
  invokestatic jk/kernel/Repository.lookup:(Ljk/lang/String;)Ljk/kernel/Capability;
  cast Stopper
  invokeinterface Stopper.selfStop:()I
  retv
end:
died:
  pop
  ; callee killed itself; caller continues and can still call ping
  sconst "stopper"
  invokestatic jk/kernel/Repository.lookup:(Ljk/lang/String;)Ljk/kernel/Capability;
  cast Stopper
  invokeinterface Stopper.ping:()I
  retv
  .catch jk/lang/ThreadDeath from try to end using died
.end
`

func TestCalleeSelfStopDoesNotKillCaller(t *testing.T) {
	k := MustNew(Options{})
	d1, err := k.NewDomain(DomainConfig{
		Name: "server",
		Classes: map[string][]byte{
			"Stopper":     mustAsm(t, threadedIface),
			"StopperImpl": mustAsm(t, threadedImpl),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := k.ShareClasses(d1, "Stopper")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := k.NewDomain(DomainConfig{
		Name:    "client",
		Classes: map[string][]byte{"TClient": mustAsm(t, threadedClient)},
		Shared:  []*SharedClass{sc},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup := k.NewTask(d1, "setup")
	implClass, _ := d1.NS.Resolve("StopperImpl")
	target, _ := vmkit.NewInstance(implClass)
	cap, err := k.CreateVMCapability(d1, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Repository().Bind("stopper", cap); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	task := k.NewTask(d2, "client")
	defer task.Close()
	done := make(chan struct{})
	var v vmkit.Value
	var callErr error
	go func() {
		defer close(done)
		v, callErr = k.VM.CallStatic(task.Thread, d2.NS, "TClient.run:()I")
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("caller blocked: callee self-stop killed the carrier")
	}
	if callErr != nil {
		t.Fatalf("run: %v", callErr)
	}
	if v.I != 1 {
		t.Errorf("run = %d, want 1 (caller survived and pinged)", v.I)
	}
}

func TestSuspendedCallerSegmentParksOnReturn(t *testing.T) {
	k, _, d2, _ := newTwoDomains(t)
	task := k.NewTask(d2, "client")
	defer task.Close()

	done := make(chan error, 1)
	go func() {
		// Suspend our own base segment, then call: the callee runs, and on
		// return the carrier parks until resumed.
		base := task.Chain.Current()
		base.Suspend()
		_, err := k.VM.CallStatic(task.Thread, d2.NS, "Client.run:()I")
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("call returned while caller segment suspended: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	task.Chain.Current().Resume()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("after resume: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("carrier never resumed")
	}
}
