package core

import (
	"errors"

	"jkernel/internal/vmkit"
)

// This file implements the VM-path LRMI: the code run by
// Capability.invoke0 on behalf of generated stubs. The sequence matches
// the paper's stub description: check revocation, look up the current
// thread, switch to the creating domain's thread segment (two lock
// acquire/release pairs: segment push and pop), copy every non-capability
// argument into the callee domain, invoke the target method, copy the
// result back, and restore the caller's segment.

// Invoke0 implements vmkit.CapabilityOps.
func (c *capOps) Invoke0(env *vmkit.Env, stub *vmkit.Object, idx int64, argsArr *vmkit.Object) (vmkit.Value, *vmkit.Object) {
	g, th := c.gateOf(env, stub)
	if th != nil {
		return vmkit.Value{}, th
	}
	return g.callVM(env, idx, argsArr)
}

// callVM performs one cross-domain call on a VM-target gate.
func (g *Gate) callVM(env *vmkit.Env, idx int64, argsArr *vmkit.Object) (vmkit.Value, *vmkit.Object) {
	k := g.k
	vm := k.VM

	// Revocation and termination checks. Termination revokes all gates, so
	// the revocation check alone propagates server death to clients.
	target := g.vmTarget.Load()
	if target == nil {
		if reason := g.failureReason(); reason != nil {
			if errors.Is(reason, ErrDomainTerminated) {
				return vmkit.Value{}, vm.Throwf(vmkit.ClassTerminatedEx, "%v", reason)
			}
			return vmkit.Value{}, vm.Throwf(vmkit.ClassRevokedEx, "%v", reason)
		}
		if g.owner.Terminated() {
			return vmkit.Value{}, vm.Throwf(vmkit.ClassTerminatedEx, "domain %s terminated", g.owner.Name)
		}
		return vmkit.Value{}, vm.Throwf(vmkit.ClassRevokedEx, "capability %d revoked", g.id)
	}
	if idx < 0 || int(idx) >= len(g.methods) {
		return vmkit.Value{}, vm.Throwf(vmkit.ClassIllegalStateEx, "bad method index %d", idx)
	}
	m := g.methods[idx]

	// Thread info lookup (Table 1 row 3).
	task := k.taskForThread(env.Thread)
	if task == nil {
		return vmkit.Value{}, vm.Throwf(vmkit.ClassIllegalStateEx, "thread not managed by the kernel")
	}
	callerDomain := k.domainByID(task.Chain.Current().Domain)
	if callerDomain == nil {
		return vmkit.Value{}, vm.Throwf(vmkit.ClassIllegalStateEx, "caller domain is gone")
	}
	if callerDomain.Terminated() {
		return vmkit.Value{}, vm.Throwf(vmkit.ClassTerminatedEx, "calling domain %s terminated", callerDomain.Name)
	}

	// Unbox and copy arguments under the calling convention.
	params, _, err := vmkit.ParseMethodDesc(m.Desc)
	if err != nil {
		return vmkit.Value{}, vm.Throwf(vmkit.ClassError, "%v", err)
	}
	var raw []*vmkit.Object
	if argsArr != nil {
		raw = argsArr.Refs
	}
	if len(raw) != len(params) {
		return vmkit.Value{}, vm.Throwf(vmkit.ClassIllegalStateEx,
			"method %s wants %d args, got %d", m.Sig(), len(params), len(raw))
	}
	ctx := &vmCopyCtx{k: k, dest: g.owner}
	callArgs := make([]vmkit.Value, 1+len(params))
	callArgs[0] = vmkit.RefVal(target)
	for i, p := range params {
		v, thr := unboxArg(vm, raw[i], p)
		if thr != nil {
			return vmkit.Value{}, thr
		}
		cv, thr := ctx.copyValue(v)
		if thr != nil {
			return vmkit.Value{}, thr
		}
		callArgs[1+i] = cv
	}

	tm := k.tm
	tmStart := tm.callStart(task)

	// Segment switch: push the callee segment (lock pair #1). Buffered
	// step charges flush at each switch so work lands on the right domain.
	// Under the heavy-lock profile each pair pays the Sun-VM-style
	// synchronization bookkeeping.
	env.Thread.FlushAccounting()
	vm.RecordHeavyLock(nil)
	seg := task.Chain.Push(g.owner.ID)
	k.segs.Store(seg.ID, seg)
	g.owner.addSeg(seg)
	prevDomain := env.Thread.DomainID
	env.Thread.DomainID = g.owner.ID

	ret, thrown := vm.Invoke(env.Thread, m, callArgs)

	// Segment restore (lock pair #2).
	env.Thread.FlushAccounting()
	vm.RecordHeavyLock(nil)
	env.Thread.DomainID = prevDomain
	g.owner.removeSeg(seg)
	k.segs.Delete(seg.ID)
	task.Chain.Pop()

	// Account the call: bytes copied in both directions so far.
	defer func() {
		k.Meter.CrossCall(callerDomain.ID, g.owner.ID, ctx.bytes)
		if tm != nil {
			var callErr error
			if thrown != nil {
				callErr = errors.New("vm exception")
			}
			tm.vm(task, task.effectiveTrace(), callerDomain, g.owner, m.Name, tmStart, callErr)
		}
	}()

	if thrown != nil {
		return vmkit.Value{}, k.copyThrowable(callerDomain, thrown)
	}

	// Copy the result back into the caller's domain and box primitives for
	// the generic invoke0 signature (the stub unboxes).
	retCtx := &vmCopyCtx{k: k, dest: callerDomain}
	out, thr := boxResult(k, callerDomain, retCtx, ret, m.RetDesc())
	ctx.bytes += retCtx.bytes
	if thr != nil {
		return vmkit.Value{}, thr
	}
	return out, nil
}

// unboxArg converts a boxed invoke0 argument into the value expected by
// the parameter descriptor, validating types (user code can call invoke0
// directly, so the gate cannot trust the stub discipline).
func unboxArg(vm *vmkit.VM, o *vmkit.Object, desc string) (vmkit.Value, *vmkit.Object) {
	switch desc[0] {
	case 'I', 'Z', 'B', 'C':
		if o == nil || o.Class.Name != vmkit.ClassBoxInt {
			return vmkit.Value{}, vm.Throwf(vmkit.ClassCastEx, "expected boxed int for %s", desc)
		}
		return o.Fields[o.Class.FieldByName("v").Slot], nil
	case 'D':
		if o == nil || o.Class.Name != vmkit.ClassBoxFloat {
			return vmkit.Value{}, vm.Throwf(vmkit.ClassCastEx, "expected boxed float for %s", desc)
		}
		return o.Fields[o.Class.FieldByName("v").Slot], nil
	default:
		if o == nil {
			return vmkit.Null(), nil
		}
		// Reference argument: the runtime class must satisfy the declared
		// parameter type in the callee's namespace.
		var want *vmkit.Class
		var err error
		if desc[0] == '[' {
			want, err = o.Class.NS.Resolve(desc)
		} else {
			want, err = o.Class.NS.Resolve(desc[1 : len(desc)-1])
		}
		if err == nil && want != nil && !o.Class.AssignableTo(want) {
			return vmkit.Value{}, vm.Throwf(vmkit.ClassCastEx, "%s is not a %s", o.Class.Name, desc)
		}
		return vmkit.RefVal(o), nil
	}
}

// boxResult copies a return value to the caller domain and boxes
// primitives for the generic Object-typed invoke0 return.
func boxResult(k *Kernel, caller *Domain, ctx *vmCopyCtx, v vmkit.Value, desc string) (vmkit.Value, *vmkit.Object) {
	if desc == "" {
		return vmkit.Null(), nil
	}
	switch desc[0] {
	case 'I', 'Z', 'B', 'C':
		return boxPrim(k, caller, vmkit.ClassBoxInt, v)
	case 'D':
		return boxPrim(k, caller, vmkit.ClassBoxFloat, v)
	default:
		return ctx.copyValue(v)
	}
}

func boxPrim(k *Kernel, caller *Domain, boxClassName string, v vmkit.Value) (vmkit.Value, *vmkit.Object) {
	bc, err := caller.NS.Resolve(boxClassName)
	if err != nil {
		return vmkit.Value{}, k.VM.Throwf(vmkit.ClassError, "%v", err)
	}
	o, ierr := vmkit.NewInstance(bc)
	if ierr != nil {
		return vmkit.Value{}, k.VM.Throwf(vmkit.ClassError, "%v", ierr)
	}
	o.Fields[bc.FieldByName("v").Slot] = v
	return vmkit.RefVal(o), nil
}

// copyThrowable transfers a callee exception to the caller. Bootstrap
// (system) throwables cross as fresh instances of the same shared class
// with a copied message; everything else is wrapped in RemoteException so
// no callee objects leak through the error path.
func (k *Kernel) copyThrowable(caller *Domain, thrown *vmkit.Object) *vmkit.Object {
	cls := thrown.Class
	msg := vmkit.ThrowableMessage(thrown)
	if cls.Def != nil && cls.Def.Flags&vmkit.FlagSystem != 0 {
		return k.VM.Throwf(cls.Name, "%s", msg)
	}
	return k.VM.Throwf(vmkit.ClassRemoteEx, "remote %s: %s", cls.Name, msg)
}
