package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"jkernel/internal/vmkit"
)

// vmCopyCtx copies VM values between domains under the J-Kernel calling
// convention (§3): capabilities by reference, primitives by value, and
// every other object by deep copy — serialization for jk/io/Serializable
// classes (through a real intermediate byte array, as in the paper),
// direct field copy for jk/io/FastCopy classes, direct copy with a
// cycle-tracking hash table for jk/io/FastCopyGraph. Strings and arrays
// are always copyable. Anything else may not cross.
type vmCopyCtx struct {
	k     *Kernel
	dest  *Domain
	bytes int64
	table map[*vmkit.Object]*vmkit.Object
	depth int
}

// vmCopyMaxDepth converts runaway recursion (cycles in non-graph fast-copy
// data) into an exception, matching fastcopy's behaviour on the Go path.
const vmCopyMaxDepth = 256

func (ctx *vmCopyCtx) throwf(class, format string, args ...any) *vmkit.Object {
	return ctx.k.VM.Throwf(class, format, args...)
}

// copyValue transfers one value into ctx.dest.
func (ctx *vmCopyCtx) copyValue(v vmkit.Value) (vmkit.Value, *vmkit.Object) {
	switch v.K {
	case vmkit.KInt, vmkit.KFloat:
		ctx.bytes += 8
		return v, nil
	case vmkit.KRef:
		if v.R == nil {
			ctx.bytes += 8
			return v, nil
		}
		o, th := ctx.copyObject(v.R)
		if th != nil {
			return vmkit.Value{}, th
		}
		return vmkit.RefVal(o), nil
	default:
		return vmkit.Value{}, ctx.throwf(vmkit.ClassError, "invalid value crossing domains")
	}
}

// copyObject transfers one object into ctx.dest according to its class.
func (ctx *vmCopyCtx) copyObject(o *vmkit.Object) (*vmkit.Object, *vmkit.Object) {
	ctx.depth++
	defer func() { ctx.depth-- }()
	if ctx.depth > vmCopyMaxDepth {
		return nil, ctx.throwf(vmkit.ClassRemoteEx,
			"argument graph too deep or cyclic (declare jk/io/FastCopyGraph)")
	}
	k := ctx.k
	cls := o.Class

	// Capabilities pass by reference — the only objects that may.
	capClass := k.VM.SystemClass(vmkit.ClassCapability)
	if cls.AssignableTo(capClass) {
		ctx.bytes += 8
		return o, nil
	}

	// Arrays copy by value, recursively for reference arrays.
	if cls.IsArray() {
		return ctx.copyArray(o)
	}

	// Strings always copy (and their internal byte array copies with them,
	// so no cross-domain aliasing of string internals can arise — the
	// hazard of §2's domain-termination discussion).
	if cls.Name == vmkit.ClassString {
		ctx.bytes += int64(len(vmkit.StringText(o)))
		s, err := ctx.dest.NS.NewString(vmkit.StringText(o))
		if err != nil {
			return nil, ctx.throwf(vmkit.ClassError, "%v", err)
		}
		return s, nil
	}

	// The class must be visible in the destination namespace, and it must
	// be the *same* class — "two domains that share a class must also
	// share other classes referenced by that class".
	destCls, err := ctx.dest.NS.Resolve(cls.Name)
	if err != nil || destCls != cls {
		return nil, ctx.throwf(vmkit.ClassRemoteEx,
			"class %s is not shared with domain %s", cls.Name, ctx.dest.Name)
	}

	fastGraph := k.VM.SystemClass(vmkit.IfaceFastCopyGraph)
	fastCopy := k.VM.SystemClass(vmkit.IfaceFastCopy)
	serializable := k.VM.SystemClass(vmkit.IfaceSerializable)

	switch {
	case cls.Implements(fastGraph):
		if ctx.table == nil {
			ctx.table = make(map[*vmkit.Object]*vmkit.Object)
		}
		if prev, ok := ctx.table[o]; ok {
			return prev, nil
		}
		return ctx.copyFields(o, true)
	case cls.Implements(fastCopy):
		return ctx.copyFields(o, false)
	case cls.Implements(serializable):
		return ctx.copySerialized(o)
	default:
		return nil, ctx.throwf(vmkit.ClassRemoteEx,
			"objects of %s cannot cross domains (not a capability, not Serializable/FastCopy)", cls.Name)
	}
}

// copyFields is the fast-copy path: a fresh instance with each field
// copied under the calling convention. When track is set the new object is
// entered into the cycle table before fields copy, so cycles terminate.
func (ctx *vmCopyCtx) copyFields(o *vmkit.Object, track bool) (*vmkit.Object, *vmkit.Object) {
	dup, err := vmkit.NewInstance(o.Class)
	if err != nil {
		return nil, ctx.throwf(vmkit.ClassError, "%v", err)
	}
	dup.Owner = ctx.dest.ID
	if track {
		ctx.table[o] = dup
	}
	ctx.bytes += int64(16 + 8*len(o.Fields))
	for i, fv := range o.Fields {
		cv, th := ctx.copyValue(fv)
		if th != nil {
			return nil, th
		}
		dup.Fields[i] = cv
	}
	return dup, nil
}

// copyArray copies an array into the destination namespace.
func (ctx *vmCopyCtx) copyArray(o *vmkit.Object) (*vmkit.Object, *vmkit.Object) {
	dest := ctx.dest
	dup, err := dest.NS.NewArray(o.Class.Name, o.Len())
	if err != nil {
		return nil, ctx.throwf(vmkit.ClassRemoteEx, "array %s: %v", o.Class.Name, err)
	}
	switch {
	case o.Bytes != nil:
		copy(dup.Bytes, o.Bytes)
		ctx.bytes += int64(len(o.Bytes))
	case o.Ints != nil:
		copy(dup.Ints, o.Ints)
		ctx.bytes += int64(8 * len(o.Ints))
	case o.Floats != nil:
		copy(dup.Floats, o.Floats)
		ctx.bytes += int64(8 * len(o.Floats))
	default:
		for i, e := range o.Refs {
			if e == nil {
				continue
			}
			ce, th := ctx.copyObject(e)
			if th != nil {
				return nil, th
			}
			dup.Refs[i] = ce
		}
		ctx.bytes += int64(8 * len(o.Refs))
	}
	return dup, nil
}

// --- Serialization path -------------------------------------------------

// copySerialized runs the object through a real byte-array intermediate:
// encode the graph to bytes, then decode a fresh graph in the destination.
// This is the J-Kernel's default (slow) copy path whose cost Table 4
// measures against fast-copy.
func (ctx *vmCopyCtx) copySerialized(o *vmkit.Object) (*vmkit.Object, *vmkit.Object) {
	enc := &vmEncoder{k: ctx.k, handles: map[*vmkit.Object]uint64{}}
	if th := enc.encodeObject(o); th != nil {
		return nil, th
	}
	ctx.bytes += int64(len(enc.buf))
	dec := &vmDecoder{k: ctx.k, dest: ctx.dest, buf: enc.buf, classes: enc.classes, caps: enc.caps}
	out, th := dec.decodeObject()
	if th != nil {
		return nil, th
	}
	return out, nil
}

const (
	vtagNull = iota
	vtagInt
	vtagFloat
	vtagRef
	vtagString
	vtagArrB
	vtagArrI
	vtagArrD
	vtagArrRef
	vtagObject
	vtagCap
)

// vmEncoder serializes a VM object graph. Class identities and capability
// references travel in side tables (they are pointers, not data), while
// all field and array content goes through the byte stream.
type vmEncoder struct {
	k       *Kernel
	buf     []byte
	handles map[*vmkit.Object]uint64
	next    uint64
	classes []*vmkit.Class
	caps    []*vmkit.Object
}

func (e *vmEncoder) u(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *vmEncoder) i(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *vmEncoder) tag(t byte)  { e.buf = append(e.buf, t) }
func (e *vmEncoder) f(v float64) { e.u(math.Float64bits(v)) }
func (e *vmEncoder) str(s string) {
	e.u(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// writeClassRef emits a class reference. The first mention of a class
// writes a full class descriptor — name and declared fields — into the
// stream, exactly as Java serialization writes ObjectStreamClass
// descriptors; later mentions are back-references. The descriptor is the
// fixed cost that dominates small-argument serialization in Table 4.
func (e *vmEncoder) writeClassRef(c *vmkit.Class) {
	for i, k := range e.classes {
		if k == c {
			e.u(uint64(i)*2 + 1) // back-reference: odd
			return
		}
	}
	e.classes = append(e.classes, c)
	e.u(0) // new-class marker
	e.str(c.Name)
	fields := c.AllFields()
	n := 0
	for _, f := range fields {
		if !f.Static {
			n++
		}
	}
	e.u(uint64(n))
	for _, f := range fields {
		if !f.Static {
			e.str(f.Name)
			e.str(f.Desc)
		}
	}
}

func (e *vmEncoder) encodeValue(v vmkit.Value) *vmkit.Object {
	switch v.K {
	case vmkit.KInt:
		e.tag(vtagInt)
		e.i(v.I)
	case vmkit.KFloat:
		e.tag(vtagFloat)
		e.f(v.F)
	case vmkit.KRef:
		if v.R == nil {
			e.tag(vtagNull)
			return nil
		}
		return e.encodeObject(v.R)
	default:
		return e.k.VM.Throwf(vmkit.ClassError, "invalid value in serialization")
	}
	return nil
}

func (e *vmEncoder) encodeObject(o *vmkit.Object) *vmkit.Object {
	if h, ok := e.handles[o]; ok {
		e.tag(vtagRef)
		e.u(h)
		return nil
	}
	k := e.k
	cls := o.Class

	capClass := k.VM.SystemClass(vmkit.ClassCapability)
	if cls.AssignableTo(capClass) {
		e.tag(vtagCap)
		e.u(uint64(len(e.caps)))
		e.caps = append(e.caps, o)
		return nil
	}

	e.handles[o] = e.next
	e.next++

	switch {
	case cls.Name == vmkit.ClassString:
		e.tag(vtagString)
		text := vmkit.StringText(o)
		e.u(uint64(len(text)))
		e.buf = append(e.buf, text...)
	case cls.IsArray():
		switch {
		case o.Bytes != nil:
			// Element-wise with a per-element tag, like Java
			// serialization's generic typed-stream writes — this is where
			// the byte-array intermediate gets expensive (Table 4).
			e.tag(vtagArrB)
			e.u(uint64(len(o.Bytes)))
			for _, x := range o.Bytes {
				e.tag(vtagInt)
				e.i(int64(x))
			}
		case o.Ints != nil:
			e.tag(vtagArrI)
			e.u(uint64(len(o.Ints)))
			for _, x := range o.Ints {
				e.i(x)
			}
		case o.Floats != nil:
			e.tag(vtagArrD)
			e.u(uint64(len(o.Floats)))
			for _, x := range o.Floats {
				e.f(x)
			}
		default:
			e.tag(vtagArrRef)
			e.writeClassRef(cls)
			e.u(uint64(len(o.Refs)))
			for _, el := range o.Refs {
				if el == nil {
					e.tag(vtagNull)
					continue
				}
				if th := e.encodeObject(el); th != nil {
					return th
				}
			}
		}
	default:
		serializable := k.VM.SystemClass(vmkit.IfaceSerializable)
		fastCopy := k.VM.SystemClass(vmkit.IfaceFastCopy)
		fastGraph := k.VM.SystemClass(vmkit.IfaceFastCopyGraph)
		if !cls.Implements(serializable) && !cls.Implements(fastCopy) && !cls.Implements(fastGraph) {
			return k.VM.Throwf(vmkit.ClassRemoteEx, "%s is not serializable", cls.Name)
		}
		e.tag(vtagObject)
		e.writeClassRef(cls)
		e.u(uint64(len(o.Fields)))
		for _, fv := range o.Fields {
			if th := e.encodeValue(fv); th != nil {
				return th
			}
		}
	}
	return nil
}

// vmDecoder rebuilds a graph in the destination domain.
type vmDecoder struct {
	k       *Kernel
	dest    *Domain
	buf     []byte
	pos     int
	objs    []*vmkit.Object
	classes []*vmkit.Class
	seen    []*vmkit.Class // classes whose descriptors have been read
	caps    []*vmkit.Object
}

func (d *vmDecoder) fail(format string, args ...any) *vmkit.Object {
	return d.k.VM.Throwf(vmkit.ClassRemoteEx, "deserialize: "+format, args...)
}

func (d *vmDecoder) tag() (byte, *vmkit.Object) {
	if d.pos >= len(d.buf) {
		return 0, d.fail("truncated stream")
	}
	t := d.buf[d.pos]
	d.pos++
	return t, nil
}

func (d *vmDecoder) u() (uint64, *vmkit.Object) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad uvarint")
	}
	d.pos += n
	return v, nil
}

func (d *vmDecoder) i() (int64, *vmkit.Object) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad varint")
	}
	d.pos += n
	return v, nil
}

func (d *vmDecoder) decodeValue() (vmkit.Value, *vmkit.Object) {
	t, th := d.tag()
	if th != nil {
		return vmkit.Value{}, th
	}
	switch t {
	case vtagInt:
		v, th := d.i()
		if th != nil {
			return vmkit.Value{}, th
		}
		return vmkit.IntVal(v), nil
	case vtagFloat:
		v, th := d.u()
		if th != nil {
			return vmkit.Value{}, th
		}
		return vmkit.FloatVal(math.Float64frombits(v)), nil
	case vtagNull:
		return vmkit.Null(), nil
	default:
		d.pos--
		o, th := d.decodeObject()
		if th != nil {
			return vmkit.Value{}, th
		}
		return vmkit.RefVal(o), nil
	}
}

func (d *vmDecoder) str() (string, *vmkit.Object) {
	n, th := d.u()
	if th != nil {
		return "", th
	}
	if n > uint64(len(d.buf)-d.pos) {
		return "", d.fail("string overruns stream")
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

// readClassRef parses a class reference: either a back-reference or a full
// descriptor, which is resolved in the destination namespace, checked for
// identity with the sender's class, and validated field-by-field — the
// decode-side counterpart of Java's descriptor handling.
func (d *vmDecoder) readClassRef() (*vmkit.Class, *vmkit.Object) {
	v, th := d.u()
	if th != nil {
		return nil, th
	}
	if v%2 == 1 {
		idx := v / 2
		if idx >= uint64(len(d.seen)) {
			return nil, d.fail("bad class back-reference %d", idx)
		}
		return d.seen[idx], nil
	}
	name, th := d.str()
	if th != nil {
		return nil, th
	}
	nf, th := d.u()
	if th != nil {
		return nil, th
	}
	destCls, err := d.dest.NS.Resolve(name)
	if err != nil {
		return nil, d.fail("class %s is not shared with domain %s", name, d.dest.Name)
	}
	srcIdx := len(d.seen)
	if srcIdx >= len(d.classes) || d.classes[srcIdx] != destCls {
		return nil, d.fail("class %s binds differently in domain %s", name, d.dest.Name)
	}
	// Validate every declared field against the descriptor.
	for i := uint64(0); i < nf; i++ {
		fname, th := d.str()
		if th != nil {
			return nil, th
		}
		fdesc, th := d.str()
		if th != nil {
			return nil, th
		}
		f := destCls.FieldByName(fname)
		if f == nil || f.Desc != fdesc {
			return nil, d.fail("class %s: incompatible field %s:%s", name, fname, fdesc)
		}
	}
	d.seen = append(d.seen, destCls)
	return destCls, nil
}

func (d *vmDecoder) decodeObject() (*vmkit.Object, *vmkit.Object) {
	t, th := d.tag()
	if th != nil {
		return nil, th
	}
	switch t {
	case vtagNull:
		return nil, nil
	case vtagRef:
		h, th := d.u()
		if th != nil {
			return nil, th
		}
		if h >= uint64(len(d.objs)) {
			return nil, d.fail("dangling handle %d", h)
		}
		return d.objs[h], nil
	case vtagCap:
		i, th := d.u()
		if th != nil {
			return nil, th
		}
		if i >= uint64(len(d.caps)) {
			return nil, d.fail("dangling capability %d", i)
		}
		return d.caps[i], nil
	case vtagString:
		n, th := d.u()
		if th != nil {
			return nil, th
		}
		if n > uint64(len(d.buf)-d.pos) {
			return nil, d.fail("string overruns stream")
		}
		s, err := d.dest.NS.NewString(string(d.buf[d.pos : d.pos+int(n)]))
		d.pos += int(n)
		if err != nil {
			return nil, d.fail("%v", err)
		}
		d.objs = append(d.objs, s)
		return s, nil
	case vtagArrB, vtagArrI, vtagArrD:
		n, th := d.u()
		if th != nil {
			return nil, th
		}
		var desc string
		switch t {
		case vtagArrB:
			desc = "[B"
		case vtagArrI:
			desc = "[I"
		default:
			desc = "[D"
		}
		if n > 1<<26 {
			return nil, d.fail("array too large: %d", n)
		}
		arr, err := d.dest.NS.NewArray(desc, int(n))
		if err != nil {
			return nil, d.fail("%v", err)
		}
		d.objs = append(d.objs, arr)
		switch t {
		case vtagArrB:
			for j := range arr.Bytes {
				tt, th := d.tag()
				if th != nil {
					return nil, th
				}
				if tt != vtagInt {
					return nil, d.fail("expected element tag in byte array")
				}
				v, th := d.i()
				if th != nil {
					return nil, th
				}
				arr.Bytes[j] = byte(v)
			}
		case vtagArrI:
			for j := range arr.Ints {
				v, th := d.i()
				if th != nil {
					return nil, th
				}
				arr.Ints[j] = v
			}
		default:
			for j := range arr.Floats {
				v, th := d.u()
				if th != nil {
					return nil, th
				}
				arr.Floats[j] = math.Float64frombits(v)
			}
		}
		return arr, nil
	case vtagArrRef:
		cls, th := d.readClassRef()
		if th != nil {
			return nil, th
		}
		n, th := d.u()
		if th != nil {
			return nil, th
		}
		if n > 1<<24 {
			return nil, d.fail("array too large: %d", n)
		}
		arr, err := d.dest.NS.NewArray(cls.Name, int(n))
		if err != nil {
			return nil, d.fail("%v", err)
		}
		d.objs = append(d.objs, arr)
		for j := range arr.Refs {
			el, th := d.decodeObject()
			if th != nil {
				return nil, th
			}
			arr.Refs[j] = el
		}
		return arr, nil
	case vtagObject:
		cls, th := d.readClassRef()
		if th != nil {
			return nil, th
		}
		n, th := d.u()
		if th != nil {
			return nil, th
		}
		o, err := vmkit.NewInstance(cls)
		if err != nil {
			return nil, d.fail("%v", err)
		}
		o.Owner = d.dest.ID
		if int(n) != len(o.Fields) {
			return nil, d.fail("field count mismatch for %s", cls.Name)
		}
		d.objs = append(d.objs, o)
		for j := range o.Fields {
			v, th := d.decodeValue()
			if th != nil {
				return nil, th
			}
			o.Fields[j] = v
		}
		return o, nil
	default:
		return nil, d.fail("unknown tag %d", t)
	}
}

// CopyValueBetween copies a VM value into dest under the calling
// convention, returning the copy and the transfer size. Exposed for tests
// and the bridge layers.
func (k *Kernel) CopyValueBetween(dest *Domain, v vmkit.Value) (vmkit.Value, int64, error) {
	ctx := &vmCopyCtx{k: k, dest: dest}
	out, th := ctx.copyValue(v)
	if th != nil {
		return vmkit.Value{}, 0, &ThrownVMError{Throwable: th}
	}
	return out, ctx.bytes, nil
}

// ThrownVMError adapts a copy-path throwable to a Go error.
type ThrownVMError struct{ Throwable *vmkit.Object }

func (e *ThrownVMError) Error() string {
	return fmt.Sprintf("jkernel: %s: %s", e.Throwable.Class.Name, vmkit.ThrowableMessage(e.Throwable))
}
