package core

import (
	"sync"
	"sync/atomic"
	"time"

	"jkernel/internal/telemetry"
)

// Kernel-side telemetry: a per-kernel registry + tracer with the hot-path
// instruments pre-resolved, so the LRMI paths update plain atomics and
// never take the registry's sharded locks per call. A kernel built with
// Options.DisableTelemetry carries a nil *kernelMetrics, and every method
// here is nil-safe, so the disabled fast path is one pointer test.

type kernelMetrics struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer

	lrmiCalls   *telemetry.Counter
	lrmiLatency *telemetry.Histogram
	vmCalls     *telemetry.Counter
	vmLatency   *telemetry.Histogram
	asyncStarts *telemetry.Counter
	// asyncDones mirrors asyncStarts on resolution; the in-flight gauge is
	// starts-dones, computed at snapshot time. Two monotonic counters keep
	// each cache line owned by one side (launch vs resolve goroutine)
	// instead of ping-ponging a single gauge between them every call.
	asyncDones *telemetry.Counter

	// asyncDone increments asyncDones; allocated once so the per-future
	// resolve hook does not allocate a closure per call.
	asyncDone func()

	// Cross-domain call-graph edge counters, cached by packed
	// caller<<32|callee domain id in a copy-on-write map: the per-call
	// lookup is one atomic load + map read (no lock, no interface boxing,
	// no string building). Misses rebuild the map under edgeMu.
	edgeMu sync.Mutex
	edges  atomic.Pointer[map[uint64]*telemetry.Counter]
}

func newKernelMetrics(node string) *kernelMetrics {
	reg := telemetry.NewRegistry(node)
	m := &kernelMetrics{
		reg:         reg,
		tracer:      telemetry.NewTracer(node),
		lrmiCalls:   reg.Counter("core.lrmi.calls"),
		lrmiLatency: reg.Histogram("core.lrmi.latency_ns"),
		vmCalls:     reg.Counter("core.vm.calls"),
		vmLatency:   reg.Histogram("core.vm.latency_ns"),
		asyncStarts: reg.Counter("core.async.starts"),
		asyncDones:  reg.Counter("core.async.dones"),
	}
	m.edges.Store(&map[uint64]*telemetry.Counter{})
	dones := m.asyncDones
	m.asyncDone = func() { dones.Inc() }
	starts := m.asyncStarts
	// Read dones first: starts only ever leads dones, so this order can
	// never report a negative in-flight count.
	reg.GaugeFunc("core.async.inflight", func() int64 {
		d := dones.Value()
		return starts.Value() - d
	})
	return m
}

// Telemetry returns the kernel's metrics registry (nil when disabled).
func (k *Kernel) Telemetry() *telemetry.Registry {
	if k.tm == nil {
		return nil
	}
	return k.tm.reg
}

// Tracer returns the kernel's span recorder (nil when disabled).
func (k *Kernel) Tracer() *telemetry.Tracer {
	if k.tm == nil {
		return nil
	}
	return k.tm.tracer
}

// edgeInc counts one call on the caller→callee edge. The task's one-entry
// cache covers the overwhelming case — a task calling along the edge it
// just used — so most calls never touch the shared edge map at all.
func (m *kernelMetrics) edgeInc(t *Task, caller, callee *Domain) {
	if m == nil {
		return
	}
	key := uint64(uint32(caller.ID))<<32 | uint64(uint32(callee.ID))
	if t != nil && t.edgeCtr != nil && t.edgeKey == key {
		t.edgeCtr.IncAt(t.stripe)
		return
	}
	c := m.edge(caller, callee)
	if t != nil {
		t.edgeKey, t.edgeCtr = key, c
		c.IncAt(t.stripe)
		return
	}
	c.Inc()
}

// edge returns the caller→callee call-graph counter, caching by domain id.
func (m *kernelMetrics) edge(caller, callee *Domain) *telemetry.Counter {
	if m == nil {
		return nil
	}
	key := uint64(uint32(caller.ID))<<32 | uint64(uint32(callee.ID))
	if c := (*m.edges.Load())[key]; c != nil {
		return c
	}
	c := m.reg.Edge(caller.Name, callee.Name)
	m.edgeMu.Lock()
	old := *m.edges.Load()
	next := make(map[uint64]*telemetry.Counter, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = c
	m.edges.Store(&next)
	m.edgeMu.Unlock()
	return c
}

// callStart returns the start timestamp for one cross-domain call, or
// the zero time when the call falls outside the untraced 1-in-64 sample.
// Traced calls are always profiled; for sampled-out calls the exact
// counters still count them, but the latency histograms and trace ring
// are skipped — along with both clock reads, which dominate the
// per-call cost of telemetry. The sample tick lives on the task
// (goroutine-affine), so the decision touches no shared cache line.
func (m *kernelMetrics) callStart(t *Task) time.Time {
	if m == nil {
		return time.Time{}
	}
	t.sampleTick++
	if t.sampleTick&telemetry.UntracedSampleMask == 0 || t.effectiveTrace().Active() {
		return time.Now()
	}
	return time.Time{}
}

// span records one completed cross-domain call as a trace span continuing
// tc. The caller has already made the sampling decision (callStart).
// Untraced calls — even sampled ones — only materialize a span when they
// fail or cross the slow-call threshold: the latency histograms already
// carry their timing, and the span allocation plus trace-ring insert is
// the single most expensive piece of the whole instrumentation (GC
// pressure on an otherwise allocation-free hot loop), so it is reserved
// for spans someone will actually look at.
func (m *kernelMetrics) span(kind string, tc telemetry.TraceContext, caller, callee *Domain, method string, start time.Time, err error) {
	if m == nil {
		return
	}
	dur := time.Since(start)
	if !tc.Active() && err == nil {
		if thr := m.tracer.SlowThreshold(); thr <= 0 || dur < thr {
			return
		}
	}
	s := &telemetry.Span{
		TraceID: tc.TraceID,
		SpanID:  telemetry.NewID(),
		Parent:  tc.SpanID,
		Kind:    kind,
		Caller:  caller.Name,
		Callee:  callee.Name,
		Method:  method,
		Start:   start,
		Dur:     dur,
	}
	if s.TraceID == 0 {
		s.TraceID = s.SpanID // untraced calls get a local single-span trace
	}
	if err != nil {
		s.Err = err.Error()
	}
	m.tracer.Record(s)
}

// lrmi records one native-path LRMI. A zero start means the call fell
// outside the sample (callStart): count it exactly, skip the latency
// histogram and span.
func (m *kernelMetrics) lrmi(t *Task, tc telemetry.TraceContext, caller, callee *Domain, method string, start time.Time, err error) {
	if m == nil {
		return
	}
	m.lrmiCalls.IncAt(t.stripe)
	m.edgeInc(t, caller, callee)
	if start.IsZero() {
		return
	}
	m.lrmiLatency.ObserveSince(start)
	m.span("local", tc, caller, callee, method, start, err)
}

// vm records one VM-path LRMI (same sampling contract as lrmi).
func (m *kernelMetrics) vm(t *Task, tc telemetry.TraceContext, caller, callee *Domain, method string, start time.Time, err error) {
	if m == nil {
		return
	}
	m.vmCalls.IncAt(t.stripe)
	m.edgeInc(t, caller, callee)
	if start.IsZero() {
		return
	}
	m.vmLatency.ObserveSince(start)
	m.span("vm", tc, caller, callee, method, start, err)
}

// asyncStart counts a future launch and installs the resolution counter
// on its resolve hook (in-flight = starts - dones, see newKernelMetrics).
// The hook is stored directly: asyncStart runs right after newFuture,
// before the future escapes to any other goroutine, so the lock that
// setOnResolve takes for the general install/resolve race is not needed.
func (m *kernelMetrics) asyncStart(f *Future) {
	if m == nil {
		return
	}
	m.asyncStarts.Inc()
	f.onResolve = m.asyncDone
}

// --- trace contexts on tasks -------------------------------------------------

// BeginTrace starts a new trace on the task: subsequent calls made with it
// (and their onward hops, across the wire) record spans under one trace
// id. It returns the new context; pass its TraceID to /debug/jk?trace= to
// retrieve the stitched spans.
func (t *Task) BeginTrace() telemetry.TraceContext {
	tc := telemetry.TraceContext{TraceID: telemetry.NewID(), SpanID: telemetry.NewID()}
	t.trace = tc
	return tc
}

// EndTrace clears the task's trace context.
func (t *Task) EndTrace() { t.trace = telemetry.TraceContext{} }

// TraceContext returns the task's own trace context (zero when none).
func (t *Task) TraceContext() telemetry.TraceContext { return t.trace }

// SetTraceContext installs an inbound trace context on the task — the
// serving side of a traced remote invoke joins the caller's trace.
func (t *Task) SetTraceContext(tc telemetry.TraceContext) { t.trace = tc }

// effectiveTrace resolves the context governing a call made with this
// task: the task's own context, else the goroutine-bound context (set
// around served traced invokes, so handler code that builds fresh tasks
// still joins the inbound trace). Both lookups are free when no trace is
// active anywhere.
func (t *Task) effectiveTrace() telemetry.TraceContext {
	if t.trace.Active() {
		return t.trace
	}
	return telemetry.GoroutineContext()
}

// TracedProxyTarget is the optional traced variant of ProxyTarget: a
// transport that implements it receives the caller's trace context and
// propagates it to the serving kernel inside the invoke frame.
type TracedProxyTarget interface {
	ProxyTarget
	InvokeProxyTraced(method string, args []any, tc telemetry.TraceContext) (results []any, copied int64, err error)
}

// TracedAsyncProxyTarget is the traced variant of AsyncProxyTarget.
type TracedAsyncProxyTarget interface {
	AsyncProxyTarget
	InvokeProxyAsyncTraced(method string, args []any, tc telemetry.TraceContext, done AsyncCompleter) AsyncCanceler
}
