package core

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"jkernel/internal/fastcopy"
	"jkernel/internal/seri"
	"jkernel/internal/threads"
)

// Native targets: Go objects exposed through the same capability model as
// VM objects. The paper's system servlet is "a system servlet with access
// to native methods"; this path is its generalization. Remote methods are
// the exported methods of the target whose last result is error; stubs are
// built with reflect.MakeFunc (the native analog of run-time bytecode
// generation).

// nativeTarget is a revocable reference to a Go object's method table.
type nativeTarget struct {
	recv    reflect.Value
	methods map[string]*nativeMethod
}

// nativeMethod is one remote method: the reflect method value plus, for
// the signatures that dominate the wire hot path, a typed thunk compiled
// at capability-creation time. The thunk dispatches through a direct
// function call — no reflect.Call argument frame, no boxed receiver — and
// bails out with errThunkFallback when an argument's dynamic type misses
// the compiled shape, in which case the invoke re-dispatches through
// reflect with identical semantics.
type nativeMethod struct {
	fn    reflect.Value
	thunk func(in []any) (out []any, err error)
}

// errThunkFallback reroutes a thunk whose argument types missed the
// compiled shape to the reflect path. Never escapes invokeFrom.
var errThunkFallback = errors.New("thunk fallback")

// compileThunk builds the typed dispatch closure for common method
// shapes (run-time stub generation, as CreateNativeCapability's reflect
// stubs always were — this is the same idea pushed one level down, so the
// per-call reflection cost is paid once, at compile time). Returns nil
// for signatures without a compiled shape.
func compileThunk(fn reflect.Value) func([]any) ([]any, error) {
	switch f := fn.Interface().(type) {
	case func() error:
		return func([]any) ([]any, error) { return nil, f() }
	case func() ([]byte, error):
		return func([]any) ([]any, error) { r, err := f(); return []any{r}, err }
	case func() (string, error):
		return func([]any) ([]any, error) { r, err := f(); return []any{r}, err }
	case func() (*Capability, error):
		return func([]any) ([]any, error) { r, err := f(); return []any{r}, err }
	case func(string) error:
		return func(in []any) ([]any, error) {
			s, ok := in[0].(string)
			if !ok {
				return nil, errThunkFallback
			}
			return nil, f(s)
		}
	case func(string) (string, error):
		return func(in []any) ([]any, error) {
			s, ok := in[0].(string)
			if !ok {
				return nil, errThunkFallback
			}
			r, err := f(s)
			return []any{r}, err
		}
	case func([]byte) ([]byte, error):
		return func(in []any) ([]any, error) {
			b, ok := in[0].([]byte)
			if !ok && in[0] != nil {
				return nil, errThunkFallback
			}
			r, err := f(b)
			return []any{r}, err
		}
	case func(int64) (int64, error):
		return func(in []any) ([]any, error) {
			a, ok := in[0].(int64)
			if !ok {
				return nil, errThunkFallback
			}
			r, err := f(a)
			return []any{r}, err
		}
	case func(int64, int64) (int64, error):
		return func(in []any) ([]any, error) {
			a, ok := in[0].(int64)
			b, ok2 := in[1].(int64)
			if !ok || !ok2 {
				return nil, errThunkFallback
			}
			r, err := f(a, b)
			return []any{r}, err
		}
	case func(int64, int64) ([]byte, error):
		return func(in []any) ([]any, error) {
			a, ok := in[0].(int64)
			b, ok2 := in[1].(int64)
			if !ok || !ok2 {
				return nil, errThunkFallback
			}
			r, err := f(a, b)
			return []any{r}, err
		}
	}
	return nil
}

// CreateNativeCapability creates a capability, owned by d, for a Go target
// object. The target's remote surface is its exported methods whose final
// result is error; there must be at least one.
//
//jk:gate-target 1
func (k *Kernel) CreateNativeCapability(d *Domain, target any) (*Capability, error) {
	if d.Terminated() {
		return nil, ErrDomainTerminated
	}
	if target == nil {
		return nil, fmt.Errorf("jkernel: nil capability target")
	}
	rv := reflect.ValueOf(target)
	rt := rv.Type()
	nt := &nativeTarget{recv: rv, methods: map[string]*nativeMethod{}}
	errType := reflect.TypeOf((*error)(nil)).Elem()
	for i := 0; i < rt.NumMethod(); i++ {
		m := rt.Method(i)
		if !m.IsExported() {
			continue
		}
		mt := m.Func.Type()
		if mt.NumOut() == 0 || mt.Out(mt.NumOut()-1) != errType {
			continue
		}
		mv := rv.Method(i)
		nt.methods[m.Name] = &nativeMethod{fn: mv, thunk: compileThunk(mv)}
	}
	if len(nt.methods) == 0 {
		return nil, ErrNotRemote
	}
	g := &Gate{k: k, id: k.nextGate.Add(1), owner: d}
	g.natTarget.Store(nt)
	k.gates.Store(g.id, g)
	d.addGate(g)
	return &Capability{g: g}, nil
}

// Methods returns the remote method names of a native capability, sorted
// (empty for VM capabilities). For proxy capabilities it reports the
// remote kernel's method manifest; a proxy imported inline (as an
// argument or result) that arrived without one fetches it lazily from the
// exporting kernel — one wire round trip on the first call, cached on the
// proxy thereafter.
func (c *Capability) Methods() []string {
	if pb := c.g.proxy.Load(); pb != nil {
		return pb.t.ProxyMethods()
	}
	nt := c.g.natTarget.Load()
	if nt == nil {
		return nil
	}
	names := make([]string, 0, len(nt.methods))
	for n := range nt.methods {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Invoke performs a cross-domain call on a native capability from the
// calling goroutine's task. Results exclude the trailing error, which is
// returned separately (copied — callee errors never leak callee objects).
//
//jk:blocking
func (c *Capability) Invoke(name string, args ...any) ([]any, error) {
	k := c.g.k

	// Thread info lookup (the expensive native-path goroutine-id lookup).
	task := k.currentTask()
	if task == nil {
		return nil, ErrNotEntered
	}
	return c.invokeFrom(task, name, args)
}

// InvokeFrom performs the call with an explicit task, the "optimized"
// variant that skips the goroutine-id lookup (benchmarked as an ablation).
//
//jk:blocking
func (c *Capability) InvokeFrom(task *Task, name string, args ...any) ([]any, error) {
	return c.invokeFrom(task, name, args)
}

func (c *Capability) invokeFrom(task *Task, name string, args []any) ([]any, error) {
	g := c.g
	k := g.k

	callerDomain := k.domainByID(task.Chain.Current().Domain)
	if callerDomain == nil {
		return nil, ErrNotEntered
	}
	if callerDomain.Terminated() {
		return nil, ErrDomainTerminated
	}
	nt := g.natTarget.Load()
	if nt == nil {
		// Proxy gates forward over their transport instead of dispatching
		// locally; the callee kernel performs the method lookup.
		if pb := g.proxy.Load(); pb != nil {
			return c.invokeProxy(task, callerDomain, pb.t, name, args)
		}
		if reason := g.failureReason(); reason != nil {
			return nil, reason
		}
		if g.owner.Terminated() {
			return nil, ErrDomainTerminated
		}
		if g.vmTarget.Load() != nil {
			return nil, fmt.Errorf("jkernel: %w: VM capability requires InvokeVM", ErrNoSuchMethod)
		}
		return nil, ErrRevoked
	}
	m, ok := nt.methods[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchMethod, name)
	}
	fn := m.fn

	tm := k.tm
	start := tm.callStart(task)

	// Copy arguments in (capabilities by reference). The thunk path keeps
	// the copies as plain values; the reflect path conforms them to the
	// parameter types as it goes.
	var copied int64
	ft := fn.Type()
	if ft.NumIn() != len(args) && !ft.IsVariadic() {
		return nil, fmt.Errorf("jkernel: %s wants %d args, got %d", name, ft.NumIn(), len(args))
	}
	useThunk := m.thunk != nil
	var in []reflect.Value
	var cargs []any
	if useThunk {
		if len(args) > 0 {
			cargs = make([]any, len(args))
		}
		for i, a := range args {
			ca, n, err := k.copyNative(a)
			if err != nil {
				return nil, &CopyError{What: fmt.Sprintf("argument %d of %s", i, name), Err: err}
			}
			copied += n
			cargs[i] = ca
		}
	} else {
		in = make([]reflect.Value, len(args))
		for i, a := range args {
			ca, n, err := k.copyNative(a)
			if err != nil {
				return nil, &CopyError{What: fmt.Sprintf("argument %d of %s", i, name), Err: err}
			}
			copied += n
			var want reflect.Type
			if ft.IsVariadic() && i >= ft.NumIn()-1 {
				want = ft.In(ft.NumIn() - 1).Elem()
			} else {
				want = ft.In(i)
			}
			rv, err := conform(ca, want)
			if err != nil {
				return nil, fmt.Errorf("jkernel: %s argument %d: %w", name, i, err)
			}
			in[i] = rv
		}
	}

	// Segment switch (lock pair #1 on push, #2 on pop).
	seg := task.Chain.Push(g.owner.ID)
	k.segs.Store(seg.ID, seg)
	g.owner.addSeg(seg)

	var out []reflect.Value
	var touts []any
	var merr, callErr error
	if useThunk {
		touts, merr, callErr = safeThunk(m.thunk, cargs)
		if callErr == errThunkFallback {
			// An argument's dynamic type missed the compiled shape (a
			// numeric width the copy normalized, say): conform the copies
			// and dispatch through reflect, exactly as a thunk-less method
			// would. Thunk shapes are never variadic.
			useThunk, callErr = false, nil
			in = make([]reflect.Value, len(cargs))
			for i, ca := range cargs {
				rv, err := conform(ca, ft.In(i))
				if err != nil {
					callErr = fmt.Errorf("jkernel: %s argument %d: %w", name, i, err)
					break
				}
				in[i] = rv
			}
			if callErr == nil {
				out, callErr = safeCall(fn, in)
			}
		}
	} else {
		out, callErr = safeCall(fn, in)
	}

	g.owner.removeSeg(seg)
	k.segs.Delete(seg.ID)
	task.Chain.Pop()

	// The caller's segment may have been stopped or suspended while the
	// callee ran; honor it at the boundary (the native safepoint).
	if perr := task.Chain.Poll(); perr != nil {
		return nil, perr
	}

	k.Meter.CrossCall(callerDomain.ID, g.owner.ID, copied)
	if tm != nil {
		tm.lrmi(task, task.effectiveTrace(), callerDomain, g.owner, name, start, callErr)
	}

	if callErr != nil {
		return nil, callErr
	}

	// Copy results out. The last result is the error (already split off on
	// the thunk path).
	if useThunk {
		results := make([]any, 0, len(touts))
		for i, tv := range touts {
			cv, _, err := k.copyNative(tv)
			if err != nil {
				return nil, &CopyError{What: fmt.Sprintf("result %d of %s", i, name), Err: err}
			}
			results = append(results, cv)
		}
		if merr != nil {
			return results, copyErrorOut(merr)
		}
		return results, nil
	}
	results := make([]any, 0, len(out)-1)
	for i := 0; i < len(out)-1; i++ {
		cv, n, err := k.copyNative(out[i].Interface())
		if err != nil {
			return nil, &CopyError{What: fmt.Sprintf("result %d of %s", i, name), Err: err}
		}
		_ = n
		results = append(results, cv)
	}
	errOut := out[len(out)-1]
	if !errOut.IsNil() {
		return results, copyErrorOut(errOut.Interface().(error))
	}
	return results, nil
}

// safeThunk invokes a compiled method thunk, converting a callee panic
// into a RemoteError exactly as safeCall does. The thunk's
// errThunkFallback sentinel comes back as callErr so the caller can
// re-dispatch; any other error is the method's own, returned as merr.
func safeThunk(thunk func([]any) ([]any, error), in []any) (out []any, merr, callErr error) {
	defer func() {
		if r := recover(); r != nil {
			out, merr = nil, nil
			callErr = &RemoteError{Class: "panic", Msg: fmt.Sprint(r)}
		}
	}()
	out, merr = thunk(in)
	if merr == errThunkFallback {
		return nil, nil, errThunkFallback
	}
	return out, merr, nil
}

// safeCall invokes fn, converting a callee panic into a RemoteError: a
// crash in one component must not crash the others (failure isolation).
func safeCall(fn reflect.Value, in []reflect.Value) (out []reflect.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = &RemoteError{Class: "panic", Msg: fmt.Sprint(r)}
		}
	}()
	return fn.Call(in), nil
}

// copyErrorOut transfers a callee error to the caller. Kernel sentinel
// errors keep their identity, and errors wrapping a sentinel (a proxy's
// "connection lost" fault, say) are rebuilt around the same sentinel so
// errors.Is works across domains; everything else crosses as a copied
// RemoteError.
func copyErrorOut(err error) error {
	switch err {
	case ErrRevoked, ErrDomainTerminated, ErrNotRemote, ErrNoSuchMethod, ErrNotEntered:
		return err
	}
	for _, sentinel := range []error{ErrRevoked, ErrDomainTerminated, ErrNotRemote, ErrNoSuchMethod, ErrNotEntered} {
		if errors.Is(err, sentinel) {
			return fmt.Errorf("%w: %s", sentinel, err.Error())
		}
	}
	if re, ok := err.(*RemoteError); ok {
		return &RemoteError{Class: re.Class, Msg: re.Msg}
	}
	return &RemoteError{Class: fmt.Sprintf("%T", err), Msg: err.Error()}
}

// copyNative applies the calling convention to a Go value: capabilities by
// reference, everything else deep-copied by the type's registered mode.
func (k *Kernel) copyNative(v any) (any, int64, error) {
	if v == nil {
		return nil, 0, nil
	}
	if c, ok := v.(*Capability); ok {
		return c, 8, nil
	}
	n := fastcopy.Sizeof(v)
	switch k.copyModeFor(v) {
	case copyModeSeri:
		out, err := seri.Copy(k.seriReg, v)
		return out, n, err
	case copyModeFastGraph:
		out, err := k.graphCop.Copy(v)
		return out, n, err
	default:
		out, err := k.copier.Copy(v)
		return out, n, err
	}
}

// conform adapts a copied value to the parameter type, converting numeric
// widths that the copy normalized.
func conform(v any, want reflect.Type) (reflect.Value, error) {
	if v == nil {
		switch want.Kind() {
		case reflect.Ptr, reflect.Interface, reflect.Slice, reflect.Map, reflect.Func, reflect.Chan:
			return reflect.Zero(want), nil
		}
		return reflect.Value{}, fmt.Errorf("nil for non-nilable %v", want)
	}
	rv := reflect.ValueOf(v)
	if rv.Type().AssignableTo(want) {
		return rv, nil
	}
	if rv.Type().ConvertibleTo(want) {
		switch rv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64, reflect.String:
			return rv.Convert(want), nil
		}
	}
	return reflect.Value{}, fmt.Errorf("%v is not assignable to %v", rv.Type(), want)
}

// Bind fills a struct of func fields with typed stubs for this capability:
// the Go equivalent of casting a capability to a remote interface. Each
// exported func field must name a remote method; its last result must be
// error. Calls through the stub follow the full LRMI path.
//
//	var files struct {
//	    Read  func(name string) ([]byte, error)
//	    Write func(name string, data []byte) error
//	}
//	if err := cap.Bind(&files); err != nil { ... }
//	data, err := files.Read("motd")
func (c *Capability) Bind(stubStruct any) error {
	pv := reflect.ValueOf(stubStruct)
	if pv.Kind() != reflect.Ptr || pv.Elem().Kind() != reflect.Struct {
		return fmt.Errorf("jkernel: Bind wants a pointer to a struct of funcs")
	}
	sv := pv.Elem()
	st := sv.Type()
	errType := reflect.TypeOf((*error)(nil)).Elem()
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if !f.IsExported() {
			continue
		}
		if f.Type.Kind() != reflect.Func {
			continue
		}
		ft := f.Type
		if ft.NumOut() == 0 || ft.Out(ft.NumOut()-1) != errType {
			return fmt.Errorf("jkernel: stub %s must return error last", f.Name)
		}
		name := f.Name
		stub := reflect.MakeFunc(ft, func(in []reflect.Value) []reflect.Value {
			args := make([]any, len(in))
			for j, v := range in {
				args[j] = v.Interface()
			}
			results, err := c.Invoke(name, args...)
			out := make([]reflect.Value, ft.NumOut())
			for j := 0; j < ft.NumOut()-1; j++ {
				if j < len(results) && results[j] != nil {
					rv, cerr := conform(results[j], ft.Out(j))
					if cerr != nil && err == nil {
						err = cerr
					}
					if cerr == nil {
						out[j] = rv
						continue
					}
				}
				out[j] = reflect.Zero(ft.Out(j))
			}
			if err != nil {
				out[ft.NumOut()-1] = reflect.ValueOf(&err).Elem()
			} else {
				out[ft.NumOut()-1] = reflect.Zero(errType)
			}
			return out
		})
		sv.Field(i).Set(stub)
	}
	return nil
}

// EnterBaseDomain is a convenience for callers that need an anonymous
// context: it creates a task for d on the current goroutine and returns a
// cleanup func.
func (k *Kernel) EnterBaseDomain(d *Domain, name string) (task *Task, cleanup func()) {
	t := k.NewTask(d, name)
	return t, t.Close
}

// currentChainDomain reports the calling goroutine's current domain id, or
// -1 when unregistered (diagnostics).
func (k *Kernel) currentChainDomain() int64 {
	ch := threads.CurrentChain()
	if ch == nil {
		return -1
	}
	return ch.Current().Domain
}
