package core

import (
	"fmt"

	"jkernel/internal/vmkit"
)

// This file bridges Go callers to VM capabilities and back: Go code (the
// web server bridge, examples, tools) can perform LRMI on capabilities
// whose targets are VM objects. Values convert at the boundary: integers,
// floats, strings, byte slices, and capabilities; anything richer must be
// expressed as a VM class and crosses under the normal calling convention.

// CapabilityFromStub wraps a VM stub object in a Go handle.
func (k *Kernel) CapabilityFromStub(stub *vmkit.Object) (*Capability, error) {
	capClass := k.VM.SystemClass(vmkit.ClassCapability)
	if stub == nil || !stub.Class.AssignableTo(capClass) {
		return nil, fmt.Errorf("jkernel: not a capability stub")
	}
	f := capClass.FieldByName("gate")
	g := k.gateByID(stub.Fields[f.Slot].I)
	if g == nil {
		return nil, fmt.Errorf("jkernel: stub's gate is gone")
	}
	return &Capability{g: g, Stub: stub}, nil
}

// IsVM reports whether the capability's target is a VM object.
func (c *Capability) IsVM() bool { return c.Stub != nil }

// InvokeVM performs an LRMI on a VM capability from Go code running under
// task. The method is named by its simple name (it must be unambiguous
// among the capability's remote methods). Go arguments convert to VM
// values in the caller's domain; the result converts back.
func (c *Capability) InvokeVM(task *Task, method string, args ...any) (any, error) {
	g := c.g
	k := g.k
	if g.vmTarget.Load() == nil && !g.Revoked() {
		return nil, fmt.Errorf("jkernel: InvokeVM on a native capability (use Invoke)")
	}

	idx := -1
	for i, m := range g.methods {
		if m.Name == method {
			if idx >= 0 {
				return nil, fmt.Errorf("jkernel: method %s is overloaded; use full signatures via VM code", method)
			}
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchMethod, method)
	}
	m := g.methods[idx]
	params, _, err := vmkit.ParseMethodDesc(m.Desc)
	if err != nil {
		return nil, err
	}
	if len(params) != len(args) {
		return nil, fmt.Errorf("jkernel: %s wants %d args, got %d", method, len(params), len(args))
	}

	caller := task.Domain
	boxed, err := caller.NS.NewArray("[Ljk/lang/Object;", len(args))
	if err != nil {
		return nil, err
	}
	for i, a := range args {
		o, err := goToVMBoxed(k, caller, a)
		if err != nil {
			return nil, fmt.Errorf("jkernel: argument %d of %s: %w", i, method, err)
		}
		boxed.Refs[i] = o
	}

	env := &vmkit.Env{VM: k.VM, NS: caller.NS, Thread: task.Thread}
	ret, thrown := g.callVM(env, int64(idx), boxed)
	if thrown != nil {
		return nil, &ThrownVMError{Throwable: thrown}
	}
	return vmToGo(k, ret, m.RetDesc())
}

// goToVMBoxed converts a Go value into the boxed *Object form invoke0
// expects, allocated in the caller's domain.
func goToVMBoxed(k *Kernel, caller *Domain, a any) (*vmkit.Object, error) {
	switch v := a.(type) {
	case nil:
		return nil, nil
	case *Capability:
		if v.Stub == nil {
			return nil, fmt.Errorf("native capability cannot enter the VM")
		}
		return v.Stub, nil
	case *vmkit.Object:
		return v, nil
	case int:
		return boxVMInt(caller, int64(v))
	case int64:
		return boxVMInt(caller, v)
	case byte:
		return boxVMInt(caller, int64(v))
	case bool:
		if v {
			return boxVMInt(caller, 1)
		}
		return boxVMInt(caller, 0)
	case float64:
		bc, err := caller.NS.Resolve(vmkit.ClassBoxFloat)
		if err != nil {
			return nil, err
		}
		o, ierr := vmkit.NewInstance(bc)
		if ierr != nil {
			return nil, ierr
		}
		o.Fields[bc.FieldByName("v").Slot] = vmkit.FloatVal(v)
		return o, nil
	case string:
		return caller.NS.NewString(v)
	case []byte:
		arr, err := caller.NS.NewArray("[B", len(v))
		if err != nil {
			return nil, err
		}
		copy(arr.Bytes, v)
		return arr, nil
	default:
		return nil, fmt.Errorf("unsupported Go type %T at the VM boundary", a)
	}
}

func boxVMInt(caller *Domain, v int64) (*vmkit.Object, error) {
	bc, err := caller.NS.Resolve(vmkit.ClassBoxInt)
	if err != nil {
		return nil, err
	}
	o, ierr := vmkit.NewInstance(bc)
	if ierr != nil {
		return nil, ierr
	}
	o.Fields[bc.FieldByName("v").Slot] = vmkit.IntVal(v)
	return o, nil
}

// vmToGo converts a VM return value (already copied into the caller's
// domain by callVM) to a Go value.
func vmToGo(k *Kernel, v vmkit.Value, desc string) (any, error) {
	if desc == "" {
		return nil, nil
	}
	switch desc[0] {
	case 'I', 'Z', 'B', 'C':
		// callVM boxed it for the generic invoke0 return.
		if v.R == nil {
			return nil, fmt.Errorf("jkernel: null boxed result")
		}
		return v.R.Fields[v.R.Class.FieldByName("v").Slot].I, nil
	case 'D':
		if v.R == nil {
			return nil, fmt.Errorf("jkernel: null boxed result")
		}
		return v.R.Fields[v.R.Class.FieldByName("v").Slot].F, nil
	}
	if v.R == nil {
		return nil, nil
	}
	o := v.R
	switch {
	case o.Class.Name == vmkit.ClassString:
		return vmkit.StringText(o), nil
	case o.Class.Name == "[B":
		out := make([]byte, len(o.Bytes))
		copy(out, o.Bytes)
		return out, nil
	case o.Class.AssignableTo(k.VM.SystemClass(vmkit.ClassCapability)):
		return k.CapabilityFromStub(o)
	default:
		// Opaque VM object: hand back the reference for VM-side use.
		return o, nil
	}
}
