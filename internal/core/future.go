package core

import (
	"sync"
	"sync/atomic"

	"jkernel/internal/telemetry"
)

// Asynchronous invocation: InvokeAsync starts a cross-domain call and
// returns a Future immediately, so a supervisor can fan one call out to
// every worker shard and join — the remote follow-on to the paper's
// Table 4 lesson that many small calls cost far more than one large one.
// Futures are gate-flavor agnostic: local native gates run the ordinary
// LRMI on a detached task, while transports that implement
// AsyncProxyTarget (internal/remote) start a genuinely non-blocking wire
// invocation, which is what lets the connection coalesce many pending
// calls into one multi-invoke frame.
//
// Future semantics, proven equivalent for local and remote gates by the
// conformance table in future_conformance_test.go:
//
//   - resolve-once: a future resolves exactly once, whichever of
//     completion, Cancel, or revocation happens first; later outcomes are
//     dropped.
//   - fault propagation: callee failures surface from Wait exactly as
//     they would from a synchronous Invoke (same sentinels, RemoteError
//     copies).
//   - revocation-aware: revoking the capability (or terminating its
//     owner, or losing its connection) resolves every in-flight future
//     with the capability fault — a join never outlives the gate.
//   - Cancel is advisory: it resolves the future with ErrCancelled and
//     releases the transport slot, but the call it abandoned may still
//     execute on the callee (exactly like revocation mid-call).

// Future is the pending result of an asynchronous cross-domain call.
type Future struct {
	method string

	mu        sync.Mutex
	resolved  bool
	results   []any
	err       error
	onCancel  AsyncCanceler // transport hook: releases the pending wire slot
	onResolve func()        // telemetry hook: runs exactly once, on resolution

	// Wire completion context (CompleteWire): set before the transport
	// dispatch on the starting goroutine, read on the transport's reader.
	// The transport's own synchronization (its enqueue lock) orders the
	// writes before any CompleteWire call.
	wk               *Kernel
	wCaller, wCallee int64

	// done is created on demand (Done, or a Wait that actually blocks):
	// on the batched hot path most futures resolve before anyone waits,
	// so the eager channel was an allocation per call for nothing.
	done chan struct{}

	// Intrusive revocation watch (see Gate.watchFuture). gw is the gate
	// this future is registered on (written under that gate's hookMu,
	// read atomically by resolve); prevW/nextW link the gate's watch
	// list, guarded by hookMu.
	gw           atomic.Pointer[Gate]
	prevW, nextW *Future
}

// newFuture creates an unresolved future for method name.
func newFuture(method string) *Future {
	return &Future{method: method}
}

// resolvedFuture creates a future born resolved (immediate failures).
func resolvedFuture(method string, results []any, err error) *Future {
	f := newFuture(method)
	f.resolve(results, err)
	return f
}

// Method returns the remote method name the future is waiting on.
func (f *Future) Method() string { return f.method }

// resolve settles the future exactly once. The first caller wins; every
// later resolution (a late reply racing a cancellation, say) is dropped.
func (f *Future) resolve(results []any, err error) {
	f.mu.Lock()
	if f.resolved {
		f.mu.Unlock()
		return
	}
	f.resolved = true
	f.results = results
	f.err = err
	f.onCancel = nil
	hook := f.onResolve
	f.onResolve = nil
	done := f.done
	f.mu.Unlock()
	if done != nil {
		close(done)
	}
	if g := f.gw.Load(); g != nil {
		g.unwatchFuture(f)
	}
	if hook != nil {
		hook()
	}
}

// Done returns a channel closed when the future resolves. The channel is
// created on first use; callers that only Wait on an already-resolved
// future never allocate one.
func (f *Future) Done() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done == nil {
		f.done = make(chan struct{})
		if f.resolved {
			close(f.done)
		}
	}
	return f.done
}

// Resolved reports whether the future has settled.
func (f *Future) Resolved() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resolved
}

// Wait blocks until the future resolves and returns its results and
// error, following the same conventions as Invoke. It is idempotent:
// every call returns the same outcome.
//
//jk:blocking
func (f *Future) Wait() ([]any, error) {
	f.mu.Lock()
	if f.resolved {
		results, err := f.results, f.err
		f.mu.Unlock()
		return results, err
	}
	if f.done == nil {
		f.done = make(chan struct{})
	}
	done := f.done
	f.mu.Unlock()
	<-done
	return f.results, f.err
}

// Cancel abandons the call: the future resolves with ErrCancelled and the
// transport's pending slot is released. It is a no-op on a resolved
// future — in particular, a future already holding a revocation fault
// keeps it. The abandoned call may still run to completion on the callee;
// its result is dropped.
func (f *Future) Cancel() {
	f.mu.Lock()
	if f.resolved {
		f.mu.Unlock()
		return
	}
	cancel := f.onCancel
	f.mu.Unlock()
	if cancel != nil {
		cancel.CancelAsync()
	}
	f.resolve(nil, ErrCancelled)
}

// setCancel installs the transport cancel hook unless the future already
// resolved (in which case the transport slot is released immediately).
func (f *Future) setCancel(cancel AsyncCanceler) {
	f.mu.Lock()
	if !f.resolved {
		f.onCancel = cancel
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	cancel.CancelAsync()
}

// CompleteWire implements AsyncCompleter: the transport resolves the
// future directly, charging the caller's account for the bytes copied
// across the wire on the way.
func (f *Future) CompleteWire(results []any, copied int64, err error) {
	f.wk.Meter.CrossCall(f.wCaller, f.wCallee, copied)
	f.resolve(results, err)
}

// WaitAll joins a fan-out: it waits for every future and returns the
// first error encountered (by argument order), or nil.
//
//jk:blocking
func WaitAll(futures ...*Future) error {
	var first error
	for _, f := range futures {
		if _, err := f.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// revocationFault is the error an in-flight future resolves with when its
// gate is severed: the recorded failure reason when one exists (e.g. a
// transport's "connection lost"), else the termination or revocation
// sentinel — identical to what a fresh synchronous Invoke would return.
func (g *Gate) revocationFault() error {
	if reason := g.failureReason(); reason != nil {
		return reason
	}
	if g.owner != nil && g.owner.Terminated() {
		return ErrDomainTerminated
	}
	return ErrRevoked
}

// InvokeAsync starts a cross-domain call from the calling goroutine's
// task and returns immediately. The caller's task stays free for further
// calls (sync or async) while the future is in flight.
func (c *Capability) InvokeAsync(name string, args ...any) *Future {
	k := c.g.k
	task := k.currentTask()
	if task == nil {
		return resolvedFuture(name, nil, ErrNotEntered)
	}
	return c.invokeAsync(task, k.domainByID(task.Chain.Current().Domain), name, args)
}

// InvokeAsyncFrom is InvokeAsync with an explicit task naming the calling
// domain. Unlike InvokeFrom, the task is not occupied by the call: the
// invocation runs detached, so one task can fan out any number of
// concurrent futures and keep making synchronous calls meanwhile.
func (c *Capability) InvokeAsyncFrom(task *Task, name string, args ...any) *Future {
	return c.invokeAsync(task, task.K.domainByID(task.Chain.Current().Domain), name, args)
}

// invokeAsync starts the call on behalf of caller, from task (which stays
// free; it only contributes the calling context).
func (c *Capability) invokeAsync(task *Task, caller *Domain, name string, args []any) *Future {
	g := c.g
	k := g.k
	if caller == nil {
		return resolvedFuture(name, nil, ErrNotEntered)
	}
	if caller.Terminated() {
		return resolvedFuture(name, nil, ErrDomainTerminated)
	}
	f := newFuture(name)
	k.tm.asyncStart(f)
	// Revocation awareness: severing the gate — revocation, owner
	// termination, or a transport fault — resolves the future with the
	// capability fault. Registration is intrusive (the future links into
	// the gate's watch list, no closures); on an already-revoked gate it
	// resolves f inline, before any transport work happens.
	g.watchFuture(f)
	if f.Resolved() {
		return f
	}

	// Transports that can start a call without blocking take the wire
	// path: the completion callback runs on the transport's reader, and
	// pending calls may be coalesced into batched frames.
	if pb := g.proxy.Load(); pb != nil {
		if apt, ok := pb.t.(AsyncProxyTarget); ok {
			// The future is its own completion callback (CompleteWire):
			// no per-call closure crosses into the transport.
			f.wk, f.wCaller, f.wCallee = k, caller.ID, g.owner.ID
			var cancel AsyncCanceler
			// Traced transports receive the active context so it crosses
			// the wire inside the (possibly batched) invoke frame.
			tc := telemetry.TraceContext{}
			if k.tm != nil {
				tc = task.effectiveTrace()
			}
			if tapt, ok := apt.(TracedAsyncProxyTarget); ok && tc.Active() {
				cancel = tapt.InvokeProxyAsyncTraced(name, args, tc, f)
			} else {
				cancel = apt.InvokeProxyAsync(name, args, f)
			}
			k.tm.edgeInc(task, caller, g.owner)
			f.setCancel(cancel)
			return f
		}
	}

	// Local gates (and transports without an async path) run the ordinary
	// synchronous invoke on a detached task in the caller's domain, so the
	// full LRMI semantics — segment switch, accounting, termination
	// unwinding — hold unchanged.
	dt := k.NewDetachedTask(caller, "async:"+name)
	if k.tm != nil {
		dt.trace = task.effectiveTrace()
	}
	go func() {
		defer dt.Close()
		results, err := c.invokeFrom(dt, name, args)
		f.resolve(results, err)
	}()
	return f
}
