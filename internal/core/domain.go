package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"jkernel/internal/threads"
	"jkernel/internal/vmkit"
)

// DomainConfig describes a new protection domain.
type DomainConfig struct {
	// Name must be unique within the kernel.
	Name string
	// Classes maps class names to binary class files loadable on demand:
	// the domain's local classes.
	Classes map[string][]byte
	// Shared lists shared-class groups visible to this domain (the
	// SharedClass capabilities it has been given).
	Shared []*SharedClass
	// Resolver, when set, is consulted after Classes, Shared, and the
	// system classes — the user-defined tail of the paper's "class name
	// resolvers".
	Resolver vmkit.ResolverFunc
	// Output receives the domain's System.println output.
	Output io.Writer
}

// Domain is one protection domain: a namespace, a set of thread segments,
// an account, and the capabilities it created.
type Domain struct {
	K    *Kernel
	ID   int64
	Name string
	NS   *vmkit.Namespace

	terminated atomic.Bool

	mu      sync.Mutex
	created []*Gate
	segs    map[int64]*threads.Seg
}

// NewDomain creates a protection domain. Its namespace sees: the
// interposed per-domain System and Thread classes, its local classes, the
// shared classes it was granted, the safe system classes, and finally any
// custom resolver.
func (k *Kernel) NewDomain(cfg DomainConfig) (*Domain, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("jkernel: domain needs a name")
	}
	if _, exists := k.byName.Load(cfg.Name); exists {
		return nil, fmt.Errorf("jkernel: domain %q already exists", cfg.Name)
	}
	d := &Domain{
		K:    k,
		ID:   k.nextDom.Add(1),
		Name: cfg.Name,
		segs: make(map[int64]*threads.Seg),
	}

	shared := map[string]*vmkit.Class{}
	for _, sc := range cfg.Shared {
		for _, c := range sc.Classes() {
			if prev, dup := shared[c.Name]; dup && prev != c {
				return nil, fmt.Errorf("jkernel: conflicting shared classes named %s", c.Name)
			}
			shared[c.Name] = c
		}
	}

	boot := k.VM.BootResolver()
	resolver := func(name string) (*vmkit.Resolution, error) {
		// Interposed classes never resolve through sharing or bootstrap:
		// each domain gets its own copy, defined eagerly below.
		if src := vmkit.InterposedClassSource(name); src != "" {
			b, err := vmkit.AssembleBytes(src)
			if err != nil {
				return nil, err
			}
			return &vmkit.Resolution{Bytes: b}, nil
		}
		if b, ok := cfg.Classes[name]; ok {
			return &vmkit.Resolution{Bytes: b}, nil
		}
		if c, ok := shared[name]; ok {
			return &vmkit.Resolution{Shared: c}, nil
		}
		if res, err := boot(name); res != nil || err != nil {
			return res, err
		}
		if cfg.Resolver != nil {
			return cfg.Resolver(name)
		}
		return nil, nil
	}

	ns := k.VM.NewNamespace(cfg.Name, resolver)
	ns.OwnerID = d.ID
	ns.Output = cfg.Output
	ns.ThreadOps = &domainThreadOps{k: k, d: d}
	d.NS = ns

	// Define the interposed classes eagerly so the domain starts complete.
	for _, name := range []string{vmkit.ClassSystem, vmkit.ClassThread} {
		if _, err := ns.Resolve(name); err != nil {
			return nil, fmt.Errorf("jkernel: interposing %s: %w", name, err)
		}
	}

	k.domains.Store(d.ID, d)
	k.byName.Store(cfg.Name, d)
	return d, nil
}

// Terminated reports whether the domain has been terminated.
func (d *Domain) Terminated() bool { return d.terminated.Load() }

// Terminate ends the domain: every capability it created is revoked (so
// its memory may be freed and failures propagate to clients as
// RevokedException), its running segments are stopped, new LRMI in or out
// is refused, and its account freezes. This is the paper's "clean
// semantics of domain termination".
func (d *Domain) Terminate(reason string) {
	if !d.terminated.CompareAndSwap(false, true) {
		return
	}
	d.mu.Lock()
	gates := append([]*Gate(nil), d.created...)
	segs := make([]*threads.Seg, 0, len(d.segs))
	for _, s := range d.segs {
		segs = append(segs, s)
	}
	d.mu.Unlock()

	for _, g := range gates {
		g.revoke()
	}
	d.K.Meter.RevokeCount(d.ID, int64(len(gates)))
	for _, s := range segs {
		s.Stop(terminationStopMsg + ": " + reason)
	}
	d.K.Meter.Freeze(d.ID)
}

// addGate records a gate created by this domain (revoked on termination).
func (d *Domain) addGate(g *Gate) {
	d.mu.Lock()
	d.created = append(d.created, g)
	d.mu.Unlock()
}

// CreatedCapabilities returns how many capabilities the domain created.
func (d *Domain) CreatedCapabilities() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.created)
}

func (d *Domain) addSeg(s *threads.Seg) {
	d.mu.Lock()
	if d.segs == nil {
		d.segs = make(map[int64]*threads.Seg)
	}
	d.segs[s.ID] = s
	d.mu.Unlock()
	// A segment entering a dead domain dies immediately.
	if d.Terminated() {
		s.Stop(terminationStopMsg)
	}
}

func (d *Domain) removeSeg(s *threads.Seg) {
	d.mu.Lock()
	delete(d.segs, s.ID)
	d.mu.Unlock()
}

// DefineClass loads bytecode into the domain's namespace directly (the
// dynamic-upload path: servers feed uploaded servlet bytecode here).
func (d *Domain) DefineClass(data []byte) (*vmkit.Class, error) {
	if d.Terminated() {
		return nil, ErrDomainTerminated
	}
	return d.NS.DefineClass(data)
}

// NewInstance allocates a zeroed instance of a domain class, resolving the
// class through the domain's namespace if necessary.
func (d *Domain) NewInstance(className string) (*vmkit.Object, error) {
	if d.Terminated() {
		return nil, ErrDomainTerminated
	}
	cls, err := d.NS.Resolve(className)
	if err != nil {
		return nil, err
	}
	return vmkit.NewInstance(cls)
}

// SetIntField stores an integer into a named instance field (a Go-side
// convenience for initializing VM capability targets).
func (d *Domain) SetIntField(obj *vmkit.Object, field string, v int64) error {
	f := obj.Class.FieldByName(field)
	if f == nil || f.Static {
		return fmt.Errorf("jkernel: no instance field %s in %s", field, obj.Class.Name)
	}
	obj.Fields[f.Slot] = vmkit.IntVal(v)
	return nil
}

// SetBytesField stores a fresh byte array into a named instance field.
func (d *Domain) SetBytesField(obj *vmkit.Object, field string, data []byte) error {
	f := obj.Class.FieldByName(field)
	if f == nil || f.Static {
		return fmt.Errorf("jkernel: no instance field %s in %s", field, obj.Class.Name)
	}
	arr, err := d.NS.NewArray("[B", len(data))
	if err != nil {
		return err
	}
	copy(arr.Bytes, data)
	obj.Fields[f.Slot] = vmkit.RefVal(arr)
	return nil
}

// SetStringField stores a String into a named instance field.
func (d *Domain) SetStringField(obj *vmkit.Object, field string, s string) error {
	f := obj.Class.FieldByName(field)
	if f == nil || f.Static {
		return fmt.Errorf("jkernel: no instance field %s in %s", field, obj.Class.Name)
	}
	str, err := d.NS.NewString(s)
	if err != nil {
		return err
	}
	obj.Fields[f.Slot] = vmkit.RefVal(str)
	return nil
}

// Stats returns the domain's resource account snapshot.
func (d *Domain) Stats() accountStats { return d.K.Meter.Snapshot(d.ID) }

func (d *Domain) String() string { return fmt.Sprintf("domain[%d %s]", d.ID, d.Name) }

// domainThreadOps gives the interposed jk/lang/Thread class its segment
// semantics. Thread objects are per-domain and hold a segment id; since
// non-capability objects cannot cross domains, a domain can only ever hold
// Thread objects denoting its own segments.
type domainThreadOps struct {
	k *Kernel
	d *Domain
}

func (ops *domainThreadOps) segOf(env *vmkit.Env, threadObj *vmkit.Object) (*threads.Seg, *vmkit.Object) {
	f := threadObj.Class.FieldByName("id")
	if f == nil {
		return nil, env.VM.Throwf(vmkit.ClassIllegalStateEx, "not a thread object")
	}
	id := threadObj.Fields[f.Slot].I
	v, ok := ops.k.segs.Load(id)
	if !ok {
		return nil, env.VM.Throwf(vmkit.ClassIllegalStateEx, "segment %d is gone", id)
	}
	seg := v.(*threads.Seg)
	if seg.Domain != ops.d.ID {
		// Unreachable if the copy rules hold; defense in depth.
		return nil, env.VM.Throwf(vmkit.ClassIllegalStateEx, "segment belongs to another domain")
	}
	return seg, nil
}

func (ops *domainThreadOps) Current(env *vmkit.Env) (*vmkit.Object, *vmkit.Object) {
	chain, _ := env.Thread.Data.(*threads.Chain)
	if chain == nil {
		return nil, env.VM.Throwf(vmkit.ClassIllegalStateEx, "thread has no segment chain")
	}
	seg := chain.Current()
	tc, err := ops.d.NS.Resolve(vmkit.ClassThread)
	if err != nil {
		return nil, env.VM.Throwf(vmkit.ClassError, "%v", err)
	}
	o, ierr := vmkit.NewInstance(tc)
	if ierr != nil {
		return nil, env.VM.Throwf(vmkit.ClassError, "%v", ierr)
	}
	o.Fields[tc.FieldByName("id").Slot] = vmkit.IntVal(seg.ID)
	return o, nil
}

func (ops *domainThreadOps) Stop(env *vmkit.Env, threadObj *vmkit.Object) *vmkit.Object {
	seg, th := ops.segOf(env, threadObj)
	if th != nil {
		return th
	}
	seg.Stop("Thread.stop")
	return nil
}

func (ops *domainThreadOps) Suspend(env *vmkit.Env, threadObj *vmkit.Object) *vmkit.Object {
	seg, th := ops.segOf(env, threadObj)
	if th != nil {
		return th
	}
	seg.Suspend()
	return nil
}

func (ops *domainThreadOps) Resume(env *vmkit.Env, threadObj *vmkit.Object) *vmkit.Object {
	seg, th := ops.segOf(env, threadObj)
	if th != nil {
		return th
	}
	seg.Resume()
	return nil
}

func (ops *domainThreadOps) SetPriority(env *vmkit.Env, threadObj *vmkit.Object, p int64) *vmkit.Object {
	seg, th := ops.segOf(env, threadObj)
	if th != nil {
		return th
	}
	seg.SetPriority(p)
	return nil
}

func (ops *domainThreadOps) GetPriority(env *vmkit.Env, threadObj *vmkit.Object) (int64, *vmkit.Object) {
	seg, th := ops.segOf(env, threadObj)
	if th != nil {
		return 0, th
	}
	return seg.Priority(), nil
}
