package core

import (
	"testing"
)

func TestRepositoryBindLookupUnbind(t *testing.T) {
	k := MustNew(Options{})
	d, err := k.NewDomain(DomainConfig{Name: "d"})
	if err != nil {
		t.Fatal(err)
	}
	cap1, err := k.CreateNativeCapability(d, &calcService{})
	if err != nil {
		t.Fatal(err)
	}
	cap2, err := k.CreateNativeCapability(d, &calcService{})
	if err != nil {
		t.Fatal(err)
	}
	r := k.Repository()
	if err := r.Bind("a", cap1); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind("a", cap2); err == nil {
		t.Error("duplicate bind accepted")
	}
	if got := r.Lookup("a"); got != cap1 {
		t.Error("lookup returned wrong capability")
	}
	r.Rebind("a", cap2)
	if got := r.Lookup("a"); got != cap2 {
		t.Error("rebind did not replace")
	}
	if err := r.Bind("b", cap1); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	r.Unbind("a")
	if r.Lookup("a") != nil {
		t.Error("unbind left binding")
	}
}

func TestDomainFieldHelpers(t *testing.T) {
	k := MustNew(Options{})
	d, err := k.NewDomain(DomainConfig{
		Name: "d",
		Classes: map[string][]byte{
			"Rec": mustAsm(t, ".class Rec\n.field n I\n.field data [B\n.field label Ljk/lang/String;\n"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := d.NewInstance("Rec")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetIntField(obj, "n", 42); err != nil {
		t.Fatal(err)
	}
	if err := d.SetBytesField(obj, "data", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetStringField(obj, "label", "hi"); err != nil {
		t.Fatal(err)
	}
	if err := d.SetIntField(obj, "missing", 1); err == nil {
		t.Error("missing field accepted")
	}
	cls := obj.Class
	if obj.Fields[cls.FieldByName("n").Slot].I != 42 {
		t.Error("int field lost")
	}
	if len(obj.Fields[cls.FieldByName("data").Slot].R.Bytes) != 2 {
		t.Error("bytes field lost")
	}
}

func TestInvokeVMConversions(t *testing.T) {
	k := MustNew(Options{})
	iface := mustAsm(t, `
.class Conv interface implements jk/kernel/Remote
.method twice (Ljk/lang/String;)Ljk/lang/String;
.end
.method xor ([B)[B
.end
.method half (D)D
.end
`)
	impl := mustAsm(t, `
.class ConvImpl implements Conv
.method twice (Ljk/lang/String;)Ljk/lang/String; stack 4 locals 0
  load 1
  load 1
  invokevirtual jk/lang/String.concat:(Ljk/lang/String;)Ljk/lang/String;
  retv
.end
.method xor ([B)[B stack 2 locals 0
  load 1
  retv
.end
.method half (D)D stack 4 locals 0
  load 1
  dconst 2.0
  ddiv
  retv
.end
`)
	host, err := k.NewDomain(DomainConfig{
		Name:    "host",
		Classes: map[string][]byte{"Conv": iface, "ConvImpl": impl},
	})
	if err != nil {
		t.Fatal(err)
	}
	user, err := k.NewDomain(DomainConfig{Name: "user"})
	if err != nil {
		t.Fatal(err)
	}
	target, err := host.NewInstance("ConvImpl")
	if err != nil {
		t.Fatal(err)
	}
	cap, err := k.CreateVMCapability(host, target)
	if err != nil {
		t.Fatal(err)
	}
	task := k.NewTask(user, "t")
	defer task.Close()

	out, err := cap.InvokeVM(task, "twice", "ab")
	if err != nil || out.(string) != "abab" {
		t.Errorf("twice = %v, %v", out, err)
	}
	out, err = cap.InvokeVM(task, "xor", []byte{1, 2, 3})
	if err != nil || len(out.([]byte)) != 3 {
		t.Errorf("xor = %v, %v", out, err)
	}
	out, err = cap.InvokeVM(task, "half", 5.0)
	if err != nil || out.(float64) != 2.5 {
		t.Errorf("half = %v, %v", out, err)
	}
	if _, err := cap.InvokeVM(task, "nonexistent"); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := cap.InvokeVM(task, "twice"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := cap.InvokeVM(task, "twice", 7); err == nil {
		t.Error("type mismatch accepted (int for string param)")
	}
}

func TestDetachedTaskUsableAcrossGoroutines(t *testing.T) {
	k := MustNew(Options{})
	d, err := k.NewDomain(DomainConfig{
		Name: "d",
		Classes: map[string][]byte{
			"W": mustAsm(t, ".class W\n.method static f ()I stack 2 locals 0\n iconst 7\n retv\n.end\n"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	task := k.NewDetachedTask(d, "worker")
	defer task.Close()
	// Serial handoff between goroutines, as a task pool does.
	for g := 0; g < 3; g++ {
		errc := make(chan error, 1)
		go func() {
			v, err := task.CallStatic("W.f:()I")
			if err == nil && v.I != 7 {
				err = ErrNoSuchMethod
			}
			errc <- err
		}()
		if err := <-errc; err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
