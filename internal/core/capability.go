package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"jkernel/internal/vmkit"
)

// Gate is the kernel side of a capability: it holds the (revocable)
// pointer to the target and performs the cross-domain calling convention.
// Stubs — VM bytecode stubs and native reflect stubs alike — funnel every
// invocation through their gate.
type Gate struct {
	k     *Kernel
	id    int64
	owner *Domain

	// Exactly one of vmTarget/natTarget/proxy is used. Revocation nulls
	// the pointer, making the target collectable regardless of who holds
	// the stub (the paper's revoke semantics).
	vmTarget  atomic.Pointer[vmkit.Object]
	natTarget atomic.Pointer[nativeTarget]
	proxy     atomic.Pointer[proxyBox]

	// failure, when set before revocation, is the error subsequent
	// invokers receive instead of the bare ErrRevoked — e.g. "remote
	// connection lost" for proxies whose transport died.
	failure atomic.Pointer[error]

	// Revocation observers (transports push revocation to remote proxies
	// through these). Fired exactly once.
	hookMu     sync.Mutex
	hooksFired bool
	nextHook   int
	onRevoke   map[int]func()

	// futHead is the intrusive list of in-flight futures watching this
	// gate (hookMu). Registration and removal are pointer swaps — the
	// async hot path pays no closure or map allocation per call.
	futHead *Future

	// VM dispatch table: remote methods in stable order; sig -> index.
	methods []*vmkit.Method
	bySig   map[string]int
	ifaces  []*vmkit.Class
}

// ID returns the gate id (the value stored in VM stubs' gate field).
func (g *Gate) ID() int64 { return g.id }

// Owner returns the creating domain.
func (g *Gate) Owner() *Domain { return g.owner }

// Revoked reports whether the gate has been revoked.
func (g *Gate) Revoked() bool {
	return g.vmTarget.Load() == nil && g.natTarget.Load() == nil && g.proxy.Load() == nil
}

// revoke severs the target pointers and fires the revocation observers
// (exactly once, no matter how many paths revoke the gate).
func (g *Gate) revoke() {
	g.vmTarget.Store(nil)
	g.natTarget.Store(nil)
	g.proxy.Store(nil)
	g.hookMu.Lock()
	if g.hooksFired {
		g.hookMu.Unlock()
		return
	}
	g.hooksFired = true
	hooks := g.onRevoke
	g.onRevoke = nil
	// Detach the future watch list while still holding hookMu: once gw is
	// cleared, a racing resolve's unwatchFuture is a no-op, so the list
	// links below are exclusively this walker's.
	watchers := g.futHead
	g.futHead = nil
	for f := watchers; f != nil; f = f.nextW {
		f.gw.Store(nil)
	}
	g.hookMu.Unlock()
	for _, h := range hooks {
		h()
	}
	for f := watchers; f != nil; {
		next := f.nextW
		f.prevW, f.nextW = nil, nil
		f.resolve(nil, g.revocationFault())
		f = next
	}
}

// OnRevoke registers fn to run when the gate is revoked (directly, or by
// domain termination). If the gate is already revoked, fn runs
// immediately. Transports use this to push revocation to remote proxies.
// The returned func unregisters fn; a transport must call it when its
// connection dies, or the closure (and everything it captures) stays
// pinned to the gate for the gate's lifetime.
func (g *Gate) OnRevoke(fn func()) (remove func()) {
	g.hookMu.Lock()
	if g.hooksFired {
		g.hookMu.Unlock()
		fn()
		return func() {}
	}
	if g.onRevoke == nil {
		g.onRevoke = make(map[int]func())
	}
	id := g.nextHook
	g.nextHook++
	g.onRevoke[id] = fn
	g.hookMu.Unlock()
	return func() {
		g.hookMu.Lock()
		delete(g.onRevoke, id)
		g.hookMu.Unlock()
	}
}

// watchFuture registers f to resolve with the capability fault when the
// gate is severed. The registration is intrusive — f links into the
// gate's watch list, no closure or map entry — and is undone by f's own
// resolution (unwatchFuture) or consumed by revoke. On an already-revoked
// gate f resolves inline before watchFuture returns.
func (g *Gate) watchFuture(f *Future) {
	g.hookMu.Lock()
	if g.hooksFired {
		g.hookMu.Unlock()
		f.resolve(nil, g.revocationFault())
		return
	}
	f.gw.Store(g)
	f.nextW = g.futHead
	if g.futHead != nil {
		g.futHead.prevW = f
	}
	g.futHead = f
	g.hookMu.Unlock()
}

// unwatchFuture unlinks f from the watch list; a no-op if revoke already
// detached it (the double-check under hookMu resolves that race).
func (g *Gate) unwatchFuture(f *Future) {
	g.hookMu.Lock()
	if f.gw.Load() == g {
		if f.prevW != nil {
			f.prevW.nextW = f.nextW
		} else {
			g.futHead = f.nextW
		}
		if f.nextW != nil {
			f.nextW.prevW = f.prevW
		}
		f.gw.Store(nil)
		f.prevW, f.nextW = nil, nil
	}
	g.hookMu.Unlock()
}

// RevokeHooks reports the number of registered revocation observers,
// including in-flight futures watching the gate. Diagnostics only: a
// transport must deregister its hooks when its connection dies or its
// export table entry is released, so a gate that accumulates hooks across
// connection churn is leaking.
func (g *Gate) RevokeHooks() int {
	g.hookMu.Lock()
	defer g.hookMu.Unlock()
	n := len(g.onRevoke)
	for f := g.futHead; f != nil; f = f.nextW {
		n++
	}
	return n
}

// failureReason returns the recorded failure, or nil.
func (g *Gate) failureReason() error {
	if p := g.failure.Load(); p != nil {
		return *p
	}
	return nil
}

// Capability is the Go-facing handle on a capability. For VM capabilities
// Stub is the generated stub object that VM code receives; for native
// capabilities Stub is nil and Invoke/Bind are the entry points.
//
//jk:cap
type Capability struct {
	g    *Gate
	Stub *vmkit.Object
}

// Gate exposes the underlying gate (read-only uses: id, owner).
func (c *Capability) Gate() *Gate { return c.g }

// Revoke severs the capability. All subsequent uses fail with
// ErrRevoked / jk.kernel.RevokedException.
func (c *Capability) Revoke() {
	c.g.revoke()
	c.g.k.Meter.RevokeCount(c.g.owner.ID, 1)
}

// RevokeWithReason severs the capability, recording reason as the error
// subsequent invokers receive. Wrap a kernel sentinel (ErrRevoked,
// ErrDomainTerminated) so errors.Is keeps working — transports use this to
// turn a lost worker connection into a descriptive capability fault. Only
// the first recorded reason sticks.
func (c *Capability) RevokeWithReason(reason error) {
	if reason != nil {
		c.g.failure.CompareAndSwap(nil, &reason)
	}
	c.Revoke()
}

// Revoked reports whether the capability has been revoked.
func (c *Capability) Revoked() bool { return c.g.Revoked() }

// Owner returns the domain that created the capability.
func (c *Capability) Owner() *Domain { return c.g.owner }

// remoteInterfacesOf collects the interfaces of c (transitively) that
// extend jk/kernel/Remote, excluding Remote itself.
func remoteInterfacesOf(k *Kernel, c *vmkit.Class) []*vmkit.Class {
	remote := k.VM.SystemClass(vmkit.IfaceRemote)
	seen := map[*vmkit.Class]bool{}
	var out []*vmkit.Class
	var visit func(ifc *vmkit.Class)
	visit = func(ifc *vmkit.Class) {
		if seen[ifc] {
			return
		}
		seen[ifc] = true
		if ifc != remote && ifc.Implements(remote) {
			out = append(out, ifc)
		}
		for _, super := range ifc.Interfaces {
			visit(super)
		}
	}
	for cl := c; cl != nil; cl = cl.Super {
		for _, ifc := range cl.Interfaces {
			visit(ifc)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateVMCapability implements Capability.create for a VM target object:
// it collects the target's remote interfaces, generates a stub class (as
// bytecode, loaded through the full decode/verify/link pipeline), and
// returns the stub object plus a Go handle. The capability is recorded as
// created by domain d and is revoked when d terminates.
func (k *Kernel) CreateVMCapability(d *Domain, target *vmkit.Object) (*Capability, error) {
	if d.Terminated() {
		return nil, ErrDomainTerminated
	}
	if target == nil || target.Class == nil {
		return nil, fmt.Errorf("jkernel: nil capability target")
	}
	ifaces := remoteInterfacesOf(k, target.Class)
	if len(ifaces) == 0 {
		return nil, ErrNotRemote
	}

	// Collect remote methods in stable order; the target must implement
	// every one of them concretely.
	var methods []*vmkit.Method
	bySig := map[string]int{}
	for _, ifc := range ifaces {
		for _, im := range ifc.Methods() {
			if im.Owner.Name == vmkit.ClassObject || im.IsStatic() {
				continue
			}
			sig := im.Sig()
			if _, dup := bySig[sig]; dup {
				continue
			}
			impl := target.Class.MethodBySig(im.Name, im.Desc)
			if impl == nil || impl.Flags&vmkit.MAbstract != 0 {
				return nil, fmt.Errorf("jkernel: target %s does not implement %s", target.Class.Name, sig)
			}
			bySig[sig] = len(methods)
			methods = append(methods, impl)
		}
	}
	sort.SliceStable(methods, func(i, j int) bool { return methods[i].Sig() < methods[j].Sig() })
	for i, m := range methods {
		bySig[m.Sig()] = i
	}
	if len(methods) == 0 {
		return nil, ErrNotRemote
	}

	g := &Gate{k: k, id: k.nextGate.Add(1), owner: d, methods: methods, bySig: bySig, ifaces: ifaces}
	g.vmTarget.Store(target)

	stubDef := genStubClass(k, g, target.Class)
	stubBytes := vmkit.EncodeClass(stubDef)
	stubClass, err := d.NS.DefineClass(stubBytes)
	if err != nil {
		return nil, fmt.Errorf("jkernel: stub generation for %s: %w", target.Class.Name, err)
	}
	stub, ierr := vmkit.NewInstance(stubClass)
	if ierr != nil {
		return nil, ierr
	}
	gateField := stubClass.FieldByName("gate")
	stub.Fields[gateField.Slot] = vmkit.IntVal(g.id)

	k.gates.Store(g.id, g)
	d.addGate(g)
	return &Capability{g: g, Stub: stub}, nil
}

// capOps backs the jk/kernel/Capability natives with the kernel gate
// table. Declared as a type alias target so vmkit needs no core import.
type capOps Kernel

func (c *capOps) kernel() *Kernel { return (*Kernel)(c) }

func (c *capOps) gateOf(env *vmkit.Env, stub *vmkit.Object) (*Gate, *vmkit.Object) {
	k := c.kernel()
	capClass := k.VM.SystemClass(vmkit.ClassCapability)
	if stub == nil || !stub.Class.AssignableTo(capClass) {
		return nil, env.VM.Throwf(vmkit.ClassIllegalStateEx, "not a capability")
	}
	f := capClass.FieldByName("gate")
	id := stub.Fields[f.Slot].I
	g := k.gateByID(id)
	if g == nil {
		return nil, env.VM.Throwf(vmkit.ClassIllegalStateEx, "gate %d is gone", id)
	}
	return g, nil
}

// Revoke implements the VM-visible revoke(). Only code running in the
// creating domain may revoke ("revoked at any time by the domain that
// created it").
func (c *capOps) Revoke(env *vmkit.Env, stub *vmkit.Object) *vmkit.Object {
	k := c.kernel()
	g, th := c.gateOf(env, stub)
	if th != nil {
		return th
	}
	cur := k.currentDomainOfThread(env.Thread)
	if cur != g.owner {
		return env.VM.Throwf(vmkit.ClassIllegalStateEx,
			"only the creating domain may revoke (caller=%v owner=%v)", cur, g.owner)
	}
	g.revoke()
	k.Meter.RevokeCount(g.owner.ID, 1)
	return nil
}

func (c *capOps) IsRevoked(env *vmkit.Env, stub *vmkit.Object) (int64, *vmkit.Object) {
	g, th := c.gateOf(env, stub)
	if th != nil {
		return 0, th
	}
	if g.Revoked() {
		return 1, nil
	}
	return 0, nil
}

// currentDomainOfThread resolves the domain of the thread's controlling
// segment.
func (k *Kernel) currentDomainOfThread(t *vmkit.Thread) *Domain {
	task := k.taskForThread(t)
	if task == nil {
		return nil
	}
	return k.domainByID(task.Chain.Current().Domain)
}
