package core

import "fmt"

// Proxy targets: the third kind of gate target, behind which a transport
// (internal/remote) forwards invocations to a capability living in another
// kernel process. Callers cannot tell a proxy capability from a local one:
// Invoke, InvokeFrom, Bind, Revoke, and Revoked all behave identically,
// and errors come back as the same kernel sentinels (the wire maps
// RevokedException and TerminatedException onto ErrRevoked and
// ErrDomainTerminated).

// ProxyTarget is the transport half of a proxy gate. InvokeProxy performs
// one remote invocation; arguments and results follow the LRMI calling
// convention (the transport's serialization is the copy, and capabilities
// travel by reference). copied reports the bytes that crossed the wire,
// for the caller domain's account.
type ProxyTarget interface {
	InvokeProxy(method string, args []any) (results []any, copied int64, err error)
	// ProxyMethods lists the remote method names. A transport whose
	// import arrived without a manifest may fetch one on first call
	// (internal/remote does, with a single cached round trip), so callers
	// should treat this as potentially blocking.
	ProxyMethods() []string
}

// AsyncCompleter receives the outcome of one asynchronous wire
// invocation: CompleteWire must be called exactly once, from any
// goroutine, with the same results/copied/err contract as InvokeProxy.
// *Future implements it directly, so starting a wire call passes the
// future itself to the transport instead of allocating a completion
// closure per call.
type AsyncCompleter interface {
	CompleteWire(results []any, copied int64, err error)
}

// AsyncCanceler releases a transport's pending slot when the caller
// abandons an in-flight asynchronous call (the reply, if it still
// arrives, is dropped). It is an interface rather than a func so
// transports can hand back their per-call state object without
// allocating a closure.
type AsyncCanceler interface {
	CancelAsync()
}

// AsyncProxyTarget is the optional non-blocking half of a transport
// proxy. InvokeProxyAsync starts one remote invocation and returns
// without waiting; done.CompleteWire fires exactly once. Transports
// implement it so the kernel's InvokeAsync neither blocks nor burns a
// goroutine per call — which is what allows the wire layer to coalesce
// pending invokes into batched frames.
type AsyncProxyTarget interface {
	ProxyTarget
	InvokeProxyAsync(method string, args []any, done AsyncCompleter) AsyncCanceler
}

// proxyBox wraps the interface so the gate can hold it atomically.
type proxyBox struct{ t ProxyTarget }

// CreateProxyCapability creates a capability, owned by d, whose target is
// a transport proxy. Revoking it (or terminating d) severs the local gate;
// the transport is responsible for propagating revocations that originate
// on the remote side via Capability.RevokeWithReason.
func (k *Kernel) CreateProxyCapability(d *Domain, pt ProxyTarget) (*Capability, error) {
	if d.Terminated() {
		return nil, ErrDomainTerminated
	}
	if pt == nil {
		return nil, fmt.Errorf("jkernel: nil proxy target")
	}
	g := &Gate{k: k, id: k.nextGate.Add(1), owner: d}
	g.proxy.Store(&proxyBox{t: pt})
	k.gates.Store(g.id, g)
	d.addGate(g)
	return &Capability{g: g}, nil
}

// ProxyTargetOf returns c's proxy target, or nil for local capabilities
// (and for revoked proxies). Transports use it to recognize their own
// proxies when a capability travels back toward its owning kernel.
func ProxyTargetOf(c *Capability) ProxyTarget {
	if pb := c.g.proxy.Load(); pb != nil {
		return pb.t
	}
	return nil
}

// RetargetProxy atomically swaps the transport behind a live proxy
// capability. The capability object — and therefore every stub, argument
// vector, and repository binding that refers to it — is untouched: only
// the route its invocations take changes, which is what lets a redeemed
// three-party handoff unify with the import callers already hold instead
// of minting a second identity for the same remote gate. It fails (and
// changes nothing) when c is not a proxy or has been revoked; a
// revocation racing the swap wins either way, because revoke stores nil
// unconditionally after this CAS settles.
func RetargetProxy(c *Capability, pt ProxyTarget) bool {
	if pt == nil {
		return false
	}
	next := &proxyBox{t: pt}
	for {
		old := c.g.proxy.Load()
		if old == nil {
			return false // revoked, or never a proxy
		}
		if c.g.proxy.CompareAndSwap(old, next) {
			return true
		}
	}
}

// invokeProxy forwards one call through a proxy gate. The segment switch
// into the proxy's owning domain (the transport's connection domain) is
// kept so accounting, termination, and Thread.stop semantics are identical
// to local LRMI; argument copying is delegated to the transport, whose
// serialization already yields an isomorphic copy on the far side.
func (c *Capability) invokeProxy(task *Task, caller *Domain, pt ProxyTarget, name string, args []any) ([]any, error) {
	g := c.g
	k := g.k

	seg := task.Chain.Push(g.owner.ID)
	k.segs.Store(seg.ID, seg)
	g.owner.addSeg(seg)

	var results []any
	var copied int64
	var err error
	// Traced transports receive the active context so it crosses the wire;
	// the type assertion is paid only when a trace is actually running.
	if tm := k.tm; tm != nil {
		if tc := task.effectiveTrace(); tc.Active() {
			if tpt, ok := pt.(TracedProxyTarget); ok {
				results, copied, err = tpt.InvokeProxyTraced(name, args, tc)
			} else {
				results, copied, err = pt.InvokeProxy(name, args)
			}
		} else {
			results, copied, err = pt.InvokeProxy(name, args)
		}
	} else {
		results, copied, err = pt.InvokeProxy(name, args)
	}

	g.owner.removeSeg(seg)
	k.segs.Delete(seg.ID)
	task.Chain.Pop()

	if perr := task.Chain.Poll(); perr != nil {
		return nil, perr
	}
	k.Meter.CrossCall(caller.ID, g.owner.ID, copied)
	// The transport records the wire client span (it sees the peer and the
	// reply timing); the kernel only keeps the call-graph edge.
	k.tm.edge(caller, g.owner).Inc()
	return results, err
}
