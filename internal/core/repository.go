package core

import (
	"fmt"
	"sort"
	"sync"

	"jkernel/internal/vmkit"
)

// Repository is the system-wide name service through which domains publish
// capabilities (§3: "the repository is a service allowing domains to
// publish capabilities under a name").
type Repository struct {
	mu sync.RWMutex
	m  map[string]*Capability
}

func newRepository() *Repository {
	return &Repository{m: make(map[string]*Capability)}
}

// Bind publishes c under name; it fails if the name is taken.
func (r *Repository) Bind(name string, c *Capability) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.m[name]; exists {
		return fmt.Errorf("jkernel: repository name %q already bound", name)
	}
	r.m[name] = c
	return nil
}

// Rebind publishes c under name, replacing any existing binding.
func (r *Repository) Rebind(name string, c *Capability) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[name] = c
}

// Lookup returns the capability bound to name, or nil.
func (r *Repository) Lookup(name string) *Capability {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[name]
}

// Unbind removes a binding.
func (r *Repository) Unbind(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, name)
}

// Names returns the bound names, sorted.
func (r *Repository) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// kernelClassSources are VM-visible kernel services, defined into the
// bootstrap namespace once the kernel's natives are registered.
var kernelClassSources = []string{
	`.class jk/kernel/Repository
.method static native bind (Ljk/lang/String;Ljk/kernel/Capability;)V
.end
.method static native lookup (Ljk/lang/String;)Ljk/kernel/Capability;
.end
.method static native unbind (Ljk/lang/String;)V
.end
`,
	`.class jk/kernel/Domain
.method static native createCapability (Ljk/lang/Object;)Ljk/kernel/Capability;
.end
.method static native currentName ()Ljk/lang/String;
.end
`,
}

// defineKernelClasses registers the kernel natives and defines the
// VM-visible kernel classes.
func (k *Kernel) defineKernelClasses() error {
	vm := k.VM

	vm.RegisterNative("jk/kernel/Repository.bind:(Ljk/lang/String;Ljk/kernel/Capability;)V",
		func(env *vmkit.Env, recv *vmkit.Object, args []vmkit.Value) (vmkit.Value, *vmkit.Object) {
			name := vmkit.StringText(args[0].R)
			if name == "" {
				return vmkit.Value{}, vm.Throwf(vmkit.ClassIllegalStateEx, "empty repository name")
			}
			stub := args[1].R
			if stub == nil {
				return vmkit.Value{}, vm.Throwf(vmkit.ClassNullPointerEx, "bind(null)")
			}
			ops := (*capOps)(k)
			g, th := ops.gateOf(env, stub)
			if th != nil {
				return vmkit.Value{}, th
			}
			if err := k.repo.Bind(name, &Capability{g: g, Stub: stub}); err != nil {
				return vmkit.Value{}, vm.Throwf(vmkit.ClassIllegalStateEx, "%v", err)
			}
			return vmkit.Value{}, nil
		})

	vm.RegisterNative("jk/kernel/Repository.lookup:(Ljk/lang/String;)Ljk/kernel/Capability;",
		func(env *vmkit.Env, recv *vmkit.Object, args []vmkit.Value) (vmkit.Value, *vmkit.Object) {
			name := vmkit.StringText(args[0].R)
			c := k.repo.Lookup(name)
			if c == nil {
				return vmkit.Null(), nil
			}
			if c.Stub == nil {
				return vmkit.Value{}, vm.Throwf(vmkit.ClassIllegalStateEx,
					"capability %q has no VM stub (native-only capability)", name)
			}
			return vmkit.RefVal(c.Stub), nil
		})

	vm.RegisterNative("jk/kernel/Repository.unbind:(Ljk/lang/String;)V",
		func(env *vmkit.Env, recv *vmkit.Object, args []vmkit.Value) (vmkit.Value, *vmkit.Object) {
			k.repo.Unbind(vmkit.StringText(args[0].R))
			return vmkit.Value{}, nil
		})

	vm.RegisterNative("jk/kernel/Domain.createCapability:(Ljk/lang/Object;)Ljk/kernel/Capability;",
		func(env *vmkit.Env, recv *vmkit.Object, args []vmkit.Value) (vmkit.Value, *vmkit.Object) {
			d := k.currentDomainOfThread(env.Thread)
			if d == nil {
				return vmkit.Value{}, vm.Throwf(vmkit.ClassIllegalStateEx, "no current domain")
			}
			c, err := k.CreateVMCapability(d, args[0].R)
			if err != nil {
				return vmkit.Value{}, vm.Throwf(vmkit.ClassIllegalStateEx, "%v", err)
			}
			return vmkit.RefVal(c.Stub), nil
		})

	vm.RegisterNative("jk/kernel/Domain.currentName:()Ljk/lang/String;",
		func(env *vmkit.Env, recv *vmkit.Object, args []vmkit.Value) (vmkit.Value, *vmkit.Object) {
			d := k.currentDomainOfThread(env.Thread)
			if d == nil {
				return vmkit.Value{}, vm.Throwf(vmkit.ClassIllegalStateEx, "no current domain")
			}
			s, err := env.NS.NewString(d.Name)
			if err != nil {
				return vmkit.Value{}, vm.Throwf(vmkit.ClassError, "%v", err)
			}
			return vmkit.RefVal(s), nil
		})

	for _, src := range kernelClassSources {
		def, err := vmkit.Assemble(src)
		if err != nil {
			return fmt.Errorf("jkernel: assembling kernel class: %w", err)
		}
		def.Flags |= vmkit.FlagSystem
		if _, err := vm.Bootstrap().DefineDef(def); err != nil {
			return fmt.Errorf("jkernel: defining %s: %w", def.Name, err)
		}
	}
	return nil
}
