package core

import (
	"fmt"

	"jkernel/internal/vmkit"
)

// genStubClass generates the bytecode for a capability stub class, the
// run-time code generation of the paper's "Local-RMI stubs": create
// "automatically generates a stub class at run-time for each target
// class". The stub extends jk/kernel/Capability, implements every remote
// interface of the target, and each method packs its arguments into an
// object array and funnels through Capability.invoke0 — where the gate
// checks revocation, switches thread segments, and applies the copying
// calling convention.
//
// The generated class is emitted as binary bytecode and loaded through the
// ordinary decode/verify/link pipeline, so the verifier checks the
// generator's output like any other class.
func genStubClass(k *Kernel, g *Gate, targetClass *vmkit.Class) *vmkit.ClassDef {
	name := fmt.Sprintf("jk/stub/%s$%d", targetClass.Name, k.nextStub.Add(1))
	def := &vmkit.ClassDef{
		Name:  name,
		Super: vmkit.ClassCapability,
	}
	for _, ifc := range g.ifaces {
		def.Interfaces = append(def.Interfaces, ifc.Name)
	}
	for idx, m := range g.methods {
		def.Methods = append(def.Methods, genStubMethod(idx, m))
	}
	return def
}

// genStubMethod emits one stub method forwarding to invoke0.
func genStubMethod(idx int, m *vmkit.Method) vmkit.MethodDef {
	params, ret, err := vmkit.ParseMethodDesc(m.Desc)
	if err != nil {
		panic(fmt.Sprintf("jkernel: gate method with bad descriptor %q", m.Desc))
	}
	var code []vmkit.Instr
	emit := func(op vmkit.Opcode, operands ...any) {
		in := vmkit.Instr{Op: op}
		for _, o := range operands {
			switch v := o.(type) {
			case int:
				in.I = int64(v)
			case int64:
				in.I = v
			case string:
				in.S = v
			}
		}
		code = append(code, in)
	}

	// this, method index, fresh args array.
	emit(vmkit.OpLoad, 0)
	emit(vmkit.OpIConst, idx)
	emit(vmkit.OpIConst, len(params))
	emit(vmkit.OpNewArr, "[Ljk/lang/Object;")
	for j, p := range params {
		emit(vmkit.OpDup)
		emit(vmkit.OpIConst, j)
		emit(vmkit.OpLoad, 1+j)
		switch p[0] {
		case 'I', 'Z', 'B', 'C':
			emit(vmkit.OpInvokeS, "jk/lang/Int.valueOf:(I)Ljk/lang/Int;")
		case 'D':
			emit(vmkit.OpInvokeS, "jk/lang/Float.valueOf:(D)Ljk/lang/Float;")
		}
		emit(vmkit.OpAStore)
	}
	emit(vmkit.OpInvokeV, "jk/kernel/Capability.invoke0:(I[Ljk/lang/Object;)Ljk/lang/Object;")

	// Unbox / cast the result.
	switch {
	case ret == "":
		emit(vmkit.OpPop)
		emit(vmkit.OpRet)
	case ret[0] == 'I' || ret[0] == 'Z' || ret[0] == 'B' || ret[0] == 'C':
		emit(vmkit.OpCast, vmkit.ClassBoxInt)
		emit(vmkit.OpInvokeV, "jk/lang/Int.intValue:()I")
		emit(vmkit.OpRetV)
	case ret[0] == 'D':
		emit(vmkit.OpCast, vmkit.ClassBoxFloat)
		emit(vmkit.OpInvokeV, "jk/lang/Float.floatValue:()D")
		emit(vmkit.OpRetV)
	case ret[0] == '[':
		emit(vmkit.OpCast, ret)
		emit(vmkit.OpRetV)
	default: // L...;
		emit(vmkit.OpCast, ret[1:len(ret)-1])
		emit(vmkit.OpRetV)
	}

	return vmkit.MethodDef{
		Name:     m.Name,
		Desc:     m.Desc,
		MaxStack: int32(8 + len(params)),
		Code:     code,
	}
}
