package core

import (
	"errors"
	"fmt"
)

// ErrRevoked is returned (native path) or thrown as
// jk/kernel/RevokedException (VM path) when a revoked capability is used.
// "All uses of a revoked capability throw an exception, ensuring the
// correct propagation of failure."
var ErrRevoked = errors.New("jkernel: capability revoked")

// ErrDomainTerminated is returned when the capability's owning domain has
// been terminated, or when a terminated domain attempts a call.
var ErrDomainTerminated = errors.New("jkernel: domain terminated")

// ErrNotRemote is returned when a target exposes no remote methods.
var ErrNotRemote = errors.New("jkernel: target implements no remote interface")

// ErrNoSuchMethod is returned when a capability is invoked with an unknown
// method name.
var ErrNoSuchMethod = errors.New("jkernel: no such remote method")

// ErrNotEntered is returned when LRMI is attempted from a goroutine that
// has not entered a domain via NewTask.
var ErrNotEntered = errors.New("jkernel: goroutine has no task (call Kernel.NewTask first)")

// ErrCancelled is the resolution of a future abandoned via Future.Cancel
// before it completed, faulted, or was revoked.
var ErrCancelled = errors.New("jkernel: future cancelled")

// RemoteError carries a failure out of a callee domain. Like the paper's
// RemoteException, it is a *copy* of the failure: no callee objects leak to
// the caller through the error path.
type RemoteError struct {
	// Class is the VM throwable class name or the Go error type name.
	Class string
	// Msg is the copied message text.
	Msg string
}

func (e *RemoteError) Error() string {
	if e.Class == "" {
		return fmt.Sprintf("jkernel: remote error: %s", e.Msg)
	}
	return fmt.Sprintf("jkernel: remote error (%s): %s", e.Class, e.Msg)
}

// CopyError reports an argument or result that may not cross a domain
// boundary (not a capability, not copyable).
type CopyError struct {
	What string
	Err  error
}

func (e *CopyError) Error() string {
	return fmt.Sprintf("jkernel: cannot transfer %s: %v", e.What, e.Err)
}

func (e *CopyError) Unwrap() error { return e.Err }
