package core

import (
	"fmt"
	"sort"

	"jkernel/internal/vmkit"
)

// SharedClass is a capability-like handle on a group of classes that one
// domain exports for others to bind (§3.1, "Class Name Resolvers"):
// "After a domain has loaded new classes into the system, it can share
// these classes with other domains ... by making a SharedClass capability
// available to other domains."
//
// The paper's two safety rules are enforced at export time:
//
//  1. shared classes (and the classes they reach) may not have static
//     fields, which would be uncontrolled cross-domain channels;
//  2. sharing is transitively consistent — everything a shared class
//     references must itself be shared (or be a system class), so symbolic
//     resolution is namespace-independent.
type SharedClass struct {
	owner   *Domain
	classes []*vmkit.Class
}

// ShareClasses exports the named classes (already loaded in d) together
// with their transitive reference closure. The closure is computed over
// superclasses, interfaces, field and method descriptors, and code
// references; system classes terminate the walk.
func (k *Kernel) ShareClasses(d *Domain, names ...string) (*SharedClass, error) {
	if d.Terminated() {
		return nil, ErrDomainTerminated
	}
	seen := map[*vmkit.Class]bool{}
	var closure []*vmkit.Class
	var visit func(c *vmkit.Class) error
	visit = func(c *vmkit.Class) error {
		if c == nil || seen[c] {
			return nil
		}
		if c.IsArray() {
			if ec := elemOfArray(c); ec != nil {
				return visit(ec)
			}
			return nil
		}
		if c.Def != nil && c.Def.Flags&vmkit.FlagSystem != 0 {
			return nil // system classes are shared with everyone already
		}
		seen[c] = true
		// Rule 1: no statics anywhere in the closure.
		for _, f := range c.Def.Fields {
			if f.Static {
				return fmt.Errorf("jkernel: shared class %s has static field %s", c.Name, f.Name)
			}
		}
		closure = append(closure, c)
		if err := visit(c.Super); err != nil {
			return err
		}
		for _, i := range c.Interfaces {
			if err := visit(i); err != nil {
				return err
			}
		}
		// Referenced classes through descriptors and code.
		for _, ref := range referencedClassNames(c.Def) {
			rc := c.NS.Lookup(ref)
			if rc == nil {
				// Never resolved: force resolution so the closure is real.
				var err error
				rc, err = c.NS.Resolve(ref)
				if err != nil {
					return fmt.Errorf("jkernel: shared class %s references unresolvable %s: %w", c.Name, ref, err)
				}
			}
			if err := visit(rc); err != nil {
				return err
			}
		}
		return nil
	}
	for _, name := range names {
		c, err := d.NS.Resolve(name)
		if err != nil {
			return nil, err
		}
		if err := visit(c); err != nil {
			return nil, err
		}
	}
	if len(closure) == 0 {
		return nil, fmt.Errorf("jkernel: nothing to share (all named classes are system classes)")
	}
	sort.Slice(closure, func(i, j int) bool { return closure[i].Name < closure[j].Name })
	return &SharedClass{owner: d, classes: closure}, nil
}

// Classes returns the classes in the shared group.
func (s *SharedClass) Classes() []*vmkit.Class { return s.classes }

// Owner returns the exporting domain.
func (s *SharedClass) Owner() *Domain { return s.owner }

// Names returns the class names in the group, sorted.
func (s *SharedClass) Names() []string {
	out := make([]string, len(s.classes))
	for i, c := range s.classes {
		out[i] = c.Name
	}
	return out
}

func elemOfArray(c *vmkit.Class) *vmkit.Class {
	e := c.Elem()
	for len(e) > 0 && e[0] == '[' {
		e = e[1:]
	}
	if len(e) > 1 && e[0] == 'L' {
		return c.NS.Lookup(e[1 : len(e)-1])
	}
	return nil
}

// referencedClassNames extracts every class name a definition mentions:
// field descriptors, method descriptors, and instruction operands.
func referencedClassNames(def *vmkit.ClassDef) []string {
	set := map[string]bool{}
	addDesc := func(desc string) {
		for len(desc) > 0 && desc[0] == '[' {
			desc = desc[1:]
		}
		if len(desc) > 1 && desc[0] == 'L' {
			set[desc[1:len(desc)-1]] = true
		}
	}
	addMethodDesc := func(desc string) {
		params, ret, err := vmkit.ParseMethodDesc(desc)
		if err != nil {
			return
		}
		for _, p := range params {
			addDesc(p)
		}
		if ret != "" {
			addDesc(ret)
		}
	}
	for _, f := range def.Fields {
		addDesc(f.Desc)
	}
	for i := range def.Methods {
		m := &def.Methods[i]
		addMethodDesc(m.Desc)
		for _, e := range m.Excs {
			set[e.Type] = true
		}
		for _, in := range m.Code {
			switch in.Op {
			case vmkit.OpNew, vmkit.OpCast, vmkit.OpInstOf:
				if len(in.S) > 0 && in.S[0] == '[' {
					addDesc(in.S)
				} else {
					set[in.S] = true
				}
			case vmkit.OpNewArr:
				addDesc(in.S)
			case vmkit.OpGetF, vmkit.OpPutF, vmkit.OpGetS, vmkit.OpPutS:
				if fr, err := vmkit.ParseFieldRef(in.S); err == nil {
					set[fr.Class] = true
					addDesc(fr.Desc)
				}
			case vmkit.OpInvokeV, vmkit.OpInvokeI, vmkit.OpInvokeS:
				if mr, err := vmkit.ParseMethodRef(in.S); err == nil {
					set[mr.Class] = true
					addMethodDesc(mr.Desc)
				}
			}
		}
	}
	delete(set, def.Name)
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
