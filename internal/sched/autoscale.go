package sched

import (
	"fmt"
	"sort"
	"time"

	"jkernel/internal/telemetry"
)

// AutoscaleConfig tunes the pool-sizing feedback loop. The two signals
// are the mean wire queue depth per ready worker (calls sent but not yet
// answered) and the worst per-worker p99 request latency over the last
// evaluation window. Hysteresis comes from three places: the gap between
// UpQueue and DownQueue, the DownTicks consecutive-low requirement, and
// the Cooldown after any size change.
type AutoscaleConfig struct {
	// Disabled pins the pool at MinWorkers.
	Disabled bool
	// Interval paces evaluations (default 1s).
	Interval time.Duration
	// Cooldown is the minimum gap between size changes (default 5s).
	Cooldown time.Duration
	// UpQueue scales up when mean queue depth per ready worker reaches it
	// (default 16). DownQueue arms scale-down when depth falls to it or
	// below (default 2); keep a wide gap or the pool flaps.
	UpQueue, DownQueue float64
	// UpP99 optionally scales up when any worker's windowed p99 request
	// latency reaches it, even with short queues (0 = off).
	UpP99 time.Duration
	// DownTicks is how many consecutive low evaluations arm a scale-down
	// (default 5).
	DownTicks int
}

func (c *AutoscaleConfig) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.UpQueue <= 0 {
		c.UpQueue = 16
	}
	if c.DownQueue <= 0 {
		c.DownQueue = 2
	}
	if c.DownTicks <= 0 {
		c.DownTicks = 5
	}
}

// autoscale is one feedback-loop evaluation; the control loop calls it
// every probe tick and it self-paces to AutoscaleConfig.Interval.
func (s *Scheduler) autoscale() {
	cfg := &s.opts.Autoscale
	if cfg.Disabled {
		return
	}
	now := time.Now()
	if now.Sub(s.lastScaleEval) < cfg.Interval {
		return
	}
	s.lastScaleEval = now

	s.mu.Lock()
	active := 0 // slots we own and are not tearing down
	ready := 0
	totalPending := 0
	var worstP99 time.Duration
	for _, m := range s.members {
		if !m.removing {
			active++
		}
		if !m.placeable() {
			continue
		}
		ready++
		totalPending += m.conn.PendingCalls()
		// Swap in a fresh histogram: p99 is over the last window only.
		h := m.lat.Swap(&telemetry.Histogram{})
		if q := time.Duration(h.Quantile(0.99)); q > worstP99 {
			worstP99 = q
		}
	}
	s.mu.Unlock()
	if ready == 0 {
		return
	}
	depth := float64(totalPending) / float64(ready)
	cooled := now.Sub(s.lastScale) >= cfg.Cooldown

	hot := depth >= cfg.UpQueue || (cfg.UpP99 > 0 && worstP99 >= cfg.UpP99)
	cold := depth <= cfg.DownQueue && (cfg.UpP99 == 0 || worstP99 < cfg.UpP99/2)

	switch {
	case hot:
		s.lowTicks = 0
		if active < s.opts.MaxWorkers && cooled {
			s.scaleUp(fmt.Sprintf("queue depth %.1f, p99 %v", depth, worstP99))
			s.lastScale = now
		}
	case cold:
		s.lowTicks++
		if s.lowTicks >= cfg.DownTicks && active > s.opts.MinWorkers && cooled {
			if s.scaleDown(fmt.Sprintf("queue depth %.1f for %d ticks", depth, s.lowTicks)) {
				s.lastScale = now
			}
			s.lowTicks = 0
		}
	default:
		s.lowTicks = 0
	}
}

// scaleUp adds a pool slot; the reconnect pass brings it to ready and
// rebalance then spreads servlets onto it.
func (s *Scheduler) scaleUp(reason string) {
	w, err := s.pool.Add()
	if err != nil {
		s.eventf("scale-up failed: %v", err)
		return
	}
	s.mu.Lock()
	s.addMemberLocked(w)
	s.mu.Unlock()
	s.cUp.Inc()
	s.eventf("scale-up: worker %d added (%s)", w.Index, reason)
	s.kick()
}

// scaleDown picks the placeable worker with the fewest servlets (highest
// index breaks ties, so the newest worker leaves first) and marks it for
// removal; evacuation and reaping happen over the following ticks.
func (s *Scheduler) scaleDown(reason string) bool {
	s.mu.Lock()
	counts := map[int]int{}
	for _, p := range s.placements {
		if p.worker >= 0 {
			counts[p.worker]++
		}
	}
	idxs := make([]int, 0, len(s.members))
	for i, m := range s.members {
		if m.placeable() {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) < 2 {
		s.mu.Unlock()
		return false // never drain the only serving worker
	}
	sort.Slice(idxs, func(a, b int) bool {
		if counts[idxs[a]] != counts[idxs[b]] {
			return counts[idxs[a]] < counts[idxs[b]]
		}
		return idxs[a] > idxs[b]
	})
	victim := s.members[idxs[0]]
	victim.adminDrain = true
	victim.removing = true
	s.mu.Unlock()
	s.cDown.Inc()
	s.eventf("scale-down: worker %d draining for removal (%s)", victim.w.Index, reason)
	s.kick()
	return true
}
