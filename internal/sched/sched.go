// Package sched is the cluster control plane of the remote playground: it
// sits between the HTTP bridge (internal/httpd) and the worker kernel
// pool (internal/remote) and owns the three policies the mechanisms below
// it deliberately left open —
//
//   - placement: which worker kernel hosts each servlet (pluggable
//     Strategy: least-loaded, consistent-hash, round-robin);
//   - autoscaling: how many workers exist, grown and shrunk between
//     Min/Max bounds from per-worker wire queue depth and p99 request
//     latency, with hysteresis and a cooldown so the pool does not flap;
//   - health: a periodic probe per worker; an unhealthy worker drains (no
//     new placements, in-flight calls finish), a crashed worker's
//     servlets are re-placed onto survivors, and a restarted worker
//     rejoins — and, under a sticky strategy, attracts its servlets back
//     — once it passes the readiness probe.
//
// The scheduler installs itself as the bridge's Control: uploads are
// sharded across workers, terminations route to the owning worker, and a
// capability fault observed by the bridge triggers re-placement. Every
// decision (placement, move, drain, scale event) lands in the kernel's
// telemetry event log and gauges, so /debug/jk shows the control plane's
// state live.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/httpd"
	"jkernel/internal/remote"
	"jkernel/internal/telemetry"
)

// Options configures Start.
type Options struct {
	// Kernel is the front (supervisor) kernel hosting the bridge.
	Kernel *core.Kernel
	// Bridge is the HTTP bridge the scheduler mounts servlets on. The
	// scheduler installs itself as its Control.
	Bridge *httpd.Bridge
	// Pool configures the worker pool the scheduler starts and owns.
	// Workers is overridden by MinWorkers.
	Pool remote.PoolOptions
	// MinWorkers and MaxWorkers bound the pool size (defaults 1 and
	// max(MinWorkers, 1)). The autoscaler moves inside these bounds.
	MinWorkers, MaxWorkers int
	// Strategy places servlets (default LeastLoaded).
	Strategy Strategy
	// ProbeInterval paces the health loop (default 250ms); each probe is
	// a protocol ping bounded by ProbeTimeout (default 2s).
	ProbeInterval, ProbeTimeout time.Duration
	// DeadAfter is how many consecutive probe failures turn a draining
	// worker into a dead one (default 2).
	DeadAfter int
	// DialTimeout bounds worker (re)connects (default 10s); DeployTimeout
	// bounds one deploy RPC (default 10s).
	DialTimeout, DeployTimeout time.Duration
	// Autoscale tunes the feedback loop; zero values mean defaults, set
	// Disabled to pin the pool at MinWorkers.
	Autoscale AutoscaleConfig
	// Log, when set, receives control-plane decisions (also in telemetry).
	Log func(format string, args ...any)
}

// memberState is the drain state machine of one worker:
//
//	starting ──ready──▶ ready ──probe fail──▶ draining ──DeadAfter──▶ dead
//	   ▲                  ▲                      │                      │
//	   │                  └──────probe ok────────┘                      │
//	   └────────────────── reconnect + readiness ◀──────────────────────┘
//
// An admin drain (Drain, or a scale-down pick) overlays the state: the
// worker takes no new placements regardless of health, and a removing
// worker is evacuated and reaped once empty.
type memberState int

const (
	stateStarting memberState = iota
	stateReady
	stateDraining
	stateDead
)

func (st memberState) String() string {
	switch st {
	case stateStarting:
		return "starting"
	case stateReady:
		return "ready"
	case stateDraining:
		return "draining"
	default:
		return "dead"
	}
}

// member is one worker kernel under management.
type member struct {
	w          *remote.PoolWorker
	state      memberState
	adminDrain bool // operator drain: sticky until Undrain or removal
	removing   bool // scale-down: evacuate, then reap the slot
	fails      int  // consecutive probe failures
	connecting bool // one async (re)connect in flight
	conn       *remote.Conn
	deployer   *core.Capability

	// lat is the windowed request-latency histogram: the autoscaler swaps
	// in a fresh one each evaluation, so p99 reflects the last window,
	// not process history.
	lat atomic.Pointer[telemetry.Histogram]
}

// placeable reports whether new placements may land on m.
func (m *member) placeable() bool {
	return m.state == stateReady && !m.adminDrain && !m.removing
}

// placementRec is one servlet the control plane owns.
type placementRec struct {
	name, prefix string
	spec         DeploySpec
	worker       int // owning worker index; -1 = unplaced (awaiting repair)
	cap          *core.Capability
	placing      bool // a place/move RPC is in flight
}

// Scheduler is the cluster control plane. Create one with Start.
type Scheduler struct {
	opts     Options
	k        *core.Kernel
	bridge   *httpd.Bridge
	pool     *remote.Pool
	reg      *telemetry.Registry
	taskPool sync.Pool

	mu         sync.Mutex
	members    map[int]*member // by pool slot index
	placements map[string]*placementRec

	// autoscaler state (loop goroutine only).
	lastScaleEval time.Time
	lastScale     time.Time
	lowTicks      int

	done      chan struct{}
	kickCh    chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	cPlace, cReplace, cMove, cUp, cDown, cDrain *telemetry.Counter
}

// Start launches the control plane: it spawns the worker pool at
// MinWorkers, connects to every worker, installs itself on the bridge,
// and starts the health/autoscale loop. At least one worker must pass
// readiness or Start fails and tears the pool down.
func Start(opts Options) (*Scheduler, error) {
	if opts.Kernel == nil || opts.Bridge == nil {
		return nil, errors.New("sched: Options.Kernel and Options.Bridge are required")
	}
	if opts.MinWorkers <= 0 {
		opts.MinWorkers = 1
	}
	if opts.MaxWorkers < opts.MinWorkers {
		opts.MaxWorkers = opts.MinWorkers
	}
	if opts.Strategy == nil {
		opts.Strategy = LeastLoaded()
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 250 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = 2
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 10 * time.Second
	}
	if opts.DeployTimeout <= 0 {
		opts.DeployTimeout = 10 * time.Second
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	opts.Autoscale.fillDefaults()
	RegisterWireTypes(opts.Kernel)

	opts.Pool.Workers = opts.MinWorkers
	pool, err := remote.StartPool(opts.Pool)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		opts:       opts,
		k:          opts.Kernel,
		bridge:     opts.Bridge,
		pool:       pool,
		reg:        opts.Kernel.Telemetry(),
		members:    map[int]*member{},
		placements: map[string]*placementRec{},
		done:       make(chan struct{}),
		kickCh:     make(chan struct{}, 1),
	}
	dom, err := opts.Kernel.NewDomain(core.DomainConfig{Name: "sched"})
	if err != nil {
		pool.Close()
		return nil, err
	}
	s.taskPool.New = func() any { return s.k.NewDetachedTask(dom, "sched-rpc") }
	s.cPlace = s.reg.Counter("sched.placements.total")
	s.cReplace = s.reg.Counter("sched.replacements")
	s.cMove = s.reg.Counter("sched.moves")
	s.cUp = s.reg.Counter("sched.scale.up")
	s.cDown = s.reg.Counter("sched.scale.down")
	s.cDrain = s.reg.Counter("sched.drains")
	s.reg.GaugeFunc("sched.workers", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.members))
	})
	s.reg.GaugeFunc("sched.workers.ready", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		var n int64
		for _, m := range s.members {
			if m.placeable() {
				n++
			}
		}
		return n
	})
	s.reg.GaugeFunc("sched.placements", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.placements))
	})

	for _, w := range pool.Workers() {
		s.addMemberLocked(w) // no contention yet: loop not started
	}

	// First connect wave, in parallel; workers spawn concurrently and a
	// fresh exec+listen takes a moment each.
	var wg sync.WaitGroup
	for _, m := range s.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			s.connectNow(m)
		}(m)
	}
	wg.Wait()
	readyN := 0
	for _, m := range s.members {
		if m.state == stateReady {
			readyN++
		}
	}
	if readyN == 0 {
		pool.Close()
		return nil, errors.New("sched: no worker passed readiness")
	}

	opts.Bridge.SetControl(s)
	s.wg.Add(1)
	go s.run()
	s.eventf("control plane up: %d/%d workers ready, strategy %s",
		readyN, opts.MinWorkers, opts.Strategy.Name())
	return s, nil
}

// addMemberLocked registers a pool slot as a managed member.
func (s *Scheduler) addMemberLocked(w *remote.PoolWorker) *member {
	m := &member{w: w, state: stateStarting}
	m.lat.Store(&telemetry.Histogram{})
	s.members[w.Index] = m
	return m
}

// eventf records a control-plane decision in telemetry and the Log hook.
func (s *Scheduler) eventf(format string, args ...any) {
	s.reg.Eventf("sched: "+format, args...)
	s.opts.Log(format, args...)
}

// kick wakes the control loop early (placement lost, member died).
func (s *Scheduler) kick() {
	select {
	case s.kickCh <- struct{}{}:
	default:
	}
}

// Pool exposes the managed worker pool (failure drills kill its workers).
func (s *Scheduler) Pool() *remote.Pool { return s.pool }

// Close tears the control plane down: loop stopped, bridge detached,
// connections closed, pool killed. Mounted routes are left in place; the
// owning bridge usually outlives its scheduler only in tests.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.wg.Wait()
		s.bridge.SetControl(nil)
		s.mu.Lock()
		conns := make([]*remote.Conn, 0, len(s.members))
		for _, m := range s.members {
			if m.conn != nil {
				conns = append(conns, m.conn)
			}
		}
		s.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		s.pool.Close()
	})
}

// --- connection management --------------------------------------------------

// connectNow dials a member's worker and imports its deployer, marking it
// ready on success. Blocking; callers decide whether to background it.
func (s *Scheduler) connectNow(m *member) {
	conn, err := m.w.Dial(s.k, s.opts.DialTimeout)
	if err != nil {
		s.mu.Lock()
		m.connecting = false
		if m.state != stateDead {
			m.state = stateDead
		}
		s.mu.Unlock()
		s.eventf("worker %d unreachable: %v", m.w.Index, err)
		return
	}
	dep, err := conn.Import(DeployerExport)
	if err != nil {
		conn.Close()
		s.mu.Lock()
		m.connecting = false
		m.state = stateDead
		s.mu.Unlock()
		s.eventf("worker %d has no deployer (%v) — is ServeWorker in its setup?", m.w.Index, err)
		return
	}
	s.mu.Lock()
	m.connecting = false
	if m.removing {
		s.mu.Unlock()
		conn.Close()
		return
	}
	m.conn, m.deployer = conn, dep
	m.state = stateReady
	m.fails = 0
	s.mu.Unlock()
	go func() {
		<-conn.Done()
		s.onConnDown(m, conn)
	}()
	s.eventf("worker %d ready", m.w.Index)
	s.kick()
}

// onConnDown reacts to a lost worker connection: the member is dead and
// its servlets need a new home now, not at the next probe.
func (s *Scheduler) onConnDown(m *member, conn *remote.Conn) {
	s.mu.Lock()
	if m.conn == conn {
		s.declareDeadLocked(m, "connection lost")
	}
	s.mu.Unlock()
	s.kick()
}

// declareDeadLocked transitions a member to dead and orphans its
// placements so repair re-places them onto survivors.
func (s *Scheduler) declareDeadLocked(m *member, cause string) {
	if m.state == stateDead {
		return
	}
	m.state = stateDead
	if m.conn != nil {
		// Close triggers onConnDown asynchronously; the m.conn==nil store
		// below makes it a no-op.
		go m.conn.Close()
	}
	m.conn, m.deployer = nil, nil
	lost := 0
	for _, p := range s.placements {
		if p.worker == m.w.Index {
			p.worker, p.cap = -1, nil
			lost++
		}
	}
	s.eventf("worker %d dead (%s); %d servlet(s) orphaned", m.w.Index, cause, lost)
}

// --- the control loop -------------------------------------------------------

func (s *Scheduler) run() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-s.kickCh:
		case <-t.C:
		}
		s.probe()
		s.reconnect()
		s.repair()
		s.rebalance()
		s.autoscale()
		s.reap()
	}
}

// probe pings every connected member and advances the drain state
// machine: ready → draining on the first failure, draining → dead after
// DeadAfter consecutive failures, draining → ready on recovery.
func (s *Scheduler) probe() {
	s.mu.Lock()
	type probeTarget struct {
		m    *member
		conn *remote.Conn
	}
	var targets []probeTarget
	for _, m := range s.members {
		if m.conn != nil && (m.state == stateReady || m.state == stateDraining) {
			targets = append(targets, probeTarget{m, m.conn})
		}
	}
	s.mu.Unlock()

	results := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, conn *remote.Conn) {
			defer wg.Done()
			results[i] = conn.Ping(s.opts.ProbeTimeout)
		}(i, t.conn)
	}
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	for i, t := range targets {
		m := t.m
		if m.conn != t.conn {
			continue // reconnected or died while we probed
		}
		if results[i] == nil {
			m.fails = 0
			if m.state == stateDraining {
				m.state = stateReady
				s.eventf("worker %d recovered; serving again", m.w.Index)
			}
			continue
		}
		m.fails++
		if m.state == stateReady {
			m.state = stateDraining
			s.cDrain.Inc()
			s.eventf("worker %d unhealthy (%v); draining", m.w.Index, results[i])
		}
		if m.fails >= s.opts.DeadAfter {
			s.declareDeadLocked(m, fmt.Sprintf("%d failed probes", m.fails))
		}
	}
}

// reconnect starts one background (re)connect per disconnected member.
// The pool supervisor restarts crashed processes on its own; this side
// just keeps knocking until the new process answers the readiness
// handshake.
func (s *Scheduler) reconnect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.members {
		if m.conn == nil && !m.connecting && !m.removing &&
			(m.state == stateDead || m.state == stateStarting) {
			m.connecting = true
			go s.connectNow(m)
		}
	}
}

// repair re-places orphaned servlets onto surviving workers.
func (s *Scheduler) repair() {
	for {
		s.mu.Lock()
		var target *placementRec
		for _, p := range s.placements {
			if p.worker == -1 && !p.placing {
				target = p
				break
			}
		}
		s.mu.Unlock()
		if target == nil {
			return
		}
		if err := s.place(target); err != nil {
			// No ready workers or every deploy failed; next tick retries.
			return
		}
		s.cReplace.Inc()
	}
}

// --- placement --------------------------------------------------------------

// Deploy instantiates a servlet somewhere in the pool and mounts it on
// the bridge. The strategy picks the worker; a worker crash later moves
// the servlet automatically.
func (s *Scheduler) Deploy(name, prefix string, spec DeploySpec) error {
	spec.Name = name
	s.mu.Lock()
	if _, dup := s.placements[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("sched: servlet %q already deployed", name)
	}
	p := &placementRec{name: name, prefix: prefix, spec: spec, worker: -1}
	s.placements[name] = p
	s.mu.Unlock()
	if err := s.place(p); err != nil {
		s.mu.Lock()
		if s.placements[name] == p {
			delete(s.placements, name)
		}
		s.mu.Unlock()
		return err
	}
	return nil
}

// Terminate undeploys a servlet cluster-wide: route unmounted, worker
// domain terminated, proxy released.
func (s *Scheduler) Terminate(name string) error {
	s.mu.Lock()
	p := s.placements[name]
	if p == nil {
		s.mu.Unlock()
		return fmt.Errorf("sched: no servlet %q", name)
	}
	delete(s.placements, name)
	m := s.members[p.worker]
	cap := p.cap
	s.mu.Unlock()
	s.bridge.Router.Unmount(name)
	if m != nil {
		s.undeployOn(m, name)
	}
	if cap != nil {
		remote.ReleaseProxy(cap)
	}
	s.eventf("servlet %q terminated", name)
	return nil
}

// pickMember runs the strategy over the placeable members, excluding
// losers of earlier attempts. Returns nil when no worker qualifies.
func (s *Scheduler) pickMember(servlet string, exclude map[int]bool) *member {
	s.mu.Lock()
	defer s.mu.Unlock()
	views, byView := s.viewsLocked(exclude)
	if len(views) == 0 {
		return nil
	}
	i := s.opts.Strategy.Pick(servlet, views)
	if i < 0 || i >= len(views) {
		return nil
	}
	return byView[i]
}

// viewsLocked snapshots placeable members as strategy input.
func (s *Scheduler) viewsLocked(exclude map[int]bool) ([]MemberView, []*member) {
	counts := map[int]int{}
	for _, p := range s.placements {
		if p.worker >= 0 {
			counts[p.worker]++
		}
	}
	var views []MemberView
	var byView []*member
	// Stable iteration keeps strategies deterministic.
	idxs := make([]int, 0, len(s.members))
	for i := range s.members {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		m := s.members[i]
		if !m.placeable() || exclude[i] {
			continue
		}
		views = append(views, MemberView{
			Worker:     i,
			InFlight:   m.conn.PendingCalls(),
			Placements: counts[i],
		})
		byView = append(byView, m)
	}
	return views, byView
}

// place finds a home for an unplaced servlet: pick, deploy RPC, mount.
// Failed workers are excluded and the next candidate tried.
func (s *Scheduler) place(p *placementRec) error {
	s.mu.Lock()
	if p.placing {
		s.mu.Unlock()
		return nil
	}
	p.placing = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		p.placing = false
		s.mu.Unlock()
	}()

	exclude := map[int]bool{}
	var lastErr error = errors.New("no ready workers")
	for attempt := 0; attempt < 8; attempt++ {
		m := s.pickMember(p.name, exclude)
		if m == nil {
			return fmt.Errorf("sched: cannot place %q: %w", p.name, lastErr)
		}
		cap, err := s.deployOn(m, p.spec)
		if err != nil {
			lastErr = err
			exclude[m.w.Index] = true
			continue
		}
		s.mu.Lock()
		if s.placements[p.name] != p {
			// Terminated while the RPC ran; roll the deploy back.
			s.mu.Unlock()
			s.undeployOn(m, p.name)
			return nil
		}
		p.worker = m.w.Index
		p.cap = cap
		s.mu.Unlock()
		if err := s.bridge.Router.Remount(p.name, p.prefix, cap); err != nil {
			s.mu.Lock()
			p.worker, p.cap = -1, nil
			s.mu.Unlock()
			s.undeployOn(m, p.name)
			return fmt.Errorf("sched: mount %q: %w", p.name, err)
		}
		s.cPlace.Inc()
		s.eventf("servlet %q placed on worker %d (%s)", p.name, m.w.Index, s.opts.Strategy.Name())
		return nil
	}
	return fmt.Errorf("sched: cannot place %q: %w", p.name, lastErr)
}

// deployOn runs one Deploy RPC against a member, bounded by
// DeployTimeout so a wedged worker cannot stall the control plane.
//
//jk:blocking
func (s *Scheduler) deployOn(m *member, spec DeploySpec) (*core.Capability, error) {
	s.mu.Lock()
	conn, dep := m.conn, m.deployer
	s.mu.Unlock()
	if conn == nil || dep == nil {
		return nil, errors.New("worker not connected")
	}
	task := s.taskPool.Get().(*core.Task)
	defer s.taskPool.Put(task)
	fut := dep.InvokeAsyncFrom(task, "Deploy", &spec)
	conn.Flush()
	select {
	case <-fut.Done():
	case <-time.After(s.opts.DeployTimeout):
		fut.Cancel()
		return nil, fmt.Errorf("deploy of %q timed out after %v", spec.Name, s.opts.DeployTimeout)
	}
	res, err := fut.Wait()
	if err != nil {
		return nil, err
	}
	var cap *core.Capability
	if len(res) > 0 {
		cap, _ = res[0].(*core.Capability)
	}
	if cap == nil {
		return nil, errors.New("deployer returned no capability")
	}
	return cap, nil
}

// undeployOn is the best-effort inverse: terminate the servlet's domain
// on its (possibly dying) worker.
//
//jk:blocking
func (s *Scheduler) undeployOn(m *member, name string) {
	s.mu.Lock()
	conn, dep := m.conn, m.deployer
	s.mu.Unlock()
	if conn == nil || dep == nil {
		return
	}
	task := s.taskPool.Get().(*core.Task)
	defer s.taskPool.Put(task)
	fut := dep.InvokeAsyncFrom(task, "Undeploy", name)
	conn.Flush()
	select {
	case <-fut.Done():
	case <-time.After(s.opts.DeployTimeout):
		fut.Cancel()
	}
}

// rebalance moves servlets when the membership has drifted from what the
// strategy wants: a sticky strategy pulls every servlet to its preferred
// worker (a restarted worker attracts its consistent-hash shard back); a
// non-sticky strategy only evacuates workers being removed and smooths
// placement-count imbalance beyond one.
func (s *Scheduler) rebalance() {
	type move struct {
		p  *placementRec
		to *member
	}
	var moves []move

	s.mu.Lock()
	views, byView := s.viewsLocked(nil)
	if len(views) == 0 {
		s.mu.Unlock()
		return
	}
	names := make([]string, 0, len(s.placements))
	for n := range s.placements {
		names = append(names, n)
	}
	sort.Strings(names)
	counts := map[int]int{}
	for _, p := range s.placements {
		if p.worker >= 0 {
			counts[p.worker]++
		}
	}
	for _, n := range names {
		p := s.placements[n]
		if p.worker < 0 || p.placing {
			continue // repair's job
		}
		cur := s.members[p.worker]
		evacuate := cur == nil || cur.removing
		if s.opts.Strategy.Sticky() {
			i := s.opts.Strategy.Pick(p.name, views)
			if i >= 0 && views[i].Worker != p.worker {
				moves = append(moves, move{p, byView[i]})
			} else if evacuate && i >= 0 {
				moves = append(moves, move{p, byView[i]})
			}
			continue
		}
		if evacuate {
			i := s.opts.Strategy.Pick(p.name, views)
			if i >= 0 {
				moves = append(moves, move{p, byView[i]})
				counts[p.worker]--
				counts[views[i].Worker]++
			}
			continue
		}
		// Imbalance smoothing: move only when it strictly helps.
		minC := counts[views[0].Worker]
		minI := 0
		for i, v := range views {
			if counts[v.Worker] < minC {
				minC, minI = counts[v.Worker], i
			}
		}
		if counts[p.worker] > minC+1 && views[minI].Worker != p.worker {
			moves = append(moves, move{p, byView[minI]})
			counts[p.worker]--
			counts[views[minI].Worker]++
		}
	}
	for _, mv := range moves {
		mv.p.placing = true
	}
	s.mu.Unlock()

	for _, mv := range moves {
		s.movePlacement(mv.p, mv.to)
	}
}

// movePlacement deploys p on its new worker, swaps the mount, and lazily
// undeploys the old instance once its worker's wire queue drains, so
// calls in flight on the old route finish instead of being revoked
// mid-request.
func (s *Scheduler) movePlacement(p *placementRec, to *member) {
	defer func() {
		s.mu.Lock()
		p.placing = false
		s.mu.Unlock()
	}()
	cap, err := s.deployOn(to, p.spec)
	if err != nil {
		s.eventf("move of %q to worker %d failed: %v", p.name, to.w.Index, err)
		return
	}
	s.mu.Lock()
	if s.placements[p.name] != p {
		s.mu.Unlock()
		s.undeployOn(to, p.name)
		return
	}
	from := s.members[p.worker]
	oldCap := p.cap
	p.worker = to.w.Index
	p.cap = cap
	s.mu.Unlock()
	if err := s.bridge.Router.Remount(p.name, p.prefix, cap); err != nil {
		s.eventf("re-mount of %q failed: %v", p.name, err)
		return
	}
	s.cMove.Inc()
	s.eventf("servlet %q moved to worker %d", p.name, to.w.Index)
	if from == nil && oldCap == nil {
		return
	}
	go func() {
		// Grace: let in-flight calls on the old worker finish.
		deadline := time.Now().Add(2 * time.Second)
		for from != nil && time.Now().Before(deadline) {
			s.mu.Lock()
			conn := from.conn
			s.mu.Unlock()
			if conn == nil || conn.PendingCalls() == 0 {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if from != nil {
			s.undeployOn(from, p.name)
		}
		if oldCap != nil {
			remote.ReleaseProxy(oldCap)
		}
	}()
}

// --- admin ------------------------------------------------------------------

// Drain marks a worker as draining (on=true): it keeps serving what it
// has, but receives no new placements until undrained.
func (s *Scheduler) Drain(worker int, on bool) error {
	s.mu.Lock()
	m := s.members[worker]
	if m == nil {
		s.mu.Unlock()
		return fmt.Errorf("sched: no worker %d", worker)
	}
	m.adminDrain = on
	s.mu.Unlock()
	if on {
		s.cDrain.Inc()
		s.eventf("worker %d drained by admin", worker)
	} else {
		s.eventf("worker %d undrained", worker)
	}
	s.kick()
	return nil
}

// RemoveWorker drains a worker, moves its servlets off, and removes the
// slot once it is empty. Asynchronous: the control loop finishes the job.
func (s *Scheduler) RemoveWorker(worker int) error {
	s.mu.Lock()
	m := s.members[worker]
	if m == nil {
		s.mu.Unlock()
		return fmt.Errorf("sched: no worker %d", worker)
	}
	others := 0
	for i, o := range s.members {
		if i != worker && !o.removing {
			others++
		}
	}
	if others == 0 {
		s.mu.Unlock()
		return errors.New("sched: refusing to remove the last worker")
	}
	m.adminDrain = true
	m.removing = true
	s.mu.Unlock()
	s.eventf("worker %d marked for removal", worker)
	s.kick()
	return nil
}

// reap finishes pending removals: once a removing member has no
// placements and no in-flight calls, its connection closes and the pool
// slot is deleted.
func (s *Scheduler) reap() {
	s.mu.Lock()
	var victims []*member
	for idx, m := range s.members {
		if !m.removing {
			continue
		}
		busy := false
		for _, p := range s.placements {
			if p.worker == idx || (p.placing && p.worker == -1) {
				busy = true
				break
			}
		}
		if busy {
			continue
		}
		if m.conn != nil && m.conn.PendingCalls() > 0 {
			continue
		}
		victims = append(victims, m)
	}
	s.mu.Unlock()
	for _, m := range victims {
		s.mu.Lock()
		conn := m.conn
		m.conn, m.deployer = nil, nil
		m.state = stateDead
		s.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
		if err := s.pool.Remove(m.w, 2*time.Second); err != nil {
			s.eventf("worker %d removal pending: %v", m.w.Index, err)
			continue // other clients still hold conns; retry next tick
		}
		s.mu.Lock()
		delete(s.members, m.w.Index)
		s.mu.Unlock()
		s.eventf("worker %d removed", m.w.Index)
	}
}

// --- bridge Control ---------------------------------------------------------

// UploadServlet shards an admin upload across the pool: the bundle
// becomes a portable DeploySpec and the strategy picks the worker.
func (s *Scheduler) UploadServlet(name, prefix, main string, bundle map[string][]byte) error {
	return s.Deploy(name, prefix, DeploySpec{
		Kind:   "vm",
		Impl:   main,
		Bundle: httpd.EncodeBundle(bundle),
	})
}

// TerminateServlet routes admin termination to the owning worker.
func (s *Scheduler) TerminateServlet(name string) (bool, error) {
	s.mu.Lock()
	_, owned := s.placements[name]
	s.mu.Unlock()
	if !owned {
		return false, nil // a locally-mounted servlet; bridge handles it
	}
	return true, s.Terminate(name)
}

// ServletFault reacts to a capability fault the bridge observed: if the
// placement's capability really is dead, orphan it for repair.
func (s *Scheduler) ServletFault(name string, err error) {
	s.mu.Lock()
	p := s.placements[name]
	if p != nil && p.worker >= 0 && p.cap != nil && p.cap.Revoked() {
		p.worker, p.cap = -1, nil
	}
	s.mu.Unlock()
	s.kick()
}

// ObserveRequest feeds the autoscaler's latency window.
func (s *Scheduler) ObserveRequest(name string, status int, err error, dur time.Duration) {
	s.mu.Lock()
	var h *telemetry.Histogram
	if p := s.placements[name]; p != nil && p.worker >= 0 {
		if m := s.members[p.worker]; m != nil {
			h = m.lat.Load()
		}
	}
	s.mu.Unlock()
	h.Observe(int64(dur)) // nil-safe
}

// --- snapshot ---------------------------------------------------------------

// WorkerStatus is one worker's control-plane view.
type WorkerStatus struct {
	Worker   int      `json:"worker"`
	State    string   `json:"state"`
	Draining bool     `json:"draining,omitempty"`
	Removing bool     `json:"removing,omitempty"`
	Pending  int      `json:"pending"`
	Restarts int      `json:"restarts"`
	Servlets []string `json:"servlets,omitempty"`
}

// ServletStatus is one placement.
type ServletStatus struct {
	Name   string `json:"name"`
	Prefix string `json:"prefix"`
	Kind   string `json:"kind"`
	Worker int    `json:"worker"` // -1 while awaiting re-placement
}

// Snapshot is the control plane's point-in-time state.
type Snapshot struct {
	Strategy   string          `json:"strategy"`
	Workers    []WorkerStatus  `json:"workers"`
	Servlets   []ServletStatus `json:"servlets"`
	ScaleUps   int64           `json:"scale_ups"`
	ScaleDowns int64           `json:"scale_downs"`
	Moves      int64           `json:"moves"`
	Replaces   int64           `json:"replacements"`
}

// Snapshot captures workers, placements, and scale counters.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Strategy:   s.opts.Strategy.Name(),
		ScaleUps:   s.cUp.Value(),
		ScaleDowns: s.cDown.Value(),
		Moves:      s.cMove.Value(),
		Replaces:   s.cReplace.Value(),
	}
	byWorker := map[int][]string{}
	names := make([]string, 0, len(s.placements))
	for n := range s.placements {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := s.placements[n]
		if p.worker >= 0 {
			byWorker[p.worker] = append(byWorker[p.worker], n)
		}
		snap.Servlets = append(snap.Servlets, ServletStatus{
			Name: n, Prefix: p.prefix, Kind: p.spec.Kind, Worker: p.worker,
		})
	}
	idxs := make([]int, 0, len(s.members))
	for i := range s.members {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		m := s.members[i]
		snap.Workers = append(snap.Workers, WorkerStatus{
			Worker:   i,
			State:    m.state.String(),
			Draining: m.adminDrain || m.state == stateDraining,
			Removing: m.removing,
			Pending:  m.conn.PendingCalls(),
			Restarts: m.w.Restarts(),
			Servlets: byWorker[i],
		})
	}
	return snap
}
