package sched_test

import (
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jkernel/internal/core"
	"jkernel/internal/httpd"
	"jkernel/internal/remote"
	"jkernel/internal/sched"
)

// TestMain lets the pool's self-exec children turn into cluster workers.
func TestMain(m *testing.M) {
	remote.MaybeRunWorker(workerSetup)
	os.Exit(m.Run())
}

// workerSetup is the worker half: a deployer with two native factories.
func workerSetup(k *core.Kernel) error {
	_, err := sched.ServeWorker(k, map[string]func() httpd.Servlet{
		"echo": func() httpd.Servlet { return echoServlet{} },
		"slow": func() httpd.Servlet { return slowServlet{} },
	})
	return err
}

// echoServlet answers with the serving process's pid so tests can tell
// which worker a request landed on.
type echoServlet struct{}

func (echoServlet) Service(req *httpd.Request) (*httpd.Response, error) {
	return &httpd.Response{
		Status: 200,
		Body:   []byte(fmt.Sprintf("%d:%s", os.Getpid(), req.Path)),
	}, nil
}

// slowServlet holds each request long enough to build queue depth.
type slowServlet struct{}

func (slowServlet) Service(req *httpd.Request) (*httpd.Response, error) {
	time.Sleep(50 * time.Millisecond)
	return &httpd.Response{Status: 200, Body: []byte("slow")}, nil
}

// startCluster boots a supervisor kernel + bridge + scheduler for tests.
func startCluster(t *testing.T, opts sched.Options) (*httpd.Bridge, *sched.Scheduler) {
	t.Helper()
	k := core.MustNew(core.Options{})
	bridge, err := httpd.NewBridge(k)
	if err != nil {
		t.Fatal(err)
	}
	opts.Kernel = k
	opts.Bridge = bridge
	if opts.Pool.Dir == "" {
		opts.Pool.Dir = t.TempDir()
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 50 * time.Millisecond
	}
	s, err := sched.Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return bridge, s
}

func get(b *httpd.Bridge, path string) (int, string) {
	rec := httptest.NewRecorder()
	b.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// TestClusterDeployAndServe is the smoke test: servlets deployed through
// the control plane serve HTTP from worker processes, spread across the
// pool, and terminate cleanly.
func TestClusterDeployAndServe(t *testing.T) {
	bridge, s := startCluster(t, sched.Options{
		MinWorkers: 2,
		Autoscale:  sched.AutoscaleConfig{Disabled: true},
	})
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("echo%d", i)
		if err := s.Deploy(name, fmt.Sprintf("/e%d/", i), sched.DeploySpec{Kind: "native", Impl: "echo"}); err != nil {
			t.Fatal(err)
		}
	}
	pids := map[string]bool{}
	for i := 0; i < 4; i++ {
		code, body := get(bridge, fmt.Sprintf("/e%d/ping", i))
		if code != 200 {
			t.Fatalf("echo%d: %d %q", i, code, body)
		}
		var pid int
		fmt.Sscanf(body, "%d:", &pid)
		pids[fmt.Sprint(pid)] = true
	}
	// Least-loaded over an idle 2-worker pool must use both workers.
	if len(pids) != 2 {
		t.Fatalf("placements not spread: served by %d worker process(es)", len(pids))
	}
	snap := s.Snapshot()
	if len(snap.Servlets) != 4 || len(snap.Workers) != 2 {
		t.Fatalf("snapshot: %d servlets on %d workers", len(snap.Servlets), len(snap.Workers))
	}

	// Terminate through the bridge admin path: the control plane owns it.
	if err := bridge.TerminateServlet("echo0"); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(bridge, "/e0/ping"); code != 404 {
		t.Fatalf("terminated servlet still routed: %d", code)
	}
	if n := len(s.Snapshot().Servlets); n != 3 {
		t.Fatalf("placements after terminate: %d, want 3", n)
	}
}

// TestConsistentHashDeterminism deploys the same servlet names into two
// independently-started clusters and demands identical name→worker
// assignments: the ring hashes stable pool slot indexes, so placement
// survives full control-plane restarts (cache affinity, Table 13's
// repeatability requirement).
func TestConsistentHashDeterminism(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	run := func() map[string]int {
		k := core.MustNew(core.Options{})
		bridge, err := httpd.NewBridge(k)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.Start(sched.Options{
			Kernel:     k,
			Bridge:     bridge,
			Pool:       remote.PoolOptions{Dir: t.TempDir()},
			MinWorkers: 3,
			Strategy:   sched.ConsistentHash(),
			Autoscale:  sched.AutoscaleConfig{Disabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		got := map[string]int{}
		for i, n := range names {
			if err := s.Deploy(n, fmt.Sprintf("/ch%d/", i), sched.DeploySpec{Kind: "native", Impl: "echo"}); err != nil {
				t.Fatal(err)
			}
		}
		for _, sv := range s.Snapshot().Servlets {
			got[sv.Name] = sv.Worker
		}
		return got
	}
	first := run()
	second := run()
	workers := map[int]bool{}
	for n, w := range first {
		if second[n] != w {
			t.Fatalf("placement of %q moved across restarts: %d then %d\nfirst: %v\nsecond: %v",
				n, w, second[n], first, second)
		}
		workers[w] = true
	}
	if len(workers) < 2 {
		t.Fatalf("ring collapsed onto %d worker(s): %v", len(workers), first)
	}
}

// TestFailoverSIGKILL kills a worker mid-traffic and demands every
// servlet keeps serving: the scheduler re-places the dead worker's
// servlets onto survivors within a few probe intervals, and under the
// sticky strategy the restarted worker attracts its shard back.
func TestFailoverSIGKILL(t *testing.T) {
	bridge, s := startCluster(t, sched.Options{
		MinWorkers: 3,
		Strategy:   sched.ConsistentHash(),
		Autoscale:  sched.AutoscaleConfig{Disabled: true},
	})
	names := []string{"fa", "fb", "fc", "fd", "fe", "ff"}
	for i, n := range names {
		if err := s.Deploy(n, fmt.Sprintf("/f%d/", i), sched.DeploySpec{Kind: "native", Impl: "echo"}); err != nil {
			t.Fatal(err)
		}
	}

	// Background traffic across every servlet for the whole drill. 503s
	// during the failover window are expected (the capability faulted and
	// the replacement is seconds away); 404s would mean a servlet was
	// lost, and nothing may be lost at the end.
	stop := make(chan struct{})
	var lost atomic.Int64
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _ := get(bridge, fmt.Sprintf("/f%d/x", i))
				if code == 404 {
					lost.Add(1)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}

	// SIGKILL the worker owning the most servlets.
	victim := -1
	counts := map[int]int{}
	for _, sv := range s.Snapshot().Servlets {
		counts[sv.Worker]++
		if victim == -1 || counts[sv.Worker] > counts[victim] {
			victim = sv.Worker
		}
	}
	var vw *remote.PoolWorker
	for _, w := range s.Pool().Workers() {
		if w.Index == victim {
			vw = w
		}
	}
	if vw == nil {
		t.Fatalf("no pool worker for index %d", victim)
	}
	if err := vw.Kill(); err != nil {
		t.Fatal(err)
	}

	// Every servlet must be re-placed and serving again.
	deadline := time.Now().Add(15 * time.Second)
	for {
		allPlaced := true
		for _, sv := range s.Snapshot().Servlets {
			if sv.Worker < 0 {
				allPlaced = false
			}
		}
		if allPlaced {
			ok := true
			for i := range names {
				if code, _ := get(bridge, fmt.Sprintf("/f%d/x", i)); code != 200 {
					ok = false
				}
			}
			if ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("servlets not re-placed after worker kill: %+v", s.Snapshot())
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if n := lost.Load(); n != 0 {
		t.Fatalf("%d request(s) saw 404: a servlet route was lost during failover", n)
	}
	if len(s.Snapshot().Servlets) != len(names) {
		t.Fatalf("servlets lost: %+v", s.Snapshot().Servlets)
	}

	// The killed worker restarts (pool supervision) and, because the
	// strategy is sticky, pulls its consistent-hash shard back home.
	deadline = time.Now().Add(15 * time.Second)
	for {
		back := false
		for _, sv := range s.Snapshot().Servlets {
			if sv.Worker == victim {
				back = true
			}
		}
		if back {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted worker %d never attracted its shard back: %+v",
				victim, s.Snapshot().Servlets)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDrainAndRemove: a drained worker takes no new placements; removing
// a worker evacuates its servlets and shrinks the pool.
func TestDrainAndRemove(t *testing.T) {
	bridge, s := startCluster(t, sched.Options{
		MinWorkers: 2,
		Autoscale:  sched.AutoscaleConfig{Disabled: true},
	})
	if err := s.Drain(0, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Deploy(fmt.Sprintf("d%d", i), fmt.Sprintf("/d%d/", i),
			sched.DeploySpec{Kind: "native", Impl: "echo"}); err != nil {
			t.Fatal(err)
		}
	}
	for _, sv := range s.Snapshot().Servlets {
		if sv.Worker == 0 {
			t.Fatalf("drained worker 0 received placement %q", sv.Name)
		}
	}
	if err := s.Drain(0, false); err != nil {
		t.Fatal(err)
	}

	// Remove worker 1: its servlets must move to worker 0 and keep
	// serving, and the slot must disappear.
	if err := s.RemoveWorker(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		snap := s.Snapshot()
		gone := true
		for _, w := range snap.Workers {
			if w.Worker == 1 {
				gone = false
			}
		}
		placed := true
		for _, sv := range snap.Servlets {
			if sv.Worker != 0 {
				placed = false
			}
		}
		if gone && placed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker 1 not removed cleanly: %+v", snap)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		if code, _ := get(bridge, fmt.Sprintf("/d%d/x", i)); code != 200 {
			t.Fatalf("servlet d%d dead after worker removal: %d", i, code)
		}
	}
}

// TestAutoscale drives sustained slow traffic through a 1-worker pool and
// expects the feedback loop to grow it, then shrink it back once the
// load stops.
func TestAutoscale(t *testing.T) {
	bridge, s := startCluster(t, sched.Options{
		MinWorkers: 1,
		MaxWorkers: 3,
		Autoscale: sched.AutoscaleConfig{
			Interval:  100 * time.Millisecond,
			Cooldown:  300 * time.Millisecond,
			UpQueue:   4,
			DownQueue: 1,
			DownTicks: 3,
		},
	})
	if err := s.Deploy("slow", "/s/", sched.DeploySpec{Kind: "native", Impl: "slow"}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				get(bridge, "/s/x")
			}
		}()
	}
	deadline := time.Now().Add(20 * time.Second)
	for s.Snapshot().ScaleUps == 0 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("autoscaler never scaled up: %+v", s.Snapshot())
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Idle pool shrinks back to MinWorkers.
	deadline = time.Now().Add(30 * time.Second)
	for {
		snap := s.Snapshot()
		if snap.ScaleDowns > 0 && len(snap.Workers) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("autoscaler never shrank back: %+v", snap)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// The surviving worker still serves.
	if code, _ := get(bridge, "/s/x"); code != 200 {
		t.Fatalf("servlet dead after scale-down: %d", code)
	}
}
