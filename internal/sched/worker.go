package sched

import (
	"fmt"
	"sync"

	"jkernel/internal/core"
	"jkernel/internal/httpd"
)

// DeployerExport is the name under which cluster workers export their
// deployer capability; the scheduler imports it from every worker it
// manages.
const DeployerExport = "jk.sched.deployer"

// DeploySpec describes one servlet the control plane can instantiate on
// any worker: the portable unit of placement. It crosses the wire by
// copy, so everything in it is plain data.
type DeploySpec struct {
	// Name is the servlet's cluster-wide identity.
	Name string
	// Kind selects the implementation: "native" (a Go servlet registered
	// in the worker's factory map) or "vm" (an uploaded bytecode bundle).
	Kind string
	// Impl names the native factory, or the VM main class.
	Impl string
	// Bundle is the encoded class bundle (httpd.EncodeBundle) for "vm".
	Bundle []byte
	// Config, when set, is passed to the VM servlet's optional static
	// configure([B)V after instantiation.
	Config []byte
}

// DeployedList is the deep-copy envelope for Deployer.Deployed: the
// deployer's remote surface may only traffic in capabilities and
// wire-registered types (jkvet's capleak pass enforces it), so the
// servlet listing crosses inside a registered struct rather than as a
// raw slice.
type DeployedList struct {
	Names []string
}

// RegisterWireTypes registers the control-plane types with a kernel so
// deploy requests can cross the wire. Both sides need it; ServeWorker and
// Start call it themselves.
func RegisterWireTypes(k *core.Kernel) {
	k.RegisterWireType("jk.sched.DeploySpec", DeploySpec{})
	k.RegisterWireType("jk.sched.DeployedList", DeployedList{})
}

// deployed is one servlet instance living on this worker.
type deployed struct {
	domain *core.Domain
	cap    *core.Capability
}

// Deployer is the worker-side servlet factory the scheduler drives over
// the wire: Deploy instantiates a spec into a fresh protection domain and
// returns the servlet capability (which crosses back by reference, as a
// proxy); Undeploy terminates the domain. It is exported by ServeWorker.
type Deployer struct {
	k       *core.Kernel
	natives map[string]func() httpd.Servlet
	host    *httpd.ServletHost
	home    *core.Domain // owns native adapters and VM-forwarding tasks

	mu       sync.Mutex
	deployed map[string]*deployed
}

// ServeWorker installs the cluster control plane's worker half on kernel
// k: servlet wire types plus the Deployer, exported as DeployerExport.
// natives maps factory names ("echo", "capacity", ...) to constructors
// for Go servlets; VM bundles need no registration. Call it from the
// worker's Setup (see remote.MaybeRunWorker).
func ServeWorker(k *core.Kernel, natives map[string]func() httpd.Servlet) (*Deployer, error) {
	RegisterWireTypes(k)
	host, err := httpd.NewServletHost(k)
	if err != nil {
		return nil, err
	}
	home, err := k.NewDomain(core.DomainConfig{Name: "sched-deployer"})
	if err != nil {
		return nil, err
	}
	d := &Deployer{
		k:        k,
		natives:  natives,
		host:     host,
		home:     home,
		deployed: map[string]*deployed{},
	}
	cap, err := k.CreateNativeCapability(home, d)
	if err != nil {
		return nil, err
	}
	if err := k.Export(DeployerExport, cap); err != nil {
		return nil, err
	}
	return d, nil
}

// Deploy instantiates spec on this worker and returns its servlet
// capability. Deploying a name that is already live returns the existing
// capability (placement is idempotent; the scheduler retries).
func (d *Deployer) Deploy(spec *DeploySpec) (*core.Capability, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if dep, ok := d.deployed[spec.Name]; ok {
		return dep.cap, nil
	}
	switch spec.Kind {
	case "native":
		ctor := d.natives[spec.Impl]
		if ctor == nil {
			return nil, fmt.Errorf("sched: no native servlet factory %q", spec.Impl)
		}
		dom, err := d.k.NewDomain(core.DomainConfig{Name: "servlet-" + spec.Name})
		if err != nil {
			return nil, err
		}
		cap, err := httpd.ServletCapability(d.k, dom, ctor())
		if err != nil {
			dom.Terminate("deploy failed")
			return nil, err
		}
		d.deployed[spec.Name] = &deployed{domain: dom, cap: cap}
		return cap, nil

	case "vm":
		bundle, err := httpd.DecodeBundle(spec.Bundle)
		if err != nil {
			return nil, fmt.Errorf("sched: bad bundle: %w", err)
		}
		dom, vmCap, err := d.host.InstantiateVM(spec.Name, spec.Impl, bundle)
		if err != nil {
			return nil, err
		}
		if len(spec.Config) > 0 {
			if err := httpd.Configure(d.k, dom, spec.Impl, spec.Config); err != nil {
				dom.Terminate("configure failed")
				return nil, err
			}
		}
		// The wire speaks the native servlet contract; wrap the VM
		// capability in a forwarding native servlet.
		cap, err := httpd.ServletCapability(d.k, dom, httpd.VMServlet(d.k, d.home, vmCap))
		if err != nil {
			dom.Terminate("deploy failed")
			return nil, err
		}
		d.deployed[spec.Name] = &deployed{domain: dom, cap: cap}
		return cap, nil

	default:
		return nil, fmt.Errorf("sched: unknown deploy kind %q", spec.Kind)
	}
}

// Undeploy terminates a deployed servlet's domain, revoking its
// capability everywhere (including the front kernel's proxy).
func (d *Deployer) Undeploy(name string) error {
	d.mu.Lock()
	dep := d.deployed[name]
	delete(d.deployed, name)
	d.mu.Unlock()
	if dep == nil {
		return nil // idempotent: a re-placed servlet may be undeployed late
	}
	dep.domain.Terminate("undeployed by control plane")
	return nil
}

// Deployed lists the servlets currently live on this worker.
func (d *Deployer) Deployed() (*DeployedList, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := &DeployedList{Names: make([]string, 0, len(d.deployed))}
	for name := range d.deployed {
		out.Names = append(out.Names, name)
	}
	return out, nil
}
