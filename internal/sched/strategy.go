package sched

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// MemberView is the per-worker load snapshot a placement strategy sees:
// only placeable (ready, non-draining) workers are offered. InFlight is
// the worker connection's wire queue depth at decision time; Placements
// counts servlets currently living on the worker.
type MemberView struct {
	Worker     int // pool slot index (stable across process restarts)
	InFlight   int
	Placements int
}

// Strategy decides which worker hosts a servlet. Pick returns an index
// into members (not a worker id), or -1 when it declines every candidate.
// Sticky strategies bind a servlet to a preferred worker: the scheduler
// re-runs Pick after membership changes and moves servlets whose
// preferred worker differs (cache affinity follows the servlet home).
// Non-sticky strategies are only consulted again to fix imbalance.
type Strategy interface {
	Name() string
	Sticky() bool
	Pick(servlet string, members []MemberView) int
}

// ByName resolves a strategy from its Name() string — the flag surface
// of cmd/jkhttpd and cmd/jkbench.
func ByName(name string) (Strategy, error) {
	switch name {
	case "", "least-loaded":
		return LeastLoaded(), nil
	case "round-robin":
		return RoundRobin(), nil
	case "consistent-hash":
		return ConsistentHash(), nil
	default:
		return nil, fmt.Errorf("sched: unknown strategy %q (want least-loaded, round-robin, or consistent-hash)", name)
	}
}

// --- least-loaded -----------------------------------------------------------

// leastLoaded places on the worker with the fewest in-flight wire calls,
// breaking ties by placement count and then by worker index, so an idle
// pool still spreads servlets evenly instead of piling onto slot 0.
type leastLoaded struct{}

// LeastLoaded returns the least-loaded placement strategy (the default).
func LeastLoaded() Strategy { return leastLoaded{} }

func (leastLoaded) Name() string { return "least-loaded" }
func (leastLoaded) Sticky() bool { return false }

func (leastLoaded) Pick(servlet string, members []MemberView) int {
	best := -1
	for i, m := range members {
		if best < 0 {
			best = i
			continue
		}
		b := members[best]
		if m.InFlight < b.InFlight ||
			(m.InFlight == b.InFlight && m.Placements < b.Placements) ||
			(m.InFlight == b.InFlight && m.Placements == b.Placements && m.Worker < b.Worker) {
			best = i
		}
	}
	return best
}

// --- round-robin ------------------------------------------------------------

// roundRobin cycles placements across workers in index order — the
// baseline the smarter strategies are measured against.
type roundRobin struct {
	n atomic.Uint64
}

// RoundRobin returns the round-robin placement strategy.
func RoundRobin() Strategy { return &roundRobin{} }

func (*roundRobin) Name() string { return "round-robin" }
func (*roundRobin) Sticky() bool { return false }

func (r *roundRobin) Pick(servlet string, members []MemberView) int {
	if len(members) == 0 {
		return -1
	}
	// Stable order regardless of how the caller assembled the slice.
	idx := make([]int, len(members))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return members[idx[a]].Worker < members[idx[b]].Worker })
	return idx[int((r.n.Add(1)-1)%uint64(len(members)))]
}

// --- consistent hash --------------------------------------------------------

// chVnodes is the virtual-node count per worker: enough that a 4-worker
// ring splits the servlet space within a few percent of even.
const chVnodes = 64

// consistentHash maps each servlet onto a hash ring of worker slots, so
// the same servlet name lands on the same worker across scheduler
// restarts (cache affinity) and only K/n placements move when the
// membership changes by one worker.
type consistentHash struct{}

// ConsistentHash returns the consistent-hash placement strategy. It is
// sticky: when a servlet's ring owner comes back after a crash restart,
// the scheduler moves the servlet home.
func ConsistentHash() Strategy { return consistentHash{} }

func (consistentHash) Name() string { return "consistent-hash" }
func (consistentHash) Sticky() bool { return true }

func (consistentHash) Pick(servlet string, members []MemberView) int {
	if len(members) == 0 {
		return -1
	}
	// Build the ring over the offered members. Membership changes are
	// rare and member counts small, so rebuilding per pick keeps the
	// strategy stateless and trivially deterministic.
	type point struct {
		h   uint64
		idx int
	}
	ring := make([]point, 0, len(members)*chVnodes)
	for i, m := range members {
		for v := 0; v < chVnodes; v++ {
			ring = append(ring, point{fnv64(fmt.Sprintf("w%d#%d", m.Worker, v)), i})
		}
	}
	sort.Slice(ring, func(a, b int) bool { return ring[a].h < ring[b].h })
	h := fnv64(servlet)
	j := sort.Search(len(ring), func(i int) bool { return ring[i].h >= h })
	if j == len(ring) {
		j = 0
	}
	return ring[j].idx
}

// fnv64 is FNV-1a, the same dependency-free hash the telemetry registry
// shards with.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
