package shareany

import (
	"errors"
	"testing"
)

func TestExportLookupIsDirectReference(t *testing.T) {
	w := NewWorld()
	a := w.NewComponent("a")
	buf := []byte{1, 2, 3}
	a.Export("buf", buf)
	got, err := w.LookupFrom("a", "buf")
	if err != nil {
		t.Fatal(err)
	}
	shared := got.([]byte)
	shared[0] = 99
	if buf[0] != 99 {
		t.Error("expected direct aliasing in the share-anything model")
	}
}

func TestWrapperRevocation(t *testing.T) {
	svc := &NullService{}
	w := Wrap(svc)
	if err := w.Call(func(s *NullService) error { s.Null(); return nil }); err != nil {
		t.Fatal(err)
	}
	w.Revoke()
	err := w.Call(func(s *NullService) error { s.Null(); return nil })
	if !errors.Is(err, ErrRevoked) {
		t.Errorf("got %v, want ErrRevoked", err)
	}
	if svc.Calls() != 1 {
		t.Errorf("calls = %d, want 1", svc.Calls())
	}
}

// The forgotten-wrapper problem: the direct reference obtained before (or
// around) the wrapper stays usable after revocation.
func TestUnwrappedReferenceSurvivesRevocation(t *testing.T) {
	svc := &NullService{}
	w := Wrap(svc)
	leaked := svc // "programmers often forget to wrap an object"
	w.Revoke()
	leaked.Null()
	if svc.Calls() != 1 {
		t.Error("direct reference should still work — that is the problem")
	}
}

// §2's TOCTOU attack: verify a buffer, then the attacker rewrites it.
func TestTOCTOUAttackSucceedsWithSharedBuffer(t *testing.T) {
	v := &Verifier{}
	code := []byte{0x01, 0x02}
	if err := v.CheckAndInstall(code); err != nil {
		t.Fatal(err)
	}
	code[0] = 0x66 // attacker overwrites "legal bytecode ... with illegal bytecode"
	op, err := v.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if op != 0x66 {
		t.Error("attack should succeed against the by-reference verifier")
	}
}

func TestTOCTOUDefendedByPrivateCopy(t *testing.T) {
	v := &Verifier{}
	code := []byte{0x01, 0x02}
	if err := v.CheckAndInstallDefensive(code); err != nil {
		t.Fatal(err)
	}
	code[0] = 0x66
	op, err := v.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if op != 0x01 {
		t.Error("defensive copy should be immune to the overwrite")
	}
}

// §2 termination: a client's reference keeps a dead server's objects alive
// and working — failure does not propagate.
func TestTerminationDoesNotPropagateToHeldReferences(t *testing.T) {
	w := NewWorld()
	server := w.NewComponent("server")
	fs := NewFileSystem()
	view := fs.NewInterface(RightRead|RightWrite, "srv")
	server.Export("fs", view)

	got, err := w.LookupFrom("server", "fs")
	if err != nil {
		t.Fatal(err)
	}
	client := got.(*FileSystemInterface)
	if err := client.Write("f", []byte("x")); err != nil {
		t.Fatal(err)
	}

	server.Terminate()
	if !server.Dead() {
		t.Fatal("not dead")
	}
	// New lookups fail...
	if _, err := w.LookupFrom("server", "fs"); err == nil {
		t.Error("export table should be dropped")
	}
	// ...but the held reference works on, zombie-style.
	if _, err := client.Open("f"); err != nil {
		t.Error("held reference should survive termination — that is the problem")
	}
}

// §2's String example: domain 2 holds a String whose character array
// belongs to domain 1; after domain 1 "dies" (mutates/frees its buffer),
// the string changes under domain 2's feet.
func TestStringBackingArrayHazard(t *testing.T) {
	backing := []byte("hello")
	s := NewStringView(backing)
	if s.Text() != "hello" {
		t.Fatal("setup")
	}
	copy(backing, "XXXXX") // domain 1 dies / reuses its memory
	if s.Text() == "hello" {
		t.Error("expected the shared backing to corrupt the view")
	}
}

func TestAccessRightsStillEnforcedStatically(t *testing.T) {
	fs := NewFileSystem()
	ro := fs.NewInterface(RightRead, "r")
	if err := ro.Write("f", []byte("x")); err == nil {
		t.Error("read-only view allowed write")
	}
	rw := fs.NewInterface(RightRead|RightWrite, "r")
	if err := rw.Write("f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	data, err := ro.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	// And the returned slice aliases the store — the hazard again.
	data[0] = 'Z'
	check, _ := rw.Open("f")
	if check[0] != 'Z' {
		t.Error("expected store aliasing through Open")
	}
}
