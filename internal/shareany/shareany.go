// Package shareany implements the paper's §2 baseline: the
// "share anything" approach, where object references are used directly as
// capabilities. Each component runs in its own namespace but may pass any
// reference to any other component; cross-domain calls are plain method
// invocations with arguments by reference.
//
// The package exists to demonstrate, in code and tests, exactly the
// problems §2 describes — no revocation by default, manual wrapper
// revocation that programmers forget, TOCTOU attacks through shared
// mutable arguments, domain termination with dangling shared state — and
// to serve as the fast-but-unsafe baseline in benchmarks (a cross-domain
// call here is just a function call).
package shareany

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrRevoked reports use of a manually revoked wrapper.
var ErrRevoked = errors.New("shareany: revoked")

// ErrDead reports a call into a terminated component.
var ErrDead = errors.New("shareany: component terminated")

// Component is a §2-style protection "domain": a named bag of objects with
// no enforced boundary. References handed out through Export are shared
// directly.
type Component struct {
	Name string

	mu      sync.Mutex
	exports map[string]any
	dead    bool
}

// World is a set of components sharing one address space.
type World struct {
	mu         sync.Mutex
	components map[string]*Component
}

// NewWorld creates an empty world.
func NewWorld() *World {
	return &World{components: make(map[string]*Component)}
}

// NewComponent adds a component.
func (w *World) NewComponent(name string) *Component {
	w.mu.Lock()
	defer w.mu.Unlock()
	c := &Component{Name: name, exports: make(map[string]any)}
	w.components[name] = c
	return c
}

// Export publishes an object reference under a name. Anyone who looks it
// up holds the real reference: this is the "share anything" model.
func (c *Component) Export(name string, obj any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.exports[name] = obj
}

// LookupFrom fetches another component's export — a direct reference, with
// all the aliasing that implies.
func (w *World) LookupFrom(component, name string) (any, error) {
	w.mu.Lock()
	c := w.components[component]
	w.mu.Unlock()
	if c == nil {
		return nil, fmt.Errorf("shareany: no component %q", component)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	obj, ok := c.exports[name]
	if !ok {
		return nil, fmt.Errorf("shareany: %s exports no %q", component, name)
	}
	// Note: no liveness check — a terminated component's objects remain
	// reachable, which is exactly the §2 termination problem.
	return obj, nil
}

// Terminate marks the component dead and drops its export table. Anything
// already handed out stays alive — §2: "if a domain's objects do not
// disappear when the domain terminates ... the server's failure is not
// propagated correctly to the clients."
func (c *Component) Terminate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = true
	c.exports = make(map[string]any)
}

// Dead reports whether the component was terminated.
func (c *Component) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Wrapper is §2's AWrapper pattern: manual revocation by indirection.
// "In principle, this solves the revocation problem ... However, our
// experience shows that programmers often forget to wrap an object when
// passing it to another domain."
type Wrapper[T any] struct {
	mu      sync.Mutex
	target  T
	revoked bool
}

// Wrap creates a revocable wrapper around target.
func Wrap[T any](target T) *Wrapper[T] {
	return &Wrapper[T]{target: target}
}

// Call runs fn against the target unless revoked.
func (w *Wrapper[T]) Call(fn func(T) error) error {
	w.mu.Lock()
	if w.revoked {
		w.mu.Unlock()
		return ErrRevoked
	}
	t := w.target
	w.mu.Unlock()
	return fn(t)
}

// Revoke cuts the wrapper off from its target.
func (w *Wrapper[T]) Revoke() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.revoked = true
	var zero T
	w.target = zero
}

// --- demonstration services used by tests and benchmarks ----------------

// FileSystem is §2's FileSystemInterface example: per-client views over a
// shared store, protected only by unexported fields.
type FileSystem struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewFileSystem creates an empty in-memory file system.
func NewFileSystem() *FileSystem {
	return &FileSystem{files: make(map[string][]byte)}
}

// FileSystemInterface is the per-client view: accessRights and
// rootDirectory are unexported, so clients cannot change them — but the
// *reference itself* can never be revoked.
type FileSystemInterface struct {
	fs           *FileSystem
	accessRights int // 1=read, 2=write
	rootDir      string
}

// Access rights.
const (
	RightRead  = 1
	RightWrite = 2
)

// NewInterface creates a client view with the given rights under root.
func (fs *FileSystem) NewInterface(rights int, root string) *FileSystemInterface {
	return &FileSystemInterface{fs: fs, accessRights: rights, rootDir: root}
}

// Open returns the file's contents if permitted.
func (fi *FileSystemInterface) Open(name string) ([]byte, error) {
	if fi.accessRights&RightRead == 0 {
		return nil, errors.New("shareany: no read access")
	}
	fi.fs.mu.Lock()
	defer fi.fs.mu.Unlock()
	data, ok := fi.fs.files[fi.rootDir+"/"+name]
	if !ok {
		return nil, fmt.Errorf("shareany: no file %q", name)
	}
	// Handing out the real slice: the share-anything hazard.
	return data, nil
}

// Write stores data (by reference!) if permitted.
func (fi *FileSystemInterface) Write(name string, data []byte) error {
	if fi.accessRights&RightWrite == 0 {
		return errors.New("shareany: no write access")
	}
	fi.fs.mu.Lock()
	defer fi.fs.mu.Unlock()
	fi.fs.files[fi.rootDir+"/"+name] = data
	return nil
}

// Verifier models §2's class-loader TOCTOU attack victim: it checks a
// bytecode buffer, then later executes it. With by-reference sharing the
// attacker rewrites the buffer between check and use.
type Verifier struct {
	checked atomic.Pointer[[]byte]
}

// CheckAndInstall verifies the buffer (here: first byte must be a legal
// "opcode" 0x01) and retains it for execution.
func (v *Verifier) CheckAndInstall(code []byte) error {
	if len(code) == 0 || code[0] != 0x01 {
		return errors.New("shareany: illegal bytecode")
	}
	v.checked.Store(&code)
	return nil
}

// CheckAndInstallDefensive copies before checking — the only §2 defense:
// "make its own private copy of the bytecode".
func (v *Verifier) CheckAndInstallDefensive(code []byte) error {
	private := append([]byte(nil), code...)
	return v.CheckAndInstall(private)
}

// Execute runs the retained buffer and reports the "opcode" executed; 0x01
// is legal, anything else means the TOCTOU attack succeeded.
func (v *Verifier) Execute() (byte, error) {
	p := v.checked.Load()
	if p == nil {
		return 0, errors.New("shareany: nothing installed")
	}
	code := *p
	if len(code) == 0 {
		return 0, errors.New("shareany: empty code")
	}
	return code[0], nil
}

// StringView models the §2 String-termination hazard: a value whose
// backing array belongs to another component.
type StringView struct {
	backing []byte
}

// NewStringView wraps (by reference) a byte slice owned elsewhere.
func NewStringView(backing []byte) *StringView { return &StringView{backing: backing} }

// Text renders the current backing content.
func (s *StringView) Text() string { return string(s.backing) }

// NullService is the benchmark target: a null method.
type NullService struct{ calls int64 }

// Null does nothing — the §2 cross-domain call is a plain invocation.
func (s *NullService) Null() { atomic.AddInt64(&s.calls, 1) }

// Calls reports how many invocations occurred.
func (s *NullService) Calls() int64 { return atomic.LoadInt64(&s.calls) }
