package jkernel

import (
	"fmt"
	"net/http"
	"os"
	"testing"

	"jkernel/internal/core"
	"jkernel/internal/httpd"
	"jkernel/internal/oskit"
	"jkernel/internal/threads"
	"jkernel/internal/vmkit"
)

// TestMain lets the oskit cross-process RPC servers re-execute this test
// binary as their child.
func TestMain(m *testing.M) {
	oskit.MaybeRunChild()
	os.Exit(m.Run())
}

// --- Table 1 / 4 / 6 fixture: a server domain exporting Svc, a client
// domain with bytecode benchmark loops. --------------------------------

const benchSvcIface = `
.class Svc interface implements jk/kernel/Remote
.method nop ()V
.end
.method add3 (III)I
.end
.method sink (LMsgS;)I
.end
.method sinkF (LMsgF;)I
.end
`

// MsgS crosses by serialization; MsgF by fast copy. Both are chains of
// nodes carrying a payload array, so "N objects of M bytes" shapes build
// naturally.
const benchMsgS = `
.class MsgS implements jk/io/Serializable
.field payload [B
.field next LMsgS;
`

const benchMsgF = `
.class MsgF implements jk/io/FastCopy
.field payload [B
.field next LMsgF;
`

const benchSvcImpl = `
.class SvcImpl implements Svc
.method nop ()V stack 2 locals 0
  ret
.end
.method add3 (III)I stack 6 locals 0
  load 1
  load 2
  iadd
  load 3
  iadd
  retv
.end
.method sink (LMsgS;)I stack 2 locals 0
  iconst 1
  retv
.end
.method sinkF (LMsgF;)I stack 2 locals 0
  iconst 1
  retv
.end
`

const benchClient = `
.class LocalIface interface
.method inop ()V
.end
`

const benchClient2 = `
.class LocalTarget implements LocalIface
.method nop ()V stack 2 locals 0
  ret
.end
.method inop ()V stack 2 locals 0
  ret
.end
`

const benchClient3 = `
.class Bench
.field static cap LSvc;
.field static target LLocalTarget;
.method static setup ()V stack 4 locals 0
  sconst "svc"
  invokestatic jk/kernel/Repository.lookup:(Ljk/lang/String;)Ljk/kernel/Capability;
  cast Svc
  putstatic Bench.cap:LSvc;
  new LocalTarget
  putstatic Bench.target:LLocalTarget;
  ret
.end
.method static runRegular (I)V stack 8 locals 1
loop:
  load 0
  ifz done
  getstatic Bench.target:LLocalTarget;
  invokevirtual LocalTarget.nop:()V
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
.method static runIface (I)V stack 8 locals 1
loop:
  load 0
  ifz done
  getstatic Bench.target:LLocalTarget;
  invokeinterface LocalIface.inop:()V
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
.method static runLock (I)V stack 8 locals 1
loop:
  load 0
  ifz done
  getstatic Bench.target:LLocalTarget;
  monitorenter
  getstatic Bench.target:LLocalTarget;
  monitorexit
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
.method static runLRMI (I)V stack 8 locals 1
loop:
  load 0
  ifz done
  getstatic Bench.cap:LSvc;
  invokeinterface Svc.nop:()V
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
.method static runLRMI3 (I)V stack 10 locals 1
loop:
  load 0
  ifz done
  getstatic Bench.cap:LSvc;
  iconst 1
  iconst 2
  iconst 3
  invokeinterface Svc.add3:(III)I
  pop
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
.method static baseline (I)V stack 8 locals 1
loop:
  load 0
  ifz done
  load 0
  iconst 1
  isub
  store 0
  jmp loop
done:
  ret
.end
`

// vmBench is the assembled two-domain fixture.
type vmBench struct {
	k      *core.Kernel
	server *core.Domain
	client *core.Domain
	task   *core.Task
	cap    *core.Capability
}

func mustBytes(src string) []byte {
	b, err := vmkit.AssembleBytes(src)
	if err != nil {
		panic(err)
	}
	return b
}

// newVMBench builds the fixture under a profile. Callers must closeVMBench.
func newVMBench(tb testing.TB, profile vmkit.Profile) *vmBench {
	tb.Helper()
	k := core.MustNew(core.Options{Profile: profile})
	server, err := k.NewDomain(core.DomainConfig{
		Name: "bench-server",
		Classes: map[string][]byte{
			"Svc":     mustBytes(benchSvcIface),
			"SvcImpl": mustBytes(benchSvcImpl),
			"MsgS":    mustBytes(benchMsgS),
			"MsgF":    mustBytes(benchMsgF),
		},
	})
	if err != nil {
		tb.Fatal(err)
	}
	sc, err := k.ShareClasses(server, "Svc", "MsgS", "MsgF")
	if err != nil {
		tb.Fatal(err)
	}
	client, err := k.NewDomain(core.DomainConfig{
		Name: "bench-client",
		Classes: map[string][]byte{
			"LocalIface":  mustBytes(benchClient),
			"LocalTarget": mustBytes(benchClient2),
			"Bench":       mustBytes(benchClient3),
		},
		Shared: []*core.SharedClass{sc},
	})
	if err != nil {
		tb.Fatal(err)
	}

	setup := k.NewTask(server, "setup")
	target, err := server.NewInstance("SvcImpl")
	if err != nil {
		tb.Fatal(err)
	}
	cap, err := k.CreateVMCapability(server, target)
	if err != nil {
		tb.Fatal(err)
	}
	if err := k.Repository().Bind("svc", cap); err != nil {
		tb.Fatal(err)
	}
	setup.Close()

	task := k.NewTask(client, "bench")
	if _, err := task.CallStatic("Bench.setup:()V"); err != nil {
		tb.Fatal(err)
	}
	return &vmBench{k: k, server: server, client: client, task: task, cap: cap}
}

func (f *vmBench) close() { f.task.Close() }

// run executes one of the Bench loops for n iterations.
func (f *vmBench) run(tb testing.TB, method string, n int) {
	tb.Helper()
	if _, err := f.task.CallStatic("Bench."+method+":(I)V", vmkit.IntVal(int64(n))); err != nil {
		tb.Fatal(err)
	}
}

// buildChain constructs a chain of count MsgS/MsgF nodes with size-byte
// payloads in the client domain (the caller side).
func (f *vmBench) buildChain(tb testing.TB, class string, count, size int) *vmkit.Object {
	tb.Helper()
	var head *vmkit.Object
	for i := 0; i < count; i++ {
		node, err := f.client.NewInstance(class)
		if err != nil {
			tb.Fatal(err)
		}
		payload, err := f.client.NS.NewArray("[B", size)
		if err != nil {
			tb.Fatal(err)
		}
		node.Fields[node.Class.FieldByName("payload").Slot] = vmkit.RefVal(payload)
		if head != nil {
			node.Fields[node.Class.FieldByName("next").Slot] = vmkit.RefVal(head)
		}
		head = node
	}
	return head
}

// --- Table 5 fixture ------------------------------------------------------

type table5Fixture struct {
	k      *core.Kernel
	bridge *httpd.Bridge
	jws    *httpd.JWS
	doc    []byte
}

func newTable5(tb testing.TB, docSize int) *table5Fixture {
	tb.Helper()
	doc := make([]byte, docSize)
	for i := range doc {
		doc[i] = byte('a' + i%26)
	}
	k := core.MustNew(core.Options{})
	bridge, err := httpd.NewBridge(k)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := bridge.MountDocServlet("doc", "/", doc); err != nil {
		tb.Fatal(err)
	}
	jws, err := httpd.NewJWS(k, doc)
	if err != nil {
		tb.Fatal(err)
	}
	return &table5Fixture{k: k, bridge: bridge, jws: jws, doc: doc}
}

func httpStaticHandler(f *table5Fixture, size int) http.Handler {
	return httpd.StaticHandler(f.doc)
}

func sizeName(size int) string { return fmt.Sprintf("%dB", size) }

// reportPagesPerSec converts the measured ns/op into the paper's
// pages/second metric.
func reportPagesPerSec(b *testing.B) {
	b.StopTimer()
	if e := b.Elapsed(); e > 0 && b.N > 0 {
		b.ReportMetric(float64(b.N)/e.Seconds(), "pages/s")
	}
	b.StartTimer()
}

// goroutineIDProbe re-exports the threads registry gid parse for the
// ablation bench.
func goroutineIDProbe() int64 { return threads.GoroutineID() }
